// Scale bench: the scale.* scenario families swept 44 -> 10000 nodes at
// constant node density (field side grows with sqrt(n); Fig. 7 population
// proportions throughout — see src/harness/scale.hpp).
//
// Unlike the figure benches this one is hand-rolled over the TrialRunner
// rather than run_sweep: every series shares the *same* derived seed per
// (node count, trial), so the grid-vs-brute pairs run bit-identical
// workloads. That makes the committed baseline double as an equivalence
// proof — `dapes+grid+waypoint` and `dapes+brute+waypoint` (and the
// `medium+*` pair) must agree on every deterministic metric, differing
// only in `trial_wall_s`.
//
// Three series groups:
//   dapes+*      — the full DAPES stack (scale.field). Protocol work
//                  (PIT/CS lookups, crypto) dominates its trial time, so
//                  the grid shows up as a modest win here.
//   dapes+par+*  — the same stack under the phase-parallel trial interior
//                  (ScenarioParams::trial_threads = 1/2/4). Deterministic
//                  metrics must match the serial dapes+grid+waypoint
//                  series bit-for-bit; trial_wall_s is the threads axis.
//   medium+*     — the medium-bound stress family (scale.medium):
//                  broadcast beacons + 20 Hz neighborhood-density sweeps,
//                  no NDN stack. This isolates what the spatial grid
//                  replaced; the brute-force O(n^2) blowup (and the >=5x
//                  grid speedup from ~500 nodes) is measured on this pair.
//
// Not every series runs at every x. The 10k point is single-trial, runs
// on a reduced sim horizon, and only for the two cheap grid series; the
// threads series only run where the parallel interior has enough
// same-instant work to matter (>= 500 nodes). Skipped cells are written
// as 0.0 and each skip is logged at WARN through common/logging (the
// reduced-trial 10k note logs at INFO; dial --log-level info to see it),
// so a 0.0 in the output is always accounted for rather than a silent
// truncation.
//
// BENCH_scale.json is the committed baseline (`--trials 1 --jobs 1
// --format json`); absolute wall timings are machine-dependent, the
// tracked quantities are the medium+brute : medium+grid ratio and the
// dapes+par t1 : tN ratios. `--no-wall` drops trial_wall_s for
// byte-for-byte determinism diffs (CI compares --trial-threads 1 vs 4).
#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "harness/metrics.hpp"
#include "harness/scale.hpp"
#include "harness/trial_runner.hpp"

using namespace dapes;

namespace {

constexpr double kBigN = 10000;
// The 10k single-trial point runs on a shortened horizon: at Fig. 7
// density a 180 s horizon costs hours of wall clock on one core, and the
// per-event cost the point measures is stable well before 60 s.
constexpr double kBigNLimitS = 60.0;

struct SeriesDef {
  const char* label;
  const char* driver;
  // Largest node count this series runs at; cells above it are skipped
  // (0.0 in the output, logged to stderr).
  double max_nodes;
  // Smallest node count (full mode only): the threads series are noise
  // below ~500 nodes, where a trial has too few same-instant deliveries
  // for the phase engine to batch.
  double min_nodes_full;
  std::function<void(harness::ScenarioParams&)> configure;
};

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);

  harness::ScenarioParams base = args.scenario();
  base.files = 1;
  if (!args.paper_scale) base.file_size_bytes = 16 * 1024;
  base.sim_limit_s = args.quick ? 60.0 : 180.0;
  const double stress_limit_s = args.quick ? 10.0 : 30.0;

  const std::vector<double> xs =
      args.quick ? std::vector<double>{44, 120}
                 : std::vector<double>{44, 100, 200, 500, 1000, kBigN};

  auto threads_series = [](const char* label, int lanes) {
    return SeriesDef{label, harness::ProtocolNames::kScaleField, 1000, 500,
                     [lanes](harness::ScenarioParams& p) {
                       p.mobility = harness::MobilityKind::kRandomWaypoint;
                       p.trial_threads = lanes;
                     }};
  };

  const std::vector<SeriesDef> series = {
      {"dapes+grid+waypoint", harness::ProtocolNames::kScaleField, kBigN, 0,
       [](harness::ScenarioParams& p) {
         p.mobility = harness::MobilityKind::kRandomWaypoint;
       }},
      {"dapes+grid+group", harness::ProtocolNames::kScaleField, 1000, 0,
       [](harness::ScenarioParams& p) {
         p.mobility = harness::MobilityKind::kGroup;
       }},
      {"dapes+brute+waypoint", harness::ProtocolNames::kScaleField, 1000, 0,
       [](harness::ScenarioParams& p) {
         p.mobility = harness::MobilityKind::kRandomWaypoint;
         p.brute_force_medium = true;
         p.trial_threads = 0;  // the serial reference ignores the global knob
       }},
      threads_series("dapes+par+waypoint+t1", 1),
      threads_series("dapes+par+waypoint+t2", 2),
      threads_series("dapes+par+waypoint+t4", 4),
      {"medium+grid", harness::ProtocolNames::kScaleMedium, kBigN, 0,
       [stress_limit_s](harness::ScenarioParams& p) {
         p.mobility = harness::MobilityKind::kRandomWaypoint;
         p.sim_limit_s = stress_limit_s;
       }},
      {"medium+brute", harness::ProtocolNames::kScaleMedium, 1000, 0,
       [stress_limit_s](harness::ScenarioParams& p) {
         p.mobility = harness::MobilityKind::kRandomWaypoint;
         p.sim_limit_s = stress_limit_s;
         p.brute_force_medium = true;
         p.trial_threads = 0;  // the serial reference ignores the global knob
       }},
  };

  std::vector<harness::SweepMetric> metrics;
  if (!args.no_wall) metrics.push_back(harness::trial_wall_metric());
  metrics.push_back(harness::download_time_metric());
  metrics.push_back(harness::transmissions_k_metric());
  metrics.push_back(harness::completion_metric());

  // Open the sink first: a bad --out path should fail before the sweep
  // burns minutes of trials (same contract as BenchArgs::run).
  std::FILE* f = stdout;
  if (!args.out.empty()) {
    f = std::fopen(args.out.c_str(), "w");
    if (f == nullptr) {
      DAPES_LOG_ERROR("bench_scale") << "cannot open --out file " << args.out;
      return 1;
    }
  }

  const size_t trials = static_cast<size_t>(args.trials);
  auto series_runs = [&](size_t si, size_t xi) {
    const double n = xs[xi];
    if (n > series[si].max_nodes) return false;
    if (!args.quick && n < series[si].min_nodes_full) return false;
    return true;
  };
  // The 10k point is a single-trial baseline regardless of --trials.
  auto cell_trials = [&](size_t xi) -> size_t {
    return xs[xi] >= kBigN ? 1 : trials;
  };

  const size_t n_cells = series.size() * xs.size();
  std::vector<std::vector<harness::TrialResult>> raw(
      n_cells, std::vector<harness::TrialResult>(trials));

  harness::TrialRunner runner(args.jobs);
  runner.for_each_index(n_cells * trials, [&](size_t task) {
    const size_t cell = task / trials;
    const size_t trial = task % trials;
    const size_t si = cell / xs.size();
    const size_t xi = cell % xs.size();
    if (!series_runs(si, xi) || trial >= cell_trials(xi)) return;

    harness::ScenarioParams p = base;
    harness::apply_scale(p, xs[xi]);
    series[si].configure(p);
    if (xs[xi] >= kBigN) p.sim_limit_s = std::min(p.sim_limit_s, kBigNLimitS);
    // Seed by (x, trial) only — shared across series, so grid/brute and
    // serial/parallel cells run identical workloads.
    p.seed = common::derive_seed(common::derive_seed(args.seed, xi), trial);
    // Per-task trace file, named by grid position (never by thread).
    p.trace = trace::with_path_suffix(
        p.trace, ".c" + std::to_string(cell) + ".t" + std::to_string(trial));
    raw[cell][trial] = harness::run_trial(series[si].driver, p);
  });

  harness::SweepResult result;
  result.title = "scale: trial cost vs node count (grid vs brute force)";
  result.x_label = "nodes";
  result.y_unit = "seconds";
  result.xs = xs;
  for (const auto& s : series) result.series_labels.push_back(s.label);
  for (const auto& m : metrics) result.metric_labels.push_back(m.label);
  result.values.resize(metrics.size());
  for (size_t m = 0; m < metrics.size(); ++m) {
    result.values[m].resize(series.size());
    for (size_t si = 0; si < series.size(); ++si) {
      result.values[m][si].resize(xs.size());
      for (size_t xi = 0; xi < xs.size(); ++xi) {
        if (!series_runs(si, xi)) {
          result.values[m][si][xi] = 0.0;
          if (m == 0) {
            DAPES_LOG_WARN("bench_scale")
                << "skipping " << series[si].label << " at " << xs[xi]
                << " nodes (series runs "
                << (args.quick ? 0.0 : series[si].min_nodes_full) << ".."
                << series[si].max_nodes << "); cell written as 0.0";
          }
          continue;
        }
        const size_t take = cell_trials(xi);
        std::vector<double> samples;
        samples.reserve(take);
        const auto& cell = raw[si * xs.size() + xi];
        for (size_t t = 0; t < take; ++t) {
          samples.push_back(metrics[m].value(cell[t]));
        }
        if (m == 0 && take < trials) {
          DAPES_LOG_INFO("bench_scale")
              << series[si].label << " at " << xs[xi] << " nodes ran " << take
              << "/" << trials << " trials (single-trial 10k point, sim "
              << "horizon <= " << kBigNLimitS << " s)";
        }
        result.values[m][si][xi] =
            harness::aggregate_metric(metrics[m], std::move(samples));
      }
    }
  }

  harness::write_sweep(result, args.format, f);
  if (f != stdout) std::fclose(f);
  return 0;
}
