// Scale bench: the scale.* scenario families swept 44 -> 1000 nodes at
// constant node density (field side grows with sqrt(n); Fig. 7 population
// proportions throughout — see src/harness/scale.hpp).
//
// Unlike the figure benches this one is hand-rolled over the TrialRunner
// rather than run_sweep: every series shares the *same* derived seed per
// (node count, trial), so the grid-vs-brute pairs run bit-identical
// workloads. That makes the committed baseline double as an equivalence
// proof — `dapes+grid+waypoint` and `dapes+brute+waypoint` (and the
// `medium+*` pair) must agree on every deterministic metric, differing
// only in `trial_wall_s`.
//
// Two series groups:
//   dapes+*  — the full DAPES stack (scale.field). Protocol work
//              (PIT/CS lookups, crypto) dominates its trial time, so the
//              grid shows up as a modest win here.
//   medium+* — the medium-bound stress family (scale.medium): broadcast
//              beacons + 20 Hz neighborhood-density sweeps, no NDN
//              stack. This
//              isolates what the spatial grid replaced; the brute-force
//              O(n^2) blowup (and the >=5x grid speedup from ~500 nodes)
//              is measured on this pair.
//
// BENCH_scale.json is the committed baseline (`--trials 1 --jobs 1
// --format json`); absolute wall timings are machine-dependent, the
// tracked quantity is the medium+brute : medium+grid ratio.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "harness/metrics.hpp"
#include "harness/scale.hpp"
#include "harness/trial_runner.hpp"

using namespace dapes;

namespace {

struct SeriesDef {
  const char* label;
  const char* driver;
  std::function<void(harness::ScenarioParams&)> configure;
};

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);

  harness::ScenarioParams base = args.scenario();
  base.files = 1;
  if (!args.paper_scale) base.file_size_bytes = 16 * 1024;
  base.sim_limit_s = args.quick ? 60.0 : 180.0;
  const double stress_limit_s = args.quick ? 10.0 : 30.0;

  const std::vector<double> xs = args.quick
                                     ? std::vector<double>{44, 120}
                                     : std::vector<double>{44, 100, 200, 500,
                                                           1000};

  const std::vector<SeriesDef> series = {
      {"dapes+grid+waypoint", harness::ProtocolNames::kScaleField,
       [](harness::ScenarioParams& p) {
         p.mobility = harness::MobilityKind::kRandomWaypoint;
       }},
      {"dapes+grid+group", harness::ProtocolNames::kScaleField,
       [](harness::ScenarioParams& p) {
         p.mobility = harness::MobilityKind::kGroup;
       }},
      {"dapes+brute+waypoint", harness::ProtocolNames::kScaleField,
       [](harness::ScenarioParams& p) {
         p.mobility = harness::MobilityKind::kRandomWaypoint;
         p.brute_force_medium = true;
       }},
      {"medium+grid", harness::ProtocolNames::kScaleMedium,
       [stress_limit_s](harness::ScenarioParams& p) {
         p.mobility = harness::MobilityKind::kRandomWaypoint;
         p.sim_limit_s = stress_limit_s;
       }},
      {"medium+brute", harness::ProtocolNames::kScaleMedium,
       [stress_limit_s](harness::ScenarioParams& p) {
         p.mobility = harness::MobilityKind::kRandomWaypoint;
         p.sim_limit_s = stress_limit_s;
         p.brute_force_medium = true;
       }},
  };
  const std::vector<harness::SweepMetric> metrics = {
      harness::trial_wall_metric(), harness::download_time_metric(),
      harness::transmissions_k_metric(), harness::completion_metric()};

  // Open the sink first: a bad --out path should fail before the sweep
  // burns minutes of trials (same contract as BenchArgs::run).
  std::FILE* f = stdout;
  if (!args.out.empty()) {
    f = std::fopen(args.out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open --out file %s\n", args.out.c_str());
      return 1;
    }
  }

  const size_t trials = static_cast<size_t>(args.trials);
  const size_t n_cells = series.size() * xs.size();
  std::vector<std::vector<harness::TrialResult>> raw(
      n_cells, std::vector<harness::TrialResult>(trials));

  harness::TrialRunner runner(args.jobs);
  runner.for_each_index(n_cells * trials, [&](size_t task) {
    const size_t cell = task / trials;
    const size_t trial = task % trials;
    const size_t si = cell / xs.size();
    const size_t xi = cell % xs.size();

    harness::ScenarioParams p = base;
    harness::apply_scale(p, xs[xi]);
    series[si].configure(p);
    // Seed by (x, trial) only — shared across series, so grid and brute
    // cells run identical workloads.
    p.seed = common::derive_seed(common::derive_seed(args.seed, xi), trial);
    raw[cell][trial] = harness::run_trial(series[si].driver, p);
  });

  harness::SweepResult result;
  result.title = "scale: trial cost vs node count (grid vs brute force)";
  result.x_label = "nodes";
  result.y_unit = "seconds";
  result.xs = xs;
  for (const auto& s : series) result.series_labels.push_back(s.label);
  for (const auto& m : metrics) result.metric_labels.push_back(m.label);
  result.values.resize(metrics.size());
  for (size_t m = 0; m < metrics.size(); ++m) {
    result.values[m].resize(series.size());
    for (size_t si = 0; si < series.size(); ++si) {
      result.values[m][si].resize(xs.size());
      for (size_t xi = 0; xi < xs.size(); ++xi) {
        std::vector<double> samples;
        samples.reserve(trials);
        for (const auto& t : raw[si * xs.size() + xi]) {
          samples.push_back(metrics[m].value(t));
        }
        result.values[m][si][xi] =
            harness::aggregate_metric(metrics[m], std::move(samples));
      }
    }
  }

  harness::write_sweep(result, args.format, f);
  if (f != stdout) std::fclose(f);
  return 0;
}
