// Figure 9b — number of transmissions vs WiFi range for both RPF flavors,
// with and without PEBA collision mitigation.
//
// Paper shape to verify: transmissions grow with range (more directly
// connected peers, more contention); PEBA cuts transmissions by 22-28%.
#include "bench_common.hpp"

using namespace dapes;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);

  struct Config {
    const char* label;
    core::RpfKind rpf;
    bool peba;
  };
  const std::vector<Config> configs = {
      {"encounter(no-PEBA)", core::RpfKind::kEncounterBased, false},
      {"local(no-PEBA)", core::RpfKind::kLocalNeighborhood, false},
      {"encounter(PEBA)", core::RpfKind::kEncounterBased, true},
      {"local(PEBA)", core::RpfKind::kLocalNeighborhood, true},
  };

  std::vector<double> xs = args.ranges();
  std::vector<harness::Series> series;
  for (const auto& cfg : configs) {
    harness::Series s;
    s.label = cfg.label;
    for (double range : xs) {
      harness::ScenarioParams p = args.scenario();
      p.wifi_range_m = range;
      p.peer.rpf = cfg.rpf;
      p.peer.use_peba = cfg.peba;
      auto trials = harness::run_dapes_trials(p, args.trials);
      s.y.push_back(
          harness::aggregate(trials, harness::metric_transmissions_k));
    }
    series.push_back(std::move(s));
  }

  harness::print_figure(
      "Fig. 9b: transmissions vs WiFi range (RPF x PEBA)",
      "range_m", xs, series, "thousands of frames (p90 over trials)");
  return 0;
}
