// Figure 9b — number of transmissions vs WiFi range for both RPF flavors,
// with and without PEBA collision mitigation.
//
// Paper shape to verify: transmissions grow with range (more directly
// connected peers, more contention); PEBA cuts transmissions by 22-28%.
#include "bench_common.hpp"

using namespace dapes;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);

  harness::SweepSpec spec;
  spec.title = "Fig. 9b: transmissions vs WiFi range (RPF x PEBA)";
  spec.y_unit = "thousands of frames (p90 over trials)";
  spec.base = args.scenario();
  spec.axis = args.range_axis();
  spec.metrics = {harness::transmissions_k_metric()};

  struct Config {
    const char* label;
    core::RpfKind rpf;
    bool peba;
  };
  for (Config cfg :
       {Config{"encounter(no-PEBA)", core::RpfKind::kEncounterBased, false},
        {"local(no-PEBA)", core::RpfKind::kLocalNeighborhood, false},
        {"encounter(PEBA)", core::RpfKind::kEncounterBased, true},
        {"local(PEBA)", core::RpfKind::kLocalNeighborhood, true}}) {
    spec.series.push_back({cfg.label, harness::ProtocolNames::kDapes,
                           [cfg](harness::ScenarioParams& p) {
                             p.peer.rpf = cfg.rpf;
                             p.peer.use_peba = cfg.peba;
                           }});
  }
  return args.run(std::move(spec));
}
