// Churn bench: the Fig. 7 DAPES world under open membership (see
// DESIGN.md "Fault injection & open membership"), swept along the
// per-node departure-rate axis.
//
// Series:
//   leave-only     — churn.swarm with every departure permanent: the
//                    swarm thins out and never recovers capacity.
//   crash+restart  — half the departures are 30 s outages; crashed nodes
//                    come back with their packets (durable state), so
//                    the swarm degrades more gracefully.
//   flash-crowd    — churn.flash on top of the churn: 10 latent
//                    downloaders arrive in a wave at t=60 s and must
//                    catch up against the departures.
//   adversarial    — crash+restart plus 25 % of the initial downloaders
//                    lying in their bitmaps (advertise everything, serve
//                    nothing); honest peers rely on stale-claim demotion
//                    to route around them.
//
// Expected shape: download time grows and completion falls with the
// departure rate in every series; crash+restart sits below leave-only,
// the flash crowd pays a late-arrival penalty on top, and the
// adversarial series costs extra retry rounds but must not collapse —
// the no-stall property test_faults pins down.
//
// BENCH_churn.json is the committed baseline (`--trials 1 --jobs 1
// --format json`). Everything reported is deterministic per seed, so the
// baseline is byte-reproducible on any machine; CI smokes the bench and
// diffs --jobs 1 vs --jobs 8 output for the engine's determinism
// contract.
#include "bench_common.hpp"

using namespace dapes;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);

  harness::SweepSpec spec;
  spec.title = "churn: DAPES under leave/crash churn, flash crowds, liars";
  spec.y_unit = "seconds (p90 over trials)";
  spec.base = args.scenario();
  spec.base.files = 1;
  if (!args.paper_scale && !args.quick) {
    spec.base.file_size_bytes = 16 * 1024;
  }
  spec.base.sim_limit_s = args.quick ? 300.0 : 900.0;

  spec.axis.label = "leave_rate_hz_per_node";
  spec.axis.values = args.quick ? std::vector<double>{0.0, 1.0 / 150.0}
                                : std::vector<double>{0.0, 1.0 / 600.0,
                                                      1.0 / 300.0,
                                                      1.0 / 150.0};
  spec.axis.apply = [](harness::ScenarioParams& p, double x) {
    p.faults.leave_rate_hz = x;
    // Admissions match departures so the swarm holds its size in
    // expectation; the latent pool is sized from this rate.
    p.faults.join_rate_hz = x;
  };

  spec.series.push_back({"leave-only", harness::ProtocolNames::kChurnSwarm,
                         [](harness::ScenarioParams& p) {
                           p.faults.crash_fraction = 0.0;
                           p.faults.force_wiring = true;
                         }});
  spec.series.push_back({"crash+restart", harness::ProtocolNames::kChurnSwarm,
                         [](harness::ScenarioParams& p) {
                           p.faults.crash_fraction = 0.5;
                           p.faults.restart_delay_s = 30.0;
                           p.faults.force_wiring = true;
                         }});
  spec.series.push_back({"flash-crowd", harness::ProtocolNames::kChurnFlash,
                         [](harness::ScenarioParams& p) {
                           p.faults.crash_fraction = 0.5;
                           p.faults.flash_crowd_size = 10;
                           p.faults.flash_crowd_at_s = 60.0;
                         }});
  spec.series.push_back({"adversarial", harness::ProtocolNames::kChurnSwarm,
                         [](harness::ScenarioParams& p) {
                           p.faults.crash_fraction = 0.5;
                           p.faults.adversarial_fraction = 0.25;
                           p.faults.force_wiring = true;
                         }});

  spec.metrics = {harness::download_time_metric(),
                  harness::completion_metric(),
                  harness::transmissions_k_metric()};
  return args.run(std::move(spec));
}
