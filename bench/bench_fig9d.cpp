// Figure 9d — download time when peers INTERLEAVE bitmap and data
// exchanges: data fetching starts as soon as the first bitmap is known
// while further bitmaps keep arriving.
//
// Paper shape to verify: interleaving beats bitmaps-first (Fig. 9c) by
// 16-23%; more bitmaps still help (the RPF strategy gets more accurate).
//
// The "N bitmaps" label bounds how many bitmaps the advertisement round
// aims to collect; with interleaving the gate opens at the first one, so
// the series mostly differ in advertisement traffic.
#include "bench_common.hpp"

using namespace dapes;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);

  const std::vector<std::pair<const char*, int>> configs = {
      {"1 bitmap", 1}, {"2 bitmaps", 2}, {"3 bitmaps", 3},
      {"4 bitmaps", 4}, {"all bitmaps", 0},
  };

  std::vector<double> xs = args.ranges();
  std::vector<harness::Series> series;
  for (const auto& [label, b] : configs) {
    harness::Series s;
    s.label = label;
    for (double range : xs) {
      harness::ScenarioParams p = args.scenario();
      p.wifi_range_m = range;
      p.peer.advertisement_mode = core::AdvertisementMode::kInterleaved;
      p.peer.bitmaps_before_data = b;
      auto trials = harness::run_dapes_trials(p, args.trials);
      s.y.push_back(harness::aggregate(trials, harness::metric_download_time));
    }
    series.push_back(std::move(s));
  }

  harness::print_figure(
      "Fig. 9d: download time, bitmap exchanges interleaved with data",
      "range_m", xs, series, "seconds (p90 over trials)");
  return 0;
}
