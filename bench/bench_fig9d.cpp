// Figure 9d — download time when peers INTERLEAVE bitmap and data
// exchanges: data fetching starts as soon as the first bitmap is known
// while further bitmaps keep arriving.
//
// Paper shape to verify: interleaving beats bitmaps-first (Fig. 9c) by
// 16-23%; more bitmaps still help (the RPF strategy gets more accurate).
//
// The "N bitmaps" label bounds how many bitmaps the advertisement round
// aims to collect; with interleaving the gate opens at the first one, so
// the series mostly differ in advertisement traffic.
#include "bench_common.hpp"

using namespace dapes;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);

  harness::SweepSpec spec;
  spec.title = "Fig. 9d: download time, bitmap exchanges interleaved with data";
  spec.y_unit = "seconds (p90 over trials)";
  spec.base = args.scenario();
  spec.axis = args.range_axis();
  spec.metrics = {harness::download_time_metric()};

  for (auto [label, b] : std::initializer_list<std::pair<const char*, int>>{
           {"1 bitmap", 1}, {"2 bitmaps", 2}, {"3 bitmaps", 3},
           {"4 bitmaps", 4}, {"all bitmaps", 0}}) {
    spec.series.push_back(
        {label, harness::ProtocolNames::kDapes,
         [b = b](harness::ScenarioParams& p) {
           p.peer.advertisement_mode = core::AdvertisementMode::kInterleaved;
           p.peer.bitmaps_before_data = b;
         }});
  }
  return args.run(std::move(spec));
}
