// Crypto hot-path benchmark: SHA-256 engines and the verify-result cache.
//
// Two workloads share one (message-size x engine) grid:
//
//   * Hash throughput: one-shot Sha256::hash plus sha256_many at batch
//     widths 4/8/32 — the message-size x engine x batch-width sweep that
//     shows what each SIMD kernel buys over the scalar reference.
//   * The 500-node verify-bound workload: one sender broadcasts signed
//     Data frames over a real Medium to 500 in-range receivers, every
//     receiver verifying every frame. Run twice per cell — with the
//     delivery prewarm + verify cache (the default stack) and with the
//     cache off (per-receiver scalar-path verifies). The "scalar" series'
//     uncached row is the committed scalar baseline the acceptance
//     criterion compares against (EXPERIMENTS.md "Crypto engines").
//
//   bench_crypto [--trials N] [--quick] [--seed S] [--jobs N] [--no-wall]
//                [--format text|csv|json] [--out FILE]
//
// With --no-wall the throughput metrics are replaced by deterministic
// ones — a digest checksum per cell (equal across engines, re-proving
// equivalence) and the verify workload's counter readings — so the output
// is byte-identical for any --jobs value. Engine selection is process
// global, so cells serialize on a mutex: --jobs affects scheduling only,
// never results, and wall timings are never taken concurrently.
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "crypto/keychain.hpp"
#include "crypto/sha256.hpp"
#include "crypto/verify_cache.hpp"
#include "harness/sweep.hpp"
#include "harness/trial_runner.hpp"
#include "ndn/face.hpp"
#include "ndn/packet.hpp"
#include "ndn/verify_prewarm.hpp"
#include "sim/medium.hpp"
#include "sim/mobility.hpp"

namespace dapes::bench {
namespace {

using common::Bytes;
using common::BytesView;

constexpr size_t kVerifyNodes = 500;  // receivers in the verify workload
constexpr int kVerifyFrames = 4;      // broadcasts per timed repetition

Bytes random_message(common::Rng& rng, size_t len) {
  Bytes b(len);
  for (auto& byte : b) byte = static_cast<uint8_t>(rng.uniform_int(0, 255));
  return b;
}

/// Time `op()` for ~15 ms (after one warm-up call) and return ops/second.
template <typename Op>
double ops_per_second(Op&& op) {
  using clock = std::chrono::steady_clock;
  op();
  constexpr auto kBudget = std::chrono::milliseconds(15);
  size_t ops = 0;
  auto start = clock::now();
  auto deadline = start + kBudget;
  while (clock::now() < deadline) {
    op();
    ++ops;
  }
  double seconds = std::chrono::duration<double>(clock::now() - start).count();
  return static_cast<double>(ops) / seconds;
}

// --- hash throughput ------------------------------------------------------

/// Wire MB/s of sha256_many over `width` messages of `msg_bytes` each
/// (width 1 uses the one-shot path). The active engine must already be
/// selected.
double hash_mbps(size_t msg_bytes, size_t width, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<Bytes> messages;
  std::vector<BytesView> views;
  for (size_t i = 0; i < width; ++i) {
    messages.push_back(random_message(rng, msg_bytes));
    views.push_back(BytesView(messages.back().data(), messages.back().size()));
  }
  std::vector<crypto::Digest> out(width);
  double ops;
  if (width == 1) {
    ops = ops_per_second([&] { out[0] = crypto::Sha256::hash(views[0]); });
  } else {
    ops = ops_per_second(
        [&] { crypto::sha256_many(views.data(), out.data(), width); });
  }
  return ops * static_cast<double>(width) * static_cast<double>(msg_bytes) /
         1e6;
}

/// Deterministic stand-in for the throughput rows under --no-wall: the
/// first four bytes of the XOR of 32 digests, as an exact double. Equal
/// across engines (digests are engine-independent), so the emitted grid
/// re-proves equivalence while staying byte-diffable across --jobs.
double digest_checksum(size_t msg_bytes, uint64_t seed) {
  common::Rng rng(seed);
  constexpr size_t kWidth = 32;
  std::vector<Bytes> messages;
  std::vector<BytesView> views;
  for (size_t i = 0; i < kWidth; ++i) {
    messages.push_back(random_message(rng, msg_bytes));
    views.push_back(BytesView(messages.back().data(), messages.back().size()));
  }
  std::vector<crypto::Digest> out(kWidth);
  crypto::sha256_many(views.data(), out.data(), kWidth);
  uint8_t acc[4] = {0, 0, 0, 0};
  for (const crypto::Digest& d : out) {
    for (size_t i = 0; i < d.bytes.size(); ++i) acc[i % 4] ^= d.bytes[i];
  }
  uint32_t folded = (uint32_t(acc[0]) << 24) | (uint32_t(acc[1]) << 16) |
                    (uint32_t(acc[2]) << 8) | uint32_t(acc[3]);
  return static_cast<double>(folded);
}

// --- the 500-node verify-bound workload -----------------------------------

/// One sender plus kVerifyNodes stationary receivers on a shared medium,
/// all inside radio range; every receiver decodes and verifies every
/// broadcast Data frame. The crypto stack under test (active engine,
/// cache on/off) is configured by the caller.
struct VerifyWorld {
  sim::Scheduler sched;
  common::Rng rng{42};
  crypto::KeyChain keychain;
  crypto::PrivateKey key;
  std::unique_ptr<sim::Medium> medium;
  std::unique_ptr<crypto::VerifyCache> cache;
  std::unique_ptr<ndn::DataVerifyPrewarm> prewarm;
  std::unique_ptr<crypto::VerifyCacheScope> scope;
  std::vector<std::unique_ptr<sim::StationaryMobility>> spots;
  std::vector<std::shared_ptr<sim::Radio>> radios;
  std::vector<std::shared_ptr<ndn::WifiFace>> receivers;
  std::unique_ptr<sim::Radio> sender_radio;
  std::unique_ptr<ndn::WifiFace> sender;
  size_t verified = 0;
  int frame_counter = 0;

  explicit VerifyWorld(bool use_cache) {
    key = keychain.generate_key("/bench/crypto/producer");
    sim::Medium::Params mp;
    mp.range_m = 10000.0;  // everyone hears everyone
    mp.loss_rate = 0.0;
    medium = std::make_unique<sim::Medium>(sched, mp, rng.fork());
    if (use_cache) {
      cache = std::make_unique<crypto::VerifyCache>();
      prewarm = std::make_unique<ndn::DataVerifyPrewarm>(*cache, keychain);
      medium->set_prewarm(prewarm.get());
      scope = std::make_unique<crypto::VerifyCacheScope>(cache.get());
    }

    spots.push_back(std::make_unique<sim::StationaryMobility>(sim::Vec2{0, 0}));
    sim::NodeId sender_id = medium->add_node(spots.back().get(), nullptr);
    for (size_t r = 0; r < kVerifyNodes; ++r) {
      spots.push_back(std::make_unique<sim::StationaryMobility>(
          sim::Vec2{5.0 + static_cast<double>(r % 25),
                    5.0 + static_cast<double>(r / 25)}));
      auto idx = receivers.size();
      sim::NodeId node = medium->add_node(
          spots.back().get(),
          [this, idx](const sim::FramePtr& frame, sim::NodeId) {
            receivers[idx]->on_frame(frame);
          });
      auto radio =
          std::make_shared<sim::Radio>(sched, *medium, node, rng.fork());
      auto face = std::make_shared<ndn::WifiFace>(sched, *radio, node,
                                                  rng.fork(),
                                                  common::Duration{0});
      face->set_receive_handlers(nullptr, [this](const ndn::Data& d) {
        if (d.verify(keychain)) ++verified;
      });
      radios.push_back(std::move(radio));
      receivers.push_back(std::move(face));
    }
    sender_radio =
        std::make_unique<sim::Radio>(sched, *medium, sender_id, rng.fork());
    sender = std::make_unique<ndn::WifiFace>(sched, *sender_radio, sender_id,
                                             rng.fork(), common::Duration{0});
  }

  /// Broadcast kVerifyFrames fresh signed frames and drain the scheduler:
  /// kVerifyFrames x kVerifyNodes receiver verifies per call.
  void round(size_t content_bytes) {
    for (int f = 0; f < kVerifyFrames; ++f) {
      ndn::Data data(
          ndn::Name("/bench/crypto/" + std::to_string(frame_counter++)));
      data.set_content(
          Bytes(content_bytes, static_cast<uint8_t>(frame_counter)));
      data.set_freshness(common::Duration::seconds(1e6));
      data.sign(key);
      sender->send_data(data);
      sched.run();
    }
  }
};

/// Receiver verifies per wall second, in thousands.
double verify_kops(bool use_cache, size_t content_bytes) {
  VerifyWorld world(use_cache);
  double rounds = ops_per_second([&] { world.round(content_bytes); });
  return rounds * kVerifyFrames * kVerifyNodes / 1e3;
}

/// Deterministic counter readings from one fixed verify round.
struct VerifyCounts {
  double digests = 0;   // content digests actually computed
  double mac_hits = 0;  // receiver verifies served from the cache
};

VerifyCounts verify_counts(bool use_cache, size_t content_bytes) {
  VerifyWorld world(use_cache);
  crypto::verify_counters().reset();
  world.round(content_bytes);
  VerifyCounts c;
  c.digests = static_cast<double>(
      crypto::verify_counters().content_digests_computed.load());
  c.mac_hits =
      static_cast<double>(crypto::verify_counters().mac_hits.load());
  crypto::verify_counters().reset();
  return c;
}

}  // namespace
}  // namespace dapes::bench

int main(int argc, char** argv) {
  using namespace dapes;
  bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);

  const std::vector<size_t> sizes =
      args.quick ? std::vector<size_t>{256, 1480}
                 : std::vector<size_t>{64, 256, 1480, 4096};
  std::vector<std::string> engines;
  for (const crypto::Sha256Engine* e : crypto::all_engines()) {
    engines.push_back(e->name);
  }

  const std::vector<std::string> metrics =
      args.no_wall
          ? std::vector<std::string>{"digest_check", "verify_digests",
                                     "verify_digests_nocache",
                                     "verify_mac_hits"}
          : std::vector<std::string>{"hash_mbps_b1", "hash_mbps_b4",
                                     "hash_mbps_b8", "hash_mbps_b32",
                                     "verify_kops", "verify_kops_nocache"};

  // Open the sink first: a bad --out path should fail before the grid
  // burns any time (the BenchArgs::run convention).
  std::FILE* f = stdout;
  if (!args.out.empty()) {
    f = std::fopen(args.out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open --out file %s\n", args.out.c_str());
      return 1;
    }
  }

  harness::SweepResult result;
  result.title = "crypto: SHA-256 engines and the verify cache";
  result.x_label = "message_bytes";
  result.y_unit = args.no_wall ? "count" : "MB/s | kops/s";
  for (size_t s : sizes) result.xs.push_back(static_cast<double>(s));
  result.series_labels = engines;
  result.metric_labels = metrics;
  result.values.assign(
      metrics.size(),
      std::vector<std::vector<double>>(
          engines.size(), std::vector<double>(sizes.size(), 0.0)));

  // set_engine() and the verify counters are process-global, so the cell
  // body serializes on a mutex: --jobs changes scheduling, never output,
  // and no two wall timings ever overlap.
  std::mutex cell_mutex;
  harness::TrialRunner runner(args.jobs);
  const size_t cells = engines.size() * sizes.size();
  runner.for_each_index(cells, [&](size_t cell) {
    const size_t ei = cell / sizes.size();
    const size_t xi = cell % sizes.size();
    std::lock_guard<std::mutex> lock(cell_mutex);
    if (!crypto::set_engine(engines[ei])) return;
    // Content seeds depend on the size only, so deterministic rows are
    // equal across engines — the equivalence property, visible in the
    // emitted grid.
    const uint64_t seed = common::derive_seed(args.seed, xi);
    if (args.no_wall) {
      bench::VerifyCounts cached = bench::verify_counts(true, sizes[xi]);
      bench::VerifyCounts uncached = bench::verify_counts(false, sizes[xi]);
      result.values[0][ei][xi] = bench::digest_checksum(sizes[xi], seed);
      result.values[1][ei][xi] = cached.digests;
      result.values[2][ei][xi] = uncached.digests;
      result.values[3][ei][xi] = cached.mac_hits;
    } else {
      const size_t widths[4] = {1, 4, 8, 32};
      for (int w = 0; w < 4; ++w) {
        double best = 0.0;
        for (int t = 0; t < args.trials; ++t) {
          best = std::max(best, bench::hash_mbps(sizes[xi], widths[w], seed));
        }
        result.values[w][ei][xi] = best;
      }
      double cached = 0.0, uncached = 0.0;
      for (int t = 0; t < args.trials; ++t) {
        cached = std::max(cached, bench::verify_kops(true, sizes[xi]));
        uncached = std::max(uncached, bench::verify_kops(false, sizes[xi]));
      }
      result.values[4][ei][xi] = cached;
      result.values[5][ei][xi] = uncached;
    }
    crypto::set_engine("auto");
  });

  harness::write_sweep(result, args.format, f);
  if (f != stdout) std::fclose(f);
  return 0;
}
