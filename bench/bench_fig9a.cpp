// Figure 9a — file collection download time vs WiFi range for the four
// RPF configurations: {same, random} first packet x {encounter-based,
// local neighborhood} RPF. Peers fetch all bitmaps before downloading
// (the figure's setup per §VI-C "when peers first fetch the bitmap of all
// the others within their communication range and then share data").
//
// Paper shape to verify: local-neighborhood ~12-14% faster than
// encounter-based; random first packet ~11-15% faster than same.
#include "bench_common.hpp"

using namespace dapes;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);

  harness::SweepSpec spec;
  spec.title = "Fig. 9a: download time vs WiFi range (RPF strategies)";
  spec.y_unit = "seconds (p90 over trials)";
  spec.base = args.scenario();
  spec.axis = args.range_axis();
  spec.metrics = {harness::download_time_metric()};

  struct Config {
    const char* label;
    core::RpfKind rpf;
    bool random_start;
  };
  for (Config cfg : {Config{"same+encounter", core::RpfKind::kEncounterBased, false},
                     {"random+encounter", core::RpfKind::kEncounterBased, true},
                     {"same+local", core::RpfKind::kLocalNeighborhood, false},
                     {"random+local", core::RpfKind::kLocalNeighborhood, true}}) {
    spec.series.push_back(
        {cfg.label, harness::ProtocolNames::kDapes,
         [cfg](harness::ScenarioParams& p) {
           p.peer.rpf = cfg.rpf;
           p.peer.random_start = cfg.random_start;
           p.peer.advertisement_mode = core::AdvertisementMode::kBitmapsFirst;
           p.peer.bitmaps_before_data = 0;  // all bitmaps, per the figure
         }});
  }
  return args.run(std::move(spec));
}
