// Figure 9a — file collection download time vs WiFi range for the four
// RPF configurations: {same, random} first packet x {encounter-based,
// local neighborhood} RPF. Peers fetch all bitmaps before downloading
// (the figure's setup per §VI-C "when peers first fetch the bitmap of all
// the others within their communication range and then share data").
//
// Paper shape to verify: local-neighborhood ~12-14% faster than
// encounter-based; random first packet ~11-15% faster than same.
#include "bench_common.hpp"

using namespace dapes;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);

  struct Config {
    const char* label;
    core::RpfKind rpf;
    bool random_start;
  };
  const std::vector<Config> configs = {
      {"same+encounter", core::RpfKind::kEncounterBased, false},
      {"random+encounter", core::RpfKind::kEncounterBased, true},
      {"same+local", core::RpfKind::kLocalNeighborhood, false},
      {"random+local", core::RpfKind::kLocalNeighborhood, true},
  };

  std::vector<double> xs = args.ranges();
  std::vector<harness::Series> series;
  for (const auto& cfg : configs) {
    harness::Series s;
    s.label = cfg.label;
    for (double range : xs) {
      harness::ScenarioParams p = args.scenario();
      p.wifi_range_m = range;
      p.peer.rpf = cfg.rpf;
      p.peer.random_start = cfg.random_start;
      p.peer.advertisement_mode = core::AdvertisementMode::kBitmapsFirst;
      p.peer.bitmaps_before_data = 0;  // all bitmaps, per the figure setup
      auto trials = harness::run_dapes_trials(p, args.trials);
      s.y.push_back(harness::aggregate(trials, harness::metric_download_time));
    }
    series.push_back(std::move(s));
  }

  harness::print_figure(
      "Fig. 9a: download time vs WiFi range (RPF strategies)",
      "range_m", xs, series, "seconds (p90 over trials)");
  return 0;
}
