// Figure 9c — download time when peers exchange bitmaps FIRST and only
// then download data, for 1-4 exchanged bitmaps and "all bitmaps"
// (every peer within communication range).
//
// Paper shape to verify: 2-3 bitmaps are best at short ranges, 4 at long
// ranges; "all bitmaps" wastes contact time and is worst at small ranges.
#include "bench_common.hpp"

using namespace dapes;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);

  const std::vector<std::pair<const char*, int>> configs = {
      {"1 bitmap", 1}, {"2 bitmaps", 2}, {"3 bitmaps", 3},
      {"4 bitmaps", 4}, {"all bitmaps", 0},
  };

  std::vector<double> xs = args.ranges();
  std::vector<harness::Series> series;
  for (const auto& [label, b] : configs) {
    harness::Series s;
    s.label = label;
    for (double range : xs) {
      harness::ScenarioParams p = args.scenario();
      p.wifi_range_m = range;
      p.peer.advertisement_mode = core::AdvertisementMode::kBitmapsFirst;
      p.peer.bitmaps_before_data = b;
      auto trials = harness::run_dapes_trials(p, args.trials);
      s.y.push_back(harness::aggregate(trials, harness::metric_download_time));
    }
    series.push_back(std::move(s));
  }

  harness::print_figure(
      "Fig. 9c: download time, bitmaps exchanged before data download",
      "range_m", xs, series, "seconds (p90 over trials)");
  return 0;
}
