// Figure 9c — download time when peers exchange bitmaps FIRST and only
// then download data, for 1-4 exchanged bitmaps and "all bitmaps"
// (every peer within communication range).
//
// Paper shape to verify: 2-3 bitmaps are best at short ranges, 4 at long
// ranges; "all bitmaps" wastes contact time and is worst at small ranges.
#include "bench_common.hpp"

using namespace dapes;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);

  harness::SweepSpec spec;
  spec.title = "Fig. 9c: download time, bitmaps exchanged before data download";
  spec.y_unit = "seconds (p90 over trials)";
  spec.base = args.scenario();
  spec.axis = args.range_axis();
  spec.metrics = {harness::download_time_metric()};

  for (auto [label, b] : std::initializer_list<std::pair<const char*, int>>{
           {"1 bitmap", 1}, {"2 bitmaps", 2}, {"3 bitmaps", 3},
           {"4 bitmaps", 4}, {"all bitmaps", 0}}) {
    spec.series.push_back(
        {label, harness::ProtocolNames::kDapes,
         [b = b](harness::ScenarioParams& p) {
           p.peer.advertisement_mode = core::AdvertisementMode::kBitmapsFirst;
           p.peer.bitmaps_before_data = b;
         }});
  }
  return args.run(std::move(spec));
}
