// Micro-benchmarks (google-benchmark) for the hot paths of the library:
// hashing, Merkle construction, TLV packet codecs, bitmap operations,
// RPF ranking, and the event scheduler. These bound the simulator's
// throughput and the per-packet CPU cost a real deployment would pay.
#include <benchmark/benchmark.h>

#include "crypto/merkle.hpp"
#include "dapes/collection.hpp"
#include "crypto/sha256.hpp"
#include "dapes/bitmap.hpp"
#include "dapes/rpf.hpp"
#include "ndn/packet.hpp"
#include "sim/scheduler.hpp"

using namespace dapes;

static void BM_Sha256_1KB(benchmark::State& state) {
  common::Bytes data(1024, 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::Sha256::hash(common::BytesView(data.data(), data.size())));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KB);

static void BM_MerkleBuild(benchmark::State& state) {
  std::vector<crypto::Digest> leaves;
  for (int i = 0; i < state.range(0); ++i) {
    leaves.push_back(crypto::Sha256::hash("leaf" + std::to_string(i)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::MerkleTree::compute_root(leaves));
  }
}
BENCHMARK(BM_MerkleBuild)->Arg(128)->Arg(1024)->Arg(10240);

static void BM_InterestEncodeDecode(benchmark::State& state) {
  ndn::Interest interest(ndn::Name("/collection-1533783192/file-3/177"));
  for (auto _ : state) {
    interest.set_nonce(0x1234abcd);  // invalidate the wire cache
    common::BufferSlice wire = interest.wire();
    benchmark::DoNotOptimize(ndn::Interest::decode(wire));
  }
}
BENCHMARK(BM_InterestEncodeDecode);

static void BM_DataEncodeDecode_1KB(benchmark::State& state) {
  ndn::Data data(ndn::Name("/collection-1533783192/file-3/177"));
  common::Duration freshness = data.freshness();
  data.set_content(common::Bytes(1024, 0x77));
  for (auto _ : state) {
    data.set_freshness(freshness);  // invalidate the wire cache
    common::BufferSlice wire = data.wire();
    benchmark::DoNotOptimize(ndn::Data::decode(wire));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_DataEncodeDecode_1KB);

static void BM_DataForwardZeroCopy_1KB(benchmark::State& state) {
  // The forward path: decode an incoming frame, re-send the cached wire.
  ndn::Data data(ndn::Name("/collection-1533783192/file-3/177"));
  data.set_content(common::Bytes(1024, 0x77));
  common::BufferSlice frame = data.wire();
  for (auto _ : state) {
    auto decoded = ndn::Data::decode(frame);
    benchmark::DoNotOptimize(decoded->wire());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_DataForwardZeroCopy_1KB);

static void BM_BitmapEncodeDecode(benchmark::State& state) {
  core::Bitmap bm(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < bm.size(); i += 3) bm.set(i);
  for (auto _ : state) {
    common::Bytes wire = bm.encode();
    benchmark::DoNotOptimize(
        core::Bitmap::decode(common::BytesView(wire.data(), wire.size())));
  }
}
BENCHMARK(BM_BitmapEncodeDecode)->Arg(1280)->Arg(10240);

static void BM_BitmapRarityCount(benchmark::State& state) {
  core::Bitmap a(10240), b(10240);
  for (size_t i = 0; i < a.size(); i += 2) a.set(i);
  for (size_t i = 0; i < b.size(); i += 3) b.set(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.count_set_and_missing_from(b));
  }
}
BENCHMARK(BM_BitmapRarityCount);

static void BM_RpfRank(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  common::Rng rng(5);
  std::vector<uint32_t> counts(n);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) {
    counts[i] = static_cast<uint32_t>(rng.next_below(8));
    order[i] = i;
  }
  rng.shuffle(order);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::rank_packets(counts, 8, order));
  }
}
BENCHMARK(BM_RpfRank)->Arg(1280)->Arg(10240);

static void BM_SchedulerChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    for (int i = 0; i < 1000; ++i) {
      sched.schedule(common::Duration::microseconds(i % 97), [] {});
    }
    sched.run();
    benchmark::DoNotOptimize(sched.executed());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_SchedulerChurn);

static void BM_SyntheticPayload_1KB(benchmark::State& state) {
  ndn::Name name("/coll/file/42");
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Collection::synthetic_payload(name, 1024));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_SyntheticPayload_1KB);

BENCHMARK_MAIN();
