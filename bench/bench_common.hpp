// Shared command-line handling for the figure/table benches.
//
// Every bench accepts:
//   --trials N       trials per configuration (default 2; paper used 10)
//   --quick          smaller workload + fewer configurations (CI-speed)
//   --paper-scale    run at the paper's full collection size and data rate
//   --seed S         base RNG seed
//
// The default configuration is the scaled setup described in
// EXPERIMENTS.md: collection size and radio rate both divided by 8, which
// preserves the airtime/contact-time ratio that shapes every figure.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/metrics.hpp"
#include "harness/scenario.hpp"

namespace dapes::bench {

struct BenchArgs {
  int trials = 2;
  bool quick = false;
  bool paper_scale = false;
  uint64_t seed = 1;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
        args.trials = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--quick") == 0) {
        args.quick = true;
      } else if (std::strcmp(argv[i], "--paper-scale") == 0) {
        args.paper_scale = true;
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        args.seed = static_cast<uint64_t>(std::atoll(argv[++i]));
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::printf(
            "usage: %s [--trials N] [--quick] [--paper-scale] [--seed S]\n",
            argv[0]);
        std::exit(0);
      }
    }
    return args;
  }

  /// Baseline scenario with scaling applied.
  harness::ScenarioParams scenario() const {
    harness::ScenarioParams p;
    p.seed = seed;
    if (paper_scale) {
      p.file_size_bytes = 1024 * 1024;
      p.data_rate_bps = 11e6;
    }
    if (quick) {
      p.file_size_bytes = 32 * 1024;
      p.sim_limit_s = 600.0;
    }
    return p;
  }

  /// WiFi ranges to sweep (paper: 20..100 m).
  std::vector<double> ranges() const {
    if (quick) return {40.0, 80.0};
    return {20.0, 40.0, 60.0, 80.0, 100.0};
  }
};

}  // namespace dapes::bench
