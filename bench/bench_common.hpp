// Shared command-line handling for the figure/table benches.
//
// Every bench accepts:
//   --trials N           trials per configuration (default 2; paper used 10)
//   --quick              smaller workload + fewer configurations (CI-speed)
//   --paper-scale        run at the paper's full collection size and data rate
//   --seed S             base RNG seed
//   --jobs N             worker threads for the trial fan-out (default: all
//                        hardware threads; results are identical for any N)
//   --trial-threads N    lanes for the phase-parallel engine *inside* each
//                        trial (default 0 = plain serial event loop;
//                        deterministic metrics identical for any N, and
//                        the knob composes with --jobs)
//   --no-wall            omit wall-clock metrics from the output, leaving
//                        only deterministic ones (for byte-for-byte diffs)
//   --no-verify-cache    disable the per-trial verify-result cache and
//                        delivery prewarm, retaining the per-receiver
//                        scalar verify path (results are identical either
//                        way; this is the equivalence/baseline knob)
//   --trace SINK[:PATH]  structured event tracing: SINK is ring, file or
//                        null; PATH is where the merged binary trace goes
//                        (required for file, optional for ring). Runners
//                        suffix PATH per cell/trial (".c<cell>.t<trial>"),
//                        so traced sweeps compose with --jobs. Off by
//                        default; trace content is bit-identical for any
//                        --jobs x --trial-threads combination.
//   --log-level LEVEL    minimum log level (trace|debug|info|warn|error|off;
//                        default warn). DAPES_LOG_LEVEL in the environment
//                        sets the same knob; the flag wins.
//   --format text|csv|json   output format (default text)
//   --out FILE           write output to FILE instead of stdout
//
// Flags also accept the --flag=value spelling. Unknown flags and malformed
// values are rejected with exit code 2.
//
// The default configuration is the scaled setup described in
// EXPERIMENTS.md: collection size and radio rate both divided by 8, which
// preserves the airtime/contact-time ratio that shapes every figure.
#pragma once

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "trace/record.hpp"
#include "trace/sinks.hpp"

namespace dapes::bench {

struct BenchArgs {
  int trials = 2;
  bool quick = false;
  bool paper_scale = false;
  uint64_t seed = 1;
  int jobs = 0;           // 0 = all hardware threads
  int trial_threads = 0;  // 0 = serial trial interior
  bool no_wall = false;   // drop wall-clock metrics (determinism diffs)
  bool verify_cache = true;  // --no-verify-cache clears it
  trace::TraceConfig trace;  // --trace; empty sink = tracing off
  harness::OutputFormat format = harness::OutputFormat::kText;
  std::string out;  // empty = stdout

  static void usage(const char* prog, std::FILE* to) {
    std::fprintf(to,
                 "usage: %s [--trials N] [--quick] [--paper-scale] [--seed S]\n"
                 "       %*s [--jobs N] [--trial-threads N] [--no-wall]\n"
                 "       %*s [--no-verify-cache]\n"
                 "       %*s [--trace SINK[:PATH]] [--log-level LEVEL]\n"
                 "       %*s [--format text|csv|json] [--out FILE]\n",
                 prog, static_cast<int>(std::strlen(prog)), "",
                 static_cast<int>(std::strlen(prog)), "",
                 static_cast<int>(std::strlen(prog)), "",
                 static_cast<int>(std::strlen(prog)), "");
  }

  [[noreturn]] static void die(const char* prog, const std::string& message) {
    std::fprintf(stderr, "%s: %s\n", prog, message.c_str());
    usage(prog, stderr);
    std::exit(2);
  }

  static BenchArgs parse(int argc, char** argv) {
    const char* prog = argc > 0 ? argv[0] : "bench";
    BenchArgs args;
    // Environment default first; an explicit --log-level below overrides.
    common::apply_log_level_from_env();

    // Accepts --flag value and --flag=value; rejects anything unknown.
    int i = 1;
    auto value_of = [&](const char* flag,
                        const char* inline_value) -> std::string {
      if (inline_value != nullptr) return inline_value;
      if (i + 1 >= argc) die(prog, std::string(flag) + " requires a value");
      return argv[++i];
    };
    auto parse_int = [&](const char* flag, const std::string& v, long min_v) {
      char* end = nullptr;
      errno = 0;
      long n = std::strtol(v.c_str(), &end, 10);
      if (errno != 0 || end == v.c_str() || *end != '\0' || n < min_v ||
          n > INT_MAX) {
        die(prog, std::string(flag) + ": invalid value \"" + v + "\"");
      }
      return n;
    };

    for (; i < argc; ++i) {
      std::string flag = argv[i];
      const char* inline_value = nullptr;
      size_t eq = flag.find('=');
      if (eq != std::string::npos) {
        inline_value = argv[i] + eq + 1;
        flag.resize(eq);
      }

      if (flag == "--trials") {
        args.trials = static_cast<int>(
            parse_int("--trials", value_of("--trials", inline_value), 1));
      } else if (flag == "--quick") {
        args.quick = true;
      } else if (flag == "--paper-scale") {
        args.paper_scale = true;
      } else if (flag == "--seed") {
        std::string v = value_of("--seed", inline_value);
        char* end = nullptr;
        errno = 0;
        uint64_t s = std::strtoull(v.c_str(), &end, 10);
        if (errno != 0 || end == v.c_str() || *end != '\0') {
          die(prog, "--seed: invalid value \"" + v + "\"");
        }
        args.seed = s;
      } else if (flag == "--jobs") {
        args.jobs = static_cast<int>(
            parse_int("--jobs", value_of("--jobs", inline_value), 1));
      } else if (flag == "--trial-threads") {
        args.trial_threads = static_cast<int>(parse_int(
            "--trial-threads", value_of("--trial-threads", inline_value), 0));
      } else if (flag == "--no-wall") {
        args.no_wall = true;
      } else if (flag == "--no-verify-cache") {
        args.verify_cache = false;
      } else if (flag == "--trace") {
        std::string v = value_of("--trace", inline_value);
        size_t colon = v.find(':');
        args.trace.sink = v.substr(0, colon);
        if (colon != std::string::npos) args.trace.path = v.substr(colon + 1);
        if (args.trace.sink.empty()) {
          die(prog, "--trace: expected SINK[:PATH], got \"" + v + "\"");
        }
        const auto known = trace::TraceSinkRegistry::instance().names();
        if (std::find(known.begin(), known.end(), args.trace.sink) ==
            known.end()) {
          std::string list;
          for (const auto& n : known) {
            if (!list.empty()) list += '|';
            list += n;
          }
          die(prog, "--trace: unknown sink \"" + args.trace.sink +
                        "\" (expected " + list + ")");
        }
      } else if (flag == "--log-level") {
        std::string v = value_of("--log-level", inline_value);
        auto level = common::parse_log_level(v);
        if (!level) {
          die(prog,
              "--log-level: expected trace|debug|info|warn|error|off, got \"" +
                  v + "\"");
        }
        common::set_log_level(*level);
      } else if (flag == "--format") {
        std::string v = value_of("--format", inline_value);
        auto f = harness::parse_output_format(v);
        if (!f) die(prog, "--format: expected text|csv|json, got \"" + v + "\"");
        args.format = *f;
      } else if (flag == "--out") {
        args.out = value_of("--out", inline_value);
      } else if (flag == "--help") {
        usage(prog, stdout);
        std::exit(0);
      } else {
        die(prog, "unknown flag \"" + std::string(argv[i]) + "\"");
      }
    }
    return args;
  }

  /// Baseline scenario with scaling applied.
  harness::ScenarioParams scenario() const {
    harness::ScenarioParams p;
    p.seed = seed;
    p.trial_threads = trial_threads;
    p.verify_cache = verify_cache;
    p.trace = trace;
    if (paper_scale) {
      p.file_size_bytes = 1024 * 1024;
      p.data_rate_bps = 11e6;
    }
    if (quick) {
      p.file_size_bytes = 32 * 1024;
      p.sim_limit_s = 600.0;
    }
    return p;
  }

  /// WiFi ranges to sweep (paper: 20..100 m).
  std::vector<double> ranges() const {
    if (quick) return {40.0, 80.0};
    return {20.0, 40.0, 60.0, 80.0, 100.0};
  }

  /// The usual x axis: WiFi range.
  harness::SweepAxis range_axis() const {
    harness::SweepAxis axis;
    axis.values = ranges();
    return axis;
  }

  /// Run the sweep (trials and parallelism from the flags) and emit it to
  /// --out in --format. The bench's exit code.
  int run(harness::SweepSpec spec) const {
    spec.trials = trials;
    // Open the sink first: a bad --out path should fail before the sweep
    // burns minutes of trials.
    std::FILE* f = stdout;
    if (!out.empty()) {
      f = std::fopen(out.c_str(), "w");
      if (f == nullptr) {
        DAPES_LOG_ERROR("bench") << "cannot open --out file " << out;
        return 1;
      }
    }
    int code = 0;
    try {
      harness::SweepResult result =
          harness::run_sweep(spec, harness::TrialRunner(jobs));
      harness::write_sweep(result, format, f);
    } catch (const std::exception& e) {
      DAPES_LOG_ERROR("bench") << "sweep failed: " << e.what();
      code = 1;
    }
    if (f != stdout) std::fclose(f);
    return code;
  }
};

}  // namespace dapes::bench
