// Table I — real-world feasibility study: the three Fig. 8 scenarios
// (carrier / repository / moving nodes) with download time, transmission
// count, and modeled system-load metrics, each aggregated at the median
// across trials.
//
// Paper shape to verify: scenario 1 is slowest with the most
// transmissions (two-party contacts only); scenario 2 benefits from the
// repo serving A and B simultaneously; scenario 3 is fastest with the
// fewest transmissions but the highest memory overhead (multi-hop
// knowledge state).
#include "bench_common.hpp"

using namespace dapes;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);

  harness::SweepSpec spec;
  spec.title = "Table I: real-world feasibility study";
  spec.base = args.scenario();
  spec.base.wifi_range_m = 50.0;   // paper: MacBook WiFi range ~50 m
  spec.base.sim_limit_s = 1500.0;  // the Fig. 8 scripts end by t=1500 s
  spec.axis = {"x", {0.0}, [](harness::ScenarioParams&, double) {}};
  spec.series = {
      {"carrier", harness::ProtocolNames::kRealWorldCarrier, nullptr},
      {"repository", harness::ProtocolNames::kRealWorldRepository, nullptr},
      {"moving", harness::ProtocolNames::kRealWorldMoving, nullptr}};
  spec.metrics = {harness::download_time_metric(50.0),
                  harness::transmissions_k_metric(50.0),
                  harness::memory_mb_metric(50.0),
                  harness::knowledge_kb_metric(50.0),
                  harness::context_switches_metric(50.0),
                  harness::system_calls_metric(50.0),
                  harness::page_faults_metric(50.0)};
  return args.run(std::move(spec));
}
