// Table I — real-world feasibility study: the three Fig. 8 scenarios
// (carrier / repository / moving nodes) with download time, transmission
// count, and modeled system-load metrics.
//
// Paper shape to verify: scenario 1 is slowest with the most
// transmissions (two-party contacts only); scenario 2 benefits from the
// repo serving A and B simultaneously; scenario 3 is fastest with the
// fewest transmissions but the highest memory overhead (multi-hop
// knowledge state).
#include <cstdio>

#include "bench_common.hpp"
#include "harness/realworld.hpp"

using namespace dapes;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);

  std::printf("\n=== Table I: real-world feasibility study ===\n");
  std::printf("%-12s %14s %16s %14s %14s %16s %14s %12s\n", "Scenario",
              "Download(s)", "Transmissions", "Memory(MB)", "Knowledge(KB)",
              "CtxSwitches", "SysCalls", "PageFaults");

  for (int scenario = 1; scenario <= 3; ++scenario) {
    // Median-style aggregation: run `trials` and report the middle run by
    // download time.
    std::vector<harness::RealWorldResult> runs;
    for (int t = 0; t < args.trials; ++t) {
      harness::RealWorldParams params;
      params.seed = args.seed + static_cast<uint64_t>(t) * 7919;
      if (args.quick) params.file_size_bytes = 32 * 1024;
      if (args.paper_scale) {
        params.file_size_bytes = 1024 * 1024;
        params.data_rate_bps = 11e6;
      }
      runs.push_back(harness::run_realworld_scenario(scenario, params));
    }
    std::sort(runs.begin(), runs.end(),
              [](const auto& a, const auto& b) {
                return a.download_time_s < b.download_time_s;
              });
    const auto& r = runs[runs.size() / 2];
    std::printf("%-12s %14.1f %16llu %14.2f %14.1f %16llu %14llu %12llu\n",
                r.scenario.c_str(), r.download_time_s,
                (unsigned long long)r.transmissions, r.memory_overhead_mb,
                r.knowledge_kb,
                (unsigned long long)r.context_switches,
                (unsigned long long)r.system_calls,
                (unsigned long long)r.page_faults);
  }
  return 0;
}
