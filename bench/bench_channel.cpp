// Channel bench: the Fig. 7 DAPES world swept along the path-loss
// exponent axis under the pluggable channel/PHY layer (see DESIGN.md
// "Channel & PHY models").
//
// Series:
//   logdist(s=0)   — loss.sweep family, log-distance path loss, no
//                    shadowing: the reception curve alone (50 % at the
//                    nominal range, logistic rolloff).
//   logdist(s=6)   — 6 dB log-normal shadowing on top: links well inside
//                    the nominal range fade out, links beyond it open up.
//   hetero+logdist — hetero.radio family on the same channel: half the
//                    nodes on half-range radios (which under log-distance
//                    also transmit proportionally less power).
//   unit-disk      — the paper's reference channel as a flat baseline
//                    (it ignores the exponent axis by construction).
//
// Expected shape: the log-distance channel is *better* connected than
// the unit-disk reference at the same nominal range — links inside the
// range approach certainty and the probabilistic fringe beyond it keeps
// working — so its download times sit below the unit-disk line, with
// steeper exponents shrinking that fringe advantage. The mixed-radio
// series is the slow one: half-range radios fragment the swarm.
//
// BENCH_channel.json is the committed baseline (`--trials 1 --jobs 1
// --format json`). Everything reported is deterministic per seed, so the
// baseline is byte-reproducible on any machine; CI smokes the bench and
// diffs --jobs 1 vs --jobs 8 output for the engine's determinism
// contract.
#include "bench_common.hpp"

using namespace dapes;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);

  harness::SweepSpec spec;
  spec.title = "channel: DAPES under log-distance/shadowing/hetero radios";
  spec.y_unit = "seconds (p90 over trials)";
  spec.base = args.scenario();
  spec.base.files = 1;
  if (!args.paper_scale && !args.quick) {
    spec.base.file_size_bytes = 16 * 1024;
  }
  spec.base.sim_limit_s = args.quick ? 300.0 : 900.0;

  spec.axis.label = "alpha";
  spec.axis.values =
      args.quick ? std::vector<double>{2.0, 4.0}
                 : std::vector<double>{2.0, 2.7, 3.5, 4.5};
  spec.axis.apply = [](harness::ScenarioParams& p, double x) {
    p.channel.path_loss_exponent = x;
  };

  spec.series.push_back({"logdist(s=0)", harness::ProtocolNames::kLossSweep,
                         [](harness::ScenarioParams& p) {
                           p.channel.shadowing_sigma_db = 0.0;
                         }});
  spec.series.push_back({"logdist(s=6)", harness::ProtocolNames::kLossSweep,
                         [](harness::ScenarioParams& p) {
                           p.channel.shadowing_sigma_db = 6.0;
                         }});
  spec.series.push_back(
      {"hetero+logdist", harness::ProtocolNames::kHeteroRadio,
       [](harness::ScenarioParams& p) {
         p.channel.model = "log-distance";
         p.hetero_range_fraction = 0.5;
         p.hetero_range_factor = 0.5;
       }});
  spec.series.push_back(
      {"unit-disk", harness::ProtocolNames::kDapes,
       [](harness::ScenarioParams&) {}});

  spec.metrics = {harness::download_time_metric(),
                  harness::completion_metric(),
                  harness::transmissions_k_metric()};
  return args.run(std::move(spec));
}
