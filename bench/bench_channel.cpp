// Channel bench: the Fig. 7 DAPES world swept along one of three channel
// axes under the pluggable channel/PHY layer (see DESIGN.md "Channel &
// PHY models" and "Channel realism round two").
//
// Axes (--axis alpha|burst|kfactor, default alpha):
//
//   alpha    — path-loss exponent sweep. Series:
//     logdist(s=0)    loss.sweep, log-distance, no shadowing: the
//                     reception curve alone (50 % at the nominal range).
//     logdist(s=6)    6 dB log-normal shadowing on top: links well inside
//                     the nominal range fade out, links beyond open up.
//     hetero+logdist  hetero.radio on the same channel: half the nodes on
//                     half-range radios.
//     unit-disk       the paper's reference channel as a flat baseline
//                     (it ignores the exponent axis by construction).
//     burst(pi=.3)    Gilbert-Elliott bursty erasures (30 % bad-state
//                     occupancy, 100 ms mean bursts) over the plain
//                     log-distance curve.
//     rician(K=4)+rate Rician fast fading plus SIR-adaptive bitrate.
//
//   burst    — Gilbert-Elliott mean burst length (ms) at fixed slot size.
//     Longer bursts at the same stationary bad fraction concentrate the
//     same loss budget into contiguous outages: retransmission suppression
//     rides out short bursts, long ones stall whole pipeline windows.
//     Series: pi=0.1, pi=0.3, and pi=0.3 with Rician fading stacked.
//
//   kfactor  — Rician K-factor (0 = Rayleigh, large = line-of-sight).
//     More line-of-sight power means fewer deep fades; the adaptive-rate
//     series trades some airtime for fewer losses at low K. Series:
//     rician, rician+rate, rician+burst.
//
// Expected alpha-axis shape: the log-distance channel is *better*
// connected than the unit-disk reference at the same nominal range — so
// its download times sit below the unit-disk line, with steeper exponents
// shrinking that fringe advantage; the burst/fading series pay for their
// extra outages on top.
//
// BENCH_channel.json is the committed baseline (`--trials 1 --jobs 1
// --format json`, default axis). Everything reported is deterministic per
// seed, so the baseline is byte-reproducible on any machine; CI smokes
// every axis and diffs --jobs 1 vs --jobs 8 output for the engine's
// determinism contract.
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace dapes;

int main(int argc, char** argv) {
  // Pre-filter the bench-specific --axis flag (BenchArgs rejects unknown
  // flags by design, so benches strip their own flags first).
  std::string axis = "alpha";
  std::vector<char*> filtered;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i] != nullptr ? argv[i] : "";
    if (a == "--axis") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --axis requires a value\n", argv[0]);
        return 2;
      }
      axis = argv[++i];
    } else if (a.rfind("--axis=", 0) == 0) {
      axis = a.substr(7);
    } else {
      filtered.push_back(argv[i]);
    }
  }
  if (axis != "alpha" && axis != "burst" && axis != "kfactor") {
    std::fprintf(stderr, "%s: --axis: expected alpha|burst|kfactor, got %s\n",
                 argv[0], axis.c_str());
    return 2;
  }
  auto args =
      bench::BenchArgs::parse(static_cast<int>(filtered.size()),
                              filtered.data());

  harness::SweepSpec spec;
  spec.y_unit = "seconds (p90 over trials)";
  spec.base = args.scenario();
  spec.base.files = 1;
  if (!args.paper_scale && !args.quick) {
    spec.base.file_size_bytes = 16 * 1024;
  }
  spec.base.sim_limit_s = args.quick ? 300.0 : 900.0;

  using harness::ProtocolNames;
  using harness::ScenarioParams;

  if (axis == "alpha") {
    spec.title = "channel: DAPES under log-distance/shadowing/hetero radios";
    spec.axis.label = "alpha";
    spec.axis.values =
        args.quick ? std::vector<double>{2.0, 4.0}
                   : std::vector<double>{2.0, 2.7, 3.5, 4.5};
    spec.axis.apply = [](ScenarioParams& p, double x) {
      p.channel.path_loss_exponent = x;
    };
    spec.series.push_back({"logdist(s=0)", ProtocolNames::kLossSweep,
                           [](ScenarioParams& p) {
                             p.channel.shadowing_sigma_db = 0.0;
                           }});
    spec.series.push_back({"logdist(s=6)", ProtocolNames::kLossSweep,
                           [](ScenarioParams& p) {
                             p.channel.shadowing_sigma_db = 6.0;
                           }});
    spec.series.push_back(
        {"hetero+logdist", ProtocolNames::kHeteroRadio,
         [](ScenarioParams& p) {
           p.channel.model = "log-distance";
           p.hetero_range_fraction = 0.5;
           p.hetero_range_factor = 0.5;
         }});
    spec.series.push_back(
        {"unit-disk", ProtocolNames::kDapes, [](ScenarioParams&) {}});
    spec.series.push_back({"burst(pi=.3)", ProtocolNames::kLossSweep,
                           [](ScenarioParams& p) {
                             p.channel.ge_bad_fraction = 0.3;
                             p.channel.ge_mean_burst_ms = 100.0;
                           }});
    spec.series.push_back({"rician(K=4)+rate", ProtocolNames::kLossSweep,
                           [](ScenarioParams& p) {
                             p.channel.fading = "rician";
                             p.channel.rician_k = 4.0;
                             p.channel.adaptive_rate = true;
                           }});
  } else if (axis == "burst") {
    spec.title = "channel: DAPES vs Gilbert-Elliott mean burst length";
    spec.axis.label = "burst_ms";
    spec.axis.values =
        args.quick ? std::vector<double>{50.0, 200.0}
                   : std::vector<double>{25.0, 50.0, 100.0, 200.0, 400.0};
    spec.axis.apply = [](ScenarioParams& p, double x) {
      p.channel.ge_mean_burst_ms = x;
    };
    spec.series.push_back({"pi=0.1", ProtocolNames::kLossSweep,
                           [](ScenarioParams& p) {
                             p.channel.ge_bad_fraction = 0.1;
                           }});
    spec.series.push_back({"pi=0.3", ProtocolNames::kLossSweep,
                           [](ScenarioParams& p) {
                             p.channel.ge_bad_fraction = 0.3;
                           }});
    spec.series.push_back({"pi=0.3+rician(K=4)", ProtocolNames::kLossSweep,
                           [](ScenarioParams& p) {
                             p.channel.ge_bad_fraction = 0.3;
                             p.channel.fading = "rician";
                             p.channel.rician_k = 4.0;
                           }});
  } else {  // kfactor
    spec.title = "channel: DAPES vs Rician K-factor (0 = Rayleigh)";
    spec.axis.label = "K";
    spec.axis.values =
        args.quick ? std::vector<double>{0.0, 4.0}
                   : std::vector<double>{0.0, 1.0, 2.0, 4.0, 8.0, 16.0};
    spec.axis.apply = [](ScenarioParams& p, double x) {
      p.channel.fading = "rician";
      p.channel.rician_k = x;
    };
    spec.series.push_back(
        {"rician", ProtocolNames::kLossSweep, [](ScenarioParams&) {}});
    spec.series.push_back({"rician+rate", ProtocolNames::kLossSweep,
                           [](ScenarioParams& p) {
                             p.channel.adaptive_rate = true;
                           }});
    spec.series.push_back({"rician+burst", ProtocolNames::kLossSweep,
                           [](ScenarioParams& p) {
                             p.channel.ge_bad_fraction = 0.2;
                             p.channel.ge_mean_burst_ms = 100.0;
                           }});
  }

  spec.metrics = {harness::download_time_metric(),
                  harness::completion_metric(),
                  harness::transmissions_k_metric()};
  return args.run(std::move(spec));
}
