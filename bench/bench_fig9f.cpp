// Figure 9f — download time vs file size (ten files per collection; file
// sizes 1/5/10/15 MB at paper scale, scaled by kDefaultScale here).
//
// Paper shape to verify: download time grows with the collection size and
// the growth is roughly proportional once contacts saturate.
#include "bench_common.hpp"

using namespace dapes;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);

  harness::SweepSpec spec;
  spec.title = "Fig. 9f: download time, varying file size (10 files, scaled)";
  spec.y_unit = "seconds (p90 over trials)";
  spec.base = args.scenario();
  spec.axis = args.range_axis();
  spec.metrics = {harness::download_time_metric()};

  std::vector<size_t> sizes_mb = {1, 5, 10, 15};
  if (args.quick) sizes_mb = {1, 5};
  for (size_t mb : sizes_mb) {
    spec.series.push_back(
        {"file=" + std::to_string(mb) + "MB", harness::ProtocolNames::kDapes,
         [mb](harness::ScenarioParams& p) {
           p.file_size_bytes = mb * 1024 * 1024 / harness::kDefaultScale;
           p.sim_limit_s *= 1.0 + static_cast<double>(mb) / 4.0;
         }});
  }
  return args.run(std::move(spec));
}
