// Figure 9f — download time vs file size (ten files per collection; file
// sizes 1/5/10/15 MB at paper scale, scaled by kDefaultScale here).
//
// Paper shape to verify: download time grows with the collection size and
// the growth is roughly proportional once contacts saturate.
#include "bench_common.hpp"

using namespace dapes;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);

  std::vector<size_t> sizes_mb = {1, 5, 10, 15};
  if (args.quick) sizes_mb = {1, 5};

  std::vector<double> xs = args.ranges();
  std::vector<harness::Series> series;
  for (size_t mb : sizes_mb) {
    harness::Series s;
    s.label = "file=" + std::to_string(mb) + "MB";
    for (double range : xs) {
      harness::ScenarioParams p = args.scenario();
      p.wifi_range_m = range;
      p.file_size_bytes = mb * 1024 * 1024 / harness::kDefaultScale;
      p.sim_limit_s = p.sim_limit_s * (1.0 + static_cast<double>(mb) / 4.0);
      auto trials = harness::run_dapes_trials(p, args.trials);
      s.y.push_back(harness::aggregate(trials, harness::metric_download_time));
    }
    series.push_back(std::move(s));
  }

  harness::print_figure(
      "Fig. 9f: download time, varying file size (10 files, scaled)",
      "range_m", xs, series, "seconds (p90 over trials)");
  return 0;
}
