// Codec throughput microbenchmark: the zero-copy wire API's hot paths.
//
// Measures encode, decode, and the forward path (decode an incoming frame,
// re-send it via the cached wire) against the re-serialize path the old
// API forced (decode, then rebuild the wire from scratch). Emits the same
// text/CSV/JSON shapes as the figure sweeps so BENCH_codec.json can track
// the perf trajectory across PRs.
//
//   bench_codec [--trials N] [--quick] [--seed S] [--jobs N]
//               [--format text|csv|json] [--out FILE]
//
// Each (series, content-size) cell runs `--trials` timed repetitions and
// reports the best, fanned out over the TrialRunner pool.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "harness/sweep.hpp"
#include "harness/trial_runner.hpp"
#include "ndn/packet.hpp"

namespace dapes::bench {
namespace {

using common::Bytes;
using common::BytesView;

ndn::Data make_data(common::Rng& rng, size_t content_size) {
  ndn::Name name("/bench/codec/file");
  name.append_number(rng.next_below(1000000));
  ndn::Data data(std::move(name));
  Bytes content(content_size);
  for (auto& b : content) b = static_cast<uint8_t>(rng.next_below(256));
  data.set_content(std::move(content));
  return data;
}

struct CellResult {
  double mops = 0.0;   // million operations per second
  double mbps = 0.0;   // wire megabytes per second
};

/// Time `op()` (which processes `wire_bytes` per call) for ~20ms and
/// return throughput.
template <typename Op>
CellResult time_op(size_t wire_bytes, Op&& op) {
  using clock = std::chrono::steady_clock;
  // Warm-up + calibration.
  op();
  constexpr auto kBudget = std::chrono::milliseconds(20);
  size_t ops = 0;
  auto start = clock::now();
  auto deadline = start + kBudget;
  while (clock::now() < deadline) {
    for (int i = 0; i < 64; ++i) op();
    ops += 64;
  }
  double seconds =
      std::chrono::duration<double>(clock::now() - start).count();
  CellResult r;
  r.mops = static_cast<double>(ops) / seconds / 1e6;
  r.mbps = static_cast<double>(ops) * static_cast<double>(wire_bytes) /
           seconds / 1e6;
  return r;
}

CellResult run_cell(const std::string& series, size_t content_size,
                    uint64_t seed) {
  common::Rng rng(seed);
  ndn::Data data = make_data(rng, content_size);
  common::BufferSlice wire = data.wire();
  const size_t wire_bytes = wire.size();

  if (series == "encode") {
    return time_op(wire_bytes, [&] {
      data.set_freshness(data.freshness());  // invalidate the cache
      (void)data.wire();
    });
  }
  if (series == "wire_cached") {
    return time_op(wire_bytes, [&] { (void)data.wire(); });
  }
  if (series == "decode") {
    return time_op(wire_bytes, [&] { (void)ndn::Data::decode(wire); });
  }
  if (series == "forward_zero_copy") {
    // The new forward path: decode the frame, re-send the cached wire.
    return time_op(wire_bytes, [&] {
      auto decoded = ndn::Data::decode(wire);
      (void)decoded->wire();
    });
  }
  if (series == "forward_reserialize") {
    // The old forward path: decode, then rebuild the wire from scratch.
    return time_op(wire_bytes, [&] {
      auto decoded = ndn::Data::decode(wire);
      decoded->set_freshness(decoded->freshness());  // drop the cache
      (void)decoded->wire();
    });
  }
  return {};
}

}  // namespace
}  // namespace dapes::bench

int main(int argc, char** argv) {
  using namespace dapes;
  bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);

  std::vector<size_t> sizes = args.quick
                                  ? std::vector<size_t>{64, 512}
                                  : std::vector<size_t>{64, 512, 4096};
  const std::vector<std::string> series = {
      "encode", "wire_cached", "decode", "forward_zero_copy",
      "forward_reserialize"};

  harness::SweepResult result;
  result.title = "codec";
  result.x_label = "content_bytes";
  result.y_unit = "Mops/s";
  for (size_t s : sizes) result.xs.push_back(static_cast<double>(s));
  result.series_labels = series;
  result.metric_labels = {"mops", "wire_mbps"};
  result.values.assign(
      2, std::vector<std::vector<double>>(
             series.size(), std::vector<double>(sizes.size(), 0.0)));

  // Fan the (series x size) grid out over the worker pool; each cell runs
  // --trials timed repetitions and keeps the best (least-interfered) one.
  harness::TrialRunner runner(args.jobs);
  const size_t cells = series.size() * sizes.size();
  runner.for_each_index(cells, [&](size_t cell) {
    const size_t si = cell / sizes.size();
    const size_t xi = cell % sizes.size();
    bench::CellResult best;
    for (int t = 0; t < args.trials; ++t) {
      uint64_t seed = common::derive_seed(args.seed, cell * 1000 + t);
      bench::CellResult r = bench::run_cell(series[si], sizes[xi], seed);
      if (r.mops > best.mops) best = r;
    }
    result.values[0][si][xi] = best.mops;
    result.values[1][si][xi] = best.mbps;
  });

  std::FILE* f = stdout;
  if (!args.out.empty()) {
    f = std::fopen(args.out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open --out file %s\n", args.out.c_str());
      return 1;
    }
  }
  harness::write_sweep(result, args.format, f);
  if (f != stdout) std::fclose(f);
  return 0;
}
