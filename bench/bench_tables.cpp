// Table bench: hashed NameTree data plane vs the retained std::map
// reference, across a grid of table sizes × workload mixes.
//
// Series come in map/tree pairs that run *identical* op streams (same
// derived seed per cell, same name population), so the pair is also an
// equivalence check: each cell accumulates a checksum over every result
// it observes (find hits, LPM face sets, PIT match counts) and the bench
// fails if a map/tree pair ever disagrees — the committed baseline
// doubles as a proof the two data planes answer identically.
//
// Workloads:
//   exact   — CS/PIT exact-match probes against a fully populated store
//             (the forwarder's hottest path; the tracked speedup gate).
//   forward — a full forwarder hop mix: CS miss, PIT find+insert, FIB
//             lookup on the Interest path; matches_for_data, CS insert,
//             PIT erase on the Data path.
//   lpm     — pure FIB longest-prefix-match over deep names.
//
// BENCH_tables.json is the committed baseline (`--trials 1 --jobs 1
// --format json`); absolute timings are machine-dependent, the tracked
// quantity is the map : tree wall ratio per workload (>= 3x on exact at
// >= 64k entries).
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "harness/sweep.hpp"
#include "harness/trial_runner.hpp"
#include "ndn/name_tree.hpp"
#include "ndn/tables.hpp"
#include "ndn/tables_ref.hpp"

using namespace dapes;
using common::TimePoint;

namespace {

/// The NameTree data plane: one shared tree, as a Forwarder wires it.
struct TreeTables {
  std::shared_ptr<ndn::NameTree> tree = std::make_shared<ndn::NameTree>();
  ndn::ContentStore cs;
  ndn::Pit pit;
  ndn::Fib fib;
  explicit TreeTables(size_t cs_capacity)
      : cs(cs_capacity, tree), pit(tree), fib(tree) {}
};

/// The std::map reference data plane.
struct MapTables {
  ndn::ref::ContentStore cs;
  ndn::ref::Pit pit;
  ndn::ref::Fib fib;
  explicit MapTables(size_t cs_capacity) : cs(cs_capacity) {}
};

/// DAPES-shaped names: /collection-<c>/file-<f>/<seq>.
std::vector<ndn::Name> make_pool(size_t n, uint64_t salt) {
  std::vector<ndn::Name> pool;
  pool.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ndn::Name name;
    name.append("collection-" + std::to_string((i / 4096) ^ salt));
    name.append("file-" + std::to_string((i / 64) % 64));
    name.append_number(i % 64);
    pool.push_back(std::move(name));
  }
  return pool;
}

ndn::Data make_data(const ndn::Name& name) {
  ndn::Data d{name};
  d.set_content(common::Bytes(8, 0x5a));
  d.set_freshness(common::Duration::seconds(3600.0));
  return d;
}

struct CellResult {
  double wall_s = 0.0;
  double mops = 0.0;
  uint64_t checksum = 0;
};

/// One cell: build tables of size n, run the workload, checksum every
/// observable. Identical streams for both table sets (seeded rng).
template <typename Tables>
CellResult run_workload(const std::string& workload, size_t n, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<ndn::Name> pool = make_pool(n, seed % 7);
  Tables t(n);
  uint64_t checksum = 0;
  uint64_t ops = 0;
  const TimePoint now = TimePoint::zero();

  // Populate outside the timed region: the tracked ratio gates the op
  // mix each workload documents, not setup cost.
  if (workload == "exact") {
    for (const auto& name : pool) t.cs.insert(make_data(name), now);
    // PIT holds a quarter of the namespace, as a busy forwarder would.
    for (size_t i = 0; i < n; i += 4) {
      t.pit.insert(pool[i]).nonces.insert(static_cast<uint32_t>(i));
    }
  } else if (workload == "forward") {
    // Routes over the collection prefixes, as app registration leaves.
    for (size_t i = 0; i < n; i += 4096) {
      t.fib.add_route(pool[i].prefix(1), 1);
    }
  } else {  // lpm
    // Routes at every depth of the namespace tree.
    for (size_t i = 0; i < n; i += 64) {
      t.fib.add_route(pool[i].prefix(1 + (i / 64) % 3),
                      static_cast<ndn::FaceId>(1 + i % 3));
    }
  }

  const auto start = std::chrono::steady_clock::now();

  if (workload == "exact") {
    const size_t lookups = 4 * n;
    for (size_t i = 0; i < lookups; ++i) {
      const ndn::Name& name = pool[rng.next_below(n)];
      checksum += (t.cs.find(name, false, now) != nullptr);
      checksum += (t.pit.find(name) != nullptr);
      checksum += t.pit.has_nonce(name, static_cast<uint32_t>(i % 64));
      ops += 3;
    }
  } else if (workload == "forward") {
    const size_t hops = 2 * n;
    for (size_t i = 0; i < hops; ++i) {
      // Interest path: CS probe, PIT aggregate-or-insert, FIB lookup.
      const ndn::Name& want = pool[rng.next_below(n)];
      checksum += (t.cs.find(want, false, now) != nullptr);
      if (t.pit.find(want) == nullptr) {
        auto& e = t.pit.insert(want);
        e.nonces.insert(static_cast<uint32_t>(i));
        e.in_faces.push_back(1);
      }
      checksum += t.fib.lookup(want).size();
      // Data path: satisfy a (probably) pending name.
      const ndn::Name& got = pool[rng.next_below(n)];
      checksum += t.pit.matches_for_data(got).size();
      t.cs.insert(make_data(got), now);
      t.pit.erase(got);
      ops += 6;
    }
  } else {  // lpm
    const size_t lookups = 6 * n;
    for (size_t i = 0; i < lookups; ++i) {
      for (ndn::FaceId f : t.fib.lookup(pool[rng.next_below(n)])) {
        checksum += f;
      }
      ops += 1;
    }
  }

  const auto end = std::chrono::steady_clock::now();
  CellResult r;
  r.wall_s = std::chrono::duration<double>(end - start).count();
  r.mops = static_cast<double>(ops) / r.wall_s / 1e6;
  r.checksum = checksum;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);

  const std::vector<double> xs =
      args.quick ? std::vector<double>{1024, 16384}
                 : std::vector<double>{1024, 8192, 65536, 262144};
  const std::vector<std::string> workloads = {"exact", "forward", "lpm"};
  const std::vector<std::string> impls = {"map", "tree"};

  std::FILE* f = stdout;
  if (!args.out.empty()) {
    f = std::fopen(args.out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open --out file %s\n", args.out.c_str());
      return 1;
    }
  }

  const size_t trials = static_cast<size_t>(args.trials);
  const size_t n_cells = impls.size() * workloads.size() * xs.size();
  std::vector<std::vector<CellResult>> raw(n_cells,
                                           std::vector<CellResult>(trials));

  // Single source of truth for the cell layout (the run loop, the
  // map/tree checksum gate, and the series emitter must all agree).
  auto cell_index = [&](size_t ii, size_t wi, size_t xi) {
    return (ii * workloads.size() + wi) * xs.size() + xi;
  };

  harness::TrialRunner runner(args.jobs);
  runner.for_each_index(n_cells * trials, [&](size_t task) {
    const size_t cell = task / trials;
    const size_t trial = task % trials;
    const size_t ii = cell / (workloads.size() * xs.size());
    const size_t wi = (cell / xs.size()) % workloads.size();
    const size_t xi = cell % xs.size();
    // Seeded by (workload, x, trial) only — the map and tree cells of a
    // pair run identical op streams.
    const uint64_t seed = common::derive_seed(
        common::derive_seed(common::derive_seed(args.seed, wi), xi), trial);
    const size_t n = static_cast<size_t>(xs[xi]);
    raw[cell][trial] = (impls[ii] == "map")
                           ? run_workload<MapTables>(workloads[wi], n, seed)
                           : run_workload<TreeTables>(workloads[wi], n, seed);
  });

  // Equivalence gate: every map/tree pair must have seen identical
  // results, or the timing comparison is meaningless.
  bool mismatch = false;
  for (size_t wi = 0; wi < workloads.size(); ++wi) {
    for (size_t xi = 0; xi < xs.size(); ++xi) {
      for (size_t trial = 0; trial < trials; ++trial) {
        const size_t map_cell = cell_index(0, wi, xi);
        const size_t tree_cell = cell_index(1, wi, xi);
        if (raw[map_cell][trial].checksum != raw[tree_cell][trial].checksum) {
          std::fprintf(stderr,
                       "checksum mismatch: %s n=%zu trial=%zu map=%llu "
                       "tree=%llu\n",
                       workloads[wi].c_str(), static_cast<size_t>(xs[xi]),
                       trial,
                       static_cast<unsigned long long>(
                           raw[map_cell][trial].checksum),
                       static_cast<unsigned long long>(
                           raw[tree_cell][trial].checksum));
          mismatch = true;
        }
      }
    }
  }
  if (mismatch) {
    if (f != stdout) std::fclose(f);
    return 1;
  }

  harness::SweepResult result;
  result.title = "tables: std::map vs hashed NameTree data plane";
  result.x_label = "entries";
  result.y_unit = "seconds";
  result.xs = xs;
  for (const auto& impl : impls) {
    for (const auto& w : workloads) {
      result.series_labels.push_back(impl + "+" + w);
    }
  }
  result.metric_labels = {"wall_s", "mops"};
  result.values.resize(result.metric_labels.size());
  for (size_t m = 0; m < result.metric_labels.size(); ++m) {
    result.values[m].resize(result.series_labels.size());
    for (size_t si = 0; si < result.series_labels.size(); ++si) {
      result.values[m][si].resize(xs.size());
      for (size_t xi = 0; xi < xs.size(); ++xi) {
        // si enumerates impls-outer × workloads-inner, matching the
        // series_labels push order above.
        const size_t cell =
            cell_index(si / workloads.size(), si % workloads.size(), xi);
        double best = 0.0;  // min wall / max mops across trials
        for (size_t trial = 0; trial < trials; ++trial) {
          const CellResult& r = raw[cell][trial];
          const double v = (m == 0) ? r.wall_s : r.mops;
          if (trial == 0 || (m == 0 ? v < best : v > best)) best = v;
        }
        result.values[m][si][xi] = best;
      }
    }
  }

  harness::write_sweep(result, args.format, f);
  if (f != stdout) std::fclose(f);
  return 0;
}
