// Figure 9g — download time for single-hop DAPES vs multi-hop with
// forwarding probability 20/40/60% at intermediate nodes.
//
// Paper shape to verify: multi-hop is 12-23% faster than single-hop;
// gains flatten beyond 40% forwarding probability.
#include "bench_common.hpp"

using namespace dapes;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);

  harness::SweepSpec spec;
  spec.title = "Fig. 9g: download time, varying forwarding probability";
  spec.y_unit = "seconds (p90 over trials)";
  spec.base = args.scenario();
  spec.axis = args.range_axis();
  spec.metrics = {harness::download_time_metric()};

  struct Config {
    const char* label;
    bool multihop;
    double p;
  };
  for (Config cfg : {Config{"single-hop", false, 0.0},
                     {"multi-hop p=20%", true, 0.2},
                     {"multi-hop p=40%", true, 0.4},
                     {"multi-hop p=60%", true, 0.6}}) {
    spec.series.push_back({cfg.label, harness::ProtocolNames::kDapes,
                           [cfg](harness::ScenarioParams& p) {
                             p.peer.multihop = cfg.multihop;
                             p.peer.forward_probability = cfg.p;
                           }});
  }
  return args.run(std::move(spec));
}
