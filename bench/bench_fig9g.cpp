// Figure 9g — download time for single-hop DAPES vs multi-hop with
// forwarding probability 20/40/60% at intermediate nodes.
//
// Paper shape to verify: multi-hop is 12-23% faster than single-hop;
// gains flatten beyond 40% forwarding probability.
#include "bench_common.hpp"

using namespace dapes;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);

  struct Config {
    const char* label;
    bool multihop;
    double p;
  };
  const std::vector<Config> configs = {
      {"single-hop", false, 0.0},
      {"multi-hop p=20%", true, 0.2},
      {"multi-hop p=40%", true, 0.4},
      {"multi-hop p=60%", true, 0.6},
  };

  std::vector<double> xs = args.ranges();
  std::vector<harness::Series> series;
  for (const auto& cfg : configs) {
    harness::Series s;
    s.label = cfg.label;
    for (double range : xs) {
      harness::ScenarioParams p = args.scenario();
      p.wifi_range_m = range;
      p.peer.multihop = cfg.multihop;
      p.peer.forward_probability = cfg.p;
      auto trials = harness::run_dapes_trials(p, args.trials);
      s.y.push_back(harness::aggregate(trials, harness::metric_download_time));
    }
    series.push_back(std::move(s));
  }

  harness::print_figure(
      "Fig. 9g: download time, varying forwarding probability",
      "range_m", xs, series, "seconds (p90 over trials)");
  return 0;
}
