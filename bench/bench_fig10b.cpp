// Figure 10b — number of transmissions: DAPES vs Bithoc vs Ekta across
// WiFi ranges.
//
// Paper shape to verify: DAPES needs 62-71% fewer transmissions than
// Bithoc and 50-59% fewer than Ekta; Ekta (reactive routing) stays below
// Bithoc (proactive routing + flooding).
#include "bench_common.hpp"

using namespace dapes;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);

  harness::SweepSpec spec;
  spec.title = "Fig. 10b: transmissions, DAPES vs IP baselines";
  spec.y_unit = "thousands of frames (p90 over trials)";
  spec.base = args.scenario();
  // Full 802.11b rate for fairness to the IP baselines (see bench_fig10a
  // and EXPERIMENTS.md).
  if (!args.paper_scale) spec.base.data_rate_bps = 11e6;
  spec.axis = args.range_axis();
  spec.metrics = {harness::transmissions_k_metric()};
  spec.series = {{"DAPES", harness::ProtocolNames::kDapes, nullptr},
                 {"Bithoc", harness::ProtocolNames::kBithoc, nullptr},
                 {"Ekta", harness::ProtocolNames::kEkta, nullptr}};
  return args.run(std::move(spec));
}
