// Figure 10b — number of transmissions: DAPES vs Bithoc vs Ekta across
// WiFi ranges.
//
// Paper shape to verify: DAPES needs 62-71% fewer transmissions than
// Bithoc and 50-59% fewer than Ekta; Ekta (reactive routing) stays below
// Bithoc (proactive routing + flooding).
#include "bench_common.hpp"

using namespace dapes;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  std::vector<double> xs = args.ranges();

  harness::Series dapes_s{"DAPES", {}};
  harness::Series bithoc_s{"Bithoc", {}};
  harness::Series ekta_s{"Ekta", {}};

  for (double range : xs) {
    harness::ScenarioParams p = args.scenario();
    p.wifi_range_m = range;
    // The comparison runs at the full 802.11b rate: baseline control
    // traffic (routing, flooding, DHT) does not shrink with the scaled
    // collection, so a scaled channel would starve the IP baselines
    // unfairly (see EXPERIMENTS.md).
    if (!args.paper_scale) p.data_rate_bps = 11e6;
    dapes_s.y.push_back(harness::aggregate(
        harness::run_dapes_trials(p, args.trials),
        harness::metric_transmissions_k));
    bithoc_s.y.push_back(harness::aggregate(
        harness::run_bithoc_trials(p, args.trials),
        harness::metric_transmissions_k));
    ekta_s.y.push_back(harness::aggregate(
        harness::run_ekta_trials(p, args.trials),
        harness::metric_transmissions_k));
  }

  harness::print_figure("Fig. 10b: transmissions, DAPES vs IP baselines",
                        "range_m", xs, {dapes_s, bithoc_s, ekta_s},
                        "thousands of frames (p90 over trials)");
  return 0;
}
