// Ablation bench (beyond the paper's figures): isolates the contribution
// of individual DAPES design choices that DESIGN.md calls out, at one
// fixed WiFi range:
//   * response suppression window (WifiFace random data timer) on/off,
//   * interest pipeline depth,
//   * advertisement mode x PEBA interaction,
//   * RPF vs sequential fetch ("no RPF" = same-start, no bitmap info
//     preference is approximated by the encounter strategy with history 1).
#include "bench_common.hpp"

using namespace dapes;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  const double range = 60.0;

  struct Config {
    const char* label;
    void (*apply)(harness::ScenarioParams&);
  };
  const std::vector<Config> configs = {
      {"baseline", [](harness::ScenarioParams&) {}},
      {"no-suppression",
       [](harness::ScenarioParams& p) {
         p.peer.tx_window = common::Duration::microseconds(1);
       }},
      {"window=1",
       [](harness::ScenarioParams& p) { p.peer.interest_window = 1; }},
      {"window=16",
       [](harness::ScenarioParams& p) { p.peer.interest_window = 16; }},
      {"bitmaps-first+noPEBA",
       [](harness::ScenarioParams& p) {
         p.peer.advertisement_mode = core::AdvertisementMode::kBitmapsFirst;
         p.peer.bitmaps_before_data = 0;
         p.peer.use_peba = false;
       }},
      {"history=1",
       [](harness::ScenarioParams& p) {
         p.peer.rpf = core::RpfKind::kEncounterBased;
         p.peer.encounter_history = 1;
         p.peer.random_start = false;
       }},
  };

  std::printf("\n=== Ablation: design-choice contributions (range %.0f m) ===\n",
              range);
  std::printf("%-22s %16s %18s %14s\n", "configuration", "download(s)",
              "transmissions(k)", "completion");
  for (const auto& cfg : configs) {
    harness::ScenarioParams p = args.scenario();
    p.wifi_range_m = range;
    cfg.apply(p);
    auto trials = harness::run_dapes_trials(p, args.trials);
    double time = harness::aggregate(trials, harness::metric_download_time);
    double tx = harness::aggregate(trials, harness::metric_transmissions_k);
    double done = 0;
    for (const auto& t : trials) done += t.completion_fraction;
    done /= static_cast<double>(trials.size());
    std::printf("%-22s %16.1f %18.2f %13.1f%%\n", cfg.label, time, tx,
                100.0 * done);
  }
  return 0;
}
