// Ablation bench (beyond the paper's figures): isolates the contribution
// of individual DAPES design choices that DESIGN.md calls out, at one
// fixed WiFi range:
//   * response suppression window (WifiFace random data timer) on/off,
//   * interest pipeline depth,
//   * advertisement mode x PEBA interaction,
//   * RPF vs sequential fetch ("no RPF" = same-start, no bitmap info
//     preference is approximated by the encounter strategy with history 1).
#include "bench_common.hpp"

using namespace dapes;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  const double range = 60.0;

  harness::SweepSpec spec;
  spec.title = "Ablation: design-choice contributions (range 60 m)";
  spec.base = args.scenario();
  spec.axis = {"range_m", {range}, [](harness::ScenarioParams& p, double x) {
                 p.wifi_range_m = x;
               }};
  spec.metrics = {harness::download_time_metric(),
                  harness::transmissions_k_metric(),
                  harness::completion_metric()};

  using P = harness::ScenarioParams;
  struct Config {
    const char* label;
    void (*apply)(P&);
  };
  for (Config cfg :
       {Config{"baseline", [](P&) {}},
        {"no-suppression",
         [](P& p) { p.peer.tx_window = common::Duration::microseconds(1); }},
        {"window=1", [](P& p) { p.peer.interest_window = 1; }},
        {"window=16", [](P& p) { p.peer.interest_window = 16; }},
        {"bitmaps-first+noPEBA",
         [](P& p) {
           p.peer.advertisement_mode = core::AdvertisementMode::kBitmapsFirst;
           p.peer.bitmaps_before_data = 0;
           p.peer.use_peba = false;
         }},
        {"history=1",
         [](P& p) {
           p.peer.rpf = core::RpfKind::kEncounterBased;
           p.peer.encounter_history = 1;
           p.peer.random_start = false;
         }}}) {
    spec.series.push_back({cfg.label, harness::ProtocolNames::kDapes,
                           [apply = cfg.apply](P& p) { apply(p); }});
  }
  return args.run(std::move(spec));
}
