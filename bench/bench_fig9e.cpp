// Figure 9e — download time vs number of files per collection (each file
// 1 MB at paper scale; scaled by kDefaultScale here).
//
// Paper shape to verify: download time grows with the number of files;
// the DAPES properties hold as the collection grows.
#include "bench_common.hpp"

using namespace dapes;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);

  std::vector<size_t> file_counts = {10, 30, 50, 70};
  if (args.quick) file_counts = {10, 30};

  std::vector<double> xs = args.ranges();
  std::vector<harness::Series> series;
  for (size_t files : file_counts) {
    harness::Series s;
    s.label = "files=" + std::to_string(files);
    for (double range : xs) {
      harness::ScenarioParams p = args.scenario();
      p.wifi_range_m = range;
      p.files = files;
      p.sim_limit_s = p.sim_limit_s * (1.0 + static_cast<double>(files) / 20.0);
      auto trials = harness::run_dapes_trials(p, args.trials);
      s.y.push_back(harness::aggregate(trials, harness::metric_download_time));
    }
    series.push_back(std::move(s));
  }

  harness::print_figure(
      "Fig. 9e: download time, varying number of files (1 MB each, scaled)",
      "range_m", xs, series, "seconds (p90 over trials)");
  return 0;
}
