// Figure 9e — download time vs number of files per collection (each file
// 1 MB at paper scale; scaled by kDefaultScale here).
//
// Paper shape to verify: download time grows with the number of files;
// the DAPES properties hold as the collection grows.
#include "bench_common.hpp"

using namespace dapes;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);

  harness::SweepSpec spec;
  spec.title =
      "Fig. 9e: download time, varying number of files (1 MB each, scaled)";
  spec.y_unit = "seconds (p90 over trials)";
  spec.base = args.scenario();
  spec.axis = args.range_axis();
  spec.metrics = {harness::download_time_metric()};

  std::vector<size_t> file_counts = {10, 30, 50, 70};
  if (args.quick) file_counts = {10, 30};
  for (size_t files : file_counts) {
    spec.series.push_back({"files=" + std::to_string(files),
                           harness::ProtocolNames::kDapes,
                           [files](harness::ScenarioParams& p) {
                             p.files = files;
                             p.sim_limit_s *= 1.0 + static_cast<double>(files) / 20.0;
                           }});
  }
  return args.run(std::move(spec));
}
