// Figure 10a — file collection download time: DAPES vs Bithoc vs Ekta
// across WiFi ranges.
//
// Paper shape to verify: DAPES downloads 15-27% faster than Bithoc and
// 19-33% faster than Ekta.
#include "bench_common.hpp"

using namespace dapes;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);

  harness::SweepSpec spec;
  spec.title = "Fig. 10a: download time, DAPES vs IP baselines";
  spec.y_unit = "seconds (p90 over trials)";
  spec.base = args.scenario();
  // The comparison runs at the full 802.11b rate: baseline control traffic
  // (routing, flooding, DHT) does not shrink with the scaled collection,
  // so a scaled channel would starve the IP baselines unfairly (see
  // EXPERIMENTS.md).
  if (!args.paper_scale) spec.base.data_rate_bps = 11e6;
  spec.axis = args.range_axis();
  spec.metrics = {harness::download_time_metric()};
  spec.series = {{"DAPES", harness::ProtocolNames::kDapes, nullptr},
                 {"Bithoc", harness::ProtocolNames::kBithoc, nullptr},
                 {"Ekta", harness::ProtocolNames::kEkta, nullptr}};
  return args.run(std::move(spec));
}
