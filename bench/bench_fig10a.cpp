// Figure 10a — file collection download time: DAPES vs Bithoc vs Ekta
// across WiFi ranges.
//
// Paper shape to verify: DAPES downloads 15-27% faster than Bithoc and
// 19-33% faster than Ekta.
#include "bench_common.hpp"

using namespace dapes;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  std::vector<double> xs = args.ranges();

  harness::Series dapes_s{"DAPES", {}};
  harness::Series bithoc_s{"Bithoc", {}};
  harness::Series ekta_s{"Ekta", {}};

  for (double range : xs) {
    harness::ScenarioParams p = args.scenario();
    p.wifi_range_m = range;
    // The comparison runs at the full 802.11b rate: baseline control
    // traffic (routing, flooding, DHT) does not shrink with the scaled
    // collection, so a scaled channel would starve the IP baselines
    // unfairly (see EXPERIMENTS.md).
    if (!args.paper_scale) p.data_rate_bps = 11e6;
    dapes_s.y.push_back(harness::aggregate(
        harness::run_dapes_trials(p, args.trials),
        harness::metric_download_time));
    bithoc_s.y.push_back(harness::aggregate(
        harness::run_bithoc_trials(p, args.trials),
        harness::metric_download_time));
    ekta_s.y.push_back(harness::aggregate(
        harness::run_ekta_trials(p, args.trials),
        harness::metric_download_time));
  }

  harness::print_figure("Fig. 10a: download time, DAPES vs IP baselines",
                        "range_m", xs, {dapes_s, bithoc_s, ekta_s},
                        "seconds (p90 over trials)");
  return 0;
}
