// Quickstart: two DAPES peers in radio range share a file collection.
//
//   * "alice" creates a collection of two small files (the paper's
//     damaged-bridge example), publishes it, and serves its packets;
//   * "bob" subscribes, discovers alice, fetches + authenticates the
//     metadata, exchanges bitmaps, and downloads every packet.
//
// Run:  ./quickstart
#include <cstdio>

#include "dapes/collection.hpp"
#include "dapes/peer.hpp"
#include "sim/medium.hpp"
#include "sim/mobility.hpp"
#include "sim/scheduler.hpp"

using namespace dapes;

int main() {
  common::Rng rng(42);
  sim::Scheduler sched;

  // A quiet rural field: both peers stand 30 m apart, well within the
  // 60 m radio range.
  sim::Medium::Params radio;
  radio.range_m = 60.0;
  radio.loss_rate = 0.05;
  sim::Medium medium(sched, radio, rng.fork());

  sim::StationaryMobility alice_spot({100.0, 100.0});
  sim::StationaryMobility bob_spot({130.0, 100.0});

  // --- producer side -------------------------------------------------
  crypto::KeyChain keys;
  crypto::PrivateKey alice_key = keys.generate_key("/residents/alice");

  auto collection = core::Collection::create(
      ndn::Name("/damaged-bridge-1533783192"),
      {
          {"bridge-picture", common::bytes_of(std::string(40 * 1024, 'P'))},
          {"bridge-location",
           common::bytes_of("lat=35.1234 lon=-120.5678 by the old mill")},
      },
      /*packet_size=*/1024, core::MetadataFormat::kPacketDigest, alice_key);

  core::PeerOptions alice_opts;
  alice_opts.id = "alice";
  core::Peer alice(sched, medium, &alice_spot, rng.fork(), alice_opts);
  alice.keychain().import_key(alice_key);
  alice.publish(collection);
  alice.start();

  // --- consumer side -------------------------------------------------
  core::PeerOptions bob_opts;
  bob_opts.id = "bob";
  core::Peer bob(sched, medium, &bob_spot, rng.fork(), bob_opts);
  // Bob learned alice's key out of band and trusts her (the paper's
  // "common local trust anchors").
  bob.keychain().import_key(alice_key);
  bob.add_trust_anchor(alice_key.id());
  bob.subscribe(collection);
  bob.set_completion_callback([](const ndn::Name& name,
                                 common::TimePoint at) {
    std::printf("bob finished downloading %s at t=%.2fs\n",
                name.to_uri().c_str(), at.to_seconds());
  });
  bob.start();

  sched.run_until(common::TimePoint{static_cast<int64_t>(120e6)});

  std::printf("progress: %.1f%%  complete: %s\n",
              100.0 * bob.progress(collection->name()),
              bob.complete(collection->name()) ? "yes" : "no");
  std::printf("bob received %llu data packets, alice served %llu\n",
              static_cast<unsigned long long>(bob.stats().data_packets_received),
              static_cast<unsigned long long>(alice.stats().data_packets_served));
  std::printf("frames on the air: %llu\n",
              static_cast<unsigned long long>(medium.stats().transmissions));
  return bob.complete(collection->name()) ? 0 : 1;
}
