// Campus swarm: the paper's Fig. 7 simulation topology driven through the
// experiment harness API — 4 stationary repositories and 40 mobile nodes
// in a 300 m x 300 m field, 24 of them downloading one collection, with
// pure forwarders and DAPES intermediates relaying across hops.
//
// Demonstrates the harness as a library: configure a ScenarioParams,
// run trials, inspect TrialResult.
//
// Run:  ./campus_swarm [wifi_range_m]
#include <cstdio>
#include <cstdlib>

#include "harness/metrics.hpp"
#include "harness/scenario.hpp"

using namespace dapes;

int main(int argc, char** argv) {
  double range = argc > 1 ? std::atof(argv[1]) : 60.0;

  harness::ScenarioParams params;
  params.wifi_range_m = range;
  params.files = 10;
  params.file_size_bytes = 64 * 1024;  // keep the example snappy
  params.seed = 7;

  std::printf("Fig. 7 topology: %d stationary + %d mobile downloaders, "
              "%d pure forwarders, %d DAPES intermediates, range %.0f m\n",
              params.stationary_downloaders, params.mobile_downloaders,
              params.pure_forwarders, params.dapes_intermediates,
              params.wifi_range_m);

  harness::TrialResult r = harness::run_dapes_trial(params);

  std::printf("\nresults:\n");
  std::printf("  mean download time : %8.1f s\n", r.download_time_s);
  std::printf("  completion         : %8.1f %%\n",
              100.0 * r.completion_fraction);
  std::printf("  transmissions      : %8llu frames\n",
              static_cast<unsigned long long>(r.transmissions));
  std::printf("  collided frames    : %8llu\n",
              static_cast<unsigned long long>(r.collided_frames));
  std::printf("  forwarding accuracy: %8.1f %% of relayed Interests "
              "brought data back\n",
              100.0 * r.forward_accuracy);
  std::printf("  overhead breakdown :\n");
  for (const auto& [kind, count] : r.tx_by_kind) {
    std::printf("    %-14s %8llu\n", kind.c_str(),
                static_cast<unsigned long long>(count));
  }
  return r.completion_fraction > 0.9 ? 0 : 1;
}
