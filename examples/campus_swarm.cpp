// Campus swarm: the paper's Fig. 7 simulation topology driven through the
// experiment engine — 4 stationary repositories and 40 mobile nodes in a
// 300 m x 300 m field, 24 of them downloading one collection, with pure
// forwarders and DAPES intermediates relaying across hops.
//
// Demonstrates the engine as a library: pick any protocol driver from the
// registry by name, fan trials out over a TrialRunner, inspect
// TrialResult.
//
// Run:  ./campus_swarm [driver] [wifi_range_m] [trials]
//       ./campus_swarm bithoc 80 4
#include <cstdio>
#include <cstdlib>

#include "harness/driver.hpp"
#include "harness/metrics.hpp"
#include "harness/trial_runner.hpp"

using namespace dapes;

int main(int argc, char** argv) {
  const std::string driver_name =
      argc > 1 ? argv[1] : harness::ProtocolNames::kDapes;
  double range = argc > 2 ? std::atof(argv[2]) : 60.0;
  int trials = argc > 3 ? std::atoi(argv[3]) : 1;

  auto& registry = harness::ProtocolDriverRegistry::instance();
  const harness::ProtocolDriver* driver = registry.find(driver_name);
  if (driver == nullptr || trials < 1) {
    std::fprintf(stderr, "usage: %s [driver] [wifi_range_m] [trials]\n",
                 argv[0]);
    std::fprintf(stderr, "registered drivers:");
    for (const auto& name : registry.names()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }

  harness::ScenarioParams params;
  params.wifi_range_m = range;
  params.files = 10;
  params.file_size_bytes = 64 * 1024;  // keep the example snappy
  params.seed = 7;

  std::printf("Fig. 7 topology: %d stationary + %d mobile downloaders, "
              "%d pure forwarders, %d DAPES intermediates, range %.0f m\n",
              params.stationary_downloaders, params.mobile_downloaders,
              params.pure_forwarders, params.dapes_intermediates,
              params.wifi_range_m);
  std::printf("driver: %s, %d trial(s) across %d thread(s)\n",
              driver->name().c_str(), trials, harness::TrialRunner().jobs());

  auto results = harness::TrialRunner().run(*driver, params, trials);

  std::vector<double> times;
  for (const auto& r : results) times.push_back(r.download_time_s);
  const harness::TrialResult& r = results.front();

  std::printf("\nresults (counters from trial 0 of %zu):\n", results.size());
  std::printf("  p90 download time  : %8.1f s\n",
              harness::percentile(times, 90.0));
  std::printf("  completion         : %8.1f %%\n",
              100.0 * r.completion_fraction);
  std::printf("  transmissions      : %8llu frames\n",
              static_cast<unsigned long long>(r.transmissions));
  std::printf("  collided frames    : %8llu\n",
              static_cast<unsigned long long>(r.collided_frames));
  std::printf("  peak state         : %8.1f KB\n",
              static_cast<double>(r.peak_state_bytes) / 1024.0);
  std::printf("  scheduler events   : %8llu\n",
              static_cast<unsigned long long>(r.events_executed));
  for (const auto& [kind, count] : r.tx_by_kind) {
    std::printf("  tx[%-14s] : %8llu\n", kind.c_str(),
                static_cast<unsigned long long>(count));
  }
  return r.completion_fraction > 0.9 ? 0 : 1;
}
