// Multiple simultaneous collections (paper §VII lists "peers share large
// numbers of file collections simultaneously" as the stress direction).
//
// Two producers publish different collections; every peer subscribes to
// both; a roaming peer is interested in only one of them — DAPES
// discovery advertises both, but peers fetch only collections they
// subscribed to.
//
// Run:  ./multi_collection
#include <cstdio>

#include "dapes/collection.hpp"
#include "dapes/peer.hpp"
#include "sim/medium.hpp"
#include "sim/mobility.hpp"
#include "sim/scheduler.hpp"

using namespace dapes;

int main() {
  common::Rng rng(99);
  sim::Scheduler sched;
  sim::Medium::Params radio;
  radio.range_m = 60.0;
  radio.loss_rate = 0.05;
  sim::Medium medium(sched, radio, rng.fork());

  crypto::KeyChain keys;
  crypto::PrivateKey key_a = keys.generate_key("/residents/ana");
  crypto::PrivateKey key_b = keys.generate_key("/residents/ben");

  auto bridge = core::Collection::create_synthetic(
      ndn::Name("/damaged-bridge-1533783192"),
      {{"pictures", 48 * 1024}, {"report", 8 * 1024}}, 1024,
      core::MetadataFormat::kPacketDigest, key_a);
  auto flood = core::Collection::create_synthetic(
      ndn::Name("/flood-map-1533790000"),
      {{"water-levels", 32 * 1024}, {"evac-routes", 16 * 1024}}, 1024,
      core::MetadataFormat::kMerkleTree, key_b);

  sim::StationaryMobility ana_pos({100, 100});
  sim::StationaryMobility ben_pos({140, 100});
  sim::StationaryMobility cam_pos({120, 130});
  sim::StationaryMobility dia_pos({110, 70});

  auto make_peer = [&](const std::string& id, sim::MobilityModel* where) {
    core::PeerOptions options;
    options.id = id;
    auto p = std::make_unique<core::Peer>(sched, medium, where, rng.fork(),
                                          options);
    for (const auto* key : {&key_a, &key_b}) {
      p->keychain().import_key(*key);
      p->add_trust_anchor(key->id());
    }
    return p;
  };

  auto ana = make_peer("ana", &ana_pos);    // produces the bridge report
  auto ben = make_peer("ben", &ben_pos);    // produces the flood map
  auto cam = make_peer("cam", &cam_pos);    // wants both
  auto dia = make_peer("dia", &dia_pos);    // wants only the flood map

  ana->publish(bridge);
  ana->subscribe(flood);
  ben->publish(flood);
  ben->subscribe(bridge);
  cam->subscribe(bridge);
  cam->subscribe(flood);
  dia->subscribe(flood);

  for (auto* p : {ana.get(), ben.get(), cam.get(), dia.get()}) p->start();

  sched.run_until(common::TimePoint{static_cast<int64_t>(240e6)});

  auto report = [&](core::Peer& p) {
    std::printf("  %-4s bridge %5.1f%% %s   flood %5.1f%% %s\n",
                p.id().c_str(), 100.0 * p.progress(bridge->name()),
                p.complete(bridge->name()) ? "(done)" : "      ",
                100.0 * p.progress(flood->name()),
                p.complete(flood->name()) ? "(done)" : "      ");
  };
  std::printf("after 240 s:\n");
  report(*ana);
  report(*ben);
  report(*cam);
  report(*dia);

  bool ok = ana->complete(flood->name()) && ben->complete(bridge->name()) &&
            cam->complete(bridge->name()) && cam->complete(flood->name()) &&
            dia->complete(flood->name());
  std::printf("%s\n", ok ? "all subscriptions satisfied" : "INCOMPLETE");
  return ok ? 0 : 1;
}
