// Disaster-recovery data carrier (the paper's motivating use-case, §II-C
// and Fig. 8a).
//
// A rural resident (alice) photographs a damaged bridge and publishes a
// file collection describing it. The area has no infrastructure and the
// other residents (bob, carol) live in network segments that never touch
// alice's. A fourth resident (dave) walks between the segments and acts
// as a data carrier: he fetches the collection while near alice, then
// physically carries it to bob's and carol's segments, where they fetch
// it from him — store-carry-forward with DAPES semantics end to end.
//
// Run:  ./disaster_recovery
#include <cstdio>

#include "dapes/collection.hpp"
#include "dapes/peer.hpp"
#include "sim/medium.hpp"
#include "sim/mobility.hpp"
#include "sim/scheduler.hpp"

using namespace dapes;
using sim::TimePoint;
using sim::Vec2;

namespace {

TimePoint at(double seconds) {
  return TimePoint{static_cast<int64_t>(seconds * 1e6)};
}

}  // namespace

int main() {
  common::Rng rng(2026);
  sim::Scheduler sched;

  sim::Medium::Params radio;
  radio.range_m = 50.0;  // handheld WiFi
  radio.loss_rate = 0.10;
  sim::Medium medium(sched, radio, rng.fork());

  // --- the collection: picture + location of the damaged bridge --------
  crypto::KeyChain keys;
  crypto::PrivateKey alice_key = keys.generate_key("/residents/alice");
  auto collection = core::Collection::create(
      ndn::Name("/damaged-bridge-1533783192"),
      {
          {"bridge-picture", common::bytes_of(std::string(96 * 1024, 'J'))},
          {"bridge-location",
           common::bytes_of("41.207N 8.293W; stone bridge at the mill road")},
      },
      /*packet_size=*/1024, core::MetadataFormat::kPacketDigest, alice_key);

  // --- geography: three disconnected segments --------------------------
  sim::StationaryMobility alice_home({40, 260});   // north-west
  sim::StationaryMobility bob_home({40, 40});      // south-west
  sim::StationaryMobility carol_home({260, 40});   // south-east

  // Dave's walk: visit alice, then bob, then carol, with travel time.
  sim::WaypointMobility dave_walk({
      {at(0), {50, 250}},     // chatting with alice
      {at(80), {50, 250}},    // ...long enough to fetch the collection
      {at(160), {50, 50}},    // walk south to bob
      {at(280), {50, 50}},    // serve bob
      {at(360), {250, 50}},   // walk east to carol
      {at(1200), {250, 50}},  // serve carol
  });

  auto make_peer = [&](const std::string& id, sim::MobilityModel* where) {
    core::PeerOptions options;
    options.id = id;
    auto peer = std::make_unique<core::Peer>(sched, medium, where, rng.fork(),
                                             options);
    // Residents share local trust anchors (paper §III).
    peer->keychain().import_key(alice_key);
    peer->add_trust_anchor(alice_key.id());
    peer->set_completion_callback([id](const ndn::Name& name, TimePoint t) {
      std::printf("[%7.1fs] %s finished downloading %s\n", t.to_seconds(),
                  id.c_str(), name.to_uri().c_str());
    });
    return peer;
  };

  auto alice = make_peer("alice", &alice_home);
  auto bob = make_peer("bob", &bob_home);
  auto carol = make_peer("carol", &carol_home);
  auto dave = make_peer("dave", &dave_walk);

  alice->publish(collection);
  bob->subscribe(collection);
  carol->subscribe(collection);
  dave->subscribe(collection);

  for (auto* p : {alice.get(), bob.get(), carol.get(), dave.get()}) {
    p->start();
  }

  sched.run_until(at(1200));

  std::printf("\nfinal state:\n");
  for (auto* p : {bob.get(), carol.get(), dave.get()}) {
    std::printf("  %-6s progress %5.1f%%  complete: %s\n", p->id().c_str(),
                100.0 * p->progress(collection->name()),
                p->complete(collection->name()) ? "yes" : "no");
  }
  std::printf("total frames on the air: %llu\n",
              static_cast<unsigned long long>(medium.stats().transmissions));

  bool all = bob->complete(collection->name()) &&
             carol->complete(collection->name()) &&
             dave->complete(collection->name());
  return all ? 0 : 1;
}
