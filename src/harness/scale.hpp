/// @file
/// The scale.field scenario family: the Fig. 7 DAPES world swept along the
/// node-count axis instead of the WiFi-range axis.
///
/// The paper evaluates on a 44-node field; this family grows that field to
/// hundreds or thousands of nodes while holding node *density* constant —
/// the field side scales with sqrt(n), and the four population classes
/// (stationary repositories, mobile downloaders, pure forwarders, DAPES
/// intermediates) keep their 4:20:10:10 Fig. 7 proportions. Density is the
/// quantity that keeps per-node contact rates comparable across the sweep,
/// so the axis isolates how the *system* scales rather than how crowded
/// the channel gets.
///
/// The family is registered as protocol driver "scale.field"; callers pick
/// the mobility model (random direction / random waypoint / group) and the
/// medium implementation (spatial grid vs the brute-force reference)
/// through ScenarioParams. bench_scale is the canonical sweep over it.
///
/// The axis reaches 10 000 nodes (a ~1.4 km field at Fig. 7 density);
/// apply_scale is closed-form in n, so nothing special happens at that
/// size — but trials there are wall-clock expensive, so bench_scale runs
/// the 10k point as a single-trial baseline on a reduced sim horizon and
/// pairs it with ScenarioParams::trial_threads (the phase-parallel trial
/// interior) rather than multi-trial aggregation.
#pragma once

#include "harness/scenario.hpp"

namespace dapes::harness {

/// Population of the paper's Fig. 7 field; the reference point of the
/// scale axis (44 nodes on a 300 m x 300 m field).
inline constexpr int kFig7Nodes = 44;

/// Resize `p` to `total_nodes` nodes at constant density: Fig. 7
/// population proportions, field side scaled by sqrt(n / 44). Intended as
/// a SweepAxis::apply function (axis label "nodes"). Counts below the
/// four-class minimum (1 repository, 2 mobile downloaders) are clamped.
void apply_scale(ScenarioParams& p, double total_nodes);

/// One scale.field trial: the DAPES stack on the scaled field. The driver
/// is registered under ProtocolNames::kScaleField.
TrialResult run_scale_trial(const ScenarioParams& params);

/// One scale.medium trial: the same scaled field, but driving the medium
/// directly — every node broadcasts fixed-size frames through a CSMA
/// radio at a fixed offered load, and a 20 Hz strategy tick recomputes
/// every node's neighborhood density (Medium::degree_of), with
/// no NDN stack on top. This isolates the subsystem the spatial grid
/// replaced: on the full DAPES stack the per-delivery protocol work
/// (PIT/CS lookups, crypto) dominates trial time, so the medium-bound
/// trial is where the O(n^2) -> O(n * density) win is visible. All
/// traffic decisions are independent of delivery outcomes, so the
/// deterministic outputs are bit-identical between the grid and the
/// brute-force reference. Registered under ProtocolNames::kScaleMedium.
TrialResult run_medium_stress_trial(const ScenarioParams& params);

}  // namespace dapes::harness
