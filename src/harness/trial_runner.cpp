#include "harness/trial_runner.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "common/rng.hpp"

namespace dapes::harness {

TrialRunner::TrialRunner(int jobs) : jobs_(jobs) {
  if (jobs_ <= 0) {
    jobs_ = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs_ <= 0) jobs_ = 1;
  }
}

void TrialRunner::for_each_index(size_t n,
                                 const std::function<void(size_t)>& fn) const {
  if (n == 0) return;
  const size_t workers =
      std::min(static_cast<size_t>(jobs_), n);
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto worker = [&] {
    // Stop picking up work once any task has thrown: a failing sweep
    // should surface the error, not burn hours finishing doomed trials.
    while (!failed.load(std::memory_order_relaxed)) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t w = 0; w < workers; ++w) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<TrialResult> TrialRunner::run(const ProtocolDriver& driver,
                                          const ScenarioParams& params,
                                          int trials) const {
  if (trials <= 0) return {};
  std::vector<TrialResult> results(static_cast<size_t>(trials));
  for_each_index(static_cast<size_t>(trials), [&](size_t i) {
    ScenarioParams p = params;
    p.seed = common::derive_seed(params.seed, i);
    // Per-trial trace file: suffix by trial index only, so concurrent
    // trials never share a file and names are independent of --jobs.
    p.trace = trace::with_path_suffix(p.trace, ".t" + std::to_string(i));
    results[i] = driver.run_trial(p);
  });
  return results;
}

std::vector<TrialResult> TrialRunner::run(const std::string& driver_name,
                                          const ScenarioParams& params,
                                          int trials) const {
  return run(ProtocolDriverRegistry::instance().get(driver_name), params,
             trials);
}

// Legacy multi-trial entry points (scenario.hpp) now route through the
// engine on a single thread.
std::vector<TrialResult> run_dapes_trials(ScenarioParams params, int trials) {
  return TrialRunner(1).run(ProtocolNames::kDapes, params, trials);
}

std::vector<TrialResult> run_bithoc_trials(ScenarioParams params, int trials) {
  return TrialRunner(1).run(ProtocolNames::kBithoc, params, trials);
}

std::vector<TrialResult> run_ekta_trials(ScenarioParams params, int trials) {
  return TrialRunner(1).run(ProtocolNames::kEkta, params, trials);
}

}  // namespace dapes::harness
