#include "harness/sweep.hpp"

#include <algorithm>
#include <cstring>

#include "common/rng.hpp"
#include "harness/metrics.hpp"

namespace dapes::harness {

std::optional<OutputFormat> parse_output_format(std::string_view s) {
  if (s == "text") return OutputFormat::kText;
  if (s == "csv") return OutputFormat::kCsv;
  if (s == "json") return OutputFormat::kJson;
  return std::nullopt;
}

SweepResult run_sweep(const SweepSpec& spec, const TrialRunner& runner) {
  const size_t n_series = spec.series.size();
  const size_t n_x = spec.axis.values.size();
  const size_t n_cells = n_series * n_x;
  const size_t trials = spec.trials > 0 ? static_cast<size_t>(spec.trials) : 0;

  // Resolve every driver before running anything: an unknown name fails
  // the whole sweep up front, not mid-grid from a worker thread.
  std::vector<const ProtocolDriver*> drivers;
  drivers.reserve(n_series);
  for (const auto& s : spec.series) {
    drivers.push_back(&ProtocolDriverRegistry::instance().get(s.driver));
  }

  // One task per (cell, trial); the flat index makes seeds and result
  // slots a pure function of the grid position, independent of threads.
  std::vector<std::vector<TrialResult>> raw(
      n_cells, std::vector<TrialResult>(trials));
  runner.for_each_index(n_cells * trials, [&](size_t task) {
    const size_t cell = task / trials;
    const size_t trial = task % trials;
    const size_t series_idx = cell / n_x;
    const size_t x_idx = cell % n_x;

    ScenarioParams p = spec.base;
    spec.axis.apply(p, spec.axis.values[x_idx]);
    if (spec.series[series_idx].configure) {
      spec.series[series_idx].configure(p);
    }
    p.seed = common::derive_seed(common::derive_seed(spec.base.seed, cell),
                                 trial);
    // Per-task trace file, named by grid position (never by thread).
    p.trace = trace::with_path_suffix(
        p.trace, ".c" + std::to_string(cell) + ".t" + std::to_string(trial));
    raw[cell][trial] = drivers[series_idx]->run_trial(p);
  });

  SweepResult result;
  result.title = spec.title;
  result.x_label = spec.axis.label;
  result.y_unit = spec.y_unit;
  result.xs = spec.axis.values;
  for (const auto& s : spec.series) result.series_labels.push_back(s.label);
  for (const auto& m : spec.metrics) result.metric_labels.push_back(m.label);

  result.values.resize(spec.metrics.size());
  for (size_t m = 0; m < spec.metrics.size(); ++m) {
    result.values[m].resize(n_series);
    for (size_t s = 0; s < n_series; ++s) {
      result.values[m][s].resize(n_x);
      for (size_t x = 0; x < n_x; ++x) {
        const auto& cell_trials = raw[s * n_x + x];
        std::vector<double> samples;
        samples.reserve(cell_trials.size());
        for (const auto& t : cell_trials) {
          samples.push_back(spec.metrics[m].value(t));
        }
        result.values[m][s][x] =
            aggregate_metric(spec.metrics[m], std::move(samples));
      }
    }
  }
  return result;
}

double aggregate_metric(const SweepMetric& metric,
                        std::vector<double> samples) {
  if (metric.percentile < 0.0) {
    double sum = 0.0;
    for (double v : samples) sum += v;
    return samples.empty() ? 0.0
                           : sum / static_cast<double>(samples.size());
  }
  return percentile(std::move(samples), metric.percentile);
}

namespace {

void write_text(const SweepResult& r, std::FILE* out) {
  std::fprintf(out, "\n=== %s ===\n", r.title.c_str());
  if (!r.y_unit.empty()) std::fprintf(out, "(y values in %s)\n", r.y_unit.c_str());

  // Table mode: a single x and several metrics reads best transposed —
  // one row per series, one column per metric (Table I, the ablation).
  if (r.xs.size() == 1 && r.metric_labels.size() > 1) {
    std::fprintf(out, "%-24s", "series");
    for (const auto& m : r.metric_labels) std::fprintf(out, " %16s", m.c_str());
    std::fprintf(out, "\n");
    for (size_t s = 0; s < r.series_labels.size(); ++s) {
      std::fprintf(out, "%-24s", r.series_labels[s].c_str());
      for (size_t m = 0; m < r.metric_labels.size(); ++m) {
        std::fprintf(out, " %16.2f", r.values[m][s][0]);
      }
      std::fprintf(out, "\n");
    }
    return;
  }

  for (size_t m = 0; m < r.metric_labels.size(); ++m) {
    if (r.metric_labels.size() > 1) {
      std::fprintf(out, "-- %s --\n", r.metric_labels[m].c_str());
    }
    std::fprintf(out, "%-14s", r.x_label.c_str());
    for (const auto& s : r.series_labels) std::fprintf(out, " %28s", s.c_str());
    std::fprintf(out, "\n");
    for (size_t x = 0; x < r.xs.size(); ++x) {
      std::fprintf(out, "%-14.6g", r.xs[x]);
      for (size_t s = 0; s < r.series_labels.size(); ++s) {
        std::fprintf(out, " %28.2f", r.values[m][s][x]);
      }
      std::fprintf(out, "\n");
    }
  }
}

void write_csv_field(const std::string& v, std::FILE* out) {
  if (v.find_first_of(",\"\n") == std::string::npos) {
    std::fprintf(out, "%s", v.c_str());
    return;
  }
  std::fputc('"', out);
  for (char c : v) {
    if (c == '"') std::fputc('"', out);
    std::fputc(c, out);
  }
  std::fputc('"', out);
}

void write_csv(const SweepResult& r, std::FILE* out) {
  std::fputs("metric,series,", out);
  write_csv_field(r.x_label, out);
  std::fputs(",value\n", out);
  for (size_t m = 0; m < r.metric_labels.size(); ++m) {
    for (size_t s = 0; s < r.series_labels.size(); ++s) {
      for (size_t x = 0; x < r.xs.size(); ++x) {
        write_csv_field(r.metric_labels[m], out);
        std::fputc(',', out);
        write_csv_field(r.series_labels[s], out);
        std::fprintf(out, ",%.6g,%.6f\n", r.xs[x], r.values[m][s][x]);
      }
    }
  }
}

void write_json_string(const std::string& v, std::FILE* out) {
  std::fputc('"', out);
  for (char c : v) {
    switch (c) {
      case '"': std::fputs("\\\"", out); break;
      case '\\': std::fputs("\\\\", out); break;
      case '\n': std::fputs("\\n", out); break;
      case '\t': std::fputs("\\t", out); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::fprintf(out, "\\u%04x", c);
        } else {
          std::fputc(c, out);
        }
    }
  }
  std::fputc('"', out);
}

void write_json(const SweepResult& r, std::FILE* out) {
  std::fputs("{\n  \"title\": ", out);
  write_json_string(r.title, out);
  std::fputs(",\n  \"x_label\": ", out);
  write_json_string(r.x_label, out);
  std::fputs(",\n  \"y_unit\": ", out);
  write_json_string(r.y_unit, out);
  std::fputs(",\n  \"xs\": [", out);
  for (size_t x = 0; x < r.xs.size(); ++x) {
    std::fprintf(out, "%s%.6g", x ? ", " : "", r.xs[x]);
  }
  std::fputs("],\n  \"metrics\": {\n", out);
  for (size_t m = 0; m < r.metric_labels.size(); ++m) {
    std::fputs("    ", out);
    write_json_string(r.metric_labels[m], out);
    std::fputs(": {\n", out);
    for (size_t s = 0; s < r.series_labels.size(); ++s) {
      std::fputs("      ", out);
      write_json_string(r.series_labels[s], out);
      std::fputs(": [", out);
      for (size_t x = 0; x < r.xs.size(); ++x) {
        std::fprintf(out, "%s%.6f", x ? ", " : "", r.values[m][s][x]);
      }
      std::fprintf(out, "]%s\n", s + 1 < r.series_labels.size() ? "," : "");
    }
    std::fprintf(out, "    }%s\n", m + 1 < r.metric_labels.size() ? "," : "");
  }
  std::fputs("  }\n}\n", out);
}

}  // namespace

void write_sweep(const SweepResult& result, OutputFormat format,
                 std::FILE* out) {
  switch (format) {
    case OutputFormat::kText: write_text(result, out); break;
    case OutputFormat::kCsv: write_csv(result, out); break;
    case OutputFormat::kJson: write_json(result, out); break;
  }
  std::fflush(out);
}

SweepMetric download_time_metric(double pct) {
  return {"download_s", [](const TrialResult& r) { return r.download_time_s; },
          pct};
}

SweepMetric transmissions_k_metric(double pct) {
  return {"transmissions_k",
          [](const TrialResult& r) {
            return static_cast<double>(r.transmissions) / 1000.0;
          },
          pct};
}

SweepMetric completion_metric() {
  return {"completion",
          [](const TrialResult& r) { return r.completion_fraction; },
          /*percentile=*/-1.0};
}

SweepMetric memory_mb_metric(double pct) {
  return {"memory_mb",
          [](const TrialResult& r) {
            return static_cast<double>(r.peak_state_bytes) / (1024.0 * 1024.0);
          },
          pct};
}

SweepMetric knowledge_kb_metric(double pct) {
  return {"knowledge_kb",
          [](const TrialResult& r) {
            return static_cast<double>(r.peak_knowledge_bytes) / 1024.0;
          },
          pct};
}

SweepMetric context_switches_metric(double pct) {
  return {"ctx_switches",
          [](const TrialResult& r) {
            return static_cast<double>(r.context_switches);
          },
          pct};
}

SweepMetric system_calls_metric(double pct) {
  return {"system_calls",
          [](const TrialResult& r) {
            return static_cast<double>(r.system_calls);
          },
          pct};
}

SweepMetric page_faults_metric(double pct) {
  return {"page_faults",
          [](const TrialResult& r) { return static_cast<double>(r.page_faults); },
          pct};
}

SweepMetric trial_wall_metric() {
  return {"trial_wall_s",
          [](const TrialResult& r) { return r.wall_clock_s; },
          /*percentile=*/-1.0};
}

}  // namespace dapes::harness
