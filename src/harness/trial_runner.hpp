/// @file
/// Parallel trial execution.
///
/// Every trial owns its own Scheduler/Medium/Rng, so N trials are
/// embarrassingly parallel. TrialRunner fans a batch of trials out over a
/// std::thread pool; trial i always runs with seed
/// common::derive_seed(params.seed, i), so the result vector is bit-identical
/// regardless of thread count or scheduling — `--jobs 8` reproduces
/// `--jobs 1` exactly (see EXPERIMENTS.md "Seed derivation").
///
/// This axis composes with the *intra*-trial one: each trial may itself run
/// the medium's phase-parallel delivery engine (ScenarioParams::
/// trial_threads, its own per-trial worker pool), so total thread use is
/// roughly jobs x max(1, trial_threads). Both axes are bit-identical for
/// any value, so any combination reproduces `--jobs 1 --trial-threads 0`.
/// Prefer --jobs for many trials (perfect scaling) and --trial-threads for
/// a few huge trials, where per-trial latency is the bottleneck.
#pragma once

#include <functional>
#include <vector>

#include "harness/driver.hpp"
#include "harness/scenario.hpp"

namespace dapes::harness {

/// Fans independent trials out over a std::thread pool; results are
/// bit-identical for any thread count (see file comment).
class TrialRunner {
 public:
  /// jobs <= 0 means "all hardware threads".
  explicit TrialRunner(int jobs = 0);

  /// Worker threads this runner uses.
  int jobs() const { return jobs_; }

  /// Run `trials` independent trials of `driver`. Trial i uses seed
  /// derive_seed(params.seed, i); results are ordered by trial index.
  std::vector<TrialResult> run(const ProtocolDriver& driver,
                               const ScenarioParams& params, int trials) const;

  /// Registry-name convenience.
  std::vector<TrialResult> run(const std::string& driver_name,
                               const ScenarioParams& params, int trials) const;

  /// Low-level fan-out used by Sweep: invoke fn(i) for every i in [0, n)
  /// across the pool. fn must be thread-safe and must not depend on
  /// execution order. The first exception thrown by any fn is rethrown
  /// after all workers join.
  void for_each_index(size_t n, const std::function<void(size_t)>& fn) const;

 private:
  int jobs_;
};

}  // namespace dapes::harness
