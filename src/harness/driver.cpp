#include "harness/driver.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "harness/channel_scenarios.hpp"
#include "harness/churn.hpp"
#include "harness/realworld.hpp"
#include "harness/scale.hpp"

namespace dapes::harness {

namespace {

/// Adapts a stateless trial function to the ProtocolDriver interface; all
/// built-in drivers are instances of this.
class FunctionDriver : public ProtocolDriver {
 public:
  FunctionDriver(std::string name,
                 std::function<TrialResult(const ScenarioParams&)> run)
      : name_(std::move(name)), run_(std::move(run)) {}

  const std::string& name() const override { return name_; }

  TrialResult run_trial(const ScenarioParams& params) const override {
    return run_(params);
  }

 private:
  std::string name_;
  std::function<TrialResult(const ScenarioParams&)> run_;
};

}  // namespace

ProtocolDriverRegistry::ProtocolDriverRegistry() {
  add(ProtocolNames::kDapes, run_dapes_trial);
  add(ProtocolNames::kBithoc, run_bithoc_trial);
  add(ProtocolNames::kEkta, run_ekta_trial);
  for (int scenario = 1; scenario <= 3; ++scenario) {
    const char* name = scenario == 1   ? ProtocolNames::kRealWorldCarrier
                       : scenario == 2 ? ProtocolNames::kRealWorldRepository
                                       : ProtocolNames::kRealWorldMoving;
    add(name, [scenario](const ScenarioParams& params) {
      return run_realworld_trial(scenario, params);
    });
  }
  add(ProtocolNames::kScaleField, run_scale_trial);
  add(ProtocolNames::kScaleMedium, run_medium_stress_trial);
  add(ProtocolNames::kLossSweep, run_loss_sweep_trial);
  add(ProtocolNames::kHeteroRadio, run_hetero_radio_trial);
  add(ProtocolNames::kChurnSwarm, run_churn_swarm_trial);
  add(ProtocolNames::kChurnFlash, run_churn_flash_trial);
}

ProtocolDriverRegistry& ProtocolDriverRegistry::instance() {
  static ProtocolDriverRegistry registry;
  return registry;
}

void ProtocolDriverRegistry::add(std::shared_ptr<const ProtocolDriver> driver) {
  if (find(driver->name()) != nullptr) {
    throw std::invalid_argument("duplicate protocol driver: " +
                                driver->name());
  }
  drivers_.push_back(std::move(driver));
}

void ProtocolDriverRegistry::add(
    const std::string& name,
    std::function<TrialResult(const ScenarioParams&)> run) {
  add(std::make_shared<FunctionDriver>(name, std::move(run)));
}

const ProtocolDriver* ProtocolDriverRegistry::find(
    const std::string& name) const {
  for (const auto& d : drivers_) {
    if (d->name() == name) return d.get();
  }
  return nullptr;
}

const ProtocolDriver& ProtocolDriverRegistry::get(
    const std::string& name) const {
  const ProtocolDriver* driver = find(name);
  if (driver == nullptr) {
    std::ostringstream msg;
    msg << "unknown protocol driver \"" << name << "\"; registered:";
    for (const auto& n : names()) msg << " " << n;
    throw std::out_of_range(msg.str());
  }
  return *driver;
}

std::vector<std::string> ProtocolDriverRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(drivers_.size());
  for (const auto& d : drivers_) out.push_back(d->name());
  std::sort(out.begin(), out.end());
  return out;
}

TrialResult run_trial(const ProtocolDriver& driver,
                      const ScenarioParams& params) {
  return driver.run_trial(params);
}

TrialResult run_trial(const std::string& driver_name,
                      const ScenarioParams& params) {
  return run_trial(ProtocolDriverRegistry::instance().get(driver_name),
                   params);
}

}  // namespace dapes::harness
