// Fig. 7 topology drivers for the IP baselines (Bithoc, Ekta).
//
// Mirrors run_dapes_trial: same field, same mobility, same stationary/
// mobile downloader split, same collection workload (all built by the
// shared Topology). The 20 non-downloading nodes "forward received packets
// based on their routing tables" (paper §VI-B): they run the respective
// routing protocol (and relay Bithoc's scoped HELLO floods) without the
// application.
#include "baselines/bithoc.hpp"
#include "baselines/ekta.hpp"
#include "harness/scenario.hpp"
#include "harness/topology.hpp"

namespace dapes::harness {

namespace {

using baselines::BithocPeer;
using baselines::EktaPeer;
using baselines::HelloRelay;
using sim::TimePoint;

// Places the downloaders for either baseline; `make_peer` builds the
// protocol-specific peer from (mobility, is_seed). Bithoc peers start as
// they are placed; Ekta peers start after membership bootstrap, so event
// insertion order (the scheduler's same-timestamp tie-break) matches the
// per-protocol setups this replaces.
template <typename PeerT, typename MakePeer>
std::vector<std::unique_ptr<PeerT>> place_downloaders(
    const ScenarioParams& params, Topology& topo, CompletionTracker& tracker,
    MakePeer make_peer, bool start_each) {
  std::vector<std::unique_ptr<PeerT>> peers;
  const int total_downloaders =
      params.stationary_downloaders + params.mobile_downloaders;
  for (int i = 0; i < total_downloaders; ++i) {
    sim::MobilityModel* mob = i < params.stationary_downloaders
                                  ? topo.stationary(params, i)
                                  : topo.mobile(params);
    bool is_seed = i == params.stationary_downloaders;  // first mobile node
    std::unique_ptr<PeerT> peer = make_peer(mob, is_seed);
    if (!is_seed) {
      peer->set_completion_callback([&tracker](TimePoint t) {
        tracker.record(t.to_seconds());
      });
    }
    if (start_each) peer->start();
    peers.push_back(std::move(peer));
  }
  return peers;
}

template <typename PeerT>
TrialResult finish(const ScenarioParams& params, Topology& topo,
                   CompletionTracker& tracker,
                   const std::vector<std::unique_ptr<PeerT>>& peers) {
  return run_to_completion(params, topo, tracker, [&] {
    StateSample s;
    for (const auto& p : peers) s.state_bytes += p->state_bytes();
    return s;
  });
}

}  // namespace

TrialResult run_bithoc_trial(const ScenarioParams& params) {
  Topology topo(params, params.seed, "/collection-1533783192", "/producer",
                "file-");
  CompletionTracker tracker;
  tracker.expected =
      params.stationary_downloaders + params.mobile_downloaders - 1;

  auto peers = place_downloaders<BithocPeer>(
      params, topo, tracker, [&](sim::MobilityModel* mob, bool is_seed) {
        return std::make_unique<BithocPeer>(topo.sched, *topo.medium, mob,
                                            topo.rng.fork(),
                                            BithocPeer::Options{},
                                            topo.collection, is_seed);
      },
      /*start_each=*/true);

  std::vector<std::unique_ptr<ip::Node>> forwarders;
  std::vector<std::unique_ptr<HelloRelay>> relays;
  const int forwarder_count =
      params.pure_forwarders + params.dapes_intermediates;
  for (int i = 0; i < forwarder_count; ++i) {
    auto node = std::make_unique<ip::Node>(topo.sched, *topo.medium,
                                           topo.mobile(params),
                                           topo.rng.fork());
    node->set_routing(std::make_unique<manet::Dsdv>());
    relays.push_back(std::make_unique<HelloRelay>(*node));
    forwarders.push_back(std::move(node));
  }

  return finish(params, topo, tracker, peers);
}

TrialResult run_ekta_trial(const ScenarioParams& params) {
  Topology topo(params, params.seed, "/collection-1533783192", "/producer",
                "file-");
  CompletionTracker tracker;
  tracker.expected =
      params.stationary_downloaders + params.mobile_downloaders - 1;

  auto peers = place_downloaders<EktaPeer>(
      params, topo, tracker, [&](sim::MobilityModel* mob, bool is_seed) {
        return std::make_unique<EktaPeer>(topo.sched, *topo.medium, mob,
                                          topo.rng.fork(),
                                          EktaPeer::Options{},
                                          topo.collection, is_seed);
      },
      /*start_each=*/false);
  // Bootstrap member lists (Ekta nodes know the swarm membership).
  for (auto& a : peers) {
    for (auto& b : peers) {
      a->add_member(b->address());
    }
  }
  for (auto& p : peers) p->start();

  std::vector<std::unique_ptr<ip::Node>> forwarders;
  const int forwarder_count =
      params.pure_forwarders + params.dapes_intermediates;
  for (int i = 0; i < forwarder_count; ++i) {
    auto node = std::make_unique<ip::Node>(topo.sched, *topo.medium,
                                           topo.mobile(params),
                                           topo.rng.fork());
    node->set_routing(std::make_unique<manet::Dsr>());
    forwarders.push_back(std::move(node));
  }

  return finish(params, topo, tracker, peers);
}

}  // namespace dapes::harness
