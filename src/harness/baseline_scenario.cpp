// Fig. 7 topology trials for the IP baselines (Bithoc, Ekta).
//
// Mirrors run_dapes_trial: same field, same mobility, same stationary/
// mobile downloader split, same collection workload. The 20 non-
// downloading nodes "forward received packets based on their routing
// tables" (paper §VI-B): they run the respective routing protocol (and
// relay Bithoc's scoped HELLO floods) without the application.
#include <algorithm>

#include "baselines/bithoc.hpp"
#include "baselines/ekta.hpp"
#include "harness/scenario.hpp"
#include "sim/medium.hpp"
#include "sim/mobility.hpp"
#include "sim/scheduler.hpp"

namespace dapes::harness {

namespace {

using baselines::BithocPeer;
using baselines::EktaPeer;
using baselines::HelloRelay;
using core::Collection;
using sim::Duration;
using sim::TimePoint;
using sim::Vec2;

struct Topology {
  common::Rng rng;
  sim::Scheduler sched;
  std::unique_ptr<sim::Medium> medium;
  std::shared_ptr<Collection> collection;
  std::vector<std::unique_ptr<sim::MobilityModel>> mobility;

  explicit Topology(const ScenarioParams& params) : rng(params.seed) {
    sim::Medium::Params mp;
    mp.range_m = params.wifi_range_m;
    mp.data_rate_bps = params.data_rate_bps;
    mp.loss_rate = params.loss_rate;
    medium = std::make_unique<sim::Medium>(sched, mp, rng.fork());

    crypto::KeyChain keys;
    crypto::PrivateKey key = keys.generate_key("/producer", params.seed);
    std::vector<Collection::SyntheticFileInput> files;
    for (size_t i = 0; i < params.files; ++i) {
      files.push_back({"file-" + std::to_string(i), params.file_size_bytes});
    }
    collection = Collection::create_synthetic(
        ndn::Name("/collection-1533783192"), std::move(files),
        params.packet_size, params.metadata_format, key);
  }

  sim::MobilityModel* mobile(const ScenarioParams& params) {
    sim::RandomDirectionMobility::Params mp;
    mp.field = sim::Field{params.field_m, params.field_m};
    Vec2 start{rng.uniform(0.0, params.field_m),
               rng.uniform(0.0, params.field_m)};
    mobility.push_back(std::make_unique<sim::RandomDirectionMobility>(
        start, mp, rng.fork()));
    return mobility.back().get();
  }

  sim::MobilityModel* stationary(const ScenarioParams& params, int index) {
    const double inset = params.field_m / 4.0;
    const Vec2 positions[4] = {
        {inset, inset},
        {params.field_m - inset, inset},
        {inset, params.field_m - inset},
        {params.field_m - inset, params.field_m - inset}};
    mobility.push_back(
        std::make_unique<sim::StationaryMobility>(positions[index % 4]));
    return mobility.back().get();
  }
};

template <typename Peers, typename Forwarders, typename StateOf>
TrialResult run_to_completion(const ScenarioParams& params, Topology& topo,
                              Peers& peers, Forwarders& forwarders,
                              StateOf state_of, int expected_completions,
                              int* completed,
                              std::vector<double>* completion_times) {
  TrialResult result;
  const TimePoint limit{static_cast<int64_t>(params.sim_limit_s * 1e6)};
  const Duration chunk = Duration::seconds(5.0);
  TimePoint cursor = TimePoint::zero();
  while (cursor < limit && *completed < expected_completions) {
    cursor = std::min(TimePoint{cursor.us + chunk.us}, limit);
    topo.sched.run_until(cursor);
    size_t total_state = 0;
    for (const auto& p : peers) total_state += state_of(*p);
    (void)forwarders;
    result.peak_state_bytes = std::max(result.peak_state_bytes, total_state);
    result.total_state_bytes = total_state;
  }

  double sum = 0.0;
  for (double t : *completion_times) sum += t;
  sum += static_cast<double>(expected_completions - *completed) *
         params.sim_limit_s;
  result.download_time_s = sum / std::max(1, expected_completions);
  result.completion_fraction = static_cast<double>(*completed) /
                               std::max(1, expected_completions);
  result.transmissions = topo.medium->stats().transmissions;
  result.tx_by_kind.insert(topo.medium->stats().tx_by_kind.begin(),
                           topo.medium->stats().tx_by_kind.end());
  result.collided_frames = topo.medium->stats().collided_frames;
  result.events_executed = topo.sched.executed();
  return result;
}

}  // namespace

TrialResult run_bithoc_trial(const ScenarioParams& params) {
  Topology topo(params);
  std::vector<std::unique_ptr<BithocPeer>> peers;
  std::vector<std::unique_ptr<ip::Node>> forwarders;
  std::vector<std::unique_ptr<HelloRelay>> relays;

  const int total_downloaders =
      params.stationary_downloaders + params.mobile_downloaders;
  int completed = 0;
  std::vector<double> completion_times;

  for (int i = 0; i < total_downloaders; ++i) {
    sim::MobilityModel* mob =
        i < params.stationary_downloaders
            ? topo.stationary(params, i)
            : topo.mobile(params);
    bool is_seed = i == params.stationary_downloaders;  // first mobile node
    auto peer = std::make_unique<BithocPeer>(
        topo.sched, *topo.medium, mob, topo.rng.fork(), BithocPeer::Options{},
        topo.collection, is_seed);
    if (!is_seed) {
      peer->set_completion_callback(
          [&completed, &completion_times](TimePoint t) {
            ++completed;
            completion_times.push_back(t.to_seconds());
          });
    }
    peer->start();
    peers.push_back(std::move(peer));
  }

  const int forwarder_count = params.pure_forwarders + params.dapes_intermediates;
  for (int i = 0; i < forwarder_count; ++i) {
    auto node = std::make_unique<ip::Node>(topo.sched, *topo.medium,
                                           topo.mobile(params),
                                           topo.rng.fork());
    node->set_routing(std::make_unique<manet::Dsdv>());
    relays.push_back(std::make_unique<HelloRelay>(*node));
    forwarders.push_back(std::move(node));
  }

  return run_to_completion(
      params, topo, peers, forwarders,
      [](const BithocPeer& p) { return p.state_bytes(); },
      total_downloaders - 1, &completed, &completion_times);
}

TrialResult run_ekta_trial(const ScenarioParams& params) {
  Topology topo(params);
  std::vector<std::unique_ptr<EktaPeer>> peers;
  std::vector<std::unique_ptr<ip::Node>> forwarders;

  const int total_downloaders =
      params.stationary_downloaders + params.mobile_downloaders;
  int completed = 0;
  std::vector<double> completion_times;

  for (int i = 0; i < total_downloaders; ++i) {
    sim::MobilityModel* mob =
        i < params.stationary_downloaders
            ? topo.stationary(params, i)
            : topo.mobile(params);
    bool is_seed = i == params.stationary_downloaders;
    auto peer = std::make_unique<EktaPeer>(
        topo.sched, *topo.medium, mob, topo.rng.fork(), EktaPeer::Options{},
        topo.collection, is_seed);
    if (!is_seed) {
      peer->set_completion_callback(
          [&completed, &completion_times](TimePoint t) {
            ++completed;
            completion_times.push_back(t.to_seconds());
          });
    }
    peers.push_back(std::move(peer));
  }
  // Bootstrap member lists (Ekta nodes know the swarm membership).
  for (auto& a : peers) {
    for (auto& b : peers) {
      a->add_member(b->address());
    }
  }
  for (auto& p : peers) p->start();

  const int forwarder_count = params.pure_forwarders + params.dapes_intermediates;
  for (int i = 0; i < forwarder_count; ++i) {
    auto node = std::make_unique<ip::Node>(topo.sched, *topo.medium,
                                           topo.mobile(params),
                                           topo.rng.fork());
    node->set_routing(std::make_unique<manet::Dsr>());
    forwarders.push_back(std::move(node));
  }

  return run_to_completion(
      params, topo, peers, forwarders,
      [](const EktaPeer& p) { return p.state_bytes(); },
      total_downloaders - 1, &completed, &completion_times);
}

std::vector<TrialResult> run_bithoc_trials(ScenarioParams params, int trials) {
  std::vector<TrialResult> results;
  for (int t = 0; t < trials; ++t) {
    params.seed = params.seed * 6364136223846793005ULL + 1442695040888963407ULL;
    results.push_back(run_bithoc_trial(params));
  }
  return results;
}

std::vector<TrialResult> run_ekta_trials(ScenarioParams params, int trials) {
  std::vector<TrialResult> results;
  for (int t = 0; t < trials; ++t) {
    params.seed = params.seed * 6364136223846793005ULL + 1442695040888963407ULL;
    results.push_back(run_ekta_trial(params));
  }
  return results;
}

}  // namespace dapes::harness
