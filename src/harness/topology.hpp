/// @file
/// Shared trial scaffolding for the protocol drivers.
///
/// Every driver (DAPES, Bithoc, Ekta, the real-world scripts) builds the
/// same world: a seeded Rng, a Scheduler, a Medium, one signed synthetic
/// file collection, and a set of mobility models. This file owns that
/// construction plus the common run-to-completion loop so the drivers only
/// differ in the nodes they place on top.
///
/// RNG draw order matters: Topology forks the medium's stream first, then
/// generates the producer key, then builds the collection, exactly as the
/// pre-refactor per-protocol setups did, so trial results for a given seed
/// are unchanged.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "crypto/keychain.hpp"
#include "crypto/verify_cache.hpp"
#include "harness/scenario.hpp"
#include "ndn/verify_prewarm.hpp"
#include "sim/medium.hpp"
#include "sim/mobility.hpp"
#include "sim/scheduler.hpp"
#include "trace/trace.hpp"

namespace dapes::harness {

/// The world every trial shares: scheduler, medium, collection, mobility.
struct Topology {
  common::Rng rng;        ///< the trial's root RNG stream
  sim::Scheduler sched;   ///< the trial's event loop
  std::unique_ptr<sim::Medium> medium;  ///< the shared broadcast medium
  crypto::KeyChain keys;               ///< trust anchors for all peers
  crypto::PrivateKey producer_key;     ///< signs the shared collection
  std::shared_ptr<core::Collection> collection;  ///< the shared workload
  /// Owned mobility models, one per created node.
  std::vector<std::unique_ptr<sim::MobilityModel>> mobility;
  /// Per-trial verify-result cache (null when params.verify_cache is
  /// off). One instance per trial so `--jobs` fan-out never shares
  /// cache state across concurrent trials.
  std::unique_ptr<crypto::VerifyCache> verify_cache;
  /// Delivery prewarm that fills verify_cache once per Data broadcast.
  /// The medium holds a raw pointer to it (set_prewarm) but only invokes
  /// it while delivering frames, which no destructor does, so the member
  /// order relative to medium is immaterial.
  std::unique_ptr<ndn::DataVerifyPrewarm> verify_prewarm;
  /// Thread-local cache installation for the trial (coordinator) thread;
  /// fan-out lanes get theirs from the prewarm's worker hooks. Declared
  /// after verify_cache so it is torn down first.
  std::unique_ptr<crypto::VerifyCacheScope> verify_scope;
  /// The trial's event tracer, built from params.trace when enabled
  /// (null otherwise) and installed into this thread for the topology's
  /// lifetime via trace_scope below.
  std::shared_ptr<trace::Tracer> tracer;
  /// Thread-local tracer installation; declared after tracer so it is
  /// torn down first.
  std::unique_ptr<trace::TrialScope> trace_scope;

  /// Seeds the rng with `seed`, builds the medium from the radio params,
  /// creates the signed synthetic collection named `collection_name`,
  /// and — when params.trace is enabled — builds and installs the trial
  /// tracer.
  Topology(const ScenarioParams& params, uint64_t seed,
           const std::string& collection_name, const std::string& key_name,
           const std::string& file_prefix);

  /// Flushes the tracer if run_to_completion has not already (errors are
  /// swallowed: destructors must not throw).
  ~Topology();

  /// Mobility for one mobile node, per params.mobility: random direction
  /// (the Fig. 7 default), random waypoint, or group (every group_size-th
  /// call starts a new convoy anchor the following members share).
  /// Started at a uniform position (consumes rng draws; call in node
  /// order — the random-direction path draws exactly what the
  /// pre-grid code drew, so paper-scale trials are unchanged).
  sim::MobilityModel* mobile(const ScenarioParams& params);

  /// Stationary repository position: a regular grid inset from the field
  /// corners, cycling through the four spots.
  sim::MobilityModel* stationary(const ScenarioParams& params, int index);

  /// Stationary node at an explicit position (real-world scripts).
  sim::MobilityModel* fixed(sim::Vec2 pos);

  /// Scripted waypoint mobility (real-world scripts).
  sim::MobilityModel* waypoints(std::vector<sim::WaypointMobility::Waypoint> pts);

 private:
  /// Shared convoy anchors for MobilityKind::kGroup, one per group_size
  /// mobile() calls.
  std::shared_ptr<sim::MobilityModel> group_anchor_;
  int group_fill_ = 0;
};

/// Completion bookkeeping shared by all drivers.
///
/// `record` is the one piece of cross-node shared state the completion
/// callbacks mutate, and under the phase-parallel trial engine two
/// downloaders can finish inside the same fan-out phase on different
/// lanes — so it takes a mutex. Every consumer (count, mean, max) is
/// order-independent, so lane timing cannot leak into results. The
/// readers run on the coordinator between events (the executor's phase
/// join orders them after every `record`), so they stay lock-free.
struct CompletionTracker {
  int expected = 0;           ///< downloaders that should finish
  int completed = 0;          ///< downloaders that have finished
  std::vector<double> times;  ///< completion times, seconds

  /// Record one downloader finishing at time @p t. Thread-safe.
  void record(double t) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++completed;
    times.push_back(t);
  }

  /// Mean completion time with never-finished downloaders counted at the
  /// simulation limit (the Fig. 9/10 metric).
  double mean_time(double limit_s) const;

  /// Latest completion, or the limit if anyone never finished (Table I).
  double last_time(double limit_s) const;

  /// True once every expected downloader finished.
  bool done() const { return completed >= expected; }

 private:
  std::mutex mutex_;  ///< serializes `record` across fan-out lanes
};

/// Apply the hetero.radio mixed-range radios to an already-populated
/// medium: an evenly spread `params.hetero_range_fraction` of the
/// registered nodes get their radio range scaled by
/// `params.hetero_range_factor`. Deterministic — selection is by node
/// index arithmetic, no RNG draws — so enabling it cannot perturb any
/// other stream, and a fraction of 0 is an exact no-op. Call after every
/// node is registered and before traffic starts.
void apply_hetero_radios(const ScenarioParams& params, sim::Medium& medium);

/// Per-sample state snapshot a driver reports back to the run loop.
struct StateSample {
  size_t state_bytes = 0;      ///< total modeled protocol state, bytes
  size_t knowledge_bytes = 0;  ///< availability-knowledge subset, bytes
};

/// Drive the scheduler in 5 s chunks until the limit or full completion,
/// sampling protocol state via `sample` each chunk. Fills every TrialResult
/// field the topology can observe (timing, completion, medium stats, state
/// peaks, events, modeled system-load proxies); driver-specific metrics
/// (e.g. forward_accuracy) are layered on by the caller.
TrialResult run_to_completion(const ScenarioParams& params, Topology& topo,
                              CompletionTracker& tracker,
                              const std::function<StateSample()>& sample);

}  // namespace dapes::harness
