#include "harness/scale.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <vector>

#include "harness/topology.hpp"
#include "sim/radio.hpp"

namespace dapes::harness {

void apply_scale(ScenarioParams& p, double total_nodes) {
  const int n = std::max(4, static_cast<int>(std::llround(total_nodes)));

  // Fig. 7 proportions (4:20:10:10 out of 44), remainder into the mobile
  // downloaders so the classes always sum to exactly n.
  const int stationary = std::max(1, n * 4 / kFig7Nodes);
  const int forwarders = n * 10 / kFig7Nodes;
  const int intermediates = n * 10 / kFig7Nodes;
  const int mobile =
      std::max(2, n - stationary - forwarders - intermediates);

  p.stationary_downloaders = stationary;
  p.mobile_downloaders = mobile;
  p.pure_forwarders = forwarders;
  p.dapes_intermediates = intermediates;

  // Constant density: area grows linearly with n.
  p.field_m = 300.0 * std::sqrt(static_cast<double>(n) / kFig7Nodes);
}

TrialResult run_scale_trial(const ScenarioParams& params) {
  // The family runs the full DAPES stack; everything scale-specific
  // (populations, field, mobility kind, medium implementation) arrives
  // through the params.
  return run_dapes_trial(params);
}

namespace {

// scale.medium offered load: every node broadcasts a 256-byte frame on
// average every second (the discovery-beacon cadence), and a 20 Hz
// strategy tick recomputes every node's neighborhood density — the
// local-neighborhood RPF / relay-selection pattern, which consults the
// neighbor set on every forwarding decision (20 Hz is conservative next
// to per-Interest querying). One tick sweeps all nodes in a single
// event, amortizing scheduler overhead the way the protocol layer does.
constexpr size_t kStressFrameBytes = 256;
constexpr double kStressMeanIntervalS = 1.0;
constexpr double kStressSweepIntervalS = 0.05;

}  // namespace

TrialResult run_medium_stress_trial(const ScenarioParams& params) {
  Topology topo(params, params.seed, "/scale-medium", "/scale/medium-key",
                "f-");
  const int n = params.stationary_downloaders + params.mobile_downloaders +
                params.pure_forwarders + params.dapes_intermediates;

  uint64_t received = 0;
  auto on_receive = [&received](const sim::FramePtr&, sim::NodeId) {
    ++received;
  };
  for (int i = 0; i < params.stationary_downloaders; ++i) {
    topo.medium->add_node(topo.stationary(params, i), on_receive);
  }
  for (int i = params.stationary_downloaders; i < n; ++i) {
    topo.medium->add_node(topo.mobile(params), on_receive);
  }

  apply_hetero_radios(params, *topo.medium);

  std::vector<std::unique_ptr<sim::Radio>> radios;
  radios.reserve(n);
  for (int i = 0; i < n; ++i) {
    radios.push_back(std::make_unique<sim::Radio>(
        topo.sched, *topo.medium, static_cast<sim::NodeId>(i),
        topo.rng.fork()));
  }

  // One shared payload buffer: the medium never looks inside it.
  const common::BufferSlice payload{common::Bytes(kStressFrameBytes, 0x5a)};

  // Pre-schedule all traffic and scans from per-node streams drawn in
  // node order. Nothing downstream of a delivery feeds back into these
  // choices, so the grid and brute-force runs consume every RNG stream
  // identically and their deterministic outputs match bit for bit.
  const sim::TimePoint limit{static_cast<int64_t>(params.sim_limit_s * 1e6)};
  uint64_t degree_samples = 0;
  for (int i = 0; i < n; ++i) {
    common::Rng traffic = topo.rng.fork();
    sim::Radio* radio = radios[static_cast<size_t>(i)].get();
    double at_s = traffic.exponential(kStressMeanIntervalS);
    while (at_s < params.sim_limit_s) {
      topo.sched.schedule_at(
          sim::TimePoint{static_cast<int64_t>(at_s * 1e6)}, [radio, payload] {
            auto f = std::make_shared<sim::Frame>();
            f->sender = radio->node();
            f->payload = payload;
            f->kind = "stress";
            radio->send(std::move(f));
          });
      at_s += traffic.exponential(kStressMeanIntervalS);
    }
  }
  for (double sweep_s = kStressSweepIntervalS; sweep_s < params.sim_limit_s;
       sweep_s += kStressSweepIntervalS) {
    topo.sched.schedule_at(
        sim::TimePoint{static_cast<int64_t>(sweep_s * 1e6)},
        [&degree_samples, &topo, n] {
          for (int i = 0; i < n; ++i) {
            degree_samples +=
                topo.medium->degree_of(static_cast<sim::NodeId>(i));
          }
        });
  }

  TrialResult result;
  if (topo.tracer) {
    for (sim::NodeId node = 0; node < topo.medium->node_count(); ++node) {
      topo.tracer->ensure_node(node);
    }
  }
  const auto wall_start = std::chrono::steady_clock::now();
  topo.sched.run_until(limit);
  if (topo.tracer) topo.tracer->flush();
  result.wall_clock_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();

  result.completion_fraction = 1.0;
  result.transmissions = topo.medium->stats().transmissions;
  result.tx_by_kind.insert(topo.medium->stats().tx_by_kind.begin(),
                           topo.medium->stats().tx_by_kind.end());
  result.collided_frames = topo.medium->stats().collided_frames;
  result.events_executed = topo.sched.executed();
  // Repurposed slot: summed neighbor-degree samples, which keeps the
  // strategy-tick sweeps observable output rather than dead code.
  result.peak_knowledge_bytes = degree_samples;
  result.total_state_bytes = received;
  return result;
}

}  // namespace dapes::harness
