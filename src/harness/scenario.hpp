/// @file
/// Experiment scenarios.
///
/// Reproduces the paper's simulation setup (§VI-B, Fig. 7): a 300 m x 300 m
/// field with 4 stationary repositories and 40 mobile nodes (random
/// direction, 2-10 m/s). 24 nodes (4 stationary + 20 mobile) download one
/// file collection; 10 mobile nodes are pure forwarders and 10 are
/// intermediate DAPES nodes. One designated downloader starts with the
/// full collection (the producer).
///
/// Parameters default to the repository's scaled configuration: packet
/// counts and the radio data rate are both divided by kDefaultScale
/// relative to the paper, which preserves the airtime-to-contact-time
/// ratio that shapes every figure (see EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dapes/peer.hpp"
#include "sim/channel.hpp"
#include "sim/faults.hpp"
#include "trace/record.hpp"

namespace dapes::harness {

/// Scale divisor applied to collection size and radio rate.
inline constexpr size_t kDefaultScale = 8;

/// Mobility model applied to the mobile nodes of a scenario. The paper's
/// Fig. 7 setup uses random direction; the scale.field family also runs
/// random waypoint (with pause) and reference-point group mobility
/// (convoys of group_size nodes sharing an anchor).
enum class MobilityKind {
  kRandomDirection,  ///< paper Fig. 7: random direction, 2-10 m/s
  kRandomWaypoint,   ///< random waypoint with pause
  kGroup,            ///< reference-point group mobility (convoys)
};

/// Every knob of a simulated trial. Trials are a pure function of this
/// struct (including the seed), which is what makes sweeps replayable.
struct ScenarioParams {
  double field_m = 300.0;          ///< square field side (paper Fig. 7)
  int stationary_downloaders = 4;  ///< repositories (Fig. 7 population)
  int mobile_downloaders = 20;     ///< mobile nodes that download
  int pure_forwarders = 10;        ///< §V-A NDN-only relays
  int dapes_intermediates = 10;    ///< §V-B DAPES-aware relays

  /// Mobility model of the mobile nodes.
  MobilityKind mobility = MobilityKind::kRandomDirection;
  double waypoint_pause_s = 2.0;  ///< RandomWaypoint pause at each target
  double group_radius_m = 30.0;   ///< max member offset from the group anchor
  int group_size = 5;             ///< members per shared anchor

  double wifi_range_m = 60.0;     ///< radio range (paper: 802.11b)
  /// Radio data rate (paper: 11 Mb/s, divided by the default scale).
  double data_rate_bps = 11e6 / kDefaultScale;
  double loss_rate = 0.10;        ///< uniform frame loss (paper: 10%)

  // --- channel / PHY model (see DESIGN.md "Channel & PHY models") ---
  /// Channel model + parameters; defaults to the paper's unit-disk
  /// reference, under which every sweep is bit-identical to the
  /// pre-channel-layer tree. `link_seed` is derived per trial by the
  /// Topology when left at 0.
  sim::ChannelParams channel;
  /// hetero.radio: fraction of nodes (evenly spread across the
  /// population classes, deterministically — no RNG draws) whose radio
  /// range is scaled by `hetero_range_factor`. 0 disables; negative
  /// means "unset" (the hetero.radio driver then defaults to 0.5, so an
  /// explicit 0 remains a usable baseline on a fraction axis).
  double hetero_range_fraction = -1.0;
  /// Range multiplier applied to the selected nodes (e.g. 0.5 models
  /// half-range IoT-class radios next to full WiFi).
  double hetero_range_factor = 0.5;

  size_t files = 10;  ///< files in the collection (paper default: 10)
  /// File size (paper: 1 MB, divided by the default scale).
  size_t file_size_bytes = 1024 * 1024 / kDefaultScale;
  size_t packet_size = 1024;  ///< payload bytes per packet
  /// Integrity encoding of the collection metadata (§IV-C).
  core::MetadataFormat metadata_format = core::MetadataFormat::kPacketDigest;

  /// Peer configuration applied to every downloader.
  core::PeerOptions peer{};

  /// Open-membership fault injection (churn.* scenarios): Poisson
  /// leave/join churn, crash+restart outages, flash crowds, seeder
  /// departure, adversarial bitmap liars. All defaults off — the
  /// fixed-population paper sweeps take the unwired byte-identical path
  /// (see DESIGN.md "Fault injection & open membership").
  sim::FaultParams faults;

  double sim_limit_s = 3000.0;  ///< simulated-time cap per trial
  uint64_t seed = 1;            ///< trial RNG seed
  /// Run the medium's retained all-pairs reference instead of the
  /// spatial grid (equivalence tests, bench_scale's speedup baseline).
  bool brute_force_medium = false;
  /// Lanes for the medium's phase-parallel delivery engine inside this
  /// trial (`--trial-threads`). 0 (default) keeps the plain serial event
  /// loop; >= 1 enables the engine. Deterministic metrics are
  /// bit-identical for every value, so it composes freely with the
  /// TrialRunner's `--jobs` fan-out (total threads ~= jobs x
  /// trial_threads; see EXPERIMENTS.md). Requires the grid medium
  /// (incompatible with brute_force_medium).
  int trial_threads = 0;
  /// Per-trial verify-result cache + delivery prewarm (DESIGN.md "Crypto
  /// engine & verify cache"): each delivered Data frame is hashed and
  /// MAC-checked once per broadcast, and every receiver serves its
  /// verify from the cache. The cache is exact, so all trial metrics are
  /// identical on or off; `false` (`--no-verify-cache`) retains the
  /// per-receiver scalar verify path as the reference, which
  /// test_verify_cache diffs against.
  bool verify_cache = true;
  /// Structured event tracing (`--trace <sink>[:<path>]`). Disabled by
  /// default (empty sink): no records, no buffers, and the instrumented
  /// hot paths pay one thread-local null check per potential event.
  /// When enabled, the merged trace is bit-identical for any `--jobs` x
  /// `trial_threads` combination; multi-trial runners suffix the output
  /// path per trial/cell so concurrent trials never share a file.
  trace::TraceConfig trace;
};

/// Outcome of one simulated trial.
struct TrialResult {
  /// Mean time for the downloaders to obtain the full collection
  /// (downloaders that never finish count as sim_limit_s).
  double download_time_s = 0.0;
  /// Fraction of downloaders that completed within the limit.
  double completion_fraction = 0.0;
  /// Total frames put on the air by all nodes.
  uint64_t transmissions = 0;
  /// Frame counts by kind ("ndn-interest", "ndn-data", ...).
  std::unordered_map<std::string, uint64_t> tx_by_kind;
  /// Collisions observed at the medium.
  uint64_t collided_frames = 0;
  /// Peak modeled protocol state across nodes, bytes (Table I).
  size_t peak_state_bytes = 0;
  /// Sum of modeled protocol state across nodes, bytes.
  size_t total_state_bytes = 0;
  /// Scheduler events executed (system-load proxy, see EXPERIMENTS.md).
  uint64_t events_executed = 0;
  /// Real (wall-clock) seconds the trial's run loop took. The only
  /// non-deterministic TrialResult field; reported by bench_scale,
  /// excluded from determinism comparisons.
  double wall_clock_s = 0.0;
  /// Fraction of knowledge-forwarded Interests that brought data back —
  /// reported by the paper as 83% (§VI-D).
  double forward_accuracy = 0.0;
  /// Peak "what is available around me" bookkeeping across nodes, bytes
  /// (bitmaps, RPF state, overheard knowledge — Table I's growing column).
  size_t peak_knowledge_bytes = 0;
  // Modeled system-load proxies derived from events, frames and state;
  // EXPERIMENTS.md documents the formulas (Table I).
  uint64_t context_switches = 0;
  uint64_t system_calls = 0;
  uint64_t page_faults = 0;
};

/// Run one DAPES trial of the Fig. 7 scenario.
TrialResult run_dapes_trial(const ScenarioParams& params);

/// Same topology and workload, but peers run Bithoc (DSDV + scoped HELLO
/// flooding + TCP) — the paper's first IP baseline (Fig. 10).
TrialResult run_bithoc_trial(const ScenarioParams& params);

/// Same topology and workload, but peers run Ekta (DSR + DHT + UDP) —
/// the paper's second IP baseline (Fig. 10).
TrialResult run_ekta_trial(const ScenarioParams& params);

/// Multi-trial convenience wrapper over the experiment engine (driver
/// registry + TrialRunner, see driver.hpp / trial_runner.hpp). Trial i
/// runs with seed common::derive_seed(params.seed, i) on a single thread;
/// use TrialRunner directly to fan trials out over a thread pool.
std::vector<TrialResult> run_dapes_trials(ScenarioParams params, int trials);
/// Bithoc counterpart of run_dapes_trials.
std::vector<TrialResult> run_bithoc_trials(ScenarioParams params, int trials);
/// Ekta counterpart of run_dapes_trials.
std::vector<TrialResult> run_ekta_trials(ScenarioParams params, int trials);

}  // namespace dapes::harness
