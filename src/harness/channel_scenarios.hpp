/// @file
/// Channel-realism scenario families: the Fig. 7 DAPES world re-run under
/// non-ideal PHY conditions the paper's unit-disk channel cannot express.
///
/// Both families run the full DAPES stack (`run_dapes_trial`) — they are
/// parameter presets, not new worlds — so every TrialResult metric and
/// every sweep axis (WiFi range, node count via `apply_scale`, ...)
/// composes with them. `bench_channel` is the canonical sweep.
#pragma once

#include "harness/scenario.hpp"

namespace dapes::harness {

/// One loss.sweep trial: the DAPES stack under the log-distance channel
/// (path-loss exponent / shadowing sigma / reception-curve softness come
/// from `params.channel`). A params.channel still at the "unit-disk"
/// default is upgraded to "log-distance" so the family is meaningful even
/// with no explicit channel configuration. Registered under
/// ProtocolNames::kLossSweep.
TrialResult run_loss_sweep_trial(const ScenarioParams& params);

/// One hetero.radio trial: mixed-range radios — an evenly spread
/// `params.hetero_range_fraction` of the nodes run radios scaled by
/// `params.hetero_range_factor`. A negative (unset) fraction defaults to
/// 0.5 — half the field on half-range radios; an explicit 0 is honored
/// as the all-full-range baseline. Composes with any
/// channel model; under log-distance the short radios also transmit
/// proportionally less power (the nominal range is the power proxy).
/// Registered under ProtocolNames::kHeteroRadio.
TrialResult run_hetero_radio_trial(const ScenarioParams& params);

}  // namespace dapes::harness
