#include "harness/topology.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numbers>

namespace dapes::harness {

using core::Collection;
using sim::Duration;
using sim::TimePoint;
using sim::Vec2;

Topology::Topology(const ScenarioParams& params, uint64_t seed,
                   const std::string& collection_name,
                   const std::string& key_name,
                   const std::string& file_prefix)
    : rng(seed) {
  sim::Medium::Params mp;
  mp.range_m = params.wifi_range_m;
  mp.data_rate_bps = params.data_rate_bps;
  mp.loss_rate = params.loss_rate;
  mp.brute_force = params.brute_force_medium;
  mp.trial_threads = params.trial_threads;
  mp.channel = params.channel;
  if (mp.channel.link_seed == 0) {
    // Per-trial stream base for the keyed per-link reception draws of the
    // non-reference channel models (the unit-disk default never draws
    // from it). Derived from the trial seed with a fixed tag so it is
    // independent of execution order, like every other stream.
    mp.channel.link_seed = common::derive_seed(seed, 0x6368616eULL);
    if (mp.channel.link_seed == 0) {
      // SplitMix64 can (one seed in 2^64) output 0 — and 0 is exactly
      // the "shared across every trial" foot-gun this derivation exists
      // to close — so step the tag once more. Still a pure function of
      // the trial seed.
      mp.channel.link_seed = common::derive_seed(seed, 0x6368616fULL);
    }
  }
  medium = std::make_unique<sim::Medium>(sched, mp, rng.fork());

  producer_key = keys.generate_key(key_name, params.seed);
  std::vector<Collection::SyntheticFileInput> files;
  for (size_t i = 0; i < params.files; ++i) {
    files.push_back({file_prefix + std::to_string(i), params.file_size_bytes});
  }
  collection = Collection::create_synthetic(
      ndn::Name(collection_name), std::move(files), params.packet_size,
      params.metadata_format, producer_key);

  if (params.verify_cache) {
    // One cache per trial, installed three ways: into this (the trial's
    // coordinator) thread for the serial receive path, into the medium's
    // delivery prewarm so every Data broadcast is hashed/MAC-checked
    // once per frame, and — via the prewarm's worker hooks — into the
    // phase-parallel fan-out lanes. The cache is exact; results are
    // identical with the knob off (test_verify_cache diffs them).
    verify_cache = std::make_unique<crypto::VerifyCache>();
    verify_prewarm =
        std::make_unique<ndn::DataVerifyPrewarm>(*verify_cache, keys);
    verify_scope =
        std::make_unique<crypto::VerifyCacheScope>(verify_cache.get());
    medium->set_prewarm(verify_prewarm.get());
  }

  if (params.trace.enabled()) {
    // Installed before any node or route exists so setup-time table
    // events are captured too. The clock reads this trial's scheduler —
    // trace/ has no sim/ dependency, so time is injected.
    sim::Scheduler* clock_sched = &sched;
    tracer = std::make_shared<trace::Tracer>(
        params.trace, [clock_sched] { return clock_sched->now().us; });
    trace_scope = std::make_unique<trace::TrialScope>(tracer.get());
  }
}

Topology::~Topology() {
  if (tracer) {
    try {
      tracer->flush();
    } catch (...) {
      // Destructor fallback only; run_to_completion flushes (and
      // propagates sink errors) on the normal path.
    }
  }
}

sim::MobilityModel* Topology::mobile(const ScenarioParams& params) {
  const sim::Field field{params.field_m, params.field_m};
  switch (params.mobility) {
    case MobilityKind::kRandomDirection: {
      sim::RandomDirectionMobility::Params mp;
      mp.field = field;
      Vec2 start{rng.uniform(0.0, params.field_m),
                 rng.uniform(0.0, params.field_m)};
      mobility.push_back(std::make_unique<sim::RandomDirectionMobility>(
          start, mp, rng.fork()));
      break;
    }
    case MobilityKind::kRandomWaypoint: {
      sim::RandomWaypointMobility::Params mp;
      mp.field = field;
      mp.pause = sim::Duration::seconds(params.waypoint_pause_s);
      Vec2 start{rng.uniform(0.0, params.field_m),
                 rng.uniform(0.0, params.field_m)};
      mobility.push_back(std::make_unique<sim::RandomWaypointMobility>(
          start, mp, rng.fork()));
      break;
    }
    case MobilityKind::kGroup: {
      const int group_size = std::max(1, params.group_size);
      if (group_fill_ % group_size == 0) {
        sim::RandomWaypointMobility::Params mp;
        mp.field = field;
        mp.pause = sim::Duration::seconds(params.waypoint_pause_s);
        Vec2 start{rng.uniform(0.0, params.field_m),
                   rng.uniform(0.0, params.field_m)};
        group_anchor_ = std::make_shared<sim::RandomWaypointMobility>(
            start, mp, rng.fork());
      }
      ++group_fill_;
      const double angle = rng.uniform(0.0, 2.0 * std::numbers::pi);
      const double radius = rng.uniform(0.0, params.group_radius_m);
      Vec2 offset{radius * std::cos(angle), radius * std::sin(angle)};
      mobility.push_back(
          std::make_unique<sim::GroupMobility>(group_anchor_, offset, field));
      break;
    }
  }
  return mobility.back().get();
}

sim::MobilityModel* Topology::stationary(const ScenarioParams& params,
                                         int index) {
  const double inset = params.field_m / 4.0;
  const Vec2 positions[4] = {
      {inset, inset},
      {params.field_m - inset, inset},
      {inset, params.field_m - inset},
      {params.field_m - inset, params.field_m - inset}};
  mobility.push_back(
      std::make_unique<sim::StationaryMobility>(positions[index % 4]));
  return mobility.back().get();
}

sim::MobilityModel* Topology::fixed(Vec2 pos) {
  mobility.push_back(std::make_unique<sim::StationaryMobility>(pos));
  return mobility.back().get();
}

sim::MobilityModel* Topology::waypoints(
    std::vector<sim::WaypointMobility::Waypoint> pts) {
  mobility.push_back(std::make_unique<sim::WaypointMobility>(std::move(pts)));
  return mobility.back().get();
}

void apply_hetero_radios(const ScenarioParams& params, sim::Medium& medium) {
  const double fraction =
      std::min(1.0, std::max(0.0, params.hetero_range_fraction));
  if (fraction <= 0.0) return;
  const size_t n = medium.node_count();
  const auto scaled = static_cast<size_t>(std::llround(fraction * n));
  if (scaled == 0) return;
  // Even deterministic spread: node i is selected when the rounded
  // cumulative quota increments at i, which picks exactly `scaled` nodes
  // across the whole id range (and therefore across the population
  // classes, which are registered in contiguous id blocks).
  for (size_t i = 0; i < n; ++i) {
    if ((i + 1) * scaled / n != i * scaled / n) {
      medium.set_node_range_factor(static_cast<sim::NodeId>(i),
                                   params.hetero_range_factor);
    }
  }
}

double CompletionTracker::mean_time(double limit_s) const {
  // Under the phase-parallel engine the order of `times` depends on lane
  // timing; FP addition is not associative, so sum in sorted order to
  // keep the metric bit-identical across --trial-threads values.
  std::vector<double> sorted = times;
  std::sort(sorted.begin(), sorted.end());
  double sum = 0.0;
  for (double t : sorted) sum += t;
  sum += static_cast<double>(expected - completed) * limit_s;
  return sum / std::max(1, expected);
}

double CompletionTracker::last_time(double limit_s) const {
  if (completed < expected) return limit_s;
  double last = 0.0;
  for (double t : times) last = std::max(last, t);
  return last;
}

TrialResult run_to_completion(const ScenarioParams& params, Topology& topo,
                              CompletionTracker& tracker,
                              const std::function<StateSample()>& sample) {
  TrialResult result;
  if (topo.tracer) {
    // Every node is registered by now and no phase can be open: size the
    // per-node trace slots once, so workers never see the table grow.
    for (sim::NodeId n = 0; n < topo.medium->node_count(); ++n) {
      topo.tracer->ensure_node(n);
    }
  }
  const auto wall_start = std::chrono::steady_clock::now();
  const TimePoint limit{static_cast<int64_t>(params.sim_limit_s * 1e6)};
  const Duration chunk = Duration::seconds(5.0);
  TimePoint cursor = TimePoint::zero();
  while (cursor < limit && !tracker.done()) {
    cursor = std::min(TimePoint{cursor.us + chunk.us}, limit);
    topo.sched.run_until(cursor);
    StateSample s = sample();
    result.peak_state_bytes = std::max(result.peak_state_bytes, s.state_bytes);
    result.total_state_bytes = s.state_bytes;
    result.peak_knowledge_bytes =
        std::max(result.peak_knowledge_bytes, s.knowledge_bytes);
  }

  result.download_time_s = tracker.mean_time(params.sim_limit_s);
  result.completion_fraction =
      tracker.expected <= 0
          ? 1.0
          : static_cast<double>(tracker.completed) / tracker.expected;
  result.transmissions = topo.medium->stats().transmissions;
  result.tx_by_kind.insert(topo.medium->stats().tx_by_kind.begin(),
                           topo.medium->stats().tx_by_kind.end());
  result.collided_frames = topo.medium->stats().collided_frames;
  result.events_executed = topo.sched.executed();
  result.wall_clock_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();

  // Modeled system-load proxies (Table I). Coefficients are arbitrary but
  // fixed; the *shape* across scenarios — driven by events, frames and
  // state — is what reproduces the table. See EXPERIMENTS.md.
  const uint64_t frames = result.transmissions;
  const uint64_t events = result.events_executed;
  result.system_calls = 3 * frames + events / 2;
  result.context_switches = frames + events / 8;
  result.page_faults =
      static_cast<uint64_t>(result.peak_state_bytes / 4096) + frames / 64;

  // Flush here (not only in ~Topology) so sink errors propagate to the
  // driver instead of being swallowed by a destructor.
  if (topo.tracer) topo.tracer->flush();
  return result;
}

}  // namespace dapes::harness
