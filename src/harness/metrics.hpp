/// @file
/// Metric aggregation and figure/table printing.
///
/// The paper reports the 90th percentile over ten trials; benches default
/// to fewer trials for turnaround but use the same aggregation. Output is
/// a plain aligned text table, one row per x-value, one column per series —
/// the same rows/series the paper's figures plot.
#pragma once

#include <string>
#include <vector>

#include "harness/scenario.hpp"

namespace dapes::harness {

/// Interpolated percentile (p in [0,100]) of a sample vector.
double percentile(std::vector<double> values, double p);

/// One curve of a figure: label + y value per x.
struct Series {
  std::string label;      ///< legend label
  std::vector<double> y;  ///< one y value per x
};

/// Print "<title>" then an aligned table: first column x, then one column
/// per series.
void print_figure(const std::string& title, const std::string& x_label,
                  const std::vector<double>& xs,
                  const std::vector<Series>& series,
                  const std::string& y_unit = "");

/// Aggregate a metric across trials at the paper's percentile (90th).
double aggregate(const std::vector<TrialResult>& trials,
                 double (*metric)(const TrialResult&), double pct = 90.0);

/// Mean download time of a trial, in seconds.
double metric_download_time(const TrialResult& r);
/// Frames transmitted during a trial, in thousands.
double metric_transmissions_k(const TrialResult& r);

}  // namespace dapes::harness
