/// @file
/// Protocol drivers: the pluggable unit of the experiment engine.
///
/// A ProtocolDriver runs one simulated trial of one protocol stack on the
/// shared topology. Drivers are registered under well-known string names
/// (Envoy-style: "dapes", "bithoc", "ekta", "realworld.carrier", ...) so
/// benches, sweeps and examples select protocols by name instead of linking
/// against per-protocol entry points. New protocols plug in by registering
/// a driver; nothing in the engine enumerates protocols.
///
/// Drivers must be stateless with respect to trials: run_trial is const and
/// may be called concurrently from many threads (TrialRunner), so all trial
/// state must live inside the call.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "harness/scenario.hpp"

namespace dapes::harness {

/// One pluggable protocol stack. run_trial must be thread-safe: every
/// trial builds its own Scheduler/Medium/Rng world from `params`.
class ProtocolDriver {
 public:
  virtual ~ProtocolDriver() = default;

  /// Well-known registry name ("dapes", "bithoc", ...).
  virtual const std::string& name() const = 0;

  /// Run one trial, fully determined by `params` (including params.seed).
  virtual TrialResult run_trial(const ScenarioParams& params) const = 0;
};

/// Well-known driver names. New drivers should follow the dotted-suffix
/// convention for families ("realworld.carrier").
struct ProtocolNames {
  static constexpr const char* kDapes = "dapes";    ///< full DAPES stack
  static constexpr const char* kBithoc = "bithoc";  ///< BitHoc baseline
  static constexpr const char* kEkta = "ekta";      ///< EKTA baseline
  /// Fig. 10 data mule carrying between clusters.
  static constexpr const char* kRealWorldCarrier = "realworld.carrier";
  /// Fig. 10 stationary repository variant.
  static constexpr const char* kRealWorldRepository = "realworld.repository";
  /// Fig. 10 moving-peers variant.
  static constexpr const char* kRealWorldMoving = "realworld.moving";
  /// Scale family: full stack at growing node counts.
  static constexpr const char* kScaleField = "scale.field";
  /// Scale family: medium-only stress (no NDN stack).
  static constexpr const char* kScaleMedium = "scale.medium";
  /// Channel family: log-distance loss sweep.
  static constexpr const char* kLossSweep = "loss.sweep";
  /// Channel family: mixed-range radios.
  static constexpr const char* kHeteroRadio = "hetero.radio";
  /// Open-membership family: Poisson leave/join churn with crashes.
  static constexpr const char* kChurnSwarm = "churn.swarm";
  /// Open-membership family: flash-crowd arrival wave.
  static constexpr const char* kChurnFlash = "churn.flash";
};

/// String-keyed driver registry. The built-in drivers above are registered
/// on first use; extensions may add their own before running experiments.
/// Registration is not synchronized against concurrent lookups — register
/// everything up front, before fanning trials out.
class ProtocolDriverRegistry {
 public:
  /// The process-wide registry.
  static ProtocolDriverRegistry& instance();

  /// Register a driver under its name(). Throws std::invalid_argument on a
  /// duplicate name.
  void add(std::shared_ptr<const ProtocolDriver> driver);

  /// Convenience: register a stateless trial function under `name`.
  void add(const std::string& name,
           std::function<TrialResult(const ScenarioParams&)> run);

  /// Lookup; throws std::out_of_range naming the missing driver and
  /// listing the registered ones.
  const ProtocolDriver& get(const std::string& name) const;

  /// Lookup; nullptr when absent.
  const ProtocolDriver* find(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

 private:
  ProtocolDriverRegistry();

  std::vector<std::shared_ptr<const ProtocolDriver>> drivers_;
};

/// The engine's single-trial entry point: runs `driver` once with `params`.
TrialResult run_trial(const ProtocolDriver& driver,
                      const ScenarioParams& params);

/// Name-based convenience (registry lookup + run_trial).
TrialResult run_trial(const std::string& driver_name,
                      const ScenarioParams& params);

}  // namespace dapes::harness
