#include "harness/channel_scenarios.hpp"

namespace dapes::harness {

TrialResult run_loss_sweep_trial(const ScenarioParams& params) {
  ScenarioParams p = params;
  if (p.channel.model == "unit-disk") p.channel.model = "log-distance";
  return run_dapes_trial(p);
}

TrialResult run_hetero_radio_trial(const ScenarioParams& params) {
  ScenarioParams p = params;
  // Negative = unset; an explicit 0 is a legitimate all-full-range
  // baseline and is left alone.
  if (p.hetero_range_fraction < 0.0) p.hetero_range_fraction = 0.5;
  return run_dapes_trial(p);
}

}  // namespace dapes::harness
