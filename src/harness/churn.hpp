/// @file
/// Open-membership scenario families: the Fig. 7 DAPES world with node
/// lifecycle as a simulated event (src/sim/faults.hpp).
///
/// Like the channel families these are parameter presets over
/// `run_dapes_trial`, not new worlds: every TrialResult metric, sweep
/// axis and determinism guarantee composes with them. `bench_churn` is
/// the canonical sweep; EXPERIMENTS.md documents the axes.
#pragma once

#include "harness/scenario.hpp"

namespace dapes::harness {

/// One churn.swarm trial: the full DAPES stack under Poisson leave/join
/// churn with crash+restart outages. Defaults (applied only to knobs the
/// caller left at "off"): leave rate 1/300 Hz per node, half the
/// departures crashing with a 30 s outage, matching Poisson admissions,
/// and open-membership peer hygiene (RPF knowledge TTL of twice the
/// neighbor TTL, stale-claim demotion after 3 retry rounds). Fault
/// wiring is forced on even at explicitly zeroed rates so a zero-churn
/// cell measures the wired path, not a silent fallback. Registered under
/// ProtocolNames::kChurnSwarm.
TrialResult run_churn_swarm_trial(const ScenarioParams& params);

/// One churn.flash trial: churn.swarm hygiene plus a flash-crowd arrival
/// wave — by default 10 latent downloaders admitted over a 10 s window
/// at t=60 s (knobs left at "off" are upgraded; explicit values are
/// honored). The paper's fixed swarm bootstraps cold; this family asks
/// how completion degrades when most of the swarm shows up late.
/// Registered under ProtocolNames::kChurnFlash.
TrialResult run_churn_flash_trial(const ScenarioParams& params);

}  // namespace dapes::harness
