#include "harness/churn.hpp"

namespace dapes::harness {

namespace {

/// Open-membership peer hygiene shared by the churn.* presets: without
/// time-based knowledge expiry and stale-claim demotion, bitmaps of
/// departed (or lying) peers poison rarity estimates forever. Only knobs
/// still at their "off" defaults are upgraded, so sweeps can pin them.
void apply_churn_peer_defaults(ScenarioParams& p) {
  if (p.peer.knowledge_ttl.us == 0) {
    p.peer.knowledge_ttl = p.peer.neighbor_ttl * 2;
  }
  if (p.peer.stale_retry_limit == 0) p.peer.stale_retry_limit = 3;
}

}  // namespace

TrialResult run_churn_swarm_trial(const ScenarioParams& params) {
  ScenarioParams p = params;
  // force_wiring distinguishes "knob explicitly zeroed" from "preset
  // defaults wanted": a caller sweeping leave_rate_hz down to 0 still
  // runs the wired path once any() was true, keeping the axis uniform.
  if (!p.faults.any()) {
    p.faults.leave_rate_hz = 1.0 / 300.0;
    p.faults.crash_fraction = 0.5;
    p.faults.join_rate_hz = 1.0 / 300.0;
  }
  p.faults.force_wiring = true;
  apply_churn_peer_defaults(p);
  return run_dapes_trial(p);
}

TrialResult run_churn_flash_trial(const ScenarioParams& params) {
  ScenarioParams p = params;
  if (p.faults.flash_crowd_size == 0) p.faults.flash_crowd_size = 10;
  p.faults.force_wiring = true;
  apply_churn_peer_defaults(p);
  return run_dapes_trial(p);
}

}  // namespace dapes::harness
