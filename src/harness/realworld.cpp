#include "harness/realworld.hpp"

#include <stdexcept>

#include "harness/topology.hpp"

namespace dapes::harness {

namespace {

using core::Peer;
using sim::TimePoint;
using sim::Vec2;
using Waypoint = sim::WaypointMobility::Waypoint;

TimePoint at(double seconds) {
  return TimePoint{static_cast<int64_t>(seconds * 1e6)};
}

}  // namespace

TrialResult run_realworld_trial(int scenario, const ScenarioParams& params) {
  if (scenario < 1 || scenario > 3) {
    throw std::invalid_argument("run_realworld_trial: scenario in 1..3");
  }

  Topology topo(params, params.seed * 977 + static_cast<uint64_t>(scenario),
                "/field-report-1533783192", "/realworld/producer", "image-");

  struct Member {
    std::string id;
    bool producer = false;
  };
  std::vector<Member> members;
  std::vector<sim::MobilityModel*> models;

  switch (scenario) {
    case 1: {
      // Carrier: A (producer) top-left, B bottom-left, C bottom-right —
      // three disconnected segments. D shuttles A -> B -> C.
      models.push_back(topo.fixed({50, 250}));  // A
      members.push_back({"A", true});
      models.push_back(topo.fixed({50, 50}));   // B
      members.push_back({"B", false});
      models.push_back(topo.fixed({250, 50}));  // C
      members.push_back({"C", false});
      models.push_back(topo.waypoints({
          {at(0), {60, 240}},     // with A
          {at(90), {60, 240}},    // fetch window at A
          {at(150), {60, 60}},    // walk to B
          {at(260), {60, 60}},    // serve B
          {at(330), {240, 60}},   // walk to C
          {at(1500), {240, 60}},  // serve C
      }));                        // D (carrier)
      members.push_back({"D", false});
      break;
    }
    case 2: {
      // Repository: C produces and visits the repo; A and B then fetch
      // from the repo simultaneously.
      models.push_back(topo.fixed({150, 150}));  // repo
      members.push_back({"repo", false});
      models.push_back(topo.waypoints({
          {at(0), {280, 280}},
          {at(40), {170, 165}},   // reach the repo
          {at(200), {170, 165}},  // serve the repo
          {at(260), {280, 280}},  // leave
          {at(1500), {280, 280}},
      }));                        // C (producer)
      members.push_back({"C", true});
      models.push_back(topo.waypoints({
          {at(0), {20, 150}},
          {at(280), {20, 150}},   // busy elsewhere while C seeds the repo
          {at(380), {130, 150}},  // then walk in and fetch from the repo
          {at(1500), {130, 150}},
      }));                        // A
      members.push_back({"A", false});
      models.push_back(topo.waypoints({
          {at(0), {280, 20}},
          {at(280), {280, 20}},
          {at(380), {165, 130}},  // arrives about when A does
          {at(1500), {165, 130}},
      }));                        // B
      members.push_back({"B", false});
      break;
    }
    case 3: {
      // Moving nodes: all four wander a compact area (the Fig. 8c walk
      // keeps the group loosely together); connectivity is intermittent
      // with full-group and chain (multi-hop) moments.
      sim::RandomDirectionMobility::Params rp;
      rp.field = sim::Field{160.0, 160.0};
      const Vec2 starts[4] = {{20, 20}, {140, 20}, {20, 140}, {140, 140}};
      const char* ids[4] = {"A", "B", "C", "D"};
      for (int i = 0; i < 4; ++i) {
        topo.mobility.push_back(std::make_unique<sim::RandomDirectionMobility>(
            starts[i], rp, topo.rng.fork()));
        models.push_back(topo.mobility.back().get());
        members.push_back({ids[i], i == 0});
      }
      break;
    }
  }

  std::vector<std::unique_ptr<Peer>> peers;
  CompletionTracker tracker;
  for (size_t i = 0; i < members.size(); ++i) {
    core::PeerOptions po = params.peer;
    po.id = members[i].id;
    auto peer = std::make_unique<Peer>(topo.sched, *topo.medium, models[i],
                                       topo.rng.fork(), po);
    peer->keychain().import_key(topo.producer_key);
    peer->add_trust_anchor(topo.producer_key.id());
    if (members[i].producer) {
      peer->publish(topo.collection);
    } else {
      ++tracker.expected;
      peer->subscribe(topo.collection);
      peer->set_completion_callback([&tracker](const ndn::Name&, TimePoint t) {
        tracker.record(t.to_seconds());
      });
    }
    peer->start();
    peers.push_back(std::move(peer));
  }

  TrialResult result = run_to_completion(params, topo, tracker, [&] {
    StateSample s;
    for (const auto& p : peers) {
      s.state_bytes += p->state_bytes();
      s.knowledge_bytes += p->knowledge_bytes();
    }
    return s;
  });
  // Table I reports when the *last* peer finishes, not the mean.
  result.download_time_s = tracker.last_time(params.sim_limit_s);
  return result;
}

RealWorldResult run_realworld_scenario(int scenario,
                                       const RealWorldParams& params) {
  ScenarioParams sp;
  sp.files = params.files;
  sp.file_size_bytes = params.file_size_bytes;
  sp.packet_size = params.packet_size;
  sp.wifi_range_m = params.wifi_range_m;
  sp.data_rate_bps = params.data_rate_bps;
  sp.loss_rate = params.loss_rate;
  sp.sim_limit_s = params.sim_limit_s;
  sp.peer = params.peer;
  sp.seed = params.seed;

  TrialResult t = run_realworld_trial(scenario, sp);

  RealWorldResult result;
  result.scenario = "scenario-" + std::to_string(scenario);
  result.download_time_s = t.download_time_s;
  result.transmissions = t.transmissions;
  result.memory_overhead_mb =
      static_cast<double>(t.peak_state_bytes) / (1024.0 * 1024.0);
  result.knowledge_kb = static_cast<double>(t.peak_knowledge_bytes) / 1024.0;
  result.context_switches = t.context_switches;
  result.system_calls = t.system_calls;
  result.page_faults = t.page_faults;
  result.completion_fraction = t.completion_fraction;
  return result;
}

}  // namespace dapes::harness
