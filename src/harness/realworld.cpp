#include "harness/realworld.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/medium.hpp"
#include "sim/mobility.hpp"
#include "sim/scheduler.hpp"

namespace dapes::harness {

namespace {

using core::Collection;
using core::Peer;
using sim::Duration;
using sim::TimePoint;
using sim::Vec2;
using Waypoint = sim::WaypointMobility::Waypoint;

TimePoint at(double seconds) {
  return TimePoint{static_cast<int64_t>(seconds * 1e6)};
}

/// The modeled system-load proxies. Coefficients are arbitrary but fixed;
/// the *shape* across scenarios (driven by events, frames and state) is
/// what reproduces Table I. Documented in EXPERIMENTS.md.
void fill_system_load(RealWorldResult& r, uint64_t events, uint64_t frames,
                      size_t peak_state_bytes) {
  r.system_calls = 3 * frames + events / 2;
  r.context_switches = frames + events / 8;
  r.page_faults = static_cast<uint64_t>(peak_state_bytes / 4096) + frames / 64;
}

}  // namespace

RealWorldResult run_realworld_scenario(int scenario,
                                       const RealWorldParams& params) {
  if (scenario < 1 || scenario > 3) {
    throw std::invalid_argument("run_realworld_scenario: scenario in 1..3");
  }

  common::Rng rng(params.seed * 977 + static_cast<uint64_t>(scenario));
  sim::Scheduler sched;
  sim::Medium::Params mp;
  mp.range_m = params.wifi_range_m;
  mp.data_rate_bps = params.data_rate_bps;
  mp.loss_rate = params.loss_rate;
  sim::Medium medium(sched, mp, rng.fork());

  crypto::KeyChain keys;
  crypto::PrivateKey key = keys.generate_key("/realworld/producer",
                                             params.seed);
  std::vector<Collection::SyntheticFileInput> files;
  for (size_t i = 0; i < params.files; ++i) {
    files.push_back({"image-" + std::to_string(i), params.file_size_bytes});
  }
  auto collection = Collection::create_synthetic(
      ndn::Name("/field-report-1533783192"), std::move(files),
      params.packet_size, core::MetadataFormat::kPacketDigest, key);

  std::vector<std::unique_ptr<sim::MobilityModel>> mobility;
  struct Member {
    std::string id;
    bool producer = false;
  };
  std::vector<Member> members;

  auto waypoints = [&](std::vector<Waypoint> pts) {
    mobility.push_back(
        std::make_unique<sim::WaypointMobility>(std::move(pts)));
    return mobility.back().get();
  };
  auto fixed = [&](Vec2 pos) {
    mobility.push_back(std::make_unique<sim::StationaryMobility>(pos));
    return mobility.back().get();
  };

  std::vector<sim::MobilityModel*> models;

  switch (scenario) {
    case 1: {
      // Carrier: A (producer) top-left, B bottom-left, C bottom-right —
      // three disconnected segments. D shuttles A -> B -> C.
      models.push_back(fixed({50, 250}));  // A
      members.push_back({"A", true});
      models.push_back(fixed({50, 50}));   // B
      members.push_back({"B", false});
      models.push_back(fixed({250, 50}));  // C
      members.push_back({"C", false});
      models.push_back(waypoints({
          {at(0), {60, 240}},     // with A
          {at(90), {60, 240}},    // fetch window at A
          {at(150), {60, 60}},    // walk to B
          {at(260), {60, 60}},    // serve B
          {at(330), {240, 60}},   // walk to C
          {at(1500), {240, 60}},  // serve C
      }));                        // D (carrier)
      members.push_back({"D", false});
      break;
    }
    case 2: {
      // Repository: C produces and visits the repo; A and B then fetch
      // from the repo simultaneously.
      models.push_back(fixed({150, 150}));  // repo
      members.push_back({"repo", false});
      models.push_back(waypoints({
          {at(0), {280, 280}},
          {at(40), {170, 165}},   // reach the repo
          {at(200), {170, 165}},  // serve the repo
          {at(260), {280, 280}},  // leave
          {at(1500), {280, 280}},
      }));                        // C (producer)
      members.push_back({"C", true});
      models.push_back(waypoints({
          {at(0), {20, 150}},
          {at(280), {20, 150}},   // busy elsewhere while C seeds the repo
          {at(380), {130, 150}},  // then walk in and fetch from the repo
          {at(1500), {130, 150}},
      }));                        // A
      members.push_back({"A", false});
      models.push_back(waypoints({
          {at(0), {280, 20}},
          {at(280), {280, 20}},
          {at(380), {165, 130}},  // arrives about when A does
          {at(1500), {165, 130}},
      }));                        // B
      members.push_back({"B", false});
      break;
    }
    case 3: {
      // Moving nodes: all four wander a compact area (the Fig. 8c walk
      // keeps the group loosely together); connectivity is intermittent
      // with full-group and chain (multi-hop) moments.
      sim::RandomDirectionMobility::Params rp;
      rp.field = sim::Field{160.0, 160.0};
      const Vec2 starts[4] = {{20, 20}, {140, 20}, {20, 140}, {140, 140}};
      const char* ids[4] = {"A", "B", "C", "D"};
      for (int i = 0; i < 4; ++i) {
        mobility.push_back(std::make_unique<sim::RandomDirectionMobility>(
            starts[i], rp, rng.fork()));
        models.push_back(mobility.back().get());
        members.push_back({ids[i], i == 0});
      }
      break;
    }
  }

  std::vector<std::unique_ptr<Peer>> peers;
  int completed = 0;
  double last_completion = 0.0;
  int expected = 0;
  for (size_t i = 0; i < members.size(); ++i) {
    core::PeerOptions po = params.peer;
    po.id = members[i].id;
    auto peer = std::make_unique<Peer>(sched, medium, models[i], rng.fork(),
                                       po);
    peer->keychain().import_key(key);
    peer->add_trust_anchor(key.id());
    if (members[i].producer) {
      peer->publish(collection);
    } else {
      ++expected;
      peer->subscribe(collection);
      peer->set_completion_callback(
          [&completed, &last_completion](const ndn::Name&, TimePoint t) {
            ++completed;
            last_completion = std::max(last_completion, t.to_seconds());
          });
    }
    peer->start();
    peers.push_back(std::move(peer));
  }

  RealWorldResult result;
  result.scenario = "scenario-" + std::to_string(scenario);
  const TimePoint limit{static_cast<int64_t>(params.sim_limit_s * 1e6)};
  const Duration chunk = Duration::seconds(5.0);
  size_t peak_state = 0;
  size_t peak_knowledge = 0;
  TimePoint cursor = TimePoint::zero();
  while (cursor < limit && completed < expected) {
    cursor = std::min(TimePoint{cursor.us + chunk.us}, limit);
    sched.run_until(cursor);
    size_t state = 0;
    size_t knowledge = 0;
    for (const auto& p : peers) {
      state += p->state_bytes();
      knowledge += p->knowledge_bytes();
    }
    peak_state = std::max(peak_state, state);
    peak_knowledge = std::max(peak_knowledge, knowledge);
  }

  result.download_time_s =
      completed == expected ? last_completion : params.sim_limit_s;
  result.completion_fraction =
      expected == 0 ? 1.0 : static_cast<double>(completed) / expected;
  result.transmissions = medium.stats().transmissions;
  result.memory_overhead_mb =
      static_cast<double>(peak_state) / (1024.0 * 1024.0);
  result.knowledge_kb = static_cast<double>(peak_knowledge) / 1024.0;
  fill_system_load(result, sched.executed(), medium.stats().transmissions,
                   peak_state);
  return result;
}

}  // namespace dapes::harness
