/// @file
/// Declarative parameter sweeps over protocol drivers.
///
/// Every figure and table in the paper is the same experiment shape: a grid
/// of (series x axis-value) cells, each cell N independent trials of one
/// protocol driver, each metric aggregated across trials at a percentile.
/// SweepSpec captures that shape declaratively; run_sweep executes the whole
/// grid — every (cell, trial) pair fans out over the TrialRunner pool with a
/// seed derived from (base seed, cell index, trial index), so output is
/// bit-identical for any --jobs value; write_sweep renders text, CSV or JSON.
///
/// The bench_fig* binaries are thin SweepSpec builders over this engine.
#pragma once

#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "harness/scenario.hpp"
#include "harness/trial_runner.hpp"

namespace dapes::harness {

/// Rendering of a SweepResult.
enum class OutputFormat {
  kText,  ///< aligned human-readable table
  kCsv,   ///< long-form CSV (metric, series, x, value)
  kJson   ///< nested JSON object
};

/// Parses "text" / "csv" / "json"; nullopt otherwise.
std::optional<OutputFormat> parse_output_format(std::string_view s);

/// One curve: a protocol driver (registry name) plus parameter tweaks
/// applied after the axis value.
struct SweepSeries {
  std::string label;   ///< legend label
  std::string driver;  ///< protocol-driver registry name
  /// Optional parameter tweaks applied after the axis value.
  std::function<void(ScenarioParams&)> configure;
};

/// The x axis: values plus how each value maps onto the params. The
/// default applies x as the WiFi range (the paper's usual axis).
struct SweepAxis {
  std::string label = "range_m";  ///< axis label in the output
  std::vector<double> values;     ///< swept x values
  /// How an x value maps onto the params (default: WiFi range).
  std::function<void(ScenarioParams&, double)> apply =
      [](ScenarioParams& p, double x) { p.wifi_range_m = x; };
};

/// One reported metric: a TrialResult extractor plus the cross-trial
/// aggregation (percentile in [0,100], or negative for the mean).
struct SweepMetric {
  std::string label;  ///< metric label in the output
  /// Extracts the metric from one trial's result.
  std::function<double(const TrialResult&)> value;
  double percentile = 90.0;  ///< the paper reports p90 over trials
};

/// The whole grid, declaratively: base params, axis, series, metrics.
struct SweepSpec {
  std::string title;                 ///< figure/table title
  ScenarioParams base;               ///< params before axis/series tweaks
  SweepAxis axis;                    ///< the x axis
  std::vector<SweepSeries> series;   ///< one curve per entry
  std::vector<SweepMetric> metrics;  ///< reported metrics
  std::string y_unit;                ///< y-axis unit label
  int trials = 2;                    ///< trials per cell
};

/// The executed grid, ready to render.
struct SweepResult {
  std::string title;    ///< figure/table title
  std::string x_label;  ///< axis label
  std::string y_unit;   ///< y-axis unit label
  std::vector<double> xs;                   ///< swept x values
  std::vector<std::string> series_labels;   ///< legend labels
  std::vector<std::string> metric_labels;   ///< metric labels
  /// values[metric][series][x], aggregated across trials.
  std::vector<std::vector<std::vector<double>>> values;
};

/// Execute the grid. Driver names resolve against the registry up front
/// (throws std::out_of_range on an unknown name before any trial runs).
SweepResult run_sweep(const SweepSpec& spec, const TrialRunner& runner);

/// Collapse one metric's cross-trial samples per its aggregation rule
/// (mean when percentile is negative, else that percentile). Shared by
/// run_sweep and the hand-rolled benches so the rule lives in one place.
double aggregate_metric(const SweepMetric& metric, std::vector<double> samples);

/// Render to `out` (caller owns the stream).
void write_sweep(const SweepResult& result, OutputFormat format,
                 std::FILE* out);

/// Download time in seconds (EXPERIMENTS.md documents units).
SweepMetric download_time_metric(double pct = 90.0);
/// Frames transmitted, in thousands.
SweepMetric transmissions_k_metric(double pct = 90.0);
/// Mean fraction of downloaders that completed.
SweepMetric completion_metric();
/// Peak modeled protocol state, MB (Table I proxy).
SweepMetric memory_mb_metric(double pct = 90.0);
/// Peak availability-knowledge bookkeeping, KB (Table I proxy).
SweepMetric knowledge_kb_metric(double pct = 90.0);
/// Modeled context switches (Table I proxy).
SweepMetric context_switches_metric(double pct = 90.0);
/// Modeled system calls (Table I proxy).
SweepMetric system_calls_metric(double pct = 90.0);
/// Modeled page faults (Table I proxy).
SweepMetric page_faults_metric(double pct = 90.0);
/// Wall-clock seconds per trial (mean) — non-deterministic; bench_scale's
/// speedup metric, never used where byte-identical output is asserted.
SweepMetric trial_wall_metric();

}  // namespace dapes::harness
