#include "harness/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dapes::harness {

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double rank = (p / 100.0) * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = static_cast<size_t>(std::ceil(rank));
  if (hi >= values.size()) hi = values.size() - 1;
  double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

double aggregate(const std::vector<TrialResult>& trials,
                 double (*metric)(const TrialResult&), double pct) {
  std::vector<double> values;
  values.reserve(trials.size());
  for (const auto& t : trials) values.push_back(metric(t));
  return percentile(std::move(values), pct);
}

double metric_download_time(const TrialResult& r) { return r.download_time_s; }

double metric_transmissions_k(const TrialResult& r) {
  return static_cast<double>(r.transmissions) / 1000.0;
}

void print_figure(const std::string& title, const std::string& x_label,
                  const std::vector<double>& xs,
                  const std::vector<Series>& series,
                  const std::string& y_unit) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!y_unit.empty()) std::printf("(y values in %s)\n", y_unit.c_str());

  std::printf("%-14s", x_label.c_str());
  for (const auto& s : series) {
    std::printf(" %28s", s.label.c_str());
  }
  std::printf("\n");

  for (size_t i = 0; i < xs.size(); ++i) {
    std::printf("%-14.6g", xs[i]);
    for (const auto& s : series) {
      if (i < s.y.size()) {
        std::printf(" %28.2f", s.y[i]);
      } else {
        std::printf(" %28s", "-");
      }
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

}  // namespace dapes::harness
