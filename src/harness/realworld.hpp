/// @file
/// Reproduction of the real-world feasibility study (paper §VI-E, Fig. 8,
/// Table I) as scripted simulations.
///
/// The paper ran five MacBooks outdoors (50 m WiFi range) through three
/// scenarios; we script the same choreography with WaypointMobility:
///   1. carrier   — A produces; D fetches from A and physically carries
///                  the collection to B's and C's network segments;
///   2. repository — C produces; a stationary repo downloads from C, then
///                  A and B download from the repo simultaneously;
///   3. moving    — A produces; A, B, C, D all move around an
///                  infrastructure-free area with intermittent mutual
///                  connectivity and occasional multi-hop moments.
///
/// Table I's system-load numbers (memory, context switches, system calls,
/// page faults) are modeled proxies derived from protocol state and event
/// counts — see EXPERIMENTS.md for the exact formulas and the rationale.
#pragma once

#include <cstdint>
#include <string>

#include "harness/scenario.hpp"

namespace dapes::harness {

/// Legacy parameter block of the scripted Fig. 8 scenarios.
struct RealWorldParams {
  size_t files = 10;           ///< files in the shared collection
  /// File size (paper: 1 MB, divided by the default scale factor).
  size_t file_size_bytes = 1024 * 1024 / kDefaultScale;
  size_t packet_size = 1024;   ///< payload bytes per packet
  double wifi_range_m = 50.0;  ///< paper: MacBook WiFi range ~50 m
  /// Radio data rate (paper: 11 Mb/s, scaled).
  double data_rate_bps = 11e6 / kDefaultScale;
  double loss_rate = 0.10;       ///< uniform frame loss
  double sim_limit_s = 1500.0;   ///< simulated-time cap
  core::PeerOptions peer{};      ///< per-peer application knobs
  uint64_t seed = 1;             ///< trial RNG seed
};

/// Legacy result block of the scripted Fig. 8 scenarios (Table I row).
struct RealWorldResult {
  std::string scenario;           ///< scenario name ("carrier", ...)
  double download_time_s = 0.0;   ///< all peers complete
  uint64_t transmissions = 0;     ///< frames put on the air
  double memory_overhead_mb = 0.0;  ///< peak modeled protocol state
  /// Peak "what is available around me" bookkeeping (bitmaps, RPF state,
  /// overheard knowledge) — the component Table I shows growing with
  /// multi-hop communication.
  double knowledge_kb = 0.0;
  uint64_t context_switches = 0;  ///< modeled proxy (EXPERIMENTS.md)
  uint64_t system_calls = 0;      ///< modeled proxy (EXPERIMENTS.md)
  uint64_t page_faults = 0;       ///< modeled proxy (EXPERIMENTS.md)
  double completion_fraction = 0.0;  ///< fraction of peers that finished
};

/// Run scenario 1/2/3 of Fig. 8 as an engine trial (the ScenarioParams
/// radio/workload/peer fields apply; the Fig. 7 population fields are
/// ignored — the cast is scripted). download_time_s is the time the *last*
/// peer finishes (Table I), not the Fig. 9/10 mean. This is what the
/// "realworld.*" protocol drivers in the registry call.
TrialResult run_realworld_trial(int scenario, const ScenarioParams& params);

/// Run scenario 1/2/3 of Fig. 8 with the legacy params/result types
/// (wraps run_realworld_trial).
RealWorldResult run_realworld_scenario(int scenario,
                                       const RealWorldParams& params);

}  // namespace dapes::harness
