// The DAPES protocol driver for the Fig. 7 scenario. Topology construction
// and the run-to-completion loop live in topology.{hpp,cpp}; this file only
// places DAPES peers and forwarders on that world.
#include "harness/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "dapes/forwarder_node.hpp"
#include "harness/topology.hpp"

namespace dapes::harness {

namespace {

using core::ForwarderNode;
using core::Peer;
using sim::TimePoint;

}  // namespace

TrialResult run_dapes_trial(const ScenarioParams& params) {
  Topology topo(params, params.seed, "/collection-1533783192",
                "/dapes/producer", "file-");

  std::vector<std::unique_ptr<Peer>> downloaders;
  std::vector<std::unique_ptr<ForwarderNode>> forwarders;
  CompletionTracker tracker;
  tracker.expected =
      params.stationary_downloaders + params.mobile_downloaders - 1;

  // Open-membership wiring (churn.* scenarios). Node ids are assigned by
  // construction order: repositories 0..S-1, mobile downloaders S..S+M-1
  // (the producer is node S), forwarders next, and latent arrivals
  // appended last. That layout is what lets the FaultPlan and the
  // adversary pick operate on predicted node ids before the nodes exist.
  const bool faults_on = params.faults.any();
  const uint32_t repo_count =
      static_cast<uint32_t>(params.stationary_downloaders);
  std::vector<uint32_t> adversaries;
  if (faults_on) {
    std::vector<uint32_t> candidates;  // initial non-producer downloaders
    for (uint32_t i = 0; i < repo_count; ++i) candidates.push_back(i);
    for (int i = 1; i < params.mobile_downloaders; ++i) {
      candidates.push_back(repo_count + static_cast<uint32_t>(i));
    }
    adversaries = sim::FaultPlan::pick_adversaries(params.faults, candidates,
                                                   params.seed);
    tracker.expected -= static_cast<int>(adversaries.size());
  }
  auto is_adversary = [&](uint32_t node) {
    return std::binary_search(adversaries.begin(), adversaries.end(), node);
  };
  std::map<sim::NodeId, Peer*> peer_of;
  std::map<sim::NodeId, ForwarderNode*> fwd_of;

  auto add_downloader = [&](sim::MobilityModel* mob, const std::string& id,
                            bool is_producer, bool latent, bool adversary) {
    core::PeerOptions po = params.peer;
    po.id = id;
    po.latent = latent;
    po.lie_in_bitmaps = adversary;
    auto peer = std::make_unique<Peer>(topo.sched, *topo.medium, mob,
                                       topo.rng.fork(), po);
    peer->keychain().import_key(topo.producer_key);
    peer->add_trust_anchor(topo.producer_key.id());
    if (is_producer) {
      peer->publish(topo.collection);
    } else {
      peer->subscribe(topo.collection);
      if (!adversary) {
        peer->set_completion_callback(
            [&tracker](const ndn::Name&, TimePoint t) {
              tracker.record(t.to_seconds());
            });
      }
    }
    if (!latent) {
      // Attribute the discovery chain to the node so a later crash can
      // sweep its timers; inert (never swept) in fixed-population runs.
      sim::Scheduler::OwnerScope own(topo.sched, peer->node());
      peer->start();
    }
    peer_of[peer->node()] = peer.get();
    downloaders.push_back(std::move(peer));
  };

  // Stationary repositories at a regular grid inset from the corners.
  for (int i = 0; i < params.stationary_downloaders; ++i) {
    add_downloader(topo.stationary(params, i), "repo-" + std::to_string(i),
                   /*is_producer=*/false, /*latent=*/false,
                   is_adversary(static_cast<uint32_t>(i)));
  }

  // Mobile downloaders; the first doubles as the producer that seeds the
  // collection into the swarm.
  for (int i = 0; i < params.mobile_downloaders; ++i) {
    add_downloader(topo.mobile(params), "peer-" + std::to_string(i),
                   /*is_producer=*/i == 0, /*latent=*/false,
                   is_adversary(repo_count + static_cast<uint32_t>(i)));
  }

  // Pure forwarders and intermediate DAPES nodes.
  auto add_forwarder = [&](core::ForwarderKind kind) {
    ForwarderNode::Options fo;
    fo.kind = kind;
    fo.forward_probability =
        params.peer.multihop ? params.peer.forward_probability : 0.0;
    forwarders.push_back(std::make_unique<ForwarderNode>(
        topo.sched, *topo.medium, topo.mobile(params), topo.rng.fork(), fo));
    fwd_of[forwarders.back()->node()] = forwarders.back().get();
  };
  for (int i = 0; i < params.pure_forwarders; ++i) {
    add_forwarder(core::ForwarderKind::kPureForwarder);
  }
  for (int i = 0; i < params.dapes_intermediates; ++i) {
    add_forwarder(core::ForwarderKind::kDapesIntermediate);
  }

  // Latent arrivals (flash crowd + Poisson joins): honest mobile
  // downloaders registered dead on the medium, admitted by kJoin events.
  // Appending them only *after* the fixed population means their
  // topo.rng forks never shift the paper-scale draw sequence.
  sim::FaultPlan plan;
  if (faults_on) {
    size_t latent_count =
        static_cast<size_t>(std::max(0, params.faults.flash_crowd_size));
    if (params.faults.join_rate_hz > 0.0) {
      latent_count += static_cast<size_t>(std::ceil(
          params.faults.join_rate_hz *
          std::max(0.0, params.sim_limit_s - params.faults.warmup_s)));
    }
    sim::FaultPlan::Population pop;
    for (size_t i = 0; i < latent_count; ++i) {
      add_downloader(topo.mobile(params), "late-" + std::to_string(i),
                     /*is_producer=*/false, /*latent=*/true,
                     /*adversary=*/false);
      pop.latent.push_back(
          static_cast<uint32_t>(downloaders.back()->node()));
    }
    // Removable pool: mobile downloaders except the producer, plus the
    // relays. Stationary repositories stay — they are infrastructure,
    // and retiring them would conflate churn with the coverage axis.
    for (int i = 1; i < params.mobile_downloaders; ++i) {
      pop.removable.push_back(repo_count + static_cast<uint32_t>(i));
    }
    for (const auto& [node, fwd] : fwd_of) {
      pop.removable.push_back(static_cast<uint32_t>(node));
    }
    pop.seeder = repo_count;  // the producer (first mobile downloader)
    pop.has_seeder = params.mobile_downloaders > 0;
    plan = sim::FaultPlan::compile(params.faults, pop, params.sim_limit_s,
                                   params.seed);
    tracker.expected += static_cast<int>(plan.admitted_joins());

    plan.install(topo.sched, [&](const sim::FaultEvent& ev) {
      const sim::NodeId node = ev.target;
      switch (ev.kind) {
        case sim::FaultKind::kLeave:
        case sim::FaultKind::kCrash:
        case sim::FaultKind::kSeederLeave: {
          topo.medium->retire_node(node);
          topo.sched.cancel_for_node(node);
          if (auto it = peer_of.find(node); it != peer_of.end()) {
            it->second->crash();
          } else if (auto fit = fwd_of.find(node); fit != fwd_of.end()) {
            fit->second->crash_reset();
          }
          break;
        }
        case sim::FaultKind::kRestart:
        case sim::FaultKind::kJoin: {
          topo.medium->revive_node(node);
          if (auto it = peer_of.find(node); it != peer_of.end()) {
            sim::Scheduler::OwnerScope own(topo.sched, node);
            it->second->restart();
          }
          // A revived relay needs no kick: it is purely reactive.
          break;
        }
      }
    });
  }

  // Mixed-range radios (hetero.radio); an exact no-op when the fraction
  // is 0, so paper-scale trials are untouched.
  apply_hetero_radios(params, *topo.medium);

  TrialResult result = run_to_completion(params, topo, tracker, [&] {
    StateSample s;
    for (const auto& p : downloaders) {
      s.state_bytes += p->state_bytes();
      s.knowledge_bytes += p->knowledge_bytes();
    }
    for (const auto& f : forwarders) s.state_bytes += f->state_bytes();
    return s;
  });

  uint64_t forwards = 0;
  uint64_t timeouts = 0;
  for (const auto& f : forwarders) {
    forwards += f->strategy().forwards();
    timeouts += f->strategy().relay_timeouts();
  }
  result.forward_accuracy =
      forwards == 0 ? 0.0
                    : 1.0 - static_cast<double>(timeouts) /
                                static_cast<double>(forwards);
  return result;
}

}  // namespace dapes::harness
