#include "harness/scenario.hpp"

#include <algorithm>

#include "dapes/forwarder_node.hpp"
#include "sim/medium.hpp"
#include "sim/mobility.hpp"
#include "sim/scheduler.hpp"

namespace dapes::harness {

namespace {

using core::Collection;
using core::ForwarderNode;
using core::Peer;
using sim::Duration;
using sim::TimePoint;
using sim::Vec2;

std::unique_ptr<sim::RandomDirectionMobility> make_mobile(
    const ScenarioParams& params, common::Rng& rng) {
  sim::RandomDirectionMobility::Params mp;
  mp.field = sim::Field{params.field_m, params.field_m};
  Vec2 start{rng.uniform(0.0, params.field_m),
             rng.uniform(0.0, params.field_m)};
  return std::make_unique<sim::RandomDirectionMobility>(start, mp, rng.fork());
}

}  // namespace

TrialResult run_dapes_trial(const ScenarioParams& params) {
  common::Rng rng(params.seed);
  sim::Scheduler sched;

  sim::Medium::Params mp;
  mp.range_m = params.wifi_range_m;
  mp.data_rate_bps = params.data_rate_bps;
  mp.loss_rate = params.loss_rate;
  sim::Medium medium(sched, mp, rng.fork());

  // --- the shared collection ---
  crypto::KeyChain producer_keys;
  crypto::PrivateKey producer_key =
      producer_keys.generate_key("/dapes/producer", params.seed);
  std::vector<Collection::SyntheticFileInput> files;
  for (size_t i = 0; i < params.files; ++i) {
    files.push_back({"file-" + std::to_string(i), params.file_size_bytes});
  }
  auto collection = Collection::create_synthetic(
      ndn::Name("/collection-1533783192"), std::move(files),
      params.packet_size, params.metadata_format, producer_key);

  // --- mobility (owned here; nodes keep raw pointers) ---
  std::vector<std::unique_ptr<sim::MobilityModel>> mobility;
  std::vector<std::unique_ptr<Peer>> downloaders;
  std::vector<std::unique_ptr<ForwarderNode>> forwarders;

  const int total_downloaders =
      params.stationary_downloaders + params.mobile_downloaders;
  int completed = 0;
  std::vector<double> completion_times;

  auto add_downloader = [&](std::unique_ptr<sim::MobilityModel> mob,
                            const std::string& id, bool is_producer) {
    mobility.push_back(std::move(mob));
    core::PeerOptions po = params.peer;
    po.id = id;
    auto peer = std::make_unique<Peer>(sched, medium, mobility.back().get(),
                                       rng.fork(), po);
    peer->keychain().import_key(producer_key);
    peer->add_trust_anchor(producer_key.id());
    if (is_producer) {
      peer->publish(collection);
    } else {
      peer->subscribe(collection);
      peer->set_completion_callback(
          [&completed, &completion_times](const ndn::Name&, TimePoint t) {
            ++completed;
            completion_times.push_back(t.to_seconds());
          });
    }
    peer->start();
    downloaders.push_back(std::move(peer));
  };

  // Stationary repositories at a regular grid inset from the corners.
  const double inset = params.field_m / 4.0;
  const std::vector<Vec2> repo_positions = {
      {inset, inset},
      {params.field_m - inset, inset},
      {inset, params.field_m - inset},
      {params.field_m - inset, params.field_m - inset}};
  for (int i = 0; i < params.stationary_downloaders; ++i) {
    Vec2 pos = repo_positions[static_cast<size_t>(i) % repo_positions.size()];
    add_downloader(std::make_unique<sim::StationaryMobility>(pos),
                   "repo-" + std::to_string(i), /*is_producer=*/false);
  }

  // Mobile downloaders; the first doubles as the producer that seeds the
  // collection into the swarm.
  for (int i = 0; i < params.mobile_downloaders; ++i) {
    add_downloader(make_mobile(params, rng), "peer-" + std::to_string(i),
                   /*is_producer=*/i == 0);
  }

  // Pure forwarders and intermediate DAPES nodes.
  for (int i = 0; i < params.pure_forwarders; ++i) {
    mobility.push_back(make_mobile(params, rng));
    ForwarderNode::Options fo;
    fo.kind = core::ForwarderKind::kPureForwarder;
    fo.forward_probability = params.peer.multihop
                                 ? params.peer.forward_probability
                                 : 0.0;
    forwarders.push_back(std::make_unique<ForwarderNode>(
        sched, medium, mobility.back().get(), rng.fork(), fo));
  }
  for (int i = 0; i < params.dapes_intermediates; ++i) {
    mobility.push_back(make_mobile(params, rng));
    ForwarderNode::Options fo;
    fo.kind = core::ForwarderKind::kDapesIntermediate;
    fo.forward_probability = params.peer.multihop
                                 ? params.peer.forward_probability
                                 : 0.0;
    forwarders.push_back(std::make_unique<ForwarderNode>(
        sched, medium, mobility.back().get(), rng.fork(), fo));
  }

  // --- run, sampling state and stopping early when everyone is done ---
  const int expected_completions = total_downloaders - 1;  // minus producer
  TrialResult result;
  const TimePoint limit{static_cast<int64_t>(params.sim_limit_s * 1e6)};
  const Duration chunk = Duration::seconds(5.0);
  TimePoint cursor = TimePoint::zero();
  while (cursor < limit && completed < expected_completions) {
    cursor = std::min(TimePoint{cursor.us + chunk.us}, limit);
    sched.run_until(cursor);
    size_t total_state = 0;
    for (const auto& p : downloaders) total_state += p->state_bytes();
    for (const auto& f : forwarders) total_state += f->state_bytes();
    result.peak_state_bytes = std::max(result.peak_state_bytes, total_state);
    result.total_state_bytes = total_state;
  }

  // --- metrics ---
  double sum = 0.0;
  for (double t : completion_times) sum += t;
  int missing = expected_completions - completed;
  sum += static_cast<double>(missing) * params.sim_limit_s;
  result.download_time_s = sum / std::max(1, expected_completions);
  result.completion_fraction =
      static_cast<double>(completed) / std::max(1, expected_completions);
  result.transmissions = medium.stats().transmissions;
  result.tx_by_kind.insert(medium.stats().tx_by_kind.begin(),
                           medium.stats().tx_by_kind.end());
  result.collided_frames = medium.stats().collided_frames;
  result.events_executed = sched.executed();

  uint64_t forwards = 0;
  uint64_t timeouts = 0;
  auto accumulate = [&](core::PureForwarderStrategy& s) {
    forwards += s.forwards();
    timeouts += s.relay_timeouts();
  };
  for (const auto& f : forwarders) accumulate(f->strategy());
  result.forward_accuracy =
      forwards == 0 ? 0.0
                    : 1.0 - static_cast<double>(timeouts) /
                                static_cast<double>(forwards);
  return result;
}

std::vector<TrialResult> run_dapes_trials(ScenarioParams params, int trials) {
  std::vector<TrialResult> results;
  results.reserve(static_cast<size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    params.seed = params.seed * 6364136223846793005ULL + 1442695040888963407ULL;
    results.push_back(run_dapes_trial(params));
  }
  return results;
}

}  // namespace dapes::harness
