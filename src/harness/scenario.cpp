// The DAPES protocol driver for the Fig. 7 scenario. Topology construction
// and the run-to-completion loop live in topology.{hpp,cpp}; this file only
// places DAPES peers and forwarders on that world.
#include "harness/scenario.hpp"

#include "dapes/forwarder_node.hpp"
#include "harness/topology.hpp"

namespace dapes::harness {

namespace {

using core::ForwarderNode;
using core::Peer;
using sim::TimePoint;

}  // namespace

TrialResult run_dapes_trial(const ScenarioParams& params) {
  Topology topo(params, params.seed, "/collection-1533783192",
                "/dapes/producer", "file-");

  std::vector<std::unique_ptr<Peer>> downloaders;
  std::vector<std::unique_ptr<ForwarderNode>> forwarders;
  CompletionTracker tracker;
  tracker.expected =
      params.stationary_downloaders + params.mobile_downloaders - 1;

  auto add_downloader = [&](sim::MobilityModel* mob, const std::string& id,
                            bool is_producer) {
    core::PeerOptions po = params.peer;
    po.id = id;
    auto peer = std::make_unique<Peer>(topo.sched, *topo.medium, mob,
                                       topo.rng.fork(), po);
    peer->keychain().import_key(topo.producer_key);
    peer->add_trust_anchor(topo.producer_key.id());
    if (is_producer) {
      peer->publish(topo.collection);
    } else {
      peer->subscribe(topo.collection);
      peer->set_completion_callback([&tracker](const ndn::Name&, TimePoint t) {
        tracker.record(t.to_seconds());
      });
    }
    peer->start();
    downloaders.push_back(std::move(peer));
  };

  // Stationary repositories at a regular grid inset from the corners.
  for (int i = 0; i < params.stationary_downloaders; ++i) {
    add_downloader(topo.stationary(params, i), "repo-" + std::to_string(i),
                   /*is_producer=*/false);
  }

  // Mobile downloaders; the first doubles as the producer that seeds the
  // collection into the swarm.
  for (int i = 0; i < params.mobile_downloaders; ++i) {
    add_downloader(topo.mobile(params), "peer-" + std::to_string(i),
                   /*is_producer=*/i == 0);
  }

  // Pure forwarders and intermediate DAPES nodes.
  auto add_forwarder = [&](core::ForwarderKind kind) {
    ForwarderNode::Options fo;
    fo.kind = kind;
    fo.forward_probability =
        params.peer.multihop ? params.peer.forward_probability : 0.0;
    forwarders.push_back(std::make_unique<ForwarderNode>(
        topo.sched, *topo.medium, topo.mobile(params), topo.rng.fork(), fo));
  };
  for (int i = 0; i < params.pure_forwarders; ++i) {
    add_forwarder(core::ForwarderKind::kPureForwarder);
  }
  for (int i = 0; i < params.dapes_intermediates; ++i) {
    add_forwarder(core::ForwarderKind::kDapesIntermediate);
  }

  // Mixed-range radios (hetero.radio); an exact no-op when the fraction
  // is 0, so paper-scale trials are untouched.
  apply_hetero_radios(params, *topo.medium);

  TrialResult result = run_to_completion(params, topo, tracker, [&] {
    StateSample s;
    for (const auto& p : downloaders) {
      s.state_bytes += p->state_bytes();
      s.knowledge_bytes += p->knowledge_bytes();
    }
    for (const auto& f : forwarders) s.state_bytes += f->state_bytes();
    return s;
  });

  uint64_t forwards = 0;
  uint64_t timeouts = 0;
  for (const auto& f : forwarders) {
    forwards += f->strategy().forwards();
    timeouts += f->strategy().relay_timeouts();
  }
  result.forward_accuracy =
      forwards == 0 ? 0.0
                    : 1.0 - static_cast<double>(timeouts) /
                                static_cast<double>(forwards);
  return result;
}

}  // namespace dapes::harness
