/// @file
/// Pluggable named trace sinks.
///
/// A sink decides two things: how much each per-node emission buffer
/// retains while the trial runs (the ring sink's bounded-memory cap, the
/// file sink's "keep everything", the null sink's "keep nothing"), and
/// what happens to the canonically merged trace at flush time (write the
/// DTRC file, or drop it). Sinks are resolved by well-known name
/// (events.hpp `TraceSinkNames`) through a process-wide factory registry
/// pre-populated with the built-ins — the Envoy named-extension idiom —
/// so a test or embedder can register additional sinks without touching
/// the tracer.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "trace/format.hpp"
#include "trace/record.hpp"

namespace dapes::trace {

/// Retention + flush policy of one configured trace (see file comment).
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Per-slot record retention cap: 0 = keep nothing (count only),
  /// SIZE_MAX = unbounded. Beyond the cap the tracer drops the oldest
  /// record of that slot (and counts the drop).
  virtual size_t buffer_capacity(const TraceConfig& config) const = 0;

  /// Consume the canonically merged trace at flush time. May throw
  /// (e.g. on an unwritable path); the tracer propagates.
  virtual void write(const TraceConfig& config,
                     const TraceData& trace) const = 0;
};

/// Process-wide sink factory registry keyed by well-known name.
class TraceSinkRegistry {
 public:
  /// Builds a sink for @p config (factories may validate it and throw
  /// std::invalid_argument — e.g. the file sink requires a path).
  using Factory =
      std::function<std::unique_ptr<TraceSink>(const TraceConfig&)>;

  /// The registry, pre-populated with the ring/file/null built-ins.
  static TraceSinkRegistry& instance();

  /// Register an additional sink. Throws std::invalid_argument on a
  /// duplicate name. Not thread-safe; register during startup.
  void register_factory(const std::string& name, Factory factory);

  /// Instantiate the sink named by @p config.sink. Throws
  /// std::invalid_argument on an unknown name.
  std::unique_ptr<TraceSink> create(const TraceConfig& config) const;

  /// Registered sink names, sorted (diagnostics / error messages).
  std::vector<std::string> names() const;

 private:
  TraceSinkRegistry();

  std::vector<std::pair<std::string, Factory>> factories_;
};

}  // namespace dapes::trace
