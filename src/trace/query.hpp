/// @file
/// Query operations over parsed traces: the library half of the `trace`
/// CLI (tools/trace_cli.cpp), kept here so the round-trip and diff test
/// suites exercise exactly the code the tool ships.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "trace/format.hpp"

namespace dapes::trace {

/// Record filter for `trace dump`. Unset fields match everything.
struct DumpFilter {
  std::optional<uint32_t> node;        ///< subject node
  std::optional<uint16_t> type;        ///< stored event-type id
  std::optional<std::string> name_prefix;  ///< URI prefix ("/a/b" style)
  std::optional<int64_t> t_from_us;    ///< inclusive window start
  std::optional<int64_t> t_to_us;      ///< exclusive window end

  /// True when @p r passes every set field (name_prefix is matched on
  /// component boundaries against @p trace's dictionary; records whose
  /// hash is not in the dictionary never match a prefix filter).
  bool matches(const TraceData& trace, const Record& r) const;
};

/// Render one record as the CLI's one-line text form.
std::string format_record(const TraceData& trace, const Record& r);

/// Print every record passing @p filter to @p out; returns the number
/// printed.
size_t dump_trace(const TraceData& trace, const DumpFilter& filter,
                  std::FILE* out);

/// Per-type aggregate for `trace stats`.
struct TypeStats {
  uint16_t type = 0;     ///< stored type id
  std::string name;      ///< well-known name from the embedded table
  uint64_t count = 0;    ///< records of this type
  double rate_hz = 0.0;  ///< count / trace time span (0 for empty spans)
};

/// Whole-trace aggregates for `trace stats`.
struct TraceStats {
  uint64_t records = 0;        ///< records kept in the file
  uint64_t emitted = 0;        ///< records emitted by the run
  uint64_t dropped = 0;        ///< ring-eviction drops
  int64_t t_first_us = 0;      ///< first record time (0 when empty)
  int64_t t_last_us = 0;       ///< last record time (0 when empty)
  size_t nodes_seen = 0;       ///< distinct subject nodes
  std::vector<TypeStats> by_type;  ///< per-type counts, descending count
};

/// Compute per-type counts/rates and whole-trace aggregates.
TraceStats compute_stats(const TraceData& trace);

/// Print @p stats as the CLI's stats report.
void write_stats(const TraceStats& stats, std::FILE* out);

/// First-divergence comparison for `trace diff`.
struct DiffResult {
  bool identical = false;  ///< true when both record sequences match
  /// Index of the first divergent record (== min(count_a, count_b) when
  /// one trace is a strict prefix of the other).
  size_t index = 0;
  std::optional<Record> a;  ///< record at index in A (unset past its end)
  std::optional<Record> b;  ///< record at index in B (unset past its end)
  size_t count_a = 0;       ///< records in A
  size_t count_b = 0;       ///< records in B
};

/// Compare two traces record-by-record in canonical order.
DiffResult diff_traces(const TraceData& a, const TraceData& b);

/// Print the first-divergence report (or "identical") to @p out.
void write_diff(const TraceData& a, const TraceData& b, const DiffResult& d,
                std::FILE* out);

}  // namespace dapes::trace
