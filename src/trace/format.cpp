#include "trace/format.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace dapes::trace {

namespace {

constexpr char kMagic[4] = {'D', 'T', 'R', 'C'};
constexpr char kEndMagic[4] = {'D', 'E', 'N', 'D'};
constexpr uint8_t kVersion = 1;

[[noreturn]] void malformed(const char* what, size_t pos) {
  throw std::runtime_error("trace: malformed file (" + std::string(what) +
                           " at byte " + std::to_string(pos) + ")");
}

void put_string(std::string& out, const std::string& s) {
  put_varint(out, s.size());
  out.append(s);
}

std::string get_string(const std::string& data, size_t& pos) {
  const uint64_t len = get_varint(data, pos);
  if (len > data.size() - pos) malformed("string length", pos);
  std::string s = data.substr(pos, len);
  pos += len;
  return s;
}

}  // namespace

const std::string* TraceData::name_of(uint64_t hash) const {
  auto it = std::lower_bound(
      names.begin(), names.end(), hash,
      [](const auto& entry, uint64_t h) { return entry.first < h; });
  if (it == names.end() || it->first != hash) return nullptr;
  return &it->second;
}

std::string TraceData::type_name(uint16_t type) const {
  for (const auto& [id, name] : types) {
    if (id == type) return name;
  }
  return "?";
}

void put_varint(std::string& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

uint64_t get_varint(const std::string& data, size_t& pos) {
  uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (pos >= data.size()) malformed("truncated varint", pos);
    const uint8_t byte = static_cast<uint8_t>(data[pos++]);
    if (shift == 63 && (byte & 0x7e) != 0) malformed("varint overflow", pos);
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
    if (shift > 63) malformed("varint overflow", pos);
  }
}

std::string encode_trace(const TraceData& trace) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  out.push_back(static_cast<char>(kVersion));

  put_varint(out, trace.types.size());
  for (const auto& [id, name] : trace.types) {
    put_varint(out, id);
    put_string(out, name);
  }

  put_varint(out, trace.dropped_per_slot.size());

  put_varint(out, trace.records.size());
  int64_t prev_t = 0;
  for (const Record& r : trace.records) {
    if (r.t_us < prev_t) {
      throw std::runtime_error(
          "trace: records not in canonical (nondecreasing time) order");
    }
    put_varint(out, static_cast<uint64_t>(r.t_us - prev_t));
    prev_t = r.t_us;
    put_varint(out, r.node == kNoNode ? 0 : uint64_t{r.node} + 1);
    put_varint(out, r.type);
    put_varint(out, r.name_hash);
    put_varint(out, r.narg);
    for (uint16_t i = 0; i < r.narg; ++i) put_varint(out, r.args[i]);
  }

  put_varint(out, trace.names.size());
  for (const auto& [hash, uri] : trace.names) {
    put_varint(out, hash);
    put_string(out, uri);
  }

  for (uint64_t d : trace.dropped_per_slot) put_varint(out, d);
  put_varint(out, trace.total_emitted);

  out.append(kEndMagic, sizeof(kEndMagic));
  return out;
}

TraceData decode_trace(const std::string& bytes) {
  size_t pos = 0;
  if (bytes.size() < sizeof(kMagic) + 1 ||
      bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    malformed("bad magic", 0);
  }
  pos = sizeof(kMagic);
  const uint8_t version = static_cast<uint8_t>(bytes[pos++]);
  if (version != kVersion) malformed("unsupported version", pos);

  TraceData trace;
  const uint64_t type_count = get_varint(bytes, pos);
  if (type_count > 4096) malformed("type table too large", pos);
  trace.types.reserve(type_count);
  for (uint64_t i = 0; i < type_count; ++i) {
    const uint64_t id = get_varint(bytes, pos);
    if (id > UINT16_MAX) malformed("type id out of range", pos);
    trace.types.emplace_back(static_cast<uint16_t>(id),
                             get_string(bytes, pos));
  }

  const uint64_t slot_count = get_varint(bytes, pos);

  const uint64_t record_count = get_varint(bytes, pos);
  trace.records.reserve(
      std::min<uint64_t>(record_count, bytes.size() / 4 + 16));
  int64_t prev_t = 0;
  for (uint64_t i = 0; i < record_count; ++i) {
    Record r;
    const uint64_t dt = get_varint(bytes, pos);
    if (dt > static_cast<uint64_t>(INT64_MAX - prev_t)) {
      malformed("time overflow", pos);
    }
    r.t_us = prev_t + static_cast<int64_t>(dt);
    prev_t = r.t_us;
    const uint64_t node_plus1 = get_varint(bytes, pos);
    if (node_plus1 > uint64_t{kNoNode}) malformed("node out of range", pos);
    r.node = node_plus1 == 0 ? kNoNode : static_cast<uint32_t>(node_plus1 - 1);
    const uint64_t type = get_varint(bytes, pos);
    if (type > UINT16_MAX) malformed("type out of range", pos);
    r.type = static_cast<uint16_t>(type);
    r.name_hash = get_varint(bytes, pos);
    const uint64_t narg = get_varint(bytes, pos);
    if (narg > 3) malformed("too many args", pos);
    r.narg = static_cast<uint16_t>(narg);
    for (uint16_t a = 0; a < r.narg; ++a) r.args[a] = get_varint(bytes, pos);
    trace.records.push_back(r);
  }

  const uint64_t name_count = get_varint(bytes, pos);
  trace.names.reserve(
      std::min<uint64_t>(name_count, bytes.size() / 2 + 16));
  uint64_t prev_hash = 0;
  for (uint64_t i = 0; i < name_count; ++i) {
    const uint64_t hash = get_varint(bytes, pos);
    if (i > 0 && hash <= prev_hash) malformed("name dict not sorted", pos);
    prev_hash = hash;
    trace.names.emplace_back(hash, get_string(bytes, pos));
  }

  if (slot_count > bytes.size()) malformed("slot count", pos);
  trace.dropped_per_slot.resize(slot_count);
  for (uint64_t i = 0; i < slot_count; ++i) {
    trace.dropped_per_slot[i] = get_varint(bytes, pos);
  }
  trace.total_emitted = get_varint(bytes, pos);

  if (bytes.size() - pos != sizeof(kEndMagic) ||
      bytes.compare(pos, sizeof(kEndMagic), kEndMagic, sizeof(kEndMagic)) !=
          0) {
    malformed("bad end marker", pos);
  }
  return trace;
}

void write_trace_file(const std::string& path, const TraceData& trace) {
  const std::string bytes = encode_trace(trace);
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (f == nullptr) {
    throw std::runtime_error("trace: cannot open output file " + path);
  }
  if (std::fwrite(bytes.data(), 1, bytes.size(), f.get()) != bytes.size()) {
    throw std::runtime_error("trace: short write to " + path);
  }
}

TraceData read_trace_file(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (f == nullptr) {
    throw std::runtime_error("trace: cannot open trace file " + path);
  }
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0) {
    bytes.append(buf, n);
  }
  if (std::ferror(f.get())) {
    throw std::runtime_error("trace: read error on " + path);
  }
  return decode_trace(bytes);
}

}  // namespace dapes::trace
