#include "trace/sinks.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "trace/events.hpp"

namespace dapes::trace {

namespace {

/// Bounded default: per-node rings of config.ring_capacity records,
/// written to config.path at flush when a path is set.
class RingSink : public TraceSink {
 public:
  size_t buffer_capacity(const TraceConfig& config) const override {
    return config.ring_capacity;
  }
  void write(const TraceConfig& config,
             const TraceData& trace) const override {
    if (!config.path.empty()) write_trace_file(config.path, trace);
  }
};

/// Unbounded buffers, always written to config.path at flush.
class FileSink : public TraceSink {
 public:
  size_t buffer_capacity(const TraceConfig&) const override {
    return std::numeric_limits<size_t>::max();
  }
  void write(const TraceConfig& config,
             const TraceData& trace) const override {
    write_trace_file(config.path, trace);
  }
};

/// Count-only: nothing retained, nothing written (overhead probes and
/// "tracing on but I only want the stats counters" runs).
class NullSink : public TraceSink {
 public:
  size_t buffer_capacity(const TraceConfig&) const override { return 0; }
  void write(const TraceConfig&, const TraceData&) const override {}
};

}  // namespace

TraceSinkRegistry::TraceSinkRegistry() {
  const auto& names = TraceSinkNames::get();
  register_factory(std::string(names.kRing), [](const TraceConfig&) {
    return std::make_unique<RingSink>();
  });
  register_factory(std::string(names.kFile), [](const TraceConfig& config) {
    if (config.path.empty()) {
      throw std::invalid_argument(
          "trace: the file sink requires a path (\"file:<path>\")");
    }
    return std::make_unique<FileSink>();
  });
  register_factory(std::string(names.kNull), [](const TraceConfig&) {
    return std::make_unique<NullSink>();
  });
}

TraceSinkRegistry& TraceSinkRegistry::instance() {
  static TraceSinkRegistry* registry = new TraceSinkRegistry();
  return *registry;
}

void TraceSinkRegistry::register_factory(const std::string& name,
                                         Factory factory) {
  for (const auto& [existing, fn] : factories_) {
    if (existing == name) {
      throw std::invalid_argument("trace: duplicate sink name \"" + name +
                                  "\"");
    }
  }
  factories_.emplace_back(name, std::move(factory));
}

std::unique_ptr<TraceSink> TraceSinkRegistry::create(
    const TraceConfig& config) const {
  for (const auto& [name, factory] : factories_) {
    if (name == config.sink) return factory(config);
  }
  std::string known;
  for (const std::string& name : names()) {
    if (!known.empty()) known += ", ";
    known += name;
  }
  throw std::invalid_argument("trace: unknown sink \"" + config.sink +
                              "\" (known: " + known + ")");
}

std::vector<std::string> TraceSinkRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, fn] : factories_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace dapes::trace
