#include "trace/trace.hpp"

#include <algorithm>
#include <stdexcept>

namespace dapes::trace {

Tracer::Tracer(TraceConfig config, std::function<int64_t()> clock)
    : config_(std::move(config)), clock_(std::move(clock)) {
  if (!clock_) {
    throw std::invalid_argument("Tracer: a clock is required");
  }
  sink_ = TraceSinkRegistry::instance().create(config_);
  capacity_ = sink_->buffer_capacity(config_);
  slots_.resize(1);  // slot 0: unattributed emissions
}

void Tracer::ensure_node(uint32_t node) {
  const size_t want = static_cast<size_t>(node) + 2;
  if (slots_.size() < want) slots_.resize(want);
}

Record Tracer::make_record(EventType type, uint32_t subject,
                           uint64_t name_hash,
                           std::initializer_list<uint64_t> args) const {
  Record r;
  r.t_us = clock_();
  r.node = subject;
  r.type = static_cast<uint16_t>(type);
  r.name_hash = name_hash;
  for (uint64_t a : args) {
    if (r.narg >= 3) break;
    r.args[r.narg++] = a;
  }
  return r;
}

Tracer::Slot& Tracer::slot_for_context() {
  const uint32_t node = detail::t_node;
  if (node == kNoNode) return slots_[0];
  const size_t index = static_cast<size_t>(node) + 1;
  // An unregistered node (no ensure_node) falls back to the unattributed
  // slot rather than growing the table, which workers may be indexing.
  return index < slots_.size() ? slots_[index] : slots_[0];
}

void Tracer::append(const Record& r, const std::function<std::string()>* uri) {
  Slot& slot = slot_for_context();
  ++slot.emitted;
  if (uri != nullptr && r.name_hash != 0 && slot.dict.size() < kDictCap) {
    slot.dict.try_emplace(r.name_hash, (*uri)());
  }
  if (capacity_ == 0) {
    ++slot.dropped;
    return;
  }
  if (slot.records.size() < capacity_) {
    slot.records.push_back(r);
    return;
  }
  // Ring full: overwrite the oldest record in place.
  slot.records[slot.head] = r;
  slot.head = (slot.head + 1) % slot.records.size();
  ++slot.dropped;
}

TraceData Tracer::snapshot() const {
  TraceData out;
  const auto& registry = EventTypeRegistry::get();
  out.types.reserve(kEventTypeCount);
  for (size_t i = 0; i < kEventTypeCount; ++i) {
    const auto t = static_cast<EventType>(i);
    out.types.emplace_back(static_cast<uint16_t>(i),
                           std::string(registry.name(t)));
  }

  // Linearize every slot (rings start at head), tagging each record with
  // its slot and per-slot index — the canonical tie-break.
  struct Tagged {
    uint32_t slot;
    uint32_t index;
  };
  std::vector<Record> records;
  std::vector<Tagged> tags;
  size_t total = 0;
  for (const Slot& slot : slots_) total += slot.records.size();
  records.reserve(total);
  tags.reserve(total);
  for (size_t si = 0; si < slots_.size(); ++si) {
    const Slot& slot = slots_[si];
    const size_t n = slot.records.size();
    for (size_t k = 0; k < n; ++k) {
      records.push_back(slot.records[(slot.head + k) % n]);
      tags.push_back({static_cast<uint32_t>(si), static_cast<uint32_t>(k)});
    }
  }
  std::vector<uint32_t> order(records.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (records[a].t_us != records[b].t_us) {
      return records[a].t_us < records[b].t_us;
    }
    if (tags[a].slot != tags[b].slot) return tags[a].slot < tags[b].slot;
    return tags[a].index < tags[b].index;
  });
  out.records.reserve(records.size());
  for (uint32_t i : order) out.records.push_back(records[i]);

  // Merge the slot dictionaries, sorted by hash. On a cross-slot hash
  // collision (distinct URIs, same FNV hash) keep the lexicographically
  // smallest URI so the merged dictionary is deterministic.
  for (const Slot& slot : slots_) {
    for (const auto& [hash, name] : slot.dict) {
      out.names.emplace_back(hash, name);
    }
  }
  std::sort(out.names.begin(), out.names.end());
  out.names.erase(
      std::unique(out.names.begin(), out.names.end(),
                  [](const auto& a, const auto& b) { return a.first == b.first; }),
      out.names.end());

  out.dropped_per_slot.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    out.dropped_per_slot.push_back(slot.dropped);
  }
  out.total_emitted = emitted();
  return out;
}

void Tracer::flush() {
  if (flushed_) return;
  flushed_ = true;
  sink_->write(config_, snapshot());
}

uint64_t Tracer::emitted() const {
  uint64_t n = 0;
  for (const Slot& slot : slots_) n += slot.emitted;
  return n;
}

uint64_t Tracer::dropped() const {
  uint64_t n = 0;
  for (const Slot& slot : slots_) n += slot.dropped;
  return n;
}

uint64_t Tracer::held() const {
  uint64_t n = 0;
  for (const Slot& slot : slots_) n += slot.records.size();
  return n;
}

}  // namespace dapes::trace
