/// @file
/// The per-trial Tracer: thread-local installation, per-node emission
/// buffers, and the canonical merge that makes trace content bit-identical
/// across `--jobs` and `--trial-threads`.
///
/// Access pattern: a trial installs its Tracer into thread-local storage
/// (`TrialScope`), and instrumented code — scheduler, medium, tables,
/// strategies — emits through `trace::active()` without any constructor
/// plumbing. When no tracer is installed (the default), every potential
/// emission is one thread-local load and branch; the DAPES_TRACE_* macros
/// below are that guarded fast path.
///
/// Determinism discipline (DESIGN.md "Event trace architecture"):
///  * Emissions land in per-slot buffers — slot 0 for unattributed
///    (coordinator) events, slot n+1 for events emitted under
///    `NodeScope(n)`. A worker thread of the phase-parallel engine only
///    ever appends to the slots of the nodes whose items it runs, and the
///    per-node item chains preserve item order, so each slot's record
///    sequence is identical to what the serial engine produces.
///  * The canonical merge orders records by (sim time, slot, per-slot
///    emission index) — a total order over content that is invariant to
///    worker placement and lane count.
///  * Records never contain scheduler event ids (pre-assigned per phase
///    slot, they differ between engines by design) and cancel records
///    carry no success flag (the staged cancel path answers
///    optimistically).
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/events.hpp"
#include "trace/format.hpp"
#include "trace/record.hpp"
#include "trace/sinks.hpp"

namespace dapes::trace {

/// Collects one trial's events into per-slot buffers and hands the
/// canonically merged trace to the configured sink at flush.
class Tracer {
 public:
  /// Builds the named sink from @p config (throws std::invalid_argument
  /// on an unknown sink name, or a sink-specific config error). @p clock
  /// supplies the current simulated time in microseconds — typically
  /// `[&sched] { return sched.now().us; }`.
  Tracer(TraceConfig config, std::function<int64_t()> clock);

  Tracer(const Tracer&) = delete;             ///< not copyable
  Tracer& operator=(const Tracer&) = delete;  ///< not copyable

  /// Pre-size the slot table for @p node (slot n+1). Call at node
  /// registration time, never during a parallel phase: workers index the
  /// slot table concurrently and must never see it grow.
  void ensure_node(uint32_t node);

  /// Emit one event. @p subject is the node the event is about (kNoNode
  /// for none); the *buffer* the record lands in is chosen by the
  /// thread's NodeScope context, which is what keeps concurrent emission
  /// race-free. At most 3 args are recorded.
  void emit(EventType type, uint32_t subject,
            std::initializer_list<uint64_t> args) {
    append(make_record(type, subject, 0, args), nullptr);
  }

  /// Emit one event about a name. @p name needs `hash()` and `to_uri()`
  /// (ndn::Name satisfies both); the URI is captured into the emitting
  /// slot's dictionary on the hash's first appearance, so `trace dump`
  /// can render and filter names without storing them per record.
  template <typename NameT>
  void emit_named(EventType type, uint32_t subject, const NameT& name,
                  std::initializer_list<uint64_t> args) {
    Record r = make_record(type, subject,
                           static_cast<uint64_t>(name.hash()), args);
    const std::function<std::string()> uri = [&name] { return name.to_uri(); };
    append(r, &uri);
  }

  /// Merge every slot's records into canonical order (see file comment)
  /// without consuming them. Also assembles the merged name dictionary,
  /// the embedded type table and the per-slot drop counts.
  TraceData snapshot() const;

  /// Hand the canonical merge to the sink (idempotent: the first call
  /// writes, later calls are no-ops). Propagates sink errors.
  void flush();

  /// Records emitted so far (kept + dropped), summed over slots.
  uint64_t emitted() const;
  /// Records dropped to ring eviction so far, summed over slots.
  uint64_t dropped() const;
  /// Records currently held across all slots.
  uint64_t held() const;

  /// The trial's trace configuration.
  const TraceConfig& config() const { return config_; }

 private:
  /// One emission slot: an optionally ring-bounded record sequence plus
  /// the slot-local name dictionary. Only ever appended to by the one
  /// thread currently running that slot's node (or the coordinator for
  /// slot 0), so no synchronization is needed.
  struct Slot {
    std::vector<Record> records;
    /// Ring start when bounded (records is used as a circular buffer
    /// once full); 0 while filling or unbounded.
    size_t head = 0;
    uint64_t emitted = 0;
    uint64_t dropped = 0;
    std::unordered_map<uint64_t, std::string> dict;
  };

  Record make_record(EventType type, uint32_t subject, uint64_t name_hash,
                     std::initializer_list<uint64_t> args) const;
  void append(const Record& r, const std::function<std::string()>* uri);
  Slot& slot_for_context();

  TraceConfig config_;
  std::function<int64_t()> clock_;
  std::unique_ptr<TraceSink> sink_;
  size_t capacity_ = 0;
  /// Slot 0 = unattributed; slot n+1 = node n. Sized by ensure_node on
  /// the coordinator only — never grown during a parallel phase.
  std::vector<Slot> slots_;
  bool flushed_ = false;

  /// Per-slot dictionary cap: the slot stops learning new names past it
  /// (records keep their hashes; dump renders them unresolved). Purely a
  /// memory bound — deterministic, since per-slot emission order is.
  static constexpr size_t kDictCap = 65536;
};

namespace detail {
/// The installed tracer of the calling thread (null = tracing off).
inline thread_local Tracer* t_tracer = nullptr;
/// The calling thread's node context (selects the emission slot).
inline thread_local uint32_t t_node = kNoNode;
}  // namespace detail

/// The calling thread's tracer; null when tracing is disabled — the one
/// branch every instrumentation site pays when off.
inline Tracer* active() { return detail::t_tracer; }

/// The calling thread's node context (kNoNode outside any NodeScope).
inline uint32_t context_node() { return detail::t_node; }

/// RAII installation of a trial's tracer into this thread (the trial
/// thread for its whole run; a worker thread for the duration of a
/// phase-parallel item chain). Resets the node context; restores both on
/// destruction. @p tracer may be null (an explicit "tracing off" scope).
class TrialScope {
 public:
  /// Install @p tracer on this thread.
  explicit TrialScope(Tracer* tracer)
      : prev_tracer_(detail::t_tracer), prev_node_(detail::t_node) {
    detail::t_tracer = tracer;
    detail::t_node = kNoNode;
  }
  ~TrialScope() {
    detail::t_tracer = prev_tracer_;
    detail::t_node = prev_node_;
  }
  TrialScope(const TrialScope&) = delete;             ///< not copyable
  TrialScope& operator=(const TrialScope&) = delete;  ///< not copyable

 private:
  Tracer* prev_tracer_;
  uint32_t prev_node_;
};

/// RAII node context: emissions inside the scope land in @p node's slot
/// (and default their subject to it). A no-op when tracing is off, and
/// entering kNoNode keeps the current context (so an unbound forwarder's
/// pipeline scope cannot clobber the medium's receiver scope).
class NodeScope {
 public:
  /// Enter @p node's context (if a tracer is installed).
  explicit NodeScope(uint32_t node) {
    if (detail::t_tracer != nullptr && node != kNoNode) {
      armed_ = true;
      prev_ = detail::t_node;
      detail::t_node = node;
    }
  }
  ~NodeScope() {
    if (armed_) detail::t_node = prev_;
  }
  NodeScope(const NodeScope&) = delete;             ///< not copyable
  NodeScope& operator=(const NodeScope&) = delete;  ///< not copyable

 private:
  bool armed_ = false;
  uint32_t prev_ = kNoNode;
};

}  // namespace dapes::trace

/// Emit an event with an explicit subject node; zero-cost (one TLS load +
/// branch) when tracing is off.
#define DAPES_TRACE_EVENT(type_, subject_, ...)                       \
  do {                                                                \
    if (::dapes::trace::Tracer* dapes_tr_ = ::dapes::trace::active()) \
      dapes_tr_->emit((type_), (subject_), {__VA_ARGS__});            \
  } while (0)

/// Emit an event about the current context node (NodeScope).
#define DAPES_TRACE_HERE(type_, ...)                                  \
  do {                                                                \
    if (::dapes::trace::Tracer* dapes_tr_ = ::dapes::trace::active()) \
      dapes_tr_->emit((type_), ::dapes::trace::context_node(),        \
                      {__VA_ARGS__});                                 \
  } while (0)

/// Emit a named event (subject = current context node).
#define DAPES_TRACE_NAMED(type_, name_, ...)                           \
  do {                                                                 \
    if (::dapes::trace::Tracer* dapes_tr_ = ::dapes::trace::active())  \
      dapes_tr_->emit_named((type_), ::dapes::trace::context_node(),   \
                            (name_), {__VA_ARGS__});                   \
  } while (0)
