/// @file
/// The DTRC binary trace format: canonical merged records + embedded
/// event-type table + name dictionary.
///
/// Layout (all integers LEB128 varints unless noted):
///
///   "DTRC" magic, u8 version
///   type table:   count, then (id, name) pairs — the event-type registry
///                 frozen into the file, so readers never depend on the
///                 writer's enum layout
///   slot count:   number of emission buffers at flush (nodes + 1)
///   records:      count, then per record: time delta from the previous
///                 record (first record: absolute), node+1 (0 = none),
///                 type, name hash, narg, args
///   name dict:    count, then (hash, uri) pairs sorted by hash
///   drop counts:  per-slot ring-eviction drops, plus total emitted
///   "DEND" end marker
///
/// Records are stored in canonical merged order — nondecreasing time —
/// so the time-delta encoding is always nonnegative and the file is
/// byte-identical for any `--jobs` x `--trial-threads` combination
/// (the determinism contract the CI byte-diff enforces).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "trace/record.hpp"

namespace dapes::trace {

/// A fully parsed (or about-to-be-written) trace.
struct TraceData {
  /// Records in canonical merged order (nondecreasing t_us).
  std::vector<Record> records;
  /// Name dictionary: (hash, uri) sorted ascending by hash.
  std::vector<std::pair<uint64_t, std::string>> names;
  /// Event-type table embedded in the file: (id, well-known name).
  std::vector<std::pair<uint16_t, std::string>> types;
  /// Ring-eviction drops per emission slot (slot 0 = unattributed).
  std::vector<uint64_t> dropped_per_slot;
  /// Total records emitted (kept + dropped).
  uint64_t total_emitted = 0;

  /// Sum of dropped_per_slot.
  uint64_t total_dropped() const {
    uint64_t n = 0;
    for (uint64_t d : dropped_per_slot) n += d;
    return n;
  }

  /// Dictionary lookup; empty string when the hash is unknown (e.g. the
  /// per-slot dictionary cap was hit before this name's first record).
  const std::string* name_of(uint64_t hash) const;

  /// Well-known name of a stored type id via the embedded table ("?"
  /// when the id is absent).
  std::string type_name(uint16_t type) const;
};

/// Append @p v to @p out as a LEB128 varint (also used by the tests'
/// round-trip property suite).
void put_varint(std::string& out, uint64_t v);

/// Decode a LEB128 varint from @p data at @p pos, advancing it. Throws
/// std::runtime_error on truncation or a >64-bit encoding.
uint64_t get_varint(const std::string& data, size_t& pos);

/// Serialize @p trace into the DTRC byte layout.
std::string encode_trace(const TraceData& trace);

/// Parse a DTRC byte string. Throws std::runtime_error with a position
/// hint on any malformed input.
TraceData decode_trace(const std::string& bytes);

/// Write @p trace to @p path (encode + one fwrite). Throws
/// std::runtime_error when the file cannot be opened or written.
void write_trace_file(const std::string& path, const TraceData& trace);

/// Read and parse the trace at @p path. Throws std::runtime_error on I/O
/// or format errors.
TraceData read_trace_file(const std::string& path);

}  // namespace dapes::trace
