/// @file
/// Event-type registry of the structured binary trace (DESIGN.md "Event
/// trace architecture").
///
/// Every traceable event has a fixed numeric id and a dotted well-known
/// name ("medium.rx", "pit.satisfy", ...). The registry is a
/// const-singleton built once on first use — the Envoy well-known-names
/// idiom — so event names live in exactly one place: the emitters, the
/// binary writer (which embeds the table in the file header) and the
/// `trace` CLI all resolve through it. Ids are stable within a file via
/// the embedded table, so a reader never depends on this enum's layout
/// matching the writer's.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace dapes::trace {

/// Compact numeric id of a traceable event. Values are contiguous so the
/// registry can be a flat array and per-type stats a flat counter vector.
enum class EventType : uint16_t {
  // Medium: one tx per frame put on the air, one deliver per frame
  // leaving it, and one outcome per (frame, in-coverage receiver).
  kMediumTx = 0,         ///< frame on the air; args: tx id, payload bytes
  kMediumDeliver,        ///< frame leaves the air; args: tx id
  kMediumRx,             ///< receiver got the frame; args: tx id
  kMediumDropLoss,       ///< channel/loss drop; args: tx id
  kMediumDropCollision,  ///< collision drop; args: tx id
  kMediumCapture,        ///< survived >=1 interferer; args: tx id, count
  // Scheduler: the event-loop arcs. Fire is only traced for untagged
  // events — tagged ones are the medium's internal delivery batching,
  // already covered by medium.deliver (and never individually fired when
  // a batch claims them).
  kSchedSchedule,  ///< event scheduled; args: target time (us)
  kSchedCancel,    ///< cancel requested (no outcome arg; see trace.hpp)
  kSchedFire,      ///< untagged event fired
  // Content Store (the shared-NameTree fast tables; the retained
  // ndn::ref reference tables are deliberately untraced).
  kCsInsert,  ///< insert or refresh; args: content bytes, refreshed flag
  kCsHit,     ///< lookup served
  kCsMiss,    ///< lookup missed
  kCsEvict,   ///< LRU eviction
  kCsExpire,  ///< freshness expiry noticed (entry erased)
  // Pending Interest Table.
  kPitInsert,     ///< new entry
  kPitAggregate,  ///< Interest merged into an existing entry
  kPitSatisfy,    ///< entry satisfied by Data
  kPitExpire,     ///< entry timed out
  kPitLoopDrop,   ///< nonce-loop drop
  // Forwarding Information Base.
  kFibAdd,     ///< route added; args: face id
  kFibRemove,  ///< route removed; args: face id
  kFibHit,     ///< longest-prefix match; args: matched prefix depth
  kFibMiss,    ///< no route
  // DAPES strategy decisions (paper §V).
  kStratRelay,              ///< relay scheduled; args: delay (us)
  kStratSuppress,           ///< relay suppressed; args: reason (see names)
  kStratKnowledgeForward,   ///< knowledge says available -> forward
  kStratKnowledgeSuppress,  ///< knowledge says missing -> suppress
  kStratTimeout,            ///< relayed Interest timed out
  // Crypto verify-cache layer (DESIGN.md "Crypto engine & verify cache").
  /// Verify-cache commit for one delivered Data frame; args: cached flag
  /// (1 = the frame's digest+verdict were already cached at commit time,
  /// 0 = freshly computed by the prewarm), frame bytes. Emitted on the
  /// coordinator right after medium.deliver in both the serial and the
  /// phase-parallel path, with the flag decided at commit time, so the
  /// merged trace is bit-identical across --trial-threads values.
  kCryptoPrewarm,
  // Open membership / fault injection (DESIGN.md "Fault injection &
  // open membership"). All emitted on the coordinator — membership never
  // changes inside a phase — so they are engine-invariant by position.
  kNodeJoin,     ///< node became live; args: 1 = revive/admission, 0 = setup
  kNodeLeave,    ///< node retired from the medium
  kFaultInject,  ///< fault plan event applied; args: FaultKind
  kPeerLied,     ///< adversary advertised a false bitmap; args: claimed, real
  // Channel realism stack (DESIGN.md "Channel realism round two").
  /// Bursty-erasure link state observed at a reception decision; args:
  /// tx id, state (0 good / 1 bad). Emitted on the coordinator in
  /// decide_one's canonical order, so trace content stays invariant
  /// across engine modes; only models running a burst process emit it.
  kChannelState,

  kCount  ///< number of event types (not a valid event)
};

/// Number of registered event types.
inline constexpr size_t kEventTypeCount =
    static_cast<size_t>(EventType::kCount);

/// Meyers-style const singleton: one immutable instance per type, built
/// on first use (the Envoy ConstSingleton idiom for well-known names).
template <typename T>
class ConstSingleton {
 public:
  /// The shared immutable instance.
  static const T& get() {
    static const T* instance = new T();
    return *instance;
  }
};

/// The event-type table: id -> dotted well-known name. Access through
/// `EventTypeRegistry::get()`.
class EventTypeRegistryValues {
 public:
  /// Builds the id -> name table (called once by the singleton).
  EventTypeRegistryValues() {
    auto put = [this](EventType t, std::string_view name) {
      names_[static_cast<size_t>(t)] = name;
    };
    put(EventType::kMediumTx, "medium.tx");
    put(EventType::kMediumDeliver, "medium.deliver");
    put(EventType::kMediumRx, "medium.rx");
    put(EventType::kMediumDropLoss, "medium.drop_loss");
    put(EventType::kMediumDropCollision, "medium.drop_collision");
    put(EventType::kMediumCapture, "medium.capture");
    put(EventType::kSchedSchedule, "sched.schedule");
    put(EventType::kSchedCancel, "sched.cancel");
    put(EventType::kSchedFire, "sched.fire");
    put(EventType::kCsInsert, "cs.insert");
    put(EventType::kCsHit, "cs.hit");
    put(EventType::kCsMiss, "cs.miss");
    put(EventType::kCsEvict, "cs.evict");
    put(EventType::kCsExpire, "cs.expire");
    put(EventType::kPitInsert, "pit.insert");
    put(EventType::kPitAggregate, "pit.aggregate");
    put(EventType::kPitSatisfy, "pit.satisfy");
    put(EventType::kPitExpire, "pit.expire");
    put(EventType::kPitLoopDrop, "pit.loop_drop");
    put(EventType::kFibAdd, "fib.add");
    put(EventType::kFibRemove, "fib.remove");
    put(EventType::kFibHit, "fib.hit");
    put(EventType::kFibMiss, "fib.miss");
    put(EventType::kStratRelay, "strategy.relay");
    put(EventType::kStratSuppress, "strategy.suppress");
    put(EventType::kStratKnowledgeForward, "strategy.knowledge_forward");
    put(EventType::kStratKnowledgeSuppress, "strategy.knowledge_suppress");
    put(EventType::kStratTimeout, "strategy.timeout");
    put(EventType::kCryptoPrewarm, "crypto.prewarm");
    put(EventType::kNodeJoin, "node.join");
    put(EventType::kNodeLeave, "node.leave");
    put(EventType::kFaultInject, "fault.inject");
    put(EventType::kPeerLied, "peer.lied");
    put(EventType::kChannelState, "channel.state");
  }

  /// Well-known name of @p t ("?" for an out-of-range id, which only a
  /// corrupt file can produce).
  std::string_view name(EventType t) const {
    const size_t i = static_cast<size_t>(t);
    return i < kEventTypeCount ? names_[i] : std::string_view("?");
  }

  /// Reverse lookup by well-known name; kCount when unknown.
  EventType find(std::string_view name) const {
    for (size_t i = 0; i < kEventTypeCount; ++i) {
      if (names_[i] == name) return static_cast<EventType>(i);
    }
    return EventType::kCount;
  }

 private:
  std::array<std::string_view, kEventTypeCount> names_{};
};

/// The const-singleton event-type registry.
using EventTypeRegistry = ConstSingleton<EventTypeRegistryValues>;

/// Well-known sink names (the pluggable sink registry, sinks.hpp).
/// Access through `TraceSinkNames::get()`.
class TraceSinkNameValues {
 public:
  /// Bounded per-node ring buffers (the default): memory stays capped,
  /// the newest `ring_capacity` records per node survive to the flush.
  std::string_view kRing = "ring";
  /// Unbounded in-memory buffers written to the output path at flush.
  std::string_view kFile = "file";
  /// Count-only: records are tallied and discarded (overhead probes).
  std::string_view kNull = "null";
};

/// The const-singleton sink-name registry.
using TraceSinkNames = ConstSingleton<TraceSinkNameValues>;

}  // namespace dapes::trace
