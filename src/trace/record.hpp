/// @file
/// The in-memory trace record and the trace configuration knob.
///
/// A record is deliberately tiny and value-only: sim-time, the subject
/// node, the event type, an optional name hash (resolved to a URI through
/// the file's name dictionary, never stored inline) and up to three
/// varint payload arguments. Everything in it is deterministic across
/// `--jobs` and `--trial-threads` — scheduler event ids, which differ
/// between the serial and phase-parallel engines by design, are banned
/// from records (DESIGN.md "Event trace architecture").
#pragma once

#include <cstdint>
#include <string>

namespace dapes::trace {

/// `Record::node` value for events with no subject node (coordinator
/// emissions such as scheduler fires).
inline constexpr uint32_t kNoNode = 0xffffffffu;

/// One trace event. POD; compared field-wise by `trace diff`.
struct Record {
  int64_t t_us = 0;          ///< simulated time, microseconds
  uint32_t node = kNoNode;   ///< subject node, kNoNode when none
  uint16_t type = 0;         ///< EventType as stored in the file
  uint16_t narg = 0;         ///< number of valid entries in args
  uint64_t name_hash = 0;    ///< Name::hash() of the subject name, 0 = none
  uint64_t args[3] = {};     ///< event-specific payload (events.hpp)

  /// Field-wise equality (the `trace diff` comparison).
  friend bool operator==(const Record& a, const Record& b) {
    if (a.t_us != b.t_us || a.node != b.node || a.type != b.type ||
        a.narg != b.narg || a.name_hash != b.name_hash) {
      return false;
    }
    for (uint16_t i = 0; i < a.narg; ++i) {
      if (a.args[i] != b.args[i]) return false;
    }
    return true;
  }
};

/// Per-trial trace configuration, carried on `ScenarioParams::trace` and
/// parsed from the bench `--trace <sink>:<path>` flag.
struct TraceConfig {
  /// Sink name from the well-known registry ("ring", "file", "null");
  /// empty = tracing disabled (the default — zero records, zero
  /// overhead beyond one thread-local null check per potential event).
  std::string sink;
  /// Output path for the merged binary trace. Required by the file sink;
  /// optional for ring (empty = in-memory only); ignored by null.
  std::string path;
  /// Per-node record cap of the ring sink (drop-oldest beyond it).
  size_t ring_capacity = 16384;

  /// True when a sink is configured.
  bool enabled() const { return !sink.empty(); }
};

/// Copy of @p config with @p suffix appended to a non-empty output path.
/// Multi-trial runners use this to give every (cell, trial) its own
/// file — the suffix depends only on grid indices, never on thread
/// placement, so traced sweeps compose with `--jobs`.
inline TraceConfig with_path_suffix(const TraceConfig& config,
                                    const std::string& suffix) {
  TraceConfig out = config;
  if (!out.path.empty()) out.path += suffix;
  return out;
}

}  // namespace dapes::trace
