#include "trace/query.hpp"

#include <algorithm>
#include <cinttypes>
#include <unordered_map>
#include <unordered_set>

namespace dapes::trace {

namespace {

/// URI prefix match on component boundaries: "/a/b" matches "/a/b" and
/// "/a/b/c" but not "/a/bc". "/" matches every named record.
bool uri_has_prefix(const std::string& uri, const std::string& prefix) {
  if (prefix.empty() || prefix == "/") return true;
  if (uri.size() < prefix.size() ||
      uri.compare(0, prefix.size(), prefix) != 0) {
    return false;
  }
  return uri.size() == prefix.size() || uri[prefix.size()] == '/';
}

}  // namespace

bool DumpFilter::matches(const TraceData& trace, const Record& r) const {
  if (node && r.node != *node) return false;
  if (type && r.type != *type) return false;
  if (t_from_us && r.t_us < *t_from_us) return false;
  if (t_to_us && r.t_us >= *t_to_us) return false;
  if (name_prefix) {
    if (r.name_hash == 0) return false;
    const std::string* uri = trace.name_of(r.name_hash);
    if (uri == nullptr || !uri_has_prefix(*uri, *name_prefix)) return false;
  }
  return true;
}

std::string format_record(const TraceData& trace, const Record& r) {
  char head[96];
  std::snprintf(head, sizeof(head), "t=%.6f ",
                static_cast<double>(r.t_us) / 1e6);
  std::string out = head;
  if (r.node == kNoNode) {
    out += "node=-";
  } else {
    out += "node=" + std::to_string(r.node);
  }
  out += ' ';
  out += trace.type_name(r.type);
  if (r.name_hash != 0) {
    const std::string* uri = trace.name_of(r.name_hash);
    out += ' ';
    if (uri != nullptr) {
      out += *uri;
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "h:%016" PRIx64, r.name_hash);
      out += buf;
    }
  }
  for (uint16_t i = 0; i < r.narg && i < 3; ++i) {
    out += ' ';
    out += std::to_string(r.args[i]);
  }
  return out;
}

size_t dump_trace(const TraceData& trace, const DumpFilter& filter,
                  std::FILE* out) {
  size_t printed = 0;
  for (const Record& r : trace.records) {
    if (!filter.matches(trace, r)) continue;
    const std::string line = format_record(trace, r);
    std::fprintf(out, "%s\n", line.c_str());
    ++printed;
  }
  return printed;
}

TraceStats compute_stats(const TraceData& trace) {
  TraceStats stats;
  stats.records = trace.records.size();
  stats.emitted = trace.total_emitted;
  stats.dropped = trace.total_dropped();
  if (!trace.records.empty()) {
    stats.t_first_us = trace.records.front().t_us;
    stats.t_last_us = trace.records.back().t_us;
  }
  std::unordered_set<uint32_t> nodes;
  std::unordered_map<uint16_t, uint64_t> counts;
  for (const Record& r : trace.records) {
    if (r.node != kNoNode) nodes.insert(r.node);
    ++counts[r.type];
  }
  stats.nodes_seen = nodes.size();
  const int64_t span_us = stats.t_last_us - stats.t_first_us;
  stats.by_type.reserve(counts.size());
  for (const auto& [type, count] : counts) {
    TypeStats ts;
    ts.type = type;
    ts.name = trace.type_name(type);
    ts.count = count;
    if (span_us > 0) {
      ts.rate_hz = static_cast<double>(count) /
                   (static_cast<double>(span_us) / 1e6);
    }
    stats.by_type.push_back(std::move(ts));
  }
  std::sort(stats.by_type.begin(), stats.by_type.end(),
            [](const TypeStats& a, const TypeStats& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.name < b.name;
            });
  return stats;
}

void write_stats(const TraceStats& stats, std::FILE* out) {
  std::fprintf(out,
               "records %" PRIu64 " (emitted %" PRIu64 ", dropped %" PRIu64
               ")\n",
               stats.records, stats.emitted, stats.dropped);
  std::fprintf(out, "span t=%.6f .. t=%.6f (%zu nodes)\n",
               static_cast<double>(stats.t_first_us) / 1e6,
               static_cast<double>(stats.t_last_us) / 1e6, stats.nodes_seen);
  for (const TypeStats& ts : stats.by_type) {
    std::fprintf(out, "%-28s %10" PRIu64 "  %12.2f /s\n", ts.name.c_str(),
                 ts.count, ts.rate_hz);
  }
}

DiffResult diff_traces(const TraceData& a, const TraceData& b) {
  DiffResult d;
  d.count_a = a.records.size();
  d.count_b = b.records.size();
  const size_t n = std::min(d.count_a, d.count_b);
  for (size_t i = 0; i < n; ++i) {
    if (!(a.records[i] == b.records[i])) {
      d.index = i;
      d.a = a.records[i];
      d.b = b.records[i];
      return d;
    }
  }
  if (d.count_a != d.count_b) {
    // One trace is a strict prefix of the other.
    d.index = n;
    if (n < d.count_a) d.a = a.records[n];
    if (n < d.count_b) d.b = b.records[n];
    return d;
  }
  d.identical = true;
  d.index = n;
  return d;
}

void write_diff(const TraceData& a, const TraceData& b, const DiffResult& d,
                std::FILE* out) {
  if (d.identical) {
    std::fprintf(out, "identical: %zu records\n", d.count_a);
    return;
  }
  std::fprintf(out, "first divergence at record %zu (A has %zu, B has %zu)\n",
               d.index, d.count_a, d.count_b);
  if (d.a) {
    std::fprintf(out, "  A: %s\n", format_record(a, *d.a).c_str());
  } else {
    std::fprintf(out, "  A: <end of trace>\n");
  }
  if (d.b) {
    std::fprintf(out, "  B: %s\n", format_record(b, *d.b).c_str());
  } else {
    std::fprintf(out, "  B: <end of trace>\n");
  }
}

}  // namespace dapes::trace
