/// @file
/// SHA-NI single-stream SHA-256 compressor: the hardware sha256rnds2 /
/// sha256msg1 / sha256msg2 instruction sequence, the fastest single-buffer
/// path on CPUs that have it. Compiled with -msha -msse4.1 (the state
/// permutation uses pblendw); see CMakeLists.txt.
///
/// Register choreography follows the canonical Intel sequence: the state
/// lives as ABEF/CDGH pairs, four message registers rotate through the
/// 16-round schedule window, and each quad of rounds issues two
/// sha256rnds2 (low then high half of the round-constant vector).

#include "crypto/sha256_kernels.hpp"

#if DAPES_SHA256_X86

#include <immintrin.h>

namespace dapes::crypto::kernels {

void sha256_compress_shani(uint32_t* state, const uint8_t* blocks,
                           size_t count) {
  // Big-endian 32-bit word loads for the message schedule.
  const __m128i kMask =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  // state[] holds A..H; repack into the ABEF/CDGH layout rnds2 wants.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);          // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);    // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);      // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);           // CDGH

  for (size_t b = 0; b < count; ++b) {
    const uint8_t* block = blocks + 64 * b;
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;

    __m128i msgs[4];
    for (int q = 0; q < 16; ++q) {
      if (q < 4) {
        msgs[q] = _mm_shuffle_epi8(
            _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(block + 16 * q)),
            kMask);
      }
      __m128i msg = _mm_add_epi32(
          msgs[q & 3], _mm_loadu_si128(reinterpret_cast<const __m128i*>(
                           &kSha256K[4 * q])));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      if (q >= 3 && q < 15) {
        // Schedule the next quad's words: w[t] needs w[t-7] (the alignr
        // across the previous register) and the msg2 sigma fold.
        const __m128i cur = msgs[q & 3];
        const __m128i prev = msgs[(q + 3) & 3];
        __m128i& nxt = msgs[(q + 1) & 3];
        nxt = _mm_add_epi32(nxt, _mm_alignr_epi8(cur, prev, 4));
        nxt = _mm_sha256msg2_epu32(nxt, cur);
      }
      msg = _mm_shuffle_epi32(msg, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
      if (q >= 1 && q < 13) {
        msgs[(q + 3) & 3] =
            _mm_sha256msg1_epu32(msgs[(q + 3) & 3], msgs[q & 3]);
      }
    }

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
  }

  // Repack ABEF/CDGH back to A..H.
  tmp = _mm_shuffle_epi32(state0, 0x1B);       // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);    // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);           // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);              // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

}  // namespace dapes::crypto::kernels

#endif  // DAPES_SHA256_X86
