/// @file
/// SSSE3 4-wide multi-buffer SHA-256 kernel: four independent messages in
/// the four 32-bit lanes of an xmm register. Compiled with -mssse3 (see
/// CMakeLists.txt); the round logic lives in sha256_multi_impl.hpp.

#include "crypto/sha256_kernels.hpp"

#if DAPES_SHA256_X86

#include <immintrin.h>

#include "crypto/sha256_multi_impl.hpp"

namespace dapes::crypto::kernels {
namespace {

/// Vector traits over __m128i: 4 lanes of 32 bits.
struct V4 {
  __m128i v;

  static constexpr int kLanes = 4;

  static V4 set1(uint32_t x) { return {_mm_set1_epi32(static_cast<int>(x))}; }
  static V4 load(const uint32_t* p) {
    return {_mm_load_si128(reinterpret_cast<const __m128i*>(p))};
  }
  static void store(uint32_t* p, V4 x) {
    _mm_store_si128(reinterpret_cast<__m128i*>(p), x.v);
  }
  static V4 add(V4 a, V4 b) { return {_mm_add_epi32(a.v, b.v)}; }
  static V4 xor_(V4 a, V4 b) { return {_mm_xor_si128(a.v, b.v)}; }
  static V4 and_(V4 a, V4 b) { return {_mm_and_si128(a.v, b.v)}; }
  static V4 or_(V4 a, V4 b) { return {_mm_or_si128(a.v, b.v)}; }
  /// ~a & b (the x86 andnot operand order).
  static V4 andnot(V4 a, V4 b) { return {_mm_andnot_si128(a.v, b.v)}; }
  template <int N>
  static V4 shr(V4 a) {
    return {_mm_srli_epi32(a.v, N)};
  }
  template <int N>
  static V4 rotr(V4 a) {
    return {_mm_or_si128(_mm_srli_epi32(a.v, N), _mm_slli_epi32(a.v, 32 - N))};
  }
  /// Per-lane 32-bit byte swap (SSSE3 pshufb).
  static V4 bswap(V4 a) {
    const __m128i mask = _mm_set_epi8(12, 13, 14, 15, 8, 9, 10, 11,  //
                                      4, 5, 6, 7, 0, 1, 2, 3);
    return {_mm_shuffle_epi8(a.v, mask)};
  }
};

}  // namespace

void sha256_x4_ssse3(const Sha256Lane* lanes, size_t total_blocks,
                     Digest* out) {
  sha256_multi<V4>(lanes, total_blocks, out);
}

}  // namespace dapes::crypto::kernels

#endif  // DAPES_SHA256_X86
