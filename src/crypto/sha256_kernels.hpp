/// @file
/// Internal interface between the SHA-256 dispatcher (sha256.cpp) and the
/// ISA-specific kernel translation units. Each kernel TU is compiled with
/// its own -m flags (see CMakeLists.txt), so this header carries no
/// intrinsics — only symbol declarations and the shared round constants.
///
/// The kernels exist only when `DAPES_SHA256_X86` is 1: the build adds
/// `DAPES_SHA256_ENABLE_X86` (together with the per-file -m flags) exactly
/// when the target is x86 with a GNU-compatible compiler, and the
/// architecture check below keeps a stray define from breaking other
/// targets. On every other target the kernel TUs compile to nothing and
/// the dispatcher only ever sees the scalar engine.
#pragma once

#include <cstddef>
#include <cstdint>

#include "crypto/sha256.hpp"

#if defined(DAPES_SHA256_ENABLE_X86) &&                      \
    (defined(__x86_64__) || defined(__i386__)) &&            \
    (defined(__GNUC__) || defined(__clang__))
#define DAPES_SHA256_X86 1
#else
#define DAPES_SHA256_X86 0
#endif

namespace dapes::crypto::kernels {

/// FIPS 180-4 round constants, shared by every kernel.
extern const uint32_t kSha256K[64];
/// FIPS 180-4 initial hash values, shared by every kernel.
extern const uint32_t kSha256Init[8];

#if DAPES_SHA256_X86

/// Runtime CPUID probe: SSSE3 available.
bool cpu_has_ssse3();
/// Runtime CPUID probe: AVX2 available (including OS ymm-state support).
bool cpu_has_avx2();
/// Runtime CPUID probe: SHA-NI available.
bool cpu_has_shani();

/// SHA-NI single-stream compressor (the fastest single-buffer path).
void sha256_compress_shani(uint32_t* state, const uint8_t* blocks,
                           size_t count);
/// SSSE3 4-wide multi-buffer kernel (lockstep lanes, equal block counts).
void sha256_x4_ssse3(const Sha256Lane* lanes, size_t total_blocks,
                     Digest* out);
/// AVX2 8-wide multi-buffer kernel (lockstep lanes, equal block counts).
void sha256_x8_avx2(const Sha256Lane* lanes, size_t total_blocks,
                    Digest* out);

#endif  // DAPES_SHA256_X86

}  // namespace dapes::crypto::kernels
