/// @file
/// Generic multi-buffer SHA-256 round function, shared by the SSSE3 and
/// AVX2 kernels. Each kernel TU instantiates `sha256_multi` with its own
/// vector-traits type (4 or 8 32-bit lanes), so the transposed-state round
/// logic — the part worth getting right exactly once — has a single home
/// while the ISA-specific operations stay in the TUs that own the -m
/// flags.
///
/// Layout: working variable X of lane L lives in 32-bit element L of
/// vector X. Message words are gathered per block with scalar unaligned
/// loads into a small staging array, then byte-swapped in-vector; the 64
/// rounds and the message schedule — the dominant cost — are fully
/// vectorized.
#pragma once

#include <cstring>

#include "crypto/sha256_kernels.hpp"

#if DAPES_SHA256_X86

namespace dapes::crypto::kernels {

/// Hash V::kLanes equal-block-count messages in lockstep. The traits type
/// V supplies: kLanes, load (aligned), add, xor_, and_, andnot (~a & b),
/// or_, shr<N>, rotr<N>, bswap, and an aligned staging buffer via
/// V::Staging.
template <typename V>
void sha256_multi(const Sha256Lane* lanes, size_t total_blocks, Digest* out) {
  constexpr int kLanes = V::kLanes;

  V sa = V::set1(kSha256Init[0]), sb = V::set1(kSha256Init[1]);
  V sc = V::set1(kSha256Init[2]), sd = V::set1(kSha256Init[3]);
  V se = V::set1(kSha256Init[4]), sf = V::set1(kSha256Init[5]);
  V sg = V::set1(kSha256Init[6]), sh = V::set1(kSha256Init[7]);

  alignas(32) uint32_t stage[kLanes];

  for (size_t blk = 0; blk < total_blocks; ++blk) {
    const uint8_t* p[kLanes];
    for (int l = 0; l < kLanes; ++l) {
      const Sha256Lane& ln = lanes[l];
      p[l] = blk < ln.body_blocks ? ln.body + 64 * blk
                                  : ln.tail + 64 * (blk - ln.body_blocks);
    }

    V w[16];
    for (int i = 0; i < 16; ++i) {
      for (int l = 0; l < kLanes; ++l) {
        uint32_t word;
        std::memcpy(&word, p[l] + 4 * i, 4);
        stage[l] = word;
      }
      w[i] = V::bswap(V::load(stage));
    }

    V a = sa, b = sb, c = sc, d = sd, e = se, f = sf, g = sg, h = sh;
    for (int i = 0; i < 64; ++i) {
      if (i >= 16) {
        const V w15 = w[(i - 15) & 15];
        const V w2 = w[(i - 2) & 15];
        const V s0 = V::xor_(V::xor_(V::template rotr<7>(w15),
                                     V::template rotr<18>(w15)),
                             V::template shr<3>(w15));
        const V s1 = V::xor_(V::xor_(V::template rotr<17>(w2),
                                     V::template rotr<19>(w2)),
                             V::template shr<10>(w2));
        w[i & 15] = V::add(V::add(w[(i - 16) & 15], s0),
                           V::add(w[(i - 7) & 15], s1));
      }
      const V s1 = V::xor_(V::xor_(V::template rotr<6>(e),
                                   V::template rotr<11>(e)),
                           V::template rotr<25>(e));
      const V ch = V::xor_(V::and_(e, f), V::andnot(e, g));
      const V t1 = V::add(V::add(V::add(h, s1), V::add(ch, V::set1(kSha256K[i]))),
                          w[i & 15]);
      const V s0 = V::xor_(V::xor_(V::template rotr<2>(a),
                                   V::template rotr<13>(a)),
                           V::template rotr<22>(a));
      const V maj = V::or_(V::and_(a, b), V::and_(c, V::or_(a, b)));
      const V t2 = V::add(s0, maj);
      h = g;
      g = f;
      f = e;
      e = V::add(d, t1);
      d = c;
      c = b;
      b = a;
      a = V::add(t1, t2);
    }
    sa = V::add(sa, a);
    sb = V::add(sb, b);
    sc = V::add(sc, c);
    sd = V::add(sd, d);
    se = V::add(se, e);
    sf = V::add(sf, f);
    sg = V::add(sg, g);
    sh = V::add(sh, h);
  }

  alignas(32) uint32_t s[8][kLanes];
  V::store(s[0], sa);
  V::store(s[1], sb);
  V::store(s[2], sc);
  V::store(s[3], sd);
  V::store(s[4], se);
  V::store(s[5], sf);
  V::store(s[6], sg);
  V::store(s[7], sh);
  for (int l = 0; l < kLanes; ++l) {
    for (int i = 0; i < 8; ++i) {
      out[l].bytes[4 * i] = static_cast<uint8_t>(s[i][l] >> 24);
      out[l].bytes[4 * i + 1] = static_cast<uint8_t>(s[i][l] >> 16);
      out[l].bytes[4 * i + 2] = static_cast<uint8_t>(s[i][l] >> 8);
      out[l].bytes[4 * i + 3] = static_cast<uint8_t>(s[i][l]);
    }
  }
}

}  // namespace dapes::crypto::kernels

#endif  // DAPES_SHA256_X86
