#include "crypto/merkle.hpp"

#include <stdexcept>

namespace dapes::crypto {

namespace {

std::vector<Digest> next_level(const std::vector<Digest>& level) {
  std::vector<Digest> parents;
  parents.reserve((level.size() + 1) / 2);
  size_t i = 0;
  for (; i + 1 < level.size(); i += 2) {
    parents.push_back(Sha256::hash_pair(level[i], level[i + 1]));
  }
  if (i < level.size()) {
    // Unpaired node: promote unchanged.
    parents.push_back(level[i]);
  }
  return parents;
}

}  // namespace

MerkleTree::MerkleTree(std::vector<Digest> leaves)
    : leaf_count_(leaves.size()) {
  if (leaves.empty()) {
    root_ = Sha256::hash(std::string_view{});
    return;
  }
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    levels_.push_back(next_level(levels_.back()));
  }
  root_ = levels_.back().front();
}

MerkleTree MerkleTree::from_payloads(
    const std::vector<common::Bytes>& payloads) {
  std::vector<Digest> leaves;
  leaves.reserve(payloads.size());
  for (const auto& p : payloads) {
    leaves.push_back(Sha256::hash(common::BytesView(p.data(), p.size())));
  }
  return MerkleTree(std::move(leaves));
}

MerkleProof MerkleTree::prove(size_t index) const {
  if (index >= leaf_count_) {
    throw std::out_of_range("MerkleTree::prove: leaf index out of range");
  }
  MerkleProof proof;
  proof.leaf_index = index;
  proof.leaf_count = leaf_count_;
  size_t pos = index;
  for (size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const auto& level = levels_[lvl];
    size_t sibling = (pos % 2 == 0) ? pos + 1 : pos - 1;
    if (sibling < level.size()) {
      proof.siblings.push_back(level[sibling]);
    } else {
      // Promoted node this level: no sibling hash consumed. Record nothing;
      // verification mirrors the promotion rule via (pos, level size).
    }
    pos /= 2;
  }
  return proof;
}

bool MerkleTree::verify(const Digest& leaf, const MerkleProof& proof,
                        const Digest& root) {
  if (proof.leaf_count == 0) return false;
  if (proof.leaf_index >= proof.leaf_count) return false;

  Digest current = leaf;
  size_t pos = proof.leaf_index;
  size_t level_size = proof.leaf_count;
  size_t sibling_idx = 0;

  while (level_size > 1) {
    size_t sibling = (pos % 2 == 0) ? pos + 1 : pos - 1;
    if (sibling < level_size) {
      if (sibling_idx >= proof.siblings.size()) return false;
      const Digest& sib = proof.siblings[sibling_idx++];
      current = (pos % 2 == 0) ? Sha256::hash_pair(current, sib)
                               : Sha256::hash_pair(sib, current);
    }
    // else: promoted, digest carries upward unchanged.
    pos /= 2;
    level_size = (level_size + 1) / 2;
  }
  return sibling_idx == proof.siblings.size() && current == root;
}

Digest MerkleTree::compute_root(const std::vector<Digest>& leaves) {
  if (leaves.empty()) return Sha256::hash(std::string_view{});
  std::vector<Digest> level = leaves;
  while (level.size() > 1) {
    level = next_level(level);
  }
  return level.front();
}

}  // namespace dapes::crypto
