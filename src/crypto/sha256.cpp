#include "crypto/sha256.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
#include <cpuid.h>
#endif

#include "common/logging.hpp"
#include "crypto/sha256_kernels.hpp"

namespace dapes::crypto {

namespace kernels {

const uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

const uint32_t kSha256Init[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                 0xa54ff53a, 0x510e527f, 0x9b05688c,
                                 0x1f83d9ab, 0x5be0cd19};

#if DAPES_SHA256_X86

namespace {

/// xgetbv(0) without -mxsave: reads the XCR0 feature-enable register to
/// check the OS saves the ymm state AVX2 needs.
uint64_t read_xcr0() {
  uint32_t eax = 0, edx = 0;
  __asm__ __volatile__("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<uint64_t>(edx) << 32) | eax;
}

}  // namespace

bool cpu_has_ssse3() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  return (ecx & (1u << 9)) != 0;
}

bool cpu_has_avx2() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool avx = (ecx & (1u << 28)) != 0;
  if (!osxsave || !avx) return false;
  if ((read_xcr0() & 0x6) != 0x6) return false;  // xmm + ymm state enabled
  if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) return false;
  return (ebx & (1u << 5)) != 0;
}

bool cpu_has_shani() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  // The kernel's state permutation uses SSSE3 pshufb + SSE4.1 pblendw.
  if ((ecx & (1u << 9)) == 0 || (ecx & (1u << 19)) == 0) return false;
  if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) return false;
  return (ebx & (1u << 29)) != 0;
}

#endif  // DAPES_SHA256_X86

}  // namespace kernels

namespace {

uint32_t rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

/// FIPS 180-4 tail builder: pack the sub-block remainder of a message of
/// @p size bytes (its last size % 64 bytes, at @p rem) plus the 0x80
/// terminator and the 64-bit bit length into @p tail. Returns the number
/// of tail blocks written (1, or 2 when the remainder spills).
size_t build_tail(const uint8_t* rem, size_t size, uint8_t tail[128]) {
  const size_t rem_len = size % 64;
  std::memset(tail, 0, 128);
  if (rem_len > 0) std::memcpy(tail, rem, rem_len);
  tail[rem_len] = 0x80;
  const size_t blocks = rem_len + 9 <= 64 ? 1 : 2;
  const uint64_t bits = static_cast<uint64_t>(size) * 8;
  uint8_t* len_at = tail + 64 * blocks - 8;
  for (int i = 0; i < 8; ++i) {
    len_at[i] = static_cast<uint8_t>(bits >> (56 - 8 * i));
  }
  return blocks;
}

/// Serialize the eight working variables to the big-endian digest bytes.
Digest serialize_state(const uint32_t state[8]) {
  Digest d;
  for (int i = 0; i < 8; ++i) {
    d.bytes[4 * i] = static_cast<uint8_t>(state[i] >> 24);
    d.bytes[4 * i + 1] = static_cast<uint8_t>(state[i] >> 16);
    d.bytes[4 * i + 2] = static_cast<uint8_t>(state[i] >> 8);
    d.bytes[4 * i + 3] = static_cast<uint8_t>(state[i]);
  }
  return d;
}

/// One-shot hash through an explicit block compressor: body blocks
/// straight from the input, padded tail on the stack.
Digest hash_with(void (*compress)(uint32_t*, const uint8_t*, size_t),
                 common::BytesView data) {
  uint32_t state[8];
  std::memcpy(state, kernels::kSha256Init, sizeof(state));
  const size_t body_blocks = data.size() / 64;
  if (body_blocks > 0) compress(state, data.data(), body_blocks);
  uint8_t tail[128];
  const size_t tail_blocks =
      build_tail(data.data() + body_blocks * 64, data.size(), tail);
  compress(state, tail, tail_blocks);
  return serialize_state(state);
}

}  // namespace

namespace ref {

void sha256_compress(uint32_t* state, const uint8_t* blocks, size_t count) {
  for (size_t b = 0; b < count; ++b) {
    const uint8_t* block = blocks + 64 * b;
    uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<uint32_t>(block[4 * i]) << 24) |
             (static_cast<uint32_t>(block[4 * i + 1]) << 16) |
             (static_cast<uint32_t>(block[4 * i + 2]) << 8) |
             static_cast<uint32_t>(block[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      uint32_t s0 =
          rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    uint32_t a = state[0], bb = state[1], c = state[2], d = state[3];
    uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; ++i) {
      uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      uint32_t ch = (e & f) ^ (~e & g);
      uint32_t temp1 = h + s1 + ch + kernels::kSha256K[i] + w[i];
      uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      uint32_t maj = (a & bb) ^ (a & c) ^ (bb & c);
      uint32_t temp2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = bb;
      bb = a;
      a = temp1 + temp2;
    }

    state[0] += a;
    state[1] += bb;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

Digest sha256(common::BytesView data) { return hash_with(&sha256_compress, data); }

}  // namespace ref

namespace {

const Sha256Engine kScalarEngine{"scalar", 0, &ref::sha256_compress, nullptr};

#if DAPES_SHA256_X86
const Sha256Engine kSsse3Engine{"ssse3", 4, &ref::sha256_compress,
                                &kernels::sha256_x4_ssse3};
const Sha256Engine kAvx2Engine{"avx2", 8, &ref::sha256_compress,
                               &kernels::sha256_x8_avx2};
const Sha256Engine kShaniEngine{"shani", 0, &kernels::sha256_compress_shani,
                                nullptr};
#endif

/// Process-wide engine registry + active selection, built on first use:
/// probe the CPU, compose the auto engine (best single-stream compressor
/// with the widest multi-buffer kernel), then apply DAPES_SHA256_IMPL.
struct EngineState {
  std::vector<const Sha256Engine*> supported;
  Sha256Engine auto_engine;
  std::string auto_name;
  const Sha256Engine* active = nullptr;

  EngineState() {
    supported.push_back(&kScalarEngine);
#if DAPES_SHA256_X86
    if (kernels::cpu_has_ssse3()) supported.push_back(&kSsse3Engine);
    if (kernels::cpu_has_avx2()) supported.push_back(&kAvx2Engine);
    if (kernels::cpu_has_shani()) supported.push_back(&kShaniEngine);
#endif
    // Compose "auto": the engines are independent on the two axes, so
    // take the best of each (e.g. SHA-NI singles + AVX2 batches).
    auto_engine = *supported.back();
    auto_name = auto_engine.name;
    for (const Sha256Engine* e : supported) {
      if (e->lanes > auto_engine.lanes) {
        auto_engine.lanes = e->lanes;
        auto_engine.compress_multi = e->compress_multi;
        auto_name = std::string(auto_engine.name) + "+" + e->name;
      }
    }
    auto_engine.name = auto_name.c_str();
    active = &auto_engine;

    if (const char* env = std::getenv("DAPES_SHA256_IMPL")) {
      if (!select(env)) {
        DAPES_LOG_WARN("crypto")
            << "DAPES_SHA256_IMPL=" << env
            << " unknown or unsupported on this CPU; using " << active->name;
      }
    }
  }

  bool select(std::string_view name) {
    if (name.empty() || name == "auto") {
      active = &auto_engine;
      return true;
    }
    for (const Sha256Engine* e : supported) {
      if (name == e->name) {
        active = e;
        return true;
      }
    }
    return false;
  }
};

EngineState& engine_state() {
  static EngineState s;
  return s;
}

}  // namespace

const Sha256Engine& engine() { return *engine_state().active; }

bool set_engine(std::string_view name) { return engine_state().select(name); }

std::vector<const Sha256Engine*> all_engines() {
  return engine_state().supported;
}

void sha256_many(const common::BytesView* inputs, Digest* out, size_t count) {
  const Sha256Engine& eng = engine();
  if (eng.lanes == 0 || count < 2) {
    for (size_t i = 0; i < count; ++i) {
      out[i] = hash_with(eng.compress, inputs[i]);
    }
    return;
  }

  // Lockstep lanes need equal total block counts: order the messages by
  // block count (stably, so equal-length runs keep input order) and walk
  // runs of equal counts in lane-width chunks.
  struct Slot {
    size_t blocks = 0;
    size_t index = 0;
  };
  std::vector<Slot> slots(count);
  std::vector<std::array<uint8_t, 128>> tails(count);
  std::vector<size_t> tail_blocks(count);
  for (size_t i = 0; i < count; ++i) {
    tail_blocks[i] =
        build_tail(inputs[i].data() + (inputs[i].size() / 64) * 64,
                   inputs[i].size(), tails[i].data());
    slots[i] = {inputs[i].size() / 64 + tail_blocks[i], i};
  }
  std::stable_sort(slots.begin(), slots.end(),
                   [](const Slot& a, const Slot& b) {
                     return a.blocks < b.blocks;
                   });

  std::vector<Sha256Lane> lanes(eng.lanes);
  std::vector<Digest> lane_out(eng.lanes);
  size_t at = 0;
  while (at < count) {
    size_t run_end = at;
    while (run_end < count && slots[run_end].blocks == slots[at].blocks) {
      ++run_end;
    }
    while (at < run_end) {
      const size_t chunk = std::min<size_t>(eng.lanes, run_end - at);
      if (chunk < 2) {
        const size_t idx = slots[at].index;
        out[idx] = hash_with(eng.compress, inputs[idx]);
        ++at;
        continue;
      }
      for (size_t l = 0; l < eng.lanes; ++l) {
        // Pad short chunks by replaying lane 0 (its digest is discarded).
        const size_t src = l < chunk ? slots[at + l].index : slots[at].index;
        lanes[l] = Sha256Lane{inputs[src].data(), inputs[src].size() / 64,
                              tails[src].data()};
      }
      eng.compress_multi(lanes.data(), slots[at].blocks, lane_out.data());
      for (size_t l = 0; l < chunk; ++l) {
        out[slots[at + l].index] = lane_out[l];
      }
      at += chunk;
    }
  }
}

std::string Digest::to_hex() const { return common::to_hex(view()); }

Digest Digest::from_hex(std::string_view hex) {
  common::Bytes raw = common::from_hex(hex);
  if (raw.size() != 32) {
    throw std::invalid_argument("Digest::from_hex: expected 64 hex chars");
  }
  Digest d;
  std::memcpy(d.bytes.data(), raw.data(), 32);
  return d;
}

Sha256::Sha256() { reset(); }

void Sha256::reset() {
  std::memcpy(state_.data(), kernels::kSha256Init, sizeof(kernels::kSha256Init));
  bit_count_ = 0;
  buffer_len_ = 0;
}

void Sha256::update(common::BytesView data) {
  bit_count_ += static_cast<uint64_t>(data.size()) * 8;
  size_t offset = 0;
  if (buffer_len_ > 0) {
    size_t take = std::min(data.size(), buffer_.size() - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == buffer_.size()) {
      engine().compress(state_.data(), buffer_.data(), 1);
      buffer_len_ = 0;
    }
  }
  const size_t run = (data.size() - offset) / 64;
  if (run > 0) {
    engine().compress(state_.data(), data.data() + offset, run);
    offset += run * 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

void Sha256::update(std::string_view str) {
  update(common::BytesView(reinterpret_cast<const uint8_t*>(str.data()),
                           str.size()));
}

Digest Sha256::final_digest() {
  uint64_t length_bits = bit_count_;
  // Padding: 0x80 then zeros until 56 mod 64, then 8-byte length.
  uint8_t pad = 0x80;
  update(common::BytesView(&pad, 1));
  uint8_t zero = 0;
  while (buffer_len_ != 56) {
    update(common::BytesView(&zero, 1));
  }
  // The length field uses length_bits captured before padding; the bits
  // update() added for the padding itself must not count.
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>(length_bits >> (56 - 8 * i));
  }
  std::memcpy(buffer_.data() + buffer_len_, len_bytes, 8);
  buffer_len_ += 8;
  if (buffer_len_ == 64) {
    engine().compress(state_.data(), buffer_.data(), 1);
    buffer_len_ = 0;
  }
  return serialize_state(state_.data());
}

Digest Sha256::hash(common::BytesView data) {
  return hash_with(engine().compress, data);
}

Digest Sha256::hash(std::string_view str) {
  return hash(common::BytesView(reinterpret_cast<const uint8_t*>(str.data()),
                                str.size()));
}

Digest Sha256::hash_pair(const Digest& a, const Digest& b) {
  uint8_t buf[64];
  std::memcpy(buf, a.bytes.data(), 32);
  std::memcpy(buf + 32, b.bytes.data(), 32);
  return hash(common::BytesView(buf, 64));
}

}  // namespace dapes::crypto
