/// @file
/// Key management and packet signing.
///
/// The paper assumes each peer owns a public/private keypair and that peers
/// share "local" trust anchors so they can authenticate a collection
/// producer's metadata signature. We reproduce those *semantics* (key
/// identity, sign, verify, trust-anchor check) with a deterministic
/// stand-in scheme rather than a full RSA/ECDSA implementation:
///
///   signature = SHA256(secret_key || name || len(name) || SHA256(content))
///
/// The MAC binds the *digest* of the content, not the raw bytes — the
/// hash-then-MAC shape real signature schemes use. That structure is what
/// lets verification hash a packet's content once per frame and reuse the
/// digest across every verify call and receiver (the verify-cache layer;
/// earlier revisions MAC'd the raw content and re-hashed it on every
/// `KeyChain::verify`). Verification recomputes the MAC using the secret
/// looked up by KeyId in a registry that models "knowing the producer's
/// public key". DESIGN.md documents this substitution; every call site
/// uses the same API a real scheme would.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "crypto/sha256.hpp"

namespace dapes::crypto {

/// Identifies a keypair (derived from the owner name, collision-checked
/// inside the registry).
struct KeyId {
  Digest id;  ///< the identifying digest (what KeyLocators carry)

  /// Byte-wise equality.
  bool operator==(const KeyId&) const = default;
  /// Byte-wise lexicographic order (map key).
  auto operator<=>(const KeyId&) const = default;
  /// Hex rendering for logs and diagnostics.
  std::string to_hex() const { return id.to_hex(); }
};

/// A detached signature over (name, content).
struct Signature {
  KeyId signer;  ///< which key produced the MAC
  Digest mac;    ///< the MAC over (name, content digest)

  /// Field-wise equality.
  bool operator==(const Signature&) const = default;
};

/// A private key handle. The secret never leaves the struct.
class PrivateKey {
 public:
  /// Empty (unusable) key; assign from KeyChain::generate_key.
  PrivateKey() = default;
  /// Wrap existing key material (KeyChain::generate_key uses this).
  PrivateKey(KeyId id, Digest secret) : id_(id), secret_(secret) {}

  /// The key's identity (what KeyLocators carry).
  const KeyId& id() const { return id_; }

  /// Sign (name, content): hashes the content, then MACs the digest.
  Signature sign(std::string_view name, common::BytesView content) const;

  /// Sign with a pre-computed content digest (hash-once-per-frame path).
  Signature sign(std::string_view name, const Digest& content_digest) const;

  /// Verification material. With a real asymmetric scheme this would be
  /// the public half; the MAC stand-in shares the secret (see the header
  /// comment and DESIGN.md).
  const Digest& material() const { return secret_; }

 private:
  KeyId id_;
  Digest secret_;
};

/// Registry of known keys + trust anchors.
///
/// In a deployment this is the peer's keychain: its own keys, the public
/// keys it has learned, and the set of locally-established trust anchors
/// (paper §III). `verify` checks the cryptographic binding; `is_trusted`
/// checks the anchor set.
class KeyChain {
 public:
  /// Create a keypair for @p owner_name ("/residents/alice"). Deterministic
  /// given (owner_name, seed) so tests and simulations are reproducible.
  PrivateKey generate_key(const std::string& owner_name, uint64_t seed = 0);

  /// Import another party's key material (models learning a public key).
  void import_key(const KeyId& id, const Digest& secret);
  /// Import a key handle's (id, material) pair.
  void import_key(const PrivateKey& key) {
    import_key(key.id(), key.material());
  }

  /// Cryptographic verification of a signature over (name, content).
  /// Returns false for unknown signers. Hashes the content; prefer the
  /// Digest overload when the caller already holds the content digest.
  bool verify(std::string_view name, common::BytesView content,
              const Signature& sig) const;

  /// Verify against a pre-computed content digest (what the verify-cache
  /// layer and `Data::verify` use: hash once per frame, not per call).
  bool verify(std::string_view name, const Digest& content_digest,
              const Signature& sig) const;

  /// Verification material for @p id, or null when the key is unknown.
  /// With the MAC stand-in this is the shared secret (see the file
  /// comment); the verify-result cache keys MAC verdicts on it.
  const Digest* secret_for(const KeyId& id) const;

  /// Mark @p id as a locally-established trust anchor (paper assumes
  /// peers share common local anchors).
  void add_trust_anchor(const KeyId& id);
  /// Whether @p id is in the trust-anchor set.
  bool is_trusted(const KeyId& id) const;

  /// Whether the key is known at all (verification possible).
  bool knows(const KeyId& id) const;

  /// Number of keys in the registry.
  size_t key_count() const { return keys_.size(); }

  /// MAC used by both sign and verify: SHA256(secret || name ||
  /// len(name) || content_digest). Exposed for PrivateKey::sign and the
  /// delivery prewarm; not part of the public protocol surface.
  static Digest compute_mac(const Digest& secret, std::string_view name,
                            const Digest& content_digest);

  /// Convenience overload that hashes @p content first.
  static Digest compute_mac(const Digest& secret, std::string_view name,
                            common::BytesView content);

 private:

  std::map<KeyId, Digest> keys_;       // KeyId -> secret material
  std::map<KeyId, bool> anchors_;      // trust anchors
};

}  // namespace dapes::crypto
