// Key management and packet signing.
//
// The paper assumes each peer owns a public/private keypair and that peers
// share "local" trust anchors so they can authenticate a collection
// producer's metadata signature. We reproduce those *semantics* (key
// identity, sign, verify, trust-anchor check) with a deterministic
// stand-in scheme rather than a full RSA/ECDSA implementation:
//
//   signature = SHA256(secret_key || name || content)
//
// Verification recomputes the MAC using the secret looked up by KeyId in a
// registry that models "knowing the producer's public key". DESIGN.md
// documents this substitution; every call site uses the same API a real
// scheme would.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "crypto/sha256.hpp"

namespace dapes::crypto {

/// Identifies a keypair (derived from the owner name, collision-checked
/// inside the registry).
struct KeyId {
  Digest id;

  bool operator==(const KeyId&) const = default;
  auto operator<=>(const KeyId&) const = default;
  std::string to_hex() const { return id.to_hex(); }
};

/// A detached signature over (name, content).
struct Signature {
  KeyId signer;
  Digest mac;

  bool operator==(const Signature&) const = default;
};

/// A private key handle. The secret never leaves the struct.
class PrivateKey {
 public:
  PrivateKey() = default;
  PrivateKey(KeyId id, Digest secret) : id_(id), secret_(secret) {}

  const KeyId& id() const { return id_; }

  Signature sign(std::string_view name, common::BytesView content) const;

  /// Verification material. With a real asymmetric scheme this would be
  /// the public half; the MAC stand-in shares the secret (see the header
  /// comment and DESIGN.md).
  const Digest& material() const { return secret_; }

 private:
  KeyId id_;
  Digest secret_;
};

/// Registry of known keys + trust anchors.
///
/// In a deployment this is the peer's keychain: its own keys, the public
/// keys it has learned, and the set of locally-established trust anchors
/// (paper §III). `verify` checks the cryptographic binding; `is_trusted`
/// checks the anchor set.
class KeyChain {
 public:
  /// Create a keypair for @p owner_name ("/residents/alice"). Deterministic
  /// given (owner_name, seed) so tests and simulations are reproducible.
  PrivateKey generate_key(const std::string& owner_name, uint64_t seed = 0);

  /// Import another party's key material (models learning a public key).
  void import_key(const KeyId& id, const Digest& secret);
  void import_key(const PrivateKey& key) {
    import_key(key.id(), key.material());
  }

  /// Cryptographic verification of a signature over (name, content).
  /// Returns false for unknown signers.
  bool verify(std::string_view name, common::BytesView content,
              const Signature& sig) const;

  /// Trust-anchor management (paper assumes common local anchors).
  void add_trust_anchor(const KeyId& id);
  bool is_trusted(const KeyId& id) const;

  /// Whether the key is known at all (verification possible).
  bool knows(const KeyId& id) const;

  size_t key_count() const { return keys_.size(); }

  /// MAC used by both sign and verify. Exposed for PrivateKey::sign; not
  /// part of the public protocol surface.
  static Digest compute_mac(const Digest& secret, std::string_view name,
                            common::BytesView content);

 private:

  std::map<KeyId, Digest> keys_;       // KeyId -> secret material
  std::map<KeyId, bool> anchors_;      // trust anchors
};

}  // namespace dapes::crypto
