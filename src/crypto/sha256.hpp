/// @file
/// SHA-256 (FIPS 180-4) behind a runtime-dispatched engine table.
///
/// DAPES binds packet content to names via digests: the packet-digest
/// metadata format carries one SHA-256 per packet, and the Merkle-tree
/// format hashes packets into a tree whose root is signed. This is the
/// single hash primitive for the whole repository — which also makes it
/// the crypto hot path at scale, so the implementation is layered:
///
///   * `crypto::ref::sha256` — the retained from-scratch scalar reference.
///     Never dispatched away; every SIMD engine is equivalence-tested
///     against it (tests/test_sha256_vectors.cpp).
///   * `Sha256Engine` — one dispatchable implementation: a single-stream
///     block compressor plus an optional fixed-width multi-buffer kernel
///     (SSSE3 4-wide, AVX2 8-wide, SHA-NI single-stream).
///   * The active engine is picked once per process by a runtime CPUID
///     probe (widest supported kernel wins), overridable with the
///     `DAPES_SHA256_IMPL` environment variable or `set_engine()` for
///     tests and benches.
///
/// Every engine computes bit-identical FIPS 180-4 digests, so dispatch can
/// never perturb simulation results. See DESIGN.md "Crypto engine &
/// verify cache".
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace dapes::crypto {

/// 32-byte SHA-256 digest with value semantics.
struct Digest {
  /// The raw digest bytes (big-endian word serialization per FIPS 180-4).
  std::array<uint8_t, 32> bytes{};

  /// Byte-wise equality.
  bool operator==(const Digest&) const = default;
  /// Byte-wise lexicographic order (usable as a map key).
  auto operator<=>(const Digest&) const = default;

  /// Lower-case hex rendering (64 chars).
  std::string to_hex() const;
  /// Parse a 64-char hex string (throws std::invalid_argument otherwise).
  static Digest from_hex(std::string_view hex);

  /// View over the digest bytes (for embedding into wire formats).
  common::BytesView view() const { return common::BytesView(bytes.data(), bytes.size()); }
};

/// One lane of a multi-buffer SHA-256 call: a message split into its
/// contiguous full 64-byte body blocks plus a pre-padded tail (one or two
/// blocks holding the remainder, the 0x80 terminator and the bit length).
/// All lanes handed to a kernel invocation must total the same block
/// count (`body_blocks + tail blocks`), so the lanes run in lockstep.
struct Sha256Lane {
  /// Full 64-byte message blocks (may be null when body_blocks == 0).
  const uint8_t* body = nullptr;
  /// Number of full blocks at `body`.
  size_t body_blocks = 0;
  /// FIPS 180-4 padded tail blocks (the per-call total minus body_blocks).
  const uint8_t* tail = nullptr;
};

/// One SHA-256 implementation the dispatcher can select: a name for
/// `DAPES_SHA256_IMPL`/diagnostics, a single-stream block compressor, and
/// an optional fixed-width multi-buffer kernel for batch hashing.
struct Sha256Engine {
  /// Well-known name ("scalar", "ssse3", "avx2", "shani", or the
  /// composite the auto-probe builds).
  const char* name = "scalar";
  /// Width of `compress_multi` in independent messages (0 = none).
  unsigned lanes = 0;
  /// Fold `count` consecutive 64-byte blocks at @p blocks into the eight
  /// 32-bit working variables at @p state.
  void (*compress)(uint32_t* state, const uint8_t* blocks, size_t count) =
      nullptr;
  /// Hash exactly `lanes` equal-block-count messages in lockstep and
  /// write their digests to @p out (null when lanes == 0).
  void (*compress_multi)(const Sha256Lane* lanes_in, size_t total_blocks,
                         Digest* out) = nullptr;
};

/// The active engine (auto-probed on first use; see set_engine()).
const Sha256Engine& engine();

/// Select the active engine by name ("scalar", "ssse3", "avx2", "shani",
/// or "auto" / "" for the probe's choice). Returns false — leaving the
/// active engine unchanged — when the name is unknown or the CPU lacks
/// the ISA. Not thread-safe against in-flight hashing; tests and benches
/// only.
bool set_engine(std::string_view name);

/// Every engine compiled in *and* supported by this CPU (the scalar
/// reference always included) — what the vector/equivalence suites sweep.
std::vector<const Sha256Engine*> all_engines();

/// Hash `count` independent messages, batching them through the active
/// engine's multi-buffer kernel (grouped by block count, lockstep lanes,
/// scalar/single-stream fallback for remainders). Digest i of @p out is
/// always bit-identical to `ref::sha256(inputs[i])`.
void sha256_many(const common::BytesView* inputs, Digest* out, size_t count);

namespace ref {

/// The retained scalar reference: one-shot SHA-256 that never goes
/// through the dispatch table. Equivalence baseline for every engine.
Digest sha256(common::BytesView data);

/// The scalar reference block compressor (also the single-stream half of
/// the SSE multi-buffer engines, which only accelerate batches).
void sha256_compress(uint32_t* state, const uint8_t* blocks, size_t count);

}  // namespace ref

/// Incremental SHA-256 context. Usage: update()* then final_digest().
/// Bulk block runs are folded through the active engine's compressor;
/// results are engine-independent.
class Sha256 {
 public:
  /// Fresh context (equivalent to reset()).
  Sha256();

  /// Absorb @p data.
  void update(common::BytesView data);
  /// Absorb the bytes of @p str.
  void update(std::string_view str);

  /// Finalizes and returns the digest. The context must not be reused
  /// afterwards (reset() starts a fresh hash).
  Digest final_digest();

  /// Restart the context for a fresh hash.
  void reset();

  /// One-shot convenience.
  static Digest hash(common::BytesView data);
  /// One-shot convenience over a string's bytes.
  static Digest hash(std::string_view str);

  /// hash(a || b) — used for Merkle interior nodes.
  static Digest hash_pair(const Digest& a, const Digest& b);

 private:
  std::array<uint32_t, 8> state_;
  uint64_t bit_count_ = 0;
  std::array<uint8_t, 64> buffer_{};
  size_t buffer_len_ = 0;
};

}  // namespace dapes::crypto

template <>
struct std::hash<dapes::crypto::Digest> {
  size_t operator()(const dapes::crypto::Digest& d) const noexcept {
    // The digest is already uniform; fold the first 8 bytes.
    size_t h = 0;
    for (int i = 0; i < 8; ++i) h = (h << 8) | d.bytes[i];
    return h;
  }
};
