// SHA-256 (FIPS 180-4), implemented from scratch.
//
// DAPES binds packet content to names via digests: the packet-digest
// metadata format carries one SHA-256 per packet, and the Merkle-tree
// format hashes packets into a tree whose root is signed. This is the
// single hash primitive for the whole repository.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/bytes.hpp"

namespace dapes::crypto {

/// 32-byte SHA-256 digest with value semantics.
struct Digest {
  std::array<uint8_t, 32> bytes{};

  bool operator==(const Digest&) const = default;
  auto operator<=>(const Digest&) const = default;

  std::string to_hex() const;
  static Digest from_hex(std::string_view hex);

  /// View over the digest bytes (for embedding into wire formats).
  common::BytesView view() const { return common::BytesView(bytes.data(), bytes.size()); }
};

/// Incremental SHA-256 context. Usage: update()* then final_digest().
class Sha256 {
 public:
  Sha256();

  void update(common::BytesView data);
  void update(std::string_view str);

  /// Finalizes and returns the digest. The context must not be reused
  /// afterwards (reset() starts a fresh hash).
  Digest final_digest();

  void reset();

  /// One-shot convenience.
  static Digest hash(common::BytesView data);
  static Digest hash(std::string_view str);

  /// hash(a || b) — used for Merkle interior nodes.
  static Digest hash_pair(const Digest& a, const Digest& b);

 private:
  void process_block(const uint8_t* block);

  std::array<uint32_t, 8> state_;
  uint64_t bit_count_ = 0;
  std::array<uint8_t, 64> buffer_{};
  size_t buffer_len_ = 0;
};

}  // namespace dapes::crypto

template <>
struct std::hash<dapes::crypto::Digest> {
  size_t operator()(const dapes::crypto::Digest& d) const noexcept {
    // The digest is already uniform; fold the first 8 bytes.
    size_t h = 0;
    for (int i = 0; i < 8; ++i) h = (h << 8) | d.bytes[i];
    return h;
  }
};
