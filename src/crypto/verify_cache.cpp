#include "crypto/verify_cache.hpp"

#include <algorithm>

namespace dapes::crypto {

VerifyCounters& verify_counters() {
  static VerifyCounters counters;
  return counters;
}

namespace {
thread_local VerifyCache* t_active_cache = nullptr;
}  // namespace

VerifyCache* active_verify_cache() { return t_active_cache; }

VerifyCache* set_active_verify_cache(VerifyCache* cache) {
  VerifyCache* prev = t_active_cache;
  t_active_cache = cache;
  return prev;
}

VerifyCache::VerifyCache(size_t capacity)
    : capacity_(std::max<size_t>(8, capacity)) {
  digests_.reserve(capacity_);
  macs_.reserve(capacity_);
}

std::optional<Digest> VerifyCache::lookup_digest(const void* data,
                                                 size_t size) const {
  auto it = digests_.find(RangeKey{data, size});
  if (it == digests_.end()) {
    digest_misses_.fetch_add(1, std::memory_order_relaxed);
    verify_counters().digest_misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  digest_hits_.fetch_add(1, std::memory_order_relaxed);
  verify_counters().digest_hits.fetch_add(1, std::memory_order_relaxed);
  return it->second.value;
}

std::optional<bool> VerifyCache::lookup_mac(const void* data, size_t size,
                                            const Digest& secret) const {
  auto it = macs_.find(MacKey{RangeKey{data, size}, secret});
  if (it == macs_.end()) {
    mac_misses_.fetch_add(1, std::memory_order_relaxed);
    verify_counters().mac_misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  mac_hits_.fetch_add(1, std::memory_order_relaxed);
  verify_counters().mac_hits.fetch_add(1, std::memory_order_relaxed);
  return it->second.value;
}

template <typename Key, typename Value, typename Hash>
void VerifyCache::store(Map<Key, Value, Hash>& map, std::list<Key>& order,
                        const Key& key, Value value, common::Buffer anchor) {
  auto it = map.find(key);
  if (it != map.end()) {
    // Refresh: move to the back of the eviction order, update the value.
    it->second.value = std::move(value);
    order.splice(order.end(), order, it->second.lru);
    return;
  }
  if (map.size() >= capacity_) {
    const Key& victim = order.front();
    map.erase(victim);
    order.pop_front();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    verify_counters().evictions.fetch_add(1, std::memory_order_relaxed);
  }
  auto lru = order.insert(order.end(), key);
  map.emplace(key,
              Entry<Key, Value>{std::move(value), std::move(anchor), lru});
  insertions_.fetch_add(1, std::memory_order_relaxed);
  verify_counters().insertions.fetch_add(1, std::memory_order_relaxed);
}

void VerifyCache::store_digest(const common::BufferSlice& slice,
                               const Digest& digest) {
  if (!slice.owns_storage()) return;  // nothing to anchor against reuse
  store(digests_, digest_order_, RangeKey{slice.data(), slice.size()}, digest,
        slice.buffer());
}

void VerifyCache::store_mac(const common::BufferSlice& wire,
                            const Digest& secret, bool ok) {
  if (!wire.owns_storage()) return;  // nothing to anchor against reuse
  store(macs_, mac_order_, MacKey{RangeKey{wire.data(), wire.size()}, secret},
        ok, wire.buffer());
}

void VerifyCache::clear() {
  digests_.clear();
  macs_.clear();
  digest_order_.clear();
  mac_order_.clear();
}

VerifyCache::Stats VerifyCache::stats() const {
  Stats s;
  s.digest_hits = digest_hits_.load(std::memory_order_relaxed);
  s.digest_misses = digest_misses_.load(std::memory_order_relaxed);
  s.mac_hits = mac_hits_.load(std::memory_order_relaxed);
  s.mac_misses = mac_misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

Digest cached_content_digest(common::BytesView content) {
  if (const VerifyCache* cache = active_verify_cache()) {
    if (auto hit = cache->lookup_digest(content.data(), content.size())) {
      return *hit;
    }
  }
  verify_counters().content_digests_computed.fetch_add(
      1, std::memory_order_relaxed);
  return Sha256::hash(content);
}

}  // namespace dapes::crypto
