/// @file
/// AVX2 8-wide multi-buffer SHA-256 kernel: eight independent messages in
/// the eight 32-bit lanes of a ymm register. Compiled with -mavx2 (see
/// CMakeLists.txt); the round logic lives in sha256_multi_impl.hpp.

#include "crypto/sha256_kernels.hpp"

#if DAPES_SHA256_X86

#include <immintrin.h>

#include "crypto/sha256_multi_impl.hpp"

namespace dapes::crypto::kernels {
namespace {

/// Vector traits over __m256i: 8 lanes of 32 bits.
struct V8 {
  __m256i v;

  static constexpr int kLanes = 8;

  static V8 set1(uint32_t x) {
    return {_mm256_set1_epi32(static_cast<int>(x))};
  }
  static V8 load(const uint32_t* p) {
    return {_mm256_load_si256(reinterpret_cast<const __m256i*>(p))};
  }
  static void store(uint32_t* p, V8 x) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(p), x.v);
  }
  static V8 add(V8 a, V8 b) { return {_mm256_add_epi32(a.v, b.v)}; }
  static V8 xor_(V8 a, V8 b) { return {_mm256_xor_si256(a.v, b.v)}; }
  static V8 and_(V8 a, V8 b) { return {_mm256_and_si256(a.v, b.v)}; }
  static V8 or_(V8 a, V8 b) { return {_mm256_or_si256(a.v, b.v)}; }
  /// ~a & b (the x86 andnot operand order).
  static V8 andnot(V8 a, V8 b) { return {_mm256_andnot_si256(a.v, b.v)}; }
  template <int N>
  static V8 shr(V8 a) {
    return {_mm256_srli_epi32(a.v, N)};
  }
  template <int N>
  static V8 rotr(V8 a) {
    return {_mm256_or_si256(_mm256_srli_epi32(a.v, N),
                            _mm256_slli_epi32(a.v, 32 - N))};
  }
  /// Per-lane 32-bit byte swap (vpshufb acts within each 128-bit half).
  static V8 bswap(V8 a) {
    const __m256i mask = _mm256_set_epi8(
        12, 13, 14, 15, 8, 9, 10, 11, 4, 5, 6, 7, 0, 1, 2, 3,  //
        12, 13, 14, 15, 8, 9, 10, 11, 4, 5, 6, 7, 0, 1, 2, 3);
    return {_mm256_shuffle_epi8(a.v, mask)};
  }
};

}  // namespace

void sha256_x8_avx2(const Sha256Lane* lanes, size_t total_blocks,
                    Digest* out) {
  sha256_multi<V8>(lanes, total_blocks, out);
}

}  // namespace dapes::crypto::kernels

#endif  // DAPES_SHA256_X86
