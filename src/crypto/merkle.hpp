/// @file
/// Merkle tree over packet digests (paper §IV-C, "Merkle tree based
/// format").
///
/// The collection producer builds one tree per file; the metadata carries
/// only each tree's root hash, keeping the metadata small enough for a
/// single network-layer packet. A downloader can verify a whole file once
/// all packets arrive (recompute the root), or verify a single packet early
/// if it also obtains an inclusion proof.
#pragma once

#include <cstddef>
#include <vector>

#include "crypto/sha256.hpp"

namespace dapes::crypto {

/// Inclusion proof: sibling hashes from leaf to root plus the leaf index.
struct MerkleProof {
  size_t leaf_index = 0;         ///< which leaf the proof covers
  size_t leaf_count = 0;         ///< leaves in the proven tree
  std::vector<Digest> siblings;  ///< sibling hashes, leaf level first
};

/// Immutable Merkle tree built over a sequence of leaf digests.
///
/// Odd nodes are promoted (paired with themselves is a known second
/// preimage hazard; promotion avoids it): a level of n nodes produces
/// ceil(n/2) parents where the final unpaired node is carried up as-is.
class MerkleTree {
 public:
  /// Build from precomputed leaf digests. Empty input yields the digest of
  /// the empty string as root (degenerate but well-defined).
  explicit MerkleTree(std::vector<Digest> leaves);

  /// Build by hashing raw packet payloads.
  static MerkleTree from_payloads(const std::vector<common::Bytes>& payloads);

  /// The tree's root hash (what the signed metadata carries).
  const Digest& root() const { return root_; }
  /// Number of leaves the tree was built over.
  size_t leaf_count() const { return leaf_count_; }

  /// Inclusion proof for leaf @p index. @throws std::out_of_range.
  MerkleProof prove(size_t index) const;

  /// Verify that @p leaf is at @p proof.leaf_index under @p root.
  static bool verify(const Digest& leaf, const MerkleProof& proof,
                     const Digest& root);

  /// Recompute a root directly from leaves (no tree storage) — used by
  /// downloaders that verify a file after fetching all of its packets.
  static Digest compute_root(const std::vector<Digest>& leaves);

 private:
  // levels_[0] = leaves, levels_.back() = {root}.
  std::vector<std::vector<Digest>> levels_;
  Digest root_;
  size_t leaf_count_ = 0;
};

}  // namespace dapes::crypto
