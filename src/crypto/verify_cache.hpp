/// @file
/// Per-trial verify-result cache keyed on frame-buffer identity.
///
/// PR 2's zero-copy wire layer made the ref-counted frame buffer the
/// stable identity of a broadcast: every in-range receiver of one frame
/// decodes views into the *same* allocation. This cache exploits that — a
/// content digest or a MAC verdict computed once for a frame serves every
/// receiver, instead of each of the N receivers re-hashing the same bytes
/// (the top-3 profile entry ROADMAP's "Kill the crypto hot path" names).
///
/// Two entry kinds share the cache:
///   * content digests, keyed (data pointer, length) — serve
///     `Data::content_digest()` and `Metadata::verify_packet`;
///   * MAC verdicts, keyed (wire pointer, length, signer secret) — serve
///     `Data::verify()` end to end, URI formatting included.
///
/// Keying on the raw pointer is sound because every entry anchors the
/// underlying `common::Buffer`: while an entry lives, the allocation
/// cannot be freed, so no second live buffer can reuse its address (the
/// ABA hazard the issue's pointer+generation scheme guards against —
/// DESIGN.md "Crypto engine & verify cache" discusses the trade). Packet
/// mutation invalidates the packet's cached wire, and any re-encode lands
/// in a fresh allocation with a different address, so stale entries can
/// never be reached — the cache invalidates *with* the wire cache.
///
/// Concurrency contract (mirrors the phase-parallel trace rules):
/// mutation (store/evict/clear) is coordinator-only and happens outside
/// fan-out phases, in canonical delivery order — identical in serial and
/// parallel modes, which keeps trace records and eviction state
/// bit-identical across `--trial-threads`. Fan-out lanes only ever read;
/// a receive-path miss computes locally and does NOT insert. That makes
/// the maps single-writer/multi-reader with writes and reads separated in
/// time, so no lock is needed; the hit/miss statistics are atomics.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "common/buffer.hpp"
#include "crypto/sha256.hpp"

namespace dapes::crypto {

/// Process-wide crypto instrumentation (the codec_counters() idiom):
/// aggregate hit/miss/eviction counts across every live VerifyCache, plus
/// the number of content digests actually computed — what the
/// hash-once-per-frame regression and hit-once-per-broadcast suites
/// assert on.
struct VerifyCounters {
  std::atomic<uint64_t> digest_hits{0};    ///< content-digest lookups served
  std::atomic<uint64_t> digest_misses{0};  ///< content-digest lookups missed
  std::atomic<uint64_t> mac_hits{0};       ///< MAC-verdict lookups served
  std::atomic<uint64_t> mac_misses{0};     ///< MAC-verdict lookups missed
  std::atomic<uint64_t> insertions{0};     ///< entries stored (both kinds)
  std::atomic<uint64_t> evictions{0};      ///< entries evicted (both kinds)
  /// Content digests actually computed through the cached-digest helpers
  /// (cache misses and uncached paths; cache hits do not count).
  std::atomic<uint64_t> content_digests_computed{0};

  /// Zero every counter (tests isolate phases with this).
  void reset() {
    digest_hits = digest_misses = 0;
    mac_hits = mac_misses = 0;
    insertions = evictions = 0;
    content_digests_computed = 0;
  }
};

/// The process-wide VerifyCounters instance.
VerifyCounters& verify_counters();

/// Buffer-identity keyed cache of content digests and MAC verdicts; one
/// instance per trial (see harness::Topology). See the file comment for
/// the keying and concurrency contracts.
class VerifyCache {
 public:
  /// Default per-kind entry capacity. Far above any same-instant batch
  /// size, so a delivery batch's own insertions cannot evict the entries
  /// its receivers are about to read.
  static constexpr size_t kDefaultCapacity = 8192;

  /// Cache with @p capacity entries per kind (minimum 8; digests and MAC
  /// verdicts are accounted separately).
  explicit VerifyCache(size_t capacity = kDefaultCapacity);

  /// Read-side: digest of the bytes at (@p data, @p size) if cached.
  /// Safe from fan-out lanes; counts a digest hit or miss.
  std::optional<Digest> lookup_digest(const void* data, size_t size) const;

  /// Read-side: cached verdict of the MAC check for the wire bytes at
  /// (@p data, @p size) under @p secret. Safe from fan-out lanes; counts
  /// a MAC hit or miss.
  std::optional<bool> lookup_mac(const void* data, size_t size,
                                 const Digest& secret) const;

  /// Write-side (coordinator only): cache @p digest as the SHA-256 of
  /// @p slice's bytes. No-op when the slice does not own ref-counted
  /// storage (nothing to anchor). Refreshes recency on re-store.
  void store_digest(const common::BufferSlice& slice, const Digest& digest);

  /// Write-side (coordinator only): cache @p ok as the verdict of the
  /// MAC check over @p wire under @p secret. No-op on unanchored slices.
  void store_mac(const common::BufferSlice& wire, const Digest& secret,
                 bool ok);

  /// Write-side: drop every entry (capacity and stats are kept).
  void clear();

  /// Live entries, both kinds.
  size_t size() const { return digests_.size() + macs_.size(); }
  /// Per-kind entry capacity.
  size_t capacity() const { return capacity_; }

  /// Per-instance counter snapshot (same fields as VerifyCounters).
  struct Stats {
    uint64_t digest_hits = 0;    ///< digest lookups served by this cache
    uint64_t digest_misses = 0;  ///< digest lookups this cache missed
    uint64_t mac_hits = 0;       ///< MAC lookups served by this cache
    uint64_t mac_misses = 0;     ///< MAC lookups this cache missed
    uint64_t insertions = 0;     ///< entries stored into this cache
    uint64_t evictions = 0;      ///< entries evicted from this cache
  };
  /// Snapshot this cache's counters.
  Stats stats() const;

 private:
  /// Identity of a byte range inside a ref-counted buffer.
  struct RangeKey {
    const void* data = nullptr;
    size_t size = 0;
    bool operator==(const RangeKey&) const = default;
  };
  /// Identity of a MAC check: the byte range plus the signer's secret.
  struct MacKey {
    RangeKey range;
    Digest secret;
    bool operator==(const MacKey&) const = default;
  };
  struct RangeKeyHash {
    size_t operator()(const RangeKey& k) const noexcept {
      // Mix the pointer and length (fibonacci multiplier).
      size_t h = reinterpret_cast<size_t>(k.data);
      h ^= k.size + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      return h;
    }
  };
  struct MacKeyHash {
    size_t operator()(const MacKey& k) const noexcept {
      return RangeKeyHash{}(k.range) ^ std::hash<Digest>{}(k.secret);
    }
  };

  /// One cached result + the anchor that pins the buffer identity.
  template <typename Key, typename Value>
  struct Entry {
    Value value{};
    common::Buffer anchor;
    /// Position in the eviction list (least-recently-stored order).
    typename std::list<Key>::iterator lru;
  };

  template <typename Key, typename Value, typename Hash>
  using Map = std::unordered_map<Key, Entry<Key, Value>, Hash>;

  /// Shared store path: insert/refresh `key -> value`, evicting the
  /// least-recently-stored entry at capacity.
  template <typename Key, typename Value, typename Hash>
  void store(Map<Key, Value, Hash>& map, std::list<Key>& order,
             const Key& key, Value value, common::Buffer anchor);

  size_t capacity_;
  Map<RangeKey, Digest, RangeKeyHash> digests_;
  Map<MacKey, bool, MacKeyHash> macs_;
  /// Least-recently-stored eviction orders (front = oldest). Only the
  /// coordinator touches these (store path), never a reader.
  std::list<RangeKey> digest_order_;
  std::list<MacKey> mac_order_;

  /// Instance stats (atomics: read-side lookups run on fan-out lanes).
  mutable std::atomic<uint64_t> digest_hits_{0};
  mutable std::atomic<uint64_t> digest_misses_{0};
  mutable std::atomic<uint64_t> mac_hits_{0};
  mutable std::atomic<uint64_t> mac_misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
};

/// The calling thread's active per-trial cache (null when caching is
/// off). Installed by VerifyCacheScope on the trial thread and by the
/// delivery prewarm's worker hooks on fan-out lanes.
VerifyCache* active_verify_cache();

/// Install @p cache as the calling thread's active cache (null allowed).
/// Returns the previous installation (for scope restore).
VerifyCache* set_active_verify_cache(VerifyCache* cache);

/// RAII thread-local installation of a trial's VerifyCache, restoring
/// the previous one on destruction (the trace::TrialScope idiom).
class VerifyCacheScope {
 public:
  /// Install @p cache for the scope's lifetime.
  explicit VerifyCacheScope(VerifyCache* cache)
      : prev_(set_active_verify_cache(cache)) {}
  ~VerifyCacheScope() { set_active_verify_cache(prev_); }
  VerifyCacheScope(const VerifyCacheScope&) = delete;
  VerifyCacheScope& operator=(const VerifyCacheScope&) = delete;

 private:
  VerifyCache* prev_;
};

/// SHA-256 of @p content through the active cache: serve a cached digest
/// when the byte range is cached, compute (and count the computation)
/// otherwise. Never inserts — the receive path stays read-only; only the
/// delivery prewarm commits entries.
Digest cached_content_digest(common::BytesView content);

}  // namespace dapes::crypto
