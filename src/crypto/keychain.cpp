#include "crypto/keychain.hpp"

#include "common/bytes.hpp"

namespace dapes::crypto {

Signature PrivateKey::sign(std::string_view name,
                           common::BytesView content) const {
  return sign(name, Sha256::hash(content));
}

Signature PrivateKey::sign(std::string_view name,
                           const Digest& content_digest) const {
  return Signature{id_, KeyChain::compute_mac(secret_, name, content_digest)};
}

Digest KeyChain::compute_mac(const Digest& secret, std::string_view name,
                             const Digest& content_digest) {
  Sha256 ctx;
  ctx.update(secret.view());
  ctx.update(name);
  // Length-prefix the name to prevent (name, content) boundary ambiguity.
  common::Bytes len;
  common::append_be(len, name.size(), 8);
  ctx.update(common::BytesView(len.data(), len.size()));
  ctx.update(content_digest.view());
  return ctx.final_digest();
}

Digest KeyChain::compute_mac(const Digest& secret, std::string_view name,
                             common::BytesView content) {
  return compute_mac(secret, name, Sha256::hash(content));
}

PrivateKey KeyChain::generate_key(const std::string& owner_name,
                                  uint64_t seed) {
  Sha256 secret_ctx;
  secret_ctx.update("dapes-key-secret/");
  secret_ctx.update(owner_name);
  common::Bytes seed_bytes;
  common::append_be(seed_bytes, seed, 8);
  secret_ctx.update(common::BytesView(seed_bytes.data(), seed_bytes.size()));
  Digest secret = secret_ctx.final_digest();

  Sha256 id_ctx;
  id_ctx.update("dapes-key-id/");
  id_ctx.update(secret.view());
  KeyId id{id_ctx.final_digest()};

  keys_[id] = secret;
  return PrivateKey(id, secret);
}

void KeyChain::import_key(const KeyId& id, const Digest& secret) {
  keys_[id] = secret;
}

bool KeyChain::verify(std::string_view name, common::BytesView content,
                      const Signature& sig) const {
  if (!keys_.contains(sig.signer)) return false;
  return verify(name, Sha256::hash(content), sig);
}

bool KeyChain::verify(std::string_view name, const Digest& content_digest,
                      const Signature& sig) const {
  auto it = keys_.find(sig.signer);
  if (it == keys_.end()) return false;
  return compute_mac(it->second, name, content_digest) == sig.mac;
}

const Digest* KeyChain::secret_for(const KeyId& id) const {
  auto it = keys_.find(id);
  return it == keys_.end() ? nullptr : &it->second;
}

void KeyChain::add_trust_anchor(const KeyId& id) { anchors_[id] = true; }

bool KeyChain::is_trusted(const KeyId& id) const {
  auto it = anchors_.find(id);
  return it != anchors_.end() && it->second;
}

bool KeyChain::knows(const KeyId& id) const { return keys_.contains(id); }

}  // namespace dapes::crypto
