// Bithoc — BitTorrent for wireless ad-hoc networks (Krifa et al. 2009,
// Sbai et al. 2008). The paper's first IP-based comparison point.
//
// Peers discover each other and the pieces they hold through periodic
// scoped flooding of HELLO messages (TTL 2 = the "close" neighborhood).
// Pieces are fetched Rarest-Piece-First from close neighbors over TCP;
// pieces unavailable nearby are requested from "far" peers remembered
// from older HELLOs, reachable via DSDV routes. All the overhead sources
// the paper attributes to Bithoc are live here: proactive DSDV dumps,
// application-layer flooding, TCP (re)transmissions over lossy multi-hop
// paths, and per-receiver unicast (no broadcast utility).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>

#include "dapes/bitmap.hpp"
#include "dapes/collection.hpp"
#include "ip/node.hpp"
#include "ip/tcp.hpp"
#include "manet/dsdv.hpp"

namespace dapes::baselines {

using core::Bitmap;
using core::Collection;
using ip::Address;

/// Relays Bithoc HELLO floods on nodes that are not Bithoc peers (the
/// topology's 20 forwarding nodes rebroadcast scoped floods as well as
/// routing unicast).
class HelloRelay {
 public:
  explicit HelloRelay(ip::Node& node);

 private:
  void on_hello(const ip::Packet& packet);
  ip::Node& node_;
  std::set<std::pair<Address, uint32_t>> seen_;
};

class BithocPeer {
 public:
  struct Options {
    common::Duration hello_period = common::Duration::seconds(2.0);
    /// Initial TTL: 1 means one relay hop, so HELLOs reach the paper's
    /// "close" neighborhood of at most two hops.
    uint8_t hello_ttl = 1;
    int parallel_requests = 4;
    common::Duration request_timeout = common::Duration::seconds(3.0);
    /// Remembered far-peer bitmaps (from HELLOs heard long ago).
    common::Duration close_ttl = common::Duration::seconds(6.0);
  };

  BithocPeer(sim::Scheduler& sched, sim::Medium& medium,
             sim::MobilityModel* mobility, common::Rng rng, Options options,
             std::shared_ptr<Collection> collection, bool seed);

  void start();

  bool complete() const { return completed_at_.has_value(); }
  std::optional<common::TimePoint> completion_time() const {
    return completed_at_;
  }
  double progress() const {
    return have_.empty() ? 0.0 : have_.completeness();
  }
  void set_completion_callback(std::function<void(common::TimePoint)> cb) {
    on_complete_ = std::move(cb);
  }

  Address address() const { return node_.address(); }
  const ip::Node& node() const { return node_; }

  struct Stats {
    uint64_t hellos_sent = 0;
    uint64_t pieces_requested = 0;
    uint64_t pieces_received = 0;
    uint64_t pieces_served = 0;
    uint64_t request_timeouts = 0;
    uint64_t tcp_failures = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Modeled protocol state (bitmaps + routing table), bytes.
  size_t state_bytes() const;

 private:
  struct KnownPeer {
    Bitmap bitmap;
    common::TimePoint heard{};
    uint8_t hops = 0;
  };

  void hello_tick();
  void on_hello(const ip::Packet& packet);
  void on_tcp_message(Address peer, const common::Bytes& message);
  void pump();
  std::optional<std::pair<size_t, Address>> pick_close_piece() const;
  std::optional<std::pair<size_t, Address>> pick_far_piece() const;
  void request_piece(size_t piece, Address holder);
  void complete_check();

  sim::Scheduler& sched_;
  common::Rng rng_;
  Options options_;
  ip::Node node_;
  manet::Dsdv* dsdv_ = nullptr;  // owned by node_
  ip::TcpLite tcp_;
  std::shared_ptr<Collection> collection_;
  Bitmap have_;
  std::map<Address, KnownPeer> known_peers_;
  std::set<std::pair<Address, uint32_t>> seen_hellos_;
  std::map<size_t, Address> in_flight_;  // piece -> holder
  uint32_t hello_seq_ = 0;
  std::optional<common::TimePoint> completed_at_;
  std::function<void(common::TimePoint)> on_complete_;
  Stats stats_;
};

}  // namespace dapes::baselines
