#include "baselines/bithoc.hpp"

#include <algorithm>

namespace dapes::baselines {

namespace {

// HELLO payload: [seq(4)][orig_ttl(1)][bitmap wire form]
common::Bytes encode_hello(uint32_t seq, uint8_t orig_ttl,
                           const Bitmap& bitmap) {
  common::Bytes out;
  common::append_be(out, seq, 4);
  out.push_back(orig_ttl);
  common::Bytes bits = bitmap.encode();
  out.insert(out.end(), bits.begin(), bits.end());
  return out;
}

struct HelloFields {
  uint32_t seq;
  uint8_t orig_ttl;
  Bitmap bitmap;
};

std::optional<HelloFields> decode_hello(common::BytesView payload) {
  if (payload.size() < 5) return std::nullopt;
  HelloFields h;
  h.seq = static_cast<uint32_t>(common::read_be(payload, 0, 4));
  h.orig_ttl = payload[4];
  auto bm = Bitmap::decode(payload.subspan(5));
  if (!bm) return std::nullopt;
  h.bitmap = std::move(*bm);
  return h;
}

// TCP messages: [type(1)][piece(4)] for requests,
// [type(1)][piece(4)][payload] for data.
constexpr uint8_t kMsgRequest = 1;
constexpr uint8_t kMsgPiece = 2;

}  // namespace

HelloRelay::HelloRelay(ip::Node& node) : node_(node) {
  node_.register_handler(ip::Proto::kHello,
                         [this](const ip::Packet& p) { on_hello(p); });
}

void HelloRelay::on_hello(const ip::Packet& packet) {
  if (packet.ttl == 0 || packet.payload.size() < 5) return;
  uint32_t seq = static_cast<uint32_t>(
      common::read_be(common::BytesView(packet.payload.data(), 4), 0, 4));
  if (!seen_.insert({packet.src, seq}).second) return;
  if (seen_.size() > 8192) seen_.clear();  // crude bound; dupes re-relay rarely
  ip::Packet relay = packet;
  relay.ttl -= 1;
  node_.send_link(std::move(relay), "bithoc-hello");
}

BithocPeer::BithocPeer(sim::Scheduler& sched, sim::Medium& medium,
                       sim::MobilityModel* mobility, common::Rng rng,
                       Options options, std::shared_ptr<Collection> collection,
                       bool seed)
    : sched_(sched),
      rng_(rng),
      options_(options),
      node_(sched, medium, mobility, rng_.fork()),
      tcp_(node_),
      collection_(std::move(collection)),
      have_(collection_->total_packets()) {
  auto dsdv = std::make_unique<manet::Dsdv>();
  dsdv_ = dsdv.get();
  node_.set_routing(std::move(dsdv));

  if (seed) {
    for (size_t i = 0; i < have_.size(); ++i) have_.set(i);
    completed_at_ = sched_.now();
  }

  node_.register_handler(ip::Proto::kHello,
                         [this](const ip::Packet& p) { on_hello(p); });
  tcp_.set_receive_callback(
      [this](Address peer, const common::Bytes& m) { on_tcp_message(peer, m); });
  tcp_.set_failure_callback([this](Address peer) {
    ++stats_.tcp_failures;
    for (auto it = in_flight_.begin(); it != in_flight_.end();) {
      it = it->second == peer ? in_flight_.erase(it) : ++it;
    }
    pump();
  });
}

void BithocPeer::start() {
  common::Duration initial =
      common::Duration::microseconds(static_cast<int64_t>(rng_.next_below(
          static_cast<uint64_t>(options_.hello_period.us))));
  sched_.schedule(initial, [this] { hello_tick(); });
}

void BithocPeer::hello_tick() {
  ip::Packet hello;
  hello.src = node_.address();
  hello.dst = ip::kBroadcast;
  hello.next_hop = ip::kBroadcast;
  hello.proto = ip::Proto::kHello;
  hello.ttl = options_.hello_ttl;
  hello.payload = encode_hello(hello_seq_++, options_.hello_ttl, have_);
  ++stats_.hellos_sent;
  node_.send_link(std::move(hello), "bithoc-hello");

  pump();

  common::Duration jitter =
      common::Duration::microseconds(static_cast<int64_t>(rng_.next_below(
          static_cast<uint64_t>(options_.hello_period.us / 4) + 1)));
  sched_.schedule(options_.hello_period + jitter, [this] { hello_tick(); });
}

void BithocPeer::on_hello(const ip::Packet& packet) {
  auto hello = decode_hello(
      common::BytesView(packet.payload.data(), packet.payload.size()));
  if (!hello || packet.src == node_.address()) return;

  uint8_t hops = static_cast<uint8_t>(hello->orig_ttl - packet.ttl + 1);
  known_peers_[packet.src] =
      KnownPeer{hello->bitmap, sched_.now(), hops};

  // Scoped re-flooding (peers relay too).
  if (packet.ttl > 0 && seen_hellos_.insert({packet.src, hello->seq}).second) {
    ip::Packet relay = packet;
    relay.ttl -= 1;
    node_.send_link(std::move(relay), "bithoc-hello");
  }
  pump();
}

std::optional<std::pair<size_t, Address>> BithocPeer::pick_close_piece()
    const {
  // Rarest piece first across fresh close neighbors.
  common::TimePoint now = sched_.now();
  std::optional<size_t> best_piece;
  size_t best_count = SIZE_MAX;
  Address best_holder = ip::kInvalid;

  std::vector<const KnownPeer*> close;
  std::vector<Address> close_addr;
  for (const auto& [addr, kp] : known_peers_) {
    if (now - kp.heard <= options_.close_ttl && kp.hops <= 2) {
      close.push_back(&kp);
      close_addr.push_back(addr);
    }
  }
  if (close.empty()) return std::nullopt;

  for (size_t piece = 0; piece < have_.size(); ++piece) {
    if (have_.test(piece) || in_flight_.contains(piece)) continue;
    size_t holders = 0;
    Address holder = ip::kInvalid;
    uint8_t holder_hops = 255;
    for (size_t i = 0; i < close.size(); ++i) {
      if (piece < close[i]->bitmap.size() && close[i]->bitmap.test(piece)) {
        ++holders;
        if (close[i]->hops < holder_hops) {
          holder = close_addr[i];
          holder_hops = close[i]->hops;
        }
      }
    }
    if (holders == 0) continue;
    if (holders < best_count) {
      best_count = holders;
      best_piece = piece;
      best_holder = holder;
    }
  }
  if (!best_piece) return std::nullopt;
  return std::make_pair(*best_piece, best_holder);
}

std::optional<std::pair<size_t, Address>> BithocPeer::pick_far_piece() const {
  // Pieces nobody close has: ask a remembered far peer with a live route.
  for (size_t piece = 0; piece < have_.size(); ++piece) {
    if (have_.test(piece) || in_flight_.contains(piece)) continue;
    for (const auto& [addr, kp] : known_peers_) {
      if (piece >= kp.bitmap.size() || !kp.bitmap.test(piece)) continue;
      if (!dsdv_->has_route(addr)) continue;
      return std::make_pair(piece, addr);
    }
  }
  return std::nullopt;
}

void BithocPeer::pump() {
  if (completed_at_ && have_.full()) return;
  while (in_flight_.size() < static_cast<size_t>(options_.parallel_requests)) {
    auto pick = pick_close_piece();
    if (!pick) pick = pick_far_piece();
    if (!pick) return;
    request_piece(pick->first, pick->second);
  }
}

void BithocPeer::request_piece(size_t piece, Address holder) {
  in_flight_[piece] = holder;
  ++stats_.pieces_requested;
  common::Bytes msg;
  msg.push_back(kMsgRequest);
  common::append_be(msg, piece, 4);
  tcp_.send(holder, std::move(msg));

  sched_.schedule(options_.request_timeout, [this, piece] {
    auto it = in_flight_.find(piece);
    if (it == in_flight_.end()) return;
    in_flight_.erase(it);
    ++stats_.request_timeouts;
    pump();
  });
}

void BithocPeer::on_tcp_message(Address peer, const common::Bytes& message) {
  if (message.size() < 5) return;
  uint8_t type = message[0];
  size_t piece = static_cast<size_t>(
      common::read_be(common::BytesView(message.data(), message.size()), 1, 4));

  if (type == kMsgRequest) {
    if (piece >= have_.size() || !have_.test(piece)) return;
    ++stats_.pieces_served;
    common::Bytes reply;
    reply.push_back(kMsgPiece);
    common::append_be(reply, piece, 4);
    common::Bytes payload = collection_->payload(piece);
    reply.insert(reply.end(), payload.begin(), payload.end());
    tcp_.send(peer, std::move(reply));
    return;
  }

  if (type == kMsgPiece) {
    in_flight_.erase(piece);
    if (piece < have_.size() && !have_.test(piece)) {
      have_.set(piece);
      ++stats_.pieces_received;
      complete_check();
    }
    pump();
  }
}

void BithocPeer::complete_check() {
  if (completed_at_ || !have_.full()) return;
  completed_at_ = sched_.now();
  if (on_complete_) on_complete_(*completed_at_);
}

size_t BithocPeer::state_bytes() const {
  size_t bytes = (have_.size() + 7) / 8;
  for (const auto& [addr, kp] : known_peers_) {
    bytes += sizeof(Address) + (kp.bitmap.size() + 7) / 8 + 16;
  }
  bytes += dsdv_->table_size() * 24;
  return bytes;
}

}  // namespace dapes::baselines
