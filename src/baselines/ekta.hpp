// Ekta — a DHT substrate for MANETs (Pucha, Das & Hu, 2004). The paper's
// second IP-based comparison point.
//
// Ekta integrates a Pastry-style key space with DSR at the network layer.
// Holders PUT (object -> holder) mappings at the object key's home node
// (the member whose DHT id is numerically closest to the key);
// downloaders GET holder lists, then fetch pieces from holders over UDP.
// Every control and data message is routed by DSR, so reactive route
// discovery, DHT maintenance and per-receiver unicast all show up as the
// overhead the paper measures.
//
// Simplifications kept at the paper's swarm scale (24 peers), recorded in
// DESIGN.md:
//   * nodes know the member list, so key-space routing collapses to
//     "send to the numerically closest member" — DSR still has to find
//     the physical multi-hop path, which is where Ekta's cost lives;
//   * DHT objects are files (not packets): holders announce files they
//     hold pieces of, and piece requests carry a want-bitmap so the
//     holder returns any piece the requester is missing.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "dapes/bitmap.hpp"
#include "dapes/collection.hpp"
#include "ip/node.hpp"
#include "ip/udp.hpp"
#include "manet/dsr.hpp"

namespace dapes::baselines {

using core::Bitmap;
using core::Collection;
using ip::Address;

class EktaPeer {
 public:
  struct Options {
    int parallel_requests = 4;
    common::Duration request_timeout = common::Duration::seconds(2.0);
    common::Duration get_timeout = common::Duration::seconds(2.0);
    /// Holder lists this old are re-queried.
    common::Duration holder_ttl = common::Duration::seconds(30.0);
    /// Per-file spacing between repeated GETs for the same key.
    common::Duration get_backoff = common::Duration::seconds(5.0);
    /// Scheduler cadence for publishing and fetch pumping.
    common::Duration publish_period = common::Duration::seconds(2.0);
    /// Full re-announcement period (PUTs are unreliable datagrams).
    common::Duration republish_period = common::Duration::seconds(30.0);
    int max_request_retries = 3;
  };

  EktaPeer(sim::Scheduler& sched, sim::Medium& medium,
           sim::MobilityModel* mobility, common::Rng rng, Options options,
           std::shared_ptr<Collection> collection, bool seed);

  /// All peers must be registered with each other before start() (the
  /// bootstrap member list).
  void add_member(Address member);
  void start();

  bool complete() const { return completed_at_.has_value(); }
  std::optional<common::TimePoint> completion_time() const {
    return completed_at_;
  }
  double progress() const {
    return have_.empty() ? 0.0 : have_.completeness();
  }
  void set_completion_callback(std::function<void(common::TimePoint)> cb) {
    on_complete_ = std::move(cb);
  }

  Address address() const { return node_.address(); }

  struct Stats {
    uint64_t puts_sent = 0;
    uint64_t gets_sent = 0;
    uint64_t replies_sent = 0;
    uint64_t pieces_requested = 0;
    uint64_t pieces_received = 0;
    uint64_t pieces_served = 0;
    uint64_t timeouts = 0;
  };
  const Stats& stats() const { return stats_; }

  size_t state_bytes() const;

  /// DHT id of an address (uniform via SplitMix finalizer).
  static uint64_t dht_id(Address address);
  /// Key of a file index within this collection.
  uint64_t file_key(size_t file_index) const;

 private:
  void publish_tick();
  void pump();
  void request_from(size_t file_index, Address holder);
  Address pick_holder(const std::vector<Address>& holders) const;
  void schedule_request_timeout(uint32_t req_id);
  void on_dht(Address peer, const common::Bytes& datagram);
  void on_transfer(Address peer, const common::Bytes& datagram);
  Address home_of(uint64_t key) const;
  void complete_check();

  /// Files this peer holds at least one piece of.
  std::vector<size_t> held_files() const;
  /// Within-file bitmap of missing pieces (bit set = wanted).
  Bitmap want_bitmap(size_t file_index) const;
  size_t file_offset(size_t file_index) const;
  size_t file_packets(size_t file_index) const;

  sim::Scheduler& sched_;
  common::Rng rng_;
  Options options_;
  ip::Node node_;
  manet::Dsr* dsr_ = nullptr;  // owned by node_
  ip::UdpLite udp_;
  std::shared_ptr<Collection> collection_;
  Bitmap have_;
  std::vector<Address> members_;

  // Downloader state.
  struct HolderInfo {
    std::vector<Address> holders;
    common::TimePoint fetched{};
  };
  std::map<size_t, HolderInfo> holder_cache_;       // file -> holders
  std::set<size_t> gets_pending_;                   // file keys
  std::map<size_t, common::TimePoint> get_backoff_until_;
  struct PendingRequest {
    Address holder = ip::kInvalid;
    size_t file_index = 0;
    int tries = 0;
  };
  std::map<uint32_t, PendingRequest> in_flight_;    // req_id -> request
  uint32_t next_req_id_ = 1;

  // Home-node store: file -> holders that PUT here.
  std::map<size_t, std::set<Address>> store_;
  bool publish_dirty_ = true;

  common::TimePoint last_full_publish_{-1'000'000'000};
  std::optional<common::TimePoint> completed_at_;
  std::function<void(common::TimePoint)> on_complete_;
  Stats stats_;
};

}  // namespace dapes::baselines
