#include "baselines/ekta.hpp"

#include <algorithm>

namespace dapes::baselines {

namespace {

constexpr uint16_t kDhtPort = 1;
constexpr uint16_t kTransferPort = 2;

// DHT datagrams: [type(1)][count(2)][file(4)...]                  PUT
//                [type(1)][count(2)][file(4)...]                  GET
//                [type(1)][entries(2)]{[file(4)][n(2)][addr..]}   REPLY
// Transfer:      [type(1)][req(4)][file(4)][want-bitmap]          REQ
//                [type(1)][req(4)][piece(4)][payload]             PIECE
//                piece = 0xffffffff means "nothing you want here".
constexpr uint8_t kPut = 1;
constexpr uint8_t kGet = 2;
constexpr uint8_t kReply = 3;
constexpr uint8_t kReq = 4;
constexpr uint8_t kPiece = 5;
constexpr uint32_t kNoPiece = 0xffffffff;

}  // namespace

uint64_t EktaPeer::dht_id(Address address) {
  uint64_t x = address + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t EktaPeer::file_key(size_t file_index) const {
  uint64_t x = file_index * 0x9e3779b97f4a7c15ULL + 0x1234567;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return x ^ (x >> 31);
}

EktaPeer::EktaPeer(sim::Scheduler& sched, sim::Medium& medium,
                   sim::MobilityModel* mobility, common::Rng rng,
                   Options options, std::shared_ptr<Collection> collection,
                   bool seed)
    : sched_(sched),
      rng_(rng),
      options_(options),
      node_(sched, medium, mobility, rng_.fork()),
      udp_(node_),
      collection_(std::move(collection)),
      have_(collection_->total_packets()) {
  auto dsr = std::make_unique<manet::Dsr>();
  dsr_ = dsr.get();
  node_.set_routing(std::move(dsr));

  if (seed) {
    for (size_t i = 0; i < have_.size(); ++i) have_.set(i);
    completed_at_ = sched_.now();
  }

  udp_.bind(kDhtPort, [this](Address peer, uint16_t, const common::Bytes& d) {
    on_dht(peer, d);
  });
  udp_.bind(kTransferPort,
            [this](Address peer, uint16_t, const common::Bytes& d) {
              on_transfer(peer, d);
            });
}

void EktaPeer::add_member(Address member) {
  if (std::find(members_.begin(), members_.end(), member) == members_.end()) {
    members_.push_back(member);
  }
}

void EktaPeer::start() {
  common::Duration initial =
      common::Duration::microseconds(static_cast<int64_t>(rng_.next_below(
          static_cast<uint64_t>(options_.publish_period.us))));
  sched_.schedule(initial, [this] { publish_tick(); });
}

Address EktaPeer::home_of(uint64_t key) const {
  Address best = node_.address();
  uint64_t best_dist = ~uint64_t{0};
  for (Address m : members_) {
    uint64_t dist = dht_id(m) ^ key;
    if (dist < best_dist) {
      best_dist = dist;
      best = m;
    }
  }
  return best;
}

size_t EktaPeer::file_offset(size_t file_index) const {
  size_t offset = 0;
  const auto& files = collection_->layout().files();
  for (size_t i = 0; i < file_index && i < files.size(); ++i) {
    offset += files[i].packet_count;
  }
  return offset;
}

size_t EktaPeer::file_packets(size_t file_index) const {
  return collection_->layout().file(file_index).packet_count;
}

std::vector<size_t> EktaPeer::held_files() const {
  std::vector<size_t> out;
  const auto& files = collection_->layout().files();
  size_t offset = 0;
  for (size_t f = 0; f < files.size(); ++f) {
    for (size_t i = 0; i < files[f].packet_count; ++i) {
      if (have_.test(offset + i)) {
        out.push_back(f);
        break;
      }
    }
    offset += files[f].packet_count;
  }
  return out;
}

Bitmap EktaPeer::want_bitmap(size_t file_index) const {
  size_t offset = file_offset(file_index);
  size_t count = file_packets(file_index);
  Bitmap want(count);
  for (size_t i = 0; i < count; ++i) {
    if (!have_.test(offset + i)) want.set(i);
  }
  return want;
}

void EktaPeer::publish_tick() {
  common::TimePoint now = sched_.now();
  if (publish_dirty_ ||
      now - last_full_publish_ >= options_.republish_period) {
    publish_dirty_ = false;
    last_full_publish_ = now;
    std::map<Address, std::vector<size_t>> by_home;
    for (size_t f : held_files()) {
      Address home = home_of(file_key(f));
      if (home == node_.address()) {
        store_[f].insert(node_.address());
      } else {
        by_home[home].push_back(f);
      }
    }
    for (auto& [home, files] : by_home) {
      common::Bytes msg;
      msg.push_back(kPut);
      common::append_be(msg, files.size(), 2);
      for (size_t f : files) common::append_be(msg, f, 4);
      ++stats_.puts_sent;
      udp_.send(home, kDhtPort, kDhtPort, std::move(msg));
    }
  }

  pump();

  common::Duration jitter =
      common::Duration::microseconds(static_cast<int64_t>(rng_.next_below(
          static_cast<uint64_t>(options_.publish_period.us / 4) + 1)));
  sched_.schedule(options_.publish_period + jitter, [this] { publish_tick(); });
}

void EktaPeer::pump() {
  if (completed_at_ && have_.full()) return;
  common::TimePoint now = sched_.now();

  const size_t file_count = collection_->layout().file_count();
  std::map<Address, std::vector<size_t>> gets_by_home;

  // Files with missing pieces, in a rotating order so parallel requests
  // spread across files.
  std::vector<size_t> incomplete;
  for (size_t f = 0; f < file_count; ++f) {
    if (!want_bitmap(f).none()) incomplete.push_back(f);
  }
  if (incomplete.empty()) return;

  for (size_t f : incomplete) {
    auto hit = holder_cache_.find(f);
    bool fresh = hit != holder_cache_.end() &&
                 now - hit->second.fetched <= options_.holder_ttl &&
                 !hit->second.holders.empty();
    if (!fresh && !gets_pending_.contains(f)) {
      auto bit = get_backoff_until_.find(f);
      if (bit == get_backoff_until_.end() || bit->second <= now) {
        Address home = home_of(file_key(f));
        if (home == node_.address()) {
          auto sit = store_.find(f);
          if (sit != store_.end() && !sit->second.empty()) {
            HolderInfo info;
            info.holders.assign(sit->second.begin(), sit->second.end());
            info.fetched = now;
            holder_cache_[f] = std::move(info);
          }
        } else {
          gets_pending_.insert(f);
          get_backoff_until_[f] = now + options_.get_backoff;
          gets_by_home[home].push_back(f);
        }
      }
    }
  }
  for (auto& [home, files] : gets_by_home) {
    common::Bytes msg;
    msg.push_back(kGet);
    common::append_be(msg, files.size(), 2);
    for (size_t f : files) common::append_be(msg, f, 4);
    ++stats_.gets_sent;
    udp_.send(home, kDhtPort, kDhtPort, std::move(msg));
    auto pending = files;
    sched_.schedule(options_.get_timeout, [this, pending] {
      bool any = false;
      for (size_t f : pending) any |= gets_pending_.erase(f) > 0;
      if (any) ++stats_.timeouts;
    });
  }

  // Launch piece requests round-robin over incomplete files with fresh
  // holder lists. Prefer holders we already have a live DSR route to —
  // every new holder otherwise costs a route discovery flood.
  size_t start = rng_.next_below(incomplete.size());
  for (size_t k = 0;
       k < incomplete.size() &&
       in_flight_.size() < static_cast<size_t>(options_.parallel_requests);
       ++k) {
    size_t f = incomplete[(start + k) % incomplete.size()];
    auto hit = holder_cache_.find(f);
    if (hit == holder_cache_.end() || hit->second.holders.empty()) continue;
    if (now - hit->second.fetched > options_.holder_ttl) continue;
    Address holder = pick_holder(hit->second.holders);
    if (holder == ip::kInvalid || holder == node_.address()) continue;
    request_from(f, holder);
  }
}

Address EktaPeer::pick_holder(const std::vector<Address>& holders) const {
  std::vector<Address> routed;
  for (Address h : holders) {
    if (h != node_.address() && dsr_->has_route(h)) routed.push_back(h);
  }
  const std::vector<Address>& pool = routed.empty() ? holders : routed;
  if (pool.empty()) return ip::kInvalid;
  return pool[const_cast<common::Rng&>(rng_).next_below(pool.size())];
}

void EktaPeer::request_from(size_t file_index, Address holder) {
  uint32_t req_id = next_req_id_++;
  in_flight_[req_id] = PendingRequest{holder, file_index, 0};
  ++stats_.pieces_requested;
  common::Bytes msg;
  msg.push_back(kReq);
  common::append_be(msg, req_id, 4);
  common::append_be(msg, file_index, 4);
  common::Bytes want = want_bitmap(file_index).encode();
  msg.insert(msg.end(), want.begin(), want.end());
  udp_.send(holder, kTransferPort, kTransferPort, std::move(msg));
  schedule_request_timeout(req_id);
}

void EktaPeer::schedule_request_timeout(uint32_t req_id) {
  sched_.schedule(options_.request_timeout, [this, req_id] {
    auto it = in_flight_.find(req_id);
    if (it == in_flight_.end()) return;
    PendingRequest req = it->second;
    in_flight_.erase(it);
    ++stats_.timeouts;
    if (req.tries + 1 <= options_.max_request_retries) {
      // Rotate to another holder if any (route-aware).
      auto hit = holder_cache_.find(req.file_index);
      Address holder = req.holder;
      if (hit != holder_cache_.end() && hit->second.holders.size() > 1) {
        Address candidate = pick_holder(hit->second.holders);
        if (candidate != ip::kInvalid) holder = candidate;
      }
      uint32_t new_id = next_req_id_++;
      in_flight_[new_id] =
          PendingRequest{holder, req.file_index, req.tries + 1};
      common::Bytes msg;
      msg.push_back(kReq);
      common::append_be(msg, new_id, 4);
      common::append_be(msg, req.file_index, 4);
      common::Bytes want = want_bitmap(req.file_index).encode();
      msg.insert(msg.end(), want.begin(), want.end());
      udp_.send(holder, kTransferPort, kTransferPort, std::move(msg));
      schedule_request_timeout(new_id);
    } else {
      // Holder list is probably stale: force a new lookup.
      holder_cache_.erase(req.file_index);
      pump();
    }
  });
}

void EktaPeer::on_dht(Address peer, const common::Bytes& datagram) {
  common::BytesView d(datagram.data(), datagram.size());
  if (d.empty()) return;
  switch (d[0]) {
    case kPut: {
      if (d.size() < 3) return;
      size_t count = common::read_be(d, 1, 2);
      if (d.size() != 3 + 4 * count) return;
      for (size_t i = 0; i < count; ++i) {
        size_t f = static_cast<size_t>(common::read_be(d, 3 + 4 * i, 4));
        store_[f].insert(peer);
      }
      break;
    }
    case kGet: {
      if (d.size() < 3) return;
      size_t count = common::read_be(d, 1, 2);
      if (d.size() != 3 + 4 * count) return;
      common::Bytes reply;
      reply.push_back(kReply);
      common::append_be(reply, count, 2);
      for (size_t i = 0; i < count; ++i) {
        size_t f = static_cast<size_t>(common::read_be(d, 3 + 4 * i, 4));
        auto it = store_.find(f);
        size_t holders = it == store_.end() ? 0 : it->second.size();
        common::append_be(reply, f, 4);
        common::append_be(reply, holders, 2);
        if (it != store_.end()) {
          for (Address holder : it->second) {
            common::append_be(reply, holder, 4);
          }
        }
      }
      ++stats_.replies_sent;
      udp_.send(peer, kDhtPort, kDhtPort, std::move(reply));
      break;
    }
    case kReply: {
      if (d.size() < 3) return;
      size_t entries = common::read_be(d, 1, 2);
      size_t offset = 3;
      for (size_t e = 0; e < entries; ++e) {
        if (offset + 6 > d.size()) return;
        size_t f = static_cast<size_t>(common::read_be(d, offset, 4));
        size_t count = common::read_be(d, offset + 4, 2);
        offset += 6;
        if (offset + 4 * count > d.size()) return;
        gets_pending_.erase(f);
        HolderInfo info;
        info.fetched = sched_.now();
        for (size_t i = 0; i < count; ++i) {
          info.holders.push_back(
              static_cast<Address>(common::read_be(d, offset, 4)));
          offset += 4;
        }
        if (!info.holders.empty()) {
          holder_cache_[f] = std::move(info);
        }
      }
      pump();
      break;
    }
    default:
      break;
  }
}

void EktaPeer::on_transfer(Address peer, const common::Bytes& datagram) {
  common::BytesView d(datagram.data(), datagram.size());
  if (d.size() < 9) return;
  uint32_t req_id = static_cast<uint32_t>(common::read_be(d, 1, 4));

  if (d[0] == kReq) {
    size_t file_index = static_cast<size_t>(common::read_be(d, 5, 4));
    if (file_index >= collection_->layout().file_count()) return;
    auto want = Bitmap::decode(d.subspan(9));
    if (!want) return;

    // Serve a random piece we hold from the requester's want set.
    size_t offset = file_offset(file_index);
    size_t count = file_packets(file_index);
    std::vector<size_t> candidates;
    for (size_t i = 0; i < count && i < want->size(); ++i) {
      if (want->test(i) && have_.test(offset + i)) candidates.push_back(i);
    }
    common::Bytes reply;
    reply.push_back(kPiece);
    common::append_be(reply, req_id, 4);
    if (candidates.empty()) {
      common::append_be(reply, kNoPiece, 4);
    } else {
      size_t within = candidates[rng_.next_below(candidates.size())];
      size_t global = offset + within;
      common::append_be(reply, global, 4);
      common::Bytes payload = collection_->payload(global);
      reply.insert(reply.end(), payload.begin(), payload.end());
      ++stats_.pieces_served;
    }
    udp_.send(peer, kTransferPort, kTransferPort, std::move(reply));
    return;
  }

  if (d[0] == kPiece) {
    auto it = in_flight_.find(req_id);
    if (it != in_flight_.end()) in_flight_.erase(it);
    uint32_t piece = static_cast<uint32_t>(common::read_be(d, 5, 4));
    if (piece != kNoPiece && piece < have_.size() && !have_.test(piece)) {
      have_.set(piece);
      publish_dirty_ = true;
      ++stats_.pieces_received;
      complete_check();
    }
    pump();
  }
}

void EktaPeer::complete_check() {
  if (completed_at_ || !have_.full()) return;
  completed_at_ = sched_.now();
  if (on_complete_) on_complete_(*completed_at_);
}

size_t EktaPeer::state_bytes() const {
  size_t bytes = (have_.size() + 7) / 8;
  bytes += holder_cache_.size() * 32;
  for (const auto& [file, holders] : store_) {
    bytes += 8 + holders.size() * 4;
  }
  bytes += dsr_->cache_size() * 40;
  return bytes;
}

}  // namespace dapes::baselines
