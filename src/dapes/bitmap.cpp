#include "dapes/bitmap.hpp"

#include <bit>
#include <stdexcept>

namespace dapes::core {

CollectionLayout::CollectionLayout(std::vector<FileEntry> files)
    : files_(std::move(files)) {
  offsets_.reserve(files_.size());
  for (const auto& f : files_) {
    offsets_.push_back(total_);
    total_ += f.packet_count;
  }
}

std::optional<size_t> CollectionLayout::index_of(const std::string& file_name,
                                                 uint64_t seq) const {
  for (size_t i = 0; i < files_.size(); ++i) {
    if (files_[i].name == file_name) {
      if (seq >= files_[i].packet_count) return std::nullopt;
      return offsets_[i] + seq;
    }
  }
  return std::nullopt;
}

CollectionLayout::Location CollectionLayout::locate(size_t global_index) const {
  if (global_index >= total_) {
    throw std::out_of_range("CollectionLayout::locate: index out of range");
  }
  // Linear scan: collections have tens of files at most.
  for (size_t i = files_.size(); i-- > 0;) {
    if (global_index >= offsets_[i]) {
      return Location{files_[i].name, global_index - offsets_[i]};
    }
  }
  throw std::out_of_range("CollectionLayout::locate: unreachable");
}

Bitmap::Bitmap(size_t size) : size_(size), words_((size + 63) / 64, 0) {}

bool Bitmap::test(size_t i) const {
  if (i >= size_) throw std::out_of_range("Bitmap::test");
  return (words_[i / 64] >> (i % 64)) & 1;
}

void Bitmap::set(size_t i, bool value) {
  if (i >= size_) throw std::out_of_range("Bitmap::set");
  uint64_t mask = uint64_t{1} << (i % 64);
  if (value) {
    words_[i / 64] |= mask;
  } else {
    words_[i / 64] &= ~mask;
  }
}

size_t Bitmap::count() const {
  size_t total = 0;
  for (uint64_t w : words_) total += static_cast<size_t>(std::popcount(w));
  return total;
}

size_t Bitmap::count_set_and_missing_from(const Bitmap& other) const {
  size_t total = 0;
  size_t words = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < words; ++i) {
    total += static_cast<size_t>(std::popcount(words_[i] & ~other.words_[i]));
  }
  for (size_t i = words; i < words_.size(); ++i) {
    total += static_cast<size_t>(std::popcount(words_[i]));
  }
  return total;
}

std::vector<size_t> Bitmap::missing_indices() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < size_; ++i) {
    if (!test(i)) out.push_back(i);
  }
  return out;
}

void Bitmap::or_with(const Bitmap& other) {
  size_t words = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < words; ++i) {
    words_[i] |= other.words_[i];
  }
  // Bits beyond our size would be spurious; mask the tail word.
  if (size_ % 64 != 0 && !words_.empty()) {
    uint64_t tail_mask = (uint64_t{1} << (size_ % 64)) - 1;
    words_.back() &= tail_mask;
  }
}

common::Bytes Bitmap::encode() const {
  common::Bytes out;
  common::append_be(out, size_, 4);
  size_t bytes = (size_ + 7) / 8;
  out.reserve(4 + bytes);
  for (size_t byte = 0; byte < bytes; ++byte) {
    uint8_t b = 0;
    for (size_t bit = 0; bit < 8; ++bit) {
      size_t idx = byte * 8 + bit;
      if (idx < size_ && test(idx)) {
        b |= static_cast<uint8_t>(1u << (7 - bit));
      }
    }
    out.push_back(b);
  }
  return out;
}

std::optional<Bitmap> Bitmap::decode(common::BytesView wire) {
  if (wire.size() < 4) return std::nullopt;
  size_t size = static_cast<size_t>(common::read_be(wire, 0, 4));
  size_t bytes = (size + 7) / 8;
  if (wire.size() != 4 + bytes) return std::nullopt;
  Bitmap bm(size);
  for (size_t i = 0; i < size; ++i) {
    uint8_t b = wire[4 + i / 8];
    if ((b >> (7 - i % 8)) & 1) bm.set(i);
  }
  return bm;
}

}  // namespace dapes::core
