/// @file
/// File collections (paper §II-C): the unit of sharing.
///
/// A producer groups files, segments each into fixed-size packets, names
/// them under the collection prefix, signs every packet, and publishes
/// signed metadata. Collection is the producer-side content oracle: it can
/// emit any packet as a signed ndn::Data on demand.
///
/// Two payload modes:
///   * explicit — real file bytes are stored (examples, small tests);
///   * synthetic — payloads are generated deterministically from the packet
///     name. Simulations with tens of megabytes of nominal content use this
///     so per-node memory stays flat; digests/Merkle roots are computed
///     over the same synthetic bytes, so integrity verification is real.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "crypto/keychain.hpp"
#include "dapes/metadata.hpp"

namespace dapes::core {

/// Producer-side content oracle: a signed, segmented group of files that
/// can emit any packet (or metadata segment) as a signed ndn::Data.
class Collection {
 public:
  /// One real file to publish (explicit payload mode).
  struct FileInput {
    std::string name;       ///< file name within the collection
    common::Bytes content;  ///< the file's bytes
  };

  /// One synthetic file to publish (deterministic generated payloads).
  struct SyntheticFileInput {
    std::string name;        ///< file name within the collection
    size_t size_bytes = 0;   ///< nominal file size
  };

  /// Build from real file contents.
  static std::shared_ptr<Collection> create(
      Name collection_name, std::vector<FileInput> files, size_t packet_size,
      MetadataFormat format, const crypto::PrivateKey& producer_key);

  /// Build with deterministic synthetic payloads of the given sizes.
  static std::shared_ptr<Collection> create_synthetic(
      Name collection_name, std::vector<SyntheticFileInput> files,
      size_t packet_size, MetadataFormat format,
      const crypto::PrivateKey& producer_key);

  /// The collection's name prefix.
  const Name& name() const { return metadata_.collection(); }
  /// The signed metadata describing the collection.
  const Metadata& metadata() const { return metadata_; }
  /// The global-index <-> (file, seq) mapping.
  const CollectionLayout& layout() const { return layout_; }
  /// Total packets across all files.
  size_t total_packets() const { return layout_.total_packets(); }
  /// Fixed payload size each file is segmented into.
  size_t packet_size() const { return packet_size_; }

  /// The signed Data packet for a global packet index.
  ndn::Data packet(size_t global_index) const;

  /// The signed Data packet by (file, seq); throws on bad coordinates.
  ndn::Data packet(const std::string& file_name, uint64_t seq) const;

  /// Raw payload bytes for a packet (same bytes `packet()` carries).
  common::Bytes payload(size_t global_index) const;

  /// Signed metadata segments ready to serve.
  const std::vector<ndn::Data>& metadata_packets() const {
    return metadata_packets_;
  }

  /// Key id of the producer that signed the collection.
  const crypto::KeyId& producer() const { return producer_id_; }

  /// Deterministic synthetic payload for a packet name — exposed so tests
  /// can cross-check what producers generate.
  static common::Bytes synthetic_payload(const Name& packet_name,
                                         size_t size);

 private:
  Collection() = default;

  Metadata metadata_;
  CollectionLayout layout_;
  size_t packet_size_ = 0;
  bool synthetic_ = false;
  std::vector<size_t> file_sizes_;              // bytes per file
  std::vector<common::Bytes> explicit_files_;   // explicit mode only
  crypto::PrivateKey producer_key_;
  crypto::KeyId producer_id_;
  std::vector<ndn::Data> metadata_packets_;
};

}  // namespace dapes::core
