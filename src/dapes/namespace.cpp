#include "dapes/namespace.hpp"

#include <cstdio>

namespace dapes::core {

Name discovery_prefix() {
  Name n;
  n.append(kAppPrefix).append(kDiscoveryComponent);
  return n;
}

Name discovery_query_name(uint64_t query_id) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "q-%016llx",
                static_cast<unsigned long long>(query_id));
  return discovery_prefix().appended(buf);
}

Name discovery_response_name(const Name& query, const std::string& peer_id) {
  return query.appended(peer_id);
}

bool is_discovery_query(const Name& name) {
  if (name.size() != 3) return false;
  if (!discovery_prefix().is_prefix_of(name)) return false;
  std::string last = name[2].to_string();
  return last.size() > 2 && last[0] == 'q' && last[1] == '-';
}

Name bitmap_prefix(const Name& collection) {
  Name n;
  n.append(kAppPrefix).append(kBitmapComponent);
  for (const auto& c : collection.components()) {
    n.append(c);
  }
  return n;
}

Name bitmap_data_name(const Name& collection, const std::string& peer_id,
                      uint64_t round) {
  return bitmap_prefix(collection).appended(peer_id).appended_number(round);
}

Name metadata_prefix(const Name& collection, const std::string& digest8) {
  return collection.appended(kMetadataComponent).appended(digest8);
}

Name metadata_segment_name(const Name& prefix, uint64_t segment) {
  return prefix.appended_number(segment);
}

Name packet_name(const Name& collection, const std::string& file_name,
                 uint64_t seq) {
  return collection.appended(file_name).appended_number(seq);
}

std::optional<PacketNameParts> parse_packet_name(const Name& name,
                                                 size_t collection_size) {
  if (name.size() != collection_size + 2) return std::nullopt;
  auto seq = name[name.size() - 1].to_number();
  if (!seq) return std::nullopt;
  PacketNameParts parts;
  parts.collection = name.prefix(collection_size);
  parts.file_name = name[collection_size].to_string();
  parts.seq = *seq;
  return parts;
}

bool is_control_name(const Name& name) {
  return !name.empty() && name[0].to_string() == kAppPrefix;
}

bool is_metadata_name(const Name& name) {
  for (size_t i = 0; i < name.size(); ++i) {
    if (name[i].to_string() == kMetadataComponent) return i > 0;
  }
  return false;
}

std::optional<Name> collection_of_metadata_name(const Name& name) {
  for (size_t i = 1; i < name.size(); ++i) {
    if (name[i].to_string() == kMetadataComponent) {
      return name.prefix(i);
    }
  }
  return std::nullopt;
}

}  // namespace dapes::core
