/// @file
/// DAPES namespace design (paper §IV-A).
///
/// Hierarchical, semantically meaningful names:
///   collection:       /damaged-bridge-1533783192
///   packet in a file: /damaged-bridge-1533783192/bridge-picture/0
///   metadata:         /damaged-bridge-1533783192/metadata-file/<digest8>/<seg>
///   discovery:        /dapes/discovery
///   bitmap exchange:  /dapes/bitmap/<collection...>
///
/// These helpers centralize construction/parsing so the rest of the code
/// never hand-assembles name strings.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "ndn/name.hpp"

namespace dapes::core {

using ndn::Name;

/// Reserved top-level application component ("/dapes/...").
inline constexpr std::string_view kAppPrefix = "dapes";
/// Discovery subtree component ("/dapes/discovery").
inline constexpr std::string_view kDiscoveryComponent = "discovery";
/// Bitmap-exchange subtree component ("/dapes/bitmap").
inline constexpr std::string_view kBitmapComponent = "bitmap";
/// Metadata marker component ("<collection>/metadata-file/...").
inline constexpr std::string_view kMetadataComponent = "metadata-file";

/// "/dapes/discovery"
Name discovery_prefix();

/// "/dapes/discovery/q-<id>" — one peer's discovery query. Queries carry
/// a unique component so that concurrent queries from different peers
/// occupy distinct PIT entries (a shared name would aggregate and starve
/// responders whose own query is still pending).
Name discovery_query_name(uint64_t query_id);

/// "<query>/<peer>" — a peer's response to a specific discovery query.
Name discovery_response_name(const Name& query, const std::string& peer_id);

/// True if @p name is a discovery query ("/dapes/discovery/q-...").
bool is_discovery_query(const Name& name);

/// "/dapes/bitmap/<collection components...>" — bitmap exchange prefix for
/// one collection.
Name bitmap_prefix(const Name& collection);

/// "/dapes/bitmap/<collection...>/<peer>/<round>" — a specific peer's
/// bitmap data under a collection.
Name bitmap_data_name(const Name& collection, const std::string& peer_id,
                      uint64_t round);

/// "/<collection...>/metadata-file/<digest8>" — metadata file prefix; the
/// digest component is the first 8 hex chars of the metadata digest
/// (paper Fig. 4 shows "/damaged-bridge-1533783192/metadata-file/A23D1F9B").
Name metadata_prefix(const Name& collection, const std::string& digest8);

/// ".../<segment>" — one metadata segment.
Name metadata_segment_name(const Name& metadata_prefix, uint64_t segment);

/// "/<collection...>/<file>/<seq>" — one collection data packet.
Name packet_name(const Name& collection, const std::string& file_name,
                 uint64_t seq);

/// Parsed form of a packet name.
struct PacketNameParts {
  Name collection;        ///< collection prefix
  std::string file_name;  ///< file component
  uint64_t seq = 0;       ///< packet sequence within the file
};

/// Parse "/<collection...>/<file>/<seq>" given the collection prefix
/// length. Returns nullopt if the final component is not numeric or the
/// shape is wrong.
std::optional<PacketNameParts> parse_packet_name(const Name& name,
                                                 size_t collection_size);

/// True if @p name is under "/dapes" (control traffic, not collection
/// data).
bool is_control_name(const Name& name);

/// True if @p name looks like collection metadata
/// ("<collection...>/metadata-file/...").
bool is_metadata_name(const Name& name);

/// Extract the collection prefix from a metadata name (components before
/// "metadata-file"), or nullopt.
std::optional<Name> collection_of_metadata_name(const Name& name);

}  // namespace dapes::core
