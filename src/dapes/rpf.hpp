/// @file
/// Rarest-Piece-First fetch strategies (paper §IV-E).
///
/// Two variants of RPF tailored to off-the-grid communication:
///   * Local-neighborhood RPF — rarity of a packet is the number of
///     currently-connected neighbors whose bitmap shows it missing. State
///     expires with the encounter; nothing long-term is kept.
///   * Encounter-based RPF — rarity is estimated over the bitmaps of the
///     last K encountered peers (swarm-wide view at the cost of state).
///
/// Both prefer packets that are (a) missing locally, (b) available from at
/// least one known holder, and (c) rarest; ties break in a deterministic
/// shuffled order so concurrent downloaders diverge ("random first packet",
/// Fig. 9a) or in sequential order ("same first packet").
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "dapes/bitmap.hpp"

namespace dapes::core {

using common::TimePoint;

/// A neighbor's advertised bitmap.
struct NeighborBitmap {
  std::string peer_id;   ///< advertising peer
  Bitmap bitmap;         ///< the peer's have-bitmap
  TimePoint received{};  ///< when the bitmap was heard
};

/// Which RPF variant a FetchStrategy implements (see file comment).
enum class RpfKind {
  kLocalNeighborhood,  ///< rarity over currently connected neighbors
  kEncounterBased      ///< rarity over the last K encountered peers
};

/// Interface of a fetch strategy: consumes heard bitmaps, answers "which
/// packet should I request next".
class FetchStrategy {
 public:
  virtual ~FetchStrategy() = default;

  /// Record a (fresh) bitmap heard from @p peer_id.
  virtual void on_bitmap(const std::string& peer_id, const Bitmap& bitmap,
                         TimePoint now) = 0;

  /// The peer left our communication range; local-neighborhood RPF drops
  /// its state here, encounter-based RPF keeps history.
  virtual void on_neighbor_lost(const std::string& peer_id) = 0;

  /// Pick the next packet to request: missing from @p own, not in
  /// @p in_flight, rarest first. Returns nullopt when nothing eligible.
  virtual std::optional<size_t> select_next(const Bitmap& own,
                                            const std::set<size_t>& in_flight) = 0;

  /// True if any known holder has packet @p index.
  virtual bool known_available(size_t index) const = 0;

  /// Availability knowledge for @p index proved wrong — repeated fetch
  /// timeouts against peers whose bitmaps claim to hold it (a departed
  /// or lying peer). Implementations demote the claim so the plan stops
  /// chasing it; the default keeps the knowledge (fixed-population
  /// behaviour). See PeerOptions::stale_retry_limit.
  virtual void on_fetch_failed(size_t index) { (void)index; }

  /// Drop bitmap knowledge received before @p cutoff — time-based expiry
  /// for open-membership swarms where a silent neighbor has likely left.
  /// The default keeps everything (fixed-population behaviour); the
  /// encounter-based variant also keeps history by design. See
  /// PeerOptions::knowledge_ttl.
  virtual void expire_older_than(TimePoint cutoff) { (void)cutoff; }

  /// Which RPF variant this is.
  virtual RpfKind kind() const = 0;
  /// Number of bitmaps currently informing rarity estimates.
  virtual size_t known_bitmaps() const = 0;

  /// Approximate state footprint in bytes (Table-I style reporting).
  virtual size_t state_bytes() const = 0;
};

/// Construction options for make_fetch_strategy.
struct RpfOptions {
  size_t total_packets = 0;  ///< bitmap width (packets in the collection)
  /// Random vs same first packet (Fig. 9a variants).
  bool random_start = true;
  /// Encounter-based: how many encountered peers' bitmaps to remember.
  size_t history_limit = 20;
  uint64_t seed = 1;  ///< seed for the deterministic tie-break shuffle
};

/// Build the requested RPF variant.
std::unique_ptr<FetchStrategy> make_fetch_strategy(RpfKind kind,
                                                   const RpfOptions& options);

/// Shared implementation detail, exposed for unit testing: rank packet
/// indices by (available desc, rarity desc, order), where @p have_counts
/// counts holders per packet and @p order is the tie-break permutation.
std::vector<size_t> rank_packets(const std::vector<uint32_t>& have_counts,
                                 size_t bitmap_count,
                                 const std::vector<size_t>& order);

}  // namespace dapes::core
