#include "dapes/rpf.hpp"

#include <algorithm>
#include <numeric>

namespace dapes::core {

std::vector<size_t> rank_packets(const std::vector<uint32_t>& have_counts,
                                 size_t bitmap_count,
                                 const std::vector<size_t>& order) {
  const size_t n = have_counts.size();
  // order_rank[i] = position of packet i in the tie-break permutation.
  std::vector<size_t> order_rank(n);
  for (size_t pos = 0; pos < order.size() && pos < n; ++pos) {
    order_rank[order[pos]] = pos;
  }
  std::vector<size_t> ranked(n);
  std::iota(ranked.begin(), ranked.end(), size_t{0});
  std::stable_sort(ranked.begin(), ranked.end(),
                   [&](size_t a, size_t b) {
                     const bool avail_a = have_counts[a] > 0;
                     const bool avail_b = have_counts[b] > 0;
                     if (avail_a != avail_b) return avail_a;  // available first
                     if (have_counts[a] != have_counts[b]) {
                       return have_counts[a] < have_counts[b];  // rarest first
                     }
                     return order_rank[a] < order_rank[b];
                   });
  (void)bitmap_count;
  return ranked;
}

namespace {

/// Shared machinery: holder counting + lazily rebuilt fetch plan.
class RpfBase : public FetchStrategy {
 public:
  explicit RpfBase(const RpfOptions& options)
      : total_(options.total_packets),
        have_counts_(options.total_packets, 0),
        rng_(options.seed) {
    order_.resize(total_);
    std::iota(order_.begin(), order_.end(), size_t{0});
    if (options.random_start) {
      rng_.shuffle(order_);
    }
  }

  std::optional<size_t> select_next(const Bitmap& own,
                                    const std::set<size_t>& in_flight) override {
    if (total_ == 0) return std::nullopt;
    if (dirty_) {
      plan_ = rank_packets(have_counts_, bitmap_count_, order_);
      plan_pos_ = 0;
      dirty_ = false;
    }
    // Advance past packets we now have (monotone: once owned, always
    // owned), then return the first candidate not in flight.
    while (plan_pos_ < plan_.size() && own.test(plan_[plan_pos_])) {
      ++plan_pos_;
    }
    for (size_t pos = plan_pos_; pos < plan_.size(); ++pos) {
      size_t idx = plan_[pos];
      if (own.test(idx)) continue;
      if (in_flight.contains(idx)) continue;
      return idx;
    }
    return std::nullopt;
  }

  bool known_available(size_t index) const override {
    return index < have_counts_.size() && have_counts_[index] > 0;
  }

  size_t known_bitmaps() const override { return bitmap_count_; }

 protected:
  void add_counts(const Bitmap& bitmap) {
    size_t n = std::min(total_, bitmap.size());
    for (size_t i = 0; i < n; ++i) {
      if (bitmap.test(i)) ++have_counts_[i];
    }
    ++bitmap_count_;
    dirty_ = true;
  }

  void remove_counts(const Bitmap& bitmap) {
    size_t n = std::min(total_, bitmap.size());
    for (size_t i = 0; i < n; ++i) {
      if (bitmap.test(i) && have_counts_[i] > 0) --have_counts_[i];
    }
    if (bitmap_count_ > 0) --bitmap_count_;
    dirty_ = true;
  }

  size_t total_;
  std::vector<uint32_t> have_counts_;
  size_t bitmap_count_ = 0;
  bool dirty_ = true;

 private:
  common::Rng rng_;
  std::vector<size_t> order_;
  std::vector<size_t> plan_;
  size_t plan_pos_ = 0;
};

/// Rarity across the current communication range; state per connected
/// peer, dropped on disconnect (paper: "expires after the peers get
/// disconnected, thus no long term state is maintained").
class LocalNeighborhoodRpf final : public RpfBase {
 public:
  explicit LocalNeighborhoodRpf(const RpfOptions& options)
      : RpfBase(options) {}

  void on_bitmap(const std::string& peer_id, const Bitmap& bitmap,
                 TimePoint now) override {
    auto it = neighbors_.find(peer_id);
    if (it != neighbors_.end()) {
      remove_counts(it->second.bitmap);
      it->second = NeighborBitmap{peer_id, bitmap, now};
    } else {
      neighbors_.emplace(peer_id, NeighborBitmap{peer_id, bitmap, now});
    }
    add_counts(bitmap);
  }

  void on_neighbor_lost(const std::string& peer_id) override {
    auto it = neighbors_.find(peer_id);
    if (it == neighbors_.end()) return;
    remove_counts(it->second.bitmap);
    neighbors_.erase(it);
  }

  void on_fetch_failed(size_t index) override {
    if (index >= total_) return;
    // Clear the claimed bit in every stored bitmap (keeping the counts
    // consistent with what remove_counts will later subtract) so liar
    // poison and departed holders decay instead of wedging the plan.
    for (auto& [id, nb] : neighbors_) {
      if (index < nb.bitmap.size() && nb.bitmap.test(index)) {
        nb.bitmap.set(index, false);
        if (have_counts_[index] > 0) --have_counts_[index];
        dirty_ = true;
      }
    }
  }

  void expire_older_than(TimePoint cutoff) override {
    for (auto it = neighbors_.begin(); it != neighbors_.end();) {
      if (it->second.received < cutoff) {
        remove_counts(it->second.bitmap);
        it = neighbors_.erase(it);
      } else {
        ++it;
      }
    }
  }

  RpfKind kind() const override { return RpfKind::kLocalNeighborhood; }

  size_t state_bytes() const override {
    size_t bytes = have_counts_.size() * sizeof(uint32_t);
    for (const auto& [id, nb] : neighbors_) {
      bytes += id.size() + (nb.bitmap.size() + 7) / 8;
    }
    return bytes;
  }

 private:
  std::map<std::string, NeighborBitmap> neighbors_;
};

/// Rarity across the history of encountered peers (paper: "maintain a
/// list of the bitmap that each encountered peer has for a certain number
/// of encounters").
class EncounterBasedRpf final : public RpfBase {
 public:
  explicit EncounterBasedRpf(const RpfOptions& options)
      : RpfBase(options), history_limit_(options.history_limit) {}

  void on_bitmap(const std::string& peer_id, const Bitmap& bitmap,
                 TimePoint now) override {
    auto it = by_peer_.find(peer_id);
    if (it != by_peer_.end()) {
      remove_counts(it->second.bitmap);
      it->second = NeighborBitmap{peer_id, bitmap, now};
      add_counts(bitmap);
      return;
    }
    if (lru_.size() >= history_limit_ && !lru_.empty()) {
      const std::string victim = lru_.front();
      lru_.pop_front();
      auto vit = by_peer_.find(victim);
      if (vit != by_peer_.end()) {
        remove_counts(vit->second.bitmap);
        by_peer_.erase(vit);
      }
    }
    by_peer_.emplace(peer_id, NeighborBitmap{peer_id, bitmap, now});
    lru_.push_back(peer_id);
    add_counts(bitmap);
  }

  void on_neighbor_lost(const std::string& /*peer_id*/) override {
    // Encounter history outlives the encounter by design.
  }

  void on_fetch_failed(size_t index) override {
    if (index >= total_) return;
    // Same claim demotion as the local variant, over the history.
    for (auto& [id, nb] : by_peer_) {
      if (index < nb.bitmap.size() && nb.bitmap.test(index)) {
        nb.bitmap.set(index, false);
        if (have_counts_[index] > 0) --have_counts_[index];
        dirty_ = true;
      }
    }
  }

  // expire_older_than: default no-op — history outlives encounters.

  RpfKind kind() const override { return RpfKind::kEncounterBased; }

  size_t state_bytes() const override {
    size_t bytes = have_counts_.size() * sizeof(uint32_t);
    for (const auto& [id, nb] : by_peer_) {
      bytes += id.size() + (nb.bitmap.size() + 7) / 8;
    }
    return bytes;
  }

 private:
  size_t history_limit_;
  std::map<std::string, NeighborBitmap> by_peer_;
  std::deque<std::string> lru_;
};

}  // namespace

std::unique_ptr<FetchStrategy> make_fetch_strategy(RpfKind kind,
                                                   const RpfOptions& options) {
  switch (kind) {
    case RpfKind::kLocalNeighborhood:
      return std::make_unique<LocalNeighborhoodRpf>(options);
    case RpfKind::kEncounterBased:
      return std::make_unique<EncounterBasedRpf>(options);
  }
  return nullptr;
}

}  // namespace dapes::core
