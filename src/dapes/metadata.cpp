#include "dapes/metadata.hpp"

#include <cstring>

#include "crypto/verify_cache.hpp"
#include "ndn/tlv.hpp"

namespace dapes::core {

namespace {

// Application TLV types (outside the NDN-reserved range).
enum MetaTlv : uint64_t {
  kFormat = 128,
  kCollectionName = 129,
  kFileEntry = 130,
  kFileName = 131,
  kPacketCount = 132,
  kPacketDigest = 133,
  kMerkleRoot = 134,
};

crypto::Digest digest_from_view(common::BytesView v) {
  crypto::Digest d;
  std::memcpy(d.bytes.data(), v.data(), 32);
  return d;
}

}  // namespace

Metadata::Metadata(Name collection, MetadataFormat format,
                   std::vector<FileMetadata> files)
    : collection_(std::move(collection)),
      format_(format),
      files_(std::move(files)) {}

CollectionLayout Metadata::layout() const {
  std::vector<CollectionLayout::FileEntry> entries;
  entries.reserve(files_.size());
  for (const auto& f : files_) {
    entries.push_back({f.name, f.packet_count});
  }
  return CollectionLayout(std::move(entries));
}

size_t Metadata::total_packets() const {
  size_t total = 0;
  for (const auto& f : files_) total += f.packet_count;
  return total;
}

common::Bytes Metadata::encode() const {
  using namespace ndn::tlv;
  Writer w;
  w.tlv_number(kFormat, static_cast<uint64_t>(format_));

  auto coll = w.begin(kCollectionName);
  ndn::append_name(w, collection_);
  w.end(coll);

  for (const auto& f : files_) {
    auto entry = w.begin(kFileEntry);
    w.tlv(kFileName,
          common::BytesView(reinterpret_cast<const uint8_t*>(f.name.data()),
                            f.name.size()));
    w.tlv_number(kPacketCount, f.packet_count);
    if (format_ == MetadataFormat::kPacketDigest) {
      for (const auto& d : f.packet_digests) {
        w.tlv(kPacketDigest, d.view());
      }
    } else if (f.merkle_root) {
      w.tlv(kMerkleRoot, f.merkle_root->view());
    }
    w.end(entry);
  }
  return w.take();
}

std::optional<Metadata> Metadata::decode(common::BytesView wire) {
  using namespace ndn::tlv;
  try {
    Reader reader(wire);
    Metadata meta;
    bool have_format = false;
    while (!reader.at_end()) {
      auto e = reader.read_element();
      switch (e.type) {
        case kFormat:
          meta.format_ = static_cast<MetadataFormat>(parse_number(e.value));
          have_format = true;
          break;
        case kCollectionName: {
          Reader name_reader(e.value);
          auto name_el = name_reader.expect(ndn::tlv::kName);
          meta.collection_ = ndn::parse_name(name_el.value);
          break;
        }
        case kFileEntry: {
          FileMetadata file;
          Reader entry(e.value);
          while (!entry.at_end()) {
            auto m = entry.read_element();
            switch (m.type) {
              case kFileName:
                file.name.assign(m.value.begin(), m.value.end());
                break;
              case kPacketCount:
                file.packet_count = static_cast<size_t>(parse_number(m.value));
                break;
              case kPacketDigest:
                if (m.value.size() != 32) return std::nullopt;
                file.packet_digests.push_back(digest_from_view(m.value));
                break;
              case kMerkleRoot:
                if (m.value.size() != 32) return std::nullopt;
                file.merkle_root = digest_from_view(m.value);
                break;
              default:
                break;
            }
          }
          if (file.name.empty()) return std::nullopt;
          meta.files_.push_back(std::move(file));
          break;
        }
        default:
          break;
      }
    }
    if (!have_format || meta.collection_.empty()) return std::nullopt;
    // Structural validation.
    for (const auto& f : meta.files_) {
      if (meta.format_ == MetadataFormat::kPacketDigest &&
          f.packet_digests.size() != f.packet_count) {
        return std::nullopt;
      }
      if (meta.format_ == MetadataFormat::kMerkleTree && !f.merkle_root) {
        return std::nullopt;
      }
    }
    return meta;
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

crypto::Digest Metadata::digest() const {
  common::Bytes body = encode();
  return crypto::Sha256::hash(common::BytesView(body.data(), body.size()));
}

std::string Metadata::digest8() const {
  std::string hex = digest().to_hex();
  return hex.substr(0, 8);
}

Name Metadata::name_prefix() const {
  return metadata_prefix(collection_, digest8());
}

std::vector<ndn::Data> Metadata::to_packets(
    const crypto::PrivateKey& producer_key, size_t segment_size) const {
  common::Bytes body = encode();
  Name prefix = name_prefix();
  std::vector<ndn::Data> packets;
  size_t segments =
      body.empty() ? 1 : (body.size() + segment_size - 1) / segment_size;
  for (size_t i = 0; i < segments; ++i) {
    size_t begin = i * segment_size;
    size_t end = std::min(body.size(), begin + segment_size);
    // Each segment's content starts with the total segment count so a
    // downloader knows when reassembly is complete (stand-in for NDN's
    // FinalBlockId).
    common::Bytes content;
    common::append_be(content, segments, 4);
    content.insert(content.end(), body.begin() + begin, body.begin() + end);
    ndn::Data data(metadata_segment_name(prefix, i));
    data.set_content(std::move(content));
    // Metadata is immutable once published.
    data.set_freshness(common::Duration::seconds(3600.0));
    data.sign(producer_key);
    packets.push_back(std::move(data));
  }
  return packets;
}

size_t Metadata::segment_count_of(common::BytesView segment_content) {
  if (segment_content.size() < 4) return 0;
  return static_cast<size_t>(common::read_be(segment_content, 0, 4));
}

std::optional<Metadata> Metadata::from_segments(
    const std::vector<common::Bytes>& segments) {
  common::Bytes body;
  for (const auto& s : segments) {
    if (s.size() < 4) return std::nullopt;
    body.insert(body.end(), s.begin() + 4, s.end());
  }
  return decode(common::BytesView(body.data(), body.size()));
}

std::optional<bool> Metadata::verify_packet(size_t file_index, uint64_t seq,
                                            common::BytesView content) const {
  if (format_ != MetadataFormat::kPacketDigest) return std::nullopt;
  if (file_index >= files_.size()) return false;
  const auto& file = files_[file_index];
  if (seq >= file.packet_digests.size()) return false;
  return crypto::cached_content_digest(content) == file.packet_digests[seq];
}

bool Metadata::verify_file(
    size_t file_index,
    const std::vector<crypto::Digest>& packet_digests) const {
  if (file_index >= files_.size()) return false;
  const auto& file = files_[file_index];
  if (packet_digests.size() != file.packet_count) return false;
  if (format_ == MetadataFormat::kMerkleTree) {
    return file.merkle_root &&
           crypto::MerkleTree::compute_root(packet_digests) == *file.merkle_root;
  }
  return packet_digests == file.packet_digests;
}

}  // namespace dapes::core
