/// @file
/// Compact data advertisements (paper §IV-D).
///
/// A Bitmap has one bit per packet in a collection, ordered by the relative
/// position of files in the metadata and of packets within each file: for
/// the Fig. 4 example, bit 0 is bridge-picture/0 ... bit 99 is
/// bridge-picture/99, bit 100 is bridge-location/0, bit 101 is
/// bridge-location/1. CollectionLayout owns that global-index <-> (file,
/// seq) mapping; Bitmap is the bit vector plus the set/rarity operations
/// the RPF strategies need.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace dapes::core {

/// Maps between global packet indices and (file, sequence) pairs using the
/// file order fixed by the collection metadata.
class CollectionLayout {
 public:
  /// One file's slot in the layout: its name and packet count.
  struct FileEntry {
    std::string name;           ///< file name within the collection
    size_t packet_count = 0;    ///< packets the file segments into
  };

  /// Empty layout (no files, no packets).
  CollectionLayout() = default;
  /// Layout over @p files in metadata order.
  explicit CollectionLayout(std::vector<FileEntry> files);

  /// Total packets across all files.
  size_t total_packets() const { return total_; }
  /// Number of files.
  size_t file_count() const { return files_.size(); }
  /// Entry of the @p i th file; @throws std::out_of_range past the end.
  const FileEntry& file(size_t i) const { return files_.at(i); }
  /// All file entries in metadata order.
  const std::vector<FileEntry>& files() const { return files_; }

  /// Global index of (file_name, seq); nullopt for unknown file / range.
  std::optional<size_t> index_of(const std::string& file_name,
                                 uint64_t seq) const;

  /// A global index resolved back to its (file, sequence) coordinates.
  struct Location {
    std::string file_name;  ///< owning file's name
    uint64_t seq = 0;       ///< packet sequence within the file
  };
  /// Inverse mapping. @throws std::out_of_range for bad indices.
  Location locate(size_t global_index) const;

 private:
  std::vector<FileEntry> files_;
  std::vector<size_t> offsets_;  // cumulative start index per file
  size_t total_ = 0;
};

/// One bit per packet: 1 = have, 0 = missing.
class Bitmap {
 public:
  /// Empty bitmap (zero bits).
  Bitmap() = default;
  /// All-clear bitmap of @p size bits.
  explicit Bitmap(size_t size);

  /// Number of bits (== packets in the collection).
  size_t size() const { return size_; }
  /// True for a zero-bit bitmap.
  bool empty() const { return size_ == 0; }

  /// Value of bit @p i (false when out of range).
  bool test(size_t i) const;
  /// Set (or clear) bit @p i; out-of-range indices are ignored.
  void set(size_t i, bool value = true);

  /// Number of set bits.
  size_t count() const;
  /// True when every bit is set (complete collection).
  bool full() const { return count() == size_; }
  /// True when no bit is set.
  bool none() const { return count() == 0; }
  /// Fraction of bits set, 0.0 for an empty bitmap.
  double completeness() const {
    return size_ == 0 ? 0.0 : static_cast<double>(count()) / size_;
  }

  /// Indices set in *this but clear in @p other ("packets I have that are
  /// missing from other") — the §IV-F prioritization metric.
  size_t count_set_and_missing_from(const Bitmap& other) const;

  /// Indices clear in *this ("packets I am missing").
  std::vector<size_t> missing_indices() const;

  /// Bitwise OR-accumulate (used to union previously transmitted bitmaps).
  void or_with(const Bitmap& other);

  /// Wire form: 4-byte big-endian bit count then packed bits (MSB first).
  common::Bytes encode() const;
  /// Parse the `encode()` wire form; nullopt on malformed input.
  static std::optional<Bitmap> decode(common::BytesView wire);

  /// Bit-for-bit equality (size and every word).
  bool operator==(const Bitmap&) const = default;

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace dapes::core
