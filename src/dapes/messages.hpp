/// @file
/// DAPES control-plane message payloads.
///
///   * DiscoveryMessage — content of a discovery Data packet: which
///     collections (by metadata name) the sender can offer (paper §IV-B).
///   * BitmapMessage — payload of a bitmap announcement: the sender's
///     bitmap for one collection, prefixed by the collection layout (file
///     names + packet counts) so that nodes without the metadata —
///     intermediate DAPES nodes interested in other collections — can
///     still map packet names to bits (paper §V-B overhearing).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dapes/bitmap.hpp"
#include "ndn/name.hpp"

namespace dapes::core {

using ndn::Name;

/// Content of a discovery Data packet: the collections (by metadata name)
/// the sender can offer (paper §IV-B).
struct DiscoveryMessage {
  std::string peer_id;  ///< sender's peer identifier
  /// Metadata name prefixes ("/<collection>/metadata-file/<digest8>").
  std::vector<Name> metadata_names;

  /// Wire form (length-prefixed strings).
  common::Bytes encode() const;
  /// Parse the `encode()` wire form; nullopt on malformed input.
  static std::optional<DiscoveryMessage> decode(common::BytesView wire);

  /// Field-wise equality.
  bool operator==(const DiscoveryMessage&) const = default;
};

/// Payload of a bitmap announcement: the sender's bitmap for one
/// collection, self-describing via the embedded layout (§V-B overhearing).
struct BitmapMessage {
  std::string peer_id;  ///< sender's peer identifier
  Name collection;      ///< collection the bitmap describes
  uint64_t round = 0;   ///< announcement round counter
  /// File order + packet counts (the bitmap's bit layout).
  std::vector<CollectionLayout::FileEntry> layout;
  Bitmap bitmap;        ///< one bit per packet: 1 = sender has it

  /// Wire form (layout then packed bitmap).
  common::Bytes encode() const;
  /// Parse the `encode()` wire form; nullopt on malformed input.
  static std::optional<BitmapMessage> decode(common::BytesView wire);
};

}  // namespace dapes::core
