// DAPES control-plane message payloads.
//
//   * DiscoveryMessage — content of a discovery Data packet: which
//     collections (by metadata name) the sender can offer (paper §IV-B).
//   * BitmapMessage — payload of a bitmap announcement: the sender's
//     bitmap for one collection, prefixed by the collection layout (file
//     names + packet counts) so that nodes without the metadata —
//     intermediate DAPES nodes interested in other collections — can
//     still map packet names to bits (paper §V-B overhearing).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dapes/bitmap.hpp"
#include "ndn/name.hpp"

namespace dapes::core {

using ndn::Name;

struct DiscoveryMessage {
  std::string peer_id;
  /// Metadata name prefixes ("/<collection>/metadata-file/<digest8>").
  std::vector<Name> metadata_names;

  common::Bytes encode() const;
  static std::optional<DiscoveryMessage> decode(common::BytesView wire);

  bool operator==(const DiscoveryMessage&) const = default;
};

struct BitmapMessage {
  std::string peer_id;
  Name collection;
  uint64_t round = 0;
  /// File order + packet counts (the bitmap's bit layout).
  std::vector<CollectionLayout::FileEntry> layout;
  Bitmap bitmap;

  common::Bytes encode() const;
  static std::optional<BitmapMessage> decode(common::BytesView wire);
};

}  // namespace dapes::core
