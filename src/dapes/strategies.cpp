#include "dapes/strategies.hpp"

#include "trace/trace.hpp"

namespace dapes::core {

namespace {

/// Shared expiry sweep for the per-name soft-state tables: erase entries
/// stamped strictly before @p cutoff (or equal, when @p inclusive), at
/// most once per @p interval and only once the table has outgrown
/// @p cap — amortized O(1) per insert, since entries younger than the
/// interval cannot be ripe yet.
void sweep_if_due(std::unordered_map<ndn::Name, TimePoint>& table,
                  TimePoint& last_sweep, TimePoint now, Duration interval,
                  size_t cap, TimePoint cutoff, bool inclusive) {
  if (table.size() <= cap || now - last_sweep < interval) return;
  last_sweep = now;
  for (auto it = table.begin(); it != table.end();) {
    if (it->second < cutoff || (inclusive && it->second == cutoff)) {
      it = table.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace

PureForwarderStrategy::PureForwarderStrategy(sim::Scheduler& sched,
                                             common::Rng rng, Params params)
    : sched_(sched), rng_(rng), params_(params) {}

FaceId PureForwarderStrategy::wifi_face_of(Forwarder& fw) {
  for (const auto& face : fw.faces()) {
    if (!face->is_local()) return face->id();
  }
  return 0;
}

bool PureForwarderStrategy::is_suppressed(const Name& name) const {
  auto it = suppressed_until_.find(name);
  return it != suppressed_until_.end() && it->second > sched_.now();
}

void PureForwarderStrategy::relay(Forwarder& fw, const Interest& interest) {
  FaceId out = wifi_face_of(fw);
  if (out == 0) return;
  Duration delay = Duration::microseconds(static_cast<int64_t>(rng_.next_below(
      static_cast<uint64_t>(params_.forward_delay_window.us) + 1)));
  Name name = interest.name();
  DAPES_TRACE_NAMED(trace::EventType::kStratRelay, name,
                    static_cast<uint64_t>(delay.us));
  Interest copy = interest;
  relayed_[name] = sched_.now();
  if (interest.lifetime() > max_relayed_lifetime_) {
    max_relayed_lifetime_ = interest.lifetime();
  }
  // Sweep stale bookkeeping: relays satisfied by returning data never
  // reach on_interest_timeout, so without this the table grows for the
  // whole trial. An entry can only matter until its PIT entry times out
  // (at most one lifetime after the relay; doubled for margin), so the
  // cutoff never outruns a *pending* timer. One corner is deliberately
  // altered from the pre-sweep code: a stale satisfied-relay entry used
  // to make a later, unrelayed timeout of the same name suppress the
  // name anyway; once swept it no longer does (phantom suppression from
  // long-ago relays — the sweep only fires past cap + horizon, which
  // paper-scale runs never reach; their outputs stay byte-identical).
  Duration horizon = params_.relay_horizon;
  if (max_relayed_lifetime_ * 2 > horizon) horizon = max_relayed_lifetime_ * 2;
  sweep_if_due(relayed_, last_relayed_sweep_, sched_.now(), horizon,
               params_.name_state_cap, sched_.now() - horizon,
               /*inclusive=*/false);
  ++forwards_;
  sched_.schedule(delay, [this, &fw, out, copy, name] {
    // Only relay if still pending: the data may have arrived (or the
    // entry expired) while we waited.
    ndn::PitEntry* entry = fw.pit().find(name);
    if (entry == nullptr) return;
    entry->relayed_to_network = true;  // re-broadcast the returning Data
    fw.send_interest_to(out, copy);
  });
}

void PureForwarderStrategy::maybe_relay(Forwarder& fw,
                                        const Interest& interest,
                                        double probability) {
  if (is_suppressed(interest.name())) {
    ++suppressions_;
    DAPES_TRACE_NAMED(trace::EventType::kStratSuppress, interest.name(),
                      /*reason: suppression timer=*/0);
    return;
  }
  if (!rng_.chance(probability)) {
    ++suppressions_;
    DAPES_TRACE_NAMED(trace::EventType::kStratSuppress, interest.name(),
                      /*reason: probability draw=*/1);
    return;
  }
  relay(fw, interest);
}

void PureForwarderStrategy::deliver_local(Forwarder& fw, FaceId in_face,
                                          const Interest& interest) {
  for (FaceId out : fw.fib().lookup(interest.name())) {
    if (out == in_face) continue;
    Face* f = fw.face(out);
    if (f != nullptr && f->is_local()) {
      fw.send_interest_to(out, interest);
    }
  }
}

void PureForwarderStrategy::after_receive_interest(Forwarder& fw,
                                                   FaceId in_face,
                                                   const Interest& interest,
                                                   PitEntry& /*entry*/) {
  Face* in = fw.face(in_face);
  if (in != nullptr && in->is_local()) {
    // Local application Interests always go to the air.
    FaceId out = wifi_face_of(fw);
    if (out != 0) fw.send_interest_to(out, interest);
    return;
  }
  // Interests from the network first reach any local application
  // registered for the prefix; the relay decision is separate.
  deliver_local(fw, in_face, interest);
  maybe_relay(fw, interest, params_.forward_probability);
}

void PureForwarderStrategy::on_interest_timeout(Forwarder& /*fw*/,
                                                const Name& name) {
  auto it = relayed_.find(name);
  if (it == relayed_.end()) return;
  relayed_.erase(it);
  ++relay_timeouts_;
  DAPES_TRACE_NAMED(trace::EventType::kStratTimeout, name);
  // Forwarded but nothing came back: the data is (currently) not
  // reachable through us — suppress this name for a while (soft state).
  suppressed_until_[name] = sched_.now() + params_.suppression;
  // Expired suppression timers answer false anyway; sweeping them is
  // unobservable (values here are expiry times, so cutoff = now).
  sweep_if_due(suppressed_until_, last_suppressed_sweep_, sched_.now(),
               params_.suppression, params_.name_state_cap, sched_.now(),
               /*inclusive=*/true);
}

bool PureForwarderStrategy::cache_unsolicited(Forwarder& /*fw*/,
                                              FaceId /*in_face*/,
                                              const ndn::Data& /*data*/) {
  return params_.cache_overheard;
}

DapesIntermediateStrategy::DapesIntermediateStrategy(
    sim::Scheduler& sched, common::Rng rng, IntermediateParams params)
    : PureForwarderStrategy(sched, rng, params.base), iparams_(params) {}

void DapesIntermediateStrategy::learn_bitmap(const BitmapMessage& msg,
                                             TimePoint now) {
  auto [it, inserted] = knowledge_.try_emplace(msg.collection);
  CollectionKnowledge& k = it->second;
  if (inserted || k.layout.total_packets() != msg.bitmap.size()) {
    k.layout = CollectionLayout(msg.layout);
  }
  k.peer_bitmaps[msg.peer_id] = {msg.bitmap, now};
  k.last_heard = now;
}

void DapesIntermediateStrategy::on_overhear_interest(Forwarder& /*fw*/,
                                                     FaceId /*in_face*/,
                                                     const Interest& interest) {
  // Bitmap announcements carry the sender's bitmap in the parameters.
  if (!interest.has_app_parameters()) return;
  const Name& name = interest.name();
  if (name.size() < 2 || name[0].to_string() != kAppPrefix ||
      name[1].to_string() != kBitmapComponent) {
    return;
  }
  auto msg = BitmapMessage::decode(interest.app_parameters());
  if (msg) learn_bitmap(*msg, sched_.now());
}

void DapesIntermediateStrategy::on_overhear_data(Forwarder& /*fw*/,
                                                 FaceId /*in_face*/,
                                                 const ndn::Data& data) {
  if (is_control_name(data.name())) return;
  recent_data_[data.name()] = sched_.now();
  // Entries past the knowledge TTL already answer as missing; the
  // strict cutoff keeps stamps exactly at the TTL boundary, which
  // packet_availability still counts as fresh.
  sweep_if_due(recent_data_, last_recent_sweep_, sched_.now(),
               iparams_.knowledge_ttl, iparams_.recent_data_cap,
               sched_.now() - iparams_.knowledge_ttl, /*inclusive=*/false);
}

DapesIntermediateStrategy::Availability
DapesIntermediateStrategy::packet_availability(const Name& packet_name,
                                               TimePoint now) const {
  // Recently overheard exact transmission => available (cached nearby).
  if (auto it = recent_data_.find(packet_name); it != recent_data_.end()) {
    if (now - it->second <= iparams_.knowledge_ttl) {
      return Availability::kAvailable;
    }
  }
  // Match the packet name against known collection layouts.
  for (const auto& [collection, k] : knowledge_) {
    if (!collection.is_prefix_of(packet_name)) continue;
    auto parts = parse_packet_name(packet_name, collection.size());
    if (!parts) continue;
    auto index = k.layout.index_of(parts->file_name, parts->seq);
    if (!index) continue;
    size_t fresh = 0;
    for (const auto& [peer, entry] : k.peer_bitmaps) {
      if (now - entry.second > iparams_.knowledge_ttl) continue;
      ++fresh;
      if (*index < entry.first.size() && entry.first.test(*index)) {
        return Availability::kAvailable;
      }
    }
    if (fresh > 0) return Availability::kKnownMissing;
  }
  return Availability::kUnknown;
}

bool DapesIntermediateStrategy::collection_active(const Name& collection,
                                                  TimePoint now) const {
  auto it = knowledge_.find(collection);
  if (it == knowledge_.end()) return false;
  return now - it->second.last_heard <= iparams_.knowledge_ttl;
}

size_t DapesIntermediateStrategy::knowledge_bytes() const {
  size_t bytes = 0;
  for (const auto& [collection, k] : knowledge_) {
    bytes += collection.to_uri().size();
    for (const auto& f : k.layout.files()) {
      bytes += f.name.size() + sizeof(size_t);
    }
    for (const auto& [peer, entry] : k.peer_bitmaps) {
      bytes += peer.size() + (entry.first.size() + 7) / 8 + sizeof(TimePoint);
    }
  }
  bytes += recent_data_.size() * 48;  // name + timestamp estimate
  return bytes;
}

void DapesIntermediateStrategy::after_receive_interest(Forwarder& fw,
                                                       FaceId in_face,
                                                       const Interest& interest,
                                                       PitEntry& entry) {
  Face* in = fw.face(in_face);
  if (in != nullptr && in->is_local()) {
    PureForwarderStrategy::after_receive_interest(fw, in_face, interest,
                                                  entry);
    return;
  }

  deliver_local(fw, in_face, interest);

  const Name& name = interest.name();
  TimePoint now = sched_.now();

  if (is_control_name(name)) {
    // Discovery / bitmap Interests: forward when we know of peers nearby
    // that are interested in the same collection (it is beneficial for
    // the requester to learn their bitmaps); fall back to probabilistic.
    Name collection;
    if (name.size() > 2 && name[1].to_string() == kBitmapComponent) {
      // Bitmap name shape: /dapes/bitmap/<collection...>[/<peer>/<round>];
      // match against the collections we have knowledge about.
      for (const auto& [known, k] : knowledge_) {
        (void)k;
        if (bitmap_prefix(known).is_prefix_of(name)) {
          collection = known;
          break;
        }
      }
    }
    if (!collection.empty() && collection_active(collection, now)) {
      maybe_relay(fw, interest, iparams_.control_forward_probability);
    } else {
      maybe_relay(fw, interest, params_.forward_probability);
    }
    return;
  }

  switch (packet_availability(name, now)) {
    case Availability::kAvailable:
      ++knowledge_forwards_;
      DAPES_TRACE_NAMED(trace::EventType::kStratKnowledgeForward, name);
      relay(fw, interest);
      break;
    case Availability::kKnownMissing:
      // Speculate the forward would not bring data back: suppress.
      ++knowledge_suppressions_;
      ++suppressions_;
      DAPES_TRACE_NAMED(trace::EventType::kStratKnowledgeSuppress, name);
      break;
    case Availability::kUnknown:
      maybe_relay(fw, interest, params_.forward_probability);
      break;
  }
}

}  // namespace dapes::core
