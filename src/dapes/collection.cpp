#include "dapes/collection.hpp"

#include <stdexcept>

namespace dapes::core {

namespace {

constexpr size_t kMetadataSegmentSize = 1024;

size_t packets_for(size_t file_bytes, size_t packet_size) {
  if (file_bytes == 0) return 1;  // empty file still occupies one packet
  return (file_bytes + packet_size - 1) / packet_size;
}

// The metadata segments are shared by reference across every node that
// holds the collection, and both the wire encoding and the name's prefix
// hashes are lazily cached `mutable` state. Fill those caches once at
// creation, while the collection is still single-owner: afterwards the
// shared objects are read-only, so the parallel trial interior can serve
// them from concurrent per-node chains without a data race.
void warm_packet_caches(std::vector<ndn::Data>& packets) {
  for (const ndn::Data& segment : packets) {
    segment.wire();
    segment.name().hash();
    segment.content_digest();
  }
}

}  // namespace

common::Bytes Collection::synthetic_payload(const Name& packet_name,
                                            size_t size) {
  // Counter-mode SHA-256 stream keyed by the packet name: deterministic,
  // unique per name, and incompressible (so nothing accidentally relies on
  // content regularity).
  common::Bytes out;
  out.reserve(size);
  uint64_t counter = 0;
  std::string uri = packet_name.to_uri();
  while (out.size() < size) {
    crypto::Sha256 ctx;
    ctx.update(uri);
    common::Bytes ctr;
    common::append_be(ctr, counter++, 8);
    ctx.update(common::BytesView(ctr.data(), ctr.size()));
    crypto::Digest block = ctx.final_digest();
    size_t take = std::min<size_t>(32, size - out.size());
    out.insert(out.end(), block.bytes.begin(), block.bytes.begin() + take);
  }
  return out;
}

std::shared_ptr<Collection> Collection::create(
    Name collection_name, std::vector<FileInput> files, size_t packet_size,
    MetadataFormat format, const crypto::PrivateKey& producer_key) {
  if (packet_size == 0) {
    throw std::invalid_argument("Collection: packet_size must be > 0");
  }
  auto col = std::shared_ptr<Collection>(new Collection());
  col->packet_size_ = packet_size;
  col->synthetic_ = false;
  col->producer_key_ = producer_key;
  col->producer_id_ = producer_key.id();

  std::vector<FileMetadata> file_meta;
  for (auto& f : files) {
    size_t count = packets_for(f.content.size(), packet_size);
    col->file_sizes_.push_back(f.content.size());
    col->explicit_files_.push_back(std::move(f.content));

    FileMetadata fm;
    fm.name = f.name;
    fm.packet_count = count;
    file_meta.push_back(std::move(fm));
  }
  col->metadata_ = Metadata(std::move(collection_name), format,
                            std::move(file_meta));
  col->layout_ = col->metadata_.layout();

  // Fill digests / Merkle roots now that names are fixed.
  std::vector<FileMetadata> enriched = col->metadata_.files();
  for (size_t fi = 0; fi < enriched.size(); ++fi) {
    std::vector<crypto::Digest> digests;
    digests.reserve(enriched[fi].packet_count);
    for (uint64_t seq = 0; seq < enriched[fi].packet_count; ++seq) {
      size_t idx = *col->layout_.index_of(enriched[fi].name, seq);
      common::Bytes payload = col->payload(idx);
      digests.push_back(
          crypto::Sha256::hash(common::BytesView(payload.data(), payload.size())));
    }
    if (format == MetadataFormat::kPacketDigest) {
      enriched[fi].packet_digests = std::move(digests);
    } else {
      enriched[fi].merkle_root = crypto::MerkleTree::compute_root(digests);
    }
  }
  col->metadata_ = Metadata(col->metadata_.collection(), format,
                            std::move(enriched));
  col->metadata_packets_ =
      col->metadata_.to_packets(producer_key, kMetadataSegmentSize);
  warm_packet_caches(col->metadata_packets_);
  return col;
}

std::shared_ptr<Collection> Collection::create_synthetic(
    Name collection_name, std::vector<SyntheticFileInput> files,
    size_t packet_size, MetadataFormat format,
    const crypto::PrivateKey& producer_key) {
  std::vector<FileInput> inputs;
  inputs.reserve(files.size());
  // Reuse the explicit path for metadata bookkeeping but with empty
  // buffers; mark synthetic afterwards so payloads are generated on
  // demand. Packet counts must come from the nominal sizes.
  auto col = std::shared_ptr<Collection>(new Collection());
  if (packet_size == 0) {
    throw std::invalid_argument("Collection: packet_size must be > 0");
  }
  col->packet_size_ = packet_size;
  col->synthetic_ = true;
  col->producer_key_ = producer_key;
  col->producer_id_ = producer_key.id();

  std::vector<FileMetadata> file_meta;
  for (const auto& f : files) {
    col->file_sizes_.push_back(f.size_bytes);
    FileMetadata fm;
    fm.name = f.name;
    fm.packet_count = packets_for(f.size_bytes, packet_size);
    file_meta.push_back(std::move(fm));
  }
  col->metadata_ = Metadata(std::move(collection_name), format,
                            std::move(file_meta));
  col->layout_ = col->metadata_.layout();

  std::vector<FileMetadata> enriched = col->metadata_.files();
  for (size_t fi = 0; fi < enriched.size(); ++fi) {
    std::vector<crypto::Digest> digests;
    digests.reserve(enriched[fi].packet_count);
    for (uint64_t seq = 0; seq < enriched[fi].packet_count; ++seq) {
      size_t idx = *col->layout_.index_of(enriched[fi].name, seq);
      common::Bytes payload = col->payload(idx);
      digests.push_back(crypto::Sha256::hash(
          common::BytesView(payload.data(), payload.size())));
    }
    if (format == MetadataFormat::kPacketDigest) {
      enriched[fi].packet_digests = std::move(digests);
    } else {
      enriched[fi].merkle_root = crypto::MerkleTree::compute_root(digests);
    }
  }
  col->metadata_ = Metadata(col->metadata_.collection(), format,
                            std::move(enriched));
  col->metadata_packets_ =
      col->metadata_.to_packets(producer_key, kMetadataSegmentSize);
  warm_packet_caches(col->metadata_packets_);
  return col;
}

common::Bytes Collection::payload(size_t global_index) const {
  CollectionLayout::Location loc = layout_.locate(global_index);
  // Find the file index for size bookkeeping.
  size_t file_index = 0;
  for (size_t i = 0; i < metadata_.files().size(); ++i) {
    if (metadata_.files()[i].name == loc.file_name) {
      file_index = i;
      break;
    }
  }
  size_t file_bytes = file_sizes_[file_index];
  size_t begin = static_cast<size_t>(loc.seq) * packet_size_;
  size_t len = begin >= file_bytes ? 0 : std::min(packet_size_, file_bytes - begin);

  if (synthetic_) {
    Name pname = packet_name(metadata_.collection(), loc.file_name, loc.seq);
    return synthetic_payload(pname, len);
  }
  const common::Bytes& file = explicit_files_[file_index];
  return common::Bytes(file.begin() + begin, file.begin() + begin + len);
}

ndn::Data Collection::packet(size_t global_index) const {
  CollectionLayout::Location loc = layout_.locate(global_index);
  ndn::Data data(packet_name(metadata_.collection(), loc.file_name, loc.seq));
  data.set_content(payload(global_index));
  // Collection content is immutable; let caches hold it for a long time.
  data.set_freshness(common::Duration::seconds(3600.0));
  data.sign(producer_key_);
  return data;
}

ndn::Data Collection::packet(const std::string& file_name, uint64_t seq) const {
  auto idx = layout_.index_of(file_name, seq);
  if (!idx) {
    throw std::out_of_range("Collection::packet: unknown file/seq");
  }
  return packet(*idx);
}

}  // namespace dapes::core
