/// @file
/// Data advertisement prioritization & collision mitigation (paper §IV-F).
///
/// Bitmap transmissions during an encounter are prioritized: the first goes
/// to the peer with most of the data; each subsequent transmission is
/// prioritized by how many packets the peer holds that are missing from
/// every previously transmitted bitmap. Linear prioritization alone (divide
/// a default transmission window by the held fraction) collides whenever
/// peers hold similar amounts, so PEBA — Priority-based Exponential Backoff
/// Algorithm — splits colliding peers into priority groups over
/// exponentially grown slot counts: peers holding at least half of the
/// still-missing packets pick a random slot in the first group, the rest in
/// the second.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace dapes::core {

using common::Duration;

/// Computes PEBA transmission delays: linear prioritization first, then
/// priority-grouped exponential backoff after detected collisions.
class PebaScheduler {
 public:
  /// Tuning knobs (paper defaults).
  struct Params {
    /// Default transmission window W (paper evaluation: 20 ms).
    Duration window = Duration::milliseconds(20);
    /// Duration of one backoff slot (tau in the paper's analysis).
    Duration slot = Duration::milliseconds(5);
    /// Number of priority groups (the paper's example uses 2).
    int groups = 2;
    /// Cap on the doubling (slots never exceed 2^max_rounds).
    int max_rounds = 6;
  };

  /// Scheduler with the paper-default parameters.
  PebaScheduler() : PebaScheduler(Params{}) {}
  /// Scheduler with explicit parameters.
  explicit PebaScheduler(Params params) : params_(params) {}

  /// The active parameters.
  const Params& params() const { return params_; }

  /// Linear prioritization delay before any collision: the transmission
  /// window divided by the fraction of still-missing packets this peer
  /// can provide (paper: "dividing a default transmission window by the
  /// percent of the packets they have that are missing from previously
  /// transmitted bitmaps"). fraction=1 -> W; fraction->0 -> capped at
  /// max_delay(). For the first bitmap of an encounter the fraction is
  /// the peer's completeness (most data goes first).
  Duration priority_delay(double fraction) const;

  /// Ceiling for priority_delay (keeps zero-fraction peers schedulable).
  Duration max_delay() const;

  /// Slot-based delay after @p collision_round consecutive collisions
  /// (round 1 = first detected collision -> 2 slots, round 2 -> 4, ...).
  /// Peers providing at least 1/groups-quantile of the missing packets
  /// land in earlier groups; slot within the group is uniform.
  Duration backoff_delay(int collision_round, double fraction,
                         common::Rng& rng) const;

  /// Total slots after @p collision_round collisions (2^round, capped).
  int slots_for_round(int collision_round) const;

  /// Group index (0-based) a peer with @p fraction of the missing packets
  /// belongs to; fraction >= 0.5 with 2 groups -> group 0.
  int group_for_fraction(double fraction) const;

 private:
  Params params_;
};

}  // namespace dapes::core
