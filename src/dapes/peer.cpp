#include "dapes/peer.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "trace/trace.hpp"

namespace dapes::core {

namespace {

constexpr const char* kLog = "dapes-peer";

/// Strategy subclass that tees overheard packets to the peer application
/// (bitmap announcements, discovery responses, opportunistic data) on top
/// of the intermediate node's own knowledge building.
class PeerStrategy final : public DapesIntermediateStrategy {
 public:
  PeerStrategy(sim::Scheduler& sched, common::Rng rng,
               IntermediateParams params,
               std::function<void(const ndn::Interest&)> on_interest,
               std::function<void(const ndn::Data&)> on_data)
      : DapesIntermediateStrategy(sched, rng, params),
        peer_on_interest_(std::move(on_interest)),
        peer_on_data_(std::move(on_data)) {}

  void on_overhear_interest(Forwarder& fw, FaceId in_face,
                            const Interest& interest) override {
    DapesIntermediateStrategy::on_overhear_interest(fw, in_face, interest);
    peer_on_interest_(interest);
  }

  void on_overhear_data(Forwarder& fw, FaceId in_face,
                        const ndn::Data& data) override {
    DapesIntermediateStrategy::on_overhear_data(fw, in_face, data);
    peer_on_data_(data);
  }

 private:
  std::function<void(const ndn::Interest&)> peer_on_interest_;
  std::function<void(const ndn::Data&)> peer_on_data_;
};

}  // namespace

Peer::Peer(sim::Scheduler& sched, sim::Medium& medium,
           sim::MobilityModel* mobility, common::Rng rng, PeerOptions options)
    : sched_(sched),
      medium_(medium),
      rng_(rng),
      options_(std::move(options)),
      peba_(options_.peba),
      discovery_period_(options_.discovery_period_min) {
  key_ = keychain_.generate_key(options_.id);

  wifi_face_ = nullptr;  // created after node registration (needs radio)
  node_ = medium_.add_node(
      mobility,
      [this](const sim::FramePtr& frame, sim::NodeId /*receiver*/) {
        if (wifi_face_) wifi_face_->on_frame(frame);
      },
      /*alive=*/!options_.latent);
  radio_ = std::make_unique<sim::Radio>(sched_, medium_, node_, rng_.fork());
  forwarder_ = std::make_unique<ndn::Forwarder>(
      sched_, ndn::Forwarder::Options{options_.cs_capacity, true});
  forwarder_->set_trace_node(node_);

  wifi_face_ = std::make_shared<ndn::WifiFace>(sched_, *radio_, node_,
                                               rng_.fork(), options_.tx_window);
  app_face_ = std::make_shared<ndn::AppFace>();
  app_face_->set_app_handlers(
      [this](const ndn::Interest& i) { on_app_interest(i); },
      [this](const ndn::Data& d) { on_app_data(d); });

  forwarder_->add_face(wifi_face_);
  forwarder_->add_face(app_face_);

  DapesIntermediateStrategy::IntermediateParams sparams;
  sparams.base.forward_probability =
      options_.multihop ? options_.forward_probability : 0.0;
  auto strategy = std::make_unique<PeerStrategy>(
      sched_, rng_.fork(), sparams,
      [this](const ndn::Interest& i) { on_overheard_interest(i); },
      [this](const ndn::Data& d) { on_overheard_data(d); });
  strategy_ = strategy.get();
  forwarder_->set_strategy(std::move(strategy));

  forwarder_->fib().add_route(discovery_prefix(), app_face_->id());
}

void Peer::start() {
  // Desynchronize peers' discovery loops.
  Duration initial = Duration::microseconds(static_cast<int64_t>(
      rng_.next_below(static_cast<uint64_t>(discovery_period_.us) + 1)));
  sched_.schedule(initial, [this] { discovery_tick(); });
}

void Peer::crash() {
  // The harness has already retired the node on the medium and swept its
  // scheduled events; here we drop the volatile state those events were
  // driving so a later restart() begins from a clean power-on.
  radio_->reset();
  wifi_face_->reset();
  neighbors_.clear();
  discovery_period_ = options_.discovery_period_min;
  for (auto& [name, st] : downloads_) {
    st.in_flight.clear();
    st.adv_timer = sim::EventId{};
    st.adv_pending = false;
    st.union_valid = false;
    st.bitmaps_heard_this_round = 0;
    st.collision_round = 0;
    if (!st.completed_at) st.fetching_enabled = false;
    // The metadata retry timer (which clears this flag on silence) was
    // swept with the rest of our events; without this reset a crash
    // mid-retrieval would wedge the download forever.
    if (!st.metadata) st.metadata_requested = false;
    // `have`, retry_count, completed_at and the RPF survive: downloaded
    // packets are on disk, and encounter history is durable by design.
  }
}

void Peer::restart() {
  // Same entry point as the initial start: a fresh discovery dither.
  start();
}

void Peer::publish(std::shared_ptr<Collection> collection) {
  const Name& name = collection->name();
  DownloadState& st = downloads_[name];
  st.oracle = collection;
  st.metadata = collection->metadata();
  st.layout = collection->layout();
  st.have = Bitmap(collection->total_packets());
  for (size_t i = 0; i < st.have.size(); ++i) st.have.set(i);
  st.completed_at = sched_.now();
  st.metadata_name = collection->metadata().name_prefix();
  RpfOptions ro;
  ro.total_packets = collection->total_packets();
  ro.random_start = options_.random_start;
  ro.history_limit = options_.encounter_history;
  ro.seed = rng_.next();
  st.rpf = make_fetch_strategy(options_.rpf, ro);
  keychain_.import_key(key_);
  forwarder_->fib().add_route(name, app_face_->id());
}

void Peer::subscribe(std::shared_ptr<Collection> collection) {
  const Name& name = collection->name();
  if (downloads_.contains(name)) return;
  DownloadState& st = downloads_[name];
  st.oracle = std::move(collection);
  st.have = Bitmap(0);  // sized once the metadata arrives
  forwarder_->fib().add_route(name, app_face_->id());
}

void Peer::add_trust_anchor(const crypto::KeyId& producer) {
  keychain_.add_trust_anchor(producer);
}

bool Peer::complete(const Name& collection) const {
  auto it = downloads_.find(collection);
  return it != downloads_.end() && it->second.completed_at.has_value();
}

std::optional<common::TimePoint> Peer::completion_time(
    const Name& collection) const {
  auto it = downloads_.find(collection);
  if (it == downloads_.end()) return std::nullopt;
  return it->second.completed_at;
}

double Peer::progress(const Name& collection) const {
  auto it = downloads_.find(collection);
  if (it == downloads_.end() || it->second.have.empty()) return 0.0;
  return it->second.have.completeness();
}

Peer::DownloadDebug Peer::debug_download(const Name& collection) const {
  DownloadDebug dbg;
  auto it = downloads_.find(collection);
  if (it == downloads_.end()) return dbg;
  const DownloadState& st = it->second;
  dbg.has_metadata = st.metadata.has_value();
  dbg.fetching_enabled = st.fetching_enabled;
  dbg.progress = st.have.empty() ? 0.0 : st.have.completeness();
  dbg.in_flight = st.in_flight.size();
  dbg.known_bitmaps = st.rpf ? st.rpf->known_bitmaps() : 0;
  for (const auto& [id, info] : neighbors_) {
    if (sched_.now() - info.last_heard <= options_.neighbor_ttl) {
      ++dbg.fresh_neighbors;
    }
  }
  return dbg;
}

size_t Peer::knowledge_bytes() const {
  size_t bytes = 0;
  if (strategy_ != nullptr) bytes += strategy_->knowledge_bytes();
  for (const auto& [name, st] : downloads_) {
    bytes += (st.have.size() + 7) / 8;
    if (st.rpf) bytes += st.rpf->state_bytes();
  }
  for (const auto& [id, info] : neighbors_) {
    bytes += id.size() + info.offered_metadata.size() * 48;
  }
  return bytes;
}

size_t Peer::state_bytes() const {
  size_t bytes = forwarder_->cs().content_bytes() + knowledge_bytes();
  for (const auto& [name, st] : downloads_) {
    if (st.metadata) bytes += st.metadata->encode().size();
  }
  return bytes;
}

// --------------------------------------------------------------------
// Wiring

void Peer::express(ndn::Interest interest) {
  interest.set_nonce(static_cast<uint32_t>(rng_.next()));
  interest.set_lifetime(options_.interest_lifetime);
  ++interests_expressed_;
  app_face_->express(interest);
}

void Peer::on_app_interest(const ndn::Interest& interest) {
  const Name& name = interest.name();
  if (discovery_prefix().is_prefix_of(name)) {
    handle_discovery_interest(interest);
    return;
  }
  if (is_control_name(name)) {
    return;  // bitmap announcements are handled via overhearing
  }
  serve_interest(interest);
}

void Peer::on_app_data(const ndn::Data& data) {
  const Name& name = data.name();
  if (discovery_prefix().is_prefix_of(name)) {
    handle_discovery_data(data);
    return;
  }
  if (is_metadata_name(name)) {
    if (auto collection = collection_of_metadata_name(name)) {
      if (DownloadState* st = state_for(*collection)) {
        handle_metadata_segment(*st, data);
      }
    }
    return;
  }
  handle_collection_data(data);
}

// --------------------------------------------------------------------
// Step 1: discovery

void Peer::discovery_tick() {
  prune_neighbors();
  send_discovery_interest();

  // Adaptive period: frequent while peers are around, backing off toward
  // the maximum in isolation (paper §IV-B).
  bool have_fresh_neighbor = false;
  for (const auto& [id, info] : neighbors_) {
    if (sched_.now() - info.last_heard <= options_.neighbor_ttl) {
      have_fresh_neighbor = true;
      break;
    }
  }
  if (have_fresh_neighbor) {
    discovery_period_ = options_.discovery_period_min;
  } else {
    discovery_period_ =
        std::min(Duration{discovery_period_.us * 2},
                 options_.discovery_period_max);
  }
  Duration jitter = Duration::microseconds(static_cast<int64_t>(
      rng_.next_below(static_cast<uint64_t>(discovery_period_.us / 4) + 1)));
  sched_.schedule(discovery_period_ + jitter, [this] { discovery_tick(); });
}

void Peer::send_discovery_interest() {
  ndn::Interest interest(discovery_query_name(rng_.next()));
  interest.set_can_be_prefix(true);
  interest.set_hop_limit(2);
  ++stats_.discovery_interests_sent;
  express(std::move(interest));
}

void Peer::handle_discovery_interest(const ndn::Interest& interest) {
  // Respond with the metadata names of the collections we can offer.
  // The response appends our id to the query name, so several peers can
  // answer the same query under distinct names.
  if (!is_discovery_query(interest.name())) return;  // a response echo
  DiscoveryMessage msg;
  msg.peer_id = options_.id;
  for (const auto& [name, st] : downloads_) {
    if (st.metadata && !st.have.none()) {
      msg.metadata_names.push_back(st.metadata_name);
    }
  }
  if (msg.metadata_names.empty()) return;

  ndn::Data response(discovery_response_name(interest.name(), options_.id));
  response.set_content(msg.encode());
  response.set_freshness(Duration::milliseconds(500));
  response.sign(key_);
  ++stats_.discovery_responses_sent;
  app_face_->put(response);
}

void Peer::handle_discovery_data(const ndn::Data& data) {
  auto msg = DiscoveryMessage::decode(data.content());
  if (!msg || msg->peer_id == options_.id) return;
  bool fresh_encounter = touch_neighbor(msg->peer_id);
  NeighborInfo& info = neighbors_[msg->peer_id];

  for (const Name& metadata_name : msg->metadata_names) {
    info.offered_metadata.insert(metadata_name);
    auto collection = collection_of_metadata_name(metadata_name);
    if (!collection) continue;
    DownloadState* st = state_for(*collection);
    if (st == nullptr) continue;  // not interested in this collection

    if (!st->metadata) {
      // First sighting of a collection of interest: fetch + authenticate
      // the metadata (step 2).
      if (st->metadata_name.empty()) st->metadata_name = metadata_name;
      if (!st->metadata_requested) request_metadata(*st);
    } else if (fresh_encounter ||
               (!st->completed_at &&
                sched_.now() - st->last_round_start > Duration::seconds(5.0))) {
      // A peer (re)entered range with this collection — or we are still
      // incomplete with a holder around (announcements can be lost; the
      // encounter must not stall on one missing bitmap). Complete peers
      // only participate on fresh encounters or when solicited by
      // another peer's announcement.
      begin_advertisement_round(*collection);
    }
  }
}

// --------------------------------------------------------------------
// Step 2: metadata retrieval + authentication

void Peer::request_metadata(DownloadState& st) {
  st.metadata_requested = true;
  if (st.metadata_total_segments == 0) {
    // Total unknown until the first segment arrives.
    request_metadata_segment(st, 0);
    return;
  }
  // Re-request every still-missing segment (burst; the radio serializes).
  for (uint64_t s = 0; s < st.metadata_total_segments; ++s) {
    if (!st.metadata_segments.contains(s)) {
      request_metadata_segment(st, s);
    }
  }
}

void Peer::request_metadata_segment(DownloadState& st, uint64_t segment) {
  if (st.metadata_segments.contains(segment)) return;
  Name name = metadata_segment_name(st.metadata_name, segment);
  ndn::Interest interest(name);
  interest.set_hop_limit(4);
  express(std::move(interest));

  // Retry on silence: clears the "requested" flag so the next discovery
  // of a holder re-triggers the fetch.
  Name coll_key;
  for (auto& [key, state] : downloads_) {
    if (&state == &st) {
      coll_key = key;
      break;
    }
  }
  sched_.schedule(options_.interest_lifetime + Duration::milliseconds(200),
                  [this, coll_key, segment] {
                    DownloadState* state = state_for(coll_key);
                    if (state == nullptr || state->metadata) return;
                    if (!state->metadata_segments.contains(segment)) {
                      state->metadata_requested = false;
                    }
                  });
}

void Peer::handle_metadata_segment(DownloadState& st, const ndn::Data& data) {
  if (st.metadata) return;  // already have it
  if (!st.metadata_name.is_prefix_of(data.name())) return;
  auto seq = data.name()[data.name().size() - 1].to_number();
  if (!seq) return;

  // Authenticate: the producer's signature must verify and the producer
  // must be trusted via local anchors (paper §III).
  if (!data.verify(keychain_) ||
      !keychain_.is_trusted(data.signature()->signer)) {
    ++stats_.metadata_rejected;
    return;
  }

  st.metadata_segments[*seq] = common::Bytes(data.content().begin(),
                                             data.content().end());
  size_t total = Metadata::segment_count_of(data.content());
  if (total == 0) return;
  const bool total_was_unknown = st.metadata_total_segments == 0;
  st.metadata_total_segments = total;

  bool complete = true;
  for (uint64_t s = 0; s < total; ++s) {
    if (!st.metadata_segments.contains(s)) {
      complete = false;
      // Learning the total unlocks requesting the rest in one burst.
      if (total_was_unknown) request_metadata_segment(st, s);
    }
  }
  if (complete) finish_metadata(st);
}

void Peer::finish_metadata(DownloadState& st) {
  std::vector<common::Bytes> segments;
  segments.reserve(st.metadata_total_segments);
  for (uint64_t s = 0; s < st.metadata_total_segments; ++s) {
    segments.push_back(st.metadata_segments[s]);
  }
  auto meta = Metadata::from_segments(segments);
  if (!meta) {
    ++stats_.metadata_rejected;
    st.metadata_segments.clear();
    st.metadata_requested = false;
    return;
  }
  st.metadata = std::move(*meta);
  st.layout = st.metadata->layout();
  st.have = Bitmap(st.metadata->total_packets());
  RpfOptions ro;
  ro.total_packets = st.metadata->total_packets();
  ro.random_start = options_.random_start;
  ro.history_limit = options_.encounter_history;
  ro.seed = rng_.next();
  st.rpf = make_fetch_strategy(options_.rpf, ro);
  st.metadata_segments.clear();

  DAPES_LOG_DEBUG(kLog) << options_.id << " got metadata for "
                        << st.metadata->collection().to_uri() << " ("
                        << st.have.size() << " packets)";
  begin_advertisement_round(st.metadata->collection());
}

// --------------------------------------------------------------------
// Step 3: advertisements, prioritization, PEBA

double Peer::provide_fraction(const DownloadState& st) const {
  if (!st.union_valid) return st.have.completeness();
  size_t missing = st.have.size() - st.transmitted_union.count();
  if (missing == 0) return 0.0;
  size_t provide = st.have.count_set_and_missing_from(st.transmitted_union);
  return static_cast<double>(provide) / static_cast<double>(missing);
}

void Peer::begin_advertisement_round(const Name& collection) {
  DownloadState* st = state_for(collection);
  if (st == nullptr || !st->metadata) return;
  if (st->adv_pending) return;  // round already in progress
  // One round per encounter window; repeated discovery responses from the
  // same group of peers must not restart the round and reset the gate.
  if (sched_.now() - st->last_round_start < Duration::seconds(3.0)) return;
  st->last_round_start = sched_.now();
  ++st->adv_round;
  st->transmitted_union = Bitmap(st->have.size());
  st->union_valid = false;
  st->bitmaps_heard_this_round = 0;
  st->collision_round = 0;
  // Per-encounter gating (Fig. 9c/9d): data fetching re-opens once enough
  // bitmaps from this round are in.
  st->fetching_enabled = false;
  schedule_bitmap_announcement(collection, /*initial=*/true);

  // Fallback: if the gate threshold is never met (announcements lost,
  // neighbors moved away), fetch anyway once at least one bitmap arrived.
  Name coll = collection;
  uint64_t round = st->adv_round;
  sched_.schedule(Duration::seconds(2.0), [this, coll, round] {
    DownloadState* state = state_for(coll);
    if (state == nullptr || state->adv_round != round) return;
    if (!state->fetching_enabled && state->bitmaps_heard_this_round > 0) {
      state->fetching_enabled = true;
      pump_fetch(coll);
    }
  });
}

void Peer::schedule_bitmap_announcement(const Name& collection, bool initial) {
  DownloadState* st = state_for(collection);
  if (st == nullptr || !st->metadata) return;
  if (st->adv_timer.valid()) sched_.cancel(st->adv_timer);

  double fraction =
      initial ? st->have.completeness() : provide_fraction(*st);
  Duration delay;
  if (st->collision_round > 0 && options_.use_peba) {
    delay = peba_.backoff_delay(st->collision_round, fraction, rng_);
  } else {
    delay = peba_.priority_delay(fraction);
    if (st->collision_round > 0) {
      // Without PEBA, retry with the same linear rule plus a tiny jitter —
      // peers with similar holdings keep colliding (Fig. 9b).
      delay = delay + Duration::microseconds(static_cast<int64_t>(
                          rng_.next_below(1000)));
    }
  }
  st->adv_pending = true;
  Name coll = collection;
  st->adv_timer =
      sched_.schedule(delay, [this, coll] { send_bitmap_announcement(coll); });
}

void Peer::send_bitmap_announcement(const Name& collection) {
  DownloadState* st = state_for(collection);
  if (st == nullptr || !st->metadata) return;
  st->adv_pending = false;
  st->adv_timer = sim::EventId{};

  BitmapMessage msg;
  msg.peer_id = options_.id;
  msg.collection = collection;
  msg.round = st->adv_round;
  msg.layout = st->layout.files();
  msg.bitmap = st->have;
  if (options_.lie_in_bitmaps) {
    // Adversarial peer: claim everything, serve nothing (serve_interest
    // still consults the real `have`, so the lie never produces data).
    for (size_t i = 0; i < msg.bitmap.size(); ++i) msg.bitmap.set(i);
    DAPES_TRACE_EVENT(trace::EventType::kPeerLied, node_,
                      static_cast<uint64_t>(msg.bitmap.size()),
                      static_cast<uint64_t>(st->have.count()));
  }

  ndn::Interest interest(
      bitmap_data_name(collection, options_.id, st->adv_round));
  interest.set_app_parameters(msg.encode());
  interest.set_lifetime(Duration::milliseconds(500));
  interest.set_hop_limit(2);
  ++stats_.bitmap_announcements_sent;

  // PEBA hooks into the radio's collision feedback for this transmission.
  // Retransmission triggers only when the announcement was corrupted for
  // the majority of in-range receivers — isolated hidden-terminal losses
  // don't count as prioritization contention.
  Name coll = collection;
  wifi_face_->set_next_interest_tx_callback(
      [this, coll](const sim::Medium::TxReport& report) {
        DownloadState* state = state_for(coll);
        if (state == nullptr) return;
        if (report.mostly_collided()) {
          ++stats_.bitmap_collisions_detected;
          if (state->collision_round < 6) {
            ++state->collision_round;
            schedule_bitmap_announcement(coll, /*initial=*/false);
          }
        } else {
          state->collision_round = 0;
        }
      });
  express(std::move(interest));
}

void Peer::handle_bitmap_message(const BitmapMessage& msg) {
  if (msg.peer_id == options_.id) return;
  touch_neighbor(msg.peer_id);
  DownloadState* st = state_for(msg.collection);
  if (st == nullptr || !st->metadata) return;

  // A received bitmap announcement also acts as a bitmap Interest
  // (paper §IV-D): reciprocate with our own bitmap unless a round is
  // already pending or we announced very recently (cooldown inside
  // begin_advertisement_round).
  begin_advertisement_round(msg.collection);
  st = state_for(msg.collection);

  if (st->rpf) st->rpf->on_bitmap(msg.peer_id, msg.bitmap, sched_.now());

  if (!st->union_valid) {
    st->transmitted_union = Bitmap(st->have.size());
    st->union_valid = true;
  }
  st->transmitted_union.or_with(msg.bitmap);
  ++st->bitmaps_heard_this_round;

  // Paper §IV-F: hearing a bitmap cancels our pending transmission and
  // reschedules it by how much we can still offer.
  if (st->adv_pending) {
    schedule_bitmap_announcement(msg.collection, /*initial=*/false);
  }

  // Fetch gating (Fig. 9c/9d): interleaved starts after the first bitmap;
  // bitmaps-first waits for b (0 = all neighbors offering the collection).
  if (!st->fetching_enabled) {
    size_t threshold;
    size_t offering_now = 0;
    for (const auto& [id, info] : neighbors_) {
      if (sched_.now() - info.last_heard > options_.neighbor_ttl) continue;
      for (const Name& m : info.offered_metadata) {
        auto coll = collection_of_metadata_name(m);
        if (coll && *coll == msg.collection) {
          ++offering_now;
          break;
        }
      }
    }
    if (options_.advertisement_mode == AdvertisementMode::kInterleaved) {
      threshold = 1;
    } else if (options_.bitmaps_before_data > 0) {
      // Cannot wait for more bitmaps than there are peers to send them.
      threshold = std::max<size_t>(
          1, std::min<size_t>(
                 static_cast<size_t>(options_.bitmaps_before_data),
                 std::max<size_t>(offering_now, 1)));
    } else {
      // "all bitmaps": every fresh neighbor that offers this collection.
      threshold = std::max<size_t>(offering_now, 1);
    }
    if (st->bitmaps_heard_this_round >= threshold) {
      st->fetching_enabled = true;
    }
  }
  if (st->fetching_enabled) pump_fetch(msg.collection);
}

// --------------------------------------------------------------------
// Step 4: data fetching

void Peer::pump_fetch(const Name& collection) {
  DownloadState* st = state_for(collection);
  if (st == nullptr || !st->metadata || !st->fetching_enabled) return;
  if (st->completed_at && st->have.full()) return;

  if (options_.knowledge_ttl.us > 0 && st->rpf) {
    st->rpf->expire_older_than(sched_.now() - options_.knowledge_ttl);
  }

  // Without any fresh neighbor there is nobody to answer; stay quiet
  // until the next encounter.
  bool fresh = false;
  for (const auto& [id, info] : neighbors_) {
    if (sched_.now() - info.last_heard <= options_.neighbor_ttl) {
      fresh = true;
      break;
    }
  }
  if (!fresh) return;

  while (st->in_flight.size() <
         static_cast<size_t>(options_.interest_window)) {
    auto index = st->rpf->select_next(st->have, st->in_flight);
    if (!index) break;
    request_packet(*st, collection, *index);
  }
}

void Peer::request_packet(DownloadState& st, const Name& collection,
                          size_t index) {
  st.in_flight.insert(index);
  auto loc = st.layout.locate(index);
  Name name = packet_name(collection, loc.file_name, loc.seq);
  ndn::Interest interest(name);
  interest.set_hop_limit(4);
  ++stats_.data_interests_sent;
  express(std::move(interest));

  Name coll = collection;
  sched_.schedule(options_.interest_lifetime + Duration::milliseconds(100),
                  [this, coll, index] { handle_packet_timeout(coll, index); });
}

void Peer::handle_packet_timeout(const Name& collection, size_t index) {
  DownloadState* st = state_for(collection);
  if (st == nullptr) return;
  auto it = st->in_flight.find(index);
  if (it == st->in_flight.end()) return;  // satisfied in the meantime
  st->in_flight.erase(it);
  ++st->retry_count[index];
  ++stats_.interest_timeouts;
  if (options_.stale_retry_limit > 0 && st->rpf &&
      st->retry_count[index] % options_.stale_retry_limit == 0) {
    // Every known holder of this packet failed to answer a full retry
    // budget: the availability claims are stale (departed holder) or
    // false (liar). Demote them so the plan moves on.
    st->rpf->on_fetch_failed(index);
  }
  pump_fetch(collection);
}

void Peer::handle_collection_data(const ndn::Data& data) {
  Name collection;
  DownloadState* st = state_for_packet_name(data.name(), &collection);
  if (st == nullptr || !st->metadata) return;

  auto parts = parse_packet_name(data.name(), collection.size());
  if (!parts) return;
  auto index = st->layout.index_of(parts->file_name, parts->seq);
  if (!index) return;

  st->in_flight.erase(*index);
  if (st->have.test(*index)) return;  // duplicate

  // Integrity (paper §IV-C): digest metadata verifies per packet; the
  // Merkle format defers to whole-file verification at completion.
  size_t file_index = 0;
  for (size_t i = 0; i < st->metadata->files().size(); ++i) {
    if (st->metadata->files()[i].name == parts->file_name) {
      file_index = i;
      break;
    }
  }
  auto verdict = st->metadata->verify_packet(file_index, parts->seq,
                                              data.content());
  if (verdict.has_value() && !*verdict) {
    ++stats_.integrity_failures;
    pump_fetch(collection);
    return;
  }

  st->have.set(*index);
  ++stats_.data_packets_received;
  maybe_complete(collection, *st);
  pump_fetch(collection);
}

void Peer::maybe_complete(const Name& collection, DownloadState& st) {
  if (st.completed_at || !st.have.full()) return;
  st.completed_at = sched_.now();
  DAPES_LOG_INFO(kLog) << options_.id << " completed "
                       << collection.to_uri() << " at "
                       << common::format_time(sched_.now());
  if (on_complete_) on_complete_(collection, sched_.now());
}

// --------------------------------------------------------------------
// Serving

void Peer::serve_interest(const ndn::Interest& interest) {
  const Name& name = interest.name();

  // Metadata segments.
  if (is_metadata_name(name)) {
    auto collection = collection_of_metadata_name(name);
    if (!collection) return;
    DownloadState* st = state_for(*collection);
    if (st == nullptr || !st->metadata || !st->oracle) return;
    if (!st->metadata_name.is_prefix_of(name)) return;
    for (const auto& segment : st->oracle->metadata_packets()) {
      if (segment.name() == name ||
          (interest.can_be_prefix() && name.is_prefix_of(segment.name()))) {
        app_face_->put(segment);
        return;
      }
    }
    return;
  }

  // Collection packets.
  Name collection;
  DownloadState* st = state_for_packet_name(name, &collection);
  if (st == nullptr || !st->oracle || st->have.empty()) return;
  auto parts = parse_packet_name(name, collection.size());
  if (!parts) return;
  auto index = st->layout.index_of(parts->file_name, parts->seq);
  if (!index || !st->have.test(*index)) return;
  ++stats_.data_packets_served;
  app_face_->put(st->oracle->packet(*index));
}

// --------------------------------------------------------------------
// Overhearing

void Peer::on_overheard_interest(const ndn::Interest& interest) {
  const Name& name = interest.name();
  if (name.size() >= 2 && name[0].to_string() == kAppPrefix &&
      name[1].to_string() == kBitmapComponent &&
      interest.has_app_parameters()) {
    auto msg = BitmapMessage::decode(interest.app_parameters());
    if (msg) handle_bitmap_message(*msg);
  }
}

void Peer::on_overheard_data(const ndn::Data& data) {
  const Name& name = data.name();
  if (discovery_prefix().is_prefix_of(name)) {
    handle_discovery_data(data);
    return;
  }
  if (is_metadata_name(name)) {
    if (auto collection = collection_of_metadata_name(name)) {
      if (DownloadState* st = state_for(*collection)) {
        handle_metadata_segment(*st, data);
      }
    }
    return;
  }
  // Opportunistic capture: every broadcast data packet is useful to every
  // peer missing it (the heart of "maximizing the utility of
  // transmissions").
  handle_collection_data(data);
}

// --------------------------------------------------------------------
// Neighbor bookkeeping

bool Peer::touch_neighbor(const std::string& peer_id) {
  auto [it, inserted] = neighbors_.try_emplace(peer_id);
  bool fresh_encounter =
      inserted ||
      sched_.now() - it->second.last_heard > options_.neighbor_ttl;
  it->second.last_heard = sched_.now();
  return fresh_encounter;
}

void Peer::prune_neighbors() {
  for (auto it = neighbors_.begin(); it != neighbors_.end();) {
    if (sched_.now() - it->second.last_heard >
        Duration{options_.neighbor_ttl.us * 2}) {
      for (auto& [coll, st] : downloads_) {
        if (st.rpf) st.rpf->on_neighbor_lost(it->first);
      }
      it = neighbors_.erase(it);
    } else {
      ++it;
    }
  }
}

Peer::DownloadState* Peer::state_for(const Name& collection) {
  auto it = downloads_.find(collection);
  return it == downloads_.end() ? nullptr : &it->second;
}

Peer::DownloadState* Peer::state_for_packet_name(const Name& name,
                                                 Name* collection_out) {
  for (auto& [collection, st] : downloads_) {
    if (collection.size() + 2 == name.size() &&
        collection.is_prefix_of(name)) {
      if (collection_out != nullptr) *collection_out = collection;
      return &st;
    }
  }
  return nullptr;
}

}  // namespace dapes::core
