#include "dapes/messages.hpp"

#include "ndn/packet.hpp"
#include "ndn/tlv.hpp"

namespace dapes::core {

namespace {

// Application TLV types for control messages (disjoint from metadata's).
enum MsgTlv : uint64_t {
  kPeerId = 150,
  kMetadataName = 151,
  kCollectionName = 152,
  kRound = 153,
  kLayoutEntry = 154,
  kLayoutFileName = 155,
  kLayoutPacketCount = 156,
  kBitmapBits = 157,
};

common::BytesView str_view(const std::string& s) {
  return common::BytesView(reinterpret_cast<const uint8_t*>(s.data()),
                           s.size());
}

}  // namespace

common::Bytes DiscoveryMessage::encode() const {
  using namespace ndn::tlv;
  Writer w;
  w.tlv(kPeerId, str_view(peer_id));
  for (const auto& name : metadata_names) {
    auto nested = w.begin(kMetadataName);
    ndn::append_name(w, name);
    w.end(nested);
  }
  return w.take();
}

std::optional<DiscoveryMessage> DiscoveryMessage::decode(
    common::BytesView wire) {
  using namespace ndn::tlv;
  try {
    DiscoveryMessage msg;
    Reader reader(wire);
    while (!reader.at_end()) {
      auto e = reader.read_element();
      switch (e.type) {
        case kPeerId:
          msg.peer_id.assign(e.value.begin(), e.value.end());
          break;
        case kMetadataName: {
          Reader name_reader(e.value);
          auto name_el = name_reader.expect(ndn::tlv::kName);
          msg.metadata_names.push_back(ndn::parse_name(name_el.value));
          break;
        }
        default:
          break;
      }
    }
    if (msg.peer_id.empty()) return std::nullopt;
    return msg;
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

common::Bytes BitmapMessage::encode() const {
  using namespace ndn::tlv;
  Writer w;
  w.tlv(kPeerId, str_view(peer_id));

  auto coll = w.begin(kCollectionName);
  ndn::append_name(w, collection);
  w.end(coll);
  w.tlv_number(kRound, round);

  for (const auto& f : layout) {
    auto entry = w.begin(kLayoutEntry);
    w.tlv(kLayoutFileName, str_view(f.name));
    w.tlv_number(kLayoutPacketCount, f.packet_count);
    w.end(entry);
  }

  common::Bytes bits = bitmap.encode();
  w.tlv(kBitmapBits, common::BytesView(bits.data(), bits.size()));
  return w.take();
}

std::optional<BitmapMessage> BitmapMessage::decode(common::BytesView wire) {
  using namespace ndn::tlv;
  try {
    BitmapMessage msg;
    Reader reader(wire);
    bool have_bits = false;
    while (!reader.at_end()) {
      auto e = reader.read_element();
      switch (e.type) {
        case kPeerId:
          msg.peer_id.assign(e.value.begin(), e.value.end());
          break;
        case kCollectionName: {
          Reader name_reader(e.value);
          auto name_el = name_reader.expect(ndn::tlv::kName);
          msg.collection = ndn::parse_name(name_el.value);
          break;
        }
        case kRound:
          msg.round = parse_number(e.value);
          break;
        case kLayoutEntry: {
          CollectionLayout::FileEntry file;
          Reader entry(e.value);
          while (!entry.at_end()) {
            auto m = entry.read_element();
            if (m.type == kLayoutFileName) {
              file.name.assign(m.value.begin(), m.value.end());
            } else if (m.type == kLayoutPacketCount) {
              file.packet_count = static_cast<size_t>(parse_number(m.value));
            }
          }
          msg.layout.push_back(std::move(file));
          break;
        }
        case kBitmapBits: {
          auto bm = Bitmap::decode(e.value);
          if (!bm) return std::nullopt;
          msg.bitmap = std::move(*bm);
          have_bits = true;
          break;
        }
        default:
          break;
      }
    }
    if (msg.peer_id.empty() || msg.collection.empty() || !have_bits) {
      return std::nullopt;
    }
    return msg;
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

}  // namespace dapes::core
