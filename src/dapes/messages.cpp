#include "dapes/messages.hpp"

#include "ndn/packet.hpp"
#include "ndn/tlv.hpp"

namespace dapes::core {

namespace {

// Application TLV types for control messages (disjoint from metadata's).
enum MsgTlv : uint64_t {
  kPeerId = 150,
  kMetadataName = 151,
  kCollectionName = 152,
  kRound = 153,
  kLayoutEntry = 154,
  kLayoutFileName = 155,
  kLayoutPacketCount = 156,
  kBitmapBits = 157,
};

common::BytesView str_view(const std::string& s) {
  return common::BytesView(reinterpret_cast<const uint8_t*>(s.data()),
                           s.size());
}

}  // namespace

common::Bytes DiscoveryMessage::encode() const {
  using namespace ndn::tlv;
  common::Bytes out;
  append_tlv(out, kPeerId, str_view(peer_id));
  for (const auto& name : metadata_names) {
    common::Bytes name_bytes;
    ndn::append_name(name_bytes, name);
    append_tlv(out, kMetadataName,
               common::BytesView(name_bytes.data(), name_bytes.size()));
  }
  return out;
}

std::optional<DiscoveryMessage> DiscoveryMessage::decode(
    common::BytesView wire) {
  using namespace ndn::tlv;
  try {
    DiscoveryMessage msg;
    Reader reader(wire);
    while (!reader.at_end()) {
      auto e = reader.read_element();
      switch (e.type) {
        case kPeerId:
          msg.peer_id.assign(e.value.begin(), e.value.end());
          break;
        case kMetadataName: {
          Reader name_reader(e.value);
          auto name_el = name_reader.expect(ndn::tlv::kName);
          msg.metadata_names.push_back(ndn::parse_name(name_el.value));
          break;
        }
        default:
          break;
      }
    }
    if (msg.peer_id.empty()) return std::nullopt;
    return msg;
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

common::Bytes BitmapMessage::encode() const {
  using namespace ndn::tlv;
  common::Bytes out;
  append_tlv(out, kPeerId, str_view(peer_id));

  common::Bytes name_bytes;
  ndn::append_name(name_bytes, collection);
  append_tlv(out, kCollectionName,
             common::BytesView(name_bytes.data(), name_bytes.size()));
  append_tlv_number(out, kRound, round);

  for (const auto& f : layout) {
    common::Bytes entry;
    append_tlv(entry, kLayoutFileName, str_view(f.name));
    append_tlv_number(entry, kLayoutPacketCount, f.packet_count);
    append_tlv(out, kLayoutEntry, common::BytesView(entry.data(), entry.size()));
  }

  common::Bytes bits = bitmap.encode();
  append_tlv(out, kBitmapBits, common::BytesView(bits.data(), bits.size()));
  return out;
}

std::optional<BitmapMessage> BitmapMessage::decode(common::BytesView wire) {
  using namespace ndn::tlv;
  try {
    BitmapMessage msg;
    Reader reader(wire);
    bool have_bits = false;
    while (!reader.at_end()) {
      auto e = reader.read_element();
      switch (e.type) {
        case kPeerId:
          msg.peer_id.assign(e.value.begin(), e.value.end());
          break;
        case kCollectionName: {
          Reader name_reader(e.value);
          auto name_el = name_reader.expect(ndn::tlv::kName);
          msg.collection = ndn::parse_name(name_el.value);
          break;
        }
        case kRound:
          msg.round = parse_number(e.value);
          break;
        case kLayoutEntry: {
          CollectionLayout::FileEntry file;
          Reader entry(e.value);
          while (!entry.at_end()) {
            auto m = entry.read_element();
            if (m.type == kLayoutFileName) {
              file.name.assign(m.value.begin(), m.value.end());
            } else if (m.type == kLayoutPacketCount) {
              file.packet_count = static_cast<size_t>(parse_number(m.value));
            }
          }
          msg.layout.push_back(std::move(file));
          break;
        }
        case kBitmapBits: {
          auto bm = Bitmap::decode(e.value);
          if (!bm) return std::nullopt;
          msg.bitmap = std::move(*bm);
          have_bits = true;
          break;
        }
        default:
          break;
      }
    }
    if (msg.peer_id.empty() || msg.collection.empty() || !have_bits) {
      return std::nullopt;
    }
    return msg;
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

}  // namespace dapes::core
