#include "dapes/peba.hpp"

#include <algorithm>
#include <cmath>

namespace dapes::core {

Duration PebaScheduler::max_delay() const {
  // fraction below 1/50 saturates: the peer has essentially nothing new.
  return Duration{params_.window.us * 50};
}

Duration PebaScheduler::priority_delay(double fraction) const {
  if (fraction >= 1.0) return params_.window;
  if (fraction <= 0.0) return max_delay();
  double delay_us = static_cast<double>(params_.window.us) / fraction;
  return Duration{std::min<int64_t>(static_cast<int64_t>(delay_us),
                                    max_delay().us)};
}

int PebaScheduler::slots_for_round(int collision_round) const {
  int round = std::clamp(collision_round, 1, params_.max_rounds);
  return 1 << round;  // 2, 4, 8, ...
}

int PebaScheduler::group_for_fraction(double fraction) const {
  // With g groups, group j covers fractions in [(g-1-j)/g, (g-j)/g):
  // providing more lands you earlier, and exactly "half" still counts as
  // the first of two groups (paper: "peers that have, at least, half of
  // the missing packets randomly select a slot in the first group").
  const int g = std::max(1, params_.groups);
  double clamped = std::clamp(fraction, 0.0, 1.0);
  int group = static_cast<int>(std::ceil((1.0 - clamped) * g)) - 1;
  return std::clamp(group, 0, g - 1);
}

Duration PebaScheduler::backoff_delay(int collision_round, double fraction,
                                      common::Rng& rng) const {
  const int total_slots = slots_for_round(collision_round);
  const int g = std::max(1, params_.groups);
  const int per_group = std::max(1, total_slots / g);
  const int group = group_for_fraction(fraction);
  const int base = group * per_group;
  const int slot =
      base + static_cast<int>(rng.next_below(static_cast<uint64_t>(per_group)));
  return params_.slot * slot;
}

}  // namespace dapes::core
