/// @file
/// Collection metadata for secure initialization (paper §IV-C, Fig. 4).
///
/// Two encodings, trading metadata size against how soon packet integrity
/// can be verified:
///   * kPacketDigest — "[packet-index]/[packet-digest]" per packet: large
///     (may need several network-layer segments, possibly several
///     encounters to fetch) but each packet verifies on arrival.
///   * kMerkleTree — one Merkle root per file: fits in a single segment,
///     but a file verifies only after all of its packets arrive (or with
///     an explicit inclusion proof).
///
/// The producer signs the metadata; peers verify the signature against
/// their local trust anchors before trusting the collection (§III).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crypto/keychain.hpp"
#include "crypto/merkle.hpp"
#include "dapes/bitmap.hpp"
#include "dapes/namespace.hpp"
#include "ndn/packet.hpp"

namespace dapes::core {

/// Which integrity encoding the metadata carries (see file comment).
enum class MetadataFormat : uint8_t {
  kPacketDigest = 1,  ///< per-packet digests: big, verifies on arrival
  kMerkleTree = 2,    ///< per-file Merkle root: small, verifies per file
};

/// Per-file section of the metadata.
struct FileMetadata {
  std::string name;         ///< file name within the collection
  size_t packet_count = 0;  ///< packets the file segments into
  /// kPacketDigest: one digest per packet, indexed by sequence number.
  std::vector<crypto::Digest> packet_digests;
  /// kMerkleTree: the file's Merkle root.
  std::optional<crypto::Digest> merkle_root;

  /// Field-wise equality.
  bool operator==(const FileMetadata&) const = default;
};

/// The signed description of a collection: file order, packet counts and
/// integrity material (digests or Merkle roots) per file.
class Metadata {
 public:
  /// Empty metadata (no collection, no files).
  Metadata() = default;
  /// Metadata for @p collection over @p files in bitmap order.
  Metadata(Name collection, MetadataFormat format,
           std::vector<FileMetadata> files);

  /// The collection's name prefix.
  const Name& collection() const { return collection_; }
  /// The integrity encoding in use.
  MetadataFormat format() const { return format_; }
  /// Per-file sections in bitmap order.
  const std::vector<FileMetadata>& files() const { return files_; }

  /// Layout implied by file order (bitmap bit ordering, §IV-D).
  CollectionLayout layout() const;

  /// Total packets across all files.
  size_t total_packets() const;

  /// TLV encoding of the metadata body (what gets segmented + signed).
  common::Bytes encode() const;
  /// Parse the `encode()` wire form; nullopt on malformed input.
  static std::optional<Metadata> decode(common::BytesView wire);

  /// SHA-256 of the encoded body; the first 8 hex chars become the
  /// metadata name component (Fig. 4: ".../metadata-file/A23D1F9B").
  crypto::Digest digest() const;
  /// First 8 hex characters of digest(), upper-case.
  std::string digest8() const;

  /// Name prefix for this metadata's segments.
  Name name_prefix() const;

  /// Segment the encoded body into producer-signed Data packets of at most
  /// @p segment_size content bytes (>=1 segment even when empty).
  std::vector<ndn::Data> to_packets(const crypto::PrivateKey& producer_key,
                                    size_t segment_size) const;

  /// Reassemble from segment contents (in segment order).
  static std::optional<Metadata> from_segments(
      const std::vector<common::Bytes>& segments);

  /// Total segment count advertised in any segment's content header
  /// (0 for malformed content).
  static size_t segment_count_of(common::BytesView segment_content);

  /// Integrity check for one packet (kPacketDigest: immediate).
  /// For kMerkleTree this always returns nullopt — use verify_file.
  std::optional<bool> verify_packet(size_t file_index, uint64_t seq,
                                    common::BytesView content) const;

  /// Integrity check for a whole file from its packet digests
  /// (kMerkleTree: recompute root; kPacketDigest: compare all digests).
  bool verify_file(size_t file_index,
                   const std::vector<crypto::Digest>& packet_digests) const;

  /// Field-wise equality.
  bool operator==(const Metadata&) const = default;

 private:
  Name collection_;
  MetadataFormat format_ = MetadataFormat::kPacketDigest;
  std::vector<FileMetadata> files_;
};

}  // namespace dapes::core
