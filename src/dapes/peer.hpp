/// @file
/// The DAPES peer application (paper §III, Fig. 3).
///
/// A Peer owns a full node stack — radio, NFD-lite forwarder with a
/// DAPES-intermediate strategy, and the application logic that drives the
/// four-step loop:
///   1. discover neighbors and file collections (adaptive-period discovery
///      Interests, §IV-B);
///   2. retrieve and authenticate collection metadata on first contact
///      (§IV-C);
///   3. advertise available collection data via prioritized, PEBA-scheduled
///      bitmap announcements (§IV-D, §IV-F);
///   4. fetch collection data with an RPF strategy (§IV-E), either after b
///      bitmaps ("bitmaps first") or interleaved with advertisements.
///
/// Producers publish() a Collection and serve its packets; every peer that
/// completes a collection keeps serving it (seeding). Stationary
/// repositories are just Peers with StationaryMobility.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "crypto/keychain.hpp"
#include "dapes/collection.hpp"
#include "dapes/messages.hpp"
#include "dapes/peba.hpp"
#include "dapes/rpf.hpp"
#include "dapes/strategies.hpp"
#include "ndn/forwarder.hpp"
#include "sim/medium.hpp"
#include "sim/radio.hpp"

namespace dapes::core {

/// How bitmap exchanges relate to data fetching (paper §IV-D, Fig. 9c/9d).
enum class AdvertisementMode {
  /// Collect `bitmaps_before_data` bitmaps, then fetch.
  kBitmapsFirst,
  /// Start fetching as soon as the first bitmap is known.
  kInterleaved,
};

/// Every knob of a Peer, grouped by the figure that sweeps it.
struct PeerOptions {
  std::string id = "peer";  ///< peer identifier carried in messages

  /// Fetch-strategy variant (Fig. 9a).
  RpfKind rpf = RpfKind::kLocalNeighborhood;
  bool random_start = true;       ///< random vs same first packet (Fig. 9a)
  size_t encounter_history = 20;  ///< encounter-based RPF history depth

  /// When data fetching starts relative to bitmap collection (Fig. 9c/9d).
  AdvertisementMode advertisement_mode = AdvertisementMode::kInterleaved;
  /// Bitmaps to collect before data download; 0 = "all peers in range"
  /// (the paper's "all bitmaps" configuration).
  int bitmaps_before_data = 2;

  bool use_peba = true;        ///< PEBA vs plain linear delays (Fig. 9b)
  PebaScheduler::Params peba{};  ///< PEBA tuning

  /// Suppression window for randomized announcement delays.
  common::Duration tx_window = common::Duration::milliseconds(20);
  /// Adaptive discovery period bounds (§IV-B).
  common::Duration discovery_period_min = common::Duration::seconds(1.0);
  common::Duration discovery_period_max = common::Duration::seconds(6.0);  ///< see min
  /// Forget neighbors not heard for this long.
  common::Duration neighbor_ttl = common::Duration::seconds(12.0);
  /// Lifetime stamped on expressed Interests.
  common::Duration interest_lifetime = common::Duration::seconds(1.5);

  int interest_window = 4;  ///< concurrent in-flight data Interests

  bool multihop = true;              ///< relay beyond one hop (Fig. 9g/9h)
  double forward_probability = 0.2;  ///< relay probability when multihop

  size_t cs_capacity = 4096;  ///< content-store entry cap

  // --- open-membership knobs (churn.* scenarios; defaults keep the
  // fixed-population paper sweeps byte-identical) ---

  /// Register the node on the medium but leave it dead and unstarted:
  /// a latent peer waiting for a FaultPlan admission (kJoin), which
  /// revives the node and calls start().
  bool latent = false;
  /// Adversarial peer: bitmap announcements claim every packet while the
  /// real store stays empty (advertise everything, serve nothing). Traces
  /// `peer.lied` per announcement.
  bool lie_in_bitmaps = false;
  /// Drop RPF bitmap knowledge older than this (0 = keep forever, the
  /// fixed-population behaviour). Under churn a silent neighbor has
  /// likely left; without expiry its bitmap poisons rarity estimates.
  common::Duration knowledge_ttl = common::Duration::microseconds(0);
  /// After this many consecutive timeouts on the same packet, tell the
  /// RPF the availability claim was wrong (FetchStrategy::on_fetch_failed)
  /// so departed holders and liars decay. 0 = never (fixed-population
  /// behaviour: timeouts keep retrying without touching knowledge).
  int stale_retry_limit = 0;
};

/// A full DAPES node: radio, forwarder and the four-step application
/// loop (discover, fetch metadata, advertise bitmaps, fetch data).
class Peer {
 public:
  /// Wire the node onto @p medium under @p sched; call start() after.
  Peer(sim::Scheduler& sched, sim::Medium& medium,
       sim::MobilityModel* mobility, common::Rng rng, PeerOptions options);

  Peer(const Peer&) = delete;
  Peer& operator=(const Peer&) = delete;

  /// Start the discovery loop. Call once after construction.
  void start();

  /// Crash the node: wipe volatile protocol state (radio queue, pending
  /// sends, neighbor table, in-flight Interests, advertisement rounds) as
  /// a power-cycle would. Durable state survives — downloaded packets,
  /// completions, keys, cumulative stats. The harness retires the node on
  /// the medium and sweeps its timers (Scheduler::cancel_for_node)
  /// around this call; see DESIGN.md "Fault injection & open membership".
  void crash();

  /// Come back after a crash (or latent admission): re-enter the
  /// discovery loop. The harness revives the node on the medium first.
  void restart();

  /// Publish a collection: this peer holds every packet and serves as the
  /// producer (its key already signed the packets).
  void publish(std::shared_ptr<Collection> collection);

  /// Declare interest: the peer will fetch this collection when it
  /// discovers a holder. The shared Collection acts as the content oracle
  /// for serving once packets are obtained (see DESIGN.md on synthetic
  /// payload interning).
  void subscribe(std::shared_ptr<Collection> collection);

  /// Trust the given producer key (models the shared local trust anchors).
  void add_trust_anchor(const crypto::KeyId& producer);
  /// The peer's key store (trust anchors + own key).
  crypto::KeyChain& keychain() { return keychain_; }

  /// The peer identifier carried in control messages.
  const std::string& id() const { return options_.id; }
  /// The node id the radio registered on the medium.
  sim::NodeId node() const { return node_; }
  /// The node's forwarder (owns tables and faces).
  ndn::Forwarder& forwarder() { return *forwarder_; }

  /// True once the collection finished downloading (or was published).
  bool complete(const Name& collection) const;
  /// When the collection completed; nullopt while still downloading.
  std::optional<common::TimePoint> completion_time(const Name& collection) const;
  /// Downloaded fraction of the collection in [0, 1].
  double progress(const Name& collection) const;

  /// Called when a subscribed collection finishes downloading.
  void set_completion_callback(
      std::function<void(const Name&, common::TimePoint)> cb) {
    on_complete_ = std::move(cb);
  }

  /// Application-level counters (inputs to the harness metrics).
  struct PeerStats {
    uint64_t discovery_interests_sent = 0;    ///< §IV-B queries sent
    uint64_t discovery_responses_sent = 0;    ///< §IV-B responses served
    uint64_t bitmap_announcements_sent = 0;   ///< §IV-D announcements
    uint64_t bitmap_collisions_detected = 0;  ///< PEBA collision rounds
    uint64_t data_interests_sent = 0;         ///< data Interests expressed
    uint64_t data_packets_received = 0;       ///< verified packets stored
    uint64_t data_packets_served = 0;         ///< packets served to others
    uint64_t integrity_failures = 0;          ///< digest/Merkle mismatches
    uint64_t metadata_rejected = 0;           ///< signature rejections
    uint64_t interest_timeouts = 0;           ///< expressed Interests timed out
  };
  /// The peer's counters so far.
  const PeerStats& stats() const { return stats_; }

  /// Modeled state footprint (bitmaps, neighbor tables, strategy
  /// knowledge, CS content) for Table-I style reporting.
  size_t state_bytes() const;

  /// Same, but excluding cached content: the bookkeeping DAPES needs to
  /// track "what data is available around me" (bitmaps, RPF state,
  /// neighborhood knowledge). This is the component the paper's Table I
  /// shows growing with multi-hop communication.
  size_t knowledge_bytes() const;

  /// Introspection for tests and diagnostics.
  struct DownloadDebug {
    bool has_metadata = false;      ///< metadata fetched and verified
    bool fetching_enabled = false;  ///< data fetching unlocked
    double progress = 0.0;          ///< downloaded fraction
    size_t in_flight = 0;           ///< outstanding data Interests
    size_t known_bitmaps = 0;       ///< bitmaps informing the strategy
    size_t fresh_neighbors = 0;     ///< neighbors inside the TTL
  };
  /// Snapshot of the download state for @p collection.
  DownloadDebug debug_download(const Name& collection) const;

 private:
  struct NeighborInfo {
    common::TimePoint last_heard{};
    std::set<Name> offered_metadata;
  };

  struct DownloadState {
    std::shared_ptr<Collection> oracle;
    std::optional<Metadata> metadata;
    CollectionLayout layout;
    Bitmap have;
    std::unique_ptr<FetchStrategy> rpf;
    std::set<size_t> in_flight;
    std::map<size_t, int> retry_count;
    bool fetching_enabled = false;
    std::optional<common::TimePoint> completed_at;
    // Metadata retrieval progress.
    Name metadata_name;
    std::map<uint64_t, common::Bytes> metadata_segments;
    size_t metadata_total_segments = 0;
    bool metadata_requested = false;
    // Advertisement state (per current encounter round).
    uint64_t adv_round = 0;
    common::TimePoint last_round_start{-1'000'000'000};
    Bitmap transmitted_union;       // union of bitmaps heard this round
    bool union_valid = false;
    size_t bitmaps_heard_this_round = 0;
    sim::EventId adv_timer{};
    bool adv_pending = false;
    int collision_round = 0;
  };

  // --- wiring ---
  void on_app_interest(const ndn::Interest& interest);
  void on_app_data(const ndn::Data& data);
  void express(ndn::Interest interest);

  // --- discovery (step 1) ---
  void discovery_tick();
  void send_discovery_interest();
  void handle_discovery_interest(const ndn::Interest& interest);
  void handle_discovery_data(const ndn::Data& data);

  // --- metadata (step 2) ---
  void request_metadata(DownloadState& st);
  void request_metadata_segment(DownloadState& st, uint64_t segment);
  void handle_metadata_segment(DownloadState& st, const ndn::Data& data);
  void finish_metadata(DownloadState& st);

  // --- advertisements (step 3) ---
  void begin_advertisement_round(const Name& collection);
  void schedule_bitmap_announcement(const Name& collection, bool initial);
  void send_bitmap_announcement(const Name& collection);
  void handle_bitmap_message(const BitmapMessage& msg);
  double provide_fraction(const DownloadState& st) const;

  // --- data fetching (step 4) ---
  void pump_fetch(const Name& collection);
  void request_packet(DownloadState& st, const Name& collection, size_t index);
  void handle_collection_data(const ndn::Data& data);
  void handle_packet_timeout(const Name& collection, size_t index);
  void maybe_complete(const Name& collection, DownloadState& st);

  // --- serving ---
  void serve_interest(const ndn::Interest& interest);

  // --- overhearing ---
  void on_overheard_interest(const ndn::Interest& interest);
  void on_overheard_data(const ndn::Data& data);

  /// Record hearing from a peer. Returns true when this is a new or
  /// returning (stale beyond the TTL) neighbor — i.e. a fresh encounter.
  bool touch_neighbor(const std::string& peer_id);
  void prune_neighbors();
  DownloadState* state_for(const Name& collection);
  DownloadState* state_for_packet_name(const Name& name,
                                       Name* collection_out);

  sim::Scheduler& sched_;
  sim::Medium& medium_;
  common::Rng rng_;
  PeerOptions options_;
  PebaScheduler peba_;

  sim::NodeId node_ = 0;
  std::unique_ptr<sim::Radio> radio_;
  std::unique_ptr<ndn::Forwarder> forwarder_;
  std::shared_ptr<ndn::WifiFace> wifi_face_;
  std::shared_ptr<ndn::AppFace> app_face_;
  DapesIntermediateStrategy* strategy_ = nullptr;  // owned by forwarder

  crypto::KeyChain keychain_;
  crypto::PrivateKey key_;

  std::map<std::string, NeighborInfo> neighbors_;
  std::map<Name, DownloadState> downloads_;  // keyed by collection name
  common::Duration discovery_period_;
  uint32_t next_nonce_ = 1;
  uint64_t interests_expressed_ = 0;

  std::function<void(const Name&, common::TimePoint)> on_complete_;
  PeerStats stats_;
};

}  // namespace dapes::core
