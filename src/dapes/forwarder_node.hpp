/// @file
/// Nodes that forward but do not run the DAPES application.
///
/// The paper's topology (Fig. 7) includes 10 "pure forwarders" — nodes with
/// only an NFD instance (§V-A) — and 10 intermediate nodes that understand
/// DAPES semantics (§V-B) but download nothing. ForwarderNode wires a
/// radio, a wifi face, and a forwarder with the chosen strategy; it is also
/// the building block for deploying relay infrastructure in applications.
#pragma once

#include <memory>

#include "dapes/strategies.hpp"
#include "ndn/forwarder.hpp"
#include "sim/medium.hpp"
#include "sim/radio.hpp"

namespace dapes::core {

/// Which relay behavior a ForwarderNode runs.
enum class ForwarderKind {
  kPureForwarder,       ///< NDN-only node (probabilistic relay + suppression)
  kDapesIntermediate,   ///< overhears DAPES semantics (knowledge-driven)
};

/// A relay-only node: radio + wifi face + forwarder with the chosen
/// strategy, no DAPES application on top.
class ForwarderNode {
 public:
  /// Construction knobs.
  struct Options {
    ForwarderKind kind = ForwarderKind::kPureForwarder;  ///< strategy choice
    double forward_probability = 0.2;  ///< §V-A probabilistic relay p
    size_t cs_capacity = 4096;         ///< content-store entry cap
    /// Suppression window for randomized relay delays.
    common::Duration tx_window = common::Duration::milliseconds(20);
  };

  /// Wire a radio, face and forwarder onto @p medium under @p sched.
  ForwarderNode(sim::Scheduler& sched, sim::Medium& medium,
                sim::MobilityModel* mobility, common::Rng rng,
                Options options);

  ForwarderNode(const ForwarderNode&) = delete;
  ForwarderNode& operator=(const ForwarderNode&) = delete;

  /// The node id the radio registered on the medium.
  sim::NodeId node() const { return node_; }
  /// The node's forwarder (owns tables and faces).
  ndn::Forwarder& forwarder() { return *forwarder_; }
  /// The relay strategy driving this node.
  PureForwarderStrategy& strategy() { return *strategy_; }

  /// Knowledge footprint (0 for pure forwarders), for Table-I reporting.
  size_t state_bytes() const;

  /// Crash-recovery wipe, parallel to Peer::crash: clear the radio queue
  /// and pending delayed sends so a restarted relay powers on clean. The
  /// harness retires/revives the node on the medium around this.
  void crash_reset() {
    radio_->reset();
    wifi_face_->reset();
  }

 private:
  sim::NodeId node_ = 0;
  std::unique_ptr<sim::Radio> radio_;
  std::unique_ptr<ndn::Forwarder> forwarder_;
  std::shared_ptr<ndn::WifiFace> wifi_face_;
  PureForwarderStrategy* strategy_ = nullptr;       // owned by forwarder
  DapesIntermediateStrategy* intermediate_ = nullptr;  // non-null if kind==kDapesIntermediate
};

}  // namespace dapes::core
