// Nodes that forward but do not run the DAPES application.
//
// The paper's topology (Fig. 7) includes 10 "pure forwarders" — nodes with
// only an NFD instance (§V-A) — and 10 intermediate nodes that understand
// DAPES semantics (§V-B) but download nothing. ForwarderNode wires a
// radio, a wifi face, and a forwarder with the chosen strategy; it is also
// the building block for deploying relay infrastructure in applications.
#pragma once

#include <memory>

#include "dapes/strategies.hpp"
#include "ndn/forwarder.hpp"
#include "sim/medium.hpp"
#include "sim/radio.hpp"

namespace dapes::core {

enum class ForwarderKind {
  kPureForwarder,       // NDN-only node (probabilistic relay + suppression)
  kDapesIntermediate,   // overhears DAPES semantics (knowledge-driven)
};

class ForwarderNode {
 public:
  struct Options {
    ForwarderKind kind = ForwarderKind::kPureForwarder;
    double forward_probability = 0.2;
    size_t cs_capacity = 4096;
    common::Duration tx_window = common::Duration::milliseconds(20);
  };

  ForwarderNode(sim::Scheduler& sched, sim::Medium& medium,
                sim::MobilityModel* mobility, common::Rng rng,
                Options options);

  ForwarderNode(const ForwarderNode&) = delete;
  ForwarderNode& operator=(const ForwarderNode&) = delete;

  sim::NodeId node() const { return node_; }
  ndn::Forwarder& forwarder() { return *forwarder_; }
  PureForwarderStrategy& strategy() { return *strategy_; }

  /// Knowledge footprint (0 for pure forwarders), for Table-I reporting.
  size_t state_bytes() const;

 private:
  sim::NodeId node_ = 0;
  std::unique_ptr<sim::Radio> radio_;
  std::unique_ptr<ndn::Forwarder> forwarder_;
  std::shared_ptr<ndn::WifiFace> wifi_face_;
  PureForwarderStrategy* strategy_ = nullptr;       // owned by forwarder
  DapesIntermediateStrategy* intermediate_ = nullptr;  // non-null if kind==kDapesIntermediate
};

}  // namespace dapes::core
