#include "dapes/forwarder_node.hpp"

namespace dapes::core {

ForwarderNode::ForwarderNode(sim::Scheduler& sched, sim::Medium& medium,
                             sim::MobilityModel* mobility, common::Rng rng,
                             Options options) {
  node_ = medium.add_node(mobility, [this](const sim::FramePtr& frame,
                                           sim::NodeId /*receiver*/) {
    if (wifi_face_) wifi_face_->on_frame(frame);
  });
  radio_ = std::make_unique<sim::Radio>(sched, medium, node_, rng.fork());
  forwarder_ = std::make_unique<ndn::Forwarder>(
      sched, ndn::Forwarder::Options{options.cs_capacity, true});
  forwarder_->set_trace_node(node_);
  wifi_face_ = std::make_shared<ndn::WifiFace>(sched, *radio_, node_,
                                               rng.fork(), options.tx_window);
  forwarder_->add_face(wifi_face_);

  if (options.kind == ForwarderKind::kDapesIntermediate) {
    DapesIntermediateStrategy::IntermediateParams params;
    params.base.forward_probability = options.forward_probability;
    auto strategy = std::make_unique<DapesIntermediateStrategy>(
        sched, rng.fork(), params);
    intermediate_ = strategy.get();
    strategy_ = strategy.get();
    forwarder_->set_strategy(std::move(strategy));
  } else {
    PureForwarderStrategy::Params params;
    params.forward_probability = options.forward_probability;
    auto strategy =
        std::make_unique<PureForwarderStrategy>(sched, rng.fork(), params);
    strategy_ = strategy.get();
    forwarder_->set_strategy(std::move(strategy));
  }
}

size_t ForwarderNode::state_bytes() const {
  size_t bytes = forwarder_->cs().content_bytes();
  if (intermediate_ != nullptr) bytes += intermediate_->knowledge_bytes();
  return bytes;
}

}  // namespace dapes::core
