/// @file
/// Multi-hop forwarding strategies (paper §V).
///
/// DAPES achieves multi-hop communication without MANET routing by letting
/// intermediate nodes decide, hop by hop, whether a received Interest is
/// likely to bring data back:
///
///   * PureForwarderStrategy (§V-A) — nodes with only an NFD instance.
///     They cache overheard Data, forward Interests probabilistically after
///     a random delay, and run a per-name suppression timer when a
///     forwarded Interest brought nothing back.
///
///   * DapesIntermediateStrategy (§V-B) — nodes that understand DAPES
///     semantics. They overhear bitmap announcements and data transmissions
///     to build short-lived knowledge of what is available around them,
///     then forward Interests that knowledge says are satisfiable,
///     suppress Interests known to be unsatisfiable, and fall back to the
///     pure-forwarder probabilistic scheme when they know nothing.
#pragma once

#include <map>
#include <string>
#include <unordered_map>

#include "common/rng.hpp"
#include "dapes/messages.hpp"
#include "dapes/namespace.hpp"
#include "ndn/forwarder.hpp"

namespace dapes::core {

using common::Duration;
using common::TimePoint;
using ndn::Face;
using ndn::FaceId;
using ndn::Forwarder;
using ndn::Interest;
using ndn::PitEntry;

/// §V-A relay strategy for nodes with only an NFD instance: cache
/// overheard Data, forward probabilistically, suppress fruitless names.
class PureForwarderStrategy : public ndn::ForwardingStrategy {
 public:
  /// Tuning knobs.
  struct Params {
    /// Probability of relaying an Interest heard on the air (paper
    /// default 20%; Fig. 9g/h sweep 20-60%).
    double forward_probability = 0.2;
    /// Random wait before relaying, to dodge collisions and give closer
    /// holders the chance to answer first.
    Duration forward_delay_window = Duration::milliseconds(50);
    /// How long a name stays suppressed after a fruitless forward.
    Duration suppression = Duration::seconds(2.0);
    /// Overheard Data is cached in the CS (that is the point of a pure
    /// forwarder); disable only for ablation.
    bool cache_overheard = true;
    /// Soft-state bound: when a per-name table (suppression timers, relay
    /// bookkeeping) outgrows this, entries whose time is up are swept.
    /// Sweeps are throttled to one full scan per expiry interval, so the
    /// amortized cost per insert is O(1). Below the cap nothing is ever
    /// dropped; past it, only expired suppression timers (unobservable)
    /// and relay entries past the horizon (see relay() on the one stale
    /// corner this retires) go.
    size_t name_state_cap = 4096;
    /// Relay bookkeeping older than this is garbage — the PIT entry was
    /// satisfied (so no timeout will ever consult it) or timed out long
    /// ago. The sweep additionally keeps anything younger than twice the
    /// largest Interest lifetime it has relayed, so a scenario with
    /// longer-lived Interests cannot lose a pending suppression timer.
    Duration relay_horizon = Duration::seconds(60.0);
  };

  /// Strategy with explicit parameters.
  PureForwarderStrategy(sim::Scheduler& sched, common::Rng rng, Params params);
  /// Strategy with the paper-default parameters.
  PureForwarderStrategy(sim::Scheduler& sched, common::Rng rng)
      : PureForwarderStrategy(sched, rng, Params{}) {}

  /// Probabilistic relay + suppression for network Interests.
  void after_receive_interest(Forwarder& fw, FaceId in_face,
                              const Interest& interest,
                              PitEntry& entry) override;
  /// Start the per-name suppression timer after a fruitless relay.
  void on_interest_timeout(Forwarder& fw, const Name& name) override;
  /// Cache overheard Data (the point of a pure forwarder).
  bool cache_unsolicited(Forwarder& fw, FaceId in_face,
                         const ndn::Data& data) override;

  /// Interests relayed so far.
  uint64_t forwards() const { return forwards_; }
  /// Interests suppressed (timer or probability draw).
  uint64_t suppressions() const { return suppressions_; }
  /// Relayed Interests whose PIT entry expired with no data — the
  /// complement of the paper's "83% of forwarded Interests successfully
  /// brought data back" accuracy metric.
  uint64_t relay_timeouts() const { return relay_timeouts_; }

  /// Soft-state sizes, bounded by the expiry sweeps (tests + Table-I).
  size_t suppressed_names() const { return suppressed_until_.size(); }
  size_t relayed_names() const { return relayed_.size(); }

 protected:
  /// Relay decision for a network Interest with no better knowledge:
  /// probabilistic + suppression timer. Shared with the intermediate
  /// strategy's fallback path.
  void maybe_relay(Forwarder& fw, const Interest& interest,
                   double probability);

  /// Relay unconditionally after a random delay (knowledge-driven path).
  void relay(Forwarder& fw, const Interest& interest);

  /// Hand a network Interest to local app faces registered in the FIB.
  void deliver_local(Forwarder& fw, FaceId in_face, const Interest& interest);

  /// True while @p name's suppression timer is running.
  bool is_suppressed(const Name& name) const;

  sim::Scheduler& sched_;
  common::Rng rng_;
  Params params_;
  uint64_t forwards_ = 0;
  uint64_t suppressions_ = 0;
  uint64_t relay_timeouts_ = 0;

 private:
  static FaceId wifi_face_of(Forwarder& fw);

  /// Names we relayed and are waiting on (-> suppression on timeout),
  /// stamped with the relay time: satisfied relays never time out, so
  /// they are swept once they are older than any possible PIT lifetime.
  /// Keyed on the Name's cached hash; nothing order-dependent reads
  /// either table, so hashed containers change no observable behaviour.
  std::unordered_map<Name, TimePoint> relayed_;
  std::unordered_map<Name, TimePoint> suppressed_until_;
  /// Sweep throttles + the largest lifetime ever relayed (bounds how
  /// long a relayed_ entry may still matter).
  TimePoint last_relayed_sweep_{};
  TimePoint last_suppressed_sweep_{};
  Duration max_relayed_lifetime_{};
};

/// Short-lived knowledge an intermediate DAPES node keeps per collection.
struct CollectionKnowledge {
  CollectionLayout layout;  ///< bit layout from overheard announcements
  /// Freshest bitmap per overheard peer.
  std::map<std::string, std::pair<Bitmap, TimePoint>> peer_bitmaps;
  TimePoint last_heard{};   ///< last time anything about it was heard
};

/// §V-B relay strategy for nodes that understand DAPES semantics:
/// overheard bitmaps/data drive forward-vs-suppress decisions, falling
/// back to the pure-forwarder scheme when nothing is known.
class DapesIntermediateStrategy : public PureForwarderStrategy {
 public:
  /// Tuning knobs on top of the pure-forwarder Params.
  struct IntermediateParams {
    Params base{};  ///< fallback pure-forwarder behaviour
    /// How long overheard knowledge stays fresh.
    Duration knowledge_ttl = Duration::seconds(15.0);
    /// Forward probability for control Interests (discovery/bitmap) when
    /// peers interested in that collection are known nearby.
    double control_forward_probability = 0.4;
    /// Cap on remembered recently-heard data names.
    size_t recent_data_cap = 2048;
  };

  /// Strategy with explicit parameters.
  DapesIntermediateStrategy(sim::Scheduler& sched, common::Rng rng,
                            IntermediateParams params);
  /// Strategy with the paper-default parameters.
  DapesIntermediateStrategy(sim::Scheduler& sched, common::Rng rng)
      : DapesIntermediateStrategy(sched, rng, IntermediateParams{}) {}

  /// Knowledge-driven forward/suppress, pure-forwarder fallback.
  void after_receive_interest(Forwarder& fw, FaceId in_face,
                              const Interest& interest,
                              PitEntry& entry) override;
  /// Learn collection activity from overheard control Interests.
  void on_overhear_interest(Forwarder& fw, FaceId in_face,
                            const Interest& interest) override;
  /// Learn bitmaps and data availability from overheard Data.
  void on_overhear_data(Forwarder& fw, FaceId in_face,
                        const ndn::Data& data) override;

  /// Availability of a packet name according to overheard knowledge.
  enum class Availability {
    kAvailable,     ///< a known holder has it (or it was heard recently)
    kKnownMissing,  ///< fresh knowledge covers it and nobody has it
    kUnknown        ///< no fresh knowledge about the collection
  };
  /// Classify @p packet_name against the overheard knowledge.
  Availability packet_availability(const Name& packet_name,
                                   TimePoint now) const;

  /// True if fresh knowledge shows peers interested in @p collection.
  bool collection_active(const Name& collection, TimePoint now) const;

  /// Approximate knowledge footprint in bytes (Table-I reporting).
  size_t knowledge_bytes() const;

  /// Interests forwarded because knowledge said satisfiable.
  uint64_t knowledge_forwards() const { return knowledge_forwards_; }
  /// Interests suppressed because knowledge said unsatisfiable.
  uint64_t knowledge_suppressions() const { return knowledge_suppressions_; }

  /// Soft-state size, bounded by the TTL sweep (tests + Table-I).
  size_t recent_data_names() const { return recent_data_.size(); }

 private:
  void learn_bitmap(const BitmapMessage& msg, TimePoint now);

  IntermediateParams iparams_;
  /// Ordered: packet_availability and the control-relay path scan this
  /// map and act on the first prefix match, so iteration order is
  /// observable behaviour.
  std::map<Name, CollectionKnowledge> knowledge_;
  std::unordered_map<Name, TimePoint> recent_data_;
  TimePoint last_recent_sweep_{};
  uint64_t knowledge_forwards_ = 0;
  uint64_t knowledge_suppressions_ = 0;
};

}  // namespace dapes::core
