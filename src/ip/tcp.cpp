#include "ip/tcp.hpp"

namespace dapes::ip {

namespace {

// Segment wire format: [type(1)][seq(4)][flags(1)][len(4)][payload]
// type: 1 = data, 2 = ack (seq = cumulative ack, no payload)
constexpr uint8_t kTypeData = 1;
constexpr uint8_t kTypeAck = 2;
constexpr uint8_t kFlagLast = 0x01;

common::Bytes encode_segment(uint8_t type, uint32_t seq, uint8_t flags,
                             common::BytesView payload) {
  common::Bytes out;
  out.push_back(type);
  common::append_be(out, seq, 4);
  out.push_back(flags);
  common::append_be(out, payload.size(), 4);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

}  // namespace

TcpLite::TcpLite(Node& node) : TcpLite(node, Params{}) {}

TcpLite::TcpLite(Node& node, Params params) : node_(node), params_(params) {
  node_.register_handler(Proto::kTcp,
                         [this](const Packet& p) { on_packet(p); });
}

void TcpLite::send(Address peer, common::Bytes message) {
  Connection& conn = connections_[peer];
  size_t offset = 0;
  do {
    size_t len = std::min(params_.mss, message.size() - offset);
    Segment seg;
    seg.seq = conn.next_seq++;
    seg.payload.assign(message.begin() + offset, message.begin() + offset + len);
    offset += len;
    seg.last_of_message = offset >= message.size();
    seg.rto = params_.rto_initial;
    conn.send_queue.push_back(std::move(seg));
  } while (offset < message.size());
  pump(peer);
}

void TcpLite::pump(Address peer) {
  Connection& conn = connections_[peer];
  size_t in_flight = 0;
  for (auto& seg : conn.send_queue) {
    if (seg.in_flight) ++in_flight;
  }
  for (auto& seg : conn.send_queue) {
    if (in_flight >= params_.window) break;
    if (seg.in_flight) continue;
    transmit(peer, seg);
    ++in_flight;
  }
}

void TcpLite::transmit(Address peer, Segment& segment) {
  segment.in_flight = true;
  Packet packet;
  packet.src = node_.address();
  packet.dst = peer;
  packet.proto = Proto::kTcp;
  packet.payload = encode_segment(
      kTypeData, segment.seq, segment.last_of_message ? kFlagLast : 0,
      common::BytesView(segment.payload.data(), segment.payload.size()));
  ++segments_sent_;
  if (segment.retries > 0) ++retransmissions_;
  node_.send_routed(std::move(packet));
  schedule_rto(peer, segment.seq, segment.rto);
}

void TcpLite::schedule_rto(Address peer, uint32_t seq, Duration rto) {
  node_.scheduler().schedule(rto, [this, peer, seq] {
    auto cit = connections_.find(peer);
    if (cit == connections_.end()) return;
    Connection& conn = cit->second;
    for (auto& seg : conn.send_queue) {
      if (seg.seq != seq) continue;
      // Still queued => unacked: back off and retransmit.
      if (++seg.retries > params_.max_retries) {
        fail_connection(peer);
        return;
      }
      seg.rto = Duration{std::min(seg.rto.us * 2, params_.rto_max.us)};
      seg.in_flight = false;
      pump(peer);
      return;
    }
  });
}

void TcpLite::send_ack(Address peer, uint32_t ack_seq) {
  Packet packet;
  packet.src = node_.address();
  packet.dst = peer;
  packet.proto = Proto::kTcp;
  packet.payload = encode_segment(kTypeAck, ack_seq, 0, {});
  ++acks_sent_;
  node_.send_routed(std::move(packet));
}

void TcpLite::fail_connection(Address peer) {
  ++failures_;
  connections_.erase(peer);
  if (on_failure_) on_failure_(peer);
}

void TcpLite::on_packet(const Packet& packet) {
  common::BytesView payload(packet.payload.data(), packet.payload.size());
  if (payload.size() < 10) return;
  uint8_t type = payload[0];
  uint32_t seq = static_cast<uint32_t>(common::read_be(payload, 1, 4));
  uint8_t flags = payload[5];
  size_t len = common::read_be(payload, 6, 4);
  if (payload.size() != 10 + len) return;
  Address peer = packet.src;
  Connection& conn = connections_[peer];

  if (type == kTypeAck) {
    // Cumulative: drop every queued segment with seq < ack.
    while (!conn.send_queue.empty() && conn.send_queue.front().seq < seq) {
      conn.send_queue.pop_front();
    }
    pump(peer);
    return;
  }

  // Data segment.
  bool last = (flags & kFlagLast) != 0;
  if (seq == conn.expected_seq) {
    conn.reassembly.insert(conn.reassembly.end(), payload.begin() + 10,
                           payload.end());
    conn.expected_seq += 1;
    if (last && on_receive_) {
      common::Bytes message = std::move(conn.reassembly);
      conn.reassembly.clear();
      on_receive_(peer, message);
    } else if (last) {
      conn.reassembly.clear();
    }
    // Drain any buffered in-order continuation.
    auto it = conn.out_of_order.find(conn.expected_seq);
    while (it != conn.out_of_order.end()) {
      conn.reassembly.insert(conn.reassembly.end(), it->second.first.begin(),
                             it->second.first.end());
      bool seg_last = it->second.second;
      conn.out_of_order.erase(it);
      conn.expected_seq += 1;
      if (seg_last) {
        common::Bytes message = std::move(conn.reassembly);
        conn.reassembly.clear();
        if (on_receive_) on_receive_(peer, message);
      }
      it = conn.out_of_order.find(conn.expected_seq);
    }
  } else if (seq > conn.expected_seq &&
             conn.out_of_order.size() < 4 * params_.window) {
    conn.out_of_order[seq] = {common::Bytes(payload.begin() + 10, payload.end()),
                              last};
  }
  send_ack(peer, conn.expected_seq);
}

}  // namespace dapes::ip
