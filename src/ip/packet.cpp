#include "ip/packet.hpp"

namespace dapes::ip {

common::Bytes Packet::encode() const {
  common::Bytes out;
  out.push_back(kMagic);
  out.push_back(static_cast<uint8_t>(proto));
  out.push_back(ttl);
  out.push_back(route_pos);
  common::append_be(out, src, 4);
  common::append_be(out, dst, 4);
  common::append_be(out, next_hop, 4);
  common::append_be(out, route.size(), 2);
  for (Address hop : route) {
    common::append_be(out, hop, 4);
  }
  common::append_be(out, payload.size(), 4);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<Packet> Packet::decode(common::BytesView wire) {
  if (wire.size() < 22 || wire[0] != kMagic) return std::nullopt;
  Packet p;
  p.proto = static_cast<Proto>(wire[1]);
  p.ttl = wire[2];
  p.route_pos = wire[3];
  p.src = static_cast<Address>(common::read_be(wire, 4, 4));
  p.dst = static_cast<Address>(common::read_be(wire, 8, 4));
  p.next_hop = static_cast<Address>(common::read_be(wire, 12, 4));
  size_t route_len = common::read_be(wire, 16, 2);
  size_t offset = 18;
  if (wire.size() < offset + route_len * 4 + 4) return std::nullopt;
  p.route.reserve(route_len);
  for (size_t i = 0; i < route_len; ++i) {
    p.route.push_back(static_cast<Address>(common::read_be(wire, offset, 4)));
    offset += 4;
  }
  size_t payload_len = common::read_be(wire, offset, 4);
  offset += 4;
  if (wire.size() != offset + payload_len) return std::nullopt;
  p.payload.assign(wire.begin() + offset, wire.end());
  return p;
}

}  // namespace dapes::ip
