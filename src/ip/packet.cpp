#include "ip/packet.hpp"

#include "ndn/tlv.hpp"

namespace dapes::ip {

// IP-lite is a fixed-layout header, not TLV, but it is built through the
// same tlv::Writer primitives as every other wire format in the repo.
common::Bytes Packet::encode() const {
  ndn::tlv::Writer w(22 + route.size() * 4 + payload.size());
  w.byte(kMagic);
  w.byte(static_cast<uint8_t>(proto));
  w.byte(ttl);
  w.byte(route_pos);
  w.be(src, 4);
  w.be(dst, 4);
  w.be(next_hop, 4);
  w.be(route.size(), 2);
  for (Address hop : route) {
    w.be(hop, 4);
  }
  w.be(payload.size(), 4);
  w.raw(common::BytesView(payload.data(), payload.size()));
  return w.take();
}

std::optional<Packet> Packet::decode(common::BytesView wire) {
  if (wire.size() < 22 || wire[0] != kMagic) return std::nullopt;
  Packet p;
  p.proto = static_cast<Proto>(wire[1]);
  p.ttl = wire[2];
  p.route_pos = wire[3];
  p.src = static_cast<Address>(common::read_be(wire, 4, 4));
  p.dst = static_cast<Address>(common::read_be(wire, 8, 4));
  p.next_hop = static_cast<Address>(common::read_be(wire, 12, 4));
  size_t route_len = common::read_be(wire, 16, 2);
  size_t offset = 18;
  if (wire.size() < offset + route_len * 4 + 4) return std::nullopt;
  p.route.reserve(route_len);
  for (size_t i = 0; i < route_len; ++i) {
    p.route.push_back(static_cast<Address>(common::read_be(wire, offset, 4)));
    offset += 4;
  }
  size_t payload_len = common::read_be(wire, offset, 4);
  offset += 4;
  if (wire.size() != offset + payload_len) return std::nullopt;
  p.payload.assign(wire.begin() + offset, wire.end());
  return p;
}

}  // namespace dapes::ip
