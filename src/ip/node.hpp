// IP-lite node: the network stack the baselines run on.
//
// Owns the radio, assigns the node an Address (sim NodeId + 1, standing
// in for MANET address auto-configuration, which the paper notes is its
// own hard problem in off-the-grid IP networks), demultiplexes received
// packets by protocol, and delegates forwarding decisions to the attached
// RoutingProtocol (DSDV or DSR).
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "common/rng.hpp"
#include "ip/packet.hpp"
#include "sim/medium.hpp"
#include "sim/radio.hpp"
#include "sim/scheduler.hpp"

namespace dapes::ip {

class Node;

/// Routing decides how a packet reaches a non-neighbor destination.
class RoutingProtocol {
 public:
  virtual ~RoutingProtocol() = default;

  /// Attach to a node (called once by Node::set_routing).
  virtual void attach(Node& node) = 0;

  /// Route-and-send a locally originated packet. Returns false if no
  /// route exists (yet) — reactive protocols buffer and discover.
  virtual bool send(Packet packet) = 0;

  /// A packet addressed to someone else arrived here; forward or drop.
  virtual void forward(Packet packet) = 0;

  /// Protocol control traffic for this routing protocol.
  virtual void on_control(const Packet& packet) = 0;

  /// A packet addressed to this node arrived (after demux). Lets source
  /// routing protocols harvest the route it carried.
  virtual void on_deliver(const Packet& /*packet*/) {}

  /// Control transmissions originated by this node (overhead accounting).
  virtual uint64_t control_messages() const = 0;

  /// True if a (possibly stale) route to dst is known right now.
  virtual bool has_route(Address dst) const = 0;
};

class Node {
 public:
  using Handler = std::function<void(const Packet&)>;

  Node(sim::Scheduler& sched, sim::Medium& medium,
       sim::MobilityModel* mobility, common::Rng rng);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  Address address() const { return address_; }
  sim::NodeId node_id() const { return node_; }
  sim::Scheduler& scheduler() { return sched_; }
  sim::Medium& medium() { return medium_; }
  common::Rng& rng() { return rng_; }

  void set_routing(std::unique_ptr<RoutingProtocol> routing);
  RoutingProtocol* routing() { return routing_.get(); }

  /// Register the upper-layer handler for a protocol number.
  void register_handler(Proto proto, Handler handler);

  /// Transmit to a link-layer neighbor (or broadcast). No routing.
  void send_link(Packet packet, const std::string& kind);

  /// Send via the routing protocol (buffering/discovery inside).
  bool send_routed(Packet packet);

  /// Neighbor check used by routing to emulate link-layer loss detection.
  bool neighbor_reachable(Address neighbor) const;

  uint64_t frames_sent() const { return frames_sent_; }

 private:
  void on_frame(const sim::FramePtr& frame);

  sim::Scheduler& sched_;
  sim::Medium& medium_;
  common::Rng rng_;
  sim::NodeId node_ = 0;
  Address address_ = kInvalid;
  std::unique_ptr<sim::Radio> radio_;
  std::unique_ptr<RoutingProtocol> routing_;
  std::map<Proto, Handler> handlers_;
  uint64_t frames_sent_ = 0;
};

/// Address <-> sim NodeId mapping.
inline Address address_of(sim::NodeId node) { return node + 1; }
inline sim::NodeId node_of(Address address) { return address - 1; }

}  // namespace dapes::ip
