#include "ip/udp.hpp"

namespace dapes::ip {

UdpLite::UdpLite(Node& node) : node_(node) {
  node_.register_handler(Proto::kUdp,
                         [this](const Packet& p) { on_packet(p); });
}

void UdpLite::send(Address peer, uint16_t src_port, uint16_t dst_port,
                   common::Bytes datagram) {
  Packet packet;
  packet.src = node_.address();
  packet.dst = peer;
  packet.proto = Proto::kUdp;
  common::Bytes payload;
  common::append_be(payload, src_port, 2);
  common::append_be(payload, dst_port, 2);
  payload.insert(payload.end(), datagram.begin(), datagram.end());
  packet.payload = std::move(payload);
  ++datagrams_sent_;
  node_.send_routed(std::move(packet));
}

void UdpLite::on_packet(const Packet& packet) {
  common::BytesView payload(packet.payload.data(), packet.payload.size());
  if (payload.size() < 4) return;
  uint16_t src_port = static_cast<uint16_t>(common::read_be(payload, 0, 2));
  uint16_t dst_port = static_cast<uint16_t>(common::read_be(payload, 2, 2));
  auto it = bindings_.find(dst_port);
  if (it == bindings_.end()) return;
  common::Bytes datagram(payload.begin() + 4, payload.end());
  it->second(packet.src, src_port, datagram);
}

void UdpLite::bind(uint16_t port, ReceiveCallback cb) {
  bindings_[port] = std::move(cb);
}

}  // namespace dapes::ip
