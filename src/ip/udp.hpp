// UDP-lite: unreliable datagrams with 16-bit ports, over the routed
// MANET. Ekta's transport (paper §VI-B: "Ekta uses UDP over IP").
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "ip/node.hpp"

namespace dapes::ip {

class UdpLite {
 public:
  using ReceiveCallback = std::function<void(Address peer, uint16_t src_port,
                                             const common::Bytes& datagram)>;

  explicit UdpLite(Node& node);

  /// Fire-and-forget datagram; delivery depends on routing and luck.
  void send(Address peer, uint16_t src_port, uint16_t dst_port,
            common::Bytes datagram);

  void bind(uint16_t port, ReceiveCallback cb);

  uint64_t datagrams_sent() const { return datagrams_sent_; }

 private:
  void on_packet(const Packet& packet);

  Node& node_;
  std::map<uint16_t, ReceiveCallback> bindings_;
  uint64_t datagrams_sent_ = 0;
};

}  // namespace dapes::ip
