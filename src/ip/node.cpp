#include "ip/node.hpp"

#include "common/logging.hpp"

namespace dapes::ip {

Node::Node(sim::Scheduler& sched, sim::Medium& medium,
           sim::MobilityModel* mobility, common::Rng rng)
    : sched_(sched), medium_(medium), rng_(rng) {
  node_ = medium_.add_node(
      mobility,
      [this](const sim::FramePtr& frame, sim::NodeId) { on_frame(frame); });
  address_ = address_of(node_);
  radio_ = std::make_unique<sim::Radio>(sched_, medium_, node_, rng_.fork());
}

void Node::set_routing(std::unique_ptr<RoutingProtocol> routing) {
  routing_ = std::move(routing);
  routing_->attach(*this);
}

void Node::register_handler(Proto proto, Handler handler) {
  handlers_[proto] = std::move(handler);
}

void Node::send_link(Packet packet, const std::string& kind) {
  packet.src = packet.src == kInvalid ? address_ : packet.src;
  auto frame = std::make_shared<sim::Frame>();
  frame->sender = node_;
  frame->payload = packet.encode();
  frame->kind = kind;
  ++frames_sent_;
  radio_->send(std::move(frame));
}

bool Node::send_routed(Packet packet) {
  packet.src = packet.src == kInvalid ? address_ : packet.src;
  if (!routing_) return false;
  return routing_->send(std::move(packet));
}

bool Node::neighbor_reachable(Address neighbor) const {
  if (neighbor == kBroadcast) return true;
  return medium_.in_range(node_, node_of(neighbor));
}

void Node::on_frame(const sim::FramePtr& frame) {
  if (frame->payload.empty() || frame->payload[0] != kMagic) return;
  auto packet = Packet::decode(
      common::BytesView(frame->payload.data(), frame->payload.size()));
  if (!packet) return;

  // Link-layer filter: unicast frames are only accepted by the next hop
  // (everyone else heard the energy — it already counted as overhead).
  if (packet->next_hop != kBroadcast && packet->next_hop != address_) {
    return;
  }

  // Routing control is handled by the routing protocol regardless of dst.
  if (packet->proto == Proto::kDsdv || packet->proto == Proto::kDsr) {
    if (routing_) routing_->on_control(*packet);
    return;
  }

  if (packet->dst == address_ || packet->dst == kBroadcast) {
    if (routing_ && packet->dst == address_) routing_->on_deliver(*packet);
    auto it = handlers_.find(packet->proto);
    if (it != handlers_.end()) it->second(*packet);
    // Broadcast app floods (HELLO) may also need relaying by the app; the
    // handler decides.
    return;
  }

  // In transit: hand to routing.
  if (routing_) routing_->forward(std::move(*packet));
}

}  // namespace dapes::ip
