// IPv4-lite packets for the MANET baselines (Bithoc, Ekta).
//
// The baselines bypass NDN entirely: they address nodes, not data. A
// packet carries global src/dst addresses, the link-layer next hop (the
// broadcast medium models unicast as a frame every neighbour hears but
// only the next hop accepts), a TTL, an optional DSR source route, and an
// opaque payload demultiplexed by protocol number.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"

namespace dapes::ip {

using Address = uint32_t;

inline constexpr Address kBroadcast = 0xffffffff;
inline constexpr Address kInvalid = 0;

enum class Proto : uint8_t {
  kUdp = 1,
  kTcp = 2,
  kDsdv = 3,
  kDsr = 4,
  kHello = 5,  // Bithoc application-layer scoped flooding
  kDht = 6,    // Ekta DHT control
};

struct Packet {
  Address src = kInvalid;
  Address dst = kInvalid;
  Address next_hop = kBroadcast;
  Proto proto = Proto::kUdp;
  uint8_t ttl = 16;
  /// DSR source route (node addresses, including src and dst); empty for
  /// table-driven (DSDV) or broadcast packets.
  std::vector<Address> route;
  /// Position of the *current* holder within route.
  uint8_t route_pos = 0;
  common::Bytes payload;

  common::Bytes encode() const;
  static std::optional<Packet> decode(common::BytesView wire);

  bool operator==(const Packet&) const = default;
};

/// First wire byte of every IP-lite packet (mirrors IPv4 version+IHL so
/// NDN faces can cheaply skip foreign frames and vice versa).
inline constexpr uint8_t kMagic = 0x45;

}  // namespace dapes::ip
