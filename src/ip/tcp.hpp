// TCP-lite: reliable, ordered message delivery over the routed MANET.
//
// Bithoc transfers pieces over TCP (paper §VI-B). What matters for the
// evaluation is TCP's behaviour over lossy multi-hop wireless paths —
// retransmissions on loss, exponential RTO backoff, and connection
// failure when routes break (Holland & Vaidya 1999, cited by the paper).
// This implementation provides message-oriented reliable delivery with a
// small sliding window per connection; segments and ACKs all traverse the
// routing protocol and count as transmissions.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "ip/node.hpp"

namespace dapes::ip {

using common::Duration;

class TcpLite {
 public:
  struct Params {
    size_t window = 4;               // outstanding segments
    size_t mss = 1200;               // max payload bytes per segment
    Duration rto_initial = Duration::milliseconds(600);
    Duration rto_max = Duration::seconds(8.0);
    int max_retries = 6;
  };

  /// A delivered application message (reassembled, ordered).
  using ReceiveCallback =
      std::function<void(Address peer, const common::Bytes& message)>;
  /// Connection-level failure (retries exhausted / route gone).
  using FailureCallback = std::function<void(Address peer)>;

  explicit TcpLite(Node& node);
  TcpLite(Node& node, Params params);

  /// Queue an application message to @p peer; segments flow under the
  /// window with retransmission. Connections are implicit (created on
  /// first use, reset on failure).
  void send(Address peer, common::Bytes message);

  void set_receive_callback(ReceiveCallback cb) { on_receive_ = std::move(cb); }
  void set_failure_callback(FailureCallback cb) { on_failure_ = std::move(cb); }

  /// Total segment transmissions (including retransmissions) and ACKs.
  uint64_t segments_sent() const { return segments_sent_; }
  uint64_t retransmissions() const { return retransmissions_; }
  uint64_t acks_sent() const { return acks_sent_; }
  uint64_t failures() const { return failures_; }

 private:
  struct Segment {
    uint32_t seq = 0;
    common::Bytes payload;
    bool last_of_message = false;
    int retries = 0;
    Duration rto{};
    bool in_flight = false;
  };

  struct Connection {
    // Sender side.
    std::deque<Segment> send_queue;  // front = lowest unacked seq
    uint32_t next_seq = 0;
    // Receiver side.
    uint32_t expected_seq = 0;
    common::Bytes reassembly;
    std::map<uint32_t, std::pair<common::Bytes, bool>> out_of_order;
  };

  void on_packet(const Packet& packet);
  void pump(Address peer);
  void transmit(Address peer, Segment& segment);
  void schedule_rto(Address peer, uint32_t seq, Duration rto);
  void send_ack(Address peer, uint32_t ack_seq);
  void fail_connection(Address peer);

  Node& node_;
  Params params_;
  std::map<Address, Connection> connections_;
  ReceiveCallback on_receive_;
  FailureCallback on_failure_;
  uint64_t segments_sent_ = 0;
  uint64_t retransmissions_ = 0;
  uint64_t acks_sent_ = 0;
  uint64_t failures_ = 0;
};

}  // namespace dapes::ip
