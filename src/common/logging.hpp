// Tiny leveled logger.
//
// Simulation runs produce a lot of events; logging defaults to `kWarn` so
// benches stay quiet, while tests and examples can dial verbosity up to
// trace protocol exchanges. The level is atomic and each line is a single
// fprintf, so concurrent trials (TrialRunner) may interleave lines but
// never corrupt them; set the level before starting parallel runs.
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace dapes::common {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide minimum level.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Parse a level name ("trace", "debug", "info", "warn", "error", "off";
/// case-insensitive). nullopt on anything else.
std::optional<LogLevel> parse_log_level(std::string_view name);

/// Canonical upper-case name of a level ("TRACE" .. "OFF").
const char* log_level_name(LogLevel level);

/// Apply the DAPES_LOG_LEVEL environment variable if it is set to a valid
/// level name; returns false (and leaves the level alone) otherwise.
/// Benches call this before parsing flags, so an explicit --log-level
/// still wins.
bool apply_log_level_from_env();

/// Emit one line (used by the LOG macro; callers normally use the macro).
void log_line(LogLevel level, const std::string& component,
              const std::string& message);

namespace detail {

class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogStream() { log_line(level_, component_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace dapes::common

#define DAPES_LOG(level, component)                                   \
  if (static_cast<int>(level) < static_cast<int>(::dapes::common::log_level())) \
    ;                                                                 \
  else                                                                \
    ::dapes::common::detail::LogStream(level, component)

#define DAPES_LOG_TRACE(c) DAPES_LOG(::dapes::common::LogLevel::kTrace, c)
#define DAPES_LOG_DEBUG(c) DAPES_LOG(::dapes::common::LogLevel::kDebug, c)
#define DAPES_LOG_INFO(c) DAPES_LOG(::dapes::common::LogLevel::kInfo, c)
#define DAPES_LOG_WARN(c) DAPES_LOG(::dapes::common::LogLevel::kWarn, c)
#define DAPES_LOG_ERROR(c) DAPES_LOG(::dapes::common::LogLevel::kError, c)
