#include "common/time.hpp"

#include <cstdio>

namespace dapes::common {

std::string format_time(TimePoint t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6fs", t.to_seconds());
  return buf;
}

}  // namespace dapes::common
