// Simulation time.
//
// All simulated time is kept as an integer count of microseconds so that
// event ordering is exact and runs are bit-reproducible; doubles only
// appear at the presentation boundary.
#pragma once

#include <cstdint>
#include <string>

namespace dapes::common {

/// Relative duration, microsecond resolution.
struct Duration {
  int64_t us = 0;

  static constexpr Duration microseconds(int64_t v) { return Duration{v}; }
  static constexpr Duration milliseconds(int64_t v) { return Duration{v * 1000}; }
  static constexpr Duration seconds(double v) {
    return Duration{static_cast<int64_t>(v * 1e6)};
  }

  constexpr double to_seconds() const { return static_cast<double>(us) / 1e6; }
  constexpr double to_milliseconds() const { return static_cast<double>(us) / 1e3; }

  constexpr bool operator==(const Duration&) const = default;
  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration{us + o.us}; }
  constexpr Duration operator-(Duration o) const { return Duration{us - o.us}; }
  constexpr Duration operator*(int64_t k) const { return Duration{us * k}; }
  constexpr Duration operator/(int64_t k) const { return Duration{us / k}; }
};

/// Absolute simulation time (microseconds since run start).
struct TimePoint {
  int64_t us = 0;

  static constexpr TimePoint zero() { return TimePoint{0}; }

  constexpr double to_seconds() const { return static_cast<double>(us) / 1e6; }

  constexpr bool operator==(const TimePoint&) const = default;
  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const { return TimePoint{us + d.us}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{us - d.us}; }
  constexpr Duration operator-(TimePoint o) const { return Duration{us - o.us}; }
};

/// "12.345s" style rendering for logs.
std::string format_time(TimePoint t);

}  // namespace dapes::common
