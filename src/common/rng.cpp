#include "common/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace dapes::common {

namespace {

uint64_t splitmix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t derive_seed(uint64_t base_seed, uint64_t index) {
  uint64_t x = base_seed + (index + 1) * 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = splitmix64(sm);
  }
}

uint64_t Rng::next() {
  if (guard_ != nullptr && guard_->load(std::memory_order_relaxed)) {
    throw std::logic_error("Rng: shared-stream draw during a parallel phase");
  }
  uint64_t result = rotl(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

uint64_t Rng::next_below(uint64_t bound) {
  // Lemire-style rejection to avoid modulo bias.
  uint64_t threshold = (-bound) % bound;
  for (;;) {
    uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::uniform_int(int64_t lo, int64_t hi) {
  if (lo >= hi) return lo;
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(next_below(span));
}

double Rng::uniform01() {
  // 53 random mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  double u = uniform01();
  // Guard the log against u == 0.
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::gaussian() {
  double u1 = uniform01();
  // Guard the log against u1 == 0.
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  double u2 = uniform01();
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

Rng Rng::fork() { return Rng(next()); }

}  // namespace dapes::common
