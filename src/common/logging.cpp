#include "common/logging.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace dapes::common {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::optional<LogLevel> parse_log_level(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return std::nullopt;
}

bool apply_log_level_from_env() {
  const char* env = std::getenv("DAPES_LOG_LEVEL");
  if (env == nullptr) return false;
  auto level = parse_log_level(env);
  if (!level) return false;
  set_log_level(*level);
  return true;
}

void log_line(LogLevel level, const std::string& component,
              const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::fprintf(stderr, "[%s] %s: %s\n", log_level_name(level),
               component.c_str(), message.c_str());
}

}  // namespace dapes::common
