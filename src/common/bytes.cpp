#include "common/bytes.hpp"

#include <stdexcept>

namespace dapes::common {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string to_hex(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = hex_value(hex[i]);
    int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw std::invalid_argument("from_hex: non-hex character");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

void append_string(Bytes& out, std::string_view str) {
  out.insert(out.end(), str.begin(), str.end());
}

void append_be(Bytes& out, uint64_t value, size_t width) {
  for (size_t i = 0; i < width; ++i) {
    size_t shift = 8 * (width - 1 - i);
    out.push_back(static_cast<uint8_t>((value >> shift) & 0xff));
  }
}

uint64_t read_be(BytesView data, size_t offset, size_t width) {
  if (offset + width > data.size()) {
    throw std::out_of_range("read_be: buffer too short");
  }
  uint64_t value = 0;
  for (size_t i = 0; i < width; ++i) {
    value = (value << 8) | data[offset + i];
  }
  return value;
}

size_t be_width(uint64_t value) {
  size_t width = 1;
  while (value > 0xff) {
    value >>= 8;
    ++width;
  }
  return width;
}

bool equal(BytesView a, BytesView b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

Bytes bytes_of(std::string_view str) {
  return Bytes(str.begin(), str.end());
}

}  // namespace dapes::common
