// Byte-buffer utilities shared by every module.
//
// The wire formats in this project (NDN TLV, IP-lite headers, DAPES
// metadata) are all built on top of a plain `std::vector<uint8_t>`; this
// header provides the alias plus the small helpers (hex, big-endian
// integer packing, appends) that the encoders need.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dapes::common {

/// Owned byte buffer used for all wire encodings.
using Bytes = std::vector<uint8_t>;

/// Non-owning view over encoded bytes.
using BytesView = std::span<const uint8_t>;

/// Encode @p data as lowercase hex ("deadbeef").
std::string to_hex(BytesView data);

/// Decode lowercase/uppercase hex into bytes.
/// @throws std::invalid_argument on odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Append the raw bytes of @p str to @p out.
void append_string(Bytes& out, std::string_view str);

/// Append @p value in big-endian order using exactly @p width bytes
/// (width in [1,8]). Most-significant truncation is the caller's problem;
/// values must fit.
void append_be(Bytes& out, uint64_t value, size_t width);

/// Read a big-endian integer of @p width bytes starting at @p offset.
/// @throws std::out_of_range if the buffer is too short.
uint64_t read_be(BytesView data, size_t offset, size_t width);

/// Minimal number of bytes needed to represent @p value (>=1).
size_t be_width(uint64_t value);

/// Byte-wise equality between a view and a buffer.
bool equal(BytesView a, BytesView b);

/// Build a Bytes from a string literal / std::string content.
Bytes bytes_of(std::string_view str);

}  // namespace dapes::common
