// Deterministic random number generation.
//
// Every stochastic choice in the simulator and in the protocols (mobility,
// loss, timers, slot selection, RPF tie-breaking) draws from an Rng that is
// seeded per-trial, so any experiment is exactly reproducible from its
// (seed, parameters) pair.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dapes::common {

/// Derive the seed for trial `index` of a multi-trial experiment from the
/// experiment's base seed. SplitMix64-style finalizer: adjacent indices give
/// uncorrelated streams, and the result depends only on (base_seed, index) —
/// not on execution order or thread placement — so a trial can be replayed
/// in isolation and parallel runs are bit-identical to serial ones (see
/// EXPERIMENTS.md "Seed derivation").
uint64_t derive_seed(uint64_t base_seed, uint64_t index);

/// xoshiro256** by Blackman & Vigna, seeded via SplitMix64.
/// Small, fast, and good enough statistical quality for simulation.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t next();

  /// Uniform in [0, bound) without modulo bias. bound must be > 0.
  uint64_t next_below(uint64_t bound);

  /// Uniform integer in the closed interval [lo, hi].
  int64_t uniform_int(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Standard normal (mean 0, stddev 1) via Box-Muller. Always consumes
  /// exactly two uniform draws — no cached spare — so the stream position
  /// after a call is deterministic.
  double gaussian();

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for per-node streams).
  Rng fork();

  /// Install a draw guard: while `*guard` is true, any draw from this
  /// generator throws std::logic_error. The parallel trial engine arms a
  /// guard on the medium's shared sequential stream around concurrent
  /// fan-out phases, turning "no shared-stream draws on the parallel
  /// path" from a convention into an enforced invariant (keyed per-link
  /// streams are constructed fresh per draw site and are unaffected).
  /// nullptr (the default) disables the check. Forked children do not
  /// inherit the guard.
  void set_draw_guard(const std::atomic<bool>* guard) { guard_ = guard; }

 private:
  uint64_t state_[4];
  const std::atomic<bool>* guard_ = nullptr;
};

}  // namespace dapes::common
