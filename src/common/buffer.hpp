// Immutable ref-counted byte buffers and cheap views into them.
//
// The wire layer is zero-copy: one frame on the broadcast medium is
// overheard by many receivers, and each receiver's decoded packets keep
// views into the *same* underlying storage instead of deep-copying it.
// `Buffer` is the shared, immutable storage handle; `BufferSlice` is a
// (buffer, offset, length) view that keeps the storage alive. Build-side
// code still works with mutable `Bytes` (see tlv::Writer) and freezes the
// result into a Buffer exactly once.
//
// Ownership rules (see DESIGN.md "Wire & buffer architecture"):
//   * A Buffer's bytes never change after construction.
//   * A BufferSlice is valid as long as it exists — it holds a reference.
//   * An *unowned* BufferSlice (made from a raw BytesView) borrows storage
//     it does not keep alive; it is only for transient, stack-scoped use.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "common/bytes.hpp"

namespace dapes::common {

/// Shared handle to an immutable byte buffer. Copying is a refcount bump.
class Buffer {
 public:
  Buffer() = default;

  /// Take ownership of @p bytes (no copy).
  static Buffer from(Bytes&& bytes) {
    Buffer b;
    b.storage_ = std::make_shared<const Bytes>(std::move(bytes));
    return b;
  }

  /// Copy @p view into fresh shared storage.
  static Buffer copy_of(BytesView view) {
    return from(Bytes(view.begin(), view.end()));
  }

  bool valid() const { return storage_ != nullptr; }
  const uint8_t* data() const { return valid() ? storage_->data() : nullptr; }
  size_t size() const { return valid() ? storage_->size() : 0; }
  BytesView view() const { return BytesView(data(), size()); }
  long use_count() const { return storage_.use_count(); }

 private:
  std::shared_ptr<const Bytes> storage_;
};

/// View into a Buffer (or, unowned, into arbitrary memory). Copying is
/// cheap; the underlying storage is kept alive by the embedded Buffer.
class BufferSlice {
 public:
  BufferSlice() = default;

  /// Whole-buffer view.
  BufferSlice(Buffer buffer)  // NOLINT: implicit by design
      : buffer_(std::move(buffer)),
        data_(buffer_.data()),
        size_(buffer_.size()) {}

  /// Freeze a byte vector into owned shared storage (one allocation).
  BufferSlice(Bytes&& bytes)  // NOLINT: implicit by design
      : BufferSlice(Buffer::from(std::move(bytes))) {}

  /// Borrowed view that does NOT keep the storage alive. Transient use
  /// only (parsing stack-local bytes); never store one.
  static BufferSlice unowned(BytesView view) {
    BufferSlice s;
    s.data_ = view.data();
    s.size_ = view.size();
    return s;
  }

  /// Copy @p view into fresh owned storage.
  static BufferSlice copy_of(BytesView view) {
    return BufferSlice(Buffer::copy_of(view));
  }

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint8_t operator[](size_t i) const { return data_[i]; }
  const uint8_t* begin() const { return data_; }
  const uint8_t* end() const { return data_ + size_; }

  BytesView view() const { return BytesView(data_, size_); }
  operator BytesView() const { return view(); }  // NOLINT: by design

  /// Sub-view sharing the same storage. @p length is clamped to the end.
  BufferSlice subslice(size_t offset, size_t length) const {
    if (offset > size_) offset = size_;
    if (length > size_ - offset) length = size_ - offset;
    BufferSlice s;
    s.buffer_ = buffer_;
    s.data_ = data_ + offset;
    s.size_ = length;
    return s;
  }

  /// True when this slice keeps its storage alive.
  bool owns_storage() const { return buffer_.valid(); }
  const Buffer& buffer() const { return buffer_; }

  /// Deep copy out (compat path for call sites that need mutable bytes).
  Bytes to_bytes() const { return Bytes(begin(), end()); }

 private:
  Buffer buffer_;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace dapes::common
