#include "sim/faults.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <utility>

#include "trace/trace.hpp"

namespace dapes::sim {

namespace {

/// Stream-family tag of the fault layer ("falt"), parallel to the
/// channel layer's "chan"/"shad" tags: the base of every fault draw,
/// derived from the trial seed unless FaultParams::seed pins it.
constexpr uint64_t kFaultTag = 0x66616c74ULL;

uint64_t stream_base(const FaultParams& params, uint64_t trial_seed) {
  return params.seed != 0 ? params.seed
                          : common::derive_seed(trial_seed, kFaultTag);
}

/// Inverse-CDF exponential inter-arrival draw at @p rate_hz (> 0).
double exp_draw(common::Rng& rng, double rate_hz) {
  return -std::log(1.0 - rng.uniform01()) / rate_hz;
}

TimePoint at_seconds(double s) {
  return TimePoint{static_cast<int64_t>(s * 1e6)};
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLeave:
      return "leave";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRestart:
      return "restart";
    case FaultKind::kJoin:
      return "join";
    case FaultKind::kSeederLeave:
      return "seeder_leave";
  }
  return "?";
}

FaultPlan FaultPlan::compile(const FaultParams& params,
                             const Population& population, double sim_limit_s,
                             uint64_t trial_seed) {
  FaultPlan plan;
  const uint64_t base = stream_base(params, trial_seed);
  // One derived stream per process, so adding (say) a flash crowd never
  // shifts the leave draws — the axes stay independent, like the
  // channel layer's per-frame vs per-link streams.
  common::Rng leave_rng(common::derive_seed(base, 1));
  common::Rng crash_rng(common::derive_seed(base, 2));
  common::Rng flash_rng(common::derive_seed(base, 3));
  common::Rng join_rng(common::derive_seed(base, 4));

  // Flash-crowd wave: arrivals uniform over the window, consuming the
  // latent pool from the front. Slots are consumed even when a draw
  // lands past the limit so the join stream below starts at a position
  // independent of the limit.
  size_t latent_used = 0;
  const size_t flash =
      std::min(static_cast<size_t>(std::max(0, params.flash_crowd_size)),
               population.latent.size());
  for (size_t i = 0; i < flash; ++i) {
    const double when =
        params.flash_crowd_at_s +
        flash_rng.uniform(0.0, std::max(0.0, params.flash_crowd_window_s));
    if (when < sim_limit_s) {
      plan.events_.push_back({at_seconds(when), FaultKind::kJoin,
                              population.latent[latent_used]});
    }
    ++latent_used;
  }

  // Poisson admissions drain the rest of the latent pool in order.
  if (params.join_rate_hz > 0.0) {
    double t = params.warmup_s;
    while (latent_used < population.latent.size()) {
      t += exp_draw(join_rng, params.join_rate_hz);
      if (t >= sim_limit_s) break;
      plan.events_.push_back({at_seconds(t), FaultKind::kJoin,
                              population.latent[latent_used++]});
    }
  }

  // Departure walk over the removable pool. The pool is kept sorted so
  // the victim index draw means the same node regardless of insertion
  // history; crash victims re-enter at their restart and become
  // eligible again. Admitted latent nodes deliberately do not join the
  // pool: flash-crowd arrivals stay for the trial, which keeps the walk
  // a function of the initial population alone.
  if (params.leave_rate_hz > 0.0 && !population.removable.empty()) {
    std::vector<uint32_t> pool = population.removable;
    std::sort(pool.begin(), pool.end());
    const size_t min_alive = static_cast<size_t>(
        std::ceil(std::clamp(params.min_alive_fraction, 0.0, 1.0) *
                  static_cast<double>(pool.size())));
    // Restart times are t + restart_delay_s with t monotone, so a FIFO
    // holds them in order.
    std::deque<std::pair<double, uint32_t>> restarts;
    auto process_restarts = [&](double upto) {
      while (!restarts.empty() && restarts.front().first <= upto) {
        const uint32_t node = restarts.front().second;
        restarts.pop_front();
        pool.insert(std::upper_bound(pool.begin(), pool.end(), node), node);
      }
    };

    double t = params.warmup_s;
    while (t < sim_limit_s) {
      process_restarts(t);
      if (pool.size() <= min_alive) {
        // Departure floor reached: nothing can leave until a crashed
        // node comes back.
        if (restarts.empty()) break;
        t = restarts.front().first;
        continue;
      }
      t += exp_draw(leave_rng,
                    params.leave_rate_hz * static_cast<double>(pool.size()));
      if (t >= sim_limit_s) break;
      process_restarts(t);
      if (pool.size() <= min_alive) continue;
      const size_t idx = static_cast<size_t>(
          leave_rng.next_below(static_cast<uint64_t>(pool.size())));
      const uint32_t victim = pool[idx];
      pool.erase(pool.begin() + static_cast<ptrdiff_t>(idx));
      const bool crash =
          params.crash_fraction > 0.0 && crash_rng.chance(params.crash_fraction);
      if (crash) {
        plan.events_.push_back({at_seconds(t), FaultKind::kCrash, victim});
        const double back = t + std::max(0.0, params.restart_delay_s);
        if (back < sim_limit_s) {
          plan.events_.push_back(
              {at_seconds(back), FaultKind::kRestart, victim});
          restarts.emplace_back(back, victim);
        }
        // A restart past the limit makes the crash permanent.
      } else {
        plan.events_.push_back({at_seconds(t), FaultKind::kLeave, victim});
      }
    }
  }

  if (params.seeder_departure_s >= 0.0 && population.has_seeder &&
      params.seeder_departure_s < sim_limit_s) {
    plan.events_.push_back({at_seconds(params.seeder_departure_s),
                            FaultKind::kSeederLeave, population.seeder});
  }

  std::sort(plan.events_.begin(), plan.events_.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.at.us != b.at.us) return a.at.us < b.at.us;
              if (a.kind != b.kind) return a.kind < b.kind;
              return a.target < b.target;
            });
  return plan;
}

std::vector<uint32_t> FaultPlan::pick_adversaries(
    const FaultParams& params, const std::vector<uint32_t>& candidates,
    uint64_t trial_seed) {
  const double fraction = std::clamp(params.adversarial_fraction, 0.0, 1.0);
  const size_t k = static_cast<size_t>(
      std::floor(fraction * static_cast<double>(candidates.size())));
  if (k == 0) return {};
  std::vector<uint32_t> picked = candidates;
  common::Rng rng(
      common::derive_seed(stream_base(params, trial_seed), 5));
  rng.shuffle(picked);
  picked.resize(k);
  std::sort(picked.begin(), picked.end());
  return picked;
}

size_t FaultPlan::admitted_joins() const {
  size_t joins = 0;
  for (const FaultEvent& ev : events_) {
    if (ev.kind == FaultKind::kJoin) ++joins;
  }
  return joins;
}

void FaultPlan::install(Scheduler& sched, ApplyFn apply) const {
  if (events_.empty()) return;
  auto shared = std::make_shared<ApplyFn>(std::move(apply));
  for (const FaultEvent& ev : events_) {
    sched.schedule_at(ev.at, [shared, ev] {
      DAPES_TRACE_EVENT(trace::EventType::kFaultInject, ev.target,
                        static_cast<uint64_t>(ev.kind));
      (*shared)(ev);
    });
  }
}

}  // namespace dapes::sim
