/// @file
/// 2-D geometry helpers for the mobility models and the range-based
/// connectivity test in the wireless medium.
#pragma once

#include <cmath>

namespace dapes::sim {

/// 2-D position or displacement in meters.
struct Vec2 {
  double x = 0.0;  ///< meters
  double y = 0.0;  ///< meters

  /// Component-wise sum.
  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  /// Component-wise difference.
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  /// Scale by @p k.
  constexpr Vec2 operator*(double k) const { return {x * k, y * k}; }
  /// Exact component-wise equality.
  constexpr bool operator==(const Vec2&) const = default;

  /// Euclidean length.
  double norm() const { return std::sqrt(x * x + y * y); }
};

/// Euclidean distance between @p a and @p b.
inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

/// The exact connectivity predicate every spatial-index candidate is
/// re-checked with: squared-distance comparison, boundary inclusive.
inline bool within_range(Vec2 a, Vec2 b, double range) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return dx * dx + dy * dy <= range * range;
}

/// Axis-aligned field the nodes move in (paper Fig. 7: 300 m x 300 m).
struct Field {
  double width = 300.0;   ///< meters
  double height = 300.0;  ///< meters

  /// Project @p p onto the field box (the nearest in-field point).
  Vec2 clamp(Vec2 p) const {
    if (p.x < 0) p.x = 0;
    if (p.y < 0) p.y = 0;
    if (p.x > width) p.x = width;
    if (p.y > height) p.y = height;
    return p;
  }

  /// True when @p p lies inside the field (boundary inclusive).
  bool contains(Vec2 p) const {
    return p.x >= 0 && p.y >= 0 && p.x <= width && p.y <= height;
  }
};

}  // namespace dapes::sim
