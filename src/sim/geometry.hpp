// 2-D geometry helpers for the mobility models and the range-based
// connectivity test in the wireless medium.
#pragma once

#include <cmath>

namespace dapes::sim {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double k) const { return {x * k, y * k}; }
  constexpr bool operator==(const Vec2&) const = default;

  double norm() const { return std::sqrt(x * x + y * y); }
};

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

inline bool within_range(Vec2 a, Vec2 b, double range) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return dx * dx + dy * dy <= range * range;
}

/// Axis-aligned field the nodes move in (paper Fig. 7: 300 m x 300 m).
struct Field {
  double width = 300.0;
  double height = 300.0;

  Vec2 clamp(Vec2 p) const {
    if (p.x < 0) p.x = 0;
    if (p.y < 0) p.y = 0;
    if (p.x > width) p.x = width;
    if (p.y > height) p.y = height;
    return p;
  }

  bool contains(Vec2 p) const {
    return p.x >= 0 && p.y >= 0 && p.x <= width && p.y <= height;
  }
};

}  // namespace dapes::sim
