/// @file
/// Per-node radio with CSMA/CA-style deferral.
///
/// Protocol layers hand frames to their node's Radio instead of the Medium
/// directly. The radio carrier-senses before transmitting and defers with a
/// small random backoff while the channel is audible, which is the 802.11
/// DCF behaviour the paper's peers run on. Collisions still occur for
/// same-slot starts and hidden terminals — exactly the residual collisions
/// DAPES mitigates at the application layer with random timers and PEBA.
#pragma once

#include <deque>
#include <functional>

#include "common/rng.hpp"
#include "sim/medium.hpp"
#include "sim/scheduler.hpp"

namespace dapes::sim {

/// One node's CSMA/CA transmitter in front of the shared Medium.
class Radio {
 public:
  /// DCF timing/backoff parameters.
  struct Params {
    /// 802.11b-ish DCF slot time.
    Duration slot = Duration::microseconds(20);
    /// Inter-frame space waited after the channel goes idle.
    Duration ifs = Duration::microseconds(50);
    /// Minimum contention window (slots) used while deferring. 802.11b
    /// DCF uses CWmin=31; we keep a power of two and a deep CWmax
    /// because scaled frames occupy the air longer than real 802.11b
    /// frames.
    int cw_min = 32;
    /// Contention-window cap reached after repeated busy-deferrals.
    int cw_max = 1024;
    /// Give up after this many busy-deferrals (frame dropped).
    int max_defers = 200;
  };

  /// Re-exported Medium callback type (the radio forwards the TxReport).
  using SendCompleteCallback = Medium::SendCompleteCallback;

  /// Radio with default Params.
  Radio(Scheduler& sched, Medium& medium, NodeId node, common::Rng rng);
  /// Radio with explicit DCF parameters.
  Radio(Scheduler& sched, Medium& medium, NodeId node, common::Rng rng,
        Params params);

  /// Queue a frame for transmission. Frames leave in FIFO order.
  void send(FramePtr frame, SendCompleteCallback on_complete = nullptr);

  /// The node this radio transmits as.
  NodeId node() const { return node_; }
  /// Frames queued behind the current attempt.
  size_t queue_depth() const { return queue_.size(); }

  /// Frames dropped after exhausting max_defers.
  uint64_t drops() const { return drops_; }

  /// Crash/restart teardown for the fault layer: drop every queued frame
  /// and forget the in-progress attempt (the backoff timer it guarded is
  /// cancelled separately by `Scheduler::cancel_for_node`, and a
  /// mid-flight transmission's completion callback is skipped by the
  /// medium once the node is retired — without this reset those stranded
  /// flags would deadlock the radio after a restart).
  void reset();

 private:
  struct Pending {
    FramePtr frame;
    SendCompleteCallback on_complete;
    int defers = 0;
  };

  void try_send();
  void schedule_retry();

  Scheduler& sched_;
  Medium& medium_;
  NodeId node_;
  common::Rng rng_;
  Params params_;
  std::deque<Pending> queue_;
  bool attempt_scheduled_ = false;
  bool transmitting_ = false;
  int cw_ = 4;
  uint64_t drops_ = 0;
};

}  // namespace dapes::sim
