/// @file
/// Discrete-event scheduler.
///
/// Single-threaded, deterministic: events at the same timestamp fire in
/// insertion order (a strictly increasing sequence number breaks ties), so
/// identical seeds give identical runs. Everything in the repository — the
/// wireless medium, NDN forwarders, DAPES peers, the IP baselines — runs on
/// one Scheduler instance per trial.
///
/// Two extensions serve the parallel trial interior (DESIGN.md "Parallel
/// trial interior") without changing the serial contract:
///
///  * Tagged claims. `schedule_tagged` attaches a nonzero claim tag to an
///    event; `claim_tagged` lets the handler of one such event batch-pop
///    the maximal run of same-instant tagged events at the heap head in a
///    single call, taking over their work. The medium uses this to fold
///    all frame deliveries landing on the same microsecond into one
///    phase-parallel batch.
///  * Phase staging. Between `begin_phase` and `end_phase`, schedule and
///    cancel calls from worker threads bound to per-item slots are staged
///    in slot-private buffers ("mailboxes") instead of touching the heap;
///    `end_phase` merges them in canonical slot order on the coordinator
///    thread, assigning the same sequence numbers a serial execution of
///    the items would have — so the heap ends up in a bit-identical state
///    no matter how many workers ran the items.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/time.hpp"

namespace dapes::sim {

using common::Duration;
using common::TimePoint;

/// Handle for cancelling a scheduled event.
struct EventId {
  /// Opaque event identity; 0 means "no event".
  uint64_t value = 0;
  /// True when the handle refers to a real (scheduled) event.
  bool valid() const { return value != 0; }
};

/// The per-trial discrete-event loop (see the file comment for the
/// determinism contract). Not copyable: exactly one instance per trial.
class Scheduler {
 public:
  /// `peek_horizon()` result when the queue is empty.
  static constexpr TimePoint kNoHorizon{std::numeric_limits<int64_t>::max()};

  /// Owner value of events scheduled outside any OwnerScope. Not 0 —
  /// node ids start at 0, so 0 must stay a usable owner.
  static constexpr uint64_t kNoOwner = std::numeric_limits<uint64_t>::max();

  /// RAII owner attribution for the fault-injection teardown sweep
  /// (`cancel_for_node`): while a scope is alive on the calling thread,
  /// every event that thread schedules into @p sched is stamped with
  /// @p owner. Events fired by the run loop re-install their own owner
  /// around the callback, so transitively scheduled events (retransmit
  /// timers rescheduling themselves, CSMA backoff chains) inherit it
  /// without any per-call plumbing. Scopes nest; the previous binding is
  /// restored on destruction.
  class OwnerScope {
   public:
    /// Install @p owner for @p sched on this thread.
    OwnerScope(Scheduler& sched, uint64_t owner);
    /// Restore the previous binding.
    ~OwnerScope();
    OwnerScope(const OwnerScope&) = delete;             ///< not copyable
    OwnerScope& operator=(const OwnerScope&) = delete;  ///< not copyable

   private:
    Scheduler* prev_sched_;
    uint64_t prev_owner_;
  };

  /// An empty schedule at time zero.
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;             ///< not copyable
  Scheduler& operator=(const Scheduler&) = delete;  ///< not copyable

  /// Current simulated time.
  TimePoint now() const { return now_; }

  /// Schedule @p fn to run at absolute time @p at (clamped to now()).
  EventId schedule_at(TimePoint at, std::function<void()> fn);

  /// Schedule @p fn after a relative delay (negative delays clamp to 0).
  EventId schedule(Duration delay, std::function<void()> fn);

  /// Schedule @p fn at @p at carrying a claim tag (must be nonzero): the
  /// event runs normally unless a same-instant predecessor claims it via
  /// `claim_tagged` first. Not callable during a phase — tagged events
  /// come from the medium's transmit path, which never runs inside one.
  EventId schedule_tagged(TimePoint at, uint64_t tag,
                          std::function<void()> fn);

  /// Cancel a pending event. Returns false if it was already cancelled
  /// (and usually if it already fired — after a compaction the scheduler
  /// no longer remembers old ids, so a stale cancel may return true; it
  /// is harmless either way).
  bool cancel(EventId id);

  /// The owner the calling thread currently stamps onto scheduled events
  /// (kNoOwner when no OwnerScope for this scheduler is active).
  uint64_t current_owner() const;

  /// Teardown sweep for a retired node: cancel every pending event owned
  /// by @p owner (see OwnerScope), reusing the lazy-cancel + compaction
  /// machinery so a mass retirement cannot bloat the heap. Tagged events
  /// (in-flight medium deliveries) are never owned and are not touched.
  /// Coordinator only — throws std::logic_error during a phase, and
  /// std::invalid_argument for kNoOwner. Returns the number cancelled.
  size_t cancel_for_node(uint64_t owner);

  /// Timestamp of the next live (non-cancelled) event, purging cancelled
  /// entries from the heap head on the way; `kNoHorizon` when empty. The
  /// parallel engine compares this against its conservative lookahead
  /// bound (`Medium::min_lookahead`).
  TimePoint peek_horizon();

  /// Batch-pop: claim the maximal run of tagged events at the heap head
  /// whose timestamp is exactly @p at, appending their tags to @p out in
  /// execution (insertion) order. Each claimed event counts as executed —
  /// the claimer takes over its work and its callback is dropped. Stops
  /// at the first untagged or later-timestamped head, which preserves the
  /// serial execution order exactly. Returns the number claimed.
  size_t claim_tagged(TimePoint at, std::vector<uint64_t>& out);

  /// Begin a parallel phase of @p slots work items. Until `end_phase`,
  /// schedule/cancel calls are only legal from threads bound to a slot
  /// (see `bind_phase_slot`) and are staged per slot; event ids are
  /// pre-assigned per slot from a fixed stride so they depend only on the
  /// slot index, never on worker timing. Coordinator only; phases do not
  /// nest.
  void begin_phase(size_t slots);

  /// Bind the calling thread to staging slot @p slot of the open phase.
  /// Rebinding to another slot is allowed (workers bind once per item).
  void bind_phase_slot(size_t slot);

  /// Clear the calling thread's slot binding.
  void unbind_phase_slot();

  /// Merge every slot's staged operations into the heap in slot order,
  /// assigning sequence numbers exactly as a serial execution of the
  /// items (in slot order) would have. Coordinator only. Returns the
  /// number of operations applied.
  size_t end_phase();

  /// True while a phase is open (between begin_phase and end_phase).
  bool in_phase() const { return phase_active_; }

  /// Run until the queue is empty or simulated time reaches @p until.
  /// Returns the number of events executed by this call.
  size_t run_until(TimePoint until);

  /// Run until the queue drains completely.
  size_t run();

  /// Number of live (non-cancelled) pending events.
  size_t pending() const {
    return cancelled_.size() < heap_.size() ? heap_.size() - cancelled_.size()
                                            : 0;
  }

  /// Queue entries currently held, *including* cancelled ones awaiting
  /// lazy removal — the quantity the compaction keeps bounded.
  size_t queued() const { return heap_.size(); }

  /// Total events executed over the scheduler's lifetime (claimed tagged
  /// events count: their work ran, just under the claimer).
  uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    TimePoint at;
    uint64_t seq = 0;
    uint64_t id = 0;
    /// Claim tag (0 = not claimable). See schedule_tagged/claim_tagged.
    uint64_t tag = 0;
    /// Owning node for cancel_for_node (kNoOwner = unowned).
    uint64_t owner = kNoOwner;
    std::shared_ptr<std::function<void()>> fn;
  };
  struct EntryCompare {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// One staged schedule or cancel from a phase slot, replayed by
  /// end_phase in slot order.
  struct PhaseOp {
    bool is_cancel = false;
    TimePoint at;
    uint64_t id = 0;
    /// Owner captured at staging time, re-applied by end_phase.
    uint64_t owner = kNoOwner;
    std::shared_ptr<std::function<void()>> fn;
  };
  struct PhaseSlot {
    std::vector<PhaseOp> ops;
    /// Ids handed out so far (offset into the slot's pre-assigned range).
    uint64_t ids_used = 0;
  };

  /// Drop every cancelled entry from the heap in one O(n) pass. Called
  /// when cancelled entries outnumber live ones *or* exceed an absolute
  /// cap: without the cap, a huge queue could hold an arbitrary byte
  /// volume of dead entries while still passing the ratio test.
  void compact();

  /// Pop cancelled entries sitting at the heap head.
  void purge_cancelled_head();

  /// Heap insertion shared by the direct and staged paths.
  EventId push_entry(TimePoint at, uint64_t id, uint64_t tag, uint64_t owner,
                     std::shared_ptr<std::function<void()>> fn);

  /// Cancel bookkeeping shared by the direct and staged paths.
  bool apply_cancel(uint64_t id);

  /// The calling thread's slot, or nullptr when unbound to this instance.
  PhaseSlot* bound_slot();

  TimePoint now_ = TimePoint::zero();
  uint64_t next_seq_ = 1;
  uint64_t next_id_ = 1;
  uint64_t executed_ = 0;
  /// Max-priority heap over EntryCompare (std::push_heap/pop_heap), kept
  /// as a plain vector so compact() can filter it in place.
  std::vector<Entry> heap_;
  std::unordered_set<uint64_t> cancelled_;

  bool phase_active_ = false;
  /// First id of the open phase's pre-assigned range (slot k owns
  /// [base + k*stride, base + (k+1)*stride)).
  uint64_t phase_id_base_ = 0;
  std::vector<PhaseSlot> phase_slots_;
};

}  // namespace dapes::sim
