/// @file
/// Discrete-event scheduler.
///
/// Single-threaded, deterministic: events at the same timestamp fire in
/// insertion order (a strictly increasing sequence number breaks ties), so
/// identical seeds give identical runs. Everything in the repository — the
/// wireless medium, NDN forwarders, DAPES peers, the IP baselines — runs on
/// one Scheduler instance per trial.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/time.hpp"

namespace dapes::sim {

using common::Duration;
using common::TimePoint;

/// Handle for cancelling a scheduled event.
struct EventId {
  /// Opaque event identity; 0 means "no event".
  uint64_t value = 0;
  /// True when the handle refers to a real (scheduled) event.
  bool valid() const { return value != 0; }
};

/// The per-trial discrete-event loop (see the file comment for the
/// determinism contract). Not copyable: exactly one instance per trial.
class Scheduler {
 public:
  /// An empty schedule at time zero.
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;             ///< not copyable
  Scheduler& operator=(const Scheduler&) = delete;  ///< not copyable

  /// Current simulated time.
  TimePoint now() const { return now_; }

  /// Schedule @p fn to run at absolute time @p at (clamped to now()).
  EventId schedule_at(TimePoint at, std::function<void()> fn);

  /// Schedule @p fn after a relative delay (negative delays clamp to 0).
  EventId schedule(Duration delay, std::function<void()> fn);

  /// Cancel a pending event. Returns false if it was already cancelled
  /// (and usually if it already fired — after a compaction the scheduler
  /// no longer remembers old ids, so a stale cancel may return true; it
  /// is harmless either way).
  bool cancel(EventId id);

  /// Run until the queue is empty or simulated time reaches @p until.
  /// Returns the number of events executed by this call.
  size_t run_until(TimePoint until);

  /// Run until the queue drains completely.
  size_t run();

  /// Number of live (non-cancelled) pending events.
  size_t pending() const {
    return cancelled_.size() < heap_.size() ? heap_.size() - cancelled_.size()
                                            : 0;
  }

  /// Queue entries currently held, *including* cancelled ones awaiting
  /// lazy removal — the quantity the compaction keeps bounded.
  size_t queued() const { return heap_.size(); }

  /// Total events executed over the scheduler's lifetime.
  uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    TimePoint at;
    uint64_t seq = 0;
    uint64_t id = 0;
    std::shared_ptr<std::function<void()>> fn;
  };
  struct EntryCompare {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Drop every cancelled entry from the heap in one O(n) pass. Called
  /// when cancelled entries outnumber live ones: without it, cancelling
  /// far-future events (e.g. retransmit timers at 1000-node scale) would
  /// grow the heap unboundedly, because lazy removal only reclaims
  /// entries that reach the top.
  void compact();

  TimePoint now_ = TimePoint::zero();
  uint64_t next_seq_ = 1;
  uint64_t next_id_ = 1;
  uint64_t executed_ = 0;
  /// Max-priority heap over EntryCompare (std::push_heap/pop_heap), kept
  /// as a plain vector so compact() can filter it in place.
  std::vector<Entry> heap_;
  std::unordered_set<uint64_t> cancelled_;
};

}  // namespace dapes::sim
