/// @file
/// Pluggable channel/PHY models for the wireless medium.
///
/// The paper's evaluation runs on an idealized unit-disk channel (binary
/// range check + independent Bernoulli loss). That model is retained,
/// bit-for-bit, as the deterministic reference; this layer makes the
/// channel a plug point so scenario families can also run under
/// log-distance path loss with optional log-normal shadowing, a
/// probabilistic reception curve, an SIR-based capture rule, and an
/// airtime model with a fixed PHY preamble — plus a composable stack of
/// second-round realism stages on top of the log-distance base
/// (DESIGN.md "Channel realism round two"):
///   * Gilbert-Elliott bursty erasures: a two-state Markov erasure
///     process per unordered link whose state at any time is a pure
///     function of (link_seed, pair, time) — see `GilbertElliott`,
///   * Rayleigh/Rician fast fading per (link, transmission) with a
///     K-factor knob — see `fading_gain_db`,
///   * spatially correlated shadowing from a deterministic shared
///     obstacle field sampled at link midpoints — see `ShadowField`,
///   * SIR-adaptive bitrate selection feeding the existing airtime
///     path — see `ChannelModel::select_rate_bps`.
/// `sim::Medium` routes every delivery, carrier-sense and collision
/// decision through the installed model; see DESIGN.md "Channel & PHY
/// models" for the invariants (deterministic coverage cutoff, keyed
/// per-link draws, no mutable model state) that keep the spatial grid,
/// the brute-force reference and any `--jobs` x `--trial-threads`
/// combination bit-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace dapes::sim {

using common::Duration;

/// Configuration for `make_channel_model`. One flat parameter set serves
/// every model; each model documents which fields it reads. The struct is
/// part of `Medium::Params` (and of the harness `ScenarioParams`), so
/// sweep axes can vary any field per trial. Every field added after the
/// paper baseline defaults to "off": with an untouched ChannelParams the
/// medium is bit-identical to the seed tree (the defaults-are-inert
/// regression in tests/test_harness.cpp pins this).
struct ChannelParams {
  /// Registry name of the model: "unit-disk" (the deterministic paper
  /// reference, the default) or "log-distance". See
  /// `channel_model_names()`.
  std::string model = "unit-disk";

  /// Unit-disk capture rule: a frame survives an overlapping interferer
  /// when its sender is at most this fraction of the interferer's
  /// distance from the receiver (power advantage ~1/ratio^2). 0 disables
  /// capture (any overlap kills both frames). Read by "unit-disk" only.
  double capture_ratio = 0.7;

  /// Log-distance path-loss exponent (alpha): free space is 2, typical
  /// outdoor 2.7-4, obstructed indoor up to 6. Read by "log-distance".
  double path_loss_exponent = 3.0;

  /// Log-normal shadowing standard deviation in dB; 0 disables it.
  /// With `shadowing_corr_m == 0` shadowing is quasi-static per link:
  /// one N(0, sigma) value per unordered node pair, fixed for the whole
  /// trial (drawn from a stream keyed by the pair, not by the frame).
  /// With a positive correlation length the same sigma scales the
  /// shared obstacle field instead (see `ShadowField`). Read by
  /// "log-distance".
  double shadowing_sigma_db = 0.0;

  /// Correlation length (meters) of the spatially correlated shadowing
  /// field: 0 (the default) keeps the independent per-pair draw; > 0
  /// replaces it with a deterministic shared obstacle field sampled at
  /// the link midpoint, so nearby links shadow together and the
  /// covariance decays with midpoint distance. Read by "log-distance"
  /// when `shadowing_sigma_db > 0`.
  double shadowing_corr_m = 0.0;

  /// Width of the probabilistic reception curve in dB: reception
  /// probability is logistic(margin / softness). 0 makes reception a
  /// hard threshold at the nominal range. Read by "log-distance".
  double softness_db = 2.0;

  /// SIR advantage (dB) a frame needs over an interferer for
  /// physical-layer capture. Read by "log-distance".
  double capture_threshold_db = 6.0;

  /// Fixed PHY preamble added to every frame's airtime (802.11b long
  /// PLCP preamble is 192 us). Read by "log-distance".
  double preamble_us = 192.0;

  // --- Gilbert-Elliott bursty erasures (read by "log-distance") ------

  /// Stationary fraction of time an unordered link spends in the
  /// Gilbert-Elliott bad state; 0 (the default) disables the burst
  /// stage entirely (no draws, no state queries). Must stay below 1.
  double ge_bad_fraction = 0.0;

  /// Mean sojourn time in the bad state, milliseconds — the expected
  /// burst length. The good-state rate follows from stationarity.
  double ge_mean_burst_ms = 200.0;

  /// Erasure probability applied on top of the reception curve while
  /// the link is in the bad state (1 = the classic hard erasure burst).
  double ge_bad_loss = 1.0;

  /// Erasure probability while the link is in the good state.
  double ge_good_loss = 0.0;

  /// Quantization step of the burst process, milliseconds: link state
  /// is a pure function of the slot index floor(t / slot), evolved with
  /// the closed-form two-state transition probabilities for one slot of
  /// elapsed time. Smaller slots track the continuous chain more
  /// closely at slightly higher per-delivery cost.
  double ge_slot_ms = 10.0;

  // --- fast fading (read by "log-distance") --------------------------

  /// Fast-fading stage applied per (link, transmission) on top of the
  /// log-distance margin: "none" (default), "rayleigh" (no line of
  /// sight), or "rician" (line of sight plus scatter, strength set by
  /// `rician_k`). Unknown names make `make_channel_model` throw.
  std::string fading = "none";

  /// Rician K-factor (linear ratio of line-of-sight to scattered
  /// power). K -> 0 degenerates to Rayleigh, K -> infinity to no
  /// fading. Read when `fading == "rician"`.
  double rician_k = 4.0;

  // --- SIR-adaptive bitrate (read by "log-distance") -----------------

  /// Enable SIR-adaptive bitrate selection: at transmit time the sender
  /// estimates its worst-case SIR at the nominal-range edge from the
  /// in-flight interferers audible at its position and picks the
  /// fastest rate tier whose SIR requirement is met (halving the base
  /// rate per tier). Off by default; the selected rate never exceeds
  /// the base rate, so the medium's conservative airtime lower bound
  /// (`min_airtime`) stays valid.
  bool adaptive_rate = false;

  /// Number of rate tiers (base, base/2, ... base/2^(tiers-1)). At
  /// least 1; tier count 1 pins the base rate regardless of SIR.
  int rate_tiers = 4;

  /// Estimated SIR (dB) required to run at the full base rate.
  double rate_sir_full_db = 10.0;

  /// SIR requirement relaxed per tier step-down (each halving of the
  /// bitrate buys this much robustness, dB).
  double rate_step_db = 5.0;

  /// Base seed for the keyed per-link reception draws of the
  /// non-reference models. The harness (`Topology`) always derives it
  /// from the trial seed before the medium is built, so concurrent
  /// trials never share a stream; code constructing a `Medium` directly
  /// with a non-reference model should set it likewise (0 is still
  /// deterministic, but identical across every trial that leaves it
  /// unset — the foot-gun tests/test_channel_burst.cpp pins the
  /// harness against).
  uint64_t link_seed = 0;
};

/// Everything a channel model may condition one reception decision on.
/// Filled by the medium per (transmission, receiver); every field is a
/// pure function of the transmission's start state, so the decision is
/// independent of delivery enumeration order, of the spatial index and
/// of the phase-parallel engine's lane count.
struct RxContext {
  double distance_m = 0.0;   ///< sender-receiver distance at start time
  double tx_range_m = 0.0;   ///< sender's nominal radio range
  double loss_rate = 0.0;    ///< medium's distance-independent loss rate
  uint32_t sender = 0;       ///< transmitting node id
  uint32_t receiver = 0;     ///< receiving node id
  uint64_t tx_id = 0;        ///< transmission id (per-frame key)
  double time_s = 0.0;       ///< transmission start time, seconds
  double mid_x = 0.0;        ///< link midpoint x (obstacle-field sample)
  double mid_y = 0.0;        ///< link midpoint y (obstacle-field sample)
};

/// Deterministic two-state Markov (Gilbert-Elliott) erasure process per
/// unordered link. The state at time t is a *pure function* of
/// (link_seed, pair, t) — no mutable chain state — computed by anchoring
/// a block of `kBlockSlots` quantized slots on a stationary draw and
/// evolving slot-by-slot with the closed-form two-state transition
/// probabilities for one slot of elapsed time:
///
///   p_enter_bad = pi * (1 - e^(-(lambda+mu) tau))
///   p_stay_bad  = pi + (1 - pi) * e^(-(lambda+mu) tau)
///
/// where pi is the stationary bad fraction, mu = 1/mean_burst the
/// bad-exit rate, lambda = mu*pi/(1-pi) the stationarity-matching entry
/// rate and tau the slot length. Every uniform comes from a keyed
/// substream of (link_seed, pair, block), so queries are independent of
/// evaluation order — the discipline that keeps grid-vs-brute and every
/// `--jobs` x `--trial-threads` combination bit-identical. The
/// statistical-property suite (tests/test_channel_burst.cpp) checks the
/// empirical burst-length and stationary-occupancy distributions against
/// these closed forms.
class GilbertElliott {
 public:
  /// Slots per anchor block: the per-query transition walk is bounded by
  /// this, and a block boundary restarts the chain from its stationary
  /// distribution (exact marginals; bursts spanning a boundary are
  /// split, a negligible truncation for blocks much longer than a
  /// burst).
  static constexpr int kBlockSlots = 32;

  /// Disabled process (never queried).
  GilbertElliott() = default;

  /// Derive the per-slot chain from @p p (the ge_* fields + link_seed).
  explicit GilbertElliott(const ChannelParams& p);

  /// True when the burst stage is active (ge_bad_fraction > 0).
  bool enabled() const { return enabled_; }

  /// Link state at @p time_s for the unordered pair {a, b}: true = bad.
  /// Pure function of the constructor parameters and the arguments.
  bool bad_at(uint32_t a, uint32_t b, double time_s) const;

  /// Erasure probability applied in the given state.
  double erasure(bool bad) const { return bad ? bad_loss_ : good_loss_; }

  /// Stationary probability of the bad state (closed form, what the
  /// empirical occupancy must converge to).
  double stationary_bad() const { return pi_; }

  /// Per-slot P(bad -> bad) (closed form; burst lengths in slots are
  /// geometric with mean 1/(1 - p_stay_bad)).
  double p_stay_bad() const { return p_bb_; }

  /// Per-slot P(good -> bad) (closed form).
  double p_enter_bad() const { return p_gb_; }

  /// Quantization slot length, seconds.
  double slot_s() const { return slot_s_; }

 private:
  bool enabled_ = false;
  double pi_ = 0.0;
  double p_bb_ = 0.0;
  double p_gb_ = 0.0;
  double slot_s_ = 0.01;
  double bad_loss_ = 1.0;
  double good_loss_ = 0.0;
  uint64_t root_ = 0;  ///< link_seed under the burst stream-family tag
};

/// Deterministic spatially correlated shadowing field — a seed-keyed
/// Gaussian random field standing in for a shared obstacle map. Built
/// once per trial (from the channel's link_seed), immutable afterwards;
/// `sample_db` is a pure function, so nearby links sampled at their
/// midpoints shadow together and the covariance between two sample
/// points decays as exp(-d^2 / (2 corr^2)) with their distance d. The
/// classic sum-of-random-cosines spectral construction: harmonics with
/// N(0, 1/corr^2) wave vectors and uniform phases.
class ShadowField {
 public:
  /// Disabled field (never sampled).
  ShadowField() = default;

  /// Build a field with marginal standard deviation @p sigma_db and
  /// correlation length @p corr_m from keyed substreams of @p seed.
  ShadowField(uint64_t seed, double sigma_db, double corr_m);

  /// True when the field is active (sigma and correlation length > 0).
  bool enabled() const { return !harmonics_.empty(); }

  /// Shadowing value (dB, ~N(0, sigma^2)) at a point. Pure function.
  double sample_db(double x, double y) const;

 private:
  struct Harmonic {
    double kx, ky, phase;
  };
  std::vector<Harmonic> harmonics_;
  double amplitude_ = 0.0;
};

/// One Rayleigh/Rician power fading gain in dB, normalized to unit mean
/// power: the envelope-squared of a complex Gaussian with a line-of-sight
/// component of power K/(K+1) and scattered power 1/(K+1). @p k_factor 0
/// is Rayleigh (exponential power, mean 1); K -> infinity degenerates to
/// 0 dB (no fading). Consumes exactly two `gaussian()` draws (four
/// uniforms) from @p rng, so the stream position after a call is
/// deterministic. The moment checks in tests/test_channel_burst.cpp pin
/// the distribution against the closed-form mean and variance.
double fading_gain_db(common::Rng& rng, double k_factor);

/// One channel/PHY model. Implementations are immutable after
/// construction and therefore safe to share across concurrent trials.
///
/// The contract that keeps outcomes independent of the medium's spatial
/// index and of delivery enumeration order:
///  - `coverage_m` is a deterministic hard cutoff: beyond it the model
///    must report reception probability exactly 0 and the medium treats
///    the transmission as inaudible (carrier sense, collision marking).
///  - Models with `deterministic_reference() == false` must make every
///    stochastic choice from the per-link `Rng` handed to `receives`
///    (keyed by (link_seed, transmission, receiver)) or from keyed
///    substreams derived from the `RxContext`, never from shared or
///    mutable state, so draws are independent of the order receivers
///    are visited.
class ChannelModel {
 public:
  virtual ~ChannelModel() = default;

  /// Registry name ("unit-disk", "log-distance").
  virtual const std::string& name() const = 0;

  /// Hard audibility cutoff (meters) for a transmitter whose nominal
  /// radio range is @p tx_range_m. Beyond this distance the transmission
  /// cannot be received, carrier-sensed, or collide with anything.
  /// Monotone in @p tx_range_m.
  virtual double coverage_m(double tx_range_m) const = 0;

  /// Time a frame of @p on_air_bytes (payload + MAC overhead) occupies
  /// the channel at @p data_rate_bps. Strictly increasing in the byte
  /// count.
  virtual Duration airtime(size_t on_air_bytes, double data_rate_bps) const = 0;

  /// Lower bound on the airtime of *any* frame: the airtime of an empty
  /// payload (just @p overhead_bytes of preamble/MAC framing). Because
  /// `airtime` is strictly increasing in the byte count this bounds every
  /// possible transmission, so `min_airtime + propagation` is a
  /// conservative lookahead: no transmission started at or after time t
  /// can deliver before t + that bound. The medium caches it at
  /// model-install time (see `Medium::min_lookahead`); adaptive-rate
  /// models keep it valid by never selecting a rate above the base rate.
  Duration min_airtime(size_t overhead_bytes, double data_rate_bps) const {
    return airtime(overhead_bytes, data_rate_bps);
  }

  /// Probability that a frame from a transmitter of nominal range
  /// @p tx_range_m is decodable at @p distance_m, before collisions,
  /// shadowing and the medium's independent loss rate. Deterministic and
  /// non-increasing in @p distance_m; exactly 0 beyond
  /// `coverage_m(tx_range_m)`.
  virtual double reception_probability(double distance_m,
                                       double tx_range_m) const = 0;

  /// Decide whether a non-collided frame is received. @p rx carries the
  /// link geometry and keys (distance, nominal range, ambient loss rate,
  /// endpoint ids, transmission id, start time, link midpoint).
  /// @p link_rng is a stream keyed by the (unordered) node pair and
  /// re-seeded identically for every frame between them, so draws from
  /// it — independent per-pair shadowing — are *quasi-static per link*
  /// across a trial. @p frame_rng is keyed by (transmission, receiver):
  /// fresh randomness per frame (fast fading and the reception draw,
  /// folding in the medium's distance-independent Bernoulli loss). For
  /// the deterministic reference both parameters alias the medium's
  /// shared sequential stream.
  virtual bool receives(const RxContext& rx, common::Rng& link_rng,
                        common::Rng& frame_rng) const = 0;

  /// Bursty-erasure state of the link described by @p rx: -1 when the
  /// model runs no burst process (the default), else 0 (good) / 1 (bad).
  /// Pure query — no draws are consumed — used by the medium's
  /// `channel.state` trace event.
  virtual int link_state(const RxContext& rx) const {
    (void)rx;
    return -1;
  }

  /// Physical-layer capture: does a frame whose sender (nominal range
  /// @p own_range_m) is @p own_distance_m from the receiver survive an
  /// overlapping interferer (range @p interferer_range_m) at
  /// @p interferer_distance_m? Must be a pure per-interferer predicate —
  /// the medium folds it over all interferers, so order cannot matter.
  virtual bool captured(double own_distance_m, double own_range_m,
                        double interferer_distance_m,
                        double interferer_range_m) const = 0;

  /// True when the model performs SIR-adaptive bitrate selection; the
  /// medium then evaluates the sender's SIR estimate at transmit time
  /// and charges airtime at `select_rate_bps` instead of the base rate.
  virtual bool adaptive_rate() const { return false; }

  /// Mean link margin (dB) at @p distance_m from a transmitter of
  /// nominal range @p tx_range_m: the rate-adaptation signal/interference
  /// strength proxy. The default is the unit-disk step (0 dB in range,
  /// -infinity beyond), matching the binary connectivity rule.
  virtual double signal_margin_db(double distance_m,
                                  double tx_range_m) const;

  /// Bitrate (bps) to charge a transmission given the sender's estimated
  /// SIR at its nominal-range edge. Must never exceed
  /// @p base_rate_bps (the `min_airtime` lookahead bound depends on it);
  /// the default pins the base rate.
  virtual double select_rate_bps(double base_rate_bps, double sir_db) const {
    (void)sir_db;
    return base_rate_bps;
  }

  /// True for the unit-disk reference: reception draws consume the
  /// medium's shared sequential RNG stream in receiver order, preserving
  /// bit-identity with the pre-channel-layer medium. All other models
  /// use keyed per-link streams.
  virtual bool deterministic_reference() const { return false; }
};

/// Shared immutable handle; one instance may serve many trials.
using ChannelModelPtr = std::shared_ptr<const ChannelModel>;

/// Build the model named by `params.model`. Throws std::invalid_argument
/// on an unknown model or fading name (listing the registered ones) and
/// on out-of-range stack parameters (ge_bad_fraction >= 1,
/// rate_tiers < 1).
ChannelModelPtr make_channel_model(const ChannelParams& params);

/// Names accepted by `make_channel_model`, sorted.
std::vector<std::string> channel_model_names();

/// Fading stage names accepted in `ChannelParams::fading`, sorted.
std::vector<std::string> channel_fading_names();

}  // namespace dapes::sim
