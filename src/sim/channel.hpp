/// @file
/// Pluggable channel/PHY models for the wireless medium.
///
/// The paper's evaluation runs on an idealized unit-disk channel (binary
/// range check + independent Bernoulli loss). That model is retained,
/// bit-for-bit, as the deterministic reference; this layer makes the
/// channel a plug point so scenario families can also run under
/// log-distance path loss with optional log-normal shadowing, a
/// probabilistic reception curve, an SIR-based capture rule, and an
/// airtime model with a fixed PHY preamble. `sim::Medium` routes every
/// delivery, carrier-sense and collision decision through the installed
/// model; see DESIGN.md "Channel & PHY models" for the invariants
/// (deterministic coverage cutoff, keyed per-link draws) that keep the
/// spatial grid, the brute-force reference and any `--jobs` value
/// bit-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace dapes::sim {

using common::Duration;

/// Configuration for `make_channel_model`. One flat parameter set serves
/// every model; each model documents which fields it reads. The struct is
/// part of `Medium::Params` (and of the harness `ScenarioParams`), so
/// sweep axes can vary any field per trial.
struct ChannelParams {
  /// Registry name of the model: "unit-disk" (the deterministic paper
  /// reference, the default) or "log-distance". See
  /// `channel_model_names()`.
  std::string model = "unit-disk";

  /// Unit-disk capture rule: a frame survives an overlapping interferer
  /// when its sender is at most this fraction of the interferer's
  /// distance from the receiver (power advantage ~1/ratio^2). 0 disables
  /// capture (any overlap kills both frames). Read by "unit-disk" only.
  double capture_ratio = 0.7;

  /// Log-distance path-loss exponent (alpha): free space is 2, typical
  /// outdoor 2.7-4, obstructed indoor up to 6. Read by "log-distance".
  double path_loss_exponent = 3.0;

  /// Log-normal shadowing standard deviation in dB; 0 disables it.
  /// Shadowing is quasi-static per link: one N(0, sigma) value per
  /// unordered node pair, fixed for the whole trial (drawn from a stream
  /// keyed by the pair, not by the frame). Read by "log-distance".
  double shadowing_sigma_db = 0.0;

  /// Width of the probabilistic reception curve in dB: reception
  /// probability is logistic(margin / softness). 0 makes reception a
  /// hard threshold at the nominal range. Read by "log-distance".
  double softness_db = 2.0;

  /// SIR advantage (dB) a frame needs over an interferer for
  /// physical-layer capture. Read by "log-distance".
  double capture_threshold_db = 6.0;

  /// Fixed PHY preamble added to every frame's airtime (802.11b long
  /// PLCP preamble is 192 us). Read by "log-distance".
  double preamble_us = 192.0;

  /// Base seed for the keyed per-link reception draws of the
  /// non-reference models. The harness derives it from the trial seed
  /// (`Topology`); 0 means "derive from nothing", which is still
  /// deterministic but shared across trials — set it per trial.
  uint64_t link_seed = 0;
};

/// One channel/PHY model. Implementations are immutable after
/// construction and therefore safe to share across concurrent trials.
///
/// The contract that keeps outcomes independent of the medium's spatial
/// index and of delivery enumeration order:
///  - `coverage_m` is a deterministic hard cutoff: beyond it the model
///    must report reception probability exactly 0 and the medium treats
///    the transmission as inaudible (carrier sense, collision marking).
///  - Models with `deterministic_reference() == false` must make every
///    stochastic choice from the per-link `Rng` handed to `receives`
///    (keyed by (link_seed, transmission, receiver)), never from shared
///    state, so draws are independent of the order receivers are visited.
class ChannelModel {
 public:
  virtual ~ChannelModel() = default;

  /// Registry name ("unit-disk", "log-distance").
  virtual const std::string& name() const = 0;

  /// Hard audibility cutoff (meters) for a transmitter whose nominal
  /// radio range is @p tx_range_m. Beyond this distance the transmission
  /// cannot be received, carrier-sensed, or collide with anything.
  /// Monotone in @p tx_range_m.
  virtual double coverage_m(double tx_range_m) const = 0;

  /// Time a frame of @p on_air_bytes (payload + MAC overhead) occupies
  /// the channel at @p data_rate_bps. Strictly increasing in the byte
  /// count.
  virtual Duration airtime(size_t on_air_bytes, double data_rate_bps) const = 0;

  /// Lower bound on the airtime of *any* frame: the airtime of an empty
  /// payload (just @p overhead_bytes of preamble/MAC framing). Because
  /// `airtime` is strictly increasing in the byte count this bounds every
  /// possible transmission, so `min_airtime + propagation` is a
  /// conservative lookahead: no transmission started at or after time t
  /// can deliver before t + that bound. The medium caches it at
  /// model-install time (see `Medium::min_lookahead`).
  Duration min_airtime(size_t overhead_bytes, double data_rate_bps) const {
    return airtime(overhead_bytes, data_rate_bps);
  }

  /// Probability that a frame from a transmitter of nominal range
  /// @p tx_range_m is decodable at @p distance_m, before collisions,
  /// shadowing and the medium's independent loss rate. Deterministic and
  /// non-increasing in @p distance_m; exactly 0 beyond
  /// `coverage_m(tx_range_m)`.
  virtual double reception_probability(double distance_m,
                                       double tx_range_m) const = 0;

  /// Decide whether a non-collided frame is received. @p link_rng is a
  /// stream keyed by the (unordered) node pair and re-seeded identically
  /// for every frame between them, so draws from it — shadowing — are
  /// *quasi-static per link* across a trial. @p frame_rng is keyed by
  /// (transmission, receiver): fresh randomness per frame (the reception
  /// draw, folding in @p loss_rate, the medium's distance-independent
  /// Bernoulli loss). For the deterministic reference both parameters
  /// alias the medium's shared sequential stream.
  virtual bool receives(double distance_m, double tx_range_m,
                        double loss_rate, common::Rng& link_rng,
                        common::Rng& frame_rng) const = 0;

  /// Physical-layer capture: does a frame whose sender (nominal range
  /// @p own_range_m) is @p own_distance_m from the receiver survive an
  /// overlapping interferer (range @p interferer_range_m) at
  /// @p interferer_distance_m? Must be a pure per-interferer predicate —
  /// the medium folds it over all interferers, so order cannot matter.
  virtual bool captured(double own_distance_m, double own_range_m,
                        double interferer_distance_m,
                        double interferer_range_m) const = 0;

  /// True for the unit-disk reference: reception draws consume the
  /// medium's shared sequential RNG stream in receiver order, preserving
  /// bit-identity with the pre-channel-layer medium. All other models
  /// use keyed per-link streams.
  virtual bool deterministic_reference() const { return false; }
};

/// Shared immutable handle; one instance may serve many trials.
using ChannelModelPtr = std::shared_ptr<const ChannelModel>;

/// Build the model named by `params.model`. Throws std::invalid_argument
/// on an unknown name, listing the registered ones.
ChannelModelPtr make_channel_model(const ChannelParams& params);

/// Names accepted by `make_channel_model`, sorted.
std::vector<std::string> channel_model_names();

}  // namespace dapes::sim
