// Shared broadcast wireless medium.
//
// Models the parts of IEEE 802.11b ad-hoc mode the evaluation depends on:
//   * range-based connectivity (paper sweeps WiFi range 20-100 m),
//   * serialization delay at a configurable data rate (paper: 11 Mbps),
//   * independent Bernoulli loss per receiver (paper: 10 %),
//   * collisions: two transmissions whose intervals overlap corrupt each
//     other at every receiver that is in range of both senders. This is
//     the hidden-terminal/same-slot mechanism PEBA mitigates.
//
// The sender learns whether its frame collided anywhere via the completion
// callback — an abstraction of detecting a collision through the absence
// of the expected response (the paper's peers detect collisions and then
// run PEBA). See DESIGN.md "Substitutions".
//
// Connectivity queries (delivery, neighbor sets, carrier sense, collision
// marking) go through a uniform spatial hash grid (cell size = radio
// range) rebuilt lazily against the mobility positions, so they touch
// only the cells around a node instead of every node. The grid is a pure
// candidate index — every candidate is re-checked with the exact
// `within_range` predicate — so outcomes are *identical* to the retained
// all-pairs reference (Params::brute_force), which the equivalence test
// suite asserts. See DESIGN.md "Spatial medium".
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/buffer.hpp"
#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "sim/mobility.hpp"
#include "sim/scheduler.hpp"
#include "sim/spatial_grid.hpp"

namespace dapes::sim {

using NodeId = uint32_t;

/// One frame on the air. The payload is opaque to the medium.
///
/// The payload is a ref-counted slice: the medium hands the *same* frame
/// to every in-range receiver, and receivers that decode it keep views
/// into this shared buffer instead of copying (see DESIGN.md "Wire &
/// buffer architecture").
struct Frame {
  NodeId sender = 0;
  common::BufferSlice payload;
  /// Upper-layer tag used only for statistics (e.g. "interest", "data",
  /// "hello"). Never interpreted by the medium.
  std::string kind;
};

using FramePtr = std::shared_ptr<const Frame>;

/// Aggregate medium statistics for one trial.
struct MediumStats {
  uint64_t transmissions = 0;   ///< frames put on the air
  uint64_t deliveries = 0;      ///< successful (frame, receiver) pairs
  uint64_t losses = 0;          ///< dropped by random loss
  uint64_t collision_drops = 0; ///< dropped because of a collision
  uint64_t collided_frames = 0; ///< frames that collided at >=1 receiver
  uint64_t bytes_sent = 0;

  /// Per-kind transmission counts (protocol overhead breakdown).
  std::unordered_map<std::string, uint64_t> tx_by_kind;
};

class Medium {
 public:
  struct Params {
    double range_m = 60.0;
    double data_rate_bps = 11e6;       // paper: 802.11b, 11 Mbps
    double loss_rate = 0.10;           // paper: 10 %
    Duration propagation = Duration::microseconds(1);
    /// Fixed per-frame overhead (preamble/MAC header), bytes.
    size_t frame_overhead_bytes = 34;
    /// Physical-layer capture: a frame survives an overlap when its
    /// sender is at most this fraction of the interferer's distance from
    /// the receiver (power advantage ~1/ratio^2). Set to 0 to disable
    /// capture (any overlap kills both frames).
    double capture_ratio = 0.7;
    /// Use the retained all-pairs reference implementation instead of
    /// the spatial grid. Outcomes are identical either way (the
    /// equivalence tests assert it) as long as the node set and range
    /// stay fixed while frames are in flight — see the set_range() and
    /// DESIGN.md "Spatial medium" notes on those two pins. The
    /// reference exists for the equivalence tests and for bench_scale's
    /// speedup baseline.
    bool brute_force = false;
  };

  /// Delivered frame + the receiving node.
  using ReceiveCallback = std::function<void(const FramePtr&, NodeId receiver)>;

  /// Outcome of one transmission, reported back to the sender. This
  /// abstracts the sender's ability to detect collisions from missing
  /// responses (paper §IV-F); `mostly_collided()` is the signal PEBA
  /// reacts to.
  struct TxReport {
    size_t receivers = 0;  ///< nodes in range at transmission time
    size_t collided = 0;   ///< receivers that saw a collision
    size_t lost = 0;       ///< receivers that dropped it to random loss
    size_t delivered = 0;  ///< receivers that got the frame

    bool mostly_collided() const {
      return receivers > 0 && collided * 2 > receivers;
    }
    bool collided_anywhere() const { return collided > 0; }
  };
  using SendCompleteCallback = std::function<void(const TxReport&)>;

  Medium(Scheduler& sched, Params params, common::Rng rng);

  /// Register a node. The medium does not own the mobility model.
  NodeId add_node(MobilityModel* mobility, ReceiveCallback on_receive);

  /// Put a frame on the air now. Serialization + propagation delay apply.
  void transmit(FramePtr frame, SendCompleteCallback on_complete = nullptr);

  /// Carrier sense: true if any in-flight transmission is audible at
  /// @p node right now.
  bool busy_for(NodeId node) const;

  /// Latest end time among transmissions audible at @p node (now() if idle).
  TimePoint busy_until(NodeId node) const;

  /// Airtime of a frame of @p payload_bytes including overhead.
  Duration frame_duration(size_t payload_bytes) const;

  Vec2 position_of(NodeId node) const;
  bool in_range(NodeId a, NodeId b) const;
  std::vector<NodeId> neighbors_of(NodeId node) const;
  /// Number of nodes in range of @p node (== neighbors_of(node).size(),
  /// without materializing the set) — the density query that
  /// density-adaptive logic and the scale.medium sweeps use on every
  /// tick.
  size_t degree_of(NodeId node) const;
  size_t node_count() const { return nodes_.size(); }

  const Params& params() const { return params_; }

  /// Change the radio range. In grid mode this re-indexes; it applies to
  /// subsequent transmissions (frames already in flight keep the receiver
  /// set captured at their start, matching their start-time range).
  void set_range(double range_m);

  const MediumStats& stats() const { return stats_; }
  MediumStats& stats() { return stats_; }

 private:
  struct NodeEntry {
    MobilityModel* mobility = nullptr;
    ReceiveCallback on_receive;
  };

  struct ActiveTx {
    uint64_t id = 0;
    FramePtr frame;
    Vec2 sender_pos;
    TimePoint start;
    TimePoint end;
    /// Positions of senders whose transmissions overlapped this one.
    std::vector<Vec2> collider_positions;
    /// Grid mode: the exact in-range receiver set (id, position) captured
    /// at start time — identical to what the reference recomputes at
    /// delivery time because position_at is a pure function of t.
    std::vector<std::pair<NodeId, Vec2>> receivers;
    SendCompleteCallback on_complete;
  };

  void deliver(uint64_t tx_id);
  void deliver_one(const ActiveTx& tx, NodeId receiver, Vec2 receiver_pos,
                   TxReport& report);

  /// Visit every node (except @p exclude) within radio range of @p center
  /// right now, as fn(id, position), in ascending id order in brute mode
  /// and unspecified order in grid mode. The single home of the
  /// "ensure grid, inflate by drift slack, re-check exactly" idiom that
  /// neighbors_of, degree_of and the transmit receiver capture share.
  template <typename Fn>
  void for_each_in_range(Vec2 center, NodeId exclude, Fn&& fn) const;

  /// Rebuild the lazy node grid if the cell size changed or nodes may
  /// have drifted more than one cell since the last build; afterwards
  /// `node_grid_slack()` bounds the residual drift.
  void ensure_node_grid() const;
  double node_grid_slack() const;
  void rebuild_tx_grid();

  Scheduler& sched_;
  Params params_;
  common::Rng rng_;
  std::vector<NodeEntry> nodes_;
  std::unordered_map<uint64_t, ActiveTx> active_;
  uint64_t next_tx_id_ = 1;
  MediumStats stats_;

  /// Lazy spatial index of node positions (grid mode). Entries hold the
  /// position at build time; queries inflate their radius by the drift
  /// bound max_speed * (now - build time) and re-check exactly.
  mutable DenseCellGrid node_grid_;
  mutable TimePoint node_grid_time_ = TimePoint::zero();
  mutable double node_grid_max_speed_ = 0.0;
  mutable double node_grid_hint_ = -1.0;
  mutable bool node_grid_valid_ = false;

  /// Spatial index of in-flight transmissions keyed by their (fixed)
  /// sender positions; maintained incrementally by transmit/deliver.
  SpatialHashGrid tx_grid_;
};

}  // namespace dapes::sim
