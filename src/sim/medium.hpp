/// @file
/// Shared broadcast wireless medium.
///
/// Models the parts of IEEE 802.11b ad-hoc mode the evaluation depends on:
///   * connectivity and reception through a pluggable `ChannelModel`
///     (unit-disk reference by default; log-distance path loss with
///     shadowing, reception curve, SIR capture and preamble airtime as
///     alternatives — see sim/channel.hpp),
///   * serialization delay at a configurable data rate (paper: 11 Mbps),
///   * independent Bernoulli loss per receiver (paper: 10 %),
///   * collisions: two transmissions whose intervals overlap corrupt each
///     other at every receiver that can hear both senders, unless the
///     channel model's capture rule lets the stronger frame survive. This
///     is the hidden-terminal/same-slot mechanism PEBA mitigates.
///
/// The sender learns whether its frame collided anywhere via the completion
/// callback — an abstraction of detecting a collision through the absence
/// of the expected response (the paper's peers detect collisions and then
/// run PEBA). See DESIGN.md "Substitutions".
///
/// Connectivity queries (delivery, neighbor sets, carrier sense, collision
/// marking) go through a uniform spatial hash grid rebuilt lazily against
/// the mobility positions, so they touch only the cells around a node
/// instead of every node. The grid is a pure candidate index — every
/// candidate is re-checked with the exact distance predicate — so outcomes
/// are *identical* to the retained all-pairs reference
/// (Params::brute_force), which the equivalence test suites assert. See
/// DESIGN.md "Spatial medium" and "Channel & PHY models".
///
/// With `Params::trial_threads >= 1` the medium runs its *phase-parallel
/// delivery engine*: frame deliveries landing on the same instant are
/// batch-claimed from the scheduler, their reception outcomes decided
/// serially in canonical order (preserving every shared-stream RNG draw),
/// and the per-receiver protocol fan-out is executed on a worker pool as
/// per-node task chains, grouped by spatial grid region, with all
/// scheduler effects staged in per-item mailboxes and merged in canonical
/// order. Results are bit-identical to the serial scheduler for any
/// thread count; the serial path (`trial_threads == 0`, the default)
/// stays the retained reference. See DESIGN.md "Parallel trial interior".
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include <atomic>

#include "common/buffer.hpp"
#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "sim/channel.hpp"
#include "sim/mobility.hpp"
#include "sim/parallel.hpp"
#include "sim/scheduler.hpp"
#include "sim/spatial_grid.hpp"

namespace dapes::sim {

/// Index of a node registered with the medium (dense, assigned by
/// `Medium::add_node` in registration order).
using NodeId = uint32_t;

/// One frame on the air. The payload is opaque to the medium.
///
/// The payload is a ref-counted slice: the medium hands the *same* frame
/// to every in-range receiver, and receivers that decode it keep views
/// into this shared buffer instead of copying (see DESIGN.md "Wire &
/// buffer architecture").
struct Frame {
  /// Transmitting node.
  NodeId sender = 0;
  /// Opaque wire bytes, shared by every receiver.
  common::BufferSlice payload;
  /// Upper-layer tag used only for statistics (e.g. "interest", "data",
  /// "hello"). Never interpreted by the medium.
  std::string kind;
};

/// Shared immutable frame handle (one allocation per broadcast).
using FramePtr = std::shared_ptr<const Frame>;

/// Hook invoked around frame delivery so an upper layer can pre-compute
/// per-frame work once per broadcast instead of once per receiver (the
/// verify-cache layer: one digest + MAC verdict per frame, served to all
/// N in-range receivers; see DESIGN.md "Crypto engine & verify cache").
///
/// Contract, designed so the serial and phase-parallel delivery paths
/// stay bit-identical:
///   * `stage` runs on the coordinator before any receiver callback of
///     the delivery (serial: per frame; parallel: once for the whole
///     same-instant batch). It must be free of observable side effects —
///     no cache writes, no trace events — so the differing stage timing
///     between the two paths cannot leak.
///   * `commit` runs on the coordinator once per transmission, in
///     canonical delivery order, immediately after the medium's deliver
///     trace event. This is the only place the hook may publish state or
///     emit events; any "was it already cached" flag must be decided
///     here, at commit time, not at stage time.
///   * `bind_worker`/`unbind_worker` bracket a fan-out chain on a worker
///     lane (properly nested per thread) so the hook can install
///     thread-local state — e.g. the active verify cache — for the
///     protocol callbacks running there. Must restore the previous
///     thread state on unbind: with trial_threads == 1 the "lane" is the
///     coordinator thread itself.
class DeliveryPrewarm {
 public:
  virtual ~DeliveryPrewarm() = default;
  /// Inspect the frames about to be delivered (side-effect-free).
  virtual void stage(const FramePtr* frames, size_t count) = 0;
  /// Publish staged state for @p frame (coordinator, canonical order).
  virtual void commit(const Frame& frame) = 0;
  /// Install thread-local state on a fan-out lane.
  virtual void bind_worker() = 0;
  /// Restore the lane's previous thread-local state.
  virtual void unbind_worker() = 0;
};

/// Aggregate medium statistics for one trial.
struct MediumStats {
  uint64_t transmissions = 0;   ///< frames put on the air
  uint64_t deliveries = 0;      ///< successful (frame, receiver) pairs
  uint64_t losses = 0;          ///< dropped by the channel or random loss
  uint64_t collision_drops = 0; ///< dropped because of a collision
  uint64_t collided_frames = 0; ///< frames that collided at >=1 receiver
  uint64_t bytes_sent = 0;      ///< payload + overhead bytes transmitted

  /// Per-kind transmission counts (protocol overhead breakdown).
  std::unordered_map<std::string, uint64_t> tx_by_kind;
};

/// The shared broadcast medium every node of a trial transmits on.
class Medium {
 public:
  /// Radio/channel configuration, fixed per trial (except `set_range`).
  struct Params {
    /// Nominal radio range (paper sweeps WiFi range 20-100 m). Per-node
    /// radios scale it via `set_node_range_factor` (hetero.radio).
    double range_m = 60.0;
    /// Channel bit rate (paper: 802.11b, 11 Mbps).
    double data_rate_bps = 11e6;
    /// Distance-independent Bernoulli loss per receiver (paper: 10 %).
    double loss_rate = 0.10;
    /// Fixed propagation delay added to every frame's airtime.
    Duration propagation = Duration::microseconds(1);
    /// Fixed per-frame overhead (preamble/MAC header), bytes.
    size_t frame_overhead_bytes = 34;
    /// Channel/PHY model (unit-disk reference by default) plus its
    /// parameters, including the legacy capture ratio. See
    /// sim/channel.hpp.
    ChannelParams channel;
    /// Use the retained all-pairs reference implementation instead of
    /// the spatial grid. Outcomes are identical either way (the
    /// equivalence tests assert it) as long as the node set, range and
    /// range factors stay fixed while frames are in flight — see the
    /// set_range() and DESIGN.md "Spatial medium" notes on those pins.
    /// The reference exists for the equivalence tests and for
    /// bench_scale's speedup baseline.
    bool brute_force = false;
    /// Lanes for the phase-parallel delivery engine (see the file
    /// comment). 0 (the default) keeps the plain serial delivery path;
    /// >= 1 enables the engine (1 = the staging code path on the calling
    /// thread, no extra threads). Metrics are bit-identical across all
    /// values. Requires grid mode: the engine relies on the receiver
    /// sets captured at transmit time, so combining it with
    /// `brute_force` throws std::invalid_argument.
    int trial_threads = 0;
  };

  /// Delivered frame + the receiving node.
  using ReceiveCallback = std::function<void(const FramePtr&, NodeId receiver)>;

  /// Outcome of one transmission, reported back to the sender. This
  /// abstracts the sender's ability to detect collisions from missing
  /// responses (paper §IV-F); `mostly_collided()` is the signal PEBA
  /// reacts to.
  struct TxReport {
    size_t receivers = 0;  ///< nodes in range at transmission time
    size_t collided = 0;   ///< receivers that saw a collision
    size_t lost = 0;       ///< receivers that dropped it to channel loss
    size_t delivered = 0;  ///< receivers that got the frame

    /// More than half of the in-range receivers saw a collision.
    bool mostly_collided() const {
      return receivers > 0 && collided * 2 > receivers;
    }
    /// At least one receiver saw a collision.
    bool collided_anywhere() const { return collided > 0; }
  };
  /// Invoked once when a transmission leaves the air.
  using SendCompleteCallback = std::function<void(const TxReport&)>;

  /// Builds the channel model from `params.channel` (throws
  /// std::invalid_argument on an unknown model name).
  Medium(Scheduler& sched, Params params, common::Rng rng);

  /// Register a node. The medium does not own the mobility model. With
  /// @p alive false the node is registered *latent*: invisible to every
  /// connectivity query (delivery, neighbor sets, carrier sense) until
  /// `revive_node` admits it — how the fault layer pre-creates
  /// flash-crowd peers so mid-trial admission never perturbs RNG
  /// streams. Never callable during a fan-out phase.
  NodeId add_node(MobilityModel* mobility, ReceiveCallback on_receive,
                  bool alive = true);

  /// Retire a node: it stops being delivered to, stops appearing in
  /// neighbor/carrier-sense/collision queries, and may no longer
  /// transmit (transmit throws). Frames it already put on the air keep
  /// delivering — they left the antenna. Idempotent. Never callable
  /// during a fan-out phase (membership is coordinator-only state), and
  /// the caller is expected to follow up with
  /// `Scheduler::cancel_for_node` so the node's pending timers cannot
  /// fire into torn-down state.
  void retire_node(NodeId node);

  /// (Re-)admit a latent or retired node. Frames already in flight at
  /// admission time are *not* delivered to it (it was not listening when
  /// they were sent — and the rule keeps grid and brute delivery
  /// identical, see DESIGN.md "Fault injection & open membership").
  /// Idempotent; never callable during a fan-out phase.
  void revive_node(NodeId node);

  /// True when @p node is currently a live member (registered alive, or
  /// revived and not since retired).
  bool node_alive(NodeId node) const { return nodes_.at(node).alive; }

  /// Number of currently live members (<= node_count()).
  size_t alive_count() const;

  /// Put a frame on the air now. Serialization + propagation delay apply.
  void transmit(FramePtr frame, SendCompleteCallback on_complete = nullptr);

  /// Carrier sense: true if any in-flight transmission is audible at
  /// @p node right now (audible = within the channel model's coverage of
  /// that transmission's sender).
  bool busy_for(NodeId node) const;

  /// Latest end time among transmissions audible at @p node (now() if idle).
  TimePoint busy_until(NodeId node) const;

  /// Airtime of a frame of @p payload_bytes including overhead, per the
  /// channel model's bitrate/airtime rule.
  Duration frame_duration(size_t payload_bytes) const;

  /// Conservative lookahead of the installed channel model: minimum
  /// propagation delay plus the model's preamble/airtime lower bound for
  /// an empty payload. No transmission started at or after time t can
  /// deliver before t + min_lookahead(), which is what makes a fan-out
  /// phase at time t safe: nothing a phase item schedules can re-enter
  /// the medium within the phase. Cached at model-install time.
  Duration min_lookahead() const { return min_lookahead_; }

  /// True when the phase-parallel delivery engine is active
  /// (params().trial_threads >= 1).
  bool parallel_delivery() const { return executor_ != nullptr; }

  /// Current position of @p node.
  Vec2 position_of(NodeId node) const;
  /// Nominal radio range of @p node (range_m x its range factor).
  double range_of(NodeId node) const;
  /// True when @p b is within @p a's nominal radio range right now.
  /// Directional under mixed-range radios: in_range(a,b) uses a's range.
  bool in_range(NodeId a, NodeId b) const;
  /// Nodes within @p node's nominal radio range, ascending id order.
  /// "Neighbor" means the reliable neighborhood (the nominal range where
  /// the unit-disk delivers and the log-distance curve is at 50 %), not
  /// the wider audibility coverage interference uses.
  std::vector<NodeId> neighbors_of(NodeId node) const;
  /// Number of nodes in range of @p node (== neighbors_of(node).size(),
  /// without materializing the set) — the density query that
  /// density-adaptive logic and the scale.medium sweeps use on every
  /// tick.
  size_t degree_of(NodeId node) const;
  /// Nodes registered so far.
  size_t node_count() const { return nodes_.size(); }

  /// The trial's radio/channel configuration.
  const Params& params() const { return params_; }
  /// The installed channel/PHY model.
  const ChannelModel& channel() const { return *channel_; }

  /// Change the nominal radio range. In grid mode this re-indexes; it
  /// applies to subsequent transmissions (frames already in flight keep
  /// the receiver set captured at their start, matching their start-time
  /// range).
  void set_range(double range_m);

  /// Scale one node's radio range to `range_m * factor` (> 0) —
  /// mixed-range radios (hetero.radio). Call during setup, before
  /// traffic: frames already in flight keep their start-time range.
  void set_node_range_factor(NodeId node, double factor);

  /// Install (or clear, with nullptr) the delivery prewarm hook. The
  /// medium does not own it; the caller keeps it alive while frames are
  /// in flight. Install during setup, before traffic.
  void set_prewarm(DeliveryPrewarm* prewarm) { prewarm_ = prewarm; }
  /// The installed delivery prewarm hook (null when none).
  DeliveryPrewarm* prewarm() const { return prewarm_; }

  /// Aggregate statistics since construction.
  const MediumStats& stats() const { return stats_; }
  /// Mutable statistics access (drivers reset per-phase counters).
  MediumStats& stats() { return stats_; }

 private:
  struct NodeEntry {
    MobilityModel* mobility = nullptr;
    ReceiveCallback on_receive;
    /// Per-node multiplier on params_.range_m (hetero.radio).
    double range_factor = 1.0;
    /// Live member? Retired/latent nodes stay registered (ids are dense
    /// and stable) but are invisible to every connectivity query.
    bool alive = true;
    /// When the node last became live (zero for setup-time members);
    /// delivery eligibility compares it against a frame's start time.
    TimePoint joined = TimePoint::zero();
  };

  /// One interferer of an in-flight transmission: enough state to decide
  /// audibility (coverage) and capture (nominal range) at any receiver.
  struct Collider {
    Vec2 pos;
    double coverage_m = 0.0;
    double range_m = 0.0;
  };

  struct ActiveTx {
    uint64_t id = 0;
    FramePtr frame;
    Vec2 sender_pos;
    /// Sender's nominal range at start time (capture rule input).
    double range_m = 0.0;
    /// Channel-model audibility cutoff at start time.
    double coverage_m = 0.0;
    TimePoint start;
    TimePoint end;
    /// Transmissions that overlapped this one.
    std::vector<Collider> colliders;
    /// Grid mode: the exact in-coverage receiver set (id, position)
    /// captured at start time — identical to what the reference recomputes
    /// at delivery time because position_at is a pure function of t.
    std::vector<std::pair<NodeId, Vec2>> receivers;
    SendCompleteCallback on_complete;
  };

  void deliver(uint64_t tx_id);
  void deliver_one(const ActiveTx& tx, NodeId receiver, Vec2 receiver_pos,
                   TxReport& report);

  /// The decision half of deliver_one: collision fold, reception draw,
  /// stats and report bookkeeping — everything except invoking the
  /// receiver's callback. Returns true when the frame was delivered (the
  /// callback should fire). Shared by the serial and parallel paths so
  /// the decision logic, and its shared-stream draw order, has one home.
  bool decide_one(const ActiveTx& tx, NodeId receiver, Vec2 receiver_pos,
                  TxReport& report);

  /// Membership half of the delivery predicate, evaluated identically by
  /// the grid and brute paths at delivery time: the receiver must be
  /// alive *now* and must have joined no later than the frame's start.
  /// (Eligible implies alive-at-start: a node dead at start and alive
  /// now must have revived after start, i.e. joined > start.) Checked
  /// before any stats or RNG draw, so with a fixed population it is
  /// vacuously true and draw streams are untouched.
  bool delivery_eligible(NodeId receiver, TimePoint tx_start) const {
    const NodeEntry& e = nodes_[receiver];
    return e.alive && e.joined <= tx_start;
  }

  /// Parallel-mode delivery: claim every same-instant delivery batched
  /// behind @p first_id, decide all outcomes serially in canonical order,
  /// then fan the receiver/completion callbacks out over the worker pool
  /// as per-node chains inside a scheduler phase.
  void deliver_batch(uint64_t first_id);

  /// Throw if called during a fan-out phase: medium state (carrier
  /// sense, positions, neighbor sets, transmit) is coordinator-only; the
  /// protocol receive path must never touch it. Makes a cross-lane read
  /// a loud failure instead of a data race.
  void check_not_in_phase(const char* what) const;

  /// Channel-model coverage of the largest radio in the trial: the upper
  /// bound used for carrier-sense queries and collision pruning.
  double max_coverage_m() const;

  /// Visit every node (except @p exclude) within @p radius_m of
  /// @p center right now, as fn(id, position), in ascending id order in
  /// brute mode and unspecified order in grid mode. The single home of
  /// the "ensure grid, inflate by drift slack, re-check exactly" idiom
  /// that neighbors_of, degree_of and the transmit receiver capture
  /// share.
  template <typename Fn>
  void for_each_in_range(Vec2 center, double radius_m, NodeId exclude,
                         Fn&& fn) const;

  /// Rebuild the lazy node grid if the cell size changed or nodes may
  /// have drifted more than one cell since the last build; afterwards
  /// `node_grid_slack()` bounds the residual drift.
  void ensure_node_grid() const;
  double node_grid_slack() const;
  void rebuild_tx_grid();

  Scheduler& sched_;
  Params params_;
  ChannelModelPtr channel_;
  common::Rng rng_;
  std::vector<NodeEntry> nodes_;
  /// Largest range factor across nodes (1.0 until hetero radios appear).
  double max_range_factor_ = 1.0;
  /// True once any node's range factor differs from 1.0; enables the
  /// per-transmission coverage lookups the uniform case can skip.
  bool hetero_ranges_ = false;
  std::unordered_map<uint64_t, ActiveTx> active_;
  uint64_t next_tx_id_ = 1;
  MediumStats stats_;

  /// Cached conservative lookahead (propagation + empty-frame airtime),
  /// computed once at model-install time instead of per transmission.
  Duration min_lookahead_ = Duration::microseconds(0);
  /// Worker pool of the phase-parallel delivery engine; null in serial
  /// mode (trial_threads == 0).
  std::unique_ptr<ParallelExecutor> executor_;
  /// True while fan-out items run; arms the draw guard on rng_ (no
  /// shared-stream draws on the parallel path) and backs
  /// check_not_in_phase.
  std::atomic<bool> fanout_active_{false};
  /// Reused claim buffer for deliver_batch.
  std::vector<uint64_t> claim_buf_;
  /// Delivery prewarm hook (verify-cache layer); null when disabled.
  DeliveryPrewarm* prewarm_ = nullptr;
  /// Reused frame buffer for deliver_batch's stage pre-pass.
  std::vector<FramePtr> stage_buf_;

  /// Lazy spatial index of node positions (grid mode). Entries hold the
  /// position at build time; queries inflate their radius by the drift
  /// bound max_speed * (now - build time) and re-check exactly.
  mutable DenseCellGrid node_grid_;
  mutable TimePoint node_grid_time_ = TimePoint::zero();
  mutable double node_grid_max_speed_ = 0.0;
  mutable double node_grid_hint_ = -1.0;
  mutable bool node_grid_valid_ = false;

  /// Spatial index of in-flight transmissions keyed by their (fixed)
  /// sender positions; maintained incrementally by transmit/deliver.
  SpatialHashGrid tx_grid_;
};

}  // namespace dapes::sim
