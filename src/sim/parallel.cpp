#include "sim/parallel.hpp"

#include <algorithm>

namespace dapes::sim {

ParallelExecutor::ParallelExecutor(int lanes)
    : lanes_(static_cast<size_t>(std::max(1, lanes))) {
  threads_.reserve(lanes_ - 1);
  for (size_t i = 1; i < lanes_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ParallelExecutor::~ParallelExecutor() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ParallelExecutor::drain(const std::function<void(size_t)>& fn,
                             size_t count) {
  std::unique_lock<std::mutex> lk(mu_);
  while (next_index_ < count) {
    const size_t i = next_index_++;
    ++in_flight_;
    lk.unlock();
    std::exception_ptr err;
    try {
      fn(i);
    } catch (...) {
      err = std::current_exception();
    }
    lk.lock();
    if (err && !first_error_) first_error_ = err;
    --in_flight_;
  }
  if (in_flight_ == 0) done_cv_.notify_all();
}

void ParallelExecutor::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [this] {
      return shutdown_ || (job_ != nullptr && next_index_ < job_count_);
    });
    if (shutdown_) return;
    const std::function<void(size_t)>& fn = *job_;
    const size_t count = job_count_;
    lk.unlock();
    drain(fn, count);
    lk.lock();
  }
}

void ParallelExecutor::run(size_t count,
                           const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (lanes_ == 1 || count == 1) {
    // Inline: same task order a one-lane pool would produce, no
    // synchronization. Exceptions propagate directly.
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &fn;
    job_count_ = count;
    next_index_ = 0;
    in_flight_ = 0;
    first_error_ = nullptr;
  }
  work_cv_.notify_all();
  drain(fn, count);  // the caller is lane 0
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [this] {
    return next_index_ >= job_count_ && in_flight_ == 0;
  });
  job_ = nullptr;
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lk.unlock();
    std::rethrow_exception(err);
  }
}

}  // namespace dapes::sim
