/// @file
/// Uniform spatial indexes (cell size = radio range) so the wireless
/// medium can answer "who is near this point?" by visiting the handful of
/// cells a query disc overlaps instead of scanning every node. Both
/// structures are *candidate* indexes: callers always re-check candidates
/// with the exact `within_range` predicate, so pruning never changes
/// outcomes — it only skips pairs that provably cannot satisfy the
/// predicate (see DESIGN.md "Spatial medium").
///
/// Two variants for the medium's two populations:
///   * DenseCellGrid — rebuilt in bulk from all node positions; CSR layout
///     over the positions' bounding box, so a cell probe is pure array
///     arithmetic. This sits on the hottest path (per-tick density and
///     neighbor queries).
///   * SpatialHashGrid — incremental insert/erase keyed by packed cell
///     coordinates in a hash map; used for the small, churning set of
///     in-flight transmissions, where positions arrive one at a time and
///     can lie anywhere.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/geometry.hpp"

namespace dapes::sim {

/// Bulk-rebuilt CSR cell grid over the node positions (see file comment).
class DenseCellGrid {
 public:
  /// Entries indexed by position (entry id i = positions[i]). The cell
  /// size is at least `cell_size_hint` (the radio range), enlarged when
  /// the bounding box is so large relative to the hint that the cell
  /// count would exceed ~4x the entry count — the grid serves arbitrary
  /// geometry (scripted waypoints can wander anywhere) in bounded memory.
  void build(const std::vector<Vec2>& positions, double cell_size_hint) {
    size_ = positions.size();
    if (positions.empty()) {
      entries_.clear();
      cell_start_.assign(1, 0);
      nx_ = ny_ = 0;
      cell_ = cell_size_hint > 1e-9 ? cell_size_hint : 1e-9;
      origin_ = Vec2{};
      return;
    }
    origin_ = positions[0];
    Vec2 hi = positions[0];
    for (const Vec2& p : positions) {
      origin_.x = std::min(origin_.x, p.x);
      origin_.y = std::min(origin_.y, p.y);
      hi.x = std::max(hi.x, p.x);
      hi.y = std::max(hi.y, p.y);
    }
    cell_ = cell_size_hint > 1e-9 ? cell_size_hint : 1e-9;
    const size_t max_cells = 4 * positions.size() + 64;
    auto dims = [&] {
      nx_ = static_cast<int64_t>((hi.x - origin_.x) / cell_) + 1;
      ny_ = static_cast<int64_t>((hi.y - origin_.y) / cell_) + 1;
    };
    dims();
    while (static_cast<size_t>(nx_) * static_cast<size_t>(ny_) > max_cells) {
      cell_ *= 2.0;
      dims();
    }

    // CSR fill: count per cell, prefix-sum, scatter.
    const size_t cells = static_cast<size_t>(nx_) * static_cast<size_t>(ny_);
    cell_start_.assign(cells + 1, 0);
    std::vector<uint32_t> cell_of(positions.size());
    for (size_t i = 0; i < positions.size(); ++i) {
      cell_of[i] = static_cast<uint32_t>(cell_index(positions[i]));
      ++cell_start_[cell_of[i] + 1];
    }
    for (size_t c = 1; c <= cells; ++c) cell_start_[c] += cell_start_[c - 1];
    entries_.resize(positions.size());
    std::vector<uint32_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
    for (size_t i = 0; i < positions.size(); ++i) {
      entries_[cursor[cell_of[i]]++] = {static_cast<uint32_t>(i),
                                        positions[i]};
    }
  }

  /// Entries indexed at the last build().
  size_t size() const { return size_; }
  /// Effective cell size after the bounded-memory enlargement.
  double cell_size() const { return cell_; }

  /// Visit every entry in the cells the disc (center, radius) overlaps.
  /// Candidates, not matches: the caller applies the exact predicate.
  template <typename Fn>
  void for_each_candidate(Vec2 center, double radius, Fn&& fn) const {
    if (entries_.empty() || radius < 0) return;
    const int64_t cx0 = std::max<int64_t>(coord_x(center.x - radius), 0);
    const int64_t cx1 = std::min<int64_t>(coord_x(center.x + radius), nx_ - 1);
    const int64_t cy0 = std::max<int64_t>(coord_y(center.y - radius), 0);
    const int64_t cy1 = std::min<int64_t>(coord_y(center.y + radius), ny_ - 1);
    for (int64_t cy = cy0; cy <= cy1; ++cy) {
      for (int64_t cx = cx0; cx <= cx1; ++cx) {
        const size_t c = static_cast<size_t>(cy * nx_ + cx);
        for (uint32_t i = cell_start_[c]; i < cell_start_[c + 1]; ++i) {
          fn(entries_[i].first, entries_[i].second);
        }
      }
    }
  }

 private:
  int64_t coord_x(double x) const {
    return static_cast<int64_t>(std::floor((x - origin_.x) / cell_));
  }
  int64_t coord_y(double y) const {
    return static_cast<int64_t>(std::floor((y - origin_.y) / cell_));
  }
  size_t cell_index(Vec2 p) const {
    return static_cast<size_t>(coord_y(p.y) * nx_ + coord_x(p.x));
  }

  double cell_ = 1.0;
  Vec2 origin_{};
  int64_t nx_ = 0;
  int64_t ny_ = 0;
  size_t size_ = 0;
  std::vector<uint32_t> cell_start_;                 // CSR offsets
  std::vector<std::pair<uint32_t, Vec2>> entries_;   // (id, position)
};

/// Incremental hash-map cell grid for churning entry sets (see file
/// comment).
class SpatialHashGrid {
 public:
  /// An empty grid with the given cell size (clamped to >= 1e-9).
  explicit SpatialHashGrid(double cell_size = 1.0) {
    set_cell_size(cell_size);
  }

  /// Current cell size.
  double cell_size() const { return cell_; }

  /// Changing the cell size clears the grid; re-insert afterwards.
  void set_cell_size(double cell_size) {
    cell_ = cell_size > 1e-9 ? cell_size : 1e-9;
    clear();
  }

  /// Drop every entry.
  void clear() {
    cells_.clear();
    size_ = 0;
  }

  /// Entries currently stored.
  size_t size() const { return size_; }

  /// Add an entry at @p pos (ids need not be unique across positions).
  void insert(uint64_t id, Vec2 pos) {
    cells_[key_of(pos)].push_back({id, pos});
    ++size_;
  }

  /// Remove one entry previously inserted with exactly this (id, pos).
  void erase(uint64_t id, Vec2 pos) {
    auto it = cells_.find(key_of(pos));
    if (it == cells_.end()) return;
    auto& bucket = it->second;
    for (size_t i = 0; i < bucket.size(); ++i) {
      if (bucket[i].first == id) {
        bucket[i] = bucket.back();
        bucket.pop_back();
        --size_;
        if (bucket.empty()) cells_.erase(it);
        return;
      }
    }
  }

  /// Visit every entry in the cells the disc (center, radius) overlaps.
  /// Candidates, not matches: the caller applies the exact predicate.
  template <typename Fn>
  void for_each_candidate(Vec2 center, double radius, Fn&& fn) const {
    any_candidate(center, radius, [&fn](uint64_t id, Vec2 pos) {
      fn(id, pos);
      return false;
    });
  }

  /// Like for_each_candidate, but stops as soon as fn returns true —
  /// for existence queries (carrier sense) where the first match
  /// decides the answer. Returns whether any fn call returned true.
  template <typename Fn>
  bool any_candidate(Vec2 center, double radius, Fn&& fn) const {
    if (cells_.empty() || radius < 0) return false;
    const int64_t cx0 = coord(center.x - radius);
    const int64_t cx1 = coord(center.x + radius);
    const int64_t cy0 = coord(center.y - radius);
    const int64_t cy1 = coord(center.y + radius);
    for (int64_t cy = cy0; cy <= cy1; ++cy) {
      for (int64_t cx = cx0; cx <= cx1; ++cx) {
        auto it = cells_.find(pack(cx, cy));
        if (it == cells_.end()) continue;
        for (const auto& [id, pos] : it->second) {
          if (fn(id, pos)) return true;
        }
      }
    }
    return false;
  }

 private:
  int64_t coord(double v) const {
    return static_cast<int64_t>(std::floor(v / cell_));
  }

  static uint64_t pack(int64_t cx, int64_t cy) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(cx)) << 32) |
           static_cast<uint64_t>(static_cast<uint32_t>(cy));
  }

  uint64_t key_of(Vec2 pos) const { return pack(coord(pos.x), coord(pos.y)); }

  double cell_ = 1.0;
  std::unordered_map<uint64_t, std::vector<std::pair<uint64_t, Vec2>>> cells_;
  size_t size_ = 0;
};

}  // namespace dapes::sim
