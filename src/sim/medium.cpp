#include "sim/medium.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "trace/trace.hpp"

namespace dapes::sim {

namespace {

/// Two senders can only corrupt each other at a common receiver if that
/// receiver hears both, i.e. they are within the sum of their coverage
/// radii of each other (triangle inequality); the slack absorbs
/// floating-point rounding in the squared-distance predicate so the
/// pruned index can never drop a pair the reference would mark.
constexpr double kCollisionSlack = 1e-6;

/// Mirror of SpatialHashGrid's cell-size clamp, for staleness checks.
double cell_for(double range_m) { return range_m > 1e-9 ? range_m : 1e-9; }

}  // namespace

Medium::Medium(Scheduler& sched, Params params, common::Rng rng)
    : sched_(sched),
      params_(params),
      channel_(make_channel_model(params.channel)),
      rng_(rng) {
  tx_grid_.set_cell_size(cell_for(params_.range_m));
  // Cache the conservative lookahead once per model install: the airtime
  // floor and propagation are fixed for the trial, so recomputing them
  // per transmission would be pure waste.
  min_lookahead_ =
      channel_->min_airtime(params_.frame_overhead_bytes,
                            params_.data_rate_bps) +
      params_.propagation;
  if (params_.trial_threads >= 1) {
    if (params_.brute_force) {
      throw std::invalid_argument(
          "Medium: trial_threads requires grid mode (brute_force delivery "
          "recomputes receiver sets lazily and stays serial)");
    }
    executor_ = std::make_unique<ParallelExecutor>(params_.trial_threads);
    // Enforce, not just document, that the parallel path never consumes
    // the medium's shared sequential stream during concurrent fan-out.
    rng_.set_draw_guard(&fanout_active_);
  }
}

void Medium::check_not_in_phase(const char* what) const {
  if (fanout_active_.load(std::memory_order_relaxed)) {
    throw std::logic_error(std::string("Medium::") + what +
                           ": medium access during a fan-out phase "
                           "(receive-path code must stay node-local)");
  }
}

NodeId Medium::add_node(MobilityModel* mobility, ReceiveCallback on_receive,
                        bool alive) {
  // Same loud guard as transmit/position reads: the fan-out lanes index
  // nodes_ concurrently, so membership may only change on the coordinator
  // between phases.
  check_not_in_phase("add_node");
  if (mobility == nullptr) {
    throw std::invalid_argument("Medium::add_node: null mobility");
  }
  NodeEntry entry{mobility, std::move(on_receive), 1.0};
  entry.alive = alive;
  entry.joined = sched_.now();
  nodes_.push_back(std::move(entry));
  const NodeId id = static_cast<NodeId>(nodes_.size() - 1);
  if (alive) {
    DAPES_TRACE_EVENT(trace::EventType::kNodeJoin, id, /*revive=*/0);
  }
  return id;
}

void Medium::retire_node(NodeId node) {
  check_not_in_phase("retire_node");
  NodeEntry& entry = nodes_.at(node);
  if (!entry.alive) return;
  entry.alive = false;
  // No grid surgery needed: the node grid is a candidate index and every
  // query re-checks the exact predicate, which now rejects this node.
  DAPES_TRACE_EVENT(trace::EventType::kNodeLeave, node);
}

void Medium::revive_node(NodeId node) {
  check_not_in_phase("revive_node");
  NodeEntry& entry = nodes_.at(node);
  if (entry.alive) return;
  entry.alive = true;
  entry.joined = sched_.now();
  DAPES_TRACE_EVENT(trace::EventType::kNodeJoin, node, /*revive=*/1);
}

size_t Medium::alive_count() const {
  size_t count = 0;
  for (const NodeEntry& entry : nodes_) {
    if (entry.alive) ++count;
  }
  return count;
}

void Medium::set_node_range_factor(NodeId node, double factor) {
  if (!(factor > 0.0)) {
    throw std::invalid_argument("Medium::set_node_range_factor: factor <= 0");
  }
  nodes_.at(node).range_factor = factor;
  max_range_factor_ = 1.0;
  hetero_ranges_ = false;
  for (const NodeEntry& entry : nodes_) {
    max_range_factor_ = std::max(max_range_factor_, entry.range_factor);
    if (entry.range_factor != 1.0) hetero_ranges_ = true;
  }
}

Duration Medium::frame_duration(size_t payload_bytes) const {
  return channel_->airtime(payload_bytes + params_.frame_overhead_bytes,
                           params_.data_rate_bps);
}

Vec2 Medium::position_of(NodeId node) const {
  // Mobility models materialize legs lazily, so even this read mutates.
  check_not_in_phase("position_of");
  return nodes_.at(node).mobility->position_at(sched_.now());
}

double Medium::range_of(NodeId node) const {
  return params_.range_m * nodes_.at(node).range_factor;
}

double Medium::max_coverage_m() const {
  return channel_->coverage_m(params_.range_m * max_range_factor_);
}

bool Medium::in_range(NodeId a, NodeId b) const {
  return within_range(position_of(a), position_of(b), range_of(a));
}

void Medium::set_range(double range_m) {
  params_.range_m = range_m;
  node_grid_valid_ = false;
  if (!params_.brute_force) rebuild_tx_grid();
}

void Medium::rebuild_tx_grid() {
  tx_grid_.set_cell_size(cell_for(params_.range_m));
  for (const auto& [id, tx] : active_) tx_grid_.insert(id, tx.sender_pos);
}

void Medium::ensure_node_grid() const {
  const TimePoint now = sched_.now();
  bool fresh = node_grid_valid_ &&
               node_grid_hint_ == cell_for(params_.range_m) &&
               node_grid_.size() == nodes_.size();
  if (fresh) {
    // Rebuild once nodes may have drifted more than a quarter cell:
    // queries inflate their radius by that drift, and keeping it small
    // keeps every query inside a 3x3-4x4 cell window. Rebuilds stay
    // cheap — O(n) every range/(4*max_speed) simulated seconds.
    double dt = (now - node_grid_time_).to_seconds();
    if (dt > 0.0 && node_grid_max_speed_ * dt > 0.25 * params_.range_m) {
      fresh = false;
    }
  }
  if (fresh) return;

  std::vector<Vec2> positions;
  positions.reserve(nodes_.size());
  node_grid_max_speed_ = 0.0;
  for (const NodeEntry& node : nodes_) {
    positions.push_back(node.mobility->position_at(now));
    node_grid_max_speed_ =
        std::max(node_grid_max_speed_, node.mobility->max_speed());
  }
  node_grid_hint_ = cell_for(params_.range_m);
  node_grid_.build(positions, node_grid_hint_);
  node_grid_time_ = now;
  node_grid_valid_ = true;
}

double Medium::node_grid_slack() const {
  double dt = (sched_.now() - node_grid_time_).to_seconds();
  return dt > 0.0 ? node_grid_max_speed_ * dt : 0.0;
}

template <typename Fn>
void Medium::for_each_in_range(Vec2 center, double radius_m, NodeId exclude,
                               Fn&& fn) const {
  const TimePoint now = sched_.now();
  if (params_.brute_force) {
    for (NodeId other = 0; other < nodes_.size(); ++other) {
      if (other == exclude || !nodes_[other].alive) continue;
      Vec2 p = nodes_[other].mobility->position_at(now);
      if (within_range(center, p, radius_m)) fn(other, p);
    }
    return;
  }
  ensure_node_grid();
  node_grid_.for_each_candidate(
      center, radius_m + node_grid_slack(), [&](uint64_t id, Vec2) {
        NodeId other = static_cast<NodeId>(id);
        if (other == exclude || !nodes_[other].alive) return;
        Vec2 p = nodes_[other].mobility->position_at(now);
        if (within_range(center, p, radius_m)) fn(other, p);
      });
}

std::vector<NodeId> Medium::neighbors_of(NodeId node) const {
  std::vector<NodeId> out;
  for_each_in_range(position_of(node), range_of(node), node,
                    [&](NodeId other, Vec2) { out.push_back(other); });
  // The reference scans in ascending NodeId order; match it exactly
  // (already sorted in brute mode, so this is a no-op there).
  std::sort(out.begin(), out.end());
  return out;
}

size_t Medium::degree_of(NodeId node) const {
  size_t degree = 0;
  for_each_in_range(position_of(node), range_of(node), node,
                    [&](NodeId, Vec2) { ++degree; });
  return degree;
}

void Medium::transmit(FramePtr frame, SendCompleteCallback on_complete) {
  check_not_in_phase("transmit");
  if (!frame) {
    throw std::invalid_argument("Medium::transmit: null frame");
  }
  const NodeId sender = frame->sender;
  if (!nodes_.at(sender).alive) {
    // A retired node transmitting means its teardown missed a timer —
    // fail loudly rather than let a ghost keep jamming the channel.
    throw std::logic_error("Medium::transmit: sender " +
                           std::to_string(sender) + " is retired");
  }
  const TimePoint start = sched_.now();
  const Vec2 sender_pos = position_of(sender);

  // SIR-adaptive bitrate: the sender estimates its worst-case SIR at the
  // nominal-range edge (own margin 0 dB there) from the in-flight
  // transmissions audible at its own position and lets the channel model
  // pick a rate tier. An order-independent max fold over the full active
  // set, evaluated identically in grid and brute modes, from start-time
  // state only — so the chosen rate (and thus the end time) is a pure
  // function of the transmission's start state.
  double rate_bps = params_.data_rate_bps;
  if (channel_->adaptive_rate()) {
    double strongest = -std::numeric_limits<double>::infinity();
    for (const auto& [other_id, other] : active_) {
      if (!within_range(sender_pos, other.sender_pos, other.coverage_m)) {
        continue;
      }
      strongest = std::max(
          strongest, channel_->signal_margin_db(
                         distance(sender_pos, other.sender_pos),
                         other.range_m));
    }
    // No audible interferer -> SIR is +inf and the full rate wins.
    rate_bps = channel_->select_rate_bps(params_.data_rate_bps, -strongest);
  }
  const TimePoint end =
      start +
      channel_->airtime(frame->payload.size() + params_.frame_overhead_bytes,
                        rate_bps) +
      params_.propagation;

  ++stats_.transmissions;
  stats_.bytes_sent += frame->payload.size() + params_.frame_overhead_bytes;
  ++stats_.tx_by_kind[frame->kind];

  uint64_t id = next_tx_id_++;
  DAPES_TRACE_EVENT(trace::EventType::kMediumTx, sender, id,
                    frame->payload.size());
  ActiveTx tx;
  tx.id = id;
  tx.frame = frame;
  tx.sender_pos = sender_pos;
  tx.range_m = range_of(sender);
  tx.coverage_m = channel_->coverage_m(tx.range_m);
  tx.start = start;
  tx.end = end;
  tx.on_complete = std::move(on_complete);

  // Mutual collision marking with every transmission currently in flight.
  // Overlap is decided at start time: a new frame overlaps exactly the
  // set of frames still active now.
  if (params_.brute_force) {
    for (auto& [other_id, other] : active_) {
      other.colliders.push_back({tx.sender_pos, tx.coverage_m, tx.range_m});
      tx.colliders.push_back(
          {other.sender_pos, other.coverage_m, other.range_m});
    }
  } else {
    // Coverage-pruned marking: senders farther apart than the sum of the
    // two largest possible coverage radii share no audible receiver, so
    // skipping them cannot change any delivery outcome.
    const double prune = tx.coverage_m + max_coverage_m() + kCollisionSlack;
    tx_grid_.for_each_candidate(
        tx.sender_pos, prune, [&](uint64_t other_id, Vec2 other_pos) {
          if (!within_range(tx.sender_pos, other_pos, prune)) return;
          auto it = active_.find(other_id);
          it->second.colliders.push_back(
              {tx.sender_pos, tx.coverage_m, tx.range_m});
          tx.colliders.push_back(
              {other_pos, it->second.coverage_m, it->second.range_m});
        });

    // Capture the exact in-coverage receiver set now (start == now).
    // position_at is a pure function of t, so delivery reads the same
    // positions the reference recomputes at end time, in the same
    // ascending order.
    for_each_in_range(tx.sender_pos, tx.coverage_m, sender,
                      [&](NodeId receiver, Vec2 rp) {
                        tx.receivers.push_back({receiver, rp});
                      });
    std::sort(tx.receivers.begin(), tx.receivers.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }

  active_.emplace(id, std::move(tx));
  if (!params_.brute_force) tx_grid_.insert(id, sender_pos);
  if (executor_) {
    // Tag with the transmission id so a same-instant predecessor's
    // deliver_batch can claim this delivery into its batch.
    sched_.schedule_tagged(end, id, [this, id] { deliver_batch(id); });
  } else {
    // Also tagged in serial mode (inert for execution: the run loop
    // treats tagged entries like any other) so delivery events carry the
    // same no-fire-record rule in both engines and trace content stays
    // mode-invariant.
    sched_.schedule_tagged(end, id, [this, id] { deliver(id); });
  }
}

bool Medium::busy_for(NodeId node) const {
  check_not_in_phase("busy_for");
  Vec2 p = position_of(node);
  // Uniform radios: every active transmission has the same audibility
  // radius, so the per-transmission lookup can be skipped.
  const double uniform = channel_->coverage_m(params_.range_m);
  if (params_.brute_force) {
    for (const auto& [id, tx] : active_) {
      const double cov = hetero_ranges_ ? tx.coverage_m : uniform;
      if (within_range(p, tx.sender_pos, cov)) return true;
    }
    return false;
  }
  const double query = hetero_ranges_ ? max_coverage_m() : uniform;
  return tx_grid_.any_candidate(p, query, [&](uint64_t id, Vec2 pos) {
    const double cov =
        hetero_ranges_ ? active_.find(id)->second.coverage_m : uniform;
    return within_range(p, pos, cov);
  });
}

TimePoint Medium::busy_until(NodeId node) const {
  check_not_in_phase("busy_until");
  Vec2 p = position_of(node);
  TimePoint latest = sched_.now();
  const double uniform = channel_->coverage_m(params_.range_m);
  if (params_.brute_force) {
    for (const auto& [id, tx] : active_) {
      const double cov = hetero_ranges_ ? tx.coverage_m : uniform;
      if (within_range(p, tx.sender_pos, cov) && tx.end > latest) {
        latest = tx.end;
      }
    }
    return latest;
  }
  const double query = hetero_ranges_ ? max_coverage_m() : uniform;
  tx_grid_.for_each_candidate(p, query, [&](uint64_t id, Vec2 pos) {
    const ActiveTx& tx = active_.find(id)->second;
    const double cov = hetero_ranges_ ? tx.coverage_m : uniform;
    if (!within_range(p, pos, cov)) return;
    if (tx.end > latest) latest = tx.end;
  });
  return latest;
}

void Medium::deliver(uint64_t tx_id) {
  auto it = active_.find(tx_id);
  if (it == active_.end()) return;
  ActiveTx tx = std::move(it->second);
  active_.erase(it);
  if (!params_.brute_force) tx_grid_.erase(tx.id, tx.sender_pos);

  DAPES_TRACE_EVENT(trace::EventType::kMediumDeliver, tx.frame->sender,
                    tx.id);
  if (prewarm_) {
    prewarm_->stage(&tx.frame, 1);
    prewarm_->commit(*tx.frame);
  }
  TxReport report;
  if (params_.brute_force) {
    const NodeId sender = tx.frame->sender;
    for (NodeId receiver = 0; receiver < nodes_.size(); ++receiver) {
      if (receiver == sender) continue;
      if (!delivery_eligible(receiver, tx.start)) continue;
      Vec2 rp = nodes_[receiver].mobility->position_at(tx.start);
      if (!within_range(rp, tx.sender_pos, tx.coverage_m)) continue;
      deliver_one(tx, receiver, rp, report);
    }
  } else {
    // The captured set only holds nodes alive at start; eligibility
    // re-checks against membership changes since (see delivery_eligible
    // for why the two paths agree).
    for (const auto& [receiver, rp] : tx.receivers) {
      if (!delivery_eligible(receiver, tx.start)) continue;
      deliver_one(tx, receiver, rp, report);
    }
  }

  if (report.collided_anywhere()) ++stats_.collided_frames;
  // A sender retired mid-flight gets no completion callback: its radio
  // state was torn down, and resuming its CSMA chain would make a ghost
  // transmit (which the transmit guard turns into a throw).
  if (tx.on_complete && nodes_[tx.frame->sender].alive) {
    // Node context for the sender's completion handler, mirroring the
    // phase-parallel engine where the completion item runs in the
    // sender's chain; owner context so the chain's follow-up timers are
    // cancellable by node.
    trace::NodeScope scope(tx.frame->sender);
    Scheduler::OwnerScope own(sched_, tx.frame->sender);
    tx.on_complete(report);
  }
}

void Medium::deliver_batch(uint64_t first_id) {
  // Batch-claim every delivery landing on this exact instant: such
  // deliveries sit contiguously at the heap head in insertion order (any
  // event the batch itself schedules gets a later sequence number, and no
  // transmission it triggers can deliver before now + min_lookahead()),
  // so claiming the tagged run reproduces the serial execution order
  // exactly. One call — one "lock acquisition" worth of heap traffic.
  claim_buf_.clear();
  claim_buf_.push_back(first_id);
  sched_.claim_tagged(sched_.now(), claim_buf_);

  // Stage the whole batch up front so the prewarm can batch its work
  // (e.g. multi-buffer hashing) across every same-instant frame. Staging
  // is side-effect-free by contract; the observable commits happen below,
  // per transmission, in the same canonical order as the serial path.
  if (prewarm_) {
    stage_buf_.clear();
    for (uint64_t id : claim_buf_) {
      auto it = active_.find(id);
      if (it != active_.end()) stage_buf_.push_back(it->second.frame);
    }
    prewarm_->stage(stage_buf_.data(), stage_buf_.size());
  }

  // Decide every outcome serially, in canonical order: transmissions in
  // claim (= insertion) order, receivers in ascending id within each.
  // This keeps the unit-disk reference's shared-stream draws, the stats
  // and every TxReport bit-identical to the serial path. The deferred
  // work — one item per protocol callback — is recorded in that same
  // order.
  struct Item {
    NodeId node = 0;
    std::function<void()> run;
  };
  std::vector<Item> items;
  for (uint64_t id : claim_buf_) {
    auto it = active_.find(id);
    if (it == active_.end()) continue;
    ActiveTx tx = std::move(it->second);
    active_.erase(it);
    tx_grid_.erase(tx.id, tx.sender_pos);

    DAPES_TRACE_EVENT(trace::EventType::kMediumDeliver, tx.frame->sender,
                      tx.id);
    if (prewarm_) prewarm_->commit(*tx.frame);
    TxReport report;
    for (const auto& [receiver, rp] : tx.receivers) {
      if (!delivery_eligible(receiver, tx.start)) continue;
      if (decide_one(tx, receiver, rp, report) &&
          nodes_[receiver].on_receive) {
        const NodeId r = receiver;
        const FramePtr frame = tx.frame;
        items.push_back(
            {r, [this, frame, r] { nodes_[r].on_receive(frame, r); }});
      }
    }
    if (report.collided_anywhere()) ++stats_.collided_frames;
    // Same dead-sender completion skip as the serial path.
    if (tx.on_complete && nodes_[tx.frame->sender].alive) {
      items.push_back({tx.frame->sender,
                       [cb = std::move(tx.on_complete), report] {
                         cb(report);
                       }});
    }
  }
  if (items.empty()) return;

  // Group the items into per-node chains — protocol state is node-local
  // and unlocked, so one node's items must run in order on one lane —
  // and sort the chains by the node's spatial grid cell, so one worker's
  // consecutive chains touch neighboring nodes' state (the region
  // partitioning; placement affects locality only, never results).
  struct Chain {
    uint64_t region = 0;
    NodeId node = 0;
    std::vector<uint32_t> items;
  };
  std::vector<Chain> chains;
  std::unordered_map<NodeId, size_t> chain_of;
  for (size_t i = 0; i < items.size(); ++i) {
    auto [pos, fresh] = chain_of.try_emplace(items[i].node, chains.size());
    if (fresh) chains.push_back(Chain{0, items[i].node, {}});
    chains[pos->second].items.push_back(static_cast<uint32_t>(i));
  }
  const double cell = cell_for(params_.range_m);
  for (Chain& c : chains) {
    const Vec2 p = position_of(c.node);
    const auto cx = static_cast<int64_t>(std::floor(p.x / cell));
    const auto cy = static_cast<int64_t>(std::floor(p.y / cell));
    c.region = (static_cast<uint64_t>(cx) << 32) ^
               static_cast<uint64_t>(static_cast<uint32_t>(cy));
  }
  std::sort(chains.begin(), chains.end(),
            [](const Chain& a, const Chain& b) {
              if (a.region != b.region) return a.region < b.region;
              return a.node < b.node;
            });

  // Fan out. Every scheduler effect of an item is staged in its slot
  // mailbox; end_phase merges them in item order, which makes the heap —
  // sequence numbers included — bit-identical to serial execution for
  // any lane count. The armed guards turn a stray medium access or
  // shared-stream draw inside the phase into an exception.
  sched_.begin_phase(items.size());
  fanout_active_.store(true, std::memory_order_relaxed);
  // Worker threads have no tracer installed; propagate this trial's and
  // enter the chain node's context so every emission inside the phase
  // lands in that node's slot — the same slot the serial engine's
  // NodeScope in deliver_one / the completion path would pick.
  trace::Tracer* tracer = trace::active();
  try {
    executor_->run(chains.size(), [&](size_t ci) {
      trace::TrialScope trace_trial(tracer);
      trace::NodeScope trace_node(chains[ci].node);
      // Owner context for the whole chain (all items belong to one
      // node), mirroring the serial path's per-callback OwnerScope:
      // staged schedule ops capture it so end_phase re-applies it.
      Scheduler::OwnerScope own(sched_, chains[ci].node);
      // Give the protocol callbacks on this lane the prewarm's
      // thread-local state (the active verify cache); RAII so the lane's
      // previous state survives an item throwing.
      struct WorkerBind {
        DeliveryPrewarm* p;
        explicit WorkerBind(DeliveryPrewarm* prewarm) : p(prewarm) {
          if (p) p->bind_worker();
        }
        ~WorkerBind() {
          if (p) p->unbind_worker();
        }
      } bind(prewarm_);
      for (uint32_t slot : chains[ci].items) {
        sched_.bind_phase_slot(slot);
        items[slot].run();
      }
      sched_.unbind_phase_slot();
    });
  } catch (...) {
    fanout_active_.store(false, std::memory_order_relaxed);
    sched_.end_phase();
    throw;
  }
  fanout_active_.store(false, std::memory_order_relaxed);
  sched_.end_phase();
}

void Medium::deliver_one(const ActiveTx& tx, NodeId receiver,
                         Vec2 receiver_pos, TxReport& report) {
  if (decide_one(tx, receiver, receiver_pos, report) &&
      nodes_[receiver].on_receive) {
    // Node context for the protocol callback, mirroring the
    // phase-parallel engine's per-chain NodeScope; owner context so
    // receive-path timers are cancellable by node.
    trace::NodeScope scope(receiver);
    Scheduler::OwnerScope own(sched_, receiver);
    nodes_[receiver].on_receive(tx.frame, receiver);
  }
}

bool Medium::decide_one(const ActiveTx& tx, NodeId receiver,
                        Vec2 receiver_pos, TxReport& report) {
  ++report.receivers;

  // Collision: another overlapping transmission audible here corrupts
  // the frame unless the channel model's capture rule says our signal
  // dominates that interferer. The survive decision is a fold of a pure
  // per-interferer predicate, so collider order cannot matter.
  bool collided = false;
  uint64_t captured_interferers = 0;
  const double own_dist = distance(receiver_pos, tx.sender_pos);
  for (const Collider& c : tx.colliders) {
    if (!within_range(receiver_pos, c.pos, c.coverage_m)) continue;
    double interferer_dist = distance(receiver_pos, c.pos);
    if (channel_->captured(own_dist, tx.range_m, interferer_dist,
                           c.range_m)) {
      ++captured_interferers;
      continue;  // captured: our signal dominates this interferer
    }
    collided = true;
    break;
  }
  if (collided) {
    ++stats_.collision_drops;
    ++report.collided;
    DAPES_TRACE_EVENT(trace::EventType::kMediumDropCollision, receiver,
                      tx.id);
    return false;
  }
  if (captured_interferers > 0) {
    DAPES_TRACE_EVENT(trace::EventType::kMediumCapture, receiver, tx.id,
                      captured_interferers);
  }

  // Reception: the deterministic reference draws from the medium's
  // shared sequential stream in receiver order (bit-identical to the
  // pre-channel-layer medium). Every other model gets two keyed streams:
  // a per-frame one keyed by (link_seed, transmission, receiver), and a
  // per-link one re-seeded identically for every frame between the same
  // unordered node pair — what makes shadowing quasi-static per link.
  // Keyed draws make outcomes independent of enumeration order and
  // spatial indexing.
  RxContext rx;
  rx.distance_m = own_dist;
  rx.tx_range_m = tx.range_m;
  rx.loss_rate = params_.loss_rate;
  rx.sender = tx.frame->sender;
  rx.receiver = receiver;
  rx.tx_id = tx.id;
  rx.time_s = tx.start.to_seconds();
  rx.mid_x = 0.5 * (tx.sender_pos.x + receiver_pos.x);
  rx.mid_y = 0.5 * (tx.sender_pos.y + receiver_pos.y);
  bool delivered;
  if (channel_->deterministic_reference()) {
    delivered = channel_->receives(rx, rng_, rng_);
  } else {
    // Bursty-erasure state snapshot for the trace. decide_one always
    // runs on the coordinator in canonical order, so the emission is
    // mode-invariant; link_state is a pure query, but not free, so only
    // pay for it when a tracer is installed.
    if (trace::active() != nullptr) {
      const int state = channel_->link_state(rx);
      if (state >= 0) {
        DAPES_TRACE_EVENT(trace::EventType::kChannelState, receiver, tx.id,
                          static_cast<uint64_t>(state));
      }
    }
    common::Rng frame_rng(common::derive_seed(
        common::derive_seed(params_.channel.link_seed, tx.id), receiver));
    const NodeId lo = rx.sender < receiver ? rx.sender : receiver;
    const NodeId hi = rx.sender < receiver ? receiver : rx.sender;
    // Distinct stream family for the per-link draws ("shad" tag), so a
    // link stream can never collide with a frame stream.
    common::Rng link_rng(common::derive_seed(
        common::derive_seed(
            common::derive_seed(params_.channel.link_seed, 0x73686164ULL),
            lo),
        hi));
    delivered = channel_->receives(rx, link_rng, frame_rng);
  }
  if (!delivered) {
    ++stats_.losses;
    ++report.lost;
    DAPES_TRACE_EVENT(trace::EventType::kMediumDropLoss, receiver, tx.id);
    return false;
  }
  ++stats_.deliveries;
  ++report.delivered;
  DAPES_TRACE_EVENT(trace::EventType::kMediumRx, receiver, tx.id);
  return true;
}

}  // namespace dapes::sim
