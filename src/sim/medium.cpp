#include "sim/medium.hpp"

#include <algorithm>
#include <stdexcept>

namespace dapes::sim {

namespace {

/// Two senders can only corrupt each other at a common receiver if they
/// are within 2x range of each other (triangle inequality); the slack
/// absorbs floating-point rounding in the squared-distance predicate so
/// the pruned index can never drop a pair the reference would mark.
constexpr double kCollisionSlack = 1e-6;

/// Mirror of SpatialHashGrid's cell-size clamp, for staleness checks.
double cell_for(double range_m) { return range_m > 1e-9 ? range_m : 1e-9; }

}  // namespace

Medium::Medium(Scheduler& sched, Params params, common::Rng rng)
    : sched_(sched), params_(params), rng_(rng) {
  tx_grid_.set_cell_size(cell_for(params_.range_m));
}

NodeId Medium::add_node(MobilityModel* mobility, ReceiveCallback on_receive) {
  if (mobility == nullptr) {
    throw std::invalid_argument("Medium::add_node: null mobility");
  }
  nodes_.push_back(NodeEntry{mobility, std::move(on_receive)});
  return static_cast<NodeId>(nodes_.size() - 1);
}

Duration Medium::frame_duration(size_t payload_bytes) const {
  double bits =
      static_cast<double>(payload_bytes + params_.frame_overhead_bytes) * 8.0;
  double seconds = bits / params_.data_rate_bps;
  return Duration::seconds(seconds);
}

Vec2 Medium::position_of(NodeId node) const {
  return nodes_.at(node).mobility->position_at(sched_.now());
}

bool Medium::in_range(NodeId a, NodeId b) const {
  return within_range(position_of(a), position_of(b), params_.range_m);
}

void Medium::set_range(double range_m) {
  params_.range_m = range_m;
  node_grid_valid_ = false;
  if (!params_.brute_force) rebuild_tx_grid();
}

void Medium::rebuild_tx_grid() {
  tx_grid_.set_cell_size(cell_for(params_.range_m));
  for (const auto& [id, tx] : active_) tx_grid_.insert(id, tx.sender_pos);
}

void Medium::ensure_node_grid() const {
  const TimePoint now = sched_.now();
  bool fresh = node_grid_valid_ &&
               node_grid_hint_ == cell_for(params_.range_m) &&
               node_grid_.size() == nodes_.size();
  if (fresh) {
    // Rebuild once nodes may have drifted more than a quarter cell:
    // queries inflate their radius by that drift, and keeping it small
    // keeps every query inside a 3x3-4x4 cell window. Rebuilds stay
    // cheap — O(n) every range/(4*max_speed) simulated seconds.
    double dt = (now - node_grid_time_).to_seconds();
    if (dt > 0.0 && node_grid_max_speed_ * dt > 0.25 * params_.range_m) {
      fresh = false;
    }
  }
  if (fresh) return;

  std::vector<Vec2> positions;
  positions.reserve(nodes_.size());
  node_grid_max_speed_ = 0.0;
  for (const NodeEntry& node : nodes_) {
    positions.push_back(node.mobility->position_at(now));
    node_grid_max_speed_ =
        std::max(node_grid_max_speed_, node.mobility->max_speed());
  }
  node_grid_hint_ = cell_for(params_.range_m);
  node_grid_.build(positions, node_grid_hint_);
  node_grid_time_ = now;
  node_grid_valid_ = true;
}

double Medium::node_grid_slack() const {
  double dt = (sched_.now() - node_grid_time_).to_seconds();
  return dt > 0.0 ? node_grid_max_speed_ * dt : 0.0;
}

template <typename Fn>
void Medium::for_each_in_range(Vec2 center, NodeId exclude, Fn&& fn) const {
  const TimePoint now = sched_.now();
  if (params_.brute_force) {
    for (NodeId other = 0; other < nodes_.size(); ++other) {
      if (other == exclude) continue;
      Vec2 p = nodes_[other].mobility->position_at(now);
      if (within_range(center, p, params_.range_m)) fn(other, p);
    }
    return;
  }
  ensure_node_grid();
  node_grid_.for_each_candidate(
      center, params_.range_m + node_grid_slack(), [&](uint64_t id, Vec2) {
        NodeId other = static_cast<NodeId>(id);
        if (other == exclude) return;
        Vec2 p = nodes_[other].mobility->position_at(now);
        if (within_range(center, p, params_.range_m)) fn(other, p);
      });
}

std::vector<NodeId> Medium::neighbors_of(NodeId node) const {
  std::vector<NodeId> out;
  for_each_in_range(position_of(node), node,
                    [&](NodeId other, Vec2) { out.push_back(other); });
  // The reference scans in ascending NodeId order; match it exactly
  // (already sorted in brute mode, so this is a no-op there).
  std::sort(out.begin(), out.end());
  return out;
}

size_t Medium::degree_of(NodeId node) const {
  size_t degree = 0;
  for_each_in_range(position_of(node), node,
                    [&](NodeId, Vec2) { ++degree; });
  return degree;
}

void Medium::transmit(FramePtr frame, SendCompleteCallback on_complete) {
  if (!frame) {
    throw std::invalid_argument("Medium::transmit: null frame");
  }
  const NodeId sender = frame->sender;
  const TimePoint start = sched_.now();
  const TimePoint end =
      start + frame_duration(frame->payload.size()) + params_.propagation;

  ++stats_.transmissions;
  stats_.bytes_sent += frame->payload.size() + params_.frame_overhead_bytes;
  ++stats_.tx_by_kind[frame->kind];

  uint64_t id = next_tx_id_++;
  ActiveTx tx;
  tx.id = id;
  tx.frame = frame;
  tx.sender_pos = position_of(sender);
  tx.start = start;
  tx.end = end;
  tx.on_complete = std::move(on_complete);

  // Mutual collision marking with every transmission currently in flight.
  // Overlap is decided at start time: a new frame overlaps exactly the
  // set of frames still active now.
  if (params_.brute_force) {
    for (auto& [other_id, other] : active_) {
      other.collider_positions.push_back(tx.sender_pos);
      tx.collider_positions.push_back(other.sender_pos);
    }
  } else {
    // Range-pruned marking: senders farther apart than 2x range share no
    // receiver, so skipping them cannot change any delivery outcome.
    const double prune = 2.0 * params_.range_m + kCollisionSlack;
    tx_grid_.for_each_candidate(
        tx.sender_pos, prune, [&](uint64_t other_id, Vec2 other_pos) {
          if (!within_range(tx.sender_pos, other_pos, prune)) return;
          auto it = active_.find(other_id);
          it->second.collider_positions.push_back(tx.sender_pos);
          tx.collider_positions.push_back(other_pos);
        });

    // Capture the exact in-range receiver set now (start == now).
    // position_at is a pure function of t, so delivery reads the same
    // positions the reference recomputes at end time, in the same
    // ascending order.
    for_each_in_range(tx.sender_pos, sender, [&](NodeId receiver, Vec2 rp) {
      tx.receivers.push_back({receiver, rp});
    });
    std::sort(tx.receivers.begin(), tx.receivers.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }

  const Vec2 sender_pos = tx.sender_pos;
  active_.emplace(id, std::move(tx));
  if (!params_.brute_force) tx_grid_.insert(id, sender_pos);
  sched_.schedule_at(end, [this, id] { deliver(id); });
}

bool Medium::busy_for(NodeId node) const {
  Vec2 p = position_of(node);
  if (params_.brute_force) {
    for (const auto& [id, tx] : active_) {
      if (within_range(p, tx.sender_pos, params_.range_m)) return true;
    }
    return false;
  }
  return tx_grid_.any_candidate(p, params_.range_m, [&](uint64_t, Vec2 pos) {
    return within_range(p, pos, params_.range_m);
  });
}

TimePoint Medium::busy_until(NodeId node) const {
  Vec2 p = position_of(node);
  TimePoint latest = sched_.now();
  if (params_.brute_force) {
    for (const auto& [id, tx] : active_) {
      if (within_range(p, tx.sender_pos, params_.range_m) && tx.end > latest) {
        latest = tx.end;
      }
    }
    return latest;
  }
  tx_grid_.for_each_candidate(p, params_.range_m, [&](uint64_t id, Vec2 pos) {
    if (!within_range(p, pos, params_.range_m)) return;
    const TimePoint end = active_.find(id)->second.end;
    if (end > latest) latest = end;
  });
  return latest;
}

void Medium::deliver(uint64_t tx_id) {
  auto it = active_.find(tx_id);
  if (it == active_.end()) return;
  ActiveTx tx = std::move(it->second);
  active_.erase(it);
  if (!params_.brute_force) tx_grid_.erase(tx.id, tx.sender_pos);

  TxReport report;
  if (params_.brute_force) {
    const NodeId sender = tx.frame->sender;
    for (NodeId receiver = 0; receiver < nodes_.size(); ++receiver) {
      if (receiver == sender) continue;
      Vec2 rp = nodes_[receiver].mobility->position_at(tx.start);
      if (!within_range(rp, tx.sender_pos, params_.range_m)) continue;
      deliver_one(tx, receiver, rp, report);
    }
  } else {
    for (const auto& [receiver, rp] : tx.receivers) {
      deliver_one(tx, receiver, rp, report);
    }
  }

  if (report.collided_anywhere()) ++stats_.collided_frames;
  if (tx.on_complete) tx.on_complete(report);
}

void Medium::deliver_one(const ActiveTx& tx, NodeId receiver,
                         Vec2 receiver_pos, TxReport& report) {
  ++report.receivers;

  // Collision: another overlapping transmission audible here corrupts
  // the frame unless the sender is enough closer than the interferer
  // for physical-layer capture.
  bool collided = false;
  const double own_dist = distance(receiver_pos, tx.sender_pos);
  for (const Vec2& cp : tx.collider_positions) {
    if (!within_range(receiver_pos, cp, params_.range_m)) continue;
    double interferer_dist = distance(receiver_pos, cp);
    if (params_.capture_ratio > 0.0 &&
        own_dist <= params_.capture_ratio * interferer_dist) {
      continue;  // captured: our signal dominates this interferer
    }
    collided = true;
    break;
  }
  if (collided) {
    ++stats_.collision_drops;
    ++report.collided;
    return;
  }
  if (rng_.chance(params_.loss_rate)) {
    ++stats_.losses;
    ++report.lost;
    return;
  }
  ++stats_.deliveries;
  ++report.delivered;
  if (nodes_[receiver].on_receive) {
    nodes_[receiver].on_receive(tx.frame, receiver);
  }
}

}  // namespace dapes::sim
