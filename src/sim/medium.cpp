#include "sim/medium.hpp"

#include <algorithm>
#include <stdexcept>

namespace dapes::sim {

namespace {

/// Two senders can only corrupt each other at a common receiver if that
/// receiver hears both, i.e. they are within the sum of their coverage
/// radii of each other (triangle inequality); the slack absorbs
/// floating-point rounding in the squared-distance predicate so the
/// pruned index can never drop a pair the reference would mark.
constexpr double kCollisionSlack = 1e-6;

/// Mirror of SpatialHashGrid's cell-size clamp, for staleness checks.
double cell_for(double range_m) { return range_m > 1e-9 ? range_m : 1e-9; }

}  // namespace

Medium::Medium(Scheduler& sched, Params params, common::Rng rng)
    : sched_(sched),
      params_(params),
      channel_(make_channel_model(params.channel)),
      rng_(rng) {
  tx_grid_.set_cell_size(cell_for(params_.range_m));
}

NodeId Medium::add_node(MobilityModel* mobility, ReceiveCallback on_receive) {
  if (mobility == nullptr) {
    throw std::invalid_argument("Medium::add_node: null mobility");
  }
  nodes_.push_back(NodeEntry{mobility, std::move(on_receive), 1.0});
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Medium::set_node_range_factor(NodeId node, double factor) {
  if (!(factor > 0.0)) {
    throw std::invalid_argument("Medium::set_node_range_factor: factor <= 0");
  }
  nodes_.at(node).range_factor = factor;
  max_range_factor_ = 1.0;
  hetero_ranges_ = false;
  for (const NodeEntry& entry : nodes_) {
    max_range_factor_ = std::max(max_range_factor_, entry.range_factor);
    if (entry.range_factor != 1.0) hetero_ranges_ = true;
  }
}

Duration Medium::frame_duration(size_t payload_bytes) const {
  return channel_->airtime(payload_bytes + params_.frame_overhead_bytes,
                           params_.data_rate_bps);
}

Vec2 Medium::position_of(NodeId node) const {
  return nodes_.at(node).mobility->position_at(sched_.now());
}

double Medium::range_of(NodeId node) const {
  return params_.range_m * nodes_.at(node).range_factor;
}

double Medium::max_coverage_m() const {
  return channel_->coverage_m(params_.range_m * max_range_factor_);
}

bool Medium::in_range(NodeId a, NodeId b) const {
  return within_range(position_of(a), position_of(b), range_of(a));
}

void Medium::set_range(double range_m) {
  params_.range_m = range_m;
  node_grid_valid_ = false;
  if (!params_.brute_force) rebuild_tx_grid();
}

void Medium::rebuild_tx_grid() {
  tx_grid_.set_cell_size(cell_for(params_.range_m));
  for (const auto& [id, tx] : active_) tx_grid_.insert(id, tx.sender_pos);
}

void Medium::ensure_node_grid() const {
  const TimePoint now = sched_.now();
  bool fresh = node_grid_valid_ &&
               node_grid_hint_ == cell_for(params_.range_m) &&
               node_grid_.size() == nodes_.size();
  if (fresh) {
    // Rebuild once nodes may have drifted more than a quarter cell:
    // queries inflate their radius by that drift, and keeping it small
    // keeps every query inside a 3x3-4x4 cell window. Rebuilds stay
    // cheap — O(n) every range/(4*max_speed) simulated seconds.
    double dt = (now - node_grid_time_).to_seconds();
    if (dt > 0.0 && node_grid_max_speed_ * dt > 0.25 * params_.range_m) {
      fresh = false;
    }
  }
  if (fresh) return;

  std::vector<Vec2> positions;
  positions.reserve(nodes_.size());
  node_grid_max_speed_ = 0.0;
  for (const NodeEntry& node : nodes_) {
    positions.push_back(node.mobility->position_at(now));
    node_grid_max_speed_ =
        std::max(node_grid_max_speed_, node.mobility->max_speed());
  }
  node_grid_hint_ = cell_for(params_.range_m);
  node_grid_.build(positions, node_grid_hint_);
  node_grid_time_ = now;
  node_grid_valid_ = true;
}

double Medium::node_grid_slack() const {
  double dt = (sched_.now() - node_grid_time_).to_seconds();
  return dt > 0.0 ? node_grid_max_speed_ * dt : 0.0;
}

template <typename Fn>
void Medium::for_each_in_range(Vec2 center, double radius_m, NodeId exclude,
                               Fn&& fn) const {
  const TimePoint now = sched_.now();
  if (params_.brute_force) {
    for (NodeId other = 0; other < nodes_.size(); ++other) {
      if (other == exclude) continue;
      Vec2 p = nodes_[other].mobility->position_at(now);
      if (within_range(center, p, radius_m)) fn(other, p);
    }
    return;
  }
  ensure_node_grid();
  node_grid_.for_each_candidate(
      center, radius_m + node_grid_slack(), [&](uint64_t id, Vec2) {
        NodeId other = static_cast<NodeId>(id);
        if (other == exclude) return;
        Vec2 p = nodes_[other].mobility->position_at(now);
        if (within_range(center, p, radius_m)) fn(other, p);
      });
}

std::vector<NodeId> Medium::neighbors_of(NodeId node) const {
  std::vector<NodeId> out;
  for_each_in_range(position_of(node), range_of(node), node,
                    [&](NodeId other, Vec2) { out.push_back(other); });
  // The reference scans in ascending NodeId order; match it exactly
  // (already sorted in brute mode, so this is a no-op there).
  std::sort(out.begin(), out.end());
  return out;
}

size_t Medium::degree_of(NodeId node) const {
  size_t degree = 0;
  for_each_in_range(position_of(node), range_of(node), node,
                    [&](NodeId, Vec2) { ++degree; });
  return degree;
}

void Medium::transmit(FramePtr frame, SendCompleteCallback on_complete) {
  if (!frame) {
    throw std::invalid_argument("Medium::transmit: null frame");
  }
  const NodeId sender = frame->sender;
  const TimePoint start = sched_.now();
  const TimePoint end =
      start + frame_duration(frame->payload.size()) + params_.propagation;

  ++stats_.transmissions;
  stats_.bytes_sent += frame->payload.size() + params_.frame_overhead_bytes;
  ++stats_.tx_by_kind[frame->kind];

  uint64_t id = next_tx_id_++;
  ActiveTx tx;
  tx.id = id;
  tx.frame = frame;
  tx.sender_pos = position_of(sender);
  tx.range_m = range_of(sender);
  tx.coverage_m = channel_->coverage_m(tx.range_m);
  tx.start = start;
  tx.end = end;
  tx.on_complete = std::move(on_complete);

  // Mutual collision marking with every transmission currently in flight.
  // Overlap is decided at start time: a new frame overlaps exactly the
  // set of frames still active now.
  if (params_.brute_force) {
    for (auto& [other_id, other] : active_) {
      other.colliders.push_back({tx.sender_pos, tx.coverage_m, tx.range_m});
      tx.colliders.push_back(
          {other.sender_pos, other.coverage_m, other.range_m});
    }
  } else {
    // Coverage-pruned marking: senders farther apart than the sum of the
    // two largest possible coverage radii share no audible receiver, so
    // skipping them cannot change any delivery outcome.
    const double prune = tx.coverage_m + max_coverage_m() + kCollisionSlack;
    tx_grid_.for_each_candidate(
        tx.sender_pos, prune, [&](uint64_t other_id, Vec2 other_pos) {
          if (!within_range(tx.sender_pos, other_pos, prune)) return;
          auto it = active_.find(other_id);
          it->second.colliders.push_back(
              {tx.sender_pos, tx.coverage_m, tx.range_m});
          tx.colliders.push_back(
              {other_pos, it->second.coverage_m, it->second.range_m});
        });

    // Capture the exact in-coverage receiver set now (start == now).
    // position_at is a pure function of t, so delivery reads the same
    // positions the reference recomputes at end time, in the same
    // ascending order.
    for_each_in_range(tx.sender_pos, tx.coverage_m, sender,
                      [&](NodeId receiver, Vec2 rp) {
                        tx.receivers.push_back({receiver, rp});
                      });
    std::sort(tx.receivers.begin(), tx.receivers.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }

  const Vec2 sender_pos = tx.sender_pos;
  active_.emplace(id, std::move(tx));
  if (!params_.brute_force) tx_grid_.insert(id, sender_pos);
  sched_.schedule_at(end, [this, id] { deliver(id); });
}

bool Medium::busy_for(NodeId node) const {
  Vec2 p = position_of(node);
  // Uniform radios: every active transmission has the same audibility
  // radius, so the per-transmission lookup can be skipped.
  const double uniform = channel_->coverage_m(params_.range_m);
  if (params_.brute_force) {
    for (const auto& [id, tx] : active_) {
      const double cov = hetero_ranges_ ? tx.coverage_m : uniform;
      if (within_range(p, tx.sender_pos, cov)) return true;
    }
    return false;
  }
  const double query = hetero_ranges_ ? max_coverage_m() : uniform;
  return tx_grid_.any_candidate(p, query, [&](uint64_t id, Vec2 pos) {
    const double cov =
        hetero_ranges_ ? active_.find(id)->second.coverage_m : uniform;
    return within_range(p, pos, cov);
  });
}

TimePoint Medium::busy_until(NodeId node) const {
  Vec2 p = position_of(node);
  TimePoint latest = sched_.now();
  const double uniform = channel_->coverage_m(params_.range_m);
  if (params_.brute_force) {
    for (const auto& [id, tx] : active_) {
      const double cov = hetero_ranges_ ? tx.coverage_m : uniform;
      if (within_range(p, tx.sender_pos, cov) && tx.end > latest) {
        latest = tx.end;
      }
    }
    return latest;
  }
  const double query = hetero_ranges_ ? max_coverage_m() : uniform;
  tx_grid_.for_each_candidate(p, query, [&](uint64_t id, Vec2 pos) {
    const ActiveTx& tx = active_.find(id)->second;
    const double cov = hetero_ranges_ ? tx.coverage_m : uniform;
    if (!within_range(p, pos, cov)) return;
    if (tx.end > latest) latest = tx.end;
  });
  return latest;
}

void Medium::deliver(uint64_t tx_id) {
  auto it = active_.find(tx_id);
  if (it == active_.end()) return;
  ActiveTx tx = std::move(it->second);
  active_.erase(it);
  if (!params_.brute_force) tx_grid_.erase(tx.id, tx.sender_pos);

  TxReport report;
  if (params_.brute_force) {
    const NodeId sender = tx.frame->sender;
    for (NodeId receiver = 0; receiver < nodes_.size(); ++receiver) {
      if (receiver == sender) continue;
      Vec2 rp = nodes_[receiver].mobility->position_at(tx.start);
      if (!within_range(rp, tx.sender_pos, tx.coverage_m)) continue;
      deliver_one(tx, receiver, rp, report);
    }
  } else {
    for (const auto& [receiver, rp] : tx.receivers) {
      deliver_one(tx, receiver, rp, report);
    }
  }

  if (report.collided_anywhere()) ++stats_.collided_frames;
  if (tx.on_complete) tx.on_complete(report);
}

void Medium::deliver_one(const ActiveTx& tx, NodeId receiver,
                         Vec2 receiver_pos, TxReport& report) {
  ++report.receivers;

  // Collision: another overlapping transmission audible here corrupts
  // the frame unless the channel model's capture rule says our signal
  // dominates that interferer. The survive decision is a fold of a pure
  // per-interferer predicate, so collider order cannot matter.
  bool collided = false;
  const double own_dist = distance(receiver_pos, tx.sender_pos);
  for (const Collider& c : tx.colliders) {
    if (!within_range(receiver_pos, c.pos, c.coverage_m)) continue;
    double interferer_dist = distance(receiver_pos, c.pos);
    if (channel_->captured(own_dist, tx.range_m, interferer_dist,
                           c.range_m)) {
      continue;  // captured: our signal dominates this interferer
    }
    collided = true;
    break;
  }
  if (collided) {
    ++stats_.collision_drops;
    ++report.collided;
    return;
  }

  // Reception: the deterministic reference draws from the medium's
  // shared sequential stream in receiver order (bit-identical to the
  // pre-channel-layer medium). Every other model gets two keyed streams:
  // a per-frame one keyed by (link_seed, transmission, receiver), and a
  // per-link one re-seeded identically for every frame between the same
  // unordered node pair — what makes shadowing quasi-static per link.
  // Keyed draws make outcomes independent of enumeration order and
  // spatial indexing.
  bool delivered;
  if (channel_->deterministic_reference()) {
    delivered = channel_->receives(own_dist, tx.range_m, params_.loss_rate,
                                   rng_, rng_);
  } else {
    common::Rng frame_rng(common::derive_seed(
        common::derive_seed(params_.channel.link_seed, tx.id), receiver));
    const NodeId sender = tx.frame->sender;
    const NodeId lo = sender < receiver ? sender : receiver;
    const NodeId hi = sender < receiver ? receiver : sender;
    // Distinct stream family for the per-link draws ("shad" tag), so a
    // link stream can never collide with a frame stream.
    common::Rng link_rng(common::derive_seed(
        common::derive_seed(
            common::derive_seed(params_.channel.link_seed, 0x73686164ULL),
            lo),
        hi));
    delivered = channel_->receives(own_dist, tx.range_m, params_.loss_rate,
                                   link_rng, frame_rng);
  }
  if (!delivered) {
    ++stats_.losses;
    ++report.lost;
    return;
  }
  ++stats_.deliveries;
  ++report.delivered;
  if (nodes_[receiver].on_receive) {
    nodes_[receiver].on_receive(tx.frame, receiver);
  }
}

}  // namespace dapes::sim
