#include "sim/medium.hpp"

#include <stdexcept>

namespace dapes::sim {

Medium::Medium(Scheduler& sched, Params params, common::Rng rng)
    : sched_(sched), params_(params), rng_(rng) {}

NodeId Medium::add_node(MobilityModel* mobility, ReceiveCallback on_receive) {
  if (mobility == nullptr) {
    throw std::invalid_argument("Medium::add_node: null mobility");
  }
  nodes_.push_back(NodeEntry{mobility, std::move(on_receive)});
  return static_cast<NodeId>(nodes_.size() - 1);
}

Duration Medium::frame_duration(size_t payload_bytes) const {
  double bits =
      static_cast<double>(payload_bytes + params_.frame_overhead_bytes) * 8.0;
  double seconds = bits / params_.data_rate_bps;
  return Duration::seconds(seconds);
}

Vec2 Medium::position_of(NodeId node) const {
  return nodes_.at(node).mobility->position_at(sched_.now());
}

bool Medium::in_range(NodeId a, NodeId b) const {
  return within_range(position_of(a), position_of(b), params_.range_m);
}

std::vector<NodeId> Medium::neighbors_of(NodeId node) const {
  std::vector<NodeId> out;
  Vec2 p = position_of(node);
  for (NodeId other = 0; other < nodes_.size(); ++other) {
    if (other == node) continue;
    if (within_range(p, position_of(other), params_.range_m)) {
      out.push_back(other);
    }
  }
  return out;
}

void Medium::transmit(FramePtr frame, SendCompleteCallback on_complete) {
  if (!frame) {
    throw std::invalid_argument("Medium::transmit: null frame");
  }
  const NodeId sender = frame->sender;
  const TimePoint start = sched_.now();
  const TimePoint end =
      start + frame_duration(frame->payload.size()) + params_.propagation;

  ++stats_.transmissions;
  stats_.bytes_sent += frame->payload.size() + params_.frame_overhead_bytes;
  ++stats_.tx_by_kind[frame->kind];

  uint64_t id = next_tx_id_++;
  ActiveTx tx;
  tx.id = id;
  tx.frame = frame;
  tx.sender_pos = position_of(sender);
  tx.start = start;
  tx.end = end;
  tx.on_complete = std::move(on_complete);

  // Mutual collision marking with every transmission currently in flight.
  // Overlap is decided at start time: a new frame overlaps exactly the
  // set of frames still active now.
  for (auto& [other_id, other] : active_) {
    other.collider_positions.push_back(tx.sender_pos);
    tx.collider_positions.push_back(other.sender_pos);
  }

  active_.emplace(id, std::move(tx));
  sched_.schedule_at(end, [this, id] { deliver(id); });
}

bool Medium::busy_for(NodeId node) const {
  Vec2 p = position_of(node);
  for (const auto& [id, tx] : active_) {
    if (within_range(p, tx.sender_pos, params_.range_m)) return true;
  }
  return false;
}

TimePoint Medium::busy_until(NodeId node) const {
  Vec2 p = position_of(node);
  TimePoint latest = sched_.now();
  for (const auto& [id, tx] : active_) {
    if (within_range(p, tx.sender_pos, params_.range_m) && tx.end > latest) {
      latest = tx.end;
    }
  }
  return latest;
}

void Medium::deliver(uint64_t tx_id) {
  auto it = active_.find(tx_id);
  if (it == active_.end()) return;
  ActiveTx tx = std::move(it->second);
  active_.erase(it);

  const NodeId sender = tx.frame->sender;
  TxReport report;

  for (NodeId receiver = 0; receiver < nodes_.size(); ++receiver) {
    if (receiver == sender) continue;
    Vec2 rp = nodes_[receiver].mobility->position_at(tx.start);
    if (!within_range(rp, tx.sender_pos, params_.range_m)) continue;
    ++report.receivers;

    // Collision: another overlapping transmission audible here corrupts
    // the frame unless the sender is enough closer than the interferer
    // for physical-layer capture.
    bool collided = false;
    const double own_dist = distance(rp, tx.sender_pos);
    for (const Vec2& cp : tx.collider_positions) {
      if (!within_range(rp, cp, params_.range_m)) continue;
      double interferer_dist = distance(rp, cp);
      if (params_.capture_ratio > 0.0 &&
          own_dist <= params_.capture_ratio * interferer_dist) {
        continue;  // captured: our signal dominates this interferer
      }
      collided = true;
      break;
    }
    if (collided) {
      ++stats_.collision_drops;
      ++report.collided;
      continue;
    }
    if (rng_.chance(params_.loss_rate)) {
      ++stats_.losses;
      ++report.lost;
      continue;
    }
    ++stats_.deliveries;
    ++report.delivered;
    if (nodes_[receiver].on_receive) {
      nodes_[receiver].on_receive(tx.frame, receiver);
    }
  }

  if (report.collided_anywhere()) ++stats_.collided_frames;
  if (tx.on_complete) tx.on_complete(report);
}

}  // namespace dapes::sim
