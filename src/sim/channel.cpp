#include "sim/channel.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace dapes::sim {

namespace {

/// Coverage cutoff of the log-distance model, in units of link margin:
/// the probability mass truncated beyond `kCutSigmas` shadowing standard
/// deviations plus `kCutSoftness` reception-curve widths is below ~3e-4
/// per link — negligible next to the modeled loss processes, and the
/// deterministic cutoff is what keeps the spatial grid and the
/// brute-force reference bit-identical (DESIGN.md "Channel & PHY
/// models").
constexpr double kCutSigmas = 4.0;
constexpr double kCutSoftness = 8.0;

/// Extra coverage headroom (dB) when a fast-fading stage is enabled: a
/// constructive Rician/Rayleigh fade can lift a marginal link above the
/// reception threshold, so the deterministic audibility cutoff widens by
/// a fixed allowance (P(gain > 10 dB) < 5e-5 for Rayleigh) to keep the
/// truncated mass negligible.
constexpr double kCutFadingDb = 10.0;

/// Distances below this (meters) clamp before entering log10: a
/// co-located pair would otherwise produce an infinite margin.
constexpr double kMinDistance = 1e-3;

/// Stream-family tags for the keyed substreams of `link_seed` (see
/// DESIGN.md's determinism discipline): distinct ASCII tags keep the
/// burst process, the obstacle field and the quasi-static shadowing
/// draws statistically independent of each other.
constexpr uint64_t kBurstTag = 0x62757273ULL;   // "burs"
constexpr uint64_t kFieldTag = 0x6669656cULL;   // "fiel"

constexpr double kTwoPi = 2.0 * 3.14159265358979323846;

/// The paper's idealized channel, retained as the deterministic
/// reference. Binary unit-disk connectivity at the nominal range,
/// airtime linear in frame bytes, the historic distance-ratio capture
/// rule, and — crucially — reception draws taken from the medium's
/// shared sequential RNG stream in receiver order, so every paper-scale
/// sweep is bit-identical to the pre-channel-layer medium.
class UnitDiskChannel final : public ChannelModel {
 public:
  explicit UnitDiskChannel(double capture_ratio)
      : capture_ratio_(capture_ratio) {}

  const std::string& name() const override {
    static const std::string n = "unit-disk";
    return n;
  }

  double coverage_m(double tx_range_m) const override { return tx_range_m; }

  Duration airtime(size_t on_air_bytes, double data_rate_bps) const override {
    double bits = static_cast<double>(on_air_bytes) * 8.0;
    double seconds = bits / data_rate_bps;
    return Duration::seconds(seconds);
  }

  double reception_probability(double distance_m,
                               double tx_range_m) const override {
    return distance_m <= tx_range_m ? 1.0 : 0.0;
  }

  bool receives(const RxContext& rx, common::Rng& /*link_rng*/,
                common::Rng& frame_rng) const override {
    if (rx.distance_m > rx.tx_range_m) return false;
    return !frame_rng.chance(rx.loss_rate);
  }

  bool captured(double own_distance_m, double /*own_range_m*/,
                double interferer_distance_m,
                double /*interferer_range_m*/) const override {
    return capture_ratio_ > 0.0 &&
           own_distance_m <= capture_ratio_ * interferer_distance_m;
  }

  bool deterministic_reference() const override { return true; }

 private:
  double capture_ratio_;
};

/// Log-distance path loss with the composable realism stack on top:
/// optional log-normal shadowing (independent per pair, or spatially
/// correlated through a shared `ShadowField`), optional Rayleigh/Rician
/// fast fading per frame, an optional Gilbert-Elliott bursty erasure
/// overlay, a logistic reception curve, an SIR-threshold capture rule,
/// optional SIR-adaptive bitrate selection, and a preamble-aware
/// airtime model.
///
/// Everything is expressed as a link margin in dB relative to the
/// transmitter's nominal range R (where the margin is 0):
///
///   margin(d) = 10 * alpha * log10(R / d)
///               [+ shadowing dB] [+ fading gain dB]
///
/// Reception probability is logistic(margin / softness) — 0.5 at the
/// nominal range, approaching a hard unit-disk step as softness -> 0 —
/// scaled by (1 - loss_rate) for the medium's ambient loss and by the
/// burst process's survival probability in the link's current state.
/// The nominal range doubles as the transmit-power proxy, so
/// mixed-range radios (hetero.radio) fall out of the same formula,
/// including capture: a frame is captured when its SIR advantage over
/// the interferer, 10*alpha*log10((own_R/own_d) / (intf_R/intf_d)),
/// meets the threshold.
///
/// Stage order in `receives` is part of the determinism contract: each
/// disabled stage consumes *zero* draws, so configurations that only
/// use the PR-5 knobs replay the exact pre-stack RNG stream (the golden
/// hashes in tests/test_channel_models.cpp pin this).
class LogDistanceChannel final : public ChannelModel {
 public:
  enum class Fading { kNone, kRayleigh, kRician };

  explicit LogDistanceChannel(const ChannelParams& p)
      : alpha_(std::max(0.1, p.path_loss_exponent)),
        sigma_db_(std::max(0.0, p.shadowing_sigma_db)),
        softness_db_(std::max(0.0, p.softness_db)),
        capture_threshold_db_(p.capture_threshold_db),
        preamble_s_(std::max(0.0, p.preamble_us) * 1e-6),
        fading_(parse_fading(p.fading)),
        k_factor_(std::max(0.0, p.rician_k)),
        ge_(p),
        shadow_(p.link_seed, sigma_db_, std::max(0.0, p.shadowing_corr_m)),
        adaptive_rate_(p.adaptive_rate),
        rate_tiers_(p.rate_tiers),
        rate_sir_full_db_(p.rate_sir_full_db),
        rate_step_db_(std::max(0.0, p.rate_step_db)),
        // Solve margin(d) = -cut for d: the hard audibility cutoff.
        coverage_factor_(std::pow(
            10.0,
            (kCutSigmas * sigma_db_ + kCutSoftness * softness_db_ +
             (fading_ != Fading::kNone ? kCutFadingDb : 0.0)) /
                (10.0 * alpha_))) {
    if (adaptive_rate_ && (rate_tiers_ < 1 || rate_tiers_ > 16)) {
      throw std::invalid_argument(
          "ChannelParams::rate_tiers must be in [1, 16]");
    }
  }

  const std::string& name() const override {
    static const std::string n = "log-distance";
    return n;
  }

  double coverage_m(double tx_range_m) const override {
    return tx_range_m * coverage_factor_;
  }

  Duration airtime(size_t on_air_bytes, double data_rate_bps) const override {
    double bits = static_cast<double>(on_air_bytes) * 8.0;
    return Duration::seconds(preamble_s_ + bits / data_rate_bps);
  }

  double reception_probability(double distance_m,
                               double tx_range_m) const override {
    if (distance_m > coverage_m(tx_range_m)) return 0.0;
    return curve(margin_db(distance_m, tx_range_m));
  }

  bool receives(const RxContext& rx, common::Rng& link_rng,
                common::Rng& frame_rng) const override {
    if (rx.distance_m > coverage_m(rx.tx_range_m)) return false;
    double margin = margin_db(rx.distance_m, rx.tx_range_m);
    if (shadow_.enabled()) {
      // Correlated shadowing: a pure sample of the shared obstacle
      // field at the link midpoint — no draws, nearby links correlate.
      margin += shadow_.sample_db(rx.mid_x, rx.mid_y);
    } else if (sigma_db_ > 0.0) {
      // link_rng restarts from the same per-pair seed on every frame,
      // so this draw is the link's fixed shadowing value for the whole
      // trial.
      margin += sigma_db_ * link_rng.gaussian();
    }
    if (fading_ != Fading::kNone) {
      margin += fading_gain_db(
          frame_rng, fading_ == Fading::kRician ? k_factor_ : 0.0);
    }
    double p = curve(margin) * (1.0 - std::clamp(rx.loss_rate, 0.0, 1.0));
    if (ge_.enabled()) {
      p *= 1.0 - ge_.erasure(ge_.bad_at(rx.sender, rx.receiver, rx.time_s));
    }
    return frame_rng.uniform01() < p;
  }

  int link_state(const RxContext& rx) const override {
    if (!ge_.enabled()) return -1;
    return ge_.bad_at(rx.sender, rx.receiver, rx.time_s) ? 1 : 0;
  }

  bool captured(double own_distance_m, double own_range_m,
                double interferer_distance_m,
                double interferer_range_m) const override {
    const double sir_db = margin_db(own_distance_m, own_range_m) -
                          margin_db(interferer_distance_m, interferer_range_m);
    return sir_db >= capture_threshold_db_;
  }

  bool adaptive_rate() const override { return adaptive_rate_; }

  double signal_margin_db(double distance_m,
                          double tx_range_m) const override {
    return margin_db(distance_m, tx_range_m);
  }

  double select_rate_bps(double base_rate_bps, double sir_db) const override {
    // Monotone tier ladder: each step down halves the bitrate and
    // relaxes the SIR requirement by rate_step_db. Never exceeds the
    // base rate, so the medium's min_airtime lookahead stays a bound.
    int tier = 0;
    while (tier < rate_tiers_ - 1 &&
           sir_db < rate_sir_full_db_ - tier * rate_step_db_) {
      ++tier;
    }
    return base_rate_bps / static_cast<double>(1 << tier);
  }

 private:
  static Fading parse_fading(const std::string& name) {
    if (name == "none") return Fading::kNone;
    if (name == "rayleigh") return Fading::kRayleigh;
    if (name == "rician") return Fading::kRician;
    std::string msg = "unknown fading stage \"" + name + "\"; known:";
    for (const auto& n : channel_fading_names()) msg += " " + n;
    throw std::invalid_argument(msg);
  }

  /// Mean link margin in dB at distance d from a transmitter of nominal
  /// range R: positive inside R, 0 at R, -10*alpha per decade beyond.
  double margin_db(double distance_m, double tx_range_m) const {
    return 10.0 * alpha_ *
           std::log10(tx_range_m / std::max(distance_m, kMinDistance));
  }

  /// The probabilistic reception curve over the link margin: logistic
  /// with width softness_db_, degenerating to a step when the width is 0.
  double curve(double margin) const {
    if (softness_db_ <= 0.0) return margin >= 0.0 ? 1.0 : 0.0;
    return 1.0 / (1.0 + std::exp(-margin / softness_db_));
  }

  double alpha_;
  double sigma_db_;
  double softness_db_;
  double capture_threshold_db_;
  double preamble_s_;
  Fading fading_;
  double k_factor_;
  GilbertElliott ge_;
  ShadowField shadow_;
  bool adaptive_rate_;
  int rate_tiers_;
  double rate_sir_full_db_;
  double rate_step_db_;
  double coverage_factor_;
};

}  // namespace

GilbertElliott::GilbertElliott(const ChannelParams& p) {
  if (p.ge_bad_fraction <= 0.0) return;
  if (p.ge_bad_fraction >= 1.0) {
    throw std::invalid_argument(
        "ChannelParams::ge_bad_fraction must be below 1");
  }
  enabled_ = true;
  pi_ = p.ge_bad_fraction;
  slot_s_ = std::max(1e-6, p.ge_slot_ms * 1e-3);
  // Continuous-time two-state chain: exit-bad rate mu fixes the mean
  // burst length; the entry rate follows from stationarity. One slot of
  // elapsed time then has the exact transition probabilities below
  // (solve the two-state Kolmogorov forward equations).
  const double mean_burst_s = std::max(slot_s_, p.ge_mean_burst_ms * 1e-3);
  const double mu = 1.0 / mean_burst_s;
  const double lambda = mu * pi_ / (1.0 - pi_);
  const double decay = std::exp(-(lambda + mu) * slot_s_);
  p_gb_ = pi_ * (1.0 - decay);
  p_bb_ = pi_ + (1.0 - pi_) * decay;
  bad_loss_ = std::clamp(p.ge_bad_loss, 0.0, 1.0);
  good_loss_ = std::clamp(p.ge_good_loss, 0.0, 1.0);
  root_ = common::derive_seed(p.link_seed, kBurstTag);
}

bool GilbertElliott::bad_at(uint32_t a, uint32_t b, double time_s) const {
  const uint32_t lo = std::min(a, b);
  const uint32_t hi = std::max(a, b);
  const uint64_t pair_root =
      common::derive_seed(common::derive_seed(root_, lo), hi);
  const uint64_t slot =
      static_cast<uint64_t>(std::max(0.0, time_s) / slot_s_);
  const uint64_t block = slot / kBlockSlots;
  const int offset = static_cast<int>(slot % kBlockSlots);
  // One keyed substream per (pair, block): the anchor slot draws from
  // the stationary distribution, then the chain walks forward with the
  // closed-form per-slot transitions. Any two queries of the same slot
  // replay the same uniforms, so the state is a pure function of time —
  // and within a block, consecutive slots are exactly Markov, which is
  // what gives geometric burst lengths.
  common::Rng rng(common::derive_seed(pair_root, block));
  bool bad = rng.uniform01() < pi_;
  for (int i = 0; i < offset; ++i) {
    bad = rng.uniform01() < (bad ? p_bb_ : p_gb_);
  }
  return bad;
}

ShadowField::ShadowField(uint64_t seed, double sigma_db, double corr_m) {
  if (sigma_db <= 0.0 || corr_m <= 0.0) return;
  // Spectral (sum-of-random-cosines) construction: M harmonics with
  // N(0, 1/corr^2) wave vectors and uniform phases give a Gaussian
  // field with covariance sigma^2 * exp(-d^2 / (2 corr^2)).
  constexpr int kHarmonics = 64;
  common::Rng rng(common::derive_seed(seed, kFieldTag));
  harmonics_.reserve(kHarmonics);
  const double inv_corr = 1.0 / corr_m;
  for (int i = 0; i < kHarmonics; ++i) {
    Harmonic h;
    h.kx = rng.gaussian() * inv_corr;
    h.ky = rng.gaussian() * inv_corr;
    h.phase = rng.uniform01() * kTwoPi;
    harmonics_.push_back(h);
  }
  amplitude_ = sigma_db * std::sqrt(2.0 / kHarmonics);
}

double ShadowField::sample_db(double x, double y) const {
  double sum = 0.0;
  for (const Harmonic& h : harmonics_) {
    sum += std::cos(h.kx * x + h.ky * y + h.phase);
  }
  return amplitude_ * sum;
}

double fading_gain_db(common::Rng& rng, double k_factor) {
  // Complex-Gaussian envelope with a line-of-sight component: power
  // K/(K+1) in the deterministic ray, 1/(K+1) scattered, unit mean
  // power overall. K = 0 is Rayleigh (exponential power).
  const double k = std::max(0.0, k_factor);
  const double los = std::sqrt(k / (k + 1.0));
  const double sigma = std::sqrt(1.0 / (2.0 * (k + 1.0)));
  const double re = los + sigma * rng.gaussian();
  const double im = sigma * rng.gaussian();
  const double power = std::max(re * re + im * im, 1e-12);
  return 10.0 * std::log10(power);
}

double ChannelModel::signal_margin_db(double distance_m,
                                      double tx_range_m) const {
  return distance_m <= tx_range_m
             ? 0.0
             : -std::numeric_limits<double>::infinity();
}

ChannelModelPtr make_channel_model(const ChannelParams& params) {
  if (params.model == "unit-disk") {
    return std::make_shared<UnitDiskChannel>(params.capture_ratio);
  }
  if (params.model == "log-distance") {
    return std::make_shared<LogDistanceChannel>(params);
  }
  std::string msg = "unknown channel model \"" + params.model + "\"; known:";
  for (const auto& n : channel_model_names()) msg += " " + n;
  throw std::invalid_argument(msg);
}

std::vector<std::string> channel_model_names() {
  return {"log-distance", "unit-disk"};
}

std::vector<std::string> channel_fading_names() {
  return {"none", "rayleigh", "rician"};
}

}  // namespace dapes::sim
