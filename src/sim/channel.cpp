#include "sim/channel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dapes::sim {

namespace {

/// Coverage cutoff of the log-distance model, in units of link margin:
/// the probability mass truncated beyond `kCutSigmas` shadowing standard
/// deviations plus `kCutSoftness` reception-curve widths is below ~3e-4
/// per link — negligible next to the modeled loss processes, and the
/// deterministic cutoff is what keeps the spatial grid and the
/// brute-force reference bit-identical (DESIGN.md "Channel & PHY
/// models").
constexpr double kCutSigmas = 4.0;
constexpr double kCutSoftness = 8.0;

/// Distances below this (meters) clamp before entering log10: a
/// co-located pair would otherwise produce an infinite margin.
constexpr double kMinDistance = 1e-3;

/// The paper's idealized channel, retained as the deterministic
/// reference. Binary unit-disk connectivity at the nominal range,
/// airtime linear in frame bytes, the historic distance-ratio capture
/// rule, and — crucially — reception draws taken from the medium's
/// shared sequential RNG stream in receiver order, so every paper-scale
/// sweep is bit-identical to the pre-channel-layer medium.
class UnitDiskChannel final : public ChannelModel {
 public:
  explicit UnitDiskChannel(double capture_ratio)
      : capture_ratio_(capture_ratio) {}

  const std::string& name() const override {
    static const std::string n = "unit-disk";
    return n;
  }

  double coverage_m(double tx_range_m) const override { return tx_range_m; }

  Duration airtime(size_t on_air_bytes, double data_rate_bps) const override {
    double bits = static_cast<double>(on_air_bytes) * 8.0;
    double seconds = bits / data_rate_bps;
    return Duration::seconds(seconds);
  }

  double reception_probability(double distance_m,
                               double tx_range_m) const override {
    return distance_m <= tx_range_m ? 1.0 : 0.0;
  }

  bool receives(double distance_m, double tx_range_m, double loss_rate,
                common::Rng& /*link_rng*/,
                common::Rng& frame_rng) const override {
    if (distance_m > tx_range_m) return false;
    return !frame_rng.chance(loss_rate);
  }

  bool captured(double own_distance_m, double /*own_range_m*/,
                double interferer_distance_m,
                double /*interferer_range_m*/) const override {
    return capture_ratio_ > 0.0 &&
           own_distance_m <= capture_ratio_ * interferer_distance_m;
  }

  bool deterministic_reference() const override { return true; }

 private:
  double capture_ratio_;
};

/// Log-distance path loss with optional log-normal shadowing, a logistic
/// reception curve, an SIR-threshold capture rule, and a preamble-aware
/// airtime model.
///
/// Everything is expressed as a link margin in dB relative to the
/// transmitter's nominal range R (where the margin is 0):
///
///   margin(d) = 10 * alpha * log10(R / d)  [+ N(0, sigma) shadowing]
///
/// Reception probability is logistic(margin / softness) — 0.5 at the
/// nominal range, approaching a hard unit-disk step as softness -> 0 —
/// scaled by (1 - loss_rate) for the medium's ambient loss. The nominal
/// range doubles as the transmit-power proxy, so mixed-range radios
/// (hetero.radio) fall out of the same formula, including capture:
/// a frame is captured when its SIR advantage over the interferer,
/// 10*alpha*log10((own_R/own_d) / (intf_R/intf_d)), meets the threshold.
class LogDistanceChannel final : public ChannelModel {
 public:
  explicit LogDistanceChannel(const ChannelParams& p)
      : alpha_(std::max(0.1, p.path_loss_exponent)),
        sigma_db_(std::max(0.0, p.shadowing_sigma_db)),
        softness_db_(std::max(0.0, p.softness_db)),
        capture_threshold_db_(p.capture_threshold_db),
        preamble_s_(std::max(0.0, p.preamble_us) * 1e-6),
        // Solve margin(d) = -cut for d: the hard audibility cutoff.
        coverage_factor_(std::pow(
            10.0,
            (kCutSigmas * sigma_db_ + kCutSoftness * softness_db_) /
                (10.0 * alpha_))) {}

  const std::string& name() const override {
    static const std::string n = "log-distance";
    return n;
  }

  double coverage_m(double tx_range_m) const override {
    return tx_range_m * coverage_factor_;
  }

  Duration airtime(size_t on_air_bytes, double data_rate_bps) const override {
    double bits = static_cast<double>(on_air_bytes) * 8.0;
    return Duration::seconds(preamble_s_ + bits / data_rate_bps);
  }

  double reception_probability(double distance_m,
                               double tx_range_m) const override {
    if (distance_m > coverage_m(tx_range_m)) return 0.0;
    return curve(margin_db(distance_m, tx_range_m));
  }

  bool receives(double distance_m, double tx_range_m, double loss_rate,
                common::Rng& link_rng,
                common::Rng& frame_rng) const override {
    if (distance_m > coverage_m(tx_range_m)) return false;
    double margin = margin_db(distance_m, tx_range_m);
    // link_rng restarts from the same per-pair seed on every frame, so
    // this draw is the link's fixed shadowing value for the whole trial.
    if (sigma_db_ > 0.0) margin += sigma_db_ * link_rng.gaussian();
    double p = curve(margin) * (1.0 - std::clamp(loss_rate, 0.0, 1.0));
    return frame_rng.uniform01() < p;
  }

  bool captured(double own_distance_m, double own_range_m,
                double interferer_distance_m,
                double interferer_range_m) const override {
    const double sir_db = margin_db(own_distance_m, own_range_m) -
                          margin_db(interferer_distance_m, interferer_range_m);
    return sir_db >= capture_threshold_db_;
  }

 private:
  /// Mean link margin in dB at distance d from a transmitter of nominal
  /// range R: positive inside R, 0 at R, -10*alpha per decade beyond.
  double margin_db(double distance_m, double tx_range_m) const {
    return 10.0 * alpha_ *
           std::log10(tx_range_m / std::max(distance_m, kMinDistance));
  }

  /// The probabilistic reception curve over the link margin: logistic
  /// with width softness_db_, degenerating to a step when the width is 0.
  double curve(double margin) const {
    if (softness_db_ <= 0.0) return margin >= 0.0 ? 1.0 : 0.0;
    return 1.0 / (1.0 + std::exp(-margin / softness_db_));
  }

  double alpha_;
  double sigma_db_;
  double softness_db_;
  double capture_threshold_db_;
  double preamble_s_;
  double coverage_factor_;
};

}  // namespace

ChannelModelPtr make_channel_model(const ChannelParams& params) {
  if (params.model == "unit-disk") {
    return std::make_shared<UnitDiskChannel>(params.capture_ratio);
  }
  if (params.model == "log-distance") {
    return std::make_shared<LogDistanceChannel>(params);
  }
  std::string msg = "unknown channel model \"" + params.model + "\"; known:";
  for (const auto& n : channel_model_names()) msg += " " + n;
  throw std::invalid_argument(msg);
}

std::vector<std::string> channel_model_names() {
  return {"log-distance", "unit-disk"};
}

}  // namespace dapes::sim
