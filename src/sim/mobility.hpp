/// @file
/// Node mobility models.
///
/// The paper's simulation uses 40 mobile nodes picking random directions in
/// [0, 2*pi) and random speeds in [2, 10] m/s inside a 300 m x 300 m field
/// (Fig. 7), plus 4 stationary repositories. The real-world scenarios of
/// Fig. 8 move peers along scripted paths; WaypointMobility reproduces
/// those. Positions are evaluated lazily from closed-form segment motion,
/// so mobility adds no scheduler events of its own.
#pragma once

#include <limits>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/geometry.hpp"

namespace dapes::sim {

using common::Duration;
using common::TimePoint;

/// Interface: where is the node at simulated time t?
///
/// position_at must be a pure function of t (models may materialize
/// internal state lazily, but repeated or out-of-order queries for the
/// same t must return the same position).
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Position at simulated time @p t (pure in t; see class comment).
  virtual Vec2 position_at(TimePoint t) = 0;

  /// Conservative upper bound on the node's speed in m/s. The medium's
  /// spatial grid uses it to bound how far nodes can drift between
  /// rebuilds; the default (infinity) is always safe — it just forces a
  /// rebuild whenever the clock has advanced.
  virtual double max_speed() const {
    return std::numeric_limits<double>::infinity();
  }
};

/// Fixed position (repositories / stationary nodes).
class StationaryMobility final : public MobilityModel {
 public:
  /// Pin the node at @p pos forever.
  explicit StationaryMobility(Vec2 pos) : pos_(pos) {}
  Vec2 position_at(TimePoint) override { return pos_; }
  double max_speed() const override { return 0.0; }

 private:
  Vec2 pos_;
};

/// Random-direction model with boundary reflection.
///
/// The node repeatedly draws a direction uniform in [0, 2*pi), a speed
/// uniform in [speed_min, speed_max], and a leg duration uniform in
/// [leg_min, leg_max]; it reflects off field edges mid-leg. Legs are
/// materialized on demand up to the queried time.
class RandomDirectionMobility final : public MobilityModel {
 public:
  /// Model parameters (defaults are the paper's Fig. 7 values).
  struct Params {
    Field field{};            ///< field the node reflects inside
    double speed_min = 2.0;   ///< m/s, paper value
    double speed_max = 10.0;  ///< m/s, paper value
    Duration leg_min = Duration::seconds(5.0);   ///< shortest leg
    Duration leg_max = Duration::seconds(20.0);  ///< longest leg
  };

  /// Start at @p start; every later leg is drawn from @p rng.
  RandomDirectionMobility(Vec2 start, Params params, common::Rng rng);

  Vec2 position_at(TimePoint t) override;
  double max_speed() const override { return params_.speed_max; }

 private:
  struct Leg {
    TimePoint start_time;
    TimePoint end_time;
    Vec2 start_pos;
    Vec2 velocity;  // m/s
  };

  void extend_to(TimePoint t);
  Leg make_leg(TimePoint start_time, Vec2 start_pos);
  static Vec2 move_with_reflection(Vec2 from, Vec2& velocity, double dt,
                                   const Field& field);

  Params params_;
  common::Rng rng_;
  std::vector<Leg> legs_;
};

/// Piecewise-linear scripted path: the node is at waypoint[i].pos at
/// waypoint[i].at and moves linearly between consecutive waypoints; it
/// holds the last position afterwards. Used for the Fig. 8 real-world
/// scenario reproductions.
class WaypointMobility final : public MobilityModel {
 public:
  /// One scripted (time, position) pair.
  struct Waypoint {
    TimePoint at;  ///< when the node is at pos
    Vec2 pos;      ///< where the node is at time `at`
  };

  /// Waypoints must be sorted by time and non-empty.
  explicit WaypointMobility(std::vector<Waypoint> waypoints);

  Vec2 position_at(TimePoint t) override;

  /// Fastest segment speed (infinity if two waypoints share a timestamp
  /// at different positions — an instantaneous jump).
  double max_speed() const override { return max_speed_; }

 private:
  std::vector<Waypoint> waypoints_;
  double max_speed_ = 0.0;
};

/// Random-waypoint model with pause time (the classic RWP used by the
/// large-scale scenario families): the node draws a destination uniform
/// in the field and a speed uniform in [speed_min, speed_max], travels
/// there in a straight line, pauses, and repeats. Legs are materialized
/// on demand, like RandomDirectionMobility.
class RandomWaypointMobility final : public MobilityModel {
 public:
  /// Model parameters.
  struct Params {
    Field field{};            ///< field destinations are drawn in
    double speed_min = 2.0;   ///< m/s
    double speed_max = 10.0;  ///< m/s
    Duration pause = Duration::seconds(2.0);  ///< dwell at each target
  };

  /// Start at @p start; every later leg is drawn from @p rng.
  RandomWaypointMobility(Vec2 start, Params params, common::Rng rng);

  Vec2 position_at(TimePoint t) override;
  double max_speed() const override { return params_.speed_max; }

 private:
  struct Leg {
    TimePoint start_time;   // departure from `from`
    TimePoint arrive_time;  // arrival at `to`
    TimePoint end_time;     // arrival + pause; next leg starts here
    Vec2 from;
    Vec2 to;
  };

  void extend_to(TimePoint t);
  Leg make_leg(TimePoint start_time, Vec2 from);

  Params params_;
  common::Rng rng_;
  std::vector<Leg> legs_;
};

/// Reference-point group mobility (convoy/cluster): every member of a
/// group shares one anchor trajectory (typically a RandomWaypointMobility)
/// and holds a fixed offset from it, clamped to the field. Clamping is a
/// projection onto the field box (1-Lipschitz), so a member never moves
/// faster than its anchor.
class GroupMobility final : public MobilityModel {
 public:
  /// Follow @p anchor at the fixed @p offset, clamped to @p field.
  GroupMobility(std::shared_ptr<MobilityModel> anchor, Vec2 offset,
                Field field);

  Vec2 position_at(TimePoint t) override;
  double max_speed() const override { return anchor_->max_speed(); }

 private:
  std::shared_ptr<MobilityModel> anchor_;
  Vec2 offset_;
  Field field_;
};

}  // namespace dapes::sim
