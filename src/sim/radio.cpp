#include "sim/radio.hpp"

#include <algorithm>

namespace dapes::sim {

Radio::Radio(Scheduler& sched, Medium& medium, NodeId node, common::Rng rng)
    : Radio(sched, medium, node, rng, Params{}) {}

Radio::Radio(Scheduler& sched, Medium& medium, NodeId node, common::Rng rng,
             Params params)
    : sched_(sched),
      medium_(medium),
      node_(node),
      rng_(rng),
      params_(params),
      cw_(params.cw_min) {}

void Radio::send(FramePtr frame, SendCompleteCallback on_complete) {
  queue_.push_back(Pending{std::move(frame), std::move(on_complete), 0});
  if (!attempt_scheduled_ && !transmitting_) {
    attempt_scheduled_ = true;
    // Small random dither so co-located nodes that enqueue in the same
    // event don't probe the channel at the identical instant.
    Duration dither =
        Duration::microseconds(static_cast<int64_t>(rng_.next_below(
            static_cast<uint64_t>(params_.slot.us) + 1)));
    sched_.schedule(dither, [this] { try_send(); });
  }
}

void Radio::try_send() {
  attempt_scheduled_ = false;
  if (transmitting_ || queue_.empty()) return;

  if (medium_.busy_for(node_)) {
    Pending& head = queue_.front();
    if (++head.defers > params_.max_defers) {
      ++drops_;
      auto cb = std::move(head.on_complete);
      queue_.pop_front();
      // Report a total failure: never reached the air.
      if (cb) cb(Medium::TxReport{});
      if (!queue_.empty()) schedule_retry();
      return;
    }
    cw_ = std::min(cw_ * 2, params_.cw_max);
    schedule_retry();
    return;
  }

  cw_ = params_.cw_min;
  Pending head = std::move(queue_.front());
  queue_.pop_front();
  transmitting_ = true;
  auto cb = std::move(head.on_complete);
  medium_.transmit(head.frame, [this, cb](const Medium::TxReport& report) {
    transmitting_ = false;
    if (cb) cb(report);
    if (!queue_.empty() && !attempt_scheduled_) {
      attempt_scheduled_ = true;
      sched_.schedule(params_.ifs, [this] { try_send(); });
    }
  });
}

void Radio::reset() {
  queue_.clear();
  attempt_scheduled_ = false;
  transmitting_ = false;
  cw_ = params_.cw_min;
}

void Radio::schedule_retry() {
  TimePoint idle_at = medium_.busy_until(node_);
  int slots = static_cast<int>(rng_.next_below(static_cast<uint64_t>(cw_)));
  TimePoint at = idle_at + params_.ifs + params_.slot * slots;
  attempt_scheduled_ = true;
  sched_.schedule_at(at, [this] { try_send(); });
}

}  // namespace dapes::sim
