#include "sim/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "trace/trace.hpp"

namespace dapes::sim {

namespace {

/// Below this size the heap is too small for compaction to matter; the
/// floor also preserves the "cancel twice returns false" behaviour for
/// the tiny schedules unit tests build.
constexpr size_t kCompactFloor = 64;

/// Absolute cancelled-entry cap: compact once this many dead entries
/// accumulate even if they are still a minority of a huge heap. 4096
/// entries is ~256 KB of Entry + closure storage — the bound on wasted
/// memory between compactions.
constexpr size_t kCompactAbsolute = 4096;

/// Event-id stride pre-assigned to each phase slot. Ids only need to be
/// unique and deterministic (nothing orders on them), so a fixed stride
/// per slot makes them independent of worker timing and thread count. No
/// single callback schedules anywhere near this many events.
constexpr uint64_t kPhaseIdStride = uint64_t{1} << 20;

/// The calling thread's binding: which scheduler it stages into and the
/// slot it owns. Thread-local because staged calls come from deep inside
/// protocol callbacks that just call sched.schedule(...) as usual. One
/// binding suffices: a worker thread serves exactly one trial's pool.
struct SlotBinding {
  Scheduler* sched = nullptr;
  size_t slot = 0;
};
thread_local SlotBinding t_binding;

/// The calling thread's owner attribution (see Scheduler::OwnerScope):
/// which scheduler it stamps and with what owner. Like the slot binding,
/// one level suffices per thread — nesting is handled by the scope's
/// save/restore, not by a stack here.
struct OwnerBinding {
  Scheduler* sched = nullptr;
  uint64_t owner = 0;
};
thread_local OwnerBinding t_owner;

}  // namespace

Scheduler::OwnerScope::OwnerScope(Scheduler& sched, uint64_t owner)
    : prev_sched_(t_owner.sched), prev_owner_(t_owner.owner) {
  t_owner.sched = &sched;
  t_owner.owner = owner;
}

Scheduler::OwnerScope::~OwnerScope() {
  t_owner.sched = prev_sched_;
  t_owner.owner = prev_owner_;
}

uint64_t Scheduler::current_owner() const {
  return t_owner.sched == this ? t_owner.owner : kNoOwner;
}

Scheduler::PhaseSlot* Scheduler::bound_slot() {
  if (!phase_active_ || t_binding.sched != this) return nullptr;
  return &phase_slots_[t_binding.slot];
}

EventId Scheduler::push_entry(TimePoint at, uint64_t id, uint64_t tag,
                              uint64_t owner,
                              std::shared_ptr<std::function<void()>> fn) {
  Entry e;
  e.at = at;
  e.seq = next_seq_++;
  e.id = id;
  e.tag = tag;
  e.owner = owner;
  e.fn = std::move(fn);
  heap_.push_back(std::move(e));
  std::push_heap(heap_.begin(), heap_.end(), EntryCompare{});
  return EventId{id};
}

EventId Scheduler::schedule_at(TimePoint at, std::function<void()> fn) {
  if (at < now_) at = now_;
  // Traced after clamping and before the staging branch: the staged and
  // direct paths clamp identically, so the record is mode-invariant. The
  // event id is deliberately not recorded (phase slots pre-assign strided
  // ids, which differ from the serial ones by design).
  DAPES_TRACE_HERE(trace::EventType::kSchedSchedule,
                   static_cast<uint64_t>(at.us));
  if (PhaseSlot* slot = bound_slot()) {
    // Staged: pre-assigned id now, heap insertion (and the sequence
    // number) at end_phase, in slot order.
    if (slot->ids_used >= kPhaseIdStride) {
      throw std::logic_error("Scheduler: phase slot id range exhausted");
    }
    const uint64_t id = phase_id_base_ +
                        t_binding.slot * kPhaseIdStride + slot->ids_used++;
    PhaseOp op;
    op.at = at;
    op.id = id;
    op.owner = current_owner();
    op.fn = std::make_shared<std::function<void()>>(std::move(fn));
    slot->ops.push_back(std::move(op));
    return EventId{id};
  }
  if (phase_active_) {
    throw std::logic_error(
        "Scheduler: schedule from an unbound thread during a phase");
  }
  const uint64_t id = next_id_++;
  return push_entry(at, id, /*tag=*/0, current_owner(),
                    std::make_shared<std::function<void()>>(std::move(fn)));
}

EventId Scheduler::schedule(Duration delay, std::function<void()> fn) {
  if (delay.us < 0) delay.us = 0;
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Scheduler::schedule_tagged(TimePoint at, uint64_t tag,
                                   std::function<void()> fn) {
  if (tag == 0) {
    throw std::invalid_argument("Scheduler::schedule_tagged: tag must be != 0");
  }
  if (phase_active_) {
    throw std::logic_error("Scheduler::schedule_tagged: phase open");
  }
  if (at < now_) at = now_;
  DAPES_TRACE_HERE(trace::EventType::kSchedSchedule,
                   static_cast<uint64_t>(at.us));
  const uint64_t id = next_id_++;
  // Tagged events are deliberately unowned: they are the medium's
  // in-flight frame deliveries, which must survive the sender's
  // retirement (the frame is already on the air).
  return push_entry(at, id, tag, kNoOwner,
                    std::make_shared<std::function<void()>>(std::move(fn)));
}

bool Scheduler::apply_cancel(uint64_t id) {
  // Mark; the entry is discarded lazily at pop time, or in bulk once
  // cancelled entries dominate the heap or pile past the absolute cap.
  if (!cancelled_.insert(id).second) return false;
  if ((heap_.size() >= kCompactFloor &&
       cancelled_.size() * 2 > heap_.size()) ||
      cancelled_.size() >= kCompactAbsolute) {
    compact();
  }
  return true;
}

bool Scheduler::cancel(EventId id) {
  if (!id.valid()) return false;
  // The record carries no success flag: the staged path below answers
  // optimistically, so a flag would differ between engines.
  DAPES_TRACE_HERE(trace::EventType::kSchedCancel);
  if (PhaseSlot* slot = bound_slot()) {
    // Staged; applied by end_phase in slot order. Callers may only cancel
    // events their own node scheduled (the lane-ownership contract, see
    // DESIGN.md), so the eventual outcome is identical to an immediate
    // cancel — the event cannot fire before the phase ends.
    PhaseOp op;
    op.is_cancel = true;
    op.id = id.value;
    slot->ops.push_back(std::move(op));
    return true;
  }
  if (phase_active_) {
    throw std::logic_error(
        "Scheduler: cancel from an unbound thread during a phase");
  }
  return apply_cancel(id.value);
}

size_t Scheduler::cancel_for_node(uint64_t owner) {
  if (phase_active_) {
    throw std::logic_error("Scheduler::cancel_for_node: phase open");
  }
  if (owner == kNoOwner) {
    throw std::invalid_argument("Scheduler::cancel_for_node: kNoOwner");
  }
  // Collect first, cancel second: apply_cancel may trigger compact(),
  // which rewrites heap_ mid-iteration.
  std::vector<uint64_t> ids;
  for (const Entry& e : heap_) {
    if (e.owner == owner && !cancelled_.contains(e.id)) ids.push_back(e.id);
  }
  size_t cancelled = 0;
  for (uint64_t id : ids) {
    DAPES_TRACE_HERE(trace::EventType::kSchedCancel);
    if (apply_cancel(id)) ++cancelled;
  }
  return cancelled;
}

void Scheduler::compact() {
  std::erase_if(heap_, [&](const Entry& e) {
    auto it = cancelled_.find(e.id);
    if (it == cancelled_.end()) return false;
    cancelled_.erase(it);
    return true;
  });
  // Anything left never matched a queued entry (it already fired or was
  // compacted away before): forget it so the set cannot grow either.
  cancelled_.clear();
  std::make_heap(heap_.begin(), heap_.end(), EntryCompare{});
}

void Scheduler::purge_cancelled_head() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.front().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    std::pop_heap(heap_.begin(), heap_.end(), EntryCompare{});
    heap_.pop_back();
  }
}

TimePoint Scheduler::peek_horizon() {
  purge_cancelled_head();
  return heap_.empty() ? kNoHorizon : heap_.front().at;
}

size_t Scheduler::claim_tagged(TimePoint at, std::vector<uint64_t>& out) {
  size_t claimed = 0;
  for (;;) {
    purge_cancelled_head();
    if (heap_.empty()) break;
    const Entry& head = heap_.front();
    if (head.at != at || head.tag == 0) break;
    out.push_back(head.tag);
    std::pop_heap(heap_.begin(), heap_.end(), EntryCompare{});
    heap_.pop_back();
    // The claimer runs this event's work, so it counts as executed.
    ++executed_;
    ++claimed;
  }
  return claimed;
}

void Scheduler::begin_phase(size_t slots) {
  if (phase_active_) {
    throw std::logic_error("Scheduler::begin_phase: phases do not nest");
  }
  phase_id_base_ = next_id_;
  // Reserve the whole strided range so ids never collide with later
  // direct assignments.
  next_id_ += slots * kPhaseIdStride;
  phase_slots_.assign(slots, PhaseSlot{});
  phase_active_ = true;
}

void Scheduler::bind_phase_slot(size_t slot) {
  if (!phase_active_ || slot >= phase_slots_.size()) {
    throw std::logic_error("Scheduler::bind_phase_slot: no such slot");
  }
  t_binding.sched = this;
  t_binding.slot = slot;
}

void Scheduler::unbind_phase_slot() {
  t_binding.sched = nullptr;
  t_binding.slot = 0;
}

size_t Scheduler::end_phase() {
  if (!phase_active_) {
    throw std::logic_error("Scheduler::end_phase: no phase open");
  }
  // Close the phase first: the merge below uses the direct paths.
  phase_active_ = false;
  unbind_phase_slot();
  size_t applied = 0;
  for (PhaseSlot& slot : phase_slots_) {
    for (PhaseOp& op : slot.ops) {
      if (op.is_cancel) {
        apply_cancel(op.id);
      } else {
        push_entry(op.at, op.id, /*tag=*/0, op.owner, std::move(op.fn));
      }
      ++applied;
    }
  }
  phase_slots_.clear();
  return applied;
}

size_t Scheduler::run_until(TimePoint until) {
  size_t count = 0;
  while (!heap_.empty()) {
    if (heap_.front().at > until) break;
    std::pop_heap(heap_.begin(), heap_.end(), EntryCompare{});
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    if (auto it = cancelled_.find(e.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = e.at;
    ++executed_;
    ++count;
    // Tagged entries (medium deliveries) are not traced as fires: the
    // phase-parallel engine batch-claims them without popping each one
    // here, so a fire record would be engine-dependent. Their delivery
    // is traced by the medium instead.
    if (e.tag == 0) DAPES_TRACE_HERE(trace::EventType::kSchedFire);
    // Re-install the entry's owner for the callback so events it
    // schedules inherit attribution (see OwnerScope).
    OwnerScope own(*this, e.owner);
    (*e.fn)();
  }
  // The clock always reaches the requested horizon, whether or not
  // events remain beyond it.
  if (now_ < until) now_ = until;
  return count;
}

size_t Scheduler::run() {
  size_t count = 0;
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), EntryCompare{});
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    if (auto it = cancelled_.find(e.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = e.at;
    ++executed_;
    ++count;
    // Tagged entries (medium deliveries) are not traced as fires: the
    // phase-parallel engine batch-claims them without popping each one
    // here, so a fire record would be engine-dependent. Their delivery
    // is traced by the medium instead.
    if (e.tag == 0) DAPES_TRACE_HERE(trace::EventType::kSchedFire);
    // Same owner inheritance as run_until.
    OwnerScope own(*this, e.owner);
    (*e.fn)();
  }
  return count;
}

}  // namespace dapes::sim
