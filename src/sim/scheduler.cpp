#include "sim/scheduler.hpp"

namespace dapes::sim {

EventId Scheduler::schedule_at(TimePoint at, std::function<void()> fn) {
  if (at < now_) at = now_;
  const uint64_t id = next_id_++;
  Entry e;
  e.at = at;
  e.seq = next_seq_++;
  e.id = id;
  e.fn = std::make_shared<std::function<void()>>(std::move(fn));
  heap_.push(std::move(e));
  return EventId{id};
}

EventId Scheduler::schedule(Duration delay, std::function<void()> fn) {
  if (delay.us < 0) delay.us = 0;
  return schedule_at(now_ + delay, std::move(fn));
}

bool Scheduler::cancel(EventId id) {
  if (!id.valid()) return false;
  // Only mark; the entry is discarded lazily at pop time.
  return cancelled_.insert(id.value).second;
}

size_t Scheduler::run_until(TimePoint until) {
  size_t count = 0;
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    if (top.at > until) break;
    Entry e = top;
    heap_.pop();
    if (auto it = cancelled_.find(e.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = e.at;
    ++executed_;
    ++count;
    (*e.fn)();
  }
  // The clock always reaches the requested horizon, whether or not
  // events remain beyond it.
  if (now_ < until) now_ = until;
  return count;
}

size_t Scheduler::run() {
  size_t count = 0;
  while (!heap_.empty()) {
    Entry e = heap_.top();
    heap_.pop();
    if (auto it = cancelled_.find(e.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = e.at;
    ++executed_;
    ++count;
    (*e.fn)();
  }
  return count;
}

}  // namespace dapes::sim
