#include "sim/scheduler.hpp"

#include <algorithm>

namespace dapes::sim {

namespace {

/// Below this size the heap is too small for compaction to matter; the
/// floor also preserves the "cancel twice returns false" behaviour for
/// the tiny schedules unit tests build.
constexpr size_t kCompactFloor = 64;

}  // namespace

EventId Scheduler::schedule_at(TimePoint at, std::function<void()> fn) {
  if (at < now_) at = now_;
  const uint64_t id = next_id_++;
  Entry e;
  e.at = at;
  e.seq = next_seq_++;
  e.id = id;
  e.fn = std::make_shared<std::function<void()>>(std::move(fn));
  heap_.push_back(std::move(e));
  std::push_heap(heap_.begin(), heap_.end(), EntryCompare{});
  return EventId{id};
}

EventId Scheduler::schedule(Duration delay, std::function<void()> fn) {
  if (delay.us < 0) delay.us = 0;
  return schedule_at(now_ + delay, std::move(fn));
}

bool Scheduler::cancel(EventId id) {
  if (!id.valid()) return false;
  // Mark; the entry is discarded lazily at pop time, or in bulk once
  // cancelled entries dominate the heap.
  if (!cancelled_.insert(id.value).second) return false;
  if (heap_.size() >= kCompactFloor && cancelled_.size() * 2 > heap_.size()) {
    compact();
  }
  return true;
}

void Scheduler::compact() {
  std::erase_if(heap_, [&](const Entry& e) {
    auto it = cancelled_.find(e.id);
    if (it == cancelled_.end()) return false;
    cancelled_.erase(it);
    return true;
  });
  // Anything left never matched a queued entry (it already fired or was
  // compacted away before): forget it so the set cannot grow either.
  cancelled_.clear();
  std::make_heap(heap_.begin(), heap_.end(), EntryCompare{});
}

size_t Scheduler::run_until(TimePoint until) {
  size_t count = 0;
  while (!heap_.empty()) {
    if (heap_.front().at > until) break;
    std::pop_heap(heap_.begin(), heap_.end(), EntryCompare{});
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    if (auto it = cancelled_.find(e.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = e.at;
    ++executed_;
    ++count;
    (*e.fn)();
  }
  // The clock always reaches the requested horizon, whether or not
  // events remain beyond it.
  if (now_ < until) now_ = until;
  return count;
}

size_t Scheduler::run() {
  size_t count = 0;
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), EntryCompare{});
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    if (auto it = cancelled_.find(e.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = e.at;
    ++executed_;
    ++count;
    (*e.fn)();
  }
  return count;
}

}  // namespace dapes::sim
