/// @file
/// Deterministic fault injection for open-membership swarms.
///
/// The paper's trials (and every scenario family before the churn.*
/// one) run a fixed node population. This layer makes node lifecycle a
/// first-class simulated event instead: a per-trial `FaultPlan` is
/// *compiled* from `FaultParams` knobs before the trial starts — Poisson
/// leave/join churn, crash+restart outages, flash-crowd arrival waves,
/// seeder departure — and then installed into the scheduler as ordinary
/// events that the harness applies (retire/revive on the medium, timer
/// sweep via `Scheduler::cancel_for_node`, peer crash/restart).
///
/// Determinism discipline (the channel layer's keyed-draw pattern):
/// every draw comes from streams derived via `common::derive_seed` from
/// the trial seed and a fixed tag, at compile time, on the coordinator —
/// never during the trial, never from the medium's shared stream. The
/// plan is therefore a pure function of (params, population, seed), so
/// any `--jobs` x `--trial-threads` combination and grid-vs-brute see
/// the identical fault sequence. With every knob at its default the plan
/// is empty and nothing in the trial changes by a single draw — the
/// fixed-population path stays the byte-identical reference (DESIGN.md
/// "Fault injection & open membership").
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/scheduler.hpp"

namespace dapes::sim {

using common::TimePoint;

/// Per-trial fault-injection knobs, embedded in `ScenarioParams` the way
/// `ChannelParams` is. All defaults are "off": a default-constructed
/// FaultParams compiles to an empty plan and the harness skips the
/// wiring entirely, keeping the paper sweeps byte-identical.
struct FaultParams {
  /// Per-removable-node Poisson departure rate (Hz). The aggregate rate
  /// scales with the currently removable population, like independent
  /// exponential lifetimes.
  double leave_rate_hz = 0.0;
  /// Fraction of departures that are crash+restart outages instead of
  /// permanent leaves.
  double crash_fraction = 0.0;
  /// Outage duration for crashed nodes; the restart is skipped (the
  /// crash becomes permanent) if it would land past the sim limit.
  double restart_delay_s = 30.0;
  /// Latent peers admitted in one arrival wave (the flash crowd).
  int flash_crowd_size = 0;
  /// When the wave starts (seconds).
  double flash_crowd_at_s = 60.0;
  /// Arrivals spread uniformly over this window (seconds).
  double flash_crowd_window_s = 10.0;
  /// Poisson admission rate (Hz) from the remaining latent pool,
  /// starting after warmup_s.
  double join_rate_hz = 0.0;
  /// Producer/seeder retirement time (seconds; < 0 = never). The
  /// starvation axis: the swarm must finish from peer stores alone.
  double seeder_departure_s = -1.0;
  /// Fraction of the initial non-producer downloaders that lie in their
  /// availability bitmaps (advertise everything, serve nothing).
  double adversarial_fraction = 0.0;
  /// No departures before this time (lets discovery bootstrap).
  double warmup_s = 5.0;
  /// Departures pause while the removable pool is at or below this
  /// fraction of its initial size (the swarm never empties out).
  double min_alive_fraction = 0.25;
  /// Fault-stream seed; 0 derives one from the trial seed, any other
  /// value decouples the fault axis from the trial axis.
  uint64_t seed = 0;
  /// Install the harness fault wiring even when the plan is empty. The
  /// zero-churn equivalence suite sets this so "churn scenario with all
  /// rates zero" exercises the wired path, not a silent fallback.
  bool force_wiring = false;

  /// True when any knob is active (or wiring is forced): the harness
  /// builds latent pools, compiles and installs the plan only then.
  bool any() const {
    return leave_rate_hz > 0.0 || join_rate_hz > 0.0 ||
           flash_crowd_size > 0 || seeder_departure_s >= 0.0 ||
           adversarial_fraction > 0.0 || force_wiring;
  }
};

/// What a compiled fault event does to its target node.
enum class FaultKind : uint8_t {
  kLeave = 0,    ///< permanent departure
  kCrash,        ///< departure with a scheduled restart
  kRestart,      ///< end of a crash outage
  kJoin,         ///< admission of a latent node
  kSeederLeave,  ///< the producer retires (starvation axis)
};

/// Dotted well-known name of @p kind (for logs and tests).
const char* fault_kind_name(FaultKind kind);

/// One compiled lifecycle event.
struct FaultEvent {
  TimePoint at;                ///< when it fires
  FaultKind kind = FaultKind::kLeave;  ///< what happens
  uint32_t target = 0;         ///< the node it happens to
};

/// The compiled, immutable fault schedule of one trial.
class FaultPlan {
 public:
  /// The node pools compile() draws from. The harness fills these with
  /// medium node ids after building the fixed population.
  struct Population {
    /// Nodes eligible for leave/crash draws (downloaders except the
    /// producer, plus forwarders; never stationary repos).
    std::vector<uint32_t> removable;
    /// Pre-created latent nodes consumed by flash-crowd and join
    /// events, in order.
    std::vector<uint32_t> latent;
    /// The producer node (seeder_departure_s target).
    uint32_t seeder = 0;
    /// False when the trial has no producer to retire.
    bool has_seeder = false;
  };

  /// Compile the fault schedule: a deterministic membership walk over
  /// the removable pool (Poisson leaves at `leave_rate_hz *
  /// pool.size()`, crash victims re-entering the pool at restart),
  /// flash-crowd arrivals, Poisson admissions consuming the latent pool
  /// in order, and the seeder departure. Pure function of its
  /// arguments; events come back sorted by (time, kind, target).
  static FaultPlan compile(const FaultParams& params,
                           const Population& population, double sim_limit_s,
                           uint64_t trial_seed);

  /// Deterministically choose `floor(adversarial_fraction * n)` liars
  /// from @p candidates (keyed shuffle of a copy; result sorted). Static
  /// and population-independent so the harness can flag peers at
  /// construction time, before the plan exists.
  static std::vector<uint32_t> pick_adversaries(
      const FaultParams& params, const std::vector<uint32_t>& candidates,
      uint64_t trial_seed);

  /// The compiled schedule, sorted by time.
  const std::vector<FaultEvent>& events() const { return events_; }

  /// Number of kJoin events — the latent nodes that actually get
  /// admitted (the completion-tracker expectation grows by this).
  size_t admitted_joins() const;

  /// Applies one fired fault event to the trial (harness-provided).
  using ApplyFn = std::function<void(const FaultEvent&)>;

  /// Schedule every compiled event into @p sched (unowned — fault
  /// events must survive their own target's cancellation sweep). Each
  /// firing traces `fault.inject` and then invokes @p apply. Call once,
  /// at setup time.
  void install(Scheduler& sched, ApplyFn apply) const;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace dapes::sim
