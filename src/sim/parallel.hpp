/// @file
/// Intra-trial worker pool for phase-parallel event execution.
///
/// The medium's parallel delivery engine (DESIGN.md "Parallel trial
/// interior") decomposes each delivery batch into per-node task chains and
/// hands them to this pool. The pool is deliberately dumb: it runs N tasks
/// distributed over its lanes and returns when all are done — every
/// determinism concern (canonical ordering, staged scheduler mailboxes)
/// lives in the Scheduler's phase API, so task-to-lane placement is free
/// to be timing-dependent.
///
/// A pool with one lane never spawns a thread and runs tasks inline on
/// the caller, which makes `--trial-threads 1` exercise the exact staging
/// code path of `--trial-threads N` with zero thread-timing variance.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dapes::sim {

/// Fixed-size worker pool; the constructing thread participates as lane 0,
/// so `lanes` is the total concurrency. Workers park between batches.
class ParallelExecutor {
 public:
  /// Pool with @p lanes total lanes (>= 1); spawns lanes-1 threads.
  explicit ParallelExecutor(int lanes);
  ~ParallelExecutor();
  ParallelExecutor(const ParallelExecutor&) = delete;             ///< no copy
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;  ///< no copy

  /// Total concurrency (threads + the calling thread).
  size_t lanes() const { return lanes_; }

  /// Run fn(0..count-1), each exactly once, distributed over the lanes;
  /// returns when all are done. Tasks must be independent (the caller's
  /// chains already serialize per-node work). The first exception thrown
  /// by any task is rethrown here after every task has drained.
  void run(size_t count, const std::function<void(size_t)>& fn);

 private:
  void worker_loop();
  /// Pull-and-run tasks of the current batch until the index runs out.
  void drain(const std::function<void(size_t)>& fn, size_t count);

  size_t lanes_ = 1;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a batch
  std::condition_variable done_cv_;   // coordinator waits for completion
  const std::function<void(size_t)>* job_ = nullptr;
  size_t job_count_ = 0;
  size_t next_index_ = 0;
  size_t in_flight_ = 0;  // tasks picked up but not finished
  bool shutdown_ = false;
  std::exception_ptr first_error_;
};

}  // namespace dapes::sim
