#include "sim/mobility.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace dapes::sim {

RandomDirectionMobility::RandomDirectionMobility(Vec2 start, Params params,
                                                 common::Rng rng)
    : params_(params), rng_(rng) {
  legs_.push_back(make_leg(TimePoint::zero(), params_.field.clamp(start)));
}

RandomDirectionMobility::Leg RandomDirectionMobility::make_leg(
    TimePoint start_time, Vec2 start_pos) {
  double angle = rng_.uniform(0.0, 2.0 * std::numbers::pi);
  double speed = rng_.uniform(params_.speed_min, params_.speed_max);
  double leg_seconds = rng_.uniform(params_.leg_min.to_seconds(),
                                    params_.leg_max.to_seconds());
  Leg leg;
  leg.start_time = start_time;
  leg.end_time = start_time + Duration::seconds(leg_seconds);
  leg.start_pos = start_pos;
  leg.velocity = Vec2{speed * std::cos(angle), speed * std::sin(angle)};
  return leg;
}

Vec2 RandomDirectionMobility::move_with_reflection(Vec2 from, Vec2& velocity,
                                                   double dt,
                                                   const Field& field) {
  // Advance in sub-steps, reflecting the velocity component that crosses a
  // boundary. A leg is at most tens of seconds so the loop runs a handful
  // of iterations in the worst case.
  Vec2 pos = from;
  double remaining = dt;
  for (int guard = 0; guard < 64 && remaining > 1e-12; ++guard) {
    Vec2 target = pos + velocity * remaining;
    if (field.contains(target)) {
      return target;
    }
    // Find the earliest boundary-crossing time.
    double t_hit = remaining;
    if (velocity.x < 0) t_hit = std::min(t_hit, -pos.x / velocity.x);
    if (velocity.x > 0) t_hit = std::min(t_hit, (field.width - pos.x) / velocity.x);
    if (velocity.y < 0) t_hit = std::min(t_hit, -pos.y / velocity.y);
    if (velocity.y > 0) t_hit = std::min(t_hit, (field.height - pos.y) / velocity.y);
    if (t_hit < 0) t_hit = 0;
    pos = field.clamp(pos + velocity * t_hit);
    remaining -= t_hit;
    // Reflect whichever components sit on a wall and point outward.
    const double eps = 1e-9;
    if ((pos.x <= eps && velocity.x < 0) ||
        (pos.x >= field.width - eps && velocity.x > 0)) {
      velocity.x = -velocity.x;
    }
    if ((pos.y <= eps && velocity.y < 0) ||
        (pos.y >= field.height - eps && velocity.y > 0)) {
      velocity.y = -velocity.y;
    }
  }
  return field.clamp(pos);
}

void RandomDirectionMobility::extend_to(TimePoint t) {
  while (legs_.back().end_time < t) {
    const Leg& last = legs_.back();
    Vec2 vel = last.velocity;
    double dt = (last.end_time - last.start_time).to_seconds();
    Vec2 end_pos =
        move_with_reflection(last.start_pos, vel, dt, params_.field);
    legs_.push_back(make_leg(last.end_time, end_pos));
  }
}

Vec2 RandomDirectionMobility::position_at(TimePoint t) {
  if (t < legs_.front().start_time) t = legs_.front().start_time;
  extend_to(t);
  // The queried time is almost always in the last leg or near it; scan
  // backwards.
  for (size_t i = legs_.size(); i-- > 0;) {
    const Leg& leg = legs_[i];
    if (t >= leg.start_time) {
      Vec2 vel = leg.velocity;
      double dt = (t - leg.start_time).to_seconds();
      return move_with_reflection(leg.start_pos, vel, dt, params_.field);
    }
  }
  return legs_.front().start_pos;
}

WaypointMobility::WaypointMobility(std::vector<Waypoint> waypoints)
    : waypoints_(std::move(waypoints)) {
  if (waypoints_.empty()) {
    throw std::invalid_argument("WaypointMobility: empty waypoint list");
  }
  for (size_t i = 1; i < waypoints_.size(); ++i) {
    if (waypoints_[i].at < waypoints_[i - 1].at) {
      throw std::invalid_argument("WaypointMobility: unsorted waypoints");
    }
    double span = (waypoints_[i].at - waypoints_[i - 1].at).to_seconds();
    double dist = distance(waypoints_[i].pos, waypoints_[i - 1].pos);
    if (dist <= 0.0) continue;
    max_speed_ = span > 0.0
                     ? std::max(max_speed_, dist / span)
                     : std::numeric_limits<double>::infinity();
  }
}

Vec2 WaypointMobility::position_at(TimePoint t) {
  if (t <= waypoints_.front().at) return waypoints_.front().pos;
  if (t >= waypoints_.back().at) return waypoints_.back().pos;
  for (size_t i = 1; i < waypoints_.size(); ++i) {
    if (t <= waypoints_[i].at) {
      const Waypoint& a = waypoints_[i - 1];
      const Waypoint& b = waypoints_[i];
      double span = (b.at - a.at).to_seconds();
      if (span <= 0) return b.pos;
      double frac = (t - a.at).to_seconds() / span;
      return a.pos + (b.pos - a.pos) * frac;
    }
  }
  return waypoints_.back().pos;
}

RandomWaypointMobility::RandomWaypointMobility(Vec2 start, Params params,
                                               common::Rng rng)
    : params_(params), rng_(rng) {
  if (params_.speed_min <= 0.0 || params_.speed_max < params_.speed_min) {
    throw std::invalid_argument("RandomWaypointMobility: bad speed bounds");
  }
  if (params_.pause.us < 0) {
    throw std::invalid_argument("RandomWaypointMobility: negative pause");
  }
  legs_.push_back(make_leg(TimePoint::zero(), params_.field.clamp(start)));
}

RandomWaypointMobility::Leg RandomWaypointMobility::make_leg(
    TimePoint start_time, Vec2 from) {
  Vec2 dest{rng_.uniform(0.0, params_.field.width),
            rng_.uniform(0.0, params_.field.height)};
  double speed = rng_.uniform(params_.speed_min, params_.speed_max);
  Leg leg;
  leg.start_time = start_time;
  leg.arrive_time =
      start_time + Duration::seconds(distance(from, dest) / speed);
  leg.end_time = leg.arrive_time + params_.pause;
  // Zero-length pauses on a zero-length trip would stall extend_to; give
  // every leg a strictly positive span.
  if (leg.end_time <= leg.start_time) {
    leg.end_time = leg.start_time + Duration::microseconds(1);
  }
  leg.from = from;
  leg.to = dest;
  return leg;
}

void RandomWaypointMobility::extend_to(TimePoint t) {
  while (legs_.back().end_time < t) {
    const Leg& last = legs_.back();
    legs_.push_back(make_leg(last.end_time, last.to));
  }
}

Vec2 RandomWaypointMobility::position_at(TimePoint t) {
  if (t < legs_.front().start_time) t = legs_.front().start_time;
  extend_to(t);
  for (size_t i = legs_.size(); i-- > 0;) {
    const Leg& leg = legs_[i];
    if (t >= leg.start_time) {
      if (t >= leg.arrive_time) return leg.to;  // travelling done: pausing
      double span = (leg.arrive_time - leg.start_time).to_seconds();
      if (span <= 0.0) return leg.to;
      double frac = (t - leg.start_time).to_seconds() / span;
      return leg.from + (leg.to - leg.from) * frac;
    }
  }
  return legs_.front().from;
}

GroupMobility::GroupMobility(std::shared_ptr<MobilityModel> anchor,
                             Vec2 offset, Field field)
    : anchor_(std::move(anchor)), offset_(offset), field_(field) {
  if (!anchor_) {
    throw std::invalid_argument("GroupMobility: null anchor");
  }
}

Vec2 GroupMobility::position_at(TimePoint t) {
  return field_.clamp(anchor_->position_at(t) + offset_);
}

}  // namespace dapes::sim
