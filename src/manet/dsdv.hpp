// DSDV — Destination-Sequenced Distance Vector routing (Perkins &
// Bhagwat, 1994). The proactive protocol underneath Bithoc.
//
// Every node periodically broadcasts its full routing table; entries
// carry destination-issued even sequence numbers so fresher information
// wins and count-to-infinity is avoided. The periodic dumps are the
// overhead the paper charges to Bithoc ("relies on proactive routing to
// maintain routes towards peers").
#pragma once

#include <map>

#include "common/time.hpp"
#include "ip/node.hpp"

namespace dapes::manet {

using common::Duration;
using common::TimePoint;
using ip::Address;
using ip::Packet;

class Dsdv final : public ip::RoutingProtocol {
 public:
  struct Params {
    Duration update_period = Duration::seconds(5.0);
    /// Entries not refreshed for this long are considered broken.
    Duration route_lifetime = Duration::seconds(20.0);
    uint8_t max_metric = 16;
    /// Minimum spacing for triggered (event-driven) dumps.
    Duration triggered_min_gap = Duration::seconds(1.0);
  };

  Dsdv() : Dsdv(Params{}) {}
  explicit Dsdv(Params params) : params_(params) {}

  void attach(ip::Node& node) override;
  bool send(Packet packet) override;
  void forward(Packet packet) override;
  void on_control(const Packet& packet) override;
  uint64_t control_messages() const override { return control_messages_; }
  bool has_route(Address dst) const override;

  /// Next hop for dst, or kInvalid.
  Address next_hop(Address dst) const;
  /// Hop count for dst (max_metric when unknown) — Bithoc uses this to
  /// split close (<=2 hops) from far neighbors.
  uint8_t metric(Address dst) const;

  size_t table_size() const { return table_.size(); }

 private:
  struct Route {
    Address next_hop = ip::kInvalid;
    uint8_t metric = 0;
    uint32_t seq = 0;
    TimePoint updated{};
  };

  void broadcast_update();
  common::Bytes encode_table() const;
  bool route_fresh(const Route& r) const;

  Params params_;
  ip::Node* node_ = nullptr;
  std::map<Address, Route> table_;
  uint32_t own_seq_ = 0;
  uint64_t control_messages_ = 0;
  TimePoint last_triggered_{-1'000'000'000};
};

}  // namespace dapes::manet
