// DSR — Dynamic Source Routing (Johnson & Maltz). The reactive protocol
// underneath Ekta.
//
// Routes are discovered on demand: the source floods a Route Request;
// the target (or any node with a cached route) returns a Route Reply
// along the reversed path; data then carries the full source route. A
// forwarding node that finds its next hop unreachable sends a Route
// Error back, purging broken caches. Reactive discovery gives Ekta lower
// overhead than Bithoc's proactive DSDV, at the cost of discovery
// latency — both effects the paper reports.
#pragma once

#include <deque>
#include <map>
#include <set>
#include <vector>

#include "common/time.hpp"
#include "ip/node.hpp"

namespace dapes::manet {

using common::Duration;
using common::TimePoint;
using ip::Address;
using ip::Packet;

class Dsr final : public ip::RoutingProtocol {
 public:
  struct Params {
    /// Long enough for corner-to-corner paths in the 300 m field even at
    /// the shortest WiFi ranges.
    uint8_t max_route_len = 16;
    /// Nodes moving 2-10 m/s break links within seconds; cached paths go
    /// stale quickly.
    Duration route_lifetime = Duration::seconds(15.0);
    Duration discovery_timeout = Duration::seconds(2.0);
    int max_discovery_retries = 3;
    size_t send_buffer_cap = 64;
    /// Pause after a fully failed discovery before retrying that target.
    Duration discovery_cooldown = Duration::seconds(5.0);
  };

  Dsr() : Dsr(Params{}) {}
  explicit Dsr(Params params) : params_(params) {}

  void attach(ip::Node& node) override;
  bool send(Packet packet) override;
  void forward(Packet packet) override;
  void on_control(const Packet& packet) override;
  void on_deliver(const Packet& packet) override;
  uint64_t control_messages() const override { return control_messages_; }
  bool has_route(Address dst) const override;

  size_t cache_size() const { return cache_.size(); }

 private:
  struct CachedRoute {
    std::vector<Address> path;  // includes source (=us) and destination
    TimePoint learned{};
  };

  // Control message payload types.
  enum class Kind : uint8_t { kRreq = 1, kRrep = 2, kRerr = 3 };

  void start_discovery(Address target, int attempt);
  void send_along_route(Packet packet, const std::vector<Address>& path);
  void handle_rreq(const Packet& packet);
  void handle_rrep(const Packet& packet);
  void handle_rerr(const Packet& packet);
  void learn_route(const std::vector<Address>& path);
  void drain_buffer(Address dst);

  static common::Bytes encode_control(Kind kind, uint32_t id, Address origin,
                                      Address target,
                                      const std::vector<Address>& path);
  struct Control {
    Kind kind;
    uint32_t id;
    Address origin;
    Address target;
    std::vector<Address> path;
  };
  static std::optional<Control> decode_control(common::BytesView payload);

  Params params_;
  ip::Node* node_ = nullptr;
  std::map<Address, CachedRoute> cache_;
  std::map<Address, std::deque<Packet>> send_buffer_;
  std::set<std::pair<Address, uint32_t>> seen_rreq_;
  std::set<std::pair<Address, uint32_t>> seen_rerr_;
  std::map<Address, int> pending_discovery_;  // target -> attempt
  std::map<Address, TimePoint> discovery_cooldown_;
  uint32_t next_rreq_id_ = 1;
  uint32_t next_rerr_id_ = 1;
  uint64_t control_messages_ = 0;
};

}  // namespace dapes::manet
