#include "manet/dsr.hpp"

#include <algorithm>

namespace dapes::manet {

void Dsr::attach(ip::Node& node) { node_ = &node; }

bool Dsr::has_route(Address dst) const {
  auto it = cache_.find(dst);
  return it != cache_.end() &&
         node_->scheduler().now() - it->second.learned <=
             params_.route_lifetime;
}

common::Bytes Dsr::encode_control(Kind kind, uint32_t id, Address origin,
                                  Address target,
                                  const std::vector<Address>& path) {
  common::Bytes out;
  out.push_back(static_cast<uint8_t>(kind));
  common::append_be(out, id, 4);
  common::append_be(out, origin, 4);
  common::append_be(out, target, 4);
  common::append_be(out, path.size(), 2);
  for (Address a : path) common::append_be(out, a, 4);
  return out;
}

std::optional<Dsr::Control> Dsr::decode_control(common::BytesView payload) {
  if (payload.size() < 15) return std::nullopt;
  Control c;
  c.kind = static_cast<Kind>(payload[0]);
  c.id = static_cast<uint32_t>(common::read_be(payload, 1, 4));
  c.origin = static_cast<Address>(common::read_be(payload, 5, 4));
  c.target = static_cast<Address>(common::read_be(payload, 9, 4));
  size_t n = common::read_be(payload, 13, 2);
  if (payload.size() != 15 + 4 * n) return std::nullopt;
  c.path.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    c.path.push_back(
        static_cast<Address>(common::read_be(payload, 15 + 4 * i, 4)));
  }
  return c;
}

bool Dsr::send(Packet packet) {
  Address dst = packet.dst;
  if (has_route(dst)) {
    send_along_route(std::move(packet), cache_[dst].path);
    return true;
  }
  auto& buffer = send_buffer_[dst];
  if (buffer.size() >= params_.send_buffer_cap) buffer.pop_front();
  buffer.push_back(std::move(packet));
  auto cooldown = discovery_cooldown_.find(dst);
  bool cooling = cooldown != discovery_cooldown_.end() &&
                 cooldown->second > node_->scheduler().now();
  if (!pending_discovery_.contains(dst) && !cooling) {
    start_discovery(dst, 0);
  }
  return true;  // buffered; will go out (or be dropped) asynchronously
}

void Dsr::send_along_route(Packet packet, const std::vector<Address>& path) {
  // path[0] == us; next hop is path[1].
  if (path.size() < 2) return;
  packet.route = path;
  packet.route_pos = 0;
  packet.next_hop = path[1];
  node_->send_link(std::move(packet), "ip-data");
}

void Dsr::start_discovery(Address target, int attempt) {
  if (attempt > params_.max_discovery_retries) {
    pending_discovery_.erase(target);
    send_buffer_.erase(target);  // give up; transport layer re-tries
    // Cool down before the next discovery for this target: repeated
    // failures back-to-back just burn the channel.
    discovery_cooldown_[target] =
        node_->scheduler().now() + params_.discovery_cooldown;
    return;
  }
  pending_discovery_[target] = attempt;

  Packet rreq;
  rreq.src = node_->address();
  rreq.dst = ip::kBroadcast;
  rreq.next_hop = ip::kBroadcast;
  rreq.proto = ip::Proto::kDsr;
  // Expanding-ring search: try a cheap local flood first, widen on retry.
  uint8_t ring = static_cast<uint8_t>(
      std::min<int>(params_.max_route_len, 2 << attempt));
  rreq.ttl = ring;
  uint32_t id = next_rreq_id_++;
  rreq.payload = encode_control(Kind::kRreq, id, node_->address(), target,
                                {node_->address()});
  ++control_messages_;
  node_->send_link(std::move(rreq), "dsr-rreq");

  // Retry with backoff while the route stays unknown.
  Duration wait{params_.discovery_timeout.us * (1 << attempt)};
  node_->scheduler().schedule(wait, [this, target, attempt] {
    if (!pending_discovery_.contains(target)) return;
    if (has_route(target)) {
      // Route appeared out-of-band (promiscuous learning): release the
      // discovery slot and flush whatever waited on it.
      pending_discovery_.erase(target);
      drain_buffer(target);
      return;
    }
    start_discovery(target, attempt + 1);
  });
}

void Dsr::on_deliver(const Packet& packet) {
  // Harvest the source route the packet carried: the reversed route is a
  // just-proven path back to the sender (DSR promiscuous route learning).
  if (packet.route.size() < 2) return;
  std::vector<Address> reverse(packet.route.rbegin(), packet.route.rend());
  learn_route(reverse);
}

void Dsr::forward(Packet packet) {
  // Source-routed data in transit.
  if (packet.route.empty()) return;
  // Promiscuous learning: both directions of the carried route pass
  // through us and were fresh at the sender an instant ago.
  learn_route(packet.route);
  {
    std::vector<Address> reverse(packet.route.rbegin(), packet.route.rend());
    learn_route(reverse);
  }
  size_t pos = packet.route_pos;
  // We should be route[pos+1].
  if (pos + 1 >= packet.route.size() ||
      packet.route[pos + 1] != node_->address()) {
    return;
  }
  if (pos + 2 >= packet.route.size()) return;  // we'd be the destination
  Address next = packet.route[pos + 2];
  if (!node_->neighbor_reachable(next)) {
    // DSR salvaging: if we have our own fresh route to the destination,
    // splice it in and keep the packet alive instead of dropping it.
    Address final_dst = packet.route.back();
    if (packet.ttl > 0 && has_route(final_dst)) {
      const auto& own = cache_[final_dst].path;
      if (own.size() >= 2 && node_->neighbor_reachable(own[1])) {
        Packet salvaged = packet;
        salvaged.ttl -= 1;
        salvaged.route = own;
        salvaged.route_pos = 0;
        salvaged.next_hop = own[1];
        node_->send_link(std::move(salvaged), "ip-data");
        return;
      }
    }
    // Link break: Route Error back to the origin, drop the packet.
    Packet rerr;
    rerr.src = node_->address();
    rerr.dst = packet.route.front();
    rerr.next_hop = ip::kBroadcast;  // flooded back, TTL-limited
    rerr.proto = ip::Proto::kDsr;
    rerr.ttl = 2;
    uint32_t id = next_rerr_id_++;
    rerr.payload = encode_control(Kind::kRerr, id, node_->address(), next,
                                  packet.route);
    seen_rerr_.insert({node_->address(), id});
    ++control_messages_;
    node_->send_link(std::move(rerr), "dsr-rerr");
    return;
  }
  packet.route_pos = static_cast<uint8_t>(pos + 1);
  packet.next_hop = next;
  node_->send_link(std::move(packet), "ip-data");
}

void Dsr::learn_route(const std::vector<Address>& path) {
  // Cache the route from us to every downstream node on the path.
  auto self = std::find(path.begin(), path.end(), node_->address());
  if (self == path.end()) return;
  std::vector<Address> suffix(self, path.end());
  TimePoint now = node_->scheduler().now();
  for (size_t i = 1; i < suffix.size(); ++i) {
    std::vector<Address> sub(suffix.begin(), suffix.begin() + i + 1);
    Address dest = sub.back();
    cache_[dest] = CachedRoute{std::move(sub), now};
  }
}

void Dsr::on_control(const Packet& packet) {
  auto control = decode_control(
      common::BytesView(packet.payload.data(), packet.payload.size()));
  if (!control) return;
  switch (control->kind) {
    case Kind::kRreq:
      handle_rreq(packet);
      break;
    case Kind::kRrep:
      handle_rrep(packet);
      break;
    case Kind::kRerr:
      handle_rerr(packet);
      break;
  }
}

void Dsr::handle_rreq(const Packet& packet) {
  auto c = *decode_control(
      common::BytesView(packet.payload.data(), packet.payload.size()));
  if (c.origin == node_->address()) return;
  if (!seen_rreq_.insert({c.origin, c.id}).second) return;  // duplicate
  if (std::find(c.path.begin(), c.path.end(), node_->address()) !=
      c.path.end()) {
    return;  // already on the path (stale copy)
  }

  std::vector<Address> path = c.path;
  path.push_back(node_->address());

  // Learning opportunity: the reversed prefix is a route to the origin.
  std::vector<Address> reverse(path.rbegin(), path.rend());
  learn_route(reverse);

  if (c.target == node_->address()) {
    // We are the target: unicast a Route Reply along the reversed path.
    Packet rrep;
    rrep.src = node_->address();
    rrep.dst = c.origin;
    rrep.proto = ip::Proto::kDsr;
    rrep.ttl = params_.max_route_len;
    rrep.payload = encode_control(Kind::kRrep, c.id, c.origin, c.target, path);
    rrep.route = reverse;
    rrep.route_pos = 0;
    rrep.next_hop = reverse.size() > 1 ? reverse[1] : c.origin;
    ++control_messages_;
    node_->send_link(std::move(rrep), "dsr-rrep");
    return;
  }

  if (packet.ttl == 0 || path.size() >= params_.max_route_len) return;

  Packet relay = packet;
  relay.ttl -= 1;
  relay.payload = encode_control(Kind::kRreq, c.id, c.origin, c.target, path);
  ++control_messages_;
  node_->send_link(std::move(relay), "dsr-rreq");
}

void Dsr::handle_rrep(const Packet& packet) {
  auto c = *decode_control(
      common::BytesView(packet.payload.data(), packet.payload.size()));

  if (packet.dst == node_->address()) {
    // Discovery complete at the origin.
    learn_route(c.path);
    pending_discovery_.erase(c.target);
    drain_buffer(c.target);
    return;
  }

  // Relay the RREP along its source route (reversed discovery path).
  if (packet.route.empty()) return;
  size_t pos = packet.route_pos;
  if (pos + 1 >= packet.route.size() ||
      packet.route[pos + 1] != node_->address()) {
    return;
  }
  learn_route(c.path);  // intermediate nodes cache too
  if (pos + 2 >= packet.route.size()) return;
  Packet relay = packet;
  relay.route_pos = static_cast<uint8_t>(pos + 1);
  relay.next_hop = relay.route[pos + 2];
  ++control_messages_;
  node_->send_link(std::move(relay), "dsr-rrep");
}

void Dsr::handle_rerr(const Packet& packet) {
  auto c = *decode_control(
      common::BytesView(packet.payload.data(), packet.payload.size()));
  // Each RERR is processed and relayed at most once per node, or the
  // flood amplifies exponentially.
  if (!seen_rerr_.insert({c.origin, c.id}).second) return;
  if (seen_rerr_.size() > 8192) seen_rerr_.clear();
  // Purge every cached route using the broken link (reporter -> target).
  for (auto it = cache_.begin(); it != cache_.end();) {
    const auto& path = it->second.path;
    bool broken = false;
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      if (path[i] == c.origin && path[i + 1] == c.target) {
        broken = true;
        break;
      }
    }
    it = broken ? cache_.erase(it) : ++it;
  }
  // Relay toward the packet's destination (the discovery origin) by
  // re-flooding with TTL (cheap approximation of reverse-path delivery).
  if (packet.dst != node_->address() && packet.ttl > 0) {
    Packet relay = packet;
    relay.ttl -= 1;
    relay.next_hop = ip::kBroadcast;
    ++control_messages_;
    node_->send_link(std::move(relay), "dsr-rerr");
  }
}

void Dsr::drain_buffer(Address dst) {
  auto it = send_buffer_.find(dst);
  if (it == send_buffer_.end()) return;
  std::deque<Packet> pending = std::move(it->second);
  send_buffer_.erase(it);
  for (auto& p : pending) {
    if (has_route(dst)) {
      send_along_route(std::move(p), cache_[dst].path);
    }
  }
}

}  // namespace dapes::manet
