#include "manet/dsdv.hpp"

namespace dapes::manet {

void Dsdv::attach(ip::Node& node) {
  node_ = &node;
  // Self route, metric 0.
  table_[node.address()] = Route{node.address(), 0, own_seq_, TimePoint{}};
  // Desynchronized periodic full dumps.
  Duration initial = Duration::microseconds(static_cast<int64_t>(
      node.rng().next_below(static_cast<uint64_t>(params_.update_period.us))));
  node.scheduler().schedule(initial, [this] { broadcast_update(); });
}

bool Dsdv::route_fresh(const Route& r) const {
  if (r.next_hop == node_->address()) return true;  // self
  return node_->scheduler().now() - r.updated <= params_.route_lifetime &&
         r.metric < params_.max_metric;
}

Address Dsdv::next_hop(Address dst) const {
  auto it = table_.find(dst);
  if (it == table_.end() || !route_fresh(it->second)) return ip::kInvalid;
  return it->second.next_hop;
}

uint8_t Dsdv::metric(Address dst) const {
  auto it = table_.find(dst);
  if (it == table_.end() || !route_fresh(it->second)) {
    return params_.max_metric;
  }
  return it->second.metric;
}

bool Dsdv::has_route(Address dst) const {
  return next_hop(dst) != ip::kInvalid;
}

bool Dsdv::send(Packet packet) {
  Address hop = next_hop(packet.dst);
  if (hop == ip::kInvalid) return false;
  packet.next_hop = hop;
  node_->send_link(std::move(packet), "ip-data");
  return true;
}

void Dsdv::forward(Packet packet) {
  if (packet.ttl == 0) return;
  packet.ttl -= 1;
  Address hop = next_hop(packet.dst);
  if (hop == ip::kInvalid) return;  // route broke; TCP above retransmits
  packet.next_hop = hop;
  node_->send_link(std::move(packet), "ip-data");
}

common::Bytes Dsdv::encode_table() const {
  // Entries: (dst, metric, seq) triples.
  common::Bytes out;
  common::append_be(out, table_.size(), 2);
  for (const auto& [dst, route] : table_) {
    common::append_be(out, dst, 4);
    out.push_back(route.metric);
    common::append_be(out, route.seq, 4);
  }
  return out;
}

void Dsdv::broadcast_update() {
  own_seq_ += 2;  // destinations issue even sequence numbers
  table_[node_->address()] =
      Route{node_->address(), 0, own_seq_, node_->scheduler().now()};

  Packet update;
  update.src = node_->address();
  update.dst = ip::kBroadcast;
  update.next_hop = ip::kBroadcast;
  update.proto = ip::Proto::kDsdv;
  update.payload = encode_table();
  ++control_messages_;
  node_->send_link(std::move(update), "dsdv-update");

  Duration jitter = Duration::microseconds(static_cast<int64_t>(
      node_->rng().next_below(
          static_cast<uint64_t>(params_.update_period.us / 8) + 1)));
  node_->scheduler().schedule(params_.update_period + jitter,
                              [this] { broadcast_update(); });
}

void Dsdv::on_control(const Packet& packet) {
  common::BytesView payload(packet.payload.data(), packet.payload.size());
  if (payload.size() < 2) return;
  size_t count = common::read_be(payload, 0, 2);
  size_t offset = 2;
  TimePoint now = node_->scheduler().now();
  for (size_t i = 0; i < count; ++i) {
    if (offset + 9 > payload.size()) break;
    Address dst = static_cast<Address>(common::read_be(payload, offset, 4));
    uint8_t metric = payload[offset + 4];
    uint32_t seq =
        static_cast<uint32_t>(common::read_be(payload, offset + 5, 4));
    offset += 9;

    if (dst == node_->address()) continue;
    uint8_t new_metric =
        metric >= params_.max_metric ? params_.max_metric
                                     : static_cast<uint8_t>(metric + 1);
    auto it = table_.find(dst);
    // DSDV rule: newer sequence wins; same sequence keeps lower metric.
    if (it == table_.end() || seq > it->second.seq ||
        (seq == it->second.seq && new_metric < it->second.metric)) {
      bool new_destination = it == table_.end();
      table_[dst] = Route{packet.src, new_metric, seq, now};
      // Triggered update (DSDV's event-driven dump): propagate important
      // changes quickly instead of waiting out the periodic timer.
      if (new_destination &&
          now - last_triggered_ >= params_.triggered_min_gap) {
        last_triggered_ = now;
        node_->scheduler().schedule(
            Duration::milliseconds(
                static_cast<int64_t>(node_->rng().next_below(200))),
            [this] {
              Packet update;
              update.src = node_->address();
              update.dst = ip::kBroadcast;
              update.next_hop = ip::kBroadcast;
              update.proto = ip::Proto::kDsdv;
              update.payload = encode_table();
              ++control_messages_;
              node_->send_link(std::move(update), "dsdv-update");
            });
      }
    } else if (it->second.next_hop == packet.src) {
      it->second.updated = now;  // current next hop refreshed the route
    }
  }
}

}  // namespace dapes::manet
