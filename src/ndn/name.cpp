#include "ndn/name.hpp"

#include <charconv>
#include <stdexcept>

namespace dapes::ndn {

Component Component::from_number(uint64_t number) {
  return Component(std::to_string(number));
}

std::optional<uint64_t> Component::to_number() const {
  if (value_.empty()) return std::nullopt;
  uint64_t out = 0;
  const char* begin = reinterpret_cast<const char*>(value_.data());
  const char* end = begin + value_.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return out;
}

Name::Name(std::string_view uri) {
  size_t pos = 0;
  if (!uri.empty() && uri.front() == '/') pos = 1;
  while (pos < uri.size()) {
    size_t slash = uri.find('/', pos);
    if (slash == std::string_view::npos) slash = uri.size();
    std::string_view comp = uri.substr(pos, slash - pos);
    if (!comp.empty()) {
      components_.emplace_back(comp);
    }
    pos = slash + 1;
  }
}

Name::Name(std::initializer_list<std::string_view> components) {
  for (auto c : components) {
    components_.emplace_back(c);
  }
}

Name& Name::append(Component c) {
  components_.push_back(std::move(c));
  return *this;
}

Name& Name::append(std::string_view str) {
  components_.emplace_back(str);
  return *this;
}

Name& Name::append_number(uint64_t number) {
  components_.push_back(Component::from_number(number));
  return *this;
}

Name Name::appended(std::string_view str) const {
  Name copy = *this;
  copy.append(str);
  return copy;
}

Name Name::appended_number(uint64_t number) const {
  Name copy = *this;
  copy.append_number(number);
  return copy;
}

Name Name::prefix(size_t n) const {
  Name out;
  n = std::min(n, components_.size());
  out.components_.assign(components_.begin(), components_.begin() + n);
  return out;
}

Name Name::get_prefix_dropping(size_t n) const {
  if (n >= components_.size()) return Name();
  return prefix(components_.size() - n);
}

bool Name::is_prefix_of(const Name& other) const {
  if (components_.size() > other.components_.size()) return false;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (components_[i] != other.components_[i]) return false;
  }
  return true;
}

std::string Name::to_uri() const {
  if (components_.empty()) return "/";
  std::string out;
  for (const auto& c : components_) {
    out.push_back('/');
    out += c.to_string();
  }
  return out;
}

}  // namespace dapes::ndn
