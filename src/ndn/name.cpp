#include "ndn/name.hpp"

#include <charconv>
#include <stdexcept>

namespace dapes::ndn {

namespace {

// The historic std::hash<Name> scheme: FNV-1a over component bytes with a
// 0xff separator before each component. Kept bit-for-bit stable so
// hash-derived fingerprints (PIT dead-nonce list) do not shift.
constexpr size_t kFnvOffset = 1469598103934665603ULL;
constexpr size_t kFnvPrime = 1099511628211ULL;

size_t fnv_extend(size_t h, const Component& c) {
  h ^= 0xff;  // separator: /ab/c and /a/bc hash differently
  h *= kFnvPrime;
  for (uint8_t b : c.value()) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

void Name::ensure_hashes() const {
  if (has_hash_cache()) return;
  hashes_.clear();
  hashes_.reserve(components_.size() + 1);
  size_t h = kFnvOffset;
  hashes_.push_back(h);
  for (const auto& c : components_) {
    h = fnv_extend(h, c);
    hashes_.push_back(h);
  }
}

Component Component::from_number(uint64_t number) {
  return Component(std::to_string(number));
}

std::optional<uint64_t> Component::to_number() const {
  if (value_.empty()) return std::nullopt;
  uint64_t out = 0;
  const char* begin = reinterpret_cast<const char*>(value_.data());
  const char* end = begin + value_.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return out;
}

Name::Name(std::string_view uri) {
  size_t pos = 0;
  if (!uri.empty() && uri.front() == '/') pos = 1;
  while (pos < uri.size()) {
    size_t slash = uri.find('/', pos);
    if (slash == std::string_view::npos) slash = uri.size();
    std::string_view comp = uri.substr(pos, slash - pos);
    if (!comp.empty()) {
      components_.emplace_back(comp);
    }
    pos = slash + 1;
  }
}

Name::Name(std::initializer_list<std::string_view> components) {
  for (auto c : components) {
    components_.emplace_back(c);
  }
}

Name& Name::append(Component c) {
  if (has_hash_cache()) {
    hashes_.push_back(fnv_extend(hashes_.back(), c));
  } else {
    hashes_.clear();  // a stale partial cache must not survive the append
  }
  components_.push_back(std::move(c));
  return *this;
}

Name& Name::append(std::string_view str) { return append(Component(str)); }

Name& Name::append_number(uint64_t number) {
  return append(Component::from_number(number));
}

Name Name::appended(std::string_view str) const {
  Name copy = *this;
  copy.append(str);
  return copy;
}

Name Name::appended_number(uint64_t number) const {
  Name copy = *this;
  copy.append_number(number);
  return copy;
}

Name Name::prefix(size_t n) const {
  Name out;
  n = std::min(n, components_.size());
  out.components_.assign(components_.begin(), components_.begin() + n);
  if (has_hash_cache()) {
    out.hashes_.assign(hashes_.begin(), hashes_.begin() + n + 1);
  }
  return out;
}

Name Name::get_prefix_dropping(size_t n) const {
  if (n >= components_.size()) return Name();
  return prefix(components_.size() - n);
}

bool Name::is_prefix_of(const Name& other) const {
  if (components_.size() > other.components_.size()) return false;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (components_[i] != other.components_[i]) return false;
  }
  return true;
}

std::string Name::to_uri() const {
  if (components_.empty()) return "/";
  std::string out;
  for (const auto& c : components_) {
    out.push_back('/');
    out += c.to_string();
  }
  return out;
}

}  // namespace dapes::ndn
