// NFD-lite forwarder: the packet-processing pipeline of paper Fig. 1.
//
//   Interest:  CS ──hit──> Data back to in-face
//              └miss─> PIT ──hit──> aggregate (record in-face, stop)
//                      └miss─> insert entry, hand to ForwardingStrategy
//   Data:      PIT ──hit──> cache in CS, forward to recorded in-faces
//              └miss─> unsolicited: strategy may cache (pure forwarders do)
//
// The ForwardingStrategy hook is where DAPES lives at the network layer:
// pure-forwarder probabilistic relay + suppression timers and the
// DAPES-intermediate knowledge-driven forward/suppress logic (paper §V)
// are strategy implementations in src/dapes/.
#pragma once

#include <memory>
#include <vector>

#include "ndn/face.hpp"
#include "ndn/tables.hpp"
#include "sim/scheduler.hpp"

namespace dapes::ndn {

class Forwarder;

/// Strategy decides what happens to Interests that pass CS and PIT, sees
/// every packet heard on any face (overhearing is how DAPES intermediates
/// build their short-lived knowledge), and owns timeout behaviour.
class ForwardingStrategy {
 public:
  virtual ~ForwardingStrategy() = default;

  /// Interest accepted into the PIT; decide where (whether) to send it.
  virtual void after_receive_interest(Forwarder& fw, FaceId in_face,
                                      const Interest& interest,
                                      PitEntry& entry) = 0;

  /// PIT entry expired without data.
  virtual void on_interest_timeout(Forwarder& /*fw*/, const Name& /*name*/) {}

  /// Data arrived with no matching PIT entry; return true to cache it
  /// anyway (pure forwarders overhear-and-cache, paper §V-A).
  virtual bool cache_unsolicited(Forwarder& /*fw*/, FaceId /*in_face*/,
                                 const Data& /*data*/) {
    return false;
  }

  /// Observation hooks: fired for every packet from a non-local face,
  /// before pipeline processing. DAPES intermediates overhear bitmaps and
  /// data names here (paper §V-B).
  virtual void on_overhear_interest(Forwarder& /*fw*/, FaceId /*in_face*/,
                                    const Interest& /*interest*/) {}
  virtual void on_overhear_data(Forwarder& /*fw*/, FaceId /*in_face*/,
                                const Data& /*data*/) {}
};

/// Default strategy: multicast to all FIB next-hops except the inbound
/// face (standard NFD multicast behaviour).
class MulticastStrategy : public ForwardingStrategy {
 public:
  void after_receive_interest(Forwarder& fw, FaceId in_face,
                              const Interest& interest,
                              PitEntry& entry) override;
};

class Forwarder {
 public:
  struct Options {
    size_t cs_capacity = 4096;
    /// Cache data that satisfied a PIT entry (standard NDN behaviour).
    bool cache_solicited = true;
  };

  struct Stats {
    uint64_t interests_in = 0;
    uint64_t data_in = 0;
    uint64_t cs_hits = 0;
    uint64_t pit_aggregated = 0;
    uint64_t loops_dropped = 0;
    uint64_t hop_limit_drops = 0;
    uint64_t interests_forwarded = 0;
    uint64_t data_forwarded = 0;
    uint64_t unsolicited_data = 0;
    uint64_t pit_timeouts = 0;
  };

  Forwarder(sim::Scheduler& sched, Options options);
  Forwarder(sim::Scheduler& sched) : Forwarder(sched, Options{}) {}

  /// Register a face; the forwarder keeps shared ownership and installs
  /// its receive handlers. Returns the assigned FaceId (>= 1).
  FaceId add_face(std::shared_ptr<Face> face);

  Face* face(FaceId id);
  const std::vector<std::shared_ptr<Face>>& faces() const { return faces_; }

  void set_strategy(std::unique_ptr<ForwardingStrategy> strategy);
  ForwardingStrategy& strategy() { return *strategy_; }

  ContentStore& cs() { return cs_; }
  Pit& pit() { return pit_; }
  Fib& fib() { return fib_; }
  /// The NameTree all three tables share: a name's CS, PIT and FIB state
  /// hang off one entry, so a pipeline hop probes each table in O(1).
  NameTree& name_tree() { return *tree_; }
  sim::Scheduler& scheduler() { return sched_; }
  const Stats& stats() const { return stats_; }

  /// Strategy actions: transmit out of a specific face. These do NOT
  /// consult the FIB — the strategy already decided.
  void send_interest_to(FaceId out_face, const Interest& interest);
  void send_data_to(FaceId out_face, const Data& data);

 private:
  void on_incoming_interest(FaceId in_face, Interest interest);
  void on_incoming_data(FaceId in_face, const Data& data);
  void on_pit_expiry(Name name);

  sim::Scheduler& sched_;
  Options options_;
  std::shared_ptr<NameTree> tree_;  // shared by cs_/pit_/fib_; declared first
  ContentStore cs_;
  Pit pit_;
  Fib fib_;
  std::vector<std::shared_ptr<Face>> faces_;  // index = FaceId - 1
  std::unique_ptr<ForwardingStrategy> strategy_;
  Stats stats_;
};

}  // namespace dapes::ndn
