/// @file
/// NFD-lite forwarder: the packet-processing pipeline of paper Fig. 1.
///
///   Interest:  CS hit -> Data back to in-face; miss -> PIT hit ->
///              aggregate (record in-face, stop); miss -> insert entry,
///              hand to ForwardingStrategy.
///   Data:      PIT hit -> cache in CS, forward to recorded in-faces;
///              miss -> unsolicited: strategy may cache (pure forwarders
///              do).
///
/// The ForwardingStrategy hook is where DAPES lives at the network layer:
/// pure-forwarder probabilistic relay + suppression timers and the
/// DAPES-intermediate knowledge-driven forward/suppress logic (paper §V)
/// are strategy implementations in src/dapes/.
#pragma once

#include <memory>
#include <vector>

#include "ndn/face.hpp"
#include "ndn/tables.hpp"
#include "sim/scheduler.hpp"
#include "trace/record.hpp"

namespace dapes::ndn {

class Forwarder;

/// Strategy decides what happens to Interests that pass CS and PIT, sees
/// every packet heard on any face (overhearing is how DAPES intermediates
/// build their short-lived knowledge), and owns timeout behaviour.
class ForwardingStrategy {
 public:
  virtual ~ForwardingStrategy() = default;

  /// Interest accepted into the PIT; decide where (whether) to send it.
  virtual void after_receive_interest(Forwarder& fw, FaceId in_face,
                                      const Interest& interest,
                                      PitEntry& entry) = 0;

  /// PIT entry expired without data.
  virtual void on_interest_timeout(Forwarder& /*fw*/, const Name& /*name*/) {}

  /// Data arrived with no matching PIT entry; return true to cache it
  /// anyway (pure forwarders overhear-and-cache, paper §V-A).
  virtual bool cache_unsolicited(Forwarder& /*fw*/, FaceId /*in_face*/,
                                 const Data& /*data*/) {
    return false;
  }

  /// Observation hook: fired for every Interest from a non-local face,
  /// before pipeline processing. DAPES intermediates overhear bitmaps
  /// here (paper §V-B).
  virtual void on_overhear_interest(Forwarder& /*fw*/, FaceId /*in_face*/,
                                    const Interest& /*interest*/) {}
  /// Observation hook: fired for every Data from a non-local face,
  /// before pipeline processing.
  virtual void on_overhear_data(Forwarder& /*fw*/, FaceId /*in_face*/,
                                const Data& /*data*/) {}
};

/// Default strategy: multicast to all FIB next-hops except the inbound
/// face (standard NFD multicast behaviour).
class MulticastStrategy : public ForwardingStrategy {
 public:
  void after_receive_interest(Forwarder& fw, FaceId in_face,
                              const Interest& interest,
                              PitEntry& entry) override;
};

/// The per-node forwarding pipeline (see file comment).
class Forwarder {
 public:
  /// Forwarder configuration.
  struct Options {
    size_t cs_capacity = 4096;  ///< Content Store entry cap (LRU beyond)
    /// Cache data that satisfied a PIT entry (standard NDN behaviour).
    bool cache_solicited = true;
  };

  /// Pipeline counters (Fig. 1 arcs).
  struct Stats {
    uint64_t interests_in = 0;         ///< Interests received on any face
    uint64_t data_in = 0;              ///< Data received on any face
    uint64_t cs_hits = 0;              ///< Interests answered from the CS
    uint64_t pit_aggregated = 0;       ///< Interests merged into a PIT entry
    uint64_t loops_dropped = 0;        ///< nonce-loop drops
    uint64_t hop_limit_drops = 0;      ///< hop-limit-exhausted drops
    uint64_t interests_forwarded = 0;  ///< Interests sent out a face
    uint64_t data_forwarded = 0;       ///< Data sent out a face
    uint64_t unsolicited_data = 0;     ///< Data with no PIT entry
    uint64_t pit_timeouts = 0;         ///< PIT entries expired unsatisfied
  };

  /// Forwarder with explicit options (CS capacity, caching policy).
  Forwarder(sim::Scheduler& sched, Options options);
  /// Forwarder with default options.
  Forwarder(sim::Scheduler& sched) : Forwarder(sched, Options{}) {}

  /// Register a face; the forwarder keeps shared ownership and installs
  /// its receive handlers. Returns the assigned FaceId (>= 1).
  FaceId add_face(std::shared_ptr<Face> face);

  /// Look up a face by id (nullptr when absent).
  Face* face(FaceId id);
  /// All registered faces (index = FaceId - 1).
  const std::vector<std::shared_ptr<Face>>& faces() const { return faces_; }

  /// Replace the forwarding strategy (default: MulticastStrategy).
  void set_strategy(std::unique_ptr<ForwardingStrategy> strategy);
  /// The active forwarding strategy.
  ForwardingStrategy& strategy() { return *strategy_; }

  /// The Content Store.
  ContentStore& cs() { return cs_; }
  /// The Pending Interest Table.
  Pit& pit() { return pit_; }
  /// The Forwarding Information Base.
  Fib& fib() { return fib_; }
  /// The NameTree all three tables share: a name's CS, PIT and FIB state
  /// hang off one entry, so a pipeline hop probes each table in O(1).
  NameTree& name_tree() { return *tree_; }
  /// The trial scheduler this forwarder's timers run on.
  sim::Scheduler& scheduler() { return sched_; }
  /// Pipeline counters.
  const Stats& stats() const { return stats_; }

  /// Strategy action: transmit an Interest out of a specific face. Does
  /// NOT consult the FIB — the strategy already decided.
  void send_interest_to(FaceId out_face, const Interest& interest);
  /// Strategy action: transmit a Data out of a specific face.
  void send_data_to(FaceId out_face, const Data& data);

  /// Bind this forwarder to its simulated node for event tracing: every
  /// pipeline entry point (incoming Interest/Data, PIT expiry) then runs
  /// in that node's trace context, so table and strategy events are
  /// attributed even when the pipeline is entered from a scheduler
  /// callback rather than a medium delivery. Default: unattributed.
  void set_trace_node(uint32_t node) { trace_node_ = node; }
  /// The node this forwarder reports trace events as.
  uint32_t trace_node() const { return trace_node_; }

 private:
  void on_incoming_interest(FaceId in_face, Interest interest);
  void on_incoming_data(FaceId in_face, const Data& data);
  void on_pit_expiry(Name name);

  sim::Scheduler& sched_;
  Options options_;
  std::shared_ptr<NameTree> tree_;  // shared by cs_/pit_/fib_; declared first
  ContentStore cs_;
  Pit pit_;
  Fib fib_;
  std::vector<std::shared_ptr<Face>> faces_;  // index = FaceId - 1
  std::unique_ptr<ForwardingStrategy> strategy_;
  Stats stats_;
  uint32_t trace_node_ = trace::kNoNode;
};

}  // namespace dapes::ndn
