// NFD-lite data plane tables: Content Store, Pending Interest Table, and
// Forwarding Information Base (paper Fig. 1).
//
// All three are ordered by Name so prefix queries (CanBePrefix lookups,
// longest-prefix match) are a lower_bound away. Sizes are bounded; the CS
// evicts LRU, which is what lets pure forwarders serve overheard data
// (paper §V-A) without unbounded memory.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_set>
#include <vector>

#include "common/time.hpp"
#include "ndn/packet.hpp"
#include "sim/scheduler.hpp"

namespace dapes::ndn {

using FaceId = uint32_t;
using common::TimePoint;

/// Shared, immutable Data handle: the CS, the forwarding pipeline and
/// application faces pass one decoded packet around by reference count —
/// its content and cached wire stay views into the original frame buffer.
using DataPtr = std::shared_ptr<const Data>;

/// In-network cache of Data packets.
///
/// Entries expire after the packet's FreshnessPeriod (short-lived data
/// such as discovery responses must not be served stale); lookups skip
/// and evict expired entries. Entries are shared DataPtr handles: caching
/// never deep-copies content or wire bytes.
class ContentStore {
 public:
  explicit ContentStore(size_t capacity = 4096) : capacity_(capacity) {}

  /// Insert (or refresh) a Data packet, stamped with the current time.
  /// A new entry wraps the Data into a shared handle (a cheap,
  /// slice-sharing copy of the packet struct — not of its bytes); a
  /// refresh of an existing name allocates nothing.
  void insert(const Data& data, TimePoint now = TimePoint::zero()) {
    if (refresh(data.name(), now + data.freshness())) return;
    insert(std::make_shared<const Data>(data), now);
  }
  void insert(DataPtr data, TimePoint now = TimePoint::zero());

  /// Exact-name lookup; @p can_be_prefix widens to "any data under name".
  /// Returns a shared handle (nullptr on miss).
  DataPtr find(const Name& name, bool can_be_prefix = false,
               TimePoint now = TimePoint::zero());

  bool contains(const Name& name) const { return entries_.contains(name); }
  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }

  /// Approximate memory footprint (content bytes), for Table-I style
  /// system-load reporting.
  size_t content_bytes() const { return content_bytes_; }

 private:
  /// Bump an existing entry's expiry + LRU position; false on miss.
  bool refresh(const Name& name, TimePoint expires);
  void touch(const Name& name);
  void evict_one();

  struct Entry {
    DataPtr data;
    TimePoint expires{};
    std::list<Name>::iterator lru_it;
  };

  size_t capacity_;
  size_t content_bytes_ = 0;
  std::map<Name, Entry> entries_;
  std::list<Name> lru_;  // front = least recently used
};

/// One pending Interest: who asked, which nonces were seen, when it dies.
struct PitEntry {
  Name name;
  bool can_be_prefix = false;
  TimePoint expiry{};
  /// Faces the Interest arrived on (data goes back to these).
  std::vector<FaceId> in_faces;
  /// Set when this node relayed the Interest onto the broadcast medium.
  /// On a broadcast face the upstream (data source) and downstream
  /// (requester) share one face; a relaying node must re-broadcast the
  /// returning Data exactly when it forwarded the Interest itself.
  bool relayed_to_network = false;
  /// Nonces seen for this name — duplicates indicate loops.
  std::unordered_set<uint32_t> nonces;
  sim::EventId expiry_event{};
};

class Pit {
 public:
  /// Find the entry with this exact name.
  PitEntry* find(const Name& name);

  /// All entries satisfied by data with @p data_name (exact match, plus
  /// CanBePrefix entries whose name prefixes it).
  std::vector<Name> matches_for_data(const Name& data_name) const;

  /// Insert a new entry; returns a stable reference.
  PitEntry& insert(const Name& name);

  void erase(const Name& name);
  size_t size() const { return entries_.size(); }

  /// True if @p nonce was already recorded anywhere for @p name
  /// (loop detection across live entries + dead-nonce history).
  bool has_nonce(const Name& name, uint32_t nonce) const;

  /// Record into the dead nonce list (consulted after entries expire).
  void record_dead_nonce(const Name& name, uint32_t nonce);

 private:
  std::map<Name, PitEntry> entries_;
  // Bounded FIFO of (name-hash ^ nonce) fingerprints.
  static constexpr size_t kDeadNonceCap = 8192;
  std::list<uint64_t> dead_order_;
  std::unordered_set<uint64_t> dead_set_;
};

/// Longest-prefix-match routing table: prefix -> out-faces.
class Fib {
 public:
  void add_route(const Name& prefix, FaceId face);
  void remove_route(const Name& prefix, FaceId face);

  /// Faces for the longest matching prefix (empty when no route).
  std::vector<FaceId> lookup(const Name& name) const;

  /// All registered prefixes pointing at @p face (used by app discovery).
  std::vector<Name> prefixes_for(FaceId face) const;

  size_t size() const { return routes_.size(); }

 private:
  std::map<Name, std::set<FaceId>> routes_;
};

}  // namespace dapes::ndn
