/// @file
/// NFD-lite data plane tables: Content Store, Pending Interest Table, and
/// Forwarding Information Base (paper Fig. 1).
///
/// All three are views over one shared NameTree (src/ndn/name_tree.hpp):
/// exact lookups are a single hash probe on the Name's cached hash, prefix
/// queries and longest-prefix match walk cached per-prefix hashes, and the
/// CS LRU is an intrusive list of tree-entry pointers — no Name is copied
/// or compared byte-by-byte on the forwarding path. Semantics are
/// bit-identical to the retained std::map reference implementation
/// (src/ndn/tables_ref.hpp); tests/test_name_tree.cpp proves it on
/// randomized workloads. Sizes are bounded; the CS evicts LRU, which is
/// what lets pure forwarders serve overheard data (paper §V-A) without
/// unbounded memory.
///
/// Standalone construction (`ContentStore cs;`) gives each table a private
/// tree; a Forwarder passes one shared tree to all three so a name's CS,
/// PIT and FIB state share an entry.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/time.hpp"
#include "ndn/name_tree.hpp"
#include "ndn/packet.hpp"
#include "sim/scheduler.hpp"

namespace dapes::ndn {

/// In-network cache of Data packets.
///
/// Entries expire after the packet's FreshnessPeriod (short-lived data
/// such as discovery responses must not be served stale); lookups skip
/// and evict expired entries. Entries are shared DataPtr handles: caching
/// never deep-copies content or wire bytes.
class ContentStore {
 public:
  /// CS holding up to @p capacity entries, on @p tree (a private tree
  /// when null).
  explicit ContentStore(size_t capacity = 4096,
                        std::shared_ptr<NameTree> tree = nullptr)
      : capacity_(capacity),
        tree_(tree ? std::move(tree) : std::make_shared<NameTree>()) {}

  /// Insert (or refresh) a Data packet, stamped with the current time.
  /// A new entry wraps the Data into a shared handle (a cheap,
  /// slice-sharing copy of the packet struct — not of its bytes); a
  /// refresh of an existing name allocates nothing.
  void insert(const Data& data, TimePoint now = TimePoint::zero()) {
    if (refresh(data.name(), now + data.freshness())) return;
    insert(std::make_shared<const Data>(data), now);
  }
  /// Insert (or refresh) an already-shared Data handle.
  void insert(DataPtr data, TimePoint now = TimePoint::zero());

  /// Exact-name lookup; @p can_be_prefix widens to "any data under name".
  /// Returns a shared handle (nullptr on miss).
  DataPtr find(const Name& name, bool can_be_prefix = false,
               TimePoint now = TimePoint::zero());

  /// Whether an entry with this exact name exists (expired or not).
  bool contains(const Name& name) const {
    NameTree::Entry* e = tree_->find_exact(name);
    return e != nullptr && e->cs != nullptr;
  }
  /// Live entries stored.
  size_t size() const { return size_; }
  /// Entry cap (LRU eviction beyond it).
  size_t capacity() const { return capacity_; }

  /// Approximate memory footprint (content bytes), for Table-I style
  /// system-load reporting.
  size_t content_bytes() const { return content_bytes_; }

 private:
  /// Bump an existing entry's expiry + LRU position; false on miss.
  bool refresh(const Name& name, TimePoint expires);
  void touch(NameTree::Entry* e);
  void evict_one();
  /// Drop the CS state of @p e (LRU unlink, byte accounting, tree
  /// cleanup).
  void erase(NameTree::Entry* e);
  /// Pre-order descent for CanBePrefix queries: returns the first live
  /// CS entry under @p e in component order (nullptr if none),
  /// collecting expired entries seen on the way into @p expired.
  NameTree::Entry* scan_prefix(NameTree::Entry* e, TimePoint now,
                               std::vector<NameTree::Entry*>& expired);
  void lru_unlink(NameTree::Entry* e);
  void lru_push_back(NameTree::Entry* e);

  size_t capacity_;
  size_t size_ = 0;
  size_t content_bytes_ = 0;
  std::shared_ptr<NameTree> tree_;
  NameTree::Entry* lru_head_ = nullptr;  // least recently used
  NameTree::Entry* lru_tail_ = nullptr;
};

/// Pending Interest Table over the shared NameTree.
class Pit {
 public:
  /// PIT on @p tree (a private tree when null).
  explicit Pit(std::shared_ptr<NameTree> tree = nullptr)
      : tree_(tree ? std::move(tree) : std::make_shared<NameTree>()) {}

  /// Find the entry with this exact name.
  PitEntry* find(const Name& name);

  /// All entries satisfied by data with @p data_name (exact match, plus
  /// CanBePrefix entries whose name prefixes it). O(depth) hash probes on
  /// the data name's cached prefix hashes.
  std::vector<Name> matches_for_data(const Name& data_name) const;

  /// Insert a new entry; returns a stable reference.
  PitEntry& insert(const Name& name);

  /// Remove the entry with this exact name (no-op when absent).
  void erase(const Name& name);
  /// Live entries.
  size_t size() const { return size_; }

  /// True if @p nonce was already recorded anywhere for @p name
  /// (loop detection across live entries + dead-nonce history).
  bool has_nonce(const Name& name, uint32_t nonce) const;

  /// Record into the dead nonce list (consulted after entries expire).
  void record_dead_nonce(const Name& name, uint32_t nonce);

 private:
  std::shared_ptr<NameTree> tree_;
  size_t size_ = 0;
  // Bounded FIFO of (name-hash ^ nonce) fingerprints.
  static constexpr size_t kDeadNonceCap = 8192;
  std::list<uint64_t> dead_order_;
  std::unordered_set<uint64_t> dead_set_;
};

/// Longest-prefix-match routing table: prefix -> out-faces.
class Fib {
 public:
  /// FIB on @p tree (a private tree when null).
  explicit Fib(std::shared_ptr<NameTree> tree = nullptr)
      : tree_(tree ? std::move(tree) : std::make_shared<NameTree>()) {}

  /// Register @p face as a next hop for @p prefix.
  void add_route(const Name& prefix, FaceId face);
  /// Unregister @p face from @p prefix (erasing empty routes).
  void remove_route(const Name& prefix, FaceId face);

  /// Faces for the longest matching prefix (empty when no route).
  std::vector<FaceId> lookup(const Name& name) const;

  /// All registered prefixes pointing at @p face (used by app discovery).
  std::vector<Name> prefixes_for(FaceId face) const;

  /// Registered prefixes.
  size_t size() const { return size_; }

 private:
  std::shared_ptr<NameTree> tree_;
  size_t size_ = 0;
};

}  // namespace dapes::ndn
