// Interest and Data packets with NDN-TLV wire encoding.
//
// DAPES uses ApplicationParameters on Interests to carry its bitmap
// payloads ("bitmap Interests", paper §IV-D), and Data signatures bind
// content to names so receivers can reason about provenance (§I). The
// signature here is the KeyChain MAC scheme documented in
// crypto/keychain.hpp.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "common/time.hpp"
#include "crypto/keychain.hpp"
#include "ndn/name.hpp"
#include "ndn/tlv.hpp"

namespace dapes::ndn {

using common::Bytes;
using common::BytesView;
using common::Duration;

class Interest {
 public:
  Interest() = default;
  explicit Interest(Name name) : name_(std::move(name)) {}

  const Name& name() const { return name_; }
  void set_name(Name name) { name_ = std::move(name); }

  uint32_t nonce() const { return nonce_; }
  void set_nonce(uint32_t nonce) { nonce_ = nonce; }

  bool can_be_prefix() const { return can_be_prefix_; }
  void set_can_be_prefix(bool v) { can_be_prefix_ = v; }

  Duration lifetime() const { return lifetime_; }
  void set_lifetime(Duration d) { lifetime_ = d; }

  uint8_t hop_limit() const { return hop_limit_; }
  void set_hop_limit(uint8_t h) { hop_limit_ = h; }

  const Bytes& app_parameters() const { return app_parameters_; }
  void set_app_parameters(Bytes params) { app_parameters_ = std::move(params); }
  bool has_app_parameters() const { return !app_parameters_.empty(); }

  Bytes encode() const;
  static Interest decode(BytesView wire);

  bool operator==(const Interest&) const = default;

 private:
  Name name_;
  uint32_t nonce_ = 0;
  bool can_be_prefix_ = false;
  Duration lifetime_ = Duration::milliseconds(4000);
  uint8_t hop_limit_ = 32;
  Bytes app_parameters_;
};

class Data {
 public:
  Data() = default;
  explicit Data(Name name) : name_(std::move(name)) {}

  const Name& name() const { return name_; }
  void set_name(Name name) { name_ = std::move(name); }

  const Bytes& content() const { return content_; }
  void set_content(Bytes content) { content_ = std::move(content); }

  Duration freshness() const { return freshness_; }
  void set_freshness(Duration d) { freshness_ = d; }

  const std::optional<crypto::Signature>& signature() const { return signature_; }

  /// Sign with the producer's key: binds (name, content).
  void sign(const crypto::PrivateKey& key);

  /// Verify against a keychain. Unsigned data never verifies.
  bool verify(const crypto::KeyChain& keychain) const;

  /// SHA-256 over the content (used by metadata digests and Merkle leaves).
  crypto::Digest content_digest() const;

  Bytes encode() const;
  static Data decode(BytesView wire);

  bool operator==(const Data&) const = default;

 private:
  Name name_;
  Bytes content_;
  Duration freshness_ = Duration::milliseconds(10000);
  std::optional<crypto::Signature> signature_;
};

/// Name TLV helpers shared by both packet codecs.
void append_name(Bytes& out, const Name& name);
Name parse_name(BytesView value);

}  // namespace dapes::ndn
