/// @file
/// Interest and Data packets with NDN-TLV wire encoding.
///
/// DAPES uses ApplicationParameters on Interests to carry its bitmap
/// payloads ("bitmap Interests", paper §IV-D), and Data signatures bind
/// content to names so receivers can reason about provenance (§I). The
/// signature here is the KeyChain MAC scheme documented in
/// crypto/keychain.hpp.
///
/// Both packet classes follow the cached-wire Block idiom from the NDN
/// ecosystem:
///   * decode() keeps the source BufferSlice alive and stores large fields
///     (Content, ApplicationParameters) as zero-copy views into it;
///   * wire() returns the cached encoding — forwarding an unmodified
///     packet never re-serializes, and every in-range receiver of one
///     broadcast frame parses views into the same shared buffer;
///   * every mutator invalidates the cache.
/// Wire decode entry points are non-throwing: they return std::nullopt on
/// malformed input (the TLV Reader's ParseError stays internal).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "common/buffer.hpp"
#include "common/bytes.hpp"
#include "common/time.hpp"
#include "crypto/keychain.hpp"
#include "ndn/name.hpp"
#include "ndn/tlv.hpp"

namespace dapes::ndn {

using common::BufferSlice;
using common::Bytes;
using common::BytesView;
using common::Duration;

/// Process-wide codec instrumentation: counts actual (de)serializations
/// so tests and benches can assert the zero-copy invariants (one encode
/// per broadcast, one decode per receiving node, cache hits on forward).
struct CodecCounters {
  std::atomic<uint64_t> interest_encodes{0};  ///< Interest serializations
  std::atomic<uint64_t> data_encodes{0};      ///< Data serializations
  std::atomic<uint64_t> interest_decodes{0};  ///< Interest parses
  std::atomic<uint64_t> data_decodes{0};      ///< Data parses
  /// wire() calls answered from the cache without re-serializing.
  std::atomic<uint64_t> wire_cache_hits{0};

  /// Zero every counter (tests isolate phases with this).
  void reset() {
    interest_encodes = data_encodes = 0;
    interest_decodes = data_decodes = 0;
    wire_cache_hits = 0;
  }
};

/// The process-wide CodecCounters instance.
CodecCounters& codec_counters();

/// NDN Interest with cached wire encoding (see file comment).
class Interest {
 public:
  /// Empty Interest (no name).
  Interest() = default;
  /// Interest for @p name with default selectors.
  explicit Interest(Name name) : name_(std::move(name)) {}

  /// The requested name.
  const Name& name() const { return name_; }
  /// Replace the name (invalidates the wire cache).
  void set_name(Name name) {
    name_ = std::move(name);
    invalidate_wire();
  }

  /// Loop-detection nonce.
  uint32_t nonce() const { return nonce_; }
  /// Set the nonce (invalidates the wire cache).
  void set_nonce(uint32_t nonce) {
    nonce_ = nonce;
    invalidate_wire();
  }

  /// May Data under a longer name satisfy this Interest?
  bool can_be_prefix() const { return can_be_prefix_; }
  /// Set CanBePrefix (invalidates the wire cache).
  void set_can_be_prefix(bool v) {
    can_be_prefix_ = v;
    invalidate_wire();
  }

  /// PIT lifetime requested by the consumer.
  Duration lifetime() const { return lifetime_; }
  /// Set the lifetime (invalidates the wire cache).
  void set_lifetime(Duration d) {
    lifetime_ = d;
    invalidate_wire();
  }

  /// Remaining hop budget (decremented per network hop).
  uint8_t hop_limit() const { return hop_limit_; }
  /// Set the hop limit (invalidates the wire cache).
  void set_hop_limit(uint8_t h) {
    hop_limit_ = h;
    invalidate_wire();
  }

  /// ApplicationParameters payload (DAPES bitmap Interests).
  BytesView app_parameters() const { return app_parameters_.view(); }
  /// Set ApplicationParameters from owned bytes (invalidates the cache).
  void set_app_parameters(Bytes params) {
    app_parameters_ = BufferSlice(std::move(params));
    invalidate_wire();
  }
  /// Set ApplicationParameters as a shared slice (invalidates the cache).
  void set_app_parameters(BufferSlice params) {
    app_parameters_ = std::move(params);
    invalidate_wire();
  }
  /// Whether ApplicationParameters are present.
  bool has_app_parameters() const { return !app_parameters_.empty(); }

  /// The cached wire encoding; serialized at most once per mutation.
  const BufferSlice& wire() const;
  /// Whether the wire cache is currently valid (tests/instrumentation).
  bool has_wire() const { return !wire_.empty(); }

  /// Deep-copy convenience (build-side compat; hot paths use wire()).
  Bytes encode() const { return wire().to_bytes(); }

  /// Parse from a shared buffer. The returned Interest keeps @p wire
  /// alive: its wire cache and ApplicationParameters are views into it.
  static std::optional<Interest> decode(BufferSlice wire);
  /// Parse from borrowed bytes (copied into owned storage first).
  static std::optional<Interest> decode(BytesView wire) {
    return decode(BufferSlice::copy_of(wire));
  }

  /// Field-wise equality (wire caches are ignored).
  bool operator==(const Interest& other) const {
    return name_ == other.name_ && nonce_ == other.nonce_ &&
           can_be_prefix_ == other.can_be_prefix_ &&
           lifetime_ == other.lifetime_ && hop_limit_ == other.hop_limit_ &&
           common::equal(app_parameters(), other.app_parameters());
  }

 private:
  void invalidate_wire() { wire_ = BufferSlice(); }

  Name name_;
  uint32_t nonce_ = 0;
  bool can_be_prefix_ = false;
  Duration lifetime_ = Duration::milliseconds(4000);
  uint8_t hop_limit_ = 32;
  BufferSlice app_parameters_;
  mutable BufferSlice wire_;
};

/// NDN Data packet with cached wire encoding (see file comment).
class Data {
 public:
  /// Empty Data (no name, no content).
  Data() = default;
  /// Data named @p name with empty content.
  explicit Data(Name name) : name_(std::move(name)) {}

  /// The packet name.
  const Name& name() const { return name_; }
  /// Replace the name (invalidates the wire cache).
  void set_name(Name name) {
    name_ = std::move(name);
    invalidate_wire();
  }

  /// Content payload (a view into the decode buffer after decode()).
  BytesView content() const { return content_.view(); }
  /// The content as an anchored slice (after decode(), a ref-counted
  /// view into the frame buffer). The delivery prewarm stores it as the
  /// digest-cache anchor.
  const BufferSlice& content_slice() const { return content_; }
  /// Set content from owned bytes (invalidates the wire and digest caches).
  void set_content(Bytes content) {
    content_ = BufferSlice(std::move(content));
    content_digest_.reset();
    invalidate_wire();
  }
  /// Set content as a shared slice (invalidates the wire and digest caches).
  void set_content(BufferSlice content) {
    content_ = std::move(content);
    content_digest_.reset();
    invalidate_wire();
  }

  /// Content-Store freshness period.
  Duration freshness() const { return freshness_; }
  /// Set the freshness period (invalidates the wire cache).
  void set_freshness(Duration d) {
    freshness_ = d;
    invalidate_wire();
  }

  /// The signature, if the packet has been signed or decoded with one.
  const std::optional<crypto::Signature>& signature() const { return signature_; }

  /// Sign with the producer's key: binds (name, SHA-256(content)). Warms
  /// the content-digest cache as a side effect.
  void sign(const crypto::PrivateKey& key);

  /// Verify against a keychain. Unsigned data never verifies. When a
  /// per-trial crypto::VerifyCache is installed, a cached verdict for
  /// this packet's wire buffer short-circuits the whole check (digest,
  /// URI formatting and MAC included).
  bool verify(const crypto::KeyChain& keychain) const;

  /// SHA-256 over the content (used by metadata digests, Merkle leaves
  /// and the MAC). Hashed at most once per packet: memoized here, and
  /// served from the trial's VerifyCache — warmed once per broadcast
  /// frame — before being computed at all. Like wire(), the memo is
  /// per-instance; shared DataPtrs pre-warm it at creation.
  crypto::Digest content_digest() const;

  /// The cached wire encoding; serialized at most once per mutation.
  const BufferSlice& wire() const;
  /// Whether the wire cache is currently valid (tests/instrumentation).
  bool has_wire() const { return !wire_.empty(); }

  /// Deep-copy convenience (build-side compat; hot paths use wire()).
  Bytes encode() const { return wire().to_bytes(); }

  /// Parse from a shared buffer. The returned Data keeps @p wire alive:
  /// its wire cache and Content are views into it.
  static std::optional<Data> decode(BufferSlice wire);
  /// Parse from borrowed bytes (copied into owned storage first).
  static std::optional<Data> decode(BytesView wire) {
    return decode(BufferSlice::copy_of(wire));
  }

  /// Field-wise equality (wire caches are ignored).
  bool operator==(const Data& other) const {
    return name_ == other.name_ && freshness_ == other.freshness_ &&
           signature_ == other.signature_ &&
           common::equal(content(), other.content());
  }

 private:
  void invalidate_wire() { wire_ = BufferSlice(); }

  Name name_;
  BufferSlice content_;
  Duration freshness_ = Duration::milliseconds(10000);
  std::optional<crypto::Signature> signature_;
  mutable BufferSlice wire_;
  /// Lazy SHA-256 of content_ (see content_digest()); reset whenever the
  /// content changes.
  mutable std::optional<crypto::Digest> content_digest_;
};

/// Shared, immutable Data handle: the CS, the forwarding pipeline,
/// application faces and queued retransmissions pass one decoded packet
/// around by reference count — its content and cached wire stay views
/// into the original frame buffer.
using DataPtr = std::shared_ptr<const Data>;

/// Append @p name as a Name TLV element — the helper every codec that
/// embeds names shares.
void append_name(tlv::Writer& w, const Name& name);
/// Parse a Name TLV value, seeding the Name's incremental hash cache
/// while the component bytes are hot, so table probes on the forwarding
/// path never re-read them.
Name parse_name(BytesView value);

}  // namespace dapes::ndn
