// Interest and Data packets with NDN-TLV wire encoding.
//
// DAPES uses ApplicationParameters on Interests to carry its bitmap
// payloads ("bitmap Interests", paper §IV-D), and Data signatures bind
// content to names so receivers can reason about provenance (§I). The
// signature here is the KeyChain MAC scheme documented in
// crypto/keychain.hpp.
//
// Both packet classes follow the cached-wire Block idiom from the NDN
// ecosystem:
//   * decode() keeps the source BufferSlice alive and stores large fields
//     (Content, ApplicationParameters) as zero-copy views into it;
//   * wire() returns the cached encoding — forwarding an unmodified
//     packet never re-serializes, and every in-range receiver of one
//     broadcast frame parses views into the same shared buffer;
//   * every mutator invalidates the cache.
// Wire decode entry points are non-throwing: they return std::nullopt on
// malformed input (the TLV Reader's ParseError stays internal).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "common/buffer.hpp"
#include "common/bytes.hpp"
#include "common/time.hpp"
#include "crypto/keychain.hpp"
#include "ndn/name.hpp"
#include "ndn/tlv.hpp"

namespace dapes::ndn {

using common::BufferSlice;
using common::Bytes;
using common::BytesView;
using common::Duration;

/// Process-wide codec instrumentation: counts actual (de)serializations
/// so tests and benches can assert the zero-copy invariants (one encode
/// per broadcast, one decode per receiving node, cache hits on forward).
struct CodecCounters {
  std::atomic<uint64_t> interest_encodes{0};
  std::atomic<uint64_t> data_encodes{0};
  std::atomic<uint64_t> interest_decodes{0};
  std::atomic<uint64_t> data_decodes{0};
  /// wire() calls answered from the cache without re-serializing.
  std::atomic<uint64_t> wire_cache_hits{0};

  void reset() {
    interest_encodes = data_encodes = 0;
    interest_decodes = data_decodes = 0;
    wire_cache_hits = 0;
  }
};

CodecCounters& codec_counters();

class Interest {
 public:
  Interest() = default;
  explicit Interest(Name name) : name_(std::move(name)) {}

  const Name& name() const { return name_; }
  void set_name(Name name) {
    name_ = std::move(name);
    invalidate_wire();
  }

  uint32_t nonce() const { return nonce_; }
  void set_nonce(uint32_t nonce) {
    nonce_ = nonce;
    invalidate_wire();
  }

  bool can_be_prefix() const { return can_be_prefix_; }
  void set_can_be_prefix(bool v) {
    can_be_prefix_ = v;
    invalidate_wire();
  }

  Duration lifetime() const { return lifetime_; }
  void set_lifetime(Duration d) {
    lifetime_ = d;
    invalidate_wire();
  }

  uint8_t hop_limit() const { return hop_limit_; }
  void set_hop_limit(uint8_t h) {
    hop_limit_ = h;
    invalidate_wire();
  }

  BytesView app_parameters() const { return app_parameters_.view(); }
  void set_app_parameters(Bytes params) {
    app_parameters_ = BufferSlice(std::move(params));
    invalidate_wire();
  }
  void set_app_parameters(BufferSlice params) {
    app_parameters_ = std::move(params);
    invalidate_wire();
  }
  bool has_app_parameters() const { return !app_parameters_.empty(); }

  /// The cached wire encoding; serialized at most once per mutation.
  const BufferSlice& wire() const;
  bool has_wire() const { return !wire_.empty(); }

  /// Deep-copy convenience (build-side compat; hot paths use wire()).
  Bytes encode() const { return wire().to_bytes(); }

  /// Parse from a shared buffer. The returned Interest keeps @p wire
  /// alive: its wire cache and ApplicationParameters are views into it.
  static std::optional<Interest> decode(BufferSlice wire);
  /// Parse from borrowed bytes (copied into owned storage first).
  static std::optional<Interest> decode(BytesView wire) {
    return decode(BufferSlice::copy_of(wire));
  }

  bool operator==(const Interest& other) const {
    return name_ == other.name_ && nonce_ == other.nonce_ &&
           can_be_prefix_ == other.can_be_prefix_ &&
           lifetime_ == other.lifetime_ && hop_limit_ == other.hop_limit_ &&
           common::equal(app_parameters(), other.app_parameters());
  }

 private:
  void invalidate_wire() { wire_ = BufferSlice(); }

  Name name_;
  uint32_t nonce_ = 0;
  bool can_be_prefix_ = false;
  Duration lifetime_ = Duration::milliseconds(4000);
  uint8_t hop_limit_ = 32;
  BufferSlice app_parameters_;
  mutable BufferSlice wire_;
};

class Data {
 public:
  Data() = default;
  explicit Data(Name name) : name_(std::move(name)) {}

  const Name& name() const { return name_; }
  void set_name(Name name) {
    name_ = std::move(name);
    invalidate_wire();
  }

  BytesView content() const { return content_.view(); }
  void set_content(Bytes content) {
    content_ = BufferSlice(std::move(content));
    invalidate_wire();
  }
  void set_content(BufferSlice content) {
    content_ = std::move(content);
    invalidate_wire();
  }

  Duration freshness() const { return freshness_; }
  void set_freshness(Duration d) {
    freshness_ = d;
    invalidate_wire();
  }

  const std::optional<crypto::Signature>& signature() const { return signature_; }

  /// Sign with the producer's key: binds (name, content).
  void sign(const crypto::PrivateKey& key);

  /// Verify against a keychain. Unsigned data never verifies.
  bool verify(const crypto::KeyChain& keychain) const;

  /// SHA-256 over the content (used by metadata digests and Merkle leaves).
  crypto::Digest content_digest() const;

  /// The cached wire encoding; serialized at most once per mutation.
  const BufferSlice& wire() const;
  bool has_wire() const { return !wire_.empty(); }

  /// Deep-copy convenience (build-side compat; hot paths use wire()).
  Bytes encode() const { return wire().to_bytes(); }

  /// Parse from a shared buffer. The returned Data keeps @p wire alive:
  /// its wire cache and Content are views into it.
  static std::optional<Data> decode(BufferSlice wire);
  /// Parse from borrowed bytes (copied into owned storage first).
  static std::optional<Data> decode(BytesView wire) {
    return decode(BufferSlice::copy_of(wire));
  }

  bool operator==(const Data& other) const {
    return name_ == other.name_ && freshness_ == other.freshness_ &&
           signature_ == other.signature_ &&
           common::equal(content(), other.content());
  }

 private:
  void invalidate_wire() { wire_ = BufferSlice(); }

  Name name_;
  BufferSlice content_;
  Duration freshness_ = Duration::milliseconds(10000);
  std::optional<crypto::Signature> signature_;
  mutable BufferSlice wire_;
};

/// Shared, immutable Data handle: the CS, the forwarding pipeline,
/// application faces and queued retransmissions pass one decoded packet
/// around by reference count — its content and cached wire stay views
/// into the original frame buffer.
using DataPtr = std::shared_ptr<const Data>;

/// Name TLV helpers shared by every codec that embeds names.
/// parse_name seeds the Name's incremental hash cache while the component
/// bytes are hot, so table probes on the forwarding path never re-read
/// them.
void append_name(tlv::Writer& w, const Name& name);
Name parse_name(BytesView value);

}  // namespace dapes::ndn
