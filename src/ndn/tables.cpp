#include "ndn/tables.hpp"

#include "trace/trace.hpp"

namespace dapes::ndn {

// ------------------------------------------------------------ ContentStore

void ContentStore::lru_push_back(NameTree::Entry* e) {
  NameTree::CsState* cs = e->cs.get();
  cs->lru_prev = lru_tail_;
  cs->lru_next = nullptr;
  if (lru_tail_ != nullptr) {
    lru_tail_->cs->lru_next = e;
  } else {
    lru_head_ = e;
  }
  lru_tail_ = e;
}

void ContentStore::lru_unlink(NameTree::Entry* e) {
  NameTree::CsState* cs = e->cs.get();
  if (cs->lru_prev != nullptr) {
    cs->lru_prev->cs->lru_next = cs->lru_next;
  } else {
    lru_head_ = cs->lru_next;
  }
  if (cs->lru_next != nullptr) {
    cs->lru_next->cs->lru_prev = cs->lru_prev;
  } else {
    lru_tail_ = cs->lru_prev;
  }
  cs->lru_prev = cs->lru_next = nullptr;
}

void ContentStore::touch(NameTree::Entry* e) {
  lru_unlink(e);
  lru_push_back(e);
}

void ContentStore::erase(NameTree::Entry* e) {
  content_bytes_ -= e->cs->data->content().size();
  lru_unlink(e);
  e->cs.reset();
  --size_;
  for (NameTree::Entry* a = e; a != nullptr; a = a->parent) --a->cs_in_subtree;
  tree_->cleanup(e);
}

bool ContentStore::refresh(const Name& name, TimePoint expires) {
  NameTree::Entry* e = tree_->find_exact(name);
  if (e == nullptr || e->cs == nullptr) return false;
  e->cs->expires = expires;
  touch(e);
  return true;
}

void ContentStore::insert(DataPtr data, TimePoint now) {
  if (!data) return;
  const uint64_t content_bytes = data->content().size();
  if (refresh(data->name(), now + data->freshness())) {
    DAPES_TRACE_NAMED(trace::EventType::kCsInsert, data->name(),
                      content_bytes, /*refreshed=*/1);
    return;
  }
  if (size_ >= capacity_) {
    evict_one();
  }
  TimePoint expires = now + data->freshness();
  NameTree::Entry* e = tree_->lookup(data->name());
  DAPES_TRACE_NAMED(trace::EventType::kCsInsert, data->name(), content_bytes,
                    /*refreshed=*/0);
  e->cs = std::make_unique<NameTree::CsState>();
  content_bytes_ += data->content().size();
  e->cs->data = std::move(data);
  e->cs->expires = expires;
  for (NameTree::Entry* a = e; a != nullptr; a = a->parent) ++a->cs_in_subtree;
  lru_push_back(e);
  ++size_;
}

DataPtr ContentStore::find(const Name& name, bool can_be_prefix,
                           TimePoint now) {
  if (!can_be_prefix) {
    NameTree::Entry* e = tree_->find_exact(name);
    if (e == nullptr || e->cs == nullptr) {
      DAPES_TRACE_NAMED(trace::EventType::kCsMiss, name);
      return nullptr;
    }
    if (e->cs->expires <= now) {
      DAPES_TRACE_NAMED(trace::EventType::kCsExpire, name);
      erase(e);
      DAPES_TRACE_NAMED(trace::EventType::kCsMiss, name);
      return nullptr;
    }
    touch(e);
    DAPES_TRACE_NAMED(trace::EventType::kCsHit, name);
    return e->cs->data;
  }

  // Prefix query: first non-expired entry at or under `name` in component
  // order. Pre-order descent over sorted children visits candidates in
  // exactly the std::map reference's iteration order; expired entries
  // seen before the hit are evicted, as the reference does while
  // scanning. (Eviction is deferred until the scan ends so tree cleanup
  // cannot disturb the traversal — the same entries end up erased.)
  NameTree::Entry* base = tree_->find_exact(name);
  if (base == nullptr || base->cs_in_subtree == 0) {
    DAPES_TRACE_NAMED(trace::EventType::kCsMiss, name);
    return nullptr;
  }
  std::vector<NameTree::Entry*> expired;
  NameTree::Entry* hit = scan_prefix(base, now, expired);
  for (NameTree::Entry* e : expired) {
    DAPES_TRACE_NAMED(trace::EventType::kCsExpire, e->cs->data->name());
    erase(e);
  }
  if (hit == nullptr) {
    DAPES_TRACE_NAMED(trace::EventType::kCsMiss, name);
    return nullptr;
  }
  touch(hit);
  DAPES_TRACE_NAMED(trace::EventType::kCsHit, hit->cs->data->name());
  return hit->cs->data;
}

NameTree::Entry* ContentStore::scan_prefix(
    NameTree::Entry* e, TimePoint now,
    std::vector<NameTree::Entry*>& expired) {
  if (e->cs != nullptr) {
    if (e->cs->expires > now) return e;
    expired.push_back(e);
  }
  for (NameTree::Entry* child : e->children) {
    // Skipping CS-free subtrees (PIT/FIB-only state) does not change
    // which CS entries are visited or their order.
    if (child->cs_in_subtree == 0) continue;
    if (NameTree::Entry* hit = scan_prefix(child, now, expired)) return hit;
  }
  return nullptr;
}

void ContentStore::evict_one() {
  if (lru_head_ == nullptr) return;
  DAPES_TRACE_NAMED(trace::EventType::kCsEvict,
                    lru_head_->cs->data->name());
  erase(lru_head_);
}

// -------------------------------------------------------------------- Pit

PitEntry* Pit::find(const Name& name) {
  NameTree::Entry* e = tree_->find_exact(name);
  return (e == nullptr) ? nullptr : e->pit.get();
}

std::vector<Name> Pit::matches_for_data(const Name& data_name) const {
  std::vector<Name> out;
  // Exact match.
  if (NameTree::Entry* e = tree_->find_exact(data_name);
      e != nullptr && e->pit != nullptr) {
    out.push_back(data_name);
  }
  // CanBePrefix entries: every proper prefix of data_name, probed off its
  // cached per-prefix hashes — O(depth), no prefix Name materialized
  // unless it matches.
  for (size_t n = data_name.size(); n-- > 0;) {
    NameTree::Entry* e = tree_->find_prefix(data_name, n);
    if (e != nullptr && e->pit != nullptr && e->pit->can_be_prefix) {
      out.push_back(e->pit->name);
    }
  }
  return out;
}

PitEntry& Pit::insert(const Name& name) {
  NameTree::Entry* e = tree_->lookup(name);
  if (e->pit == nullptr) {
    e->pit = std::make_unique<PitEntry>();
    e->pit->name = name;
    ++size_;
    DAPES_TRACE_NAMED(trace::EventType::kPitInsert, name);
  }
  return *e->pit;
}

void Pit::erase(const Name& name) {
  NameTree::Entry* e = tree_->find_exact(name);
  if (e == nullptr || e->pit == nullptr) return;
  e->pit.reset();
  --size_;
  tree_->cleanup(e);
}

namespace {
uint64_t nonce_fingerprint(const Name& name, uint32_t nonce) {
  // name.hash() is cached — recording a dead nonce costs no re-hash.
  return name.hash() ^ (0x9e3779b97f4a7c15ULL * nonce);
}
}  // namespace

bool Pit::has_nonce(const Name& name, uint32_t nonce) const {
  NameTree::Entry* e = tree_->find_exact(name);
  if (e != nullptr && e->pit != nullptr && e->pit->nonces.contains(nonce)) {
    return true;
  }
  return dead_set_.contains(nonce_fingerprint(name, nonce));
}

void Pit::record_dead_nonce(const Name& name, uint32_t nonce) {
  uint64_t fp = nonce_fingerprint(name, nonce);
  if (!dead_set_.insert(fp).second) return;
  dead_order_.push_back(fp);
  if (dead_order_.size() > kDeadNonceCap) {
    dead_set_.erase(dead_order_.front());
    dead_order_.pop_front();
  }
}

// -------------------------------------------------------------------- Fib

void Fib::add_route(const Name& prefix, FaceId face) {
  NameTree::Entry* e = tree_->lookup(prefix);
  if (e->fib == nullptr) {
    e->fib = std::make_unique<NameTree::FibState>();
    ++size_;
  }
  e->fib->faces.insert(face);
  DAPES_TRACE_NAMED(trace::EventType::kFibAdd, prefix,
                    static_cast<uint64_t>(face));
}

void Fib::remove_route(const Name& prefix, FaceId face) {
  NameTree::Entry* e = tree_->find_exact(prefix);
  if (e == nullptr || e->fib == nullptr) return;
  e->fib->faces.erase(face);
  DAPES_TRACE_NAMED(trace::EventType::kFibRemove, prefix,
                    static_cast<uint64_t>(face));
  if (e->fib->faces.empty()) {
    e->fib.reset();
    --size_;
    tree_->cleanup(e);
  }
}

std::vector<FaceId> Fib::lookup(const Name& name) const {
  // Longest prefix match: probe progressively shorter prefixes, each one
  // a hash probe on the name's cached prefix hashes.
  for (size_t n = name.size() + 1; n-- > 0;) {
    NameTree::Entry* e = tree_->find_prefix(name, n);
    if (e != nullptr && e->fib != nullptr && !e->fib->faces.empty()) {
      DAPES_TRACE_NAMED(trace::EventType::kFibHit, name,
                        static_cast<uint64_t>(n));
      return std::vector<FaceId>(e->fib->faces.begin(), e->fib->faces.end());
    }
  }
  DAPES_TRACE_NAMED(trace::EventType::kFibMiss, name);
  return {};
}

std::vector<Name> Fib::prefixes_for(FaceId face) const {
  std::vector<Name> out;
  // Ordered trie walk == the reference's std::map iteration order. On a
  // Forwarder-shared tree this visits CS/PIT entries too — O(tree), not
  // O(routes). Fine for its setup-time discovery callers; grow a FIB
  // side index before ever calling this per packet.
  tree_->enumerate([&](const NameTree::Entry& e) {
    if (e.fib != nullptr && e.fib->faces.contains(face)) {
      out.push_back(e.name);
    }
  });
  return out;
}

}  // namespace dapes::ndn
