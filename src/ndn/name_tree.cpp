#include "ndn/name_tree.hpp"

#include <algorithm>

namespace dapes::ndn {

namespace {

/// True iff @p candidate equals the first @p depth components of @p name.
bool equals_prefix_of(const NameTree::Entry& candidate, const Name& name,
                      size_t depth) {
  if (candidate.name.size() != depth) return false;
  for (size_t i = 0; i < depth; ++i) {
    if (candidate.name[i] != name[i]) return false;
  }
  return true;
}

}  // namespace

NameTree::~NameTree() {
  for (Entry* head : buckets_) {
    while (head != nullptr) {
      Entry* next = head->hash_next;
      delete head;
      head = next;
    }
  }
}

NameTree::Entry* NameTree::probe(size_t hash, const Name& name,
                                 size_t depth) const {
  if (buckets_.empty()) return nullptr;
  for (Entry* e = buckets_[bucket_of(hash)]; e != nullptr; e = e->hash_next) {
    if (e->hash == hash && equals_prefix_of(*e, name, depth)) return e;
  }
  return nullptr;
}

NameTree::Entry* NameTree::find_exact(const Name& name) const {
  return probe(name.hash(), name, name.size());
}

NameTree::Entry* NameTree::find_prefix(const Name& name, size_t depth) const {
  if (depth > name.size()) depth = name.size();
  return probe(name.prefix_hash(depth), name, depth);
}

void NameTree::grow_if_needed() {
  if (buckets_.empty()) {
    buckets_.assign(64, nullptr);
    return;
  }
  if (size_ <= buckets_.size()) return;
  std::vector<Entry*> old = std::move(buckets_);
  buckets_.assign(old.size() * 2, nullptr);
  for (Entry* head : old) {
    while (head != nullptr) {
      Entry* next = head->hash_next;
      size_t b = bucket_of(head->hash);
      head->hash_next = buckets_[b];
      buckets_[b] = head;
      head = next;
    }
  }
}

NameTree::Entry* NameTree::lookup(const Name& name) {
  if (Entry* e = find_exact(name)) return e;

  // Deepest existing ancestor, then create the chain below it. Every
  // prefix hash comes from name's single cached pass.
  size_t have = name.size();  // name itself is known absent
  Entry* parent = nullptr;
  while (have > 0) {
    if ((parent = find_prefix(name, have - 1)) != nullptr) break;
    --have;
  }

  Entry* e = parent;
  for (size_t d = have; d <= name.size(); ++d) {
    grow_if_needed();
    Entry* child = new Entry();
    child->name = name.prefix(d);  // inherits the hash-cache slice
    child->hash = name.prefix_hash(d);
    child->parent = e;
    if (e != nullptr) {
      // Keep children sorted by last component so trie walks enumerate
      // names in std::map order.
      const Component& key = child->name[d - 1];
      auto pos = std::lower_bound(
          e->children.begin(), e->children.end(), key,
          [d](const Entry* a, const Component& c) {
            return a->name[d - 1] < c;
          });
      e->children.insert(pos, child);
    }
    size_t b = bucket_of(child->hash);
    child->hash_next = buckets_[b];
    buckets_[b] = child;
    ++size_;
    e = child;
  }
  return e;
}

void NameTree::cleanup(Entry* entry) {
  while (entry != nullptr && !entry->has_payload() && entry->children.empty()) {
    Entry* parent = entry->parent;
    // Unlink from the bucket chain.
    Entry** link = &buckets_[bucket_of(entry->hash)];
    while (*link != entry) link = &(*link)->hash_next;
    *link = entry->hash_next;
    // Unlink from the parent's sorted child list: last components are
    // unique among siblings, so the insertion-order binary search lands
    // exactly on this entry.
    if (parent != nullptr) {
      const size_t d = entry->name.size();
      const Component& key = entry->name[d - 1];
      auto it = std::lower_bound(
          parent->children.begin(), parent->children.end(), key,
          [d](const Entry* a, const Component& c) {
            return a->name[d - 1] < c;
          });
      parent->children.erase(it);
    }
    delete entry;
    --size_;
    entry = parent;
  }
}

void NameTree::enumerate(const std::function<void(const Entry&)>& fn) const {
  // The root (empty name) exists iff the tree is non-empty: every entry
  // chains up to it through lookup()'s ancestor creation.
  const Entry* root = probe(Name().hash(), Name(), 0);
  if (root == nullptr) return;
  // Pre-order with sorted children == component-lexicographic name order.
  std::function<void(const Entry&)> walk = [&](const Entry& e) {
    fn(e);
    for (const Entry* child : e.children) walk(*child);
  };
  walk(*root);
}

}  // namespace dapes::ndn
