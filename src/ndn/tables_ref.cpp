#include "ndn/tables_ref.hpp"

namespace dapes::ndn::ref {

bool ContentStore::refresh(const Name& name, TimePoint expires) {
  auto it = entries_.find(name);
  if (it == entries_.end()) return false;
  it->second.expires = expires;
  touch(name);
  return true;
}

void ContentStore::insert(DataPtr data, TimePoint now) {
  if (!data) return;
  if (refresh(data->name(), now + data->freshness())) return;
  if (entries_.size() >= capacity_) {
    evict_one();
  }
  TimePoint expires = now + data->freshness();
  lru_.push_back(data->name());
  auto lru_it = std::prev(lru_.end());
  content_bytes_ += data->content().size();
  Name name = data->name();
  entries_.emplace(std::move(name), Entry{std::move(data), expires, lru_it});
}

DataPtr ContentStore::find(const Name& name, bool can_be_prefix,
                           TimePoint now) {
  auto expired = [&](const Entry& e) { return e.expires <= now; };
  if (!can_be_prefix) {
    auto it = entries_.find(name);
    if (it == entries_.end()) return nullptr;
    if (expired(it->second)) {
      content_bytes_ -= it->second.data->content().size();
      lru_.erase(it->second.lru_it);
      entries_.erase(it);
      return nullptr;
    }
    touch(name);
    return it->second.data;
  }
  // Prefix query: first non-expired entry at or after `name` that it
  // prefixes.
  auto it = entries_.lower_bound(name);
  while (it != entries_.end() && name.is_prefix_of(it->first)) {
    if (expired(it->second)) {
      content_bytes_ -= it->second.data->content().size();
      lru_.erase(it->second.lru_it);
      it = entries_.erase(it);
      continue;
    }
    touch(it->first);
    return it->second.data;
  }
  return nullptr;
}

void ContentStore::touch(const Name& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) return;
  lru_.erase(it->second.lru_it);
  lru_.push_back(name);
  it->second.lru_it = std::prev(lru_.end());
}

void ContentStore::evict_one() {
  if (lru_.empty()) return;
  Name victim = lru_.front();
  lru_.pop_front();
  auto it = entries_.find(victim);
  if (it != entries_.end()) {
    content_bytes_ -= it->second.data->content().size();
    entries_.erase(it);
  }
}

PitEntry* Pit::find(const Name& name) {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<Name> Pit::matches_for_data(const Name& data_name) const {
  std::vector<Name> out;
  // Exact match.
  if (entries_.contains(data_name)) out.push_back(data_name);
  // CanBePrefix entries: every PIT name that prefixes data_name. Walk the
  // chain of proper prefixes (data names are shallow — collection/file/seq
  // — so this is at most a handful of lookups).
  for (size_t n = data_name.size(); n-- > 0;) {
    Name prefix = data_name.prefix(n);
    auto it = entries_.find(prefix);
    if (it != entries_.end() && it->second.can_be_prefix) {
      out.push_back(prefix);
    }
  }
  return out;
}

PitEntry& Pit::insert(const Name& name) {
  auto [it, inserted] = entries_.try_emplace(name);
  if (inserted) it->second.name = name;
  return it->second;
}

void Pit::erase(const Name& name) { entries_.erase(name); }

namespace {
uint64_t nonce_fingerprint(const Name& name, uint32_t nonce) {
  return std::hash<Name>{}(name) ^ (0x9e3779b97f4a7c15ULL * nonce);
}
}  // namespace

bool Pit::has_nonce(const Name& name, uint32_t nonce) const {
  auto it = entries_.find(name);
  if (it != entries_.end() && it->second.nonces.contains(nonce)) return true;
  return dead_set_.contains(nonce_fingerprint(name, nonce));
}

void Pit::record_dead_nonce(const Name& name, uint32_t nonce) {
  uint64_t fp = nonce_fingerprint(name, nonce);
  if (!dead_set_.insert(fp).second) return;
  dead_order_.push_back(fp);
  if (dead_order_.size() > kDeadNonceCap) {
    dead_set_.erase(dead_order_.front());
    dead_order_.pop_front();
  }
}

void Fib::add_route(const Name& prefix, FaceId face) {
  routes_[prefix].insert(face);
}

void Fib::remove_route(const Name& prefix, FaceId face) {
  auto it = routes_.find(prefix);
  if (it == routes_.end()) return;
  it->second.erase(face);
  if (it->second.empty()) routes_.erase(it);
}

std::vector<FaceId> Fib::lookup(const Name& name) const {
  // Longest prefix match: try progressively shorter prefixes.
  for (size_t n = name.size() + 1; n-- > 0;) {
    Name prefix = name.prefix(n);
    auto it = routes_.find(prefix);
    if (it != routes_.end() && !it->second.empty()) {
      return std::vector<FaceId>(it->second.begin(), it->second.end());
    }
  }
  return {};
}

std::vector<Name> Fib::prefixes_for(FaceId face) const {
  std::vector<Name> out;
  for (const auto& [prefix, faces] : routes_) {
    if (faces.contains(face)) out.push_back(prefix);
  }
  return out;
}

}  // namespace dapes::ndn::ref
