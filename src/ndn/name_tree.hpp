/// @file
/// Shared name-tree data plane (NFD's NameTree, sized for DAPES).
///
/// One hash table holds every name the forwarder's tables care about. Each
/// entry is keyed by the Name's cached FNV-1a hash (which encodes the
/// component count via separators, so (depth, hash) collisions across
/// depths are already rare; candidates are verified component-wise). The
/// entries double as a component trie: every entry points at its parent
/// (the one-component-shorter prefix) and keeps its children sorted by
/// last component, so the trie enumerates names in exactly the order a
/// std::map<Name, ...> would.
///
/// CS, PIT and FIB state hang off the *same* entry (pointer-sized slots,
/// allocated on demand), which is what makes the data plane cheap:
///
///   * exact match            — one hash probe (Name::hash is cached);
///   * prefix probe at depth d — one probe with Name::prefix_hash(d),
///     no prefix Name is ever materialized;
///   * all-prefixes walks (PIT matches_for_data, FIB longest-prefix
///     match) — O(depth) probes off one cached hash pass;
///   * CS LRU — an intrusive entry-pointer list, no Name copies;
///   * ordered prefix scans (CanBePrefix lookups) — pre-order trie
///     descent, identical visit order to the std::map reference.
///
/// Entries with no payloads and no children are removed eagerly
/// (cleanup()), so the table never outgrows the live table state.
/// src/ndn/tables.hpp builds the public ContentStore/Pit/Fib on top;
/// src/ndn/tables_ref.hpp retains the std::map reference implementation
/// the equivalence suite (tests/test_name_tree.cpp) compares against.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <unordered_set>
#include <vector>

#include "common/time.hpp"
#include "ndn/packet.hpp"
#include "sim/scheduler.hpp"

namespace dapes::ndn {

/// Identifier the Forwarder assigns when a face is added (mirrored from
/// face.hpp so the tables stay header-independent of faces).
using FaceId = uint32_t;
using common::TimePoint;

/// One pending Interest: who asked, which nonces were seen, when it dies.
struct PitEntry {
  Name name;                  ///< the pending Interest's name
  bool can_be_prefix = false; ///< Interest's CanBePrefix selector
  TimePoint expiry{};         ///< when the entry times out
  /// Faces the Interest arrived on (data goes back to these).
  std::vector<FaceId> in_faces;
  /// Set when this node relayed the Interest onto the broadcast medium.
  /// On a broadcast face the upstream (data source) and downstream
  /// (requester) share one face; a relaying node must re-broadcast the
  /// returning Data exactly when it forwarded the Interest itself.
  bool relayed_to_network = false;
  /// Nonces seen for this name — duplicates indicate loops.
  std::unordered_set<uint32_t> nonces;
  sim::EventId expiry_event{};  ///< scheduled timeout event
};

/// The shared hashed name trie all three tables hang their state off
/// (see file comment).
class NameTree {
 public:
  struct Entry;

  /// CS state: shared Data handle, expiry, intrusive LRU links.
  struct CsState {
    DataPtr data;              ///< the cached packet (shared, immutable)
    TimePoint expires{};       ///< freshness deadline
    Entry* lru_prev = nullptr; ///< intrusive LRU list link
    Entry* lru_next = nullptr; ///< intrusive LRU list link
  };

  /// FIB state: the next-hop set for this exact prefix.
  struct FibState {
    std::set<FaceId> faces;  ///< next-hop faces, ordered
  };

  /// One name's node in the shared trie/hash table.
  struct Entry {
    Name name;    ///< full name of this node; hash cache warm
    size_t hash;  ///< == name.hash(), stored for cheap rehash/probe
    Entry* parent = nullptr;       ///< one-component-shorter prefix
    std::vector<Entry*> children;  ///< sorted by last component
    Entry* hash_next = nullptr;    ///< bucket chain

    // Table payloads; an entry lives while any slot (or a child) does.
    std::unique_ptr<CsState> cs;    ///< Content Store slot
    std::unique_ptr<PitEntry> pit;  ///< PIT slot
    std::unique_ptr<FibState> fib;  ///< FIB slot
    /// CS entries at-or-below this entry (maintained by the ContentStore
    /// along the ancestor chain). CanBePrefix scans skip CS-free
    /// subtrees, so a shared tree dense in PIT/FIB state costs a prefix
    /// query nothing — it stays proportional to the CS entries in range,
    /// like the std::map reference.
    size_t cs_in_subtree = 0;

    /// Component count of this entry's name.
    size_t depth() const { return name.size(); }
    /// Whether any table slot is occupied.
    bool has_payload() const { return cs || pit || fib; }
  };

  /// An empty tree.
  NameTree() = default;
  ~NameTree();
  NameTree(const NameTree&) = delete;             ///< not copyable
  NameTree& operator=(const NameTree&) = delete;  ///< not copyable

  /// Find-or-insert the entry for @p name, creating payload-free ancestor
  /// entries up to the root. One probe when present; O(depth) on insert.
  Entry* lookup(const Name& name);

  /// Exact-match probe; nullptr when absent.
  Entry* find_exact(const Name& name) const;

  /// Probe for the @p depth-component prefix of @p name using its cached
  /// per-prefix hash — no prefix Name is materialized.
  Entry* find_prefix(const Name& name, size_t depth) const;

  /// Remove @p entry and then every ancestor left with no payload and no
  /// children. Call after clearing a payload slot; entries still carrying
  /// state are left untouched.
  void cleanup(Entry* entry);

  /// Pre-order, component-ordered walk of the whole trie — the iteration
  /// order of the std::map reference tables.
  void enumerate(const std::function<void(const Entry&)>& fn) const;

  /// Entry count, including payload-free interior entries.
  size_t size() const { return size_; }

 private:
  size_t bucket_of(size_t hash) const {
    return hash & (buckets_.size() - 1);
  }
  void grow_if_needed();
  /// The entry whose name equals the first @p depth components of
  /// @p name, or nullptr. @p hash must be name.prefix_hash(depth).
  Entry* probe(size_t hash, const Name& name, size_t depth) const;

  std::vector<Entry*> buckets_;  // power-of-two size; empty until first use
  size_t size_ = 0;
};

}  // namespace dapes::ndn
