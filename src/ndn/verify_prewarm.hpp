/// @file
/// Delivery prewarm that verifies each Data broadcast once per frame.
///
/// DAPES receivers each verify every Data packet they accept (paper §III:
/// per-packet name/content binding). On a broadcast medium one frame
/// reaches N receivers, so the naive layering hashes and MACs the same
/// bytes N times. This hook plugs into `sim::Medium`'s delivery path
/// (sim::DeliveryPrewarm) and does the cryptographic work once per frame:
///
///   * `stage` decodes each staged Data frame, batch-hashes the content
///     payloads through the multi-buffer SHA-256 engine (sha256_many —
///     4/8 frames per SIMD pass when same-instant deliveries batch up
///     under the phase-parallel engine), and computes the MAC verdict
///     against the trust keychain. Reads the cache, never writes it.
///   * `commit` publishes the digest and verdict into the trial's
///     crypto::VerifyCache, keyed on the shared frame buffer, and emits
///     one `crypto.prewarm` trace event per Data frame with a
///     commit-time cached/fresh flag (see trace/events.hpp for why the
///     flag must be decided at commit time).
///   * `bind_worker`/`unbind_worker` install the cache as the fan-out
///     lane's active cache so `Data::verify` and
///     `crypto::cached_content_digest` inside the protocol callbacks hit
///     it; the lane's previous thread-local state is restored on unbind.
///
/// Receivers then serve both the content digest and the MAC verdict from
/// the cache (ndn::Data::verify, core::Metadata::verify_packet). The
/// cache is exact — results with the prewarm on or off are identical;
/// test_verify_cache asserts it trial-for-trial.
#pragma once

#include <vector>

#include "crypto/verify_cache.hpp"
#include "ndn/packet.hpp"
#include "sim/medium.hpp"

namespace dapes::ndn {

/// sim::DeliveryPrewarm that pre-verifies Data frames into a
/// crypto::VerifyCache (see the file comment). Non-Data frames
/// (Interests, hellos) and undecodable payloads are skipped untouched.
class DataVerifyPrewarm : public sim::DeliveryPrewarm {
 public:
  /// Prewarm into @p cache, checking MACs against @p trust (the trial's
  /// shared trust keychain). Both must outlive the prewarm.
  DataVerifyPrewarm(crypto::VerifyCache& cache, const crypto::KeyChain& trust)
      : cache_(cache), trust_(trust) {}

  void stage(const sim::FramePtr* frames, size_t count) override;
  void commit(const sim::Frame& frame) override;
  void bind_worker() override;
  void unbind_worker() override;

 private:
  /// One staged Data frame: the decoded packet (zero-copy views into the
  /// frame buffer — its wire() slice is the cache anchor) plus the work
  /// products commit publishes.
  struct Staged {
    const void* key = nullptr;  ///< frame payload pointer (commit lookup)
    Data data;                  ///< decoded packet, views into the frame
    const crypto::Digest* secret = nullptr;  ///< signer secret (may be null)
    crypto::Digest digest{};    ///< SHA-256 of the content
    bool verdict = false;       ///< MAC check result (valid iff secret)
  };

  crypto::VerifyCache& cache_;
  const crypto::KeyChain& trust_;
  std::vector<Staged> staged_;  ///< reused across stage/commit cycles
};

}  // namespace dapes::ndn
