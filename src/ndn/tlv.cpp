#include "ndn/tlv.hpp"

namespace dapes::ndn::tlv {

void append_varnum(common::Bytes& out, uint64_t value) {
  if (value < 253) {
    out.push_back(static_cast<uint8_t>(value));
  } else if (value <= 0xffff) {
    out.push_back(0xfd);
    common::append_be(out, value, 2);
  } else if (value <= 0xffffffffULL) {
    out.push_back(0xfe);
    common::append_be(out, value, 4);
  } else {
    out.push_back(0xff);
    common::append_be(out, value, 8);
  }
}

void append_tlv(common::Bytes& out, uint64_t type, common::BytesView value) {
  append_varnum(out, type);
  append_varnum(out, value.size());
  out.insert(out.end(), value.begin(), value.end());
}

void append_tlv_number(common::Bytes& out, uint64_t type, uint64_t value) {
  // NDN NonNegativeInteger: 1, 2, 4, or 8 bytes.
  size_t width = 1;
  if (value > 0xffffffffULL) {
    width = 8;
  } else if (value > 0xffff) {
    width = 4;
  } else if (value > 0xff) {
    width = 2;
  }
  append_varnum(out, type);
  append_varnum(out, width);
  common::append_be(out, value, width);
}

Writer::Nested Writer::begin(uint64_t type) {
  append_varnum(out_, type);
  out_.push_back(0);  // length placeholder, patched in end()
  return Nested{out_.size() - 1};
}

void Writer::end(Nested nested) {
  const size_t length = out_.size() - nested.length_pos - 1;
  if (length < 253) {
    out_[nested.length_pos] = static_cast<uint8_t>(length);
    return;
  }
  // Rare: the one-byte reservation is too small; splice in the wide
  // varnum. Outer Nested handles point before this position, so they
  // stay valid (their lengths are computed from the final size).
  common::Bytes varnum_bytes;
  append_varnum(varnum_bytes, length);
  out_[nested.length_pos] = varnum_bytes[0];
  out_.insert(out_.begin() + static_cast<ptrdiff_t>(nested.length_pos) + 1,
              varnum_bytes.begin() + 1, varnum_bytes.end());
}

uint64_t Reader::read_varnum() {
  if (offset_ >= data_.size()) throw ParseError("tlv: truncated varnum");
  uint8_t first = data_[offset_++];
  size_t extra = 0;
  if (first < 253) return first;
  if (first == 0xfd) extra = 2;
  else if (first == 0xfe) extra = 4;
  else extra = 8;
  if (offset_ + extra > data_.size()) throw ParseError("tlv: truncated varnum");
  uint64_t value = common::read_be(data_.view(), offset_, extra);
  offset_ += extra;
  return value;
}

uint64_t Reader::peek_type() {
  size_t saved = offset_;
  uint64_t type = read_varnum();
  offset_ = saved;
  return type;
}

Reader::Element Reader::read_element() {
  uint64_t type = read_varnum();
  uint64_t length = read_varnum();
  if (length > data_.size() || offset_ + length > data_.size()) {
    throw ParseError("tlv: element length exceeds buffer");
  }
  Element e{type, data_.subslice(offset_, length)};
  offset_ += length;
  return e;
}

Reader::Element Reader::expect(uint64_t type) {
  Element e = read_element();
  if (e.type != type) {
    throw ParseError("tlv: unexpected element type");
  }
  return e;
}

std::optional<Reader::Element> Reader::find(uint64_t type) {
  while (!at_end()) {
    Element e = read_element();
    if (e.type == type) return e;
  }
  return std::nullopt;
}

uint64_t parse_number(common::BytesView value) {
  if (value.empty() || value.size() > 8) {
    throw ParseError("tlv: bad NonNegativeInteger width");
  }
  return common::read_be(value, 0, value.size());
}

}  // namespace dapes::ndn::tlv
