#include "ndn/verify_prewarm.hpp"

#include "ndn/tlv.hpp"
#include "trace/trace.hpp"

namespace dapes::ndn {

namespace {

/// The lane's pre-bind active cache, restored by unbind_worker. One slot
/// suffices: bind/unbind are properly nested per thread (one chain at a
/// time per lane, and the medium never re-enters a phase from a phase).
thread_local crypto::VerifyCache* t_saved_cache = nullptr;

}  // namespace

void DataVerifyPrewarm::stage(const sim::FramePtr* frames, size_t count) {
  staged_.clear();

  // Collect the decodable Data frames, deduplicating by payload pointer:
  // retransmissions inside one batch can share a frame buffer, and one
  // staged entry serves every transmission of it.
  for (size_t i = 0; i < count; ++i) {
    if (!frames[i]) continue;
    const common::BufferSlice& payload = frames[i]->payload;
    if (payload.empty() || payload.data()[0] != tlv::kData) continue;
    // Cache keys need a ref-counted anchor; unowned payloads can't be
    // pinned, so their receivers just take the compute path.
    if (!payload.owns_storage()) continue;
    bool dup = false;
    for (const Staged& s : staged_) {
      if (s.key == payload.data()) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    std::optional<Data> decoded = Data::decode(payload);
    if (!decoded) continue;
    Staged s;
    s.key = payload.data();
    s.data = std::move(*decoded);
    staged_.push_back(std::move(s));
  }
  if (staged_.empty()) return;

  // Content digests: serve already-cached ranges, batch the rest through
  // the multi-buffer engine (one SIMD pass hashes 4 or 8 frames).
  std::vector<common::BytesView> views;
  std::vector<size_t> missing;
  for (size_t i = 0; i < staged_.size(); ++i) {
    const common::BytesView content = staged_[i].data.content();
    if (auto hit = cache_.lookup_digest(content.data(), content.size())) {
      staged_[i].digest = *hit;
    } else {
      views.push_back(content);
      missing.push_back(i);
    }
  }
  if (!missing.empty()) {
    std::vector<crypto::Digest> digests(missing.size());
    crypto::sha256_many(views.data(), digests.data(), missing.size());
    crypto::verify_counters().content_digests_computed.fetch_add(
        missing.size(), std::memory_order_relaxed);
    for (size_t j = 0; j < missing.size(); ++j) {
      staged_[missing[j]].digest = digests[j];
    }
  }

  // MAC verdicts against the trust keychain. The verdict for an unknown
  // signer stays uncached (secret == nullptr): Data::verify already
  // short-circuits those to false without hashing.
  for (Staged& s : staged_) {
    const std::optional<crypto::Signature>& sig = s.data.signature();
    if (!sig) continue;
    s.secret = trust_.secret_for(sig->signer);
    if (!s.secret) continue;
    const common::BufferSlice& wire = s.data.wire();
    if (auto hit = cache_.lookup_mac(wire.data(), wire.size(), *s.secret)) {
      s.verdict = *hit;
    } else {
      s.verdict = crypto::KeyChain::compute_mac(
                      *s.secret, s.data.name().to_uri(), s.digest) == sig->mac;
    }
  }
}

void DataVerifyPrewarm::commit(const sim::Frame& frame) {
  for (const Staged& s : staged_) {
    if (s.key != frame.payload.data()) continue;
    const common::BufferSlice& wire = s.data.wire();
    const common::BytesView content = s.data.content();
    // The cached/fresh flag is decided here, at commit time: stage runs
    // per frame on the serial path but per batch on the parallel one, so
    // a stage-time flag would differ between bit-identical runs.
    const bool digest_cached =
        cache_.lookup_digest(content.data(), content.size()).has_value();
    const bool mac_cached =
        s.secret == nullptr ||
        cache_.lookup_mac(wire.data(), wire.size(), *s.secret).has_value();
    if (!digest_cached) cache_.store_digest(s.data.content_slice(), s.digest);
    if (s.secret && !mac_cached) cache_.store_mac(wire, *s.secret, s.verdict);
    DAPES_TRACE_EVENT(trace::EventType::kCryptoPrewarm, frame.sender,
                      (digest_cached && mac_cached) ? 1u : 0u,
                      static_cast<uint64_t>(wire.size()));
    return;
  }
}

void DataVerifyPrewarm::bind_worker() {
  t_saved_cache = crypto::set_active_verify_cache(&cache_);
}

void DataVerifyPrewarm::unbind_worker() {
  crypto::set_active_verify_cache(t_saved_cache);
  t_saved_cache = nullptr;
}

}  // namespace dapes::ndn
