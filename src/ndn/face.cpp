#include "ndn/face.hpp"

#include "common/logging.hpp"

namespace dapes::ndn {

void WifiFace::send_interest(const Interest& interest) {
  auto frame = std::make_shared<sim::Frame>();
  frame->sender = node_;
  frame->payload = interest.wire();  // shares the cached encoding
  frame->kind = "ndn-interest";
  ++interests_sent_;
  sim::Radio::SendCompleteCallback cb;
  if (next_interest_cb_) {
    cb = std::move(next_interest_cb_);
    next_interest_cb_ = nullptr;
  }
  radio_.send(std::move(frame), std::move(cb));
}

void WifiFace::send_data(const Data& data) {
  if (data_window_.us <= 0) {
    ++data_sent_;
    auto frame = std::make_shared<sim::Frame>();
    frame->sender = node_;
    frame->payload = data.wire();  // cached: forwarding never re-serializes
    frame->kind = "ndn-data";
    radio_.send(std::move(frame));
    return;
  }
  if (pending_data_.contains(data.name())) {
    return;  // already queued
  }
  Duration delay = Duration::microseconds(static_cast<int64_t>(
      rng_.next_below(static_cast<uint64_t>(data_window_.us) + 1)));
  Name name = data.name();
  sim::EventId ev = sched_.schedule(delay, [this, name] { transmit_data(name); });
  // Slice-sharing copy into a shared handle: content and cached wire stay
  // views into the original buffer.
  pending_data_.emplace(std::move(name),
                        std::make_pair(std::make_shared<const Data>(data), ev));
}

void WifiFace::transmit_data(const Name& name) {
  auto it = pending_data_.find(name);
  if (it == pending_data_.end()) return;
  DataPtr data = std::move(it->second.first);
  pending_data_.erase(it);
  ++data_sent_;
  auto frame = std::make_shared<sim::Frame>();
  frame->sender = node_;
  frame->payload = data->wire();
  frame->kind = "ndn-data";
  radio_.send(std::move(frame));
}

void WifiFace::on_frame(const sim::FramePtr& frame) {
  const auto& payload = frame->payload;
  if (payload.empty()) return;
  // The NDN packet types (0x05/0x06) encode as a single leading byte, so
  // foreign frames (IP baselines) are skipped without any parsing.
  const uint8_t type = payload[0];
  if (type == tlv::kInterest) {
    // One decode per received frame: the Interest's wire cache and
    // ApplicationParameters are views into the frame's shared buffer.
    if (auto interest = Interest::decode(payload)) {
      deliver_interest(*interest);
    } else {
      DAPES_LOG_DEBUG("wifi-face") << "undecodable interest frame";
    }
  } else if (type == tlv::kData) {
    auto data = Data::decode(payload);
    if (!data) {
      DAPES_LOG_DEBUG("wifi-face") << "undecodable data frame";
      return;
    }
    // Suppress our own pending transmission of the same Data: someone
    // else answered first.
    auto it = pending_data_.find(data->name());
    if (it != pending_data_.end()) {
      sched_.cancel(it->second.second);
      pending_data_.erase(it);
      ++data_suppressed_;
    }
    deliver_data(*data);
  }
  // Other frame types (IP baselines) are not ours; ignore.
}

}  // namespace dapes::ndn
