#include "ndn/packet.hpp"

#include <cstring>

#include "crypto/verify_cache.hpp"

namespace dapes::ndn {

namespace {

constexpr uint64_t kSignatureTypeDapesMac = 200;  // private-use value

}  // namespace

CodecCounters& codec_counters() {
  static CodecCounters counters;
  return counters;
}

void append_name(tlv::Writer& w, const Name& name) {
  auto nested = w.begin(tlv::kName);
  for (const auto& c : name.components()) {
    w.tlv(tlv::kGenericNameComponent,
          BytesView(c.value().data(), c.value().size()));
  }
  w.end(nested);
}

Name parse_name(BytesView value) {
  Name name;
  tlv::Reader reader(value);
  while (!reader.at_end()) {
    auto e = reader.read_element();
    if (e.type != tlv::kGenericNameComponent) {
      throw tlv::ParseError("name: unexpected component type");
    }
    name.append(Component(Bytes(e.value.begin(), e.value.end())));
  }
  // Seed the incremental hash cache while the component bytes are hot:
  // every decoded packet arrives at the data plane ready for hash probes.
  name.hash();
  return name;
}

const BufferSlice& Interest::wire() const {
  if (!wire_.empty()) {
    codec_counters().wire_cache_hits.fetch_add(1, std::memory_order_relaxed);
    return wire_;
  }
  codec_counters().interest_encodes.fetch_add(1, std::memory_order_relaxed);
  tlv::Writer w(64 + app_parameters_.size());
  auto packet = w.begin(tlv::kInterest);
  append_name(w, name_);
  if (can_be_prefix_) {
    w.tlv(tlv::kCanBePrefix, {});
  }
  auto nonce = w.begin(tlv::kNonce);
  w.be(nonce_, 4);
  w.end(nonce);
  w.tlv_number(tlv::kInterestLifetime,
               static_cast<uint64_t>(lifetime_.to_milliseconds()));
  auto hop = w.begin(tlv::kHopLimit);
  w.byte(hop_limit_);
  w.end(hop);
  if (!app_parameters_.empty()) {
    w.tlv(tlv::kApplicationParameters, app_parameters_.view());
  }
  w.end(packet);
  wire_ = w.finish();
  return wire_;
}

std::optional<Interest> Interest::decode(BufferSlice wire) {
  codec_counters().interest_decodes.fetch_add(1, std::memory_order_relaxed);
  try {
    tlv::Reader outer(wire);
    auto packet = outer.expect(tlv::kInterest);

    Interest interest;
    tlv::Reader reader(packet.value);
    auto name_el = reader.expect(tlv::kName);
    interest.name_ = parse_name(name_el.value);

    while (!reader.at_end()) {
      auto e = reader.read_element();
      switch (e.type) {
        case tlv::kCanBePrefix:
          interest.can_be_prefix_ = true;
          break;
        case tlv::kNonce:
          if (e.value.size() != 4) return std::nullopt;
          interest.nonce_ =
              static_cast<uint32_t>(common::read_be(e.value, 0, 4));
          break;
        case tlv::kInterestLifetime:
          interest.lifetime_ = Duration::milliseconds(
              static_cast<int64_t>(tlv::parse_number(e.value)));
          break;
        case tlv::kHopLimit:
          if (e.value.size() != 1) return std::nullopt;
          interest.hop_limit_ = e.value[0];
          break;
        case tlv::kApplicationParameters:
          interest.app_parameters_ = e.value;  // zero-copy view
          break;
        default:
          break;  // ignore unknown elements (forward-compatible)
      }
    }
    // Cache exactly the Interest TLV extent (trailing bytes excluded).
    interest.wire_ = wire.subslice(0, outer.offset());
    return interest;
  } catch (const tlv::ParseError&) {
    return std::nullopt;
  }
}

void Data::sign(const crypto::PrivateKey& key) {
  signature_ = key.sign(name_.to_uri(), content_digest());
  invalidate_wire();
}

bool Data::verify(const crypto::KeyChain& keychain) const {
  if (!signature_) return false;
  if (const crypto::VerifyCache* cache = crypto::active_verify_cache()) {
    // The wire buffer is the broadcast's identity: a verdict the delivery
    // prewarm committed for this frame serves every receiver and every
    // repeat verify. Keyed on the signer's secret too, so a keychain that
    // resolves the KeyId differently can never get a foreign verdict.
    if (const crypto::Digest* secret = keychain.secret_for(signature_->signer)) {
      if (!wire_.empty() && wire_.owns_storage()) {
        if (auto verdict =
                cache->lookup_mac(wire_.data(), wire_.size(), *secret)) {
          return *verdict;
        }
      }
    } else {
      return false;  // unknown signer: same answer the slow path gives
    }
  }
  return keychain.verify(name_.to_uri(), content_digest(), *signature_);
}

crypto::Digest Data::content_digest() const {
  if (!content_digest_) {
    content_digest_ = crypto::cached_content_digest(content_.view());
  }
  return *content_digest_;
}

const BufferSlice& Data::wire() const {
  if (!wire_.empty()) {
    codec_counters().wire_cache_hits.fetch_add(1, std::memory_order_relaxed);
    return wire_;
  }
  codec_counters().data_encodes.fetch_add(1, std::memory_order_relaxed);
  tlv::Writer w(96 + content_.size());
  auto packet = w.begin(tlv::kData);
  append_name(w, name_);

  auto meta = w.begin(tlv::kMetaInfo);
  w.tlv_number(tlv::kFreshnessPeriod,
               static_cast<uint64_t>(freshness_.to_milliseconds()));
  w.end(meta);

  w.tlv(tlv::kContent, content_.view());

  if (signature_) {
    auto sig_info = w.begin(tlv::kSignatureInfo);
    w.tlv_number(tlv::kSignatureType, kSignatureTypeDapesMac);
    w.tlv(tlv::kKeyLocator, signature_->signer.id.view());
    w.end(sig_info);
    w.tlv(tlv::kSignatureValue, signature_->mac.view());
  }
  w.end(packet);
  wire_ = w.finish();
  return wire_;
}

std::optional<Data> Data::decode(BufferSlice wire) {
  codec_counters().data_decodes.fetch_add(1, std::memory_order_relaxed);
  try {
    tlv::Reader outer(wire);
    auto packet = outer.expect(tlv::kData);

    Data data;
    tlv::Reader reader(packet.value);
    auto name_el = reader.expect(tlv::kName);
    data.name_ = parse_name(name_el.value);

    std::optional<crypto::KeyId> signer;
    std::optional<crypto::Digest> mac;

    while (!reader.at_end()) {
      auto e = reader.read_element();
      switch (e.type) {
        case tlv::kMetaInfo: {
          tlv::Reader meta(e.value);
          while (!meta.at_end()) {
            auto m = meta.read_element();
            if (m.type == tlv::kFreshnessPeriod) {
              data.freshness_ = Duration::milliseconds(
                  static_cast<int64_t>(tlv::parse_number(m.value)));
            }
          }
          break;
        }
        case tlv::kContent:
          data.content_ = e.value;  // zero-copy view into the frame
          break;
        case tlv::kSignatureInfo: {
          tlv::Reader info(e.value);
          while (!info.at_end()) {
            auto m = info.read_element();
            if (m.type == tlv::kKeyLocator) {
              if (m.value.size() != 32) return std::nullopt;
              crypto::KeyId id;
              std::memcpy(id.id.bytes.data(), m.value.data(), 32);
              signer = id;
            }
          }
          break;
        }
        case tlv::kSignatureValue: {
          if (e.value.size() != 32) return std::nullopt;
          crypto::Digest d;
          std::memcpy(d.bytes.data(), e.value.data(), 32);
          mac = d;
          break;
        }
        default:
          break;
      }
    }

    if (signer && mac) {
      data.signature_ = crypto::Signature{*signer, *mac};
    }
    data.wire_ = wire.subslice(0, outer.offset());
    return data;
  } catch (const tlv::ParseError&) {
    return std::nullopt;
  }
}

}  // namespace dapes::ndn
