#include "ndn/packet.hpp"

#include <cstring>

namespace dapes::ndn {

namespace {

constexpr uint64_t kSignatureTypeDapesMac = 200;  // private-use value

}  // namespace

void append_name(Bytes& out, const Name& name) {
  Bytes inner;
  for (const auto& c : name.components()) {
    tlv::append_tlv(inner, tlv::kGenericNameComponent,
                    BytesView(c.value().data(), c.value().size()));
  }
  tlv::append_tlv(out, tlv::kName, BytesView(inner.data(), inner.size()));
}

Name parse_name(BytesView value) {
  Name name;
  tlv::Reader reader(value);
  while (!reader.at_end()) {
    auto e = reader.read_element();
    if (e.type != tlv::kGenericNameComponent) {
      throw tlv::ParseError("name: unexpected component type");
    }
    name.append(Component(Bytes(e.value.begin(), e.value.end())));
  }
  return name;
}

Bytes Interest::encode() const {
  Bytes inner;
  append_name(inner, name_);
  if (can_be_prefix_) {
    tlv::append_tlv(inner, tlv::kCanBePrefix, {});
  }
  Bytes nonce_bytes;
  common::append_be(nonce_bytes, nonce_, 4);
  tlv::append_tlv(inner, tlv::kNonce,
                  BytesView(nonce_bytes.data(), nonce_bytes.size()));
  tlv::append_tlv_number(inner, tlv::kInterestLifetime,
                         static_cast<uint64_t>(lifetime_.to_milliseconds()));
  Bytes hop;
  hop.push_back(hop_limit_);
  tlv::append_tlv(inner, tlv::kHopLimit, BytesView(hop.data(), hop.size()));
  if (!app_parameters_.empty()) {
    tlv::append_tlv(inner, tlv::kApplicationParameters,
                    BytesView(app_parameters_.data(), app_parameters_.size()));
  }

  Bytes wire;
  tlv::append_tlv(wire, tlv::kInterest, BytesView(inner.data(), inner.size()));
  return wire;
}

Interest Interest::decode(BytesView wire) {
  tlv::Reader outer(wire);
  auto packet = outer.expect(tlv::kInterest);

  Interest interest;
  tlv::Reader reader(packet.value);
  auto name_el = reader.expect(tlv::kName);
  interest.name_ = parse_name(name_el.value);

  while (!reader.at_end()) {
    auto e = reader.read_element();
    switch (e.type) {
      case tlv::kCanBePrefix:
        interest.can_be_prefix_ = true;
        break;
      case tlv::kNonce:
        if (e.value.size() != 4) throw tlv::ParseError("interest: bad nonce");
        interest.nonce_ =
            static_cast<uint32_t>(common::read_be(e.value, 0, 4));
        break;
      case tlv::kInterestLifetime:
        interest.lifetime_ =
            Duration::milliseconds(static_cast<int64_t>(tlv::parse_number(e.value)));
        break;
      case tlv::kHopLimit:
        if (e.value.size() != 1) throw tlv::ParseError("interest: bad hop limit");
        interest.hop_limit_ = e.value[0];
        break;
      case tlv::kApplicationParameters:
        interest.app_parameters_.assign(e.value.begin(), e.value.end());
        break;
      default:
        break;  // ignore unknown elements (forward-compatible)
    }
  }
  return interest;
}

void Data::sign(const crypto::PrivateKey& key) {
  signature_ = key.sign(name_.to_uri(),
                        BytesView(content_.data(), content_.size()));
}

bool Data::verify(const crypto::KeyChain& keychain) const {
  if (!signature_) return false;
  return keychain.verify(name_.to_uri(),
                         BytesView(content_.data(), content_.size()),
                         *signature_);
}

crypto::Digest Data::content_digest() const {
  return crypto::Sha256::hash(BytesView(content_.data(), content_.size()));
}

Bytes Data::encode() const {
  Bytes inner;
  append_name(inner, name_);

  Bytes meta;
  tlv::append_tlv_number(meta, tlv::kFreshnessPeriod,
                         static_cast<uint64_t>(freshness_.to_milliseconds()));
  tlv::append_tlv(inner, tlv::kMetaInfo, BytesView(meta.data(), meta.size()));

  tlv::append_tlv(inner, tlv::kContent,
                  BytesView(content_.data(), content_.size()));

  if (signature_) {
    Bytes sig_info;
    tlv::append_tlv_number(sig_info, tlv::kSignatureType, kSignatureTypeDapesMac);
    tlv::append_tlv(sig_info, tlv::kKeyLocator,
                    signature_->signer.id.view());
    tlv::append_tlv(inner, tlv::kSignatureInfo,
                    BytesView(sig_info.data(), sig_info.size()));
    tlv::append_tlv(inner, tlv::kSignatureValue, signature_->mac.view());
  }

  Bytes wire;
  tlv::append_tlv(wire, tlv::kData, BytesView(inner.data(), inner.size()));
  return wire;
}

Data Data::decode(BytesView wire) {
  tlv::Reader outer(wire);
  auto packet = outer.expect(tlv::kData);

  Data data;
  tlv::Reader reader(packet.value);
  auto name_el = reader.expect(tlv::kName);
  data.name_ = parse_name(name_el.value);

  std::optional<crypto::KeyId> signer;
  std::optional<crypto::Digest> mac;

  while (!reader.at_end()) {
    auto e = reader.read_element();
    switch (e.type) {
      case tlv::kMetaInfo: {
        tlv::Reader meta(e.value);
        while (!meta.at_end()) {
          auto m = meta.read_element();
          if (m.type == tlv::kFreshnessPeriod) {
            data.freshness_ = Duration::milliseconds(
                static_cast<int64_t>(tlv::parse_number(m.value)));
          }
        }
        break;
      }
      case tlv::kContent:
        data.content_.assign(e.value.begin(), e.value.end());
        break;
      case tlv::kSignatureInfo: {
        tlv::Reader info(e.value);
        while (!info.at_end()) {
          auto m = info.read_element();
          if (m.type == tlv::kKeyLocator) {
            if (m.value.size() != 32) {
              throw tlv::ParseError("data: bad key locator");
            }
            crypto::KeyId id;
            std::memcpy(id.id.bytes.data(), m.value.data(), 32);
            signer = id;
          }
        }
        break;
      }
      case tlv::kSignatureValue: {
        if (e.value.size() != 32) {
          throw tlv::ParseError("data: bad signature value");
        }
        crypto::Digest d;
        std::memcpy(d.bytes.data(), e.value.data(), 32);
        mac = d;
        break;
      }
      default:
        break;
    }
  }

  if (signer && mac) {
    data.signature_ = crypto::Signature{*signer, *mac};
  }
  return data;
}

}  // namespace dapes::ndn
