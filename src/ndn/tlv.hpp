/// @file
/// NDN TLV encoding (subset of the NDN Packet Format Specification v0.3).
///
/// Type and Length use the NDN variable-size number encoding: one byte for
/// values < 253, 0xFD + 2 bytes, 0xFE + 4 bytes, 0xFF + 8 bytes. This codec
/// is shared by Interest/Data wire encoding, DAPES control/metadata
/// payloads, and (for its raw primitives) the IP-lite packet codec — there
/// is exactly one encoding idiom in the repo:
///
///   * `Writer` builds an encoding into a single growing buffer with
///     back-patched lengths for nested elements (no intermediate vectors),
///     then freezes it into a shared `BufferSlice` via `finish()`.
///   * `Reader` walks an encoding and yields elements as `BufferSlice`
///     sub-views that keep the source buffer alive — decoding is zero-copy.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>

#include "common/buffer.hpp"
#include "common/bytes.hpp"

namespace dapes::ndn::tlv {

/// TLV type numbers used in this implementation (NDN spec values).
enum Type : uint64_t {
  kInterest = 0x05,
  kData = 0x06,
  kName = 0x07,
  kGenericNameComponent = 0x08,
  kCanBePrefix = 0x21,
  kMustBeFresh = 0x12,
  kNonce = 0x0a,
  kInterestLifetime = 0x0c,
  kHopLimit = 0x22,
  kApplicationParameters = 0x24,
  kMetaInfo = 0x14,
  kContentType = 0x18,
  kFreshnessPeriod = 0x19,
  kContent = 0x15,
  kSignatureInfo = 0x16,
  kSignatureValue = 0x17,
  kSignatureType = 0x1b,
  kKeyLocator = 0x1c,
};

/// Thrown by Reader on malformed/truncated input. Internal to the codec
/// layer: public decode entry points catch it and return nullopt.
struct ParseError : std::runtime_error {
  using std::runtime_error::runtime_error;  ///< inherit constructors
};

/// Append a TLV variable-size number (primitive shared with Writer).
void append_varnum(common::Bytes& out, uint64_t value);

/// Append a full TLV element (type, length, value bytes).
void append_tlv(common::Bytes& out, uint64_t type, common::BytesView value);

/// Append a TLV element whose value is a non-negative integer in
/// shortest big-endian form (NDN NonNegativeInteger).
void append_tlv_number(common::Bytes& out, uint64_t type, uint64_t value);

/// Incremental encoder: every wire format in the repo is built through
/// this one API. Nested elements are opened with begin() and back-patched
/// on end(), so no intermediate per-element vectors are allocated.
class Writer {
 public:
  /// Empty writer.
  Writer() = default;
  /// Empty writer with @p reserve bytes pre-allocated.
  explicit Writer(size_t reserve) { out_.reserve(reserve); }

  // -- raw primitives (shared with non-TLV codecs like IP-lite) --------
  /// Append one raw byte.
  void byte(uint8_t b) { out_.push_back(b); }
  /// Append @p value big-endian in @p width bytes.
  void be(uint64_t value, size_t width) { common::append_be(out_, value, width); }
  /// Append raw bytes verbatim.
  void raw(common::BytesView bytes) {
    out_.insert(out_.end(), bytes.begin(), bytes.end());
  }

  // -- TLV ---------------------------------------------------------------
  /// Append a TLV variable-size number.
  void varnum(uint64_t value) { append_varnum(out_, value); }
  /// Append a complete TLV element.
  void tlv(uint64_t type, common::BytesView value) {
    append_tlv(out_, type, value);
  }
  /// Append a TLV NonNegativeInteger element.
  void tlv_number(uint64_t type, uint64_t value) {
    append_tlv_number(out_, type, value);
  }

  /// Handle for an open nested element; pass to end().
  struct Nested {
    size_t length_pos = 0;  ///< offset of the reserved length byte
  };

  /// Open a nested TLV element: writes the type, reserves the length.
  Nested begin(uint64_t type);

  /// Close the innermost-opened element, back-patching its length.
  /// Nested elements must be closed innermost-first.
  void end(Nested nested);

  /// Bytes written so far.
  size_t size() const { return out_.size(); }

  /// Move the built bytes out (build side keeps mutable Bytes semantics).
  common::Bytes take() { return std::move(out_); }

  /// Freeze into an immutable shared buffer (the zero-copy handoff).
  common::BufferSlice finish() {
    return common::BufferSlice(common::Buffer::from(std::move(out_)));
  }

 private:
  common::Bytes out_;
};

/// Incremental TLV reader. When constructed from a BufferSlice, the
/// elements it yields are sub-slices sharing the source buffer; when
/// constructed from a raw BytesView the elements are unowned views (the
/// caller must keep the bytes alive).
class Reader {
 public:
  /// Read from borrowed bytes; yielded elements are unowned views.
  explicit Reader(common::BytesView data)
      : data_(common::BufferSlice::unowned(data)) {}
  /// Read from a shared slice; yielded elements share the buffer.
  explicit Reader(common::BufferSlice data) : data_(std::move(data)) {}

  /// True once every byte has been consumed.
  bool at_end() const { return offset_ >= data_.size(); }
  /// Current read position.
  size_t offset() const { return offset_; }

  /// Read a variable-size number. @throws ParseError on truncation.
  uint64_t read_varnum();

  /// Peek the type of the next element without consuming it.
  uint64_t peek_type();

  /// One decoded element: type + value sub-slice.
  struct Element {
    uint64_t type;              ///< TLV type number
    common::BufferSlice value;  ///< value bytes (shares the source)
  };
  /// Read the next element header and return its value as a sub-slice.
  Element read_element();

  /// Read the next element, requiring the given type.
  Element expect(uint64_t type);

  /// Skip elements until one of type @p type is found; returns nullopt if
  /// the reader drains first.
  std::optional<Element> find(uint64_t type);

 private:
  common::BufferSlice data_;
  size_t offset_ = 0;
};

/// Parse a NonNegativeInteger value field.
uint64_t parse_number(common::BytesView value);

}  // namespace dapes::ndn::tlv
