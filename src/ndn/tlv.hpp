// NDN TLV encoding (subset of the NDN Packet Format Specification v0.3).
//
// Type and Length use the NDN variable-size number encoding: one byte for
// values < 253, 0xFD + 2 bytes, 0xFE + 4 bytes, 0xFF + 8 bytes. This codec
// is shared by Interest/Data wire encoding and by DAPES metadata payloads.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>

#include "common/bytes.hpp"

namespace dapes::ndn::tlv {

/// TLV type numbers used in this implementation (NDN spec values).
enum Type : uint64_t {
  kInterest = 0x05,
  kData = 0x06,
  kName = 0x07,
  kGenericNameComponent = 0x08,
  kCanBePrefix = 0x21,
  kMustBeFresh = 0x12,
  kNonce = 0x0a,
  kInterestLifetime = 0x0c,
  kHopLimit = 0x22,
  kApplicationParameters = 0x24,
  kMetaInfo = 0x14,
  kContentType = 0x18,
  kFreshnessPeriod = 0x19,
  kContent = 0x15,
  kSignatureInfo = 0x16,
  kSignatureValue = 0x17,
  kSignatureType = 0x1b,
  kKeyLocator = 0x1c,
};

struct ParseError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Append a TLV variable-size number.
void append_varnum(common::Bytes& out, uint64_t value);

/// Append a full TLV element (type, length, value bytes).
void append_tlv(common::Bytes& out, uint64_t type, common::BytesView value);

/// Append a TLV element whose value is a non-negative integer in
/// shortest big-endian form (NDN NonNegativeInteger).
void append_tlv_number(common::Bytes& out, uint64_t type, uint64_t value);

/// Incremental TLV reader over a byte view.
class Reader {
 public:
  explicit Reader(common::BytesView data) : data_(data) {}

  bool at_end() const { return offset_ >= data_.size(); }
  size_t offset() const { return offset_; }

  /// Read a variable-size number. @throws ParseError on truncation.
  uint64_t read_varnum();

  /// Peek the type of the next element without consuming it.
  uint64_t peek_type();

  /// Read the next element header and return its value as a sub-view.
  struct Element {
    uint64_t type;
    common::BytesView value;
  };
  Element read_element();

  /// Read the next element, requiring the given type.
  Element expect(uint64_t type);

  /// Skip elements until one of type @p type is found; returns nullopt if
  /// the reader drains first.
  std::optional<Element> find(uint64_t type);

 private:
  common::BytesView data_;
  size_t offset_ = 0;
};

/// Parse a NonNegativeInteger value field.
uint64_t parse_number(common::BytesView value);

}  // namespace dapes::ndn::tlv
