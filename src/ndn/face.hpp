/// @file
/// Faces: the forwarder's attachment points.
///
/// Each simulated node runs one Forwarder with (at least) two faces: an
/// AppFace for the local application (DAPES peer, or nothing on a pure
/// forwarder) and a WifiFace bridging to the node's broadcast radio. The
/// Forwarder pushes outgoing packets into Face::send_*; incoming packets
/// are injected by the face owner via the handlers the Forwarder installs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/rng.hpp"
#include "ndn/packet.hpp"
#include "sim/radio.hpp"
#include "sim/scheduler.hpp"

namespace dapes::ndn {

/// Identifier the Forwarder assigns when a face is added.
using FaceId = uint32_t;

/// Abstract attachment point between a Forwarder and an application or
/// network adapter (see file comment).
class Face {
 public:
  virtual ~Face() = default;

  /// Forwarder-assigned face id (0 until added).
  FaceId id() const { return id_; }
  /// Assign the face id (called by the Forwarder).
  void set_id(FaceId id) { id_ = id; }

  /// Local faces connect applications; non-local faces reach the network
  /// (hop limits only apply to non-local hops).
  virtual bool is_local() const = 0;

  /// Forwarder -> face: emit an Interest.
  virtual void send_interest(const Interest& interest) = 0;
  /// Forwarder -> face: emit a Data.
  virtual void send_data(const Data& data) = 0;

  /// Handler type for Interests arriving from this face.
  using InterestHandler = std::function<void(const Interest&)>;
  /// Handler type for Data arriving from this face.
  using DataHandler = std::function<void(const Data&)>;

  /// Install the Forwarder's receive handlers for this face.
  void set_receive_handlers(InterestHandler on_interest, DataHandler on_data) {
    on_interest_ = std::move(on_interest);
    on_data_ = std::move(on_data);
  }

 protected:
  /// Hand an incoming Interest to the installed Forwarder handler.
  void deliver_interest(const Interest& interest) {
    if (on_interest_) on_interest_(interest);
  }
  /// Hand an incoming Data to the installed Forwarder handler.
  void deliver_data(const Data& data) {
    if (on_data_) on_data_(data);
  }

 private:
  FaceId id_ = 0;
  InterestHandler on_interest_;
  DataHandler on_data_;
};

/// Local application endpoint. The application reads packets via its own
/// callbacks and writes with express()/put().
class AppFace final : public Face {
 public:
  /// Application callback for Interests delivered to the app.
  using AppInterestHandler = std::function<void(const Interest&)>;
  /// Application callback for Data delivered to the app.
  using AppDataHandler = std::function<void(const Data&)>;

  /// Application-side callbacks (what the app receives from the network).
  void set_app_handlers(AppInterestHandler on_interest, AppDataHandler on_data) {
    app_on_interest_ = std::move(on_interest);
    app_on_data_ = std::move(on_data);
  }

  /// Forwarder -> application (Interest).
  void send_interest(const Interest& interest) override {
    if (app_on_interest_) app_on_interest_(interest);
  }
  /// Forwarder -> application (Data).
  void send_data(const Data& data) override {
    if (app_on_data_) app_on_data_(data);
  }

  /// Application -> forwarder: express an Interest.
  void express(const Interest& interest) { deliver_interest(interest); }
  /// Application -> forwarder: publish a Data.
  void put(const Data& data) { deliver_data(data); }

  bool is_local() const override { return true; }  ///< always local

 private:
  AppInterestHandler app_on_interest_;
  AppDataHandler app_on_data_;
};

/// Broadcast wireless face: encodes packets into radio frames.
///
/// Data transmissions are held for a random delay within a transmission
/// window and suppressed entirely if an identical-name Data is overheard
/// first — the paper's "random timer for collection data transmissions to
/// avoid collisions" plus multi-responder suppression. Set the window to
/// zero to send immediately.
class WifiFace final : public Face {
 public:
  /// Bridge @p radio to the forwarder; Data sends are delayed uniformly
  /// within @p data_window (0 = immediate) for suppression.
  WifiFace(sim::Scheduler& sched, sim::Radio& radio, sim::NodeId node,
           common::Rng rng,
           Duration data_window = Duration::milliseconds(20))
      : sched_(sched),
        radio_(radio),
        node_(node),
        rng_(rng),
        data_window_(data_window) {}

  /// Encode and broadcast an Interest immediately.
  void send_interest(const Interest& interest) override;
  /// Schedule a Data broadcast within the suppression window.
  void send_data(const Data& data) override;

  /// Called by the node's medium receive callback for every frame heard.
  /// Silently ignores frames that are not NDN packets (e.g. IP baseline
  /// traffic in mixed tests).
  void on_frame(const sim::FramePtr& frame);

  /// Completion hook for the next Interest transmission — lets the DAPES
  /// peer detect bitmap-announcement collisions for PEBA. One-shot.
  void set_next_interest_tx_callback(sim::Radio::SendCompleteCallback cb) {
    next_interest_cb_ = std::move(cb);
  }

  /// Crash-recovery wipe (see Peer::crash): cancel every pending delayed
  /// Data send and drop the one-shot completion hook. Counters survive —
  /// they are cumulative over the node's lifetime.
  void reset() {
    for (auto& [name, entry] : pending_data_) sched_.cancel(entry.second);
    pending_data_.clear();
    next_interest_cb_ = nullptr;
  }

  /// Interests actually put on the air.
  uint64_t interests_sent() const { return interests_sent_; }
  /// Data packets actually put on the air.
  uint64_t data_sent() const { return data_sent_; }
  /// Data sends cancelled by an overheard identical-name Data.
  uint64_t data_suppressed() const { return data_suppressed_; }

  bool is_local() const override { return false; }  ///< never local

 private:
  void transmit_data(const Name& name);

  sim::Scheduler& sched_;
  sim::Radio& radio_;
  sim::NodeId node_;
  common::Rng rng_;
  Duration data_window_;
  sim::Radio::SendCompleteCallback next_interest_cb_;
  /// Pending delayed Data sends, cancellable by overheard duplicates.
  /// Shared DataPtr handles (like the CS): queueing a retransmission
  /// never deep-copies the packet — the cached wire slice rides along.
  /// Keyed by the Name's cached hash; nothing iterates this map.
  std::unordered_map<Name, std::pair<DataPtr, sim::EventId>> pending_data_;
  uint64_t interests_sent_ = 0;
  uint64_t data_sent_ = 0;
  uint64_t data_suppressed_ = 0;
};

}  // namespace dapes::ndn
