#include "ndn/forwarder.hpp"

#include <algorithm>
#include <set>

#include "common/logging.hpp"
#include "trace/trace.hpp"

namespace dapes::ndn {

void MulticastStrategy::after_receive_interest(Forwarder& fw, FaceId in_face,
                                               const Interest& interest,
                                               PitEntry& /*entry*/) {
  for (FaceId out : fw.fib().lookup(interest.name())) {
    if (out == in_face) continue;
    fw.send_interest_to(out, interest);
  }
}

Forwarder::Forwarder(sim::Scheduler& sched, Options options)
    : sched_(sched),
      options_(options),
      tree_(std::make_shared<NameTree>()),
      cs_(options.cs_capacity, tree_),
      pit_(tree_),
      fib_(tree_),
      strategy_(std::make_unique<MulticastStrategy>()) {}

FaceId Forwarder::add_face(std::shared_ptr<Face> face) {
  faces_.push_back(face);
  FaceId id = static_cast<FaceId>(faces_.size());
  face->set_id(id);
  face->set_receive_handlers(
      [this, id](const Interest& interest) {
        on_incoming_interest(id, interest);
      },
      [this, id](const Data& data) { on_incoming_data(id, data); });
  return id;
}

Face* Forwarder::face(FaceId id) {
  if (id == 0 || id > faces_.size()) return nullptr;
  return faces_[id - 1].get();
}

void Forwarder::set_strategy(std::unique_ptr<ForwardingStrategy> strategy) {
  strategy_ = std::move(strategy);
}

void Forwarder::send_interest_to(FaceId out_face, const Interest& interest) {
  Face* f = face(out_face);
  if (f == nullptr) return;
  ++stats_.interests_forwarded;
  f->send_interest(interest);
}

void Forwarder::send_data_to(FaceId out_face, const Data& data) {
  Face* f = face(out_face);
  if (f == nullptr) return;
  ++stats_.data_forwarded;
  f->send_data(data);
}

void Forwarder::on_incoming_interest(FaceId in_face, Interest interest) {
  trace::NodeScope trace_scope(trace_node_);
  ++stats_.interests_in;
  Face* in = face(in_face);
  const bool from_network = in != nullptr && !in->is_local();

  if (from_network) {
    strategy_->on_overhear_interest(*this, in_face, interest);
    // Hop limit is decremented at each network hop; exhausted Interests
    // are accepted locally (CS/PIT) but never forwarded further — we
    // encode that by dropping them before PIT insert if already 0.
    if (interest.hop_limit() == 0) {
      ++stats_.hop_limit_drops;
      return;
    }
    interest.set_hop_limit(interest.hop_limit() - 1);
  }

  // Loop detection by (name, nonce).
  if (pit_.has_nonce(interest.name(), interest.nonce())) {
    ++stats_.loops_dropped;
    DAPES_TRACE_NAMED(trace::EventType::kPitLoopDrop, interest.name(),
                      static_cast<uint64_t>(interest.nonce()));
    return;
  }

  // Content Store.
  if (auto cached = cs_.find(interest.name(), interest.can_be_prefix(), sched_.now())) {
    ++stats_.cs_hits;
    if (in != nullptr) {
      ++stats_.data_forwarded;
      in->send_data(*cached);
    }
    return;
  }

  // PIT.
  PitEntry* existing = pit_.find(interest.name());
  if (existing != nullptr) {
    ++stats_.pit_aggregated;
    DAPES_TRACE_NAMED(trace::EventType::kPitAggregate, interest.name());
    existing->nonces.insert(interest.nonce());
    if (std::find(existing->in_faces.begin(), existing->in_faces.end(),
                  in_face) == existing->in_faces.end()) {
      existing->in_faces.push_back(in_face);
    }
    return;
  }

  PitEntry& entry = pit_.insert(interest.name());
  entry.can_be_prefix = interest.can_be_prefix();
  entry.in_faces.push_back(in_face);
  entry.nonces.insert(interest.nonce());
  entry.expiry = sched_.now() + interest.lifetime();
  Name name = interest.name();
  entry.expiry_event =
      sched_.schedule(interest.lifetime(), [this, name] { on_pit_expiry(name); });

  strategy_->after_receive_interest(*this, in_face, interest, entry);
}

void Forwarder::on_incoming_data(FaceId in_face, const Data& data) {
  trace::NodeScope trace_scope(trace_node_);
  ++stats_.data_in;
  Face* in = face(in_face);
  const bool from_network = in != nullptr && !in->is_local();
  if (from_network) {
    strategy_->on_overhear_data(*this, in_face, data);
  }

  std::vector<Name> matched = pit_.matches_for_data(data.name());
  if (matched.empty()) {
    ++stats_.unsolicited_data;
    if (strategy_->cache_unsolicited(*this, in_face, data)) {
      cs_.insert(data, sched_.now());
    }
    return;
  }

  if (options_.cache_solicited) {
    cs_.insert(data, sched_.now());
  }

  // Collect the union of downstream faces across all satisfied entries so
  // a broadcast face transmits the Data at most once. A broadcast face
  // that is both the Data's in-face and a recorded downstream still gets
  // the Data when we relayed the Interest ourselves (multi-hop reverse
  // path over a single radio).
  std::set<FaceId> out_faces;
  for (const Name& name : matched) {
    PitEntry* entry = pit_.find(name);
    if (entry == nullptr) continue;
    for (FaceId f : entry->in_faces) {
      if (f != in_face) {
        out_faces.insert(f);
        continue;
      }
      Face* downstream = face(f);
      if (entry->relayed_to_network && downstream != nullptr &&
          !downstream->is_local()) {
        out_faces.insert(f);
      }
    }
    for (uint32_t nonce : entry->nonces) {
      pit_.record_dead_nonce(name, nonce);
    }
    DAPES_TRACE_NAMED(trace::EventType::kPitSatisfy, name);
    sched_.cancel(entry->expiry_event);
    pit_.erase(name);
  }

  for (FaceId out : out_faces) {
    send_data_to(out, data);
  }
}

void Forwarder::on_pit_expiry(Name name) {
  trace::NodeScope trace_scope(trace_node_);
  PitEntry* entry = pit_.find(name);
  if (entry == nullptr) return;
  ++stats_.pit_timeouts;
  DAPES_TRACE_NAMED(trace::EventType::kPitExpire, name);
  for (uint32_t nonce : entry->nonces) {
    pit_.record_dead_nonce(name, nonce);
  }
  pit_.erase(name);
  strategy_->on_interest_timeout(*this, name);
}

}  // namespace dapes::ndn
