/// @file
/// Reference data plane tables: the original std::map-based Content
/// Store, PIT and FIB, retained verbatim as the behavioral oracle for the
/// hashed NameTree tables (src/ndn/tables.hpp).
///
/// All three are ordered by Name so prefix queries (CanBePrefix lookups,
/// longest-prefix match) are a lower_bound away. Every observable —
/// find/insert results, LRU eviction victims, freshness expiry, LPM
/// winners, iteration order — must match the NameTree implementation
/// exactly; tests/test_name_tree.cpp drives both with identical randomized
/// workloads, and bench/bench_tables.cpp measures the gap between them.
/// Not used on any forwarding path.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <set>
#include <unordered_set>
#include <vector>

#include "common/time.hpp"
#include "ndn/name_tree.hpp"
#include "ndn/packet.hpp"

namespace dapes::ndn::ref {

/// In-network cache of Data packets (std::map reference).
class ContentStore {
 public:
  /// CS holding up to @p capacity entries.
  explicit ContentStore(size_t capacity = 4096) : capacity_(capacity) {}

  /// Insert (or refresh) a Data packet, stamped with the current time.
  void insert(const Data& data, TimePoint now = TimePoint::zero()) {
    if (refresh(data.name(), now + data.freshness())) return;
    insert(std::make_shared<const Data>(data), now);
  }
  /// Insert (or refresh) an already-shared Data handle.
  void insert(DataPtr data, TimePoint now = TimePoint::zero());

  /// Exact-name lookup; @p can_be_prefix widens to "any data under name".
  DataPtr find(const Name& name, bool can_be_prefix = false,
               TimePoint now = TimePoint::zero());

  /// Whether an entry with this exact name exists (expired or not).
  bool contains(const Name& name) const { return entries_.contains(name); }
  /// Live entries stored.
  size_t size() const { return entries_.size(); }
  /// Entry cap (LRU eviction beyond it).
  size_t capacity() const { return capacity_; }
  /// Approximate memory footprint (content bytes).
  size_t content_bytes() const { return content_bytes_; }

 private:
  bool refresh(const Name& name, TimePoint expires);
  void touch(const Name& name);
  void evict_one();

  struct Entry {
    DataPtr data;
    TimePoint expires{};
    std::list<Name>::iterator lru_it;
  };

  size_t capacity_;
  size_t content_bytes_ = 0;
  std::map<Name, Entry> entries_;
  std::list<Name> lru_;  // front = least recently used
};

/// Pending Interest Table (std::map reference).
class Pit {
 public:
  /// Find the entry with this exact name (nullptr when absent).
  PitEntry* find(const Name& name);
  /// All entries satisfied by data named @p data_name, in map order.
  std::vector<Name> matches_for_data(const Name& data_name) const;
  /// Insert a new entry; returns a stable reference.
  PitEntry& insert(const Name& name);
  /// Remove the entry with this exact name (no-op when absent).
  void erase(const Name& name);
  /// Live entries.
  size_t size() const { return entries_.size(); }
  /// Loop detection across live entries + dead-nonce history.
  bool has_nonce(const Name& name, uint32_t nonce) const;
  /// Record into the dead nonce list (consulted after entries expire).
  void record_dead_nonce(const Name& name, uint32_t nonce);

 private:
  std::map<Name, PitEntry> entries_;
  static constexpr size_t kDeadNonceCap = 8192;
  std::list<uint64_t> dead_order_;
  std::unordered_set<uint64_t> dead_set_;
};

/// Longest-prefix-match routing table (std::map reference).
class Fib {
 public:
  /// Register @p face as a next hop for @p prefix.
  void add_route(const Name& prefix, FaceId face);
  /// Unregister @p face from @p prefix (erasing empty routes).
  void remove_route(const Name& prefix, FaceId face);
  /// Faces for the longest matching prefix (empty when no route).
  std::vector<FaceId> lookup(const Name& name) const;
  /// All registered prefixes pointing at @p face.
  std::vector<Name> prefixes_for(FaceId face) const;
  /// Registered prefixes.
  size_t size() const { return routes_.size(); }

 private:
  std::map<Name, std::set<FaceId>> routes_;
};

}  // namespace dapes::ndn::ref
