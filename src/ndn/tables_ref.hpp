// Reference data plane tables: the original std::map-based Content
// Store, PIT and FIB, retained verbatim as the behavioral oracle for the
// hashed NameTree tables (src/ndn/tables.hpp).
//
// All three are ordered by Name so prefix queries (CanBePrefix lookups,
// longest-prefix match) are a lower_bound away. Every observable —
// find/insert results, LRU eviction victims, freshness expiry, LPM
// winners, iteration order — must match the NameTree implementation
// exactly; tests/test_name_tree.cpp drives both with identical randomized
// workloads, and bench/bench_tables.cpp measures the gap between them.
// Not used on any forwarding path.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <set>
#include <unordered_set>
#include <vector>

#include "common/time.hpp"
#include "ndn/name_tree.hpp"
#include "ndn/packet.hpp"

namespace dapes::ndn::ref {

/// In-network cache of Data packets (std::map reference).
class ContentStore {
 public:
  explicit ContentStore(size_t capacity = 4096) : capacity_(capacity) {}

  void insert(const Data& data, TimePoint now = TimePoint::zero()) {
    if (refresh(data.name(), now + data.freshness())) return;
    insert(std::make_shared<const Data>(data), now);
  }
  void insert(DataPtr data, TimePoint now = TimePoint::zero());

  DataPtr find(const Name& name, bool can_be_prefix = false,
               TimePoint now = TimePoint::zero());

  bool contains(const Name& name) const { return entries_.contains(name); }
  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  size_t content_bytes() const { return content_bytes_; }

 private:
  bool refresh(const Name& name, TimePoint expires);
  void touch(const Name& name);
  void evict_one();

  struct Entry {
    DataPtr data;
    TimePoint expires{};
    std::list<Name>::iterator lru_it;
  };

  size_t capacity_;
  size_t content_bytes_ = 0;
  std::map<Name, Entry> entries_;
  std::list<Name> lru_;  // front = least recently used
};

/// Pending Interest Table (std::map reference).
class Pit {
 public:
  PitEntry* find(const Name& name);
  std::vector<Name> matches_for_data(const Name& data_name) const;
  PitEntry& insert(const Name& name);
  void erase(const Name& name);
  size_t size() const { return entries_.size(); }
  bool has_nonce(const Name& name, uint32_t nonce) const;
  void record_dead_nonce(const Name& name, uint32_t nonce);

 private:
  std::map<Name, PitEntry> entries_;
  static constexpr size_t kDeadNonceCap = 8192;
  std::list<uint64_t> dead_order_;
  std::unordered_set<uint64_t> dead_set_;
};

/// Longest-prefix-match routing table (std::map reference).
class Fib {
 public:
  void add_route(const Name& prefix, FaceId face);
  void remove_route(const Name& prefix, FaceId face);
  std::vector<FaceId> lookup(const Name& name) const;
  std::vector<Name> prefixes_for(FaceId face) const;
  size_t size() const { return routes_.size(); }

 private:
  std::map<Name, std::set<FaceId>> routes_;
};

}  // namespace dapes::ndn::ref
