// NDN names.
//
// A Name is an ordered list of byte-string components, printed as a URI
// ("/damaged-bridge-1533783192/bridge-picture/0"). DAPES relies on the
// hierarchy: collection prefix -> file name -> packet sequence number, so
// prefix tests and numeric final components get first-class helpers.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"

namespace dapes::ndn {

/// One name component (opaque bytes; printable ASCII in practice).
class Component {
 public:
  Component() = default;
  explicit Component(common::Bytes value) : value_(std::move(value)) {}
  explicit Component(std::string_view str)
      : value_(str.begin(), str.end()) {}

  /// Component carrying a decimal sequence number.
  static Component from_number(uint64_t number);

  /// Parse as a decimal number if the component is all digits.
  std::optional<uint64_t> to_number() const;

  const common::Bytes& value() const { return value_; }
  std::string to_string() const {
    return std::string(value_.begin(), value_.end());
  }

  bool operator==(const Component&) const = default;
  auto operator<=>(const Component&) const = default;

 private:
  common::Bytes value_;
};

class Name {
 public:
  Name() = default;

  /// Parse a URI like "/a/b/c". Empty string or "/" yields the empty name.
  /// Components may not contain '/'. No percent-decoding (the DAPES
  /// namespace is plain ASCII).
  explicit Name(std::string_view uri);

  Name(std::initializer_list<std::string_view> components);

  /// Builder-style append; returns *this for chaining.
  Name& append(Component c);
  Name& append(std::string_view str);
  Name& append_number(uint64_t number);

  /// A copy of this name with one more component.
  Name appended(std::string_view str) const;
  Name appended_number(uint64_t number) const;

  size_t size() const { return components_.size(); }
  bool empty() const { return components_.empty(); }
  const Component& at(size_t i) const { return components_.at(i); }
  const Component& operator[](size_t i) const { return components_[i]; }

  /// First @p n components.
  Name prefix(size_t n) const;

  /// Drop the last @p n components (default 1).
  Name get_prefix_dropping(size_t n = 1) const;

  /// True if *this is a (non-strict) prefix of @p other.
  bool is_prefix_of(const Name& other) const;

  std::string to_uri() const;

  bool operator==(const Name&) const = default;
  auto operator<=>(const Name&) const = default;

  const std::vector<Component>& components() const { return components_; }

 private:
  std::vector<Component> components_;
};

}  // namespace dapes::ndn

template <>
struct std::hash<dapes::ndn::Name> {
  size_t operator()(const dapes::ndn::Name& name) const noexcept {
    // FNV-1a over all component bytes with separators.
    size_t h = 1469598103934665603ULL;
    auto mix = [&h](uint8_t b) {
      h ^= b;
      h *= 1099511628211ULL;
    };
    for (const auto& c : name.components()) {
      mix(0xff);  // separator
      for (uint8_t b : c.value()) mix(b);
    }
    return h;
  }
};
