/// @file
/// NDN names.
///
/// A Name is an ordered list of byte-string components, printed as a URI
/// ("/damaged-bridge-1533783192/bridge-picture/0"). DAPES relies on the
/// hierarchy: collection prefix -> file name -> packet sequence number, so
/// prefix tests and numeric final components get first-class helpers.
///
/// Names carry a lazily computed *incremental* hash cache: one FNV-1a pass
/// over the component bytes yields the hash of every prefix depth
/// (`prefix_hash(n)`), with the full-name hash as the last step. The data
/// plane (src/ndn/name_tree.hpp) is keyed on these hashes, so a forwarder
/// hop probes its tables without re-reading name bytes, and longest-prefix
/// match never materializes prefix Names. The cache is extended in place by
/// append (the next prefix hash derives from the previous one), inherited
/// by prefix(), seeded by the wire decoder, and recomputed on demand
/// otherwise. Hash values are identical to the historic std::hash<Name>
/// FNV-1a scheme, so fingerprints derived from them are stable.
///
/// The cache is `mutable` and filled on first use: a const Name is safe to
/// share within one simulation trial (single-threaded), not across trial
/// threads.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"

namespace dapes::ndn {

/// One name component (opaque bytes; printable ASCII in practice).
class Component {
 public:
  /// Empty component.
  Component() = default;
  /// Component from owned bytes.
  explicit Component(common::Bytes value) : value_(std::move(value)) {}
  /// Component from a string (bytes copied).
  explicit Component(std::string_view str)
      : value_(str.begin(), str.end()) {}

  /// Component carrying a decimal sequence number.
  static Component from_number(uint64_t number);

  /// Parse as a decimal number if the component is all digits.
  std::optional<uint64_t> to_number() const;

  /// The raw component bytes.
  const common::Bytes& value() const { return value_; }
  /// The bytes as a std::string (components are ASCII in practice).
  std::string to_string() const {
    return std::string(value_.begin(), value_.end());
  }

  /// Byte-wise equality.
  bool operator==(const Component&) const = default;
  /// Byte-wise lexicographic order.
  auto operator<=>(const Component&) const = default;

 private:
  common::Bytes value_;
};

/// Hierarchical NDN name with the cached incremental prefix hashes the
/// data plane is keyed on (see file comment).
class Name {
 public:
  /// The empty name "/".
  Name() = default;

  /// Parse a URI like "/a/b/c". Empty string or "/" yields the empty name.
  /// Components may not contain '/'. No percent-decoding (the DAPES
  /// namespace is plain ASCII).
  explicit Name(std::string_view uri);

  /// Name from a component list: Name{"a", "b", "c"} == "/a/b/c".
  Name(std::initializer_list<std::string_view> components);

  /// Builder-style append; returns *this for chaining. A warm hash cache
  /// is extended incrementally (one component's bytes), never recomputed.
  Name& append(Component c);
  /// Append a string component; same cache-extension contract.
  Name& append(std::string_view str);
  /// Append a decimal sequence-number component.
  Name& append_number(uint64_t number);

  /// A copy of this name with one more component.
  Name appended(std::string_view str) const;
  /// A copy of this name with a sequence-number component appended.
  Name appended_number(uint64_t number) const;

  /// Number of components.
  size_t size() const { return components_.size(); }
  /// True for the empty name.
  bool empty() const { return components_.empty(); }
  /// Bounds-checked component access.
  const Component& at(size_t i) const { return components_.at(i); }
  /// Unchecked component access.
  const Component& operator[](size_t i) const { return components_[i]; }

  /// First @p n components. Inherits the matching slice of a warm hash
  /// cache.
  Name prefix(size_t n) const;

  /// Drop the last @p n components (default 1).
  Name get_prefix_dropping(size_t n = 1) const;

  /// True if *this is a (non-strict) prefix of @p other.
  bool is_prefix_of(const Name& other) const;

  /// The "/a/b/c" URI form.
  std::string to_uri() const;

  /// FNV-1a hash of the whole name (cached; one pass on first use).
  size_t hash() const {
    ensure_hashes();
    return hashes_.back();
  }

  /// Hash of the first @p n components (clamped), from the same cached
  /// pass — prefix probes cost no extra hashing.
  size_t prefix_hash(size_t n) const {
    ensure_hashes();
    return hashes_[n < components_.size() ? n : components_.size()];
  }

  /// Whether the hash cache is populated (tests and instrumentation).
  bool has_hash_cache() const {
    return hashes_.size() == components_.size() + 1;
  }

  /// Equality and ordering are component-wise; the hash cache is ignored.
  bool operator==(const Name& other) const {
    return components_ == other.components_;
  }
  auto operator<=>(const Name& other) const {
    return components_ <=> other.components_;
  }

  /// All components in order.
  const std::vector<Component>& components() const { return components_; }

 private:
  void ensure_hashes() const;

  std::vector<Component> components_;
  /// hashes_[i] = FNV-1a over the first i components; valid iff
  /// size() + 1 entries are present (empty = not computed yet).
  mutable std::vector<size_t> hashes_;
};

}  // namespace dapes::ndn

/// std::hash support: delegates to the Name's cached FNV-1a hash.
template <>
struct std::hash<dapes::ndn::Name> {
  /// Not noexcept: filling a cold hash cache allocates.
  size_t operator()(const dapes::ndn::Name& name) const {
    return name.hash();
  }
};
