// `trace` — query/diff CLI over DTRC binary trace files (src/trace/).
//
//   trace dump <file> [--node N] [--type NAME|ID] [--name PREFIX]
//                     [--from SECONDS] [--to SECONDS]
//       Print matching records, one per line, in canonical merged order.
//       --type accepts a dotted well-known name ("medium.rx") resolved
//       through the file's embedded type table, or a raw numeric id.
//       --name matches URI prefixes on component boundaries. The time
//       window is [--from, --to) in simulated seconds.
//
//   trace stats <file>
//       Whole-trace aggregates plus per-type counts and rates.
//
//   trace diff <a> <b>
//       Record-by-record comparison in canonical order. Prints the first
//       divergence (or "identical"). Exit 0 when identical, 1 when the
//       traces differ.
//
// Exit codes: 0 success (diff: identical), 1 runtime failure (diff:
// divergent), 2 usage error.
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <optional>
#include <string>

#include "trace/format.hpp"
#include "trace/query.hpp"

namespace {

using dapes::trace::DiffResult;
using dapes::trace::DumpFilter;
using dapes::trace::TraceData;

void usage(std::FILE* to) {
  std::fputs(
      "usage: trace dump <file> [--node N] [--type NAME|ID] [--name PREFIX]\n"
      "                         [--from SECONDS] [--to SECONDS]\n"
      "       trace stats <file>\n"
      "       trace diff <a> <b>\n",
      to);
}

[[noreturn]] void die_usage(const std::string& message) {
  std::fprintf(stderr, "trace: %s\n", message.c_str());
  usage(stderr);
  std::exit(2);
}

/// Parse a nonnegative decimal integer; dies with a usage error otherwise.
uint64_t parse_u64(const char* flag, const std::string& v) {
  char* end = nullptr;
  errno = 0;
  uint64_t n = std::strtoull(v.c_str(), &end, 10);
  if (errno != 0 || end == v.c_str() || *end != '\0') {
    die_usage(std::string(flag) + ": invalid value \"" + v + "\"");
  }
  return n;
}

/// Parse a simulated-seconds value; dies with a usage error otherwise.
double parse_seconds(const char* flag, const std::string& v) {
  char* end = nullptr;
  errno = 0;
  double s = std::strtod(v.c_str(), &end);
  if (errno != 0 || end == v.c_str() || *end != '\0') {
    die_usage(std::string(flag) + ": invalid value \"" + v + "\"");
  }
  return s;
}

/// Resolve --type against the file's embedded type table (so the filter
/// works even on files written by a different enum layout). Accepts the
/// dotted well-known name or a raw numeric id.
uint16_t resolve_type(const TraceData& trace, const std::string& v) {
  for (const auto& [id, name] : trace.types) {
    if (name == v) return id;
  }
  char* end = nullptr;
  errno = 0;
  unsigned long n = std::strtoul(v.c_str(), &end, 10);
  if (errno == 0 && end != v.c_str() && *end == '\0' && n <= UINT16_MAX) {
    return static_cast<uint16_t>(n);
  }
  die_usage("--type: \"" + v + "\" is neither a type name in the file's "
            "embedded table nor a numeric id");
}

int cmd_dump(int argc, char** argv) {
  if (argc < 1) die_usage("dump: missing trace file");
  const std::string path = argv[0];

  // The filter's --type resolution needs the file's embedded type table,
  // so load first and parse flags against the parsed trace.
  TraceData trace = dapes::trace::read_trace_file(path);

  DumpFilter filter;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) die_usage(flag + " requires a value");
      return argv[++i];
    };
    if (flag == "--node") {
      filter.node = static_cast<uint32_t>(parse_u64("--node", value()));
    } else if (flag == "--type") {
      filter.type = resolve_type(trace, value());
    } else if (flag == "--name") {
      filter.name_prefix = value();
    } else if (flag == "--from") {
      filter.t_from_us =
          static_cast<int64_t>(parse_seconds("--from", value()) * 1e6);
    } else if (flag == "--to") {
      filter.t_to_us =
          static_cast<int64_t>(parse_seconds("--to", value()) * 1e6);
    } else {
      die_usage("dump: unknown flag \"" + flag + "\"");
    }
  }

  dapes::trace::dump_trace(trace, filter, stdout);
  return 0;
}

int cmd_stats(int argc, char** argv) {
  if (argc != 1) die_usage("stats: expected exactly one trace file");
  TraceData trace = dapes::trace::read_trace_file(argv[0]);
  dapes::trace::write_stats(dapes::trace::compute_stats(trace), stdout);
  return 0;
}

int cmd_diff(int argc, char** argv) {
  if (argc != 2) die_usage("diff: expected exactly two trace files");
  TraceData a = dapes::trace::read_trace_file(argv[0]);
  TraceData b = dapes::trace::read_trace_file(argv[1]);
  const DiffResult d = dapes::trace::diff_traces(a, b);
  dapes::trace::write_diff(a, b, d, stdout);
  return d.identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(stderr);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "help") {
    usage(stdout);
    return 0;
  }
  try {
    if (cmd == "dump") return cmd_dump(argc - 2, argv + 2);
    if (cmd == "stats") return cmd_stats(argc - 2, argv + 2);
    if (cmd == "diff") return cmd_diff(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace: %s\n", e.what());
    return 1;
  }
  die_usage("unknown command \"" + cmd + "\"");
}
