// Integration tests for the DAPES peer: full protocol exchanges over the
// simulated medium (discovery -> metadata -> advertisements -> fetch),
// trust enforcement, both metadata formats, multi-hop relaying.
#include <gtest/gtest.h>

#include "dapes/collection.hpp"
#include "dapes/forwarder_node.hpp"
#include "dapes/peer.hpp"
#include "sim/medium.hpp"
#include "sim/mobility.hpp"

namespace dapes::core {
namespace {

struct PeerIntegration : ::testing::Test {
  sim::Scheduler sched;
  common::Rng rng{31};
  crypto::KeyChain producer_keys;
  crypto::PrivateKey producer_key = producer_keys.generate_key("/producer");

  sim::Medium::Params medium_params(double range = 60, double loss = 0.05) {
    sim::Medium::Params p;
    p.range_m = range;
    p.loss_rate = loss;
    return p;
  }

  std::shared_ptr<Collection> collection(
      MetadataFormat format = MetadataFormat::kPacketDigest,
      size_t file_bytes = 16 * 1024) {
    return Collection::create_synthetic(
        ndn::Name("/coll-1533783192"), {{"f0", file_bytes}, {"f1", file_bytes}},
        1024, format, producer_key);
  }

  std::unique_ptr<Peer> make_peer(sim::Medium& medium,
                                  sim::MobilityModel* mobility,
                                  const std::string& id,
                                  PeerOptions options = {}) {
    options.id = id;
    auto peer =
        std::make_unique<Peer>(sched, medium, mobility, rng.fork(), options);
    peer->keychain().import_key(producer_key);
    peer->add_trust_anchor(producer_key.id());
    return peer;
  }

  void run_seconds(double s) {
    sched.run_until(common::TimePoint{static_cast<int64_t>(s * 1e6)});
  }
};

TEST_F(PeerIntegration, TwoPeerExchangeCompletes) {
  sim::Medium medium(sched, medium_params(), rng.fork());
  sim::StationaryMobility pa{{100, 100}}, pb{{130, 100}};
  auto col = collection();
  auto producer = make_peer(medium, &pa, "alice");
  auto consumer = make_peer(medium, &pb, "bob");
  producer->publish(col);
  consumer->subscribe(col);
  producer->start();
  consumer->start();
  run_seconds(60);
  EXPECT_TRUE(consumer->complete(col->name()));
  EXPECT_EQ(consumer->stats().integrity_failures, 0u);
  EXPECT_GT(producer->stats().data_packets_served, 0u);
}

TEST_F(PeerIntegration, MerkleFormatAlsoCompletes) {
  sim::Medium medium(sched, medium_params(), rng.fork());
  sim::StationaryMobility pa{{100, 100}}, pb{{130, 100}};
  auto col = collection(MetadataFormat::kMerkleTree);
  auto producer = make_peer(medium, &pa, "alice");
  auto consumer = make_peer(medium, &pb, "bob");
  producer->publish(col);
  consumer->subscribe(col);
  producer->start();
  consumer->start();
  run_seconds(60);
  EXPECT_TRUE(consumer->complete(col->name()));
}

TEST_F(PeerIntegration, UntrustedProducerRejected) {
  sim::Medium medium(sched, medium_params(), rng.fork());
  sim::StationaryMobility pa{{100, 100}}, pb{{130, 100}};
  auto col = collection();
  auto producer = make_peer(medium, &pa, "alice");
  producer->publish(col);

  // Bob knows the key (can verify) but has NOT anchored it.
  PeerOptions po;
  po.id = "bob";
  auto consumer = std::make_unique<Peer>(sched, medium, &pb, rng.fork(), po);
  consumer->keychain().import_key(producer_key);
  consumer->subscribe(col);
  producer->start();
  consumer->start();
  run_seconds(40);
  EXPECT_FALSE(consumer->complete(col->name()));
  EXPECT_GT(consumer->stats().metadata_rejected, 0u);
  EXPECT_EQ(consumer->stats().data_packets_received, 0u);
}

TEST_F(PeerIntegration, OutOfRangePeersNeverExchange) {
  sim::Medium medium(sched, medium_params(), rng.fork());
  sim::StationaryMobility pa{{0, 0}}, pb{{1000, 1000}};
  auto col = collection();
  auto producer = make_peer(medium, &pa, "alice");
  auto consumer = make_peer(medium, &pb, "bob");
  producer->publish(col);
  consumer->subscribe(col);
  producer->start();
  consumer->start();
  run_seconds(30);
  EXPECT_FALSE(consumer->complete(col->name()));
  EXPECT_DOUBLE_EQ(consumer->progress(col->name()), 0.0);
}

TEST_F(PeerIntegration, ThirdPeerBenefitsFromOverhearing) {
  sim::Medium medium(sched, medium_params(), rng.fork());
  sim::StationaryMobility pa{{100, 100}}, pb{{130, 100}}, pc{{115, 120}};
  auto col = collection();
  auto producer = make_peer(medium, &pa, "alice");
  auto bob = make_peer(medium, &pb, "bob");
  auto carol = make_peer(medium, &pc, "carol");
  producer->publish(col);
  bob->subscribe(col);
  carol->subscribe(col);
  producer->start();
  bob->start();
  carol->start();
  run_seconds(90);
  EXPECT_TRUE(bob->complete(col->name()));
  EXPECT_TRUE(carol->complete(col->name()));
  // The broadcast medium makes one transmission useful to both peers:
  // together they must have needed fewer interests than 2x the packet
  // count (overhearing or PIT aggregation saved transmissions).
  uint64_t interests =
      bob->stats().data_interests_sent + carol->stats().data_interests_sent;
  EXPECT_LT(interests, 2 * col->total_packets());
}

TEST_F(PeerIntegration, CompletedPeerSeedsOthers) {
  sim::Medium medium(sched, medium_params(), rng.fork());
  // Producer is only in range of bob; carol is only in range of bob.
  sim::StationaryMobility pa{{0, 0}}, pb{{50, 0}}, pc{{100, 0}};
  auto col = collection(MetadataFormat::kPacketDigest, 8 * 1024);
  auto producer = make_peer(medium, &pa, "alice");
  auto bob = make_peer(medium, &pb, "bob");
  auto carol = make_peer(medium, &pc, "carol");
  producer->publish(col);
  bob->subscribe(col);
  carol->subscribe(col);
  producer->start();
  bob->start();
  carol->start();
  run_seconds(240);
  EXPECT_TRUE(bob->complete(col->name()));
  // Carol can only have gotten data via bob (serving or relaying).
  EXPECT_TRUE(carol->complete(col->name()));
}

TEST_F(PeerIntegration, PureForwarderBridgesTwoSegments) {
  sim::Medium medium(sched, medium_params(48, 0.02), rng.fork());
  // alice -- forwarder -- bob chain; alice and bob are out of range.
  sim::StationaryMobility pa{{0, 0}}, pf{{45, 0}}, pb{{90, 0}};
  auto col = collection(MetadataFormat::kPacketDigest, 4 * 1024);
  PeerOptions po;
  po.forward_probability = 0.6;  // dense relaying for the chain test
  auto producer = make_peer(medium, &pa, "alice", po);
  auto consumer = make_peer(medium, &pb, "bob", po);
  ForwarderNode::Options fo;
  fo.kind = ForwarderKind::kPureForwarder;
  fo.forward_probability = 0.6;
  ForwarderNode relay(sched, medium, &pf, rng.fork(), fo);
  producer->publish(col);
  consumer->subscribe(col);
  producer->start();
  consumer->start();
  run_seconds(300);
  // Multi-hop via a pure forwarder: discovery/metadata/data all relayed.
  EXPECT_GT(consumer->progress(col->name()), 0.5);
  EXPECT_GT(relay.strategy().forwards(), 0u);
}

TEST_F(PeerIntegration, MultipleCollectionsConcurrently) {
  sim::Medium medium(sched, medium_params(), rng.fork());
  sim::StationaryMobility pa{{100, 100}}, pb{{130, 100}};
  auto col1 = collection(MetadataFormat::kPacketDigest, 8 * 1024);
  auto col2 = Collection::create_synthetic(
      ndn::Name("/second-coll"), {{"g0", 8 * 1024}}, 1024,
      MetadataFormat::kPacketDigest, producer_key);
  auto producer = make_peer(medium, &pa, "alice");
  auto consumer = make_peer(medium, &pb, "bob");
  producer->publish(col1);
  producer->publish(col2);
  consumer->subscribe(col1);
  consumer->subscribe(col2);
  producer->start();
  consumer->start();
  run_seconds(120);
  EXPECT_TRUE(consumer->complete(col1->name()));
  EXPECT_TRUE(consumer->complete(col2->name()));
}

TEST_F(PeerIntegration, BitmapsFirstGateDelaysFetch) {
  sim::Medium medium(sched, medium_params(), rng.fork());
  sim::StationaryMobility pa{{100, 100}}, pb{{130, 100}};
  auto col = collection();
  PeerOptions po;
  po.advertisement_mode = AdvertisementMode::kBitmapsFirst;
  po.bitmaps_before_data = 1;
  auto producer = make_peer(medium, &pa, "alice", po);
  auto consumer = make_peer(medium, &pb, "bob", po);
  producer->publish(col);
  consumer->subscribe(col);
  producer->start();
  consumer->start();
  run_seconds(90);
  EXPECT_TRUE(consumer->complete(col->name()));
}

TEST_F(PeerIntegration, ProgressAndDebugIntrospection) {
  sim::Medium medium(sched, medium_params(), rng.fork());
  sim::StationaryMobility pa{{100, 100}}, pb{{130, 100}};
  auto col = collection();
  auto producer = make_peer(medium, &pa, "alice");
  auto consumer = make_peer(medium, &pb, "bob");
  producer->publish(col);
  consumer->subscribe(col);
  producer->start();
  consumer->start();
  run_seconds(60);
  auto dbg = consumer->debug_download(col->name());
  EXPECT_TRUE(dbg.has_metadata);
  EXPECT_DOUBLE_EQ(dbg.progress, 1.0);
  EXPECT_GT(dbg.known_bitmaps, 0u);
  EXPECT_GT(consumer->state_bytes(), 0u);
  EXPECT_GT(consumer->knowledge_bytes(), 0u);
  // Unknown collection: empty debug.
  EXPECT_FALSE(consumer->debug_download(ndn::Name("/nope")).has_metadata);
}

TEST_F(PeerIntegration, CompletionCallbackFiresOnce) {
  sim::Medium medium(sched, medium_params(), rng.fork());
  sim::StationaryMobility pa{{100, 100}}, pb{{130, 100}};
  auto col = collection(MetadataFormat::kPacketDigest, 4 * 1024);
  auto producer = make_peer(medium, &pa, "alice");
  auto consumer = make_peer(medium, &pb, "bob");
  int calls = 0;
  consumer->set_completion_callback(
      [&](const ndn::Name&, common::TimePoint) { ++calls; });
  producer->publish(col);
  consumer->subscribe(col);
  producer->start();
  consumer->start();
  run_seconds(120);
  EXPECT_EQ(calls, 1);
  ASSERT_TRUE(consumer->completion_time(col->name()).has_value());
  EXPECT_GT(consumer->completion_time(col->name())->us, 0);
}

}  // namespace
}  // namespace dapes::core
