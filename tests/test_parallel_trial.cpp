// The phase-parallel trial interior's equivalence contract (DESIGN.md
// "Parallel trial interior"): for every deterministic TrialResult field,
// `trial_threads = N` is bit-identical to the plain serial event loop,
// for any N, across channel models and mobility mixes.
//
// The randomized suite runs 12 seeds through the scale.field stack —
// seed picks the (channel, mobility) combination round-robin, so all
// four {unit-disk, log-distance} x {waypoint, group} pairs appear three
// times — and compares serial against 1, 2 and 4 lanes. The remaining
// cases are targeted: the medium-bound stress family, the configuration
// guards (the engine requires the grid index), the Rng draw guard, and a
// threaded stress of the scheduler's phase mailboxes + ParallelExecutor
// that gives ThreadSanitizer real cross-thread traffic to check (CI runs
// this binary under TSan; see .github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "harness/driver.hpp"
#include "harness/scale.hpp"
#include "harness/trial_runner.hpp"
#include "sim/medium.hpp"
#include "sim/mobility.hpp"
#include "sim/parallel.hpp"
#include "sim/scheduler.hpp"

namespace dapes::harness {
namespace {

// Small enough that 48 trials stay test-suite-speed; large enough that a
// trial has real same-instant delivery batches and protocol churn.
ScenarioParams small_field(uint64_t seed) {
  ScenarioParams p;
  p.files = 1;
  p.file_size_bytes = 8 * 1024;
  p.mobile_downloaders = 8;
  p.stationary_downloaders = 2;
  p.pure_forwarders = 3;
  p.dapes_intermediates = 3;
  p.wifi_range_m = 80.0;
  p.data_rate_bps = 11e6;
  p.sim_limit_s = 300.0;
  p.seed = seed;
  // Vary the world with the seed so all four channel x mobility pairs
  // get three seeds each across the 12-seed range.
  p.mobility = (seed % 2 == 0) ? MobilityKind::kRandomWaypoint
                               : MobilityKind::kGroup;
  if ((seed / 2) % 2 == 1) {
    p.channel.model = "log-distance";
    p.channel.shadowing_sigma_db = 4.0;  // exercise keyed per-link draws
  }
  return p;
}

void expect_equal(const TrialResult& a, const TrialResult& b) {
  EXPECT_DOUBLE_EQ(a.download_time_s, b.download_time_s);
  EXPECT_DOUBLE_EQ(a.completion_fraction, b.completion_fraction);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.tx_by_kind, b.tx_by_kind);
  EXPECT_EQ(a.collided_frames, b.collided_frames);
  EXPECT_EQ(a.peak_state_bytes, b.peak_state_bytes);
  EXPECT_EQ(a.total_state_bytes, b.total_state_bytes);
  EXPECT_EQ(a.peak_knowledge_bytes, b.peak_knowledge_bytes);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.context_switches, b.context_switches);
  EXPECT_EQ(a.system_calls, b.system_calls);
  EXPECT_EQ(a.page_faults, b.page_faults);
}

class ParallelTrialEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelTrialEquivalence, MatchesSerialExactly) {
  ScenarioParams p = small_field(GetParam());
  TrialResult serial = run_trial(ProtocolNames::kScaleField, p);
  // A trial that ends with nothing transmitted never exercised the
  // engine; the scenario above always moves traffic, so guard against a
  // silent vacuous pass.
  ASSERT_GT(serial.transmissions, 0u);
  for (int lanes : {1, 2, 4}) {
    SCOPED_TRACE(lanes);
    ScenarioParams q = p;
    q.trial_threads = lanes;
    TrialResult parallel = run_trial(ProtocolNames::kScaleField, q);
    expect_equal(serial, parallel);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelTrialEquivalence,
                         ::testing::Range<uint64_t>(1, 13));

TEST(ParallelTrial, MediumStressMatchesSerial) {
  ScenarioParams p = small_field(7);
  p.sim_limit_s = 10.0;
  TrialResult serial = run_trial(ProtocolNames::kScaleMedium, p);
  ASSERT_GT(serial.transmissions, 0u);
  for (int lanes : {2, 4}) {
    SCOPED_TRACE(lanes);
    ScenarioParams q = p;
    q.trial_threads = lanes;
    expect_equal(serial, run_trial(ProtocolNames::kScaleMedium, q));
  }
}

TEST(ParallelTrial, ComposesWithTrialRunnerJobs) {
  // The inter-trial (--jobs) and intra-trial (trial_threads) axes must
  // compose: a jobs=2 batch of threaded trials reproduces the jobs=1
  // serial batch.
  ScenarioParams p = small_field(4);
  p.sim_limit_s = 60.0;
  auto serial = TrialRunner(1).run(ProtocolNames::kScaleField, p, 3);
  ScenarioParams q = p;
  q.trial_threads = 2;
  auto threaded = TrialRunner(2).run(ProtocolNames::kScaleField, q, 3);
  ASSERT_EQ(serial.size(), threaded.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    expect_equal(serial[i], threaded[i]);
  }
}

TEST(ParallelTrial, RequiresGridMedium) {
  // The engine partitions work by grid cell; the brute-force reference
  // medium has no cells, so the combination is a configuration error.
  ScenarioParams p = small_field(1);
  p.trial_threads = 2;
  p.brute_force_medium = true;
  EXPECT_THROW(run_trial(ProtocolNames::kScaleField, p),
               std::invalid_argument);
}

TEST(ParallelTrial, LookaheadBoundIsPositive) {
  // The conservative bound on how soon a transmit can create a new
  // event: empty-frame airtime (cached from the channel model at
  // install time) + propagation. It must be strictly positive for
  // every model — a zero bound would mean a same-instant transmit
  // could race the batch being delivered.
  for (const char* model : {"unit-disk", "log-distance"}) {
    SCOPED_TRACE(model);
    sim::Scheduler sched;
    sim::Medium::Params mp;
    mp.channel.model = model;
    mp.channel.link_seed = 7;
    mp.trial_threads = 2;
    sim::Medium medium(sched, mp, common::Rng(1));
    EXPECT_TRUE(medium.parallel_delivery());
    EXPECT_GT(medium.min_lookahead().us, 0);
  }
}

TEST(ParallelTrial, RngDrawGuardTrips) {
  // The medium arms this guard around its fan-out: any shared-stream
  // draw from inside a parallel phase is a determinism bug and must
  // throw, not silently reorder the stream.
  common::Rng rng(42);
  std::atomic<bool> in_phase{false};
  rng.set_draw_guard(&in_phase);
  (void)rng.uniform(0.0, 1.0);  // fine outside a phase
  in_phase.store(true);
  EXPECT_THROW((void)rng.uniform(0.0, 1.0), std::logic_error);
  in_phase.store(false);
  (void)rng.uniform(0.0, 1.0);
}

TEST(ParallelTrial, LifecycleGuardTripsInFanout) {
  // Node membership may only change on the coordinator between phases:
  // retire_node / add_node from a receive callback inside the parallel
  // fan-out must throw loudly, not mutate nodes_ under the lanes' feet.
  for (bool retire : {true, false}) {
    SCOPED_TRACE(retire ? "retire_node" : "add_node");
    sim::Scheduler sched;
    sim::Medium::Params mp;
    mp.range_m = 60.0;
    mp.loss_rate = 0.0;
    mp.trial_threads = 2;
    sim::Medium medium(sched, mp, common::Rng(1));
    sim::StationaryMobility a({0.0, 0.0});
    sim::StationaryMobility b({10.0, 0.0});
    medium.add_node(&a, nullptr);
    medium.add_node(&b, [&](const sim::FramePtr&, sim::NodeId) {
      if (retire) {
        medium.retire_node(0);
      } else {
        medium.add_node(&a, nullptr);
      }
    });
    auto f = std::make_shared<sim::Frame>();
    f->sender = 0;
    f->payload = common::Bytes(64, 0x2a);
    f->kind = "probe";
    sched.schedule_at(sim::TimePoint{0}, [&] { medium.transmit(f); });
    EXPECT_THROW(sched.run(), std::logic_error);
  }
}

TEST(ParallelTrial, ExecutorRunsEveryIndexOnce) {
  sim::ParallelExecutor pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.run(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelTrial, ExecutorPropagatesException) {
  sim::ParallelExecutor pool(4);
  EXPECT_THROW(pool.run(64,
                        [](size_t i) {
                          if (i == 33) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
  // The pool survives a throwing job and keeps working.
  std::atomic<size_t> done{0};
  pool.run(16, [&](size_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 16u);
}

TEST(ParallelTrial, PhaseMailboxStressUnderThreads) {
  // The mailbox data path the medium uses, driven directly and hard:
  // repeated phases where every slot stages schedules (and cancels of
  // its own events) from pool threads. Run under ThreadSanitizer in CI,
  // this is the race detector's main course. The merged result must be
  // the canonical slot-order interleaving every time.
  sim::Scheduler sched;
  sim::ParallelExecutor pool(4);
  constexpr size_t kSlots = 64;
  constexpr int kRounds = 50;
  std::vector<int> fired;
  for (int round = 0; round < kRounds; ++round) {
    sched.begin_phase(kSlots);
    pool.run(kSlots, [&](size_t slot) {
      sched.bind_phase_slot(slot);
      const sim::TimePoint at{sched.now().us + 10};
      // Two live events and one schedule+cancel pair per slot.
      sched.schedule_at(at, [&fired, slot] {
        fired.push_back(static_cast<int>(2 * slot));
      });
      sim::EventId doomed = sched.schedule_at(
          at, [] { ADD_FAILURE() << "cancelled staged event fired"; });
      sched.schedule_at(at, [&fired, slot] {
        fired.push_back(static_cast<int>(2 * slot + 1));
      });
      sched.cancel(doomed);
      sched.unbind_phase_slot();
    });
    sched.end_phase();
    fired.clear();
    sched.run();
    // Same timestamp throughout, so execution order is merge order:
    // slot 0's events first, then slot 1's, ...
    ASSERT_EQ(fired.size(), 2 * kSlots);
    for (size_t i = 0; i < fired.size(); ++i) {
      ASSERT_EQ(fired[i], static_cast<int>(i)) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace dapes::harness
