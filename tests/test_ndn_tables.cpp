// Unit tests for the NFD-lite tables: Content Store, PIT, FIB.
#include <gtest/gtest.h>

#include "ndn/tables.hpp"

namespace dapes::ndn {
namespace {

using common::bytes_of;

Data make_data(const std::string& uri, const std::string& content = "x",
               common::Duration freshness = common::Duration::seconds(3600.0)) {
  Data d{Name(uri)};
  d.set_content(bytes_of(content));
  d.set_freshness(freshness);
  return d;
}

TEST(ContentStore, ExactMatch) {
  ContentStore cs;
  cs.insert(make_data("/a/b/0"));
  EXPECT_TRUE(cs.find(Name("/a/b/0")) != nullptr);
  EXPECT_FALSE(cs.find(Name("/a/b/1")) != nullptr);
}

TEST(ContentStore, PrefixMatch) {
  ContentStore cs;
  cs.insert(make_data("/a/b/3"));
  EXPECT_FALSE(cs.find(Name("/a/b")) != nullptr);
  auto hit = cs.find(Name("/a/b"), /*can_be_prefix=*/true);
  ASSERT_TRUE(hit != nullptr);
  EXPECT_EQ(hit->name().to_uri(), "/a/b/3");
  EXPECT_FALSE(cs.find(Name("/a/c"), true) != nullptr);
}

TEST(ContentStore, LruEviction) {
  ContentStore cs(3);
  cs.insert(make_data("/n/0"));
  cs.insert(make_data("/n/1"));
  cs.insert(make_data("/n/2"));
  // Touch /n/0 so /n/1 becomes the LRU victim.
  EXPECT_TRUE(cs.find(Name("/n/0")) != nullptr);
  cs.insert(make_data("/n/3"));
  EXPECT_EQ(cs.size(), 3u);
  EXPECT_TRUE(cs.contains(Name("/n/0")));
  EXPECT_FALSE(cs.contains(Name("/n/1")));
  EXPECT_TRUE(cs.contains(Name("/n/3")));
}

TEST(ContentStore, FreshnessExpiry) {
  ContentStore cs;
  cs.insert(make_data("/f/0", "x", common::Duration::milliseconds(500)),
            TimePoint{0});
  EXPECT_TRUE(cs.find(Name("/f/0"), false, TimePoint{400000}) != nullptr);
  EXPECT_FALSE(cs.find(Name("/f/0"), false, TimePoint{600000}) != nullptr);
  // The expired entry was evicted on lookup.
  EXPECT_EQ(cs.size(), 0u);
}

TEST(ContentStore, PrefixLookupSkipsExpired) {
  ContentStore cs;
  cs.insert(make_data("/p/0", "x", common::Duration::milliseconds(100)),
            TimePoint{0});
  cs.insert(make_data("/p/1", "x", common::Duration::seconds(100.0)),
            TimePoint{0});
  auto hit = cs.find(Name("/p"), true, TimePoint{50000000});
  ASSERT_TRUE(hit != nullptr);
  EXPECT_EQ(hit->name().to_uri(), "/p/1");
}

TEST(ContentStore, ContentBytesTracked) {
  ContentStore cs(2);
  cs.insert(make_data("/c/0", "12345"));
  EXPECT_EQ(cs.content_bytes(), 5u);
  cs.insert(make_data("/c/1", "123"));
  EXPECT_EQ(cs.content_bytes(), 8u);
  cs.insert(make_data("/c/2", "1"));  // evicts /c/0
  EXPECT_EQ(cs.content_bytes(), 4u);
}

TEST(ContentStore, ReinsertRefreshesExpiry) {
  ContentStore cs;
  cs.insert(make_data("/r/0", "x", common::Duration::milliseconds(100)),
            TimePoint{0});
  cs.insert(make_data("/r/0", "x", common::Duration::milliseconds(100)),
            TimePoint{80000});
  EXPECT_TRUE(cs.find(Name("/r/0"), false, TimePoint{150000}) != nullptr);
}

TEST(Pit, InsertAndFind) {
  Pit pit;
  PitEntry& e = pit.insert(Name("/a/1"));
  e.in_faces.push_back(3);
  ASSERT_NE(pit.find(Name("/a/1")), nullptr);
  EXPECT_EQ(pit.find(Name("/a/1"))->in_faces.size(), 1u);
  EXPECT_EQ(pit.find(Name("/a/2")), nullptr);
}

TEST(Pit, MatchesForDataExact) {
  Pit pit;
  pit.insert(Name("/a/1"));
  auto matches = pit.matches_for_data(Name("/a/1"));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].to_uri(), "/a/1");
}

TEST(Pit, MatchesForDataPrefix) {
  Pit pit;
  PitEntry& e = pit.insert(Name("/dapes/discovery"));
  e.can_be_prefix = true;
  auto matches = pit.matches_for_data(Name("/dapes/discovery/peer-7"));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].to_uri(), "/dapes/discovery");
}

TEST(Pit, PrefixEntryWithoutFlagDoesNotMatchLonger) {
  Pit pit;
  pit.insert(Name("/a"));  // can_be_prefix = false
  EXPECT_TRUE(pit.matches_for_data(Name("/a/b")).empty());
}

TEST(Pit, ExactAndPrefixBothMatch) {
  Pit pit;
  pit.insert(Name("/a/b"));
  PitEntry& p = pit.insert(Name("/a"));
  p.can_be_prefix = true;
  auto matches = pit.matches_for_data(Name("/a/b"));
  EXPECT_EQ(matches.size(), 2u);
}

TEST(Pit, NonceTracking) {
  Pit pit;
  PitEntry& e = pit.insert(Name("/n"));
  e.nonces.insert(111);
  EXPECT_TRUE(pit.has_nonce(Name("/n"), 111));
  EXPECT_FALSE(pit.has_nonce(Name("/n"), 222));
  EXPECT_FALSE(pit.has_nonce(Name("/other"), 111));
}

TEST(Pit, DeadNonceSurvivesErase) {
  Pit pit;
  PitEntry& e = pit.insert(Name("/n"));
  e.nonces.insert(111);
  pit.record_dead_nonce(Name("/n"), 111);
  pit.erase(Name("/n"));
  EXPECT_TRUE(pit.has_nonce(Name("/n"), 111));
}

TEST(Fib, LongestPrefixMatch) {
  Fib fib;
  fib.add_route(Name("/a"), 1);
  fib.add_route(Name("/a/b"), 2);
  EXPECT_EQ(fib.lookup(Name("/a/b/c")), std::vector<FaceId>{2});
  EXPECT_EQ(fib.lookup(Name("/a/x")), std::vector<FaceId>{1});
  EXPECT_TRUE(fib.lookup(Name("/z")).empty());
}

TEST(Fib, ExactNameRoute) {
  Fib fib;
  fib.add_route(Name("/only/this"), 5);
  EXPECT_EQ(fib.lookup(Name("/only/this")), std::vector<FaceId>{5});
  EXPECT_TRUE(fib.lookup(Name("/only")).empty());
}

TEST(Fib, MultipleFacesPerPrefix) {
  Fib fib;
  fib.add_route(Name("/m"), 1);
  fib.add_route(Name("/m"), 2);
  auto faces = fib.lookup(Name("/m/x"));
  EXPECT_EQ(faces.size(), 2u);
}

TEST(Fib, RemoveRoute) {
  Fib fib;
  fib.add_route(Name("/r"), 1);
  fib.remove_route(Name("/r"), 1);
  EXPECT_TRUE(fib.lookup(Name("/r")).empty());
  EXPECT_EQ(fib.size(), 0u);
}

TEST(Fib, DefaultRouteViaEmptyPrefix) {
  Fib fib;
  fib.add_route(Name(""), 9);
  EXPECT_EQ(fib.lookup(Name("/anything/at/all")), std::vector<FaceId>{9});
}

TEST(Fib, PrefixesFor) {
  Fib fib;
  fib.add_route(Name("/a"), 1);
  fib.add_route(Name("/b"), 1);
  fib.add_route(Name("/c"), 2);
  EXPECT_EQ(fib.prefixes_for(1).size(), 2u);
  EXPECT_EQ(fib.prefixes_for(2).size(), 1u);
}

}  // namespace
}  // namespace dapes::ndn
